// Tests for the algebraic term rewriter (algebra/simplifier.h): every
// rewrite must preserve semantic equivalence, and the canonical
// simplifications of Props 3, 4a and 6 must actually fire.

#include "algebra/simplifier.h"

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::RandomPreferenceGen;

TEST(SimplifierTest, DualInvolution) {
  PrefPtr p = Lowest("x");
  PrefPtr s = Simplify(Dual(Dual(p)));
  EXPECT_TRUE(s->StructurallyEquals(*p));
}

TEST(SimplifierTest, DualOfLowestIsHighest) {
  PrefPtr s = Simplify(Dual(Lowest("x")));
  EXPECT_EQ(s->kind(), PreferenceKind::kHighest);
}

TEST(SimplifierTest, DualOfPosIsNeg) {
  PrefPtr s = Simplify(Dual(Pos("c", {"a", "b"})));
  EXPECT_EQ(s->kind(), PreferenceKind::kNeg);
  EXPECT_TRUE(s->StructurallyEquals(*Neg("c", {"a", "b"})));
}

TEST(SimplifierTest, DualOfAntiChainIsAntiChain) {
  PrefPtr s = Simplify(Dual(AntiChain("x")));
  EXPECT_EQ(s->kind(), PreferenceKind::kAntiChain);
}

TEST(SimplifierTest, IntersectionIdempotent) {
  PrefPtr p = Pos("c", {"a"});
  EXPECT_TRUE(Simplify(Intersection(p, p))->StructurallyEquals(*p));
}

TEST(SimplifierTest, IntersectionWithDualCollapsesToAntiChain) {
  PrefPtr p = Lowest("x");
  PrefPtr s = Simplify(Intersection(p, Dual(p)));
  EXPECT_EQ(s->kind(), PreferenceKind::kAntiChain);
}

TEST(SimplifierTest, PrioritizedSameAttributesKeepsLeft) {
  PrefPtr p = Pos("c", {"a"});
  PrefPtr q = Neg("c", {"z"});
  EXPECT_TRUE(Simplify(Prioritized(p, q))->StructurallyEquals(*p));
}

TEST(SimplifierTest, PrioritizedAntiChainLeftWins) {
  PrefPtr s = Simplify(Prioritized(AntiChain("x"), Lowest("x")));
  EXPECT_EQ(s->kind(), PreferenceKind::kAntiChain);
}

TEST(SimplifierTest, GroupbyShapeIsNotCollapsed) {
  // A<->(a) & P(b) is the groupby device (Def. 16) — attributes differ, so
  // Prop 3k must NOT fire.
  PrefPtr g = Prioritized(AntiChain("a"), Lowest("b"));
  PrefPtr s = Simplify(g);
  EXPECT_EQ(s->kind(), PreferenceKind::kPrioritized);
}

TEST(SimplifierTest, ParetoIdempotent) {
  PrefPtr p = Around("x", 3);
  EXPECT_TRUE(Simplify(Pareto(p, p))->StructurallyEquals(*p));
}

TEST(SimplifierTest, ParetoWithDualIsAntiChain) {
  PrefPtr s = Simplify(Pareto(Lowest("x"), Highest("x")));
  // LOWEST and HIGHEST are duals (Prop 3d), so P (x) P^d == A<->.
  EXPECT_EQ(s->kind(), PreferenceKind::kAntiChain);
}

TEST(SimplifierTest, SameAttributeParetoBecomesIntersection) {
  PrefPtr p = Pos("c", {"a"});
  PrefPtr q = Neg("c", {"b"});
  PrefPtr s = Simplify(Pareto(p, q));
  EXPECT_EQ(s->kind(), PreferenceKind::kIntersection);
}

TEST(SimplifierTest, DisjointAttributeParetoUntouched) {
  PrefPtr s = Simplify(Pareto(Lowest("x"), Lowest("y")));
  EXPECT_EQ(s->kind(), PreferenceKind::kPareto);
}

TEST(SimplifierTest, RewritesNestedTerms) {
  // ((P^d)^d & A<->) with same attrs -> P.
  PrefPtr p = Lowest("x");
  PrefPtr term = Prioritized(Dual(Dual(p)), AntiChain("x"));
  EXPECT_TRUE(Simplify(term)->StructurallyEquals(*p));
}

TEST(SimplifierTest, TraceRecordsSteps) {
  std::vector<RewriteStep> trace;
  Simplify(Dual(Dual(Lowest("x"))), &trace);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace[0].rule.find("Prop3"), std::string::npos);
}

TEST(SimplifierTest, IsDualOfRecognizesCanonicalPairs) {
  EXPECT_TRUE(IsDualOf(Lowest("x"), Highest("x")));
  EXPECT_TRUE(IsDualOf(Pos("c", {"a"}), Neg("c", {"a"})));
  EXPECT_FALSE(IsDualOf(Lowest("x"), Lowest("x")));
}

class SimplifierPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifierPropertyTest, SimplifyPreservesEquivalence) {
  RandomPreferenceGen gen("x", {Value(-2), Value(0), Value(1), Value(3)},
                          GetParam());
  Relation dom(Schema{{"x", ValueType::kInt}});
  for (const Value& v : gen.domain()) dom.Add({v});
  for (int i = 0; i < 25; ++i) {
    PrefPtr p = gen.Term(3);
    PrefPtr s = Simplify(p);
    auto res = CheckEquivalent(p, s, dom);
    EXPECT_TRUE(res.equivalent)
        << "before: " << p->ToString() << "\nafter: " << s->ToString()
        << "\n" << res.counterexample;
  }
}

TEST_P(SimplifierPropertyTest, SimplifyIsIdempotent) {
  RandomPreferenceGen gen("x", {Value(-2), Value(0), Value(1), Value(3)},
                          GetParam() + 1000);
  for (int i = 0; i < 25; ++i) {
    PrefPtr p = gen.Term(3);
    PrefPtr once = Simplify(p);
    PrefPtr twice = Simplify(once);
    EXPECT_TRUE(once->StructurallyEquals(*twice))
        << "once: " << once->ToString() << "\ntwice: " << twice->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifierPropertyTest,
                         ::testing::Values(3, 9, 27, 81, 243));

}  // namespace
}  // namespace prefdb
