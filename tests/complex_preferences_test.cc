// Unit tests for the complex preference constructors (Defs. 3, 8-12).

#include "core/complex_preferences.h"

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "core/base_preferences.h"
#include "core/numeric_preferences.h"
#include "test_support.h"

namespace prefdb {
namespace {

const Schema kXY({{"x", ValueType::kInt}, {"y", ValueType::kInt}});

Relation XYRelation(const std::vector<std::pair<int, int>>& points) {
  Relation rel(kXY);
  for (auto [x, y] : points) rel.Add({Value(x), Value(y)});
  return rel;
}

// --- Pareto (Def. 8) ---

TEST(ParetoTest, StrictDominanceInBothComponents) {
  PrefPtr p = Pareto(Highest("x"), Highest("y"));
  auto less = p->Bind(kXY);
  EXPECT_TRUE(less(Tuple({Value(1), Value(1)}), Tuple({Value(2), Value(2)})));
}

TEST(ParetoTest, DominanceWithOneEqualComponent) {
  PrefPtr p = Pareto(Highest("x"), Highest("y"));
  auto less = p->Bind(kXY);
  EXPECT_TRUE(less(Tuple({Value(1), Value(2)}), Tuple({Value(2), Value(2)})));
  EXPECT_TRUE(less(Tuple({Value(2), Value(1)}), Tuple({Value(2), Value(3)})));
}

TEST(ParetoTest, TradeoffsAreUnranked) {
  PrefPtr p = Pareto(Highest("x"), Highest("y"));
  auto less = p->Bind(kXY);
  Tuple a({Value(1), Value(5)});
  Tuple b({Value(5), Value(1)});
  EXPECT_FALSE(less(a, b));
  EXPECT_FALSE(less(b, a));
}

TEST(ParetoTest, AttributeSetIsUnion) {
  PrefPtr p = Pareto(Highest("x"), Highest("y"));
  EXPECT_TRUE(SameAttributeSet(p->attributes(), {"x", "y"}));
}

TEST(ParetoTest, SharedAttributeAccumulation) {
  // Example 3 shape: two preferences on the same attribute.
  PrefPtr p5 = Pos("color", {"green", "yellow"});
  PrefPtr p6 = Neg("color", {"red", "green", "blue", "purple"});
  PrefPtr p7 = Pareto(p5, p6);
  EXPECT_TRUE(SameAttributeSet(p7->attributes(), {"color"}));
  Schema s({{"color", ValueType::kString}});
  auto less = p7->Bind(s);
  // yellow is liked by P5 and not disliked by P6: beats red (disliked,
  // non-POS).
  EXPECT_TRUE(less(Tuple({Value("red")}), Tuple({Value("yellow")})));
  // green: liked by P5 but disliked by P6 -> conflict -> unranked vs black.
  EXPECT_FALSE(less(Tuple({Value("green")}), Tuple({Value("black")})));
  EXPECT_FALSE(less(Tuple({Value("black")}), Tuple({Value("green")})));
}

TEST(ParetoTest, IsStrictPartialOrderOnRandomDomains) {
  Relation dom = XYRelation({{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {0, 2}});
  PrefPtr p = Pareto(Around("x", 1), Lowest("y"));
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

TEST(ParetoTest, NaryFoldsLeft) {
  PrefPtr p = Pareto({Highest("x"), Highest("y"), Lowest("x")});
  EXPECT_EQ(p->kind(), PreferenceKind::kPareto);
  EXPECT_TRUE(SameAttributeSet(p->attributes(), {"x", "y"}));
  EXPECT_THROW(Pareto(std::vector<PrefPtr>{}), std::invalid_argument);
}

// --- Prioritized (Def. 9) ---

TEST(PrioritizedTest, FirstComponentDominates) {
  PrefPtr p = Prioritized(Highest("x"), Highest("y"));
  auto less = p->Bind(kXY);
  // Better x wins regardless of y.
  EXPECT_TRUE(less(Tuple({Value(1), Value(9)}), Tuple({Value(2), Value(0)})));
}

TEST(PrioritizedTest, SecondBreaksTiesOfEqualFirstValues) {
  PrefPtr p = Prioritized(Highest("x"), Highest("y"));
  auto less = p->Bind(kXY);
  EXPECT_TRUE(less(Tuple({Value(2), Value(1)}), Tuple({Value(2), Value(5)})));
  EXPECT_FALSE(less(Tuple({Value(2), Value(5)}), Tuple({Value(2), Value(1)})));
}

TEST(PrioritizedTest, UnrankedFirstComponentBlocksSecond) {
  // P1 = AROUND leaves -5 / 5 unranked; the second preference must NOT
  // decide then (x1 must be *equal*).
  PrefPtr p = Prioritized(Around("x", 0), Highest("y"));
  auto less = p->Bind(kXY);
  EXPECT_FALSE(less(Tuple({Value(-5), Value(0)}), Tuple({Value(5), Value(9)})));
}

TEST(PrioritizedTest, ChainOfChainsIsChain) {
  // Prop 3h.
  PrefPtr p = Prioritized(Lowest("x"), Highest("y"));
  EXPECT_TRUE(p->IsChain());
  Relation dom = XYRelation({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  EXPECT_TRUE(IsChainOn(p, dom.schema(), dom.tuples()));
}

TEST(PrioritizedTest, NonChainComponentBreaksChain) {
  EXPECT_FALSE(Prioritized(Around("x", 0), Highest("y"))->IsChain());
}

TEST(PrioritizedTest, IsStrictPartialOrder) {
  Relation dom = XYRelation({{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}});
  PrefPtr p = Prioritized(Around("x", 1), Lowest("y"));
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

// --- rank(F) (Def. 10) ---

TEST(RankTest, CombinedScoreOrders) {
  PrefPtr p = RankWeightedSum({1.0, 2.0}, {Highest("x"), Highest("y")});
  auto less = p->Bind(kXY);
  // F = x + 2y: (3, 0) -> 3 vs (0, 2) -> 4.
  EXPECT_TRUE(less(Tuple({Value(3), Value(0)}), Tuple({Value(0), Value(2)})));
}

TEST(RankTest, EqualCombinedScoreUnranked) {
  PrefPtr p = RankWeightedSum({1.0, 1.0}, {Highest("x"), Highest("y")});
  auto less = p->Bind(kXY);
  EXPECT_FALSE(less(Tuple({Value(1), Value(2)}), Tuple({Value(2), Value(1)})));
  EXPECT_FALSE(less(Tuple({Value(2), Value(1)}), Tuple({Value(1), Value(2)})));
}

TEST(RankTest, AcceptsSubConstructorInputs) {
  // Constructor substitutability (§3.4): AROUND and HIGHEST are valid
  // rank(F) inputs because they are SCORE sub-constructors.
  PrefPtr p = RankWeightedSum({1.0, 1.0}, {Around("x", 0), Highest("y")});
  auto less = p->Bind(kXY);
  EXPECT_TRUE(less(Tuple({Value(5), Value(0)}), Tuple({Value(0), Value(0)})));
}

TEST(RankTest, RejectsNonScorableInput) {
  PrefPtr p = Rank([](const std::vector<double>& s) { return s[0]; }, "id",
                   {Pos("x", {Value(1)})});
  EXPECT_THROW(p->Bind(kXY), std::invalid_argument);
}

TEST(RankTest, RejectsEmptyInputsOrNullF) {
  EXPECT_THROW(Rank([](const std::vector<double>&) { return 0.0; }, "f", {}),
               std::invalid_argument);
  EXPECT_THROW(Rank(nullptr, "f", {Highest("x")}), std::invalid_argument);
  EXPECT_THROW(RankWeightedSum({1.0}, {Highest("x"), Highest("y")}),
               std::invalid_argument);
}

TEST(RankTest, IsStrictPartialOrder) {
  PrefPtr p = RankWeightedSum({1.0, -1.0}, {Highest("x"), Highest("y")});
  Relation dom = XYRelation({{0, 0}, {1, 1}, {2, 0}, {0, 2}});
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

// --- Intersection (Def. 11a) ---

TEST(IntersectionTest, RequiresSameAttributeSet) {
  EXPECT_THROW(Intersection(Highest("x"), Highest("y")),
               std::invalid_argument);
}

TEST(IntersectionTest, BothOrdersMustAgree) {
  PrefPtr p = Intersection(Around("x", 0), Lowest("x"));
  Schema s({{"x", ValueType::kInt}});
  auto less = p->Bind(s);
  // around 0 says -1 better than -3; lowest says -3 better: disagree.
  EXPECT_FALSE(less(Tuple({Value(-3)}), Tuple({Value(-1)})));
  EXPECT_FALSE(less(Tuple({Value(-1)}), Tuple({Value(-3)})));
  // 3 -> 1: around agrees (closer), lowest agrees (lower).
  EXPECT_TRUE(less(Tuple({Value(3)}), Tuple({Value(1)})));
}

// --- Disjoint union (Def. 11b) ---

TEST(DisjointUnionTest, CombinesOrderDisjointPieces) {
  // Two subset preferences on disjoint value sets.
  PrefPtr low = Subset(Lowest("x"), {Tuple({Value(1)}), Tuple({Value(2)})});
  PrefPtr high = Subset(Highest("x"), {Tuple({Value(8)}), Tuple({Value(9)})});
  PrefPtr u = DisjointUnion(low, high);
  Schema s({{"x", ValueType::kInt}});
  auto less = u->Bind(s);
  EXPECT_TRUE(less(Tuple({Value(2)}), Tuple({Value(1)})));   // from P1
  EXPECT_TRUE(less(Tuple({Value(8)}), Tuple({Value(9)})));   // from P2
  EXPECT_FALSE(less(Tuple({Value(1)}), Tuple({Value(9)})));  // across: none
}

TEST(DisjointUnionTest, ValidateDisjointDetectsOverlap) {
  Schema s({{"x", ValueType::kInt}});
  std::vector<Tuple> sample = {Tuple({Value(1)}), Tuple({Value(2)}),
                               Tuple({Value(3)})};
  auto ok = std::make_shared<DisjointUnionPreference>(
      Subset(Lowest("x"), {sample[0], sample[1]}),
      Subset(Highest("x"), {sample[2]}));
  EXPECT_TRUE(ok->ValidateDisjointOn(s, sample));
  auto bad = std::make_shared<DisjointUnionPreference>(Lowest("x"),
                                                       Highest("x"));
  EXPECT_FALSE(bad->ValidateDisjointOn(s, sample));
}

// --- Linear sum (Def. 12) ---

TEST(LinearSumTest, LeftDomainBeatsRightDomain) {
  PrefPtr p = LinearSum("v", Lowest("a"), Highest("b"),
                        {Value(1), Value(2)}, {Value(10), Value(20)});
  Schema s({{"v", ValueType::kInt}});
  auto less = p->Bind(s);
  EXPECT_TRUE(less(Tuple({Value(10)}), Tuple({Value(1)})));  // dom2 < dom1
  EXPECT_TRUE(less(Tuple({Value(2)}), Tuple({Value(1)})));   // within P1
  EXPECT_TRUE(less(Tuple({Value(10)}), Tuple({Value(20)}))); // within P2
  EXPECT_FALSE(less(Tuple({Value(1)}), Tuple({Value(10)})));
}

TEST(LinearSumTest, ExpressesPosConstructor) {
  // POS = POS-set<-> (+) other-values<-> (§3.3.2).
  std::vector<Value> pos = {Value("a"), Value("b")};
  PrefPtr linear = LinearSum(
      "c", AntiChain("c1"), AntiChain("c2"),
      [](const Value& v) { return v == Value("a") || v == Value("b"); },
      [](const Value& v) { return !(v == Value("a") || v == Value("b")); });
  // Compare against POS on a common schema: rename linear's attribute.
  Schema s({{"c", ValueType::kString}});
  auto linear_less = linear->Bind(s);
  auto pos_less = Pos("c", pos)->Bind(s);
  for (const char* x : {"a", "b", "z", "q"}) {
    for (const char* y : {"a", "b", "z", "q"}) {
      EXPECT_EQ(linear_less(Tuple({Value(x)}), Tuple({Value(y)})),
                pos_less(Tuple({Value(x)}), Tuple({Value(y)})))
          << x << " vs " << y;
    }
  }
}

TEST(LinearSumTest, IsStrictPartialOrder) {
  PrefPtr p = LinearSum("v", Lowest("a"), Highest("b"),
                        {Value(1), Value(2), Value(3)},
                        {Value(10), Value(20)});
  Relation dom = ::prefdb::testing::IntRelation("v", {1, 2, 3, 10, 20, 99});
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

// --- Dual (Def. 3c) ---

TEST(DualTest, ReversesOrder) {
  PrefPtr p = Dual(Highest("x"));
  Schema s({{"x", ValueType::kInt}});
  auto less = p->Bind(s);
  EXPECT_TRUE(less(Tuple({Value(5)}), Tuple({Value(1)})));
  EXPECT_FALSE(less(Tuple({Value(1)}), Tuple({Value(5)})));
}

TEST(DualTest, KeepsAttributesAndChainness) {
  PrefPtr p = Dual(Lowest("price"));
  EXPECT_TRUE(SameAttributeSet(p->attributes(), {"price"}));
  EXPECT_TRUE(p->IsChain());
}

// --- Subset (Def. 3d) ---

TEST(SubsetTest, RestrictsOrderToMembers) {
  PrefPtr p = Subset(Lowest("x"), {Tuple({Value(1)}), Tuple({Value(2)})});
  Schema s({{"x", ValueType::kInt}});
  auto less = p->Bind(s);
  EXPECT_TRUE(less(Tuple({Value(2)}), Tuple({Value(1)})));
  EXPECT_FALSE(less(Tuple({Value(3)}), Tuple({Value(1)})));  // 3 not in S
  EXPECT_FALSE(less(Tuple({Value(2)}), Tuple({Value(0)})));  // 0 not in S
}

TEST(SubsetTest, RejectsArityMismatch) {
  EXPECT_THROW(Subset(Lowest("x"), {Tuple({Value(1), Value(2)})}),
               std::invalid_argument);
}

// --- Anti-chain (Def. 3b) ---

TEST(AntiChainTest, NothingIsBetter) {
  PrefPtr p = AntiChain("x");
  Schema s({{"x", ValueType::kInt}});
  auto less = p->Bind(s);
  EXPECT_FALSE(less(Tuple({Value(1)}), Tuple({Value(2)})));
  EXPECT_FALSE(less(Tuple({Value(2)}), Tuple({Value(1)})));
}

TEST(AntiChainTest, MultiAttribute) {
  PrefPtr p = AntiChain(std::vector<std::string>{"x", "y"});
  EXPECT_TRUE(SameAttributeSet(p->attributes(), {"x", "y"}));
  auto less = p->Bind(kXY);
  EXPECT_FALSE(less(Tuple({Value(0), Value(0)}), Tuple({Value(1), Value(1)})));
}

// --- Sort keys of complex terms ---

TEST(ComplexSortKeysTest, ParetoOfSingleKeysComposes) {
  PrefPtr p = Pareto(Highest("x"), Lowest("y"));
  auto keys = p->BindSortKeys(kXY);
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ(keys->size(), 1u);
}

TEST(ComplexSortKeysTest, PrioritizedConcatenatesKeys) {
  PrefPtr p = Prioritized(Highest("x"), Lowest("y"));
  auto keys = p->BindSortKeys(kXY);
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ(keys->size(), 2u);
}

TEST(ComplexSortKeysTest, NonScorableYieldsNullopt) {
  PrefPtr p = Pareto(Pos("x", {Value(1)}), Highest("y"));
  EXPECT_FALSE(p->BindSortKeys(kXY).has_value());
}

TEST(ComplexSortKeysTest, KeysAreTopologicallyCompatible) {
  PrefPtr p = Prioritized(Around("x", 1), Pareto(Highest("y"), Lowest("y")));
  // Pareto(Highest, Lowest) on same attr: conflict everywhere, but keys
  // must still satisfy the implication vacuously or correctly.
  auto keys = p->BindSortKeys(kXY);
  ASSERT_TRUE(keys.has_value());
  auto less = p->Bind(kXY);
  Relation dom = XYRelation({{0, 0}, {0, 1}, {1, 0}, {2, 1}, {1, 2}});
  for (const Tuple& a : dom.tuples()) {
    for (const Tuple& b : dom.tuples()) {
      if (!less(a, b)) continue;
      std::vector<double> ka, kb;
      for (const auto& k : *keys) {
        ka.push_back(k(a));
        kb.push_back(k(b));
      }
      EXPECT_LT(ka, kb);
    }
  }
}

}  // namespace
}  // namespace prefdb
