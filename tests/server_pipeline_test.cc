// Protocol v2 pipelining tests: version negotiation and the v1 compat
// shim, request-id tagged frames with out-of-order completion routed by
// the epoll event loop, duplicate/zero/unknown request-id protocol
// errors, partial-frame reassembly under byte-dribble writes, and the
// FrameAssembler unit surface. Part of CI's TSan matrix job: the event
// loop / worker pool / async client interplay must be data-race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "datagen/cars.h"
#include "psql/error.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/session_options.h"
#include "server/wire_io.h"

namespace prefdb::server {
namespace {

const char* kHost = "127.0.0.1";

const char* kMixQueries[] = {
    "SELECT * FROM car PREFERRING LOWEST(price)",
    "SELECT oid, price, mileage FROM car "
    "PREFERRING LOWEST(price) AND LOWEST(mileage)",
    "SELECT * FROM car PREFERRING LOWEST(price) GROUPING category",
    "SELECT TOP 5 oid, price FROM car PREFERRING LOWEST(price)",
    "SELECT oid FROM car WHERE price < 42000 LIMIT 5",
};

class PipelineFixture : public ::testing::Test {
 protected:
  virtual ServerOptions Options() { return ServerOptions{}; }
  void SetUp() override {
    engine_.RegisterTable("car", GenerateCars(1000, 11));
    reference_.RegisterTable("car", GenerateCars(1000, 11));
    server_ = std::make_unique<Server>(&engine_, Options());
    server_->Start();
  }
  Client Connect(uint32_t version = kProtocolV2) {
    Client client;
    client.Connect(kHost, server_->port(), {.protocol_version = version});
    return client;
  }
  psql::QueryResult Reference(const std::string& sql) {
    return reference_.Execute(sql, ServerOptions::DefaultSessionBmo());
  }
  Engine engine_;
  Engine reference_;
  std::unique_ptr<Server> server_;
};

// --- codec ---------------------------------------------------------------

TEST(TaggedFrameTest, TaggedFrameRoundTrips) {
  Frame frame{FrameType::kQuery, "SELECT * FROM car"};
  std::string wire = EncodeTaggedFrame(0x0123456789abcdefULL, frame);
  FrameAssembler assembler(1 << 20);
  assembler.Append(wire.data(), wire.size());
  Frame decoded;
  ASSERT_EQ(assembler.TryNext(&decoded), FrameAssembler::Next::kFrame);
  EXPECT_EQ(assembler.buffered(), 0u);
  uint64_t request_id = 0;
  ASSERT_TRUE(DecodeTaggedPayload(&decoded, &request_id));
  EXPECT_EQ(request_id, 0x0123456789abcdefULL);
  EXPECT_EQ(decoded.type, frame.type);
  EXPECT_EQ(decoded.payload, frame.payload);
}

TEST(TaggedFrameTest, ShortPayloadFailsToDecode) {
  Frame frame{FrameType::kQuery, "1234567"};  // 7 bytes < the 8-byte id
  uint64_t request_id = 0;
  EXPECT_FALSE(DecodeTaggedPayload(&frame, &request_id));
}

TEST(TaggedFrameTest, HelloPayloadRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(ParseHello(EncodeHello(1)), 1u);
  EXPECT_EQ(ParseHello(EncodeHello(2)), 2u);
  EXPECT_EQ(ParseHello(EncodeHello(134217728)), 134217728u);
  EXPECT_FALSE(ParseHello("").has_value());
  EXPECT_FALSE(ParseHello("0").has_value());
  EXPECT_FALSE(ParseHello("-1").has_value());
  EXPECT_FALSE(ParseHello("2x").has_value());
  EXPECT_FALSE(ParseHello("9999999999").has_value());  // > 9 digits
}

// --- FrameAssembler units --------------------------------------------------

TEST(FrameAssemblerTest, ReassemblesFromSingleBytes) {
  Frame a{FrameType::kPing, ""};
  Frame b{FrameType::kQuery, "SELECT 1"};
  std::string wire = EncodeFrame(a) + EncodeTaggedFrame(7, b);
  FrameAssembler assembler(1 << 20);
  std::vector<Frame> seen;
  for (char c : wire) {
    assembler.Append(&c, 1);
    Frame frame;
    while (assembler.TryNext(&frame) == FrameAssembler::Next::kFrame) {
      seen.push_back(frame);
    }
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].type, FrameType::kPing);
  EXPECT_EQ(seen[1].type, FrameType::kQuery);
  uint64_t request_id = 0;
  ASSERT_TRUE(DecodeTaggedPayload(&seen[1], &request_id));
  EXPECT_EQ(request_id, 7u);
  EXPECT_EQ(seen[1].payload, "SELECT 1");
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(FrameAssemblerTest, OversizedFrameConsumesHeaderAndReportsLength) {
  FrameAssembler assembler(16);
  std::string wire = EncodeFrame(Frame{FrameType::kQuery,
                                       std::string(100, 'x')});
  assembler.Append(wire.data(), wire.size());
  Frame frame;
  uint32_t oversized_len = 0;
  EXPECT_EQ(assembler.TryNext(&frame, &oversized_len),
            FrameAssembler::Next::kOversized);
  EXPECT_EQ(oversized_len, 100u);
}

TEST(ReadAvailableTest, CapsBytesPerPassAndDrainsOnTheNext) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(SetNonBlocking(fds[0]));
  constexpr size_t kPayload = 160 * 1024;  // fits default socket buffers
  ASSERT_TRUE(WriteFully(fds[1], std::string(kPayload, 'x')));
  FrameAssembler assembler(1 << 20);
  size_t bytes_read = 0;
  // The capped pass stops once the fairness budget is consumed, well
  // before EAGAIN — the event loop's guard against one hot connection.
  EXPECT_EQ(ReadAvailable(fds[0], &assembler, 64 * 1024, &bytes_read),
            IoStatus::kWouldBlock);
  EXPECT_GE(bytes_read, 64 * 1024u);
  EXPECT_LT(bytes_read, kPayload);
  // An uncapped follow-up drains the remainder; nothing was lost.
  size_t rest = 0;
  EXPECT_EQ(ReadAvailable(fds[0], &assembler, SIZE_MAX, &rest),
            IoStatus::kWouldBlock);
  EXPECT_EQ(bytes_read + rest, kPayload);
  EXPECT_EQ(assembler.buffered(), kPayload);
  close(fds[0]);
  close(fds[1]);
}

// --- version negotiation ---------------------------------------------------

TEST_F(PipelineFixture, V1ClientSpeaksToV2ServerUnchanged) {
  Client client = Connect(kProtocolV1);
  EXPECT_EQ(client.protocol_version(), kProtocolV1);
  for (const char* sql : kMixQueries) {
    ClientResponse response = client.Query(sql);
    ASSERT_TRUE(response.ok) << sql << ": " << response.error.message;
    EXPECT_TRUE(response.relation == Reference(sql).relation) << sql;
  }
  // v1 keeps strict request/response: a second in-flight send is refused
  // client-side (there is no id to route the responses by).
  Client::ResponseFuture pending = client.SendPing();
  EXPECT_THROW(client.SendPing(), psql::ProtocolError);
  EXPECT_TRUE(pending.Get().ok);
  EXPECT_TRUE(client.Goodbye().ok);
}

TEST_F(PipelineFixture, HelloNegotiatesDownToTheClientsVersion) {
  Client client = Connect();
  EXPECT_EQ(client.protocol_version(), kProtocolV2);
  // A client offering a higher version than the server speaks is capped
  // at the server's maximum, not rejected.
  Client eager;
  eager.Connect(kHost, server_->port(), {.protocol_version = 7});
  EXPECT_EQ(eager.protocol_version(), kProtocolV2);
  EXPECT_TRUE(eager.Ping().ok);
}

TEST(ClientFallbackTest, HelloErrorFromPreV2ServerDowngradesToV1) {
  // A pre-v2 server answers the unknown 'V' frame with an error and
  // keeps serving v1: a default-config (v2-offering) client must
  // downgrade and continue, not fail — the rolling-upgrade path.
  int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)),
            0);
  ASSERT_EQ(listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  uint16_t port = ntohs(addr.sin_port);

  std::thread old_server([listen_fd] {
    int fd = accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    Frame hello;
    ASSERT_EQ(ReadFrame(fd, &hello, 1 << 20), ReadStatus::kOk);
    ASSERT_EQ(hello.type, FrameType::kHello);
    ASSERT_TRUE(WriteFrame(
        fd,
        Frame{FrameType::kError,
              psql::SerializeError(psql::QueryError{
                  psql::ErrorCode::kProtocol, "unknown frame type 'V'"})}));
    Frame ping;
    ASSERT_EQ(ReadFrame(fd, &ping, 1 << 20), ReadStatus::kOk);
    EXPECT_EQ(ping.type, FrameType::kPing);
    EXPECT_TRUE(ping.payload.empty());  // untagged: the client fell back
    ASSERT_TRUE(WriteFrame(fd, Frame{FrameType::kOk, "pong"}));
    Frame bye;
    ASSERT_EQ(ReadFrame(fd, &bye, 1 << 20), ReadStatus::kOk);
    EXPECT_EQ(bye.type, FrameType::kGoodbye);
    ASSERT_TRUE(WriteFrame(fd, Frame{FrameType::kOk, "bye"}));
    close(fd);
  });

  Client client;
  client.Connect(kHost, port);  // offers v2 by default
  EXPECT_EQ(client.protocol_version(), kProtocolV1);
  ClientResponse pong = client.Ping();
  ASSERT_TRUE(pong.ok) << pong.error.message;
  EXPECT_EQ(pong.info, "pong");
  EXPECT_TRUE(client.Goodbye().ok);
  old_server.join();
  close(listen_fd);
}

TEST_F(PipelineFixture, MalformedHelloClosesTheConnection) {
  // Raw v1 socket (no handshake), then a garbage hello as first frame.
  Client client = Connect(kProtocolV1);
  client.SendRawBytes(EncodeFrame(Frame{FrameType::kHello, "two"}));
  Frame reply = client.ReadResponse();
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(psql::DeserializeError(reply.payload).code,
            psql::ErrorCode::kProtocol);
  EXPECT_THROW(client.ReadResponse(), std::runtime_error);
}

TEST_F(PipelineFixture, MidStreamHelloClosesTheConnection) {
  Client client = Connect(kProtocolV1);
  ASSERT_TRUE(client.Ping().ok);
  client.SendRawBytes(EncodeFrame(Frame{FrameType::kHello, "2"}));
  Frame reply = client.ReadResponse();
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(psql::DeserializeError(reply.payload).code,
            psql::ErrorCode::kProtocol);
  EXPECT_THROW(client.ReadResponse(), std::runtime_error);
}

// --- pipelining ------------------------------------------------------------

class TwoWorkerFixture : public PipelineFixture {
 protected:
  ServerOptions Options() override {
    ServerOptions options;
    // The out-of-order test needs real execution overlap: one worker
    // pinned on the delayed query while another answers the fast one.
    options.num_workers = 2;
    options.debug_execute_delay_ms = 400;
    options.debug_delay_substring = "mileage";  // only the slow query
    return options;
  }
};

TEST_F(TwoWorkerFixture, ResponsesCompleteOutOfOrder) {
  Client client = Connect();
  const char* slow_sql = kMixQueries[1];  // contains "mileage"
  const char* fast_sql = kMixQueries[4];
  Client::ResponseFuture slow = client.SendQuery(slow_sql);
  Client::ResponseFuture fast = client.SendQuery(fast_sql);
  ClientResponse fast_response = fast.Get();
  // The fast query's response arrived while the slow one was still
  // executing — the whole point of tagging frames with request ids.
  EXPECT_FALSE(slow.ready());
  ASSERT_TRUE(fast_response.ok) << fast_response.error.message;
  EXPECT_TRUE(fast_response.relation == Reference(fast_sql).relation);
  ClientResponse slow_response = slow.Get();
  ASSERT_TRUE(slow_response.ok) << slow_response.error.message;
  EXPECT_TRUE(slow_response.relation == Reference(slow_sql).relation);
  EXPECT_TRUE(client.Goodbye().ok);
}

TEST_F(PipelineFixture, DepthEightPipelineMatchesSequentialReference) {
  Client client = Connect();
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Client::ResponseFuture> futures;
    futures.reserve(std::size(kMixQueries));
    for (const char* sql : kMixQueries) {
      futures.push_back(client.SendQuery(sql));
    }
    // Resolve in reverse order: Get() must route earlier responses into
    // their futures while hunting for the last one.
    for (size_t i = futures.size(); i-- > 0;) {
      ClientResponse response = futures[i].Get();
      ASSERT_TRUE(response.ok) << kMixQueries[i] << ": "
                               << response.error.message;
      EXPECT_TRUE(response.relation == Reference(kMixQueries[i]).relation)
          << kMixQueries[i];
    }
  }
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.queries_ok,
            static_cast<uint64_t>(kRounds * std::size(kMixQueries)));
  EXPECT_TRUE(client.Goodbye().ok);
}

TEST_F(PipelineFixture, PipelinedSessionMixesQueriesAndSubscriptions) {
  Client client = Connect();
  ClientResponse sub =
      client.Subscribe("SELECT * FROM car PREFERRING LOWEST(price)");
  ASSERT_TRUE(sub.ok);
  ASSERT_TRUE(client.ReadDelta(2000).has_value());  // bootstrap resync
  // Pipeline an insert with queries; the insert's delta must arrive on
  // the same connection without desynchronizing response routing.
  Client::ResponseFuture q1 = client.SendQuery(kMixQueries[0]);
  // Matches the GenerateCars schema; price 1 undercuts the skyline so the
  // insert is guaranteed to produce a delta.
  Client::ResponseFuture ins = client.SendInsert(
      "car",
      Tuple{Value(static_cast<int64_t>(1000000)), Value("Ford"),
            Value("roadster"), Value("red"), Value("manual"),
            Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(1)),
            Value(static_cast<int64_t>(90)),
            Value(static_cast<int64_t>(2020)), Value(7.5),
            Value(static_cast<int64_t>(3)),
            Value(static_cast<int64_t>(500))});
  Client::ResponseFuture q2 = client.SendQuery(kMixQueries[4]);
  EXPECT_TRUE(q1.Get().ok);
  EXPECT_TRUE(ins.Get().ok);
  EXPECT_TRUE(q2.Get().ok);
  auto delta = client.ReadDelta(2000);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->subscription, sub.handle);
  EXPECT_TRUE(client.Goodbye().ok);
}

// --- goodbye drains in-flight work -------------------------------------------

class SlowWorkerFixture : public PipelineFixture {
 protected:
  ServerOptions Options() override {
    ServerOptions options;
    options.num_workers = 1;  // later inserts queue behind the first
    options.debug_execute_delay_ms = 100;
    return options;
  }
};

TEST_F(SlowWorkerFixture, GoodbyeDrainsPipelinedInFlightRequests) {
  Client client = Connect();
  // Three slow inserts pipelined ahead of the goodbye: with one worker,
  // the later two are still queued when the goodbye frame dispatches.
  // Every one must execute and flush its ack before the bye — a "send
  // work, send goodbye" client may never lose writes silently.
  std::vector<Client::ResponseFuture> inserts;
  for (int64_t i = 0; i < 3; ++i) {
    inserts.push_back(client.SendInsert(
        "car",
        Tuple{Value(static_cast<int64_t>(2000000 + i)), Value("Ford"),
              Value("roadster"), Value("red"), Value("manual"),
              Value(static_cast<int64_t>(999000 + i)),
              Value(static_cast<int64_t>(999999)),
              Value(static_cast<int64_t>(90)),
              Value(static_cast<int64_t>(2020)), Value(7.5),
              Value(static_cast<int64_t>(3)),
              Value(static_cast<int64_t>(500))}));
  }
  // Goodbye() pumps the socket: the insert acks route to their futures
  // while it waits for the deferred bye.
  ClientResponse bye = client.Goodbye();
  ASSERT_TRUE(bye.ok) << bye.error.message;
  EXPECT_EQ(bye.info, "bye");
  for (auto& future : inserts) {
    ASSERT_TRUE(future.ready());  // answered before, not instead of, the bye
    EXPECT_TRUE(future.Get().ok);
  }
  // The inserts actually executed, not just got acked.
  psql::QueryResult all =
      engine_.Execute("SELECT oid FROM car WHERE price >= 999000",
                      ServerOptions::DefaultSessionBmo());
  EXPECT_EQ(all.relation.size(), 3u);
}

// --- out-buffer backpressure -------------------------------------------------

class TinyOutBufFixture : public PipelineFixture {
 protected:
  ServerOptions Options() override {
    ServerOptions options;
    options.max_outbuf_bytes = 64 * 1024;
    return options;
  }
};

TEST_F(TinyOutBufFixture, NonReadingPipelinerPausesReadsAndLosesNothing) {
  Client client = Connect();
  // Full-table scans (~100 KB serialized each) pipelined in rounds while
  // the client reads nothing back. Once the kernel socket buffers fill,
  // pending responses pile up server-side past the 64 KiB cap, so a
  // later round's read pass must find reading paused — bounded memory
  // instead of an out-buffer growing with every unread response.
  const char* sql = "SELECT * FROM car WHERE price >= 0 LIMIT 1000";
  constexpr int kRounds = 30;
  constexpr int kPerRound = 10;
  std::vector<Client::ResponseFuture> futures;
  futures.reserve(kRounds * kPerRound);
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kPerRound; ++i) {
      futures.push_back(client.SendQuery(sql));
    }
    // Let this round's responses land before the next round's requests,
    // so a read pass observes the backlog.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(server_->stats().read_pauses, 0u);
  // Backpressure deferred — not dropped — the paused requests: draining
  // the socket releases every response intact.
  psql::QueryResult expected = Reference(sql);
  for (auto& future : futures) {
    ClientResponse response = future.Get();
    ASSERT_TRUE(response.ok) << response.error.message;
    EXPECT_TRUE(response.relation == expected.relation);
  }
  EXPECT_TRUE(client.Goodbye().ok);
  EXPECT_EQ(server_->stats().queries_ok,
            static_cast<uint64_t>(kRounds * kPerRound));
}

// --- request-id protocol errors ---------------------------------------------

TEST_F(TwoWorkerFixture, DuplicateInFlightRequestIdIsRejected) {
  Client client = Connect();
  // Pin request id 7 on the delayed query, then reuse it while it is
  // still executing. The duplicate is answered immediately with a
  // protocol error; the original completes normally afterwards.
  client.SendRawBytes(EncodeTaggedFrame(7, Frame{FrameType::kQuery,
                                                 kMixQueries[1]}));
  client.SendRawBytes(EncodeTaggedFrame(7, Frame{FrameType::kPing, ""}));
  Frame first = client.ReadResponse();
  ASSERT_EQ(first.type, FrameType::kError);
  psql::QueryError error = psql::DeserializeError(first.payload);
  EXPECT_EQ(error.code, psql::ErrorCode::kProtocol);
  EXPECT_NE(error.message.find("already in flight"), std::string::npos);
  Frame second = client.ReadResponse();
  EXPECT_EQ(second.type, FrameType::kResult);
  // The connection survives the duplicate.
  client.SendRawBytes(EncodeTaggedFrame(8, Frame{FrameType::kPing, ""}));
  EXPECT_EQ(client.ReadResponse().type, FrameType::kOk);
}

TEST_F(PipelineFixture, ZeroRequestIdIsRejectedWithoutClosing) {
  Client client = Connect();
  client.SendRawBytes(EncodeTaggedFrame(kNoRequestId,
                                        Frame{FrameType::kPing, ""}));
  Frame reply = client.ReadResponse();
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(psql::DeserializeError(reply.payload).code,
            psql::ErrorCode::kProtocol);
  client.SendRawBytes(EncodeTaggedFrame(1, Frame{FrameType::kPing, ""}));
  EXPECT_EQ(client.ReadResponse().type, FrameType::kOk);
}

TEST_F(PipelineFixture, UntaggedV2FrameClosesTheConnection) {
  Client client = Connect();
  // A 3-byte payload cannot carry the 8-byte request id: unframable.
  client.SendRawBytes(EncodeFrame(Frame{FrameType::kQuery, "abc"}));
  Frame reply = client.ReadResponse();
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(psql::DeserializeError(reply.payload).code,
            psql::ErrorCode::kProtocol);
  EXPECT_THROW(client.ReadResponse(), std::runtime_error);
}

TEST(ClientRoutingTest, UnknownRequestIdOnTheWireThrows) {
  // A hand-rolled one-connection server that answers request 1 with a
  // response tagged 999: the client must refuse to guess.
  int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)),
            0);
  ASSERT_EQ(listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  uint16_t port = ntohs(addr.sin_port);

  std::thread impostor([listen_fd] {
    int fd = accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    Frame hello;
    ASSERT_EQ(ReadFrame(fd, &hello, 1 << 20), ReadStatus::kOk);
    ASSERT_EQ(hello.type, FrameType::kHello);
    ASSERT_TRUE(WriteFrame(fd, Frame{FrameType::kHello, EncodeHello(2)}));
    Frame request;
    ASSERT_EQ(ReadFrame(fd, &request, 1 << 20), ReadStatus::kOk);
    ASSERT_TRUE(WriteFully(
        fd, EncodeTaggedFrame(999, Frame{FrameType::kOk, "pong"})));
    close(fd);
  });

  Client client;
  client.Connect(kHost, port);
  Client::ResponseFuture future = client.SendPing();
  EXPECT_THROW(future.Get(), psql::ProtocolError);
  impostor.join();
  close(listen_fd);
}

// --- partial-frame reassembly over the wire ---------------------------------

TEST_F(PipelineFixture, ByteDribbledFramesAreReassembled) {
  Client client = Connect();
  std::string wire =
      EncodeTaggedFrame(3, Frame{FrameType::kQuery, kMixQueries[4]});
  // Force the frame across many reads: a few bytes per write with pauses
  // long enough that the event loop drains between them.
  size_t pos = 0;
  while (pos < wire.size()) {
    size_t chunk = std::min<size_t>(3, wire.size() - pos);
    client.SendRawBytes(wire.substr(pos, chunk));
    pos += chunk;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Frame reply = client.ReadResponse();
  ASSERT_EQ(reply.type, FrameType::kResult);
  auto parsed = ParseResult(reply.payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->relation == Reference(kMixQueries[4]).relation);
}

// --- SessionOptions ---------------------------------------------------------

TEST(SessionOptionsTest, AppliesAndSerializesTheWholeVocabulary) {
  SessionOptions options;
  EXPECT_EQ(options.Apply("threads", "4"), "");
  EXPECT_EQ(options.bmo.num_threads, 4u);
  EXPECT_EQ(options.Apply("timeout_ms", "1500"), "");
  EXPECT_EQ(options.timeout_ms, 1500u);
  EXPECT_EQ(options.Apply("vectorize", "off"), "");
  EXPECT_FALSE(options.bmo.vectorize);
  EXPECT_EQ(options.Apply("algorithm", "sfs"), "");
  EXPECT_EQ(options.bmo.algorithm, BmoAlgorithm::kSortFilter);
  EXPECT_EQ(options.Apply("simd", "scalar"), "");
  EXPECT_EQ(options.Apply("max_pending_deltas", "8"), "");
  EXPECT_EQ(options.max_pending_deltas, 8u);

  EXPECT_NE(options.Apply("threads", "many"), "");
  EXPECT_NE(options.Apply("algorithm", "quantum"), "");
  EXPECT_NE(options.Apply("no_such_option", "1"), "");
  EXPECT_NE(options.ApplyWire("garbage"), "");

  // Serialize() round-trips through Apply() onto a fresh struct.
  SessionOptions copy;
  for (const auto& [name, value] : options.Serialize()) {
    EXPECT_EQ(copy.Apply(name, value), "") << name << "=" << value;
  }
  EXPECT_EQ(copy.bmo.num_threads, options.bmo.num_threads);
  EXPECT_EQ(copy.timeout_ms, options.timeout_ms);
  EXPECT_EQ(copy.bmo.vectorize, options.bmo.vectorize);
  EXPECT_EQ(copy.bmo.algorithm, options.bmo.algorithm);
  EXPECT_EQ(copy.bmo.simd, options.bmo.simd);
  EXPECT_EQ(copy.max_pending_deltas, options.max_pending_deltas);
}

TEST_F(PipelineFixture, ConfigureAppliesSessionOptionsOverTheWire) {
  Client client = Connect();
  SessionOptions options;
  options.bmo.num_threads = 2;
  options.timeout_ms = 10000;
  client.Configure(options);
  ClientResponse response = client.Query(kMixQueries[0]);
  ASSERT_TRUE(response.ok);
  EXPECT_TRUE(response.relation == Reference(kMixQueries[0]).relation);
}

// --- mixed pipelined load (TSan surface) ------------------------------------

TEST_F(PipelineFixture, SixteenPipelinedSessionsWithSubscriptionsStayCoherent) {
  constexpr size_t kSessions = 16;
  constexpr int kRounds = 3;
  std::vector<psql::QueryResult> expected;
  for (const char* sql : kMixQueries) expected.push_back(Reference(sql));

  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      Client client;
      client.Connect(kHost, server_->port());
      // Odd sessions also hold a subscription so delta pushes interleave
      // with pipelined responses on the same connections.
      if (s % 2 == 1) {
        if (!client
                 .Subscribe("SELECT * FROM car PREFERRING LOWEST(price)")
                 .ok) {
          failures.fetch_add(1);
        }
      }
      for (int round = 0; round < kRounds; ++round) {
        std::vector<Client::ResponseFuture> futures;
        for (const char* sql : kMixQueries) {
          futures.push_back(client.SendQuery(sql));
        }
        for (size_t i = 0; i < futures.size(); ++i) {
          ClientResponse response = futures[i].Get();
          if (!response.ok) {
            failures.fetch_add(1);
          } else if (!(response.relation == expected[i].relation)) {
            mismatches.fetch_add(1);
          }
        }
      }
      client.Goodbye();
    });
  }
  for (auto& t : sessions) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server_->stats().queries_ok,
            kSessions * kRounds * std::size(kMixQueries));
}

}  // namespace
}  // namespace prefdb::server
