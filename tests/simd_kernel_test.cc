// SIMD kernel equivalence suite (exec/simd/dominance.h): the batch
// scalar and AVX2 dominance kernels and the tiled BNL window loop must
// return exactly the closure-based answer for every compilable term —
// randomized across Pareto/prioritized/layered/pos-neg/numeric leaves,
// including NULL and NaN columns, ragged tails (N not a multiple of the
// lane width), forced-algorithm paths (BNL/SFS/D&C) and the parallel
// engine's shared-table merge.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/vectors.h"
#include "eval/bmo.h"
#include "exec/parallel_bmo.h"
#include "exec/score_table.h"
#include "exec/simd/dominance.h"
#include "test_support.h"

namespace prefdb {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

BmoOptions WithKernel(BmoAlgorithm algo, SimdMode simd,
                      size_t tile = 0) {
  BmoOptions options;
  options.algorithm = algo;
  options.vectorize = true;
  options.simd = simd;
  options.bnl_tile_rows = tile;
  return options;
}

BmoOptions Closure(BmoAlgorithm algo = BmoAlgorithm::kBlockNestedLoop) {
  BmoOptions options;
  options.algorithm = algo;
  options.vectorize = false;
  return options;
}

// The kernel modes every equivalence check sweeps. kAvx2 degrades to the
// batch scalar kernels on machines without AVX2, which still exercises
// the dispatch path.
std::vector<SimdMode> KernelModes() {
  return {SimdMode::kOff, SimdMode::kScalar, SimdMode::kAvx2};
}

// A relation with level-friendly string columns and numeric columns,
// including NULLs and NaN in the numeric ones.
Relation MixedRelation(size_t n, uint64_t seed, bool with_nan) {
  std::mt19937_64 rng(seed);
  Schema s({{"color", ValueType::kString},
            {"make", ValueType::kString},
            {"price", ValueType::kInt},
            {"score", ValueType::kDouble}});
  const std::vector<Value> colors = {"red", "blue", "green", "black", ""};
  const std::vector<Value> makes = {"Audi", "BMW", "Opel"};
  Relation r(s);
  for (size_t i = 0; i < n; ++i) {
    Value color = colors[rng() % colors.size()];
    Value make = makes[rng() % makes.size()];
    Value price = rng() % 17 == 0 ? Value() : Value(int64_t(rng() % 50));
    Value score = rng() % 13 == 0 ? Value() : Value(double(rng() % 40) / 4);
    if (with_nan && rng() % 11 == 0) score = Value(kNaN);
    r.Add(Tuple({color, make, price, score}));
  }
  return r;
}

// Random compilable terms over MixedRelation's columns (the fragment the
// score table compiles; mirrors score_table_test's generator).
class CompilableTermGen {
 public:
  explicit CompilableTermGen(uint64_t seed) : rng_(seed) {}

  PrefPtr Leaf() {
    switch (rng_() % 8) {
      case 0: return Pos("color", {"red", "blue"});
      case 1: return Neg("color", {"black"});
      case 2: return PosNeg("color", {"red"}, {"green"});
      case 3: return PosPos("make", {"Audi"}, {"BMW"});
      case 4:
        return Layered("color", {{{Value("red")}, false},
                                 LayeredPreference::Others(),
                                 {{Value("black")}, false}});
      case 5: return Lowest("price");
      case 6: return Around("score", 5.0);
      default: return Between("price", 10, 30);
    }
  }

  PrefPtr Term(int depth) {
    if (depth <= 0) return Leaf();
    switch (rng_() % 5) {
      case 0: return Pareto(Term(depth - 1), Term(depth - 1));
      case 1: return Prioritized(Term(depth - 1), Term(depth - 1));
      case 2: return Dual(Leaf());
      case 3: return Dual(Term(depth - 1));  // dual of accumulations too
      default: return Leaf();
    }
  }

 private:
  std::mt19937_64 rng_;
};

std::vector<size_t> Rows(const Relation& r, const PrefPtr& p,
                         const BmoOptions& options) {
  return BmoIndices(r, p, options);
}

TEST(SimdKernelTest, RandomTermsMatchClosureAcrossKernels) {
  CompilableTermGen gen(7);
  for (int round = 0; round < 30; ++round) {
    Relation r = MixedRelation(300 + 17 * round, 1000 + round,
                               /*with_nan=*/round % 3 == 0);
    PrefPtr p = gen.Term(3);
    std::vector<size_t> expected = Rows(r, p, Closure());
    for (SimdMode mode : KernelModes()) {
      EXPECT_EQ(Rows(r, p, WithKernel(BmoAlgorithm::kBlockNestedLoop, mode)),
                expected)
          << "term=" << p->ToString() << " simd=" << SimdModeName(mode);
      EXPECT_EQ(Rows(r, p, WithKernel(BmoAlgorithm::kSortFilter, mode)),
                expected)
          << "term=" << p->ToString() << " simd=" << SimdModeName(mode);
    }
  }
}

TEST(SimdKernelTest, RaggedTailsEveryResidue) {
  // N % kLanes covers every residue, including blocks smaller than one
  // lane chunk and the empty window edge.
  CompilableTermGen gen(21);
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 9u, 31u, 63u, 65u, 127u}) {
    Relation r = MixedRelation(n, 99 + n, /*with_nan=*/n % 2 == 0);
    PrefPtr p = gen.Term(2);
    std::vector<size_t> expected = Rows(r, p, Closure());
    for (SimdMode mode : KernelModes()) {
      EXPECT_EQ(Rows(r, p, WithKernel(BmoAlgorithm::kBlockNestedLoop, mode)),
                expected)
          << "n=" << n << " term=" << p->ToString()
          << " simd=" << SimdModeName(mode);
    }
  }
}

TEST(SimdKernelTest, TiledEqualsUntiledBnl) {
  // Tiny tiles force the tile-reduce-then-merge path from the first
  // window overflow; the result must be identical to the untiled scan
  // (and to the closure answer).
  CompilableTermGen gen(5);
  for (int round = 0; round < 10; ++round) {
    Relation r = MixedRelation(700, 400 + round, /*with_nan=*/round % 2);
    PrefPtr p = gen.Term(3);
    std::vector<size_t> expected = Rows(r, p, Closure());
    for (SimdMode mode : {SimdMode::kScalar, SimdMode::kAvx2}) {
      for (size_t tile : {8u, 64u, 100000u}) {
        EXPECT_EQ(
            Rows(r, p, WithKernel(BmoAlgorithm::kBlockNestedLoop, mode, tile)),
            expected)
            << "term=" << p->ToString() << " simd=" << SimdModeName(mode)
            << " tile=" << tile;
      }
    }
  }
}

TEST(SimdKernelTest, SkylineDivideConquerAcrossKernels) {
  // The D&C base-case blocks run through the batch kernels; the flags
  // must match the closure answer and the rowwise D&C.
  for (size_t d : {2u, 3u, 5u}) {
    Relation r = GenerateVectors(2000, d, Correlation::kAntiCorrelated, 11);
    std::vector<PrefPtr> prefs;
    for (size_t i = 0; i < d; ++i) {
      prefs.push_back(Highest("d" + std::to_string(i)));
    }
    PrefPtr p = Pareto(prefs);
    std::vector<size_t> expected =
        Rows(r, p, Closure(BmoAlgorithm::kDivideConquer));
    for (SimdMode mode : KernelModes()) {
      EXPECT_EQ(Rows(r, p, WithKernel(BmoAlgorithm::kDivideConquer, mode)),
                expected)
          << "d=" << d << " simd=" << SimdModeName(mode);
    }
  }
}

TEST(SimdKernelTest, ParallelSharedTableAcrossKernels) {
  Relation r = GenerateVectors(20000, 3, Correlation::kIndependent, 3);
  PrefPtr p = Prioritized(
      Pareto(Highest("d0"), Highest("d1")), Lowest("d2"));
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  PhysicalPlan closure_plan;
  closure_plan.vectorize = false;
  closure_plan.min_partition_size = 512;
  std::vector<bool> expected =
      MaximaParallel(proj.values, p, proj.proj_schema, closure_plan);
  for (SimdMode mode : KernelModes()) {
    PhysicalPlan plan;
    plan.min_partition_size = 512;
    plan.simd = mode;
    plan.bnl_tile_rows = 256;  // exercise tiling inside partitions
    EXPECT_EQ(MaximaParallel(proj.values, p, proj.proj_schema, plan),
              expected)
        << "simd=" << SimdModeName(mode);
  }
}

TEST(SimdKernelTest, ForcedAvx2DegradesGracefully) {
  // On machines without AVX2 the forced mode must silently run the batch
  // scalar kernels; on machines with it, both must agree anyway.
  Relation r = MixedRelation(500, 77, /*with_nan=*/true);
  PrefPtr p = Pareto(Lowest("price"), Around("score", 3.0));
  EXPECT_EQ(Rows(r, p, WithKernel(BmoAlgorithm::kBlockNestedLoop,
                                  SimdMode::kAvx2)),
            Rows(r, p, WithKernel(BmoAlgorithm::kBlockNestedLoop,
                                  SimdMode::kScalar)));
  const simd::KernelOps* ops = simd::ResolveKernel(SimdMode::kAuto);
  ASSERT_NE(ops, nullptr);
  if (simd::Avx2Available()) {
    EXPECT_STREQ(ops->name, "avx2");
  } else {
    EXPECT_STREQ(ops->name, "scalar");
  }
  EXPECT_EQ(simd::ResolveKernel(SimdMode::kOff), nullptr);
}

TEST(SimdKernelTest, AllNullAndConstantColumns) {
  // Degenerate blocks: every value NULL (unscorable, -inf fast paths) or
  // a single equality class per column.
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kDouble}});
  Relation r(s);
  for (int i = 0; i < 37; ++i) r.Add(Tuple({Value(), Value(1.5)}));
  PrefPtr p = Pareto(Lowest("a"), Highest("b"));
  std::vector<size_t> expected = Rows(r, p, Closure());
  for (SimdMode mode : KernelModes()) {
    EXPECT_EQ(Rows(r, p, WithKernel(BmoAlgorithm::kBlockNestedLoop, mode)),
              expected);
    EXPECT_EQ(Rows(r, p, WithKernel(BmoAlgorithm::kSortFilter, mode)),
              expected);
  }
}

}  // namespace
}  // namespace prefdb
