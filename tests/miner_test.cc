// Tests for preference mining from query logs (mining/miner.h): synthetic
// logs generated from a *known* preference must let the miner recover the
// constructor structure.

#include "mining/miner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/numeric_preferences.h"
#include "eval/bmo.h"

namespace prefdb::mining {
namespace {

Schema CarSchema() {
  return Schema({{"color", ValueType::kString},
                 {"price", ValueType::kInt},
                 {"year", ValueType::kInt}});
}

// Builds a log where a simulated user with the given row-chooser clicks
// one row per session.
template <typename Chooser>
std::vector<LogEntry> MakeLog(size_t sessions, uint64_t seed,
                              Chooser choose) {
  std::mt19937_64 rng(seed);
  static const char* kColors[] = {"red", "blue", "gray", "black", "white"};
  std::vector<LogEntry> log;
  for (size_t s = 0; s < sessions; ++s) {
    Relation shown(CarSchema());
    for (int i = 0; i < 12; ++i) {
      shown.Add({Value(kColors[rng() % 5]),
                 Value(static_cast<int64_t>(5000 + rng() % 20000)),
                 Value(static_cast<int64_t>(1992 + rng() % 10))});
    }
    LogEntry entry{shown, {choose(shown, rng)}};
    log.push_back(std::move(entry));
  }
  return log;
}

size_t PickCheapest(const Relation& shown, std::mt19937_64&) {
  size_t best = 0;
  for (size_t i = 1; i < shown.size(); ++i) {
    if (shown.at(i)[1] < shown.at(best)[1]) best = i;
  }
  return best;
}

TEST(MinerTest, RecoversLowestFromCheapskateClicks) {
  auto log = MakeLog(60, 1, PickCheapest);
  MiningResult result = MinePreferences(log);
  const MinedAttribute* price = nullptr;
  for (const auto& m : result.attributes) {
    if (m.attribute == "price") price = &m;
  }
  ASSERT_NE(price, nullptr);
  EXPECT_EQ(price->preference->kind(), PreferenceKind::kLowest);
}

TEST(MinerTest, RecoversHighestFromNewestClicks) {
  auto log = MakeLog(60, 2, [](const Relation& shown, std::mt19937_64&) {
    size_t best = 0;
    for (size_t i = 1; i < shown.size(); ++i) {
      if (shown.at(best)[2] < shown.at(i)[2]) best = i;
    }
    return best;
  });
  MiningResult result = MinePreferences(log);
  const MinedAttribute* year = nullptr;
  for (const auto& m : result.attributes) {
    if (m.attribute == "year") year = &m;
  }
  ASSERT_NE(year, nullptr);
  EXPECT_EQ(year->preference->kind(), PreferenceKind::kHighest);
}

TEST(MinerTest, RecoversPosSetFromColorFans) {
  // The user picks a red car whenever one is shown, else random.
  auto log = MakeLog(120, 3, [](const Relation& shown, std::mt19937_64& rng) {
    for (size_t i = 0; i < shown.size(); ++i) {
      if (shown.at(i)[0] == Value("red")) return i;
    }
    return static_cast<size_t>(rng() % shown.size());
  });
  MiningResult result = MinePreferences(log);
  const MinedAttribute* color = nullptr;
  for (const auto& m : result.attributes) {
    if (m.attribute == "color") color = &m;
  }
  ASSERT_NE(color, nullptr);
  ASSERT_TRUE(color->preference->kind() == PreferenceKind::kPos ||
              color->preference->kind() == PreferenceKind::kPosNeg)
      << color->preference->ToString();
  // 'red' must be in the favored set.
  Schema s({{"color", ValueType::kString}});
  auto less = color->preference->Bind(s);
  EXPECT_TRUE(less(Tuple({Value("blue")}), Tuple({Value("red")})));
}

TEST(MinerTest, RecoversAroundFromTargetedClicks) {
  // The user always picks the car closest to 12000.
  auto log = MakeLog(80, 4, [](const Relation& shown, std::mt19937_64&) {
    size_t best = 0;
    auto dist = [&shown](size_t i) {
      return std::abs(*shown.at(i)[1].numeric() - 12000.0);
    };
    for (size_t i = 1; i < shown.size(); ++i) {
      if (dist(i) < dist(best)) best = i;
    }
    return best;
  });
  MiningResult result = MinePreferences(log);
  const MinedAttribute* price = nullptr;
  for (const auto& m : result.attributes) {
    if (m.attribute == "price") price = &m;
  }
  ASSERT_NE(price, nullptr);
  ASSERT_EQ(price->preference->kind(), PreferenceKind::kAround);
  double target =
      dynamic_cast<const prefdb::AroundPreference&>(*price->preference).target();
  EXPECT_NEAR(target, 12000.0, 2500.0);
}

TEST(MinerTest, RandomClicksYieldNoNumericEvidence) {
  auto log = MakeLog(80, 5, [](const Relation& shown, std::mt19937_64& rng) {
    return static_cast<size_t>(rng() % shown.size());
  });
  MiningResult result = MinePreferences(log);
  for (const auto& m : result.attributes) {
    EXPECT_NE(m.attribute, "price") << m.preference->ToString();
    EXPECT_NE(m.attribute, "year") << m.preference->ToString();
  }
}

TEST(MinerTest, CombinedTermIsUsableForBmo) {
  auto log = MakeLog(60, 6, PickCheapest);
  MiningResult result = MinePreferences(log);
  ASSERT_NE(result.combined, nullptr);
  Relation catalog = log[0].shown;
  Relation best = Bmo(catalog, result.combined);
  EXPECT_GE(best.size(), 1u);
}

TEST(MinerTest, EmptyLogYieldsNothing) {
  MiningResult result = MinePreferences({});
  EXPECT_TRUE(result.attributes.empty());
  EXPECT_EQ(result.combined, nullptr);
}

TEST(MinerTest, ValidatesInput) {
  Relation a(CarSchema());
  a.Add({Value("red"), Value(1), Value(1999)});
  Relation b(Schema{{"other", ValueType::kInt}});
  b.Add({Value(1)});
  EXPECT_THROW(MinePreferences({{a, {0}}, {b, {0}}}), std::invalid_argument);
  EXPECT_THROW(MinePreferences({{a, {5}}}), std::invalid_argument);
}

}  // namespace
}  // namespace prefdb::mining
