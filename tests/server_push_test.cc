// Server-push tests for continuous preference queries: the kSubscribe /
// kDelta wire path. Covers the delta codec round-trip (NULL/NaN/string
// escapes included), subscribe-then-push end to end, delta interleaving
// with request/response traffic, the SET max_pending_deltas session
// option with slow-subscriber coalescing, and negative paths (invalid
// statements, malformed delta payloads). Part of CI's TSan matrix job.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "psql/error.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace prefdb::server {
namespace {

const char* kHost = "127.0.0.1";

Relation SmallCars() {
  Relation car(Schema{{"make", ValueType::kString},
                      {"price", ValueType::kInt},
                      {"mileage", ValueType::kInt}});
  car.Add({"Opel", 38, 30});
  car.Add({"Opel", 41, 60});
  car.Add({"BMW", 39, 20});
  return car;
}

std::vector<std::string> RowSet(const Relation& rel) {
  std::vector<std::string> out;
  for (const Tuple& t : rel.tuples()) out.push_back(t.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

class PushFixture : public ::testing::Test {
 protected:
  virtual ServerOptions Options() { return ServerOptions{}; }
  void SetUp() override {
    engine_.RegisterTable("car", SmallCars());
    server_ = std::make_unique<Server>(&engine_, Options());
    server_->Start();
  }
  Client Connect() {
    Client client;
    client.Connect(kHost, server_->port());
    return client;
  }
  Engine engine_;
  std::unique_ptr<Server> server_;
};

TEST(DeltaCodecTest, RoundTripsExactly) {
  Schema schema({{"s", ValueType::kString},
                 {"i", ValueType::kInt},
                 {"d", ValueType::kDouble}});
  std::vector<Tuple> enters = {
      Tuple{Value("with space, comma\nand newline"), Value(static_cast<int64_t>(-7)),
            Value(std::nan(""))},
      Tuple{Value(), Value(static_cast<int64_t>(1) << 62), Value(-0.0)},
  };
  std::vector<Tuple> exits = {Tuple{Value(""), Value(static_cast<int64_t>(0)),
                                    Value(1.0 / 3.0)}};
  std::string payload = SerializeDelta(42, schema, 9, true, enters, exits);
  auto parsed = ParseDelta(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->subscription, 42u);
  EXPECT_EQ(parsed->version, 9u);
  EXPECT_TRUE(parsed->resync);
  ASSERT_EQ(parsed->enters.size(), 2u);
  ASSERT_EQ(parsed->exits.size(), 1u);
  EXPECT_EQ(parsed->enters.schema().at(0).name, "s");
  EXPECT_EQ(parsed->enters.at(0)[0], Value("with space, comma\nand newline"));
  EXPECT_TRUE(std::isnan(parsed->enters.at(0)[2].as_double()));
  EXPECT_EQ(parsed->exits.at(0)[2], Value(1.0 / 3.0));
}

TEST(DeltaCodecTest, RejectsMalformedPayloads) {
  Schema schema({{"i", ValueType::kInt}});
  std::string good = SerializeDelta(1, schema, 2, false,
                                    {Tuple{Value(static_cast<int64_t>(5))}}, {});
  ASSERT_TRUE(ParseDelta(good).has_value());
  EXPECT_FALSE(ParseDelta("").has_value());
  EXPECT_FALSE(ParseDelta("subscription x\n").has_value());
  EXPECT_FALSE(ParseDelta(good + "trailing").has_value());
  // Row-count lies (both directions) must not parse.
  std::string lied = good;
  size_t at = lied.find("enters 1");
  lied.replace(at, 8, "enters 2");
  EXPECT_FALSE(ParseDelta(lied).has_value());
  std::string huge = good;
  huge.replace(at, 8, "enters 1152921504606846976");
  EXPECT_FALSE(ParseDelta(huge).has_value());
  // Arity mismatch between schema and row.
  std::string two_cols = SerializeDelta(
      1, Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}), 2, false,
      {Tuple{Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(2))}},
      {});
  size_t schema_at = two_cols.find("schema a:INT,b:INT");
  std::string mismatched = two_cols;
  mismatched.replace(schema_at, std::strlen("schema a:INT,b:INT"),
                     "schema a:INT");
  EXPECT_FALSE(ParseDelta(mismatched).has_value());
}

TEST_F(PushFixture, SubscribeDeliversBootstrapThenDeltas) {
  Client client = Connect();
  ClientResponse sub =
      client.Subscribe("SELECT * FROM car PREFERRING LOWEST(price)");
  ASSERT_TRUE(sub.ok);
  EXPECT_GT(sub.handle, 0u);

  auto boot = client.ReadDelta(2000);
  ASSERT_TRUE(boot.has_value());
  EXPECT_EQ(boot->subscription, sub.handle);
  EXPECT_TRUE(boot->resync);
  EXPECT_EQ(RowSet(boot->enters),
            RowSet(engine_.Execute("SELECT * FROM car PREFERRING LOWEST(price)")
                       .relation));

  // A mutation from another session pushes a delta to this one.
  Client writer = Connect();
  ASSERT_TRUE(writer.Insert("car", Tuple{Value("Ford"),
                                         Value(static_cast<int64_t>(1)),
                                         Value(static_cast<int64_t>(1))})
                  .ok);
  auto delta = client.ReadDelta(2000);
  ASSERT_TRUE(delta.has_value());
  EXPECT_FALSE(delta->resync);
  ASSERT_EQ(delta->enters.size(), 1u);
  EXPECT_EQ(delta->enters.at(0)[0], Value("Ford"));
  EXPECT_EQ(delta->exits.size(), 1u);  // old minimum leaves
  EXPECT_FALSE(client.ReadDelta(50).has_value());  // quiet stream -> timeout

  // DELETE FROM over the wire triggers the exit/enter flow back.
  ASSERT_TRUE(writer.Query("DELETE FROM car WHERE make = 'Ford'").ok);
  delta = client.ReadDelta(2000);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->exits.size(), 1u);
  EXPECT_EQ(delta->enters.size(), 1u);

  EXPECT_GE(server_->stats().subscriptions_opened, 1u);
  // The pushed counter is bumped after the socket write, so the client
  // can observe a delta a beat before the server's count reflects it.
  for (int i = 0; i < 100 && server_->stats().deltas_pushed < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server_->stats().deltas_pushed, 3u);
  client.Goodbye();
  writer.Goodbye();
}

TEST_F(PushFixture, DeltasInterleaveWithRequestsViaStash) {
  Client client = Connect();
  ASSERT_TRUE(
      client.Subscribe("SELECT * FROM car PREFERRING LOWEST(price)").ok);
  // Mutate from the same session: the push for our own insert may land
  // before the query response; Request() must stash it, not choke.
  ASSERT_TRUE(client.Insert("car", Tuple{Value("Ford"),
                                         Value(static_cast<int64_t>(1)),
                                         Value(static_cast<int64_t>(1))})
                  .ok);
  ClientResponse result =
      client.Query("SELECT * FROM car PREFERRING LOWEST(price)");
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.relation.size(), 1u);
  EXPECT_EQ(result.relation.at(0)[0], Value("Ford"));
  // Bootstrap + insert delta are both retrievable, in order.
  auto boot = client.ReadDelta(2000);
  ASSERT_TRUE(boot.has_value());
  EXPECT_TRUE(boot->resync);
  auto delta = client.ReadDelta(2000);
  ASSERT_TRUE(delta.has_value());
  EXPECT_FALSE(delta->resync);
  client.Goodbye();
}

TEST_F(PushFixture, InvalidSubscriptionsAreRejected) {
  Client client = Connect();
  ClientResponse r = client.Subscribe("SELECT * FROM car");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, psql::ErrorCode::kBadArgument);
  r = client.Subscribe("SELECT TOP 2 * FROM car PREFERRING LOWEST(price)");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, psql::ErrorCode::kBadArgument);
  r = client.Subscribe("SELECT * FROM nope PREFERRING LOWEST(price)");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, psql::ErrorCode::kNotFound);
  r = client.Subscribe("SELEC nonsense");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, psql::ErrorCode::kSyntax);
  // The session stays usable after rejections.
  EXPECT_TRUE(client.Ping().ok);
  client.Goodbye();
}

// The pusher normally drains the engine-side queue faster than mutations
// arrive, so overflowing a 1-slot queue from a test needs a genuinely
// slow consumer: the debug_push_delay_ms hook holds the pusher between
// drain attempts, letting a burst of inserts pile up engine-side.
class SlowPushFixture : public PushFixture {
 protected:
  ServerOptions Options() override {
    ServerOptions options;
    options.debug_push_delay_ms = 300;
    return options;
  }
};

TEST_F(SlowPushFixture, SetMaxPendingDeltasCoalescesSlowSubscriber) {
  Client client = Connect();
  // Negative: non-numeric value is rejected.
  ClientResponse bad = client.Set("max_pending_deltas", "lots");
  ASSERT_FALSE(bad.ok);
  EXPECT_EQ(bad.error.code, psql::ErrorCode::kBadArgument);

  ASSERT_TRUE(client.Set("max_pending_deltas", "1").ok);
  ClientResponse sub =
      client.Subscribe("SELECT * FROM car PREFERRING LOWEST(price)");
  ASSERT_TRUE(sub.ok);
  // Drain the bootstrap so the engine-side queue is empty, then a burst
  // of improving inserts lands within one pusher-delay window and
  // overflows the 1-slot queue.
  ASSERT_TRUE(client.ReadDelta(2000).has_value());
  Client writer = Connect();
  for (int64_t price = 30; price > 20; --price) {
    ASSERT_TRUE(writer.Insert("car", Tuple{Value("Ford"), Value(price),
                                           Value(static_cast<int64_t>(1))})
                    .ok);
  }
  // Whatever was coalesced, the client must be able to recover the exact
  // current state from the stream: apply deltas in order, resync resets.
  std::vector<std::string> mirror =
      RowSet(engine_.Execute("SELECT * FROM car PREFERRING LOWEST(price)")
                 .relation);
  std::vector<std::string> state;
  bool saw_resync = false;
  for (;;) {
    auto delta = client.ReadDelta(500);
    if (!delta) break;
    if (delta->resync) {
      saw_resync = true;
      state = RowSet(delta->enters);
      continue;
    }
    for (const std::string& gone : RowSet(delta->exits)) {
      auto it = std::find(state.begin(), state.end(), gone);
      if (it != state.end()) state.erase(it);
    }
    for (const std::string& fresh : RowSet(delta->enters)) {
      state.push_back(fresh);
    }
    std::sort(state.begin(), state.end());
  }
  EXPECT_TRUE(saw_resync)
      << "a 1-deep queue under a 10-insert burst must coalesce";
  EXPECT_EQ(state, mirror);
  client.Goodbye();
  writer.Goodbye();
}

TEST_F(PushFixture, ServerStopClosesPushersCleanly) {
  Client client = Connect();
  ASSERT_TRUE(
      client.Subscribe("SELECT * FROM car PREFERRING LOWEST(price)").ok);
  ASSERT_TRUE(client.ReadDelta(2000).has_value());
  server_->Stop();
  // After stop, the connection eventually reports closure instead of
  // hanging; either a timeout-free nullopt (clean FIN) or a transport
  // throw is acceptable.
  try {
    auto delta = client.ReadDelta(2000);
    EXPECT_FALSE(delta.has_value());
  } catch (const std::exception&) {
    // connection reset — fine
  }
}

}  // namespace
}  // namespace prefdb::server
