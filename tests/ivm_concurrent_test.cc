// Concurrency tests for the subscription layer, exercised under TSan in
// CI (.github/workflows/ci.yml): concurrent Subscribe / Insert / Delete /
// Unsubscribe / Poll across threads must be free of data races, and every
// subscriber's delta stream must replay to a BMO-consistent state.

#include <atomic>
#include <algorithm>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "relation/relation.h"

namespace prefdb {
namespace {

using std::chrono::milliseconds;

Relation SeedTable(std::mt19937* rng, size_t rows) {
  Relation rel(Schema{{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  for (size_t i = 0; i < rows; ++i) {
    rel.Add({Value(static_cast<int64_t>((*rng)() % 64)),
             Value(static_cast<int64_t>((*rng)() % 64))});
  }
  return rel;
}

TEST(IvmConcurrentTest, SubscribeMutateUnsubscribeRaceFree) {
  Engine engine;
  std::mt19937 seed_rng(42);
  engine.RegisterTable("t", SeedTable(&seed_rng, 64));
  const char* kSql = "SELECT * FROM t PREFERRING LOWEST(a) AND LOWEST(b)";

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> deltas_seen{0};

  // Mutators: concurrent inserts and deletes on the subscribed table.
  std::vector<std::thread> threads;
  for (int m = 0; m < 2; ++m) {
    threads.emplace_back([&engine, &stop, m] {
      std::mt19937 rng(100 + m);
      while (!stop.load()) {
        if (rng() % 4 != 0) {
          engine.Insert("t", {Value(static_cast<int64_t>(rng() % 64)),
                              Value(static_cast<int64_t>(rng() % 64))});
        } else {
          int64_t cut = static_cast<int64_t>(rng() % 64);
          engine.Delete("t", [cut](const Tuple& row) {
            return row[0] == Value(cut) && row[1] == Value(cut);
          });
        }
      }
    });
  }

  // Subscribers: churn subscriptions while draining deltas. Each one
  // checks stream integrity (first delta is a resync; versions never go
  // backwards).
  for (int s = 0; s < 3; ++s) {
    threads.emplace_back([&engine, &stop, &deltas_seen, kSql] {
      while (!stop.load()) {
        Engine::Subscription sub = engine.Subscribe(kSql);
        auto boot = sub.WaitFor(milliseconds(500));
        ASSERT_TRUE(boot.has_value());
        EXPECT_TRUE(boot->resync);
        uint64_t last_version = boot->version;
        for (int i = 0; i < 20; ++i) {
          auto delta = sub.WaitFor(milliseconds(50));
          if (!delta) continue;
          EXPECT_GE(delta->version, last_version);
          last_version = delta->version;
          deltas_seen.fetch_add(1);
        }
        // RAII cancel on scope exit half the time, explicit the other.
        if (deltas_seen.load() % 2 == 0) sub.Cancel();
      }
    });
  }

  std::this_thread::sleep_for(milliseconds(1500));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(deltas_seen.load(), 0u);
  EXPECT_EQ(engine.SubscriptionCount(), 0u);
}

TEST(IvmConcurrentTest, EngineDestructionClosesLiveSubscriptions) {
  Engine::Subscription orphan;
  {
    Engine engine;
    std::mt19937 rng(7);
    engine.RegisterTable("t", SeedTable(&rng, 16));
    orphan = engine.Subscribe("SELECT * FROM t PREFERRING LOWEST(a)");
    ASSERT_TRUE(orphan.active());
    // Detach the handle from the engine before the engine dies: the
    // destructor-ordering contract is that a Subscription must not
    // outlive its Engine, so release engine-side state first.
    auto boot = orphan.Poll();
    ASSERT_TRUE(boot.has_value());
    orphan.Cancel();
  }
  EXPECT_TRUE(orphan.closed());
  EXPECT_FALSE(orphan.WaitFor(milliseconds(10)).has_value());
}

TEST(IvmConcurrentTest, QueriesAndMutationsAgainstSubscribedTable) {
  // Readers executing the subscribed statement (served from the
  // delta-refreshed exec cache) race mutators; results must always be
  // internally consistent (every returned row carries the minimum a).
  Engine engine;
  std::mt19937 rng(11);
  engine.RegisterTable("t", SeedTable(&rng, 128));
  const char* kSql = "SELECT * FROM t PREFERRING LOWEST(a)";
  Engine::Subscription sub = engine.Subscribe(kSql);

  std::atomic<bool> stop{false};
  std::thread mutator([&engine, &stop] {
    std::mt19937 mrng(13);
    while (!stop.load()) {
      engine.Insert("t", {Value(static_cast<int64_t>(mrng() % 64)),
                          Value(static_cast<int64_t>(mrng() % 64))});
      int64_t cut = static_cast<int64_t>(mrng() % 64);
      engine.Delete("t", [cut](const Tuple& row) {
        return row[0] == Value(cut) && row[1] == Value(cut);
      });
    }
  });
  for (int i = 0; i < 200; ++i) {
    Relation result = engine.Execute(kSql).relation;
    ASSERT_GT(result.size(), 0u);
    int64_t best = result.at(0)[0].as_int();
    for (const Tuple& row : result.tuples()) {
      ASSERT_EQ(row[0].as_int(), best) << "mixed-snapshot result";
    }
  }
  stop.store(true);
  mutator.join();
}

}  // namespace
}  // namespace prefdb
