// Stateful engine tests: plan/score-table cache correctness (warm results
// == cold results), invalidation on mutation, and race-freedom of
// concurrent PreparedQuery::Run (exercised under ASan in CI; run a TSan
// build locally for the data-race check).

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/cars.h"
#include "eval/ranked.h"
#include "psql/executor.h"

namespace prefdb {
namespace {

/// Legacy cold-execution reference: a throwaway Engine with both caches
/// off reproduces exactly what the removed stateless wrappers did —
/// parse, translate, optimize, compile and execute from scratch.
psql::QueryResult ColdExecute(const std::string& sql,
                              const psql::Catalog& catalog) {
  EngineOptions options;
  options.enable_plan_cache = false;
  options.enable_exec_cache = false;
  Engine engine(catalog, options);
  return engine.Execute(sql);
}

Relation SmallCars() {
  Schema s({{"make", ValueType::kString},
            {"category", ValueType::kString},
            {"color", ValueType::kString},
            {"price", ValueType::kInt},
            {"power", ValueType::kInt},
            {"mileage", ValueType::kInt}});
  Relation car(s);
  car.Add({"Opel", "roadster", "red", 38000, 140, 30000});
  car.Add({"Opel", "coupe", "red", 41000, 150, 60000});
  car.Add({"Opel", "passenger", "blue", 39500, 90, 20000});
  car.Add({"Opel", "roadster", "black", 45000, 170, 80000});
  car.Add({"BMW", "roadster", "red", 40000, 190, 10000});
  return car;
}

// The workload the caches must stay transparent for: a mix of WHERE,
// Pareto/prioritized/layered terms, grouping, EXPLAIN, skyline and
// quality supervision.
const char* kQueries[] = {
    "SELECT * FROM car PREFERRING LOWEST(price)",
    "SELECT make, price FROM car WHERE make = 'Opel' "
    "PREFERRING LOWEST(price) AND LOWEST(mileage)",
    "SELECT * FROM car PREFERRING (category = 'roadster' ELSE "
    "category <> 'passenger' AND price AROUND 40000 AND HIGHEST(power)) "
    "CASCADE color = 'red' CASCADE LOWEST(mileage)",
    "SELECT * FROM car PREFERRING LOWEST(price) GROUPING make",
    "SELECT * FROM car SKYLINE OF price MIN, mileage MIN",
    "EXPLAIN SELECT * FROM car PREFERRING LOWEST(price) AND "
    "LOWEST(mileage)",
    "SELECT * FROM car PREFERRING price AROUND 40000 "
    "BUT ONLY DISTANCE(price) <= 2000",
    "SELECT make FROM car WHERE price < 42000 LIMIT 2",
};

TEST(EngineTest, RepeatedRunMatchesColdExecution) {
  Relation car = SmallCars();
  psql::Catalog catalog;
  catalog.Register("car", car);
  Engine engine;
  engine.RegisterTable("car", car);
  for (const char* sql : kQueries) {
    psql::QueryResult cold = ColdExecute(sql, catalog);
    PreparedQuery prepared = engine.Prepare(sql);
    psql::QueryResult first = prepared.Run();
    psql::QueryResult second = prepared.Run();  // exec-cache hit
    psql::QueryResult third = engine.Execute(sql);  // plan-cache hit
    EXPECT_EQ(first.relation, cold.relation) << sql;
    EXPECT_EQ(second.relation, cold.relation) << sql;
    EXPECT_EQ(third.relation, cold.relation) << sql;
    EXPECT_EQ(first.plan, cold.plan) << sql;
    EXPECT_EQ(second.plan, cold.plan) << sql;
    EXPECT_TRUE(second.stats.exec_cache_hit) << sql;
    EXPECT_TRUE(third.stats.plan_cache_hit) << sql;
  }
  Engine::CacheStats stats = engine.cache_stats();
  EXPECT_GT(stats.exec_hits, 0u);
  EXPECT_GT(stats.plan_hits, 0u);
}

TEST(EngineTest, PlanCacheNormalizesWhitespaceAndComments) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  engine.Execute("SELECT * FROM car PREFERRING LOWEST(price)");
  psql::QueryResult res = engine.Execute(
      "SELECT   *  FROM car  -- comment\n   PREFERRING LOWEST(price) ;");
  EXPECT_TRUE(res.stats.plan_cache_hit);
  EXPECT_EQ(res.relation.size(), 1u);
}

TEST(EngineTest, StringLiteralsSurviveNormalization) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  // Spaces inside string literals are significant; spaces around are not.
  psql::QueryResult a =
      engine.Execute("SELECT * FROM car WHERE make = 'Opel'");
  psql::QueryResult b =
      engine.Execute("SELECT * FROM car WHERE make = ' Opel'");
  EXPECT_EQ(a.relation.size(), 4u);
  EXPECT_EQ(b.relation.size(), 0u);
  EXPECT_FALSE(b.stats.plan_cache_hit);
}

TEST(EngineTest, InsertInvalidatesAndRecomputes) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  PreparedQuery prepared =
      engine.Prepare("SELECT * FROM car PREFERRING LOWEST(price)");
  psql::QueryResult before = prepared.Run();
  ASSERT_EQ(before.relation.size(), 1u);
  EXPECT_EQ(before.relation.at(0)[3], Value(38000));
  uint64_t v1 = engine.TableVersion("car");

  // A new cheapest car must evict the cached score table and win.
  engine.Insert("car", Tuple{"VW", "passenger", "white", 9000, 75, 1000});
  EXPECT_GT(engine.TableVersion("car"), v1);
  psql::QueryResult after = prepared.Run();
  ASSERT_EQ(after.relation.size(), 1u);
  EXPECT_EQ(after.relation.at(0)[3], Value(9000));
  EXPECT_FALSE(after.stats.exec_cache_hit);
  EXPECT_GT(engine.cache_stats().invalidations, 0u);

  // The new state is cached again.
  psql::QueryResult warm = prepared.Run();
  EXPECT_TRUE(warm.stats.exec_cache_hit);
  EXPECT_EQ(warm.relation, after.relation);
}

TEST(EngineTest, RegisterTableInvalidates) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  PreparedQuery prepared =
      engine.Prepare("SELECT * FROM car PREFERRING HIGHEST(power)");
  EXPECT_EQ(prepared.Run().relation.at(0)[4], Value(190));
  Relation two(SmallCars().schema());
  two.Add({"Audi", "coupe", "silver", 50000, 300, 500});
  engine.RegisterTable("car", two);
  psql::QueryResult res = prepared.Run();
  ASSERT_EQ(res.relation.size(), 1u);
  EXPECT_EQ(res.relation.at(0)[4], Value(300));
}

TEST(EngineTest, MutationDuringPreparedLifetimeIsSnapshotted) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  std::shared_ptr<const Relation> snapshot = engine.Snapshot("car");
  engine.Insert("car", Tuple{"VW", "passenger", "white", 9000, 75, 1000});
  // The old snapshot is untouched (copy-on-write).
  EXPECT_EQ(snapshot->size(), 5u);
  EXPECT_EQ(engine.Snapshot("car")->size(), 6u);
}

TEST(EngineTest, ExplicitAlgorithmsShareTheCache) {
  Engine engine;
  engine.RegisterTable("car", GenerateCars(800, 11));
  const char* sql =
      "SELECT oid, price, mileage FROM car "
      "PREFERRING LOWEST(price) AND LOWEST(mileage)";
  BmoOptions bnl;
  bnl.algorithm = BmoAlgorithm::kBlockNestedLoop;
  BmoOptions sfs;
  sfs.algorithm = BmoAlgorithm::kSortFilter;
  BmoOptions closures;
  closures.vectorize = false;
  psql::QueryResult auto_res = engine.Execute(sql);
  psql::QueryResult bnl_res = engine.Execute(sql, bnl);
  psql::QueryResult sfs_res = engine.Execute(sql, sfs);
  psql::QueryResult closure_res = engine.Execute(sql, closures);
  EXPECT_TRUE(auto_res.relation.SameRows(bnl_res.relation));
  EXPECT_TRUE(auto_res.relation.SameRows(sfs_res.relation));
  EXPECT_TRUE(auto_res.relation.SameRows(closure_res.relation));
  // Distinct option signatures must not collide in the exec cache.
  EXPECT_TRUE(engine.Execute(sql, bnl).stats.exec_cache_hit);
  EXPECT_TRUE(engine.Execute(sql, closures).stats.exec_cache_hit);
}

TEST(EngineTest, ConcurrentRunsOnOnePreparedQuery) {
  Engine engine;
  engine.RegisterTable("car", GenerateCars(2000, 23));
  PreparedQuery prepared = engine.Prepare(
      "SELECT oid, price, mileage FROM car WHERE price < 30000 "
      "PREFERRING LOWEST(price) AND LOWEST(mileage)");
  psql::QueryResult expected = prepared.Run();
  ASSERT_GE(expected.relation.size(), 1u);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&prepared, &expected, &mismatches] {
      for (int i = 0; i < 20; ++i) {
        psql::QueryResult res = prepared.Run();
        if (!(res.relation == expected.relation)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(EngineTest, ConcurrentRunsRacingMutations) {
  Engine engine;
  engine.RegisterTable("car", GenerateCars(500, 5));
  PreparedQuery prepared =
      engine.Prepare("SELECT * FROM car PREFERRING LOWEST(price)");
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&prepared, &stop, &failures] {
      while (!stop.load()) {
        psql::QueryResult res = prepared.Run();
        // Every run sees a consistent snapshot: non-empty result with a
        // single minimal price.
        if (res.relation.empty()) failures.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 25; ++i) {
    // Schema: oid, make, category, color, transmission, price, mileage,
    // horsepower, year, fuel_economy, insurance_rating, commission.
    engine.Insert("car",
                  Tuple{static_cast<int64_t>(100000 + i), "VW", "suv", "blue",
                        "manual", 15000 + i, 1000 * i, 90, 1998, 8.0, 3, 300});
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(EngineTest, UnknownTableThrowsFromRun) {
  Engine engine;
  PreparedQuery prepared = engine.Prepare("SELECT * FROM nothing");
  EXPECT_THROW(prepared.Run(), std::out_of_range);
  // Registering the table afterwards makes the same prepared query work.
  engine.RegisterTable("nothing", SmallCars());
  EXPECT_EQ(prepared.Run().relation.size(), 5u);
}

TEST(EngineTest, CachesCanBeDisabled) {
  EngineOptions options;
  options.enable_plan_cache = false;
  options.enable_exec_cache = false;
  Engine engine(options);
  engine.RegisterTable("car", SmallCars());
  const char* sql = "SELECT * FROM car PREFERRING LOWEST(price)";
  psql::QueryResult a = engine.Execute(sql);
  psql::QueryResult b = engine.Execute(sql);
  EXPECT_FALSE(b.stats.plan_cache_hit);
  EXPECT_FALSE(b.stats.exec_cache_hit);
  EXPECT_EQ(a.relation, b.relation);
  Engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.plan_hits, 0u);
  EXPECT_EQ(stats.exec_hits, 0u);
}

TEST(EngineTest, ExplainCarriesTimingLine) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  psql::QueryResult res = engine.Execute(
      "EXPLAIN SELECT * FROM car PREFERRING LOWEST(price)");
  EXPECT_NE(res.plan_details.find("algorithm:"), std::string::npos);
  EXPECT_NE(res.plan_details.find("timing: parse="), std::string::npos);
  EXPECT_NE(res.plan_details.find("exec_cache="), std::string::npos);
  EXPECT_GT(res.stats.total_ns, 0u);
}

TEST(EngineTest, StoredPreferencesPrepareAndCache) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  engine.StorePreference(
      "wish", Prioritized(Neg("color", {"black"}), Lowest("price")));
  PreparedQuery q = engine.PrepareStored("car", "wish");
  psql::QueryResult res = q.Run();
  Relation direct = Bmo(*engine.Snapshot("car"), engine.GetPreference("wish"));
  EXPECT_EQ(res.relation, direct);
  EXPECT_TRUE(q.Run().stats.exec_cache_hit);
  // The same (table, term) pair shares the plan entry.
  engine.PrepareStored("car", "wish");
  EXPECT_GT(engine.cache_stats().plan_hits, 0u);
  EXPECT_THROW(engine.PrepareStored("car", "unknown"), std::out_of_range);
}

TEST(EngineTest, EqualRenderingDistinctTermsDoNotCollide) {
  // SubsetPreference::ToString renders only the subset SIZE, so two
  // different subsets of equal size have identical renderings; the term
  // plan cache must key by object identity, not the rendering.
  Engine engine;
  Relation r(Schema{{"x", ValueType::kInt}});
  for (int i = 0; i < 6; ++i) r.Add({i});
  engine.RegisterTable("t", r);
  PrefPtr low = Lowest("x");
  PrefPtr sub_a = Subset(low, {Tuple{0}, Tuple{1}});
  PrefPtr sub_b = Subset(low, {Tuple{4}, Tuple{5}});
  ASSERT_EQ(sub_a->ToString(), sub_b->ToString());
  Relation res_a = engine.Prepare("t", sub_a).Run().relation;
  Relation res_b = engine.Prepare("t", sub_b).Run().relation;
  EXPECT_EQ(res_a, Bmo(r, sub_a));
  EXPECT_EQ(res_b, Bmo(r, sub_b));
  EXPECT_FALSE(res_a == res_b);
}

TEST(EngineTest, ProgrammaticTermsIncludeRankF) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  // rank(F) has no SQL spelling; the programmatic path makes it cacheable.
  PrefPtr rank = RankWeightedSum(
      {1.0, 2.0}, {Lowest("price"), Around("mileage", 20000)});
  PreparedQuery q = engine.PrepareRanked("car", rank, 3);
  psql::QueryResult res = q.Run();
  RankedResult direct =
      TopK(*engine.Snapshot("car"),
           *std::dynamic_pointer_cast<const RankPreference>(rank), 3);
  EXPECT_EQ(res.relation, direct.relation);
  EXPECT_EQ(res.utilities, direct.utilities);
  EXPECT_TRUE(q.Run().stats.exec_cache_hit);
}

TEST(EngineTest, LruBoundsEvictColdEntries) {
  EngineOptions options;
  options.plan_cache_capacity = 4;
  options.exec_cache_capacity = 2;
  Engine engine(options);
  engine.RegisterTable("car", SmallCars());
  // Eight distinct statements against caps of 4/2 must evict.
  std::vector<std::string> sqls;
  for (int limit = 1; limit <= 8; ++limit) {
    sqls.push_back("SELECT * FROM car PREFERRING LOWEST(price) LIMIT " +
                   std::to_string(limit));
  }
  for (const std::string& sql : sqls) engine.Execute(sql);
  Engine::CacheStats stats = engine.cache_stats();
  EXPECT_GE(stats.plan_evictions, 4u);
  EXPECT_GE(stats.exec_evictions, 6u);
  // Evicted entries simply rebuild: correctness is unaffected, and the
  // counters are surfaced per query through QueryResult.stats.
  psql::QueryResult res = engine.Execute(sqls.front());
  EXPECT_FALSE(res.stats.exec_cache_hit);
  EXPECT_EQ(res.relation.size(), 1u);
  EXPECT_GE(res.stats.exec_cache_evictions, 6u);
  EXPECT_GE(res.stats.plan_cache_evictions, 4u);
  // The hot tail survives within the caps: re-running the most recent
  // statement hits both caches.
  engine.Execute(sqls.back());
  EXPECT_TRUE(engine.Execute(sqls.back()).stats.exec_cache_hit);
}

TEST(EngineTest, UnboundedCapacityNeverEvicts) {
  EngineOptions options;
  options.plan_cache_capacity = 0;
  options.exec_cache_capacity = 0;
  Engine engine(options);
  engine.RegisterTable("car", SmallCars());
  for (int limit = 1; limit <= 20; ++limit) {
    engine.Execute("SELECT * FROM car LIMIT " + std::to_string(limit));
  }
  EXPECT_EQ(engine.cache_stats().plan_evictions, 0u);
  EXPECT_EQ(engine.cache_stats().exec_evictions, 0u);
}

TEST(EngineTest, PerGroupCompiledStateIsCachedAndReused) {
  Engine engine;
  engine.RegisterTable("car", GenerateCars(2000, 31));
  PreparedQuery prepared = engine.Prepare(
      "SELECT * FROM car PREFERRING LOWEST(price) AND LOWEST(mileage) "
      "GROUPING make");
  psql::QueryResult first = prepared.Run();
  psql::QueryResult warm = prepared.Run();
  EXPECT_TRUE(warm.stats.exec_cache_hit);
  // Warm runs reuse the per-group projection indexes, score tables and
  // plans: zero compile work, kernel execution only.
  EXPECT_EQ(warm.stats.compile_ns, 0u);
  EXPECT_EQ(warm.stats.optimize_ns, 0u);
  EXPECT_EQ(warm.relation, first.relation);
  EXPECT_NE(warm.stats.kernel.find("per-group"), std::string::npos);
  // Reference: the relation-level grouped evaluator.
  Relation direct = BmoGroupBy(*engine.Snapshot("car"),
                               Pareto(Lowest("price"), Lowest("mileage")),
                               {"make"});
  EXPECT_TRUE(warm.relation.SameRows(direct));
}

TEST(EngineTest, DegenerateSingleGroupKeepsParallelEligibility) {
  // A grouping key with one distinct value produces a single group that
  // runs inline; partition-parallelism inside it must stay available
  // (explicitly here; kAuto applies the same scope) and stay correct.
  Schema s({{"g", ValueType::kString},
            {"a", ValueType::kInt},
            {"b", ValueType::kInt}});
  Relation r(s);
  std::mt19937_64 rng(13);
  for (int i = 0; i < 20000; ++i) {
    r.Add({"only", Value(int64_t(rng() % 10000)),
           Value(int64_t(rng() % 10000))});
  }
  Engine engine;
  engine.RegisterTable("t", r);
  BmoOptions parallel;
  parallel.algorithm = BmoAlgorithm::kParallel;
  parallel.num_threads = 4;
  psql::QueryResult par = engine.Execute(
      "SELECT * FROM t PREFERRING LOWEST(a) AND LOWEST(b) GROUPING g",
      parallel);
  psql::QueryResult seq = engine.Execute(
      "SELECT * FROM t PREFERRING LOWEST(a) AND LOWEST(b) GROUPING g");
  EXPECT_EQ(par.relation, seq.relation);
  EXPECT_TRUE(par.relation.SameRows(
      BmoGroupBy(r, Pareto(Lowest("a"), Lowest("b")), {"g"})));
}

TEST(EngineTest, ExplainReportsEstimatedVersusActualCost) {
  Engine engine;
  engine.RegisterTable("car", GenerateCars(1500, 3));
  psql::QueryResult res = engine.Execute(
      "EXPLAIN SELECT * FROM car PREFERRING LOWEST(price) AND "
      "LOWEST(mileage)");
  EXPECT_NE(res.plan_details.find("cost model:"), std::string::npos);
  EXPECT_NE(res.plan_details.find("<- chosen"), std::string::npos);
  EXPECT_NE(res.plan_details.find("cost: estimated"), std::string::npos);
  EXPECT_NE(res.plan_details.find("vs actual"), std::string::npos);
  EXPECT_GT(res.stats.estimated_cost_ns, 0.0);
}

TEST(EngineTest, StatsAreMaintainedIncrementallyAcrossInserts) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  std::shared_ptr<const TableStats> before = engine.Stats("car");
  EXPECT_EQ(before->rows, 5u);
  ASSERT_NE(before->Column("price"), nullptr);
  const size_t price_distinct = before->Column("price")->distinct;
  engine.Insert("car", Tuple{"VW", "passenger", "white", 9000, 75, 1000});
  std::shared_ptr<const TableStats> after = engine.Stats("car");
  EXPECT_EQ(after->rows, 6u);
  EXPECT_EQ(after->Column("price")->distinct, price_distinct + 1);
  // The old snapshot is immutable.
  EXPECT_EQ(before->rows, 5u);
  // RegisterTable resets: stats rebuild from the new relation.
  Relation two(SmallCars().schema());
  two.Add({"Audi", "coupe", "silver", 50000, 300, 500});
  engine.RegisterTable("car", two);
  EXPECT_EQ(engine.Stats("car")->rows, 1u);
}

TEST(EngineTest, CacheFreeExecutionMatchesCachedEngine) {
  Relation car = SmallCars();
  psql::Catalog catalog;
  catalog.Register("car", car);
  Engine engine(catalog);
  for (const char* sql : kQueries) {
    psql::QueryResult cold = ColdExecute(sql, catalog);
    psql::QueryResult direct = engine.Execute(sql);
    EXPECT_EQ(cold.relation, direct.relation) << sql;
  }
}

}  // namespace
}  // namespace prefdb
