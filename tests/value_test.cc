// Unit tests for the Value domain element type.

#include "relation/value.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace prefdb {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntConstructionAndAccess) {
  Value v(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, DoubleConstructionAndAccess) {
  Value v(3.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_EQ(v.as_double(), 3.5);
  EXPECT_EQ(v.ToString(), "3.5");
}

TEST(ValueTest, ToStringHugeDoublesAvoidInt64Cast) {
  // Regression: the integral-rendering fast path used to cast to int64
  // *before* the range guard — UB for doubles outside the int64 range.
  // Exercised under UBSan by the sanitizer CI job.
  EXPECT_EQ(Value(1e300).ToString(), "1e+300");
  EXPECT_EQ(Value(-1e300).ToString(), "-1e+300");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).ToString(), "inf");
  EXPECT_EQ(Value(-std::numeric_limits<double>::infinity()).ToString(),
            "-inf");
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).ToString(),
            "nan");
  // Integral doubles inside the guard still render with the ".0" marker.
  EXPECT_EQ(Value(2.0).ToString(), "2.0");
}

TEST(ValueTest, StringConstructionAndAccess) {
  Value v("red");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "red");
  EXPECT_EQ(v.ToString(), "'red'");
}

TEST(ValueTest, NumericViewWidensInt) {
  EXPECT_EQ(*Value(7).numeric(), 7.0);
  EXPECT_EQ(*Value(7.25).numeric(), 7.25);
  EXPECT_FALSE(Value("x").numeric().has_value());
  EXPECT_FALSE(Value().numeric().has_value());
}

TEST(ValueTest, EqualityAcrossIntAndDouble) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_NE(Value(3), Value(3.5));
  EXPECT_NE(Value(3), Value("3"));
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(0));
}

TEST(ValueTest, EqualHashForEqualNumerics) {
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
}

TEST(ValueTest, TotalOrderClasses) {
  // NULL < numerics < strings.
  EXPECT_LT(Value(), Value(-100));
  EXPECT_LT(Value(5), Value("a"));
  EXPECT_LT(Value(), Value(""));
}

TEST(ValueTest, TotalOrderWithinNumerics) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_LT(Value(-3), Value(-2.5));
  EXPECT_FALSE(Value(2) < Value(2.0));  // equal numerics tie by value...
  EXPECT_TRUE(Value(2) < Value(2.0) || Value(2.0) < Value(2) ||
              Value(2) == Value(2.0));
}

TEST(ValueTest, TotalOrderStringsLexicographic) {
  EXPECT_LT(Value("apple"), Value("banana"));
  EXPECT_FALSE(Value("pear") < Value("apple"));
}

TEST(ValueTest, OrderIsIrreflexive) {
  for (const Value& v :
       {Value(), Value(1), Value(2.5), Value("x"), Value("")}) {
    EXPECT_FALSE(v < v) << v.ToString();
  }
}

TEST(ValueTest, ParseInt) {
  auto v = ParseValue("123", ValueType::kInt);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Value(123));
  EXPECT_FALSE(ParseValue("12x", ValueType::kInt).has_value());
}

TEST(ValueTest, ParseIntRejectsOutOfRange) {
  // strtoll clamps out-of-range input to INT64_MAX/MIN with ERANGE;
  // ingest must reject it, not silently store the clamp.
  EXPECT_FALSE(ParseValue("99999999999999999999", ValueType::kInt));
  EXPECT_FALSE(ParseValue("-99999999999999999999", ValueType::kInt));
  // The actual extremes still parse.
  EXPECT_EQ(*ParseValue("9223372036854775807", ValueType::kInt),
            Value(int64_t{9223372036854775807LL}));
  EXPECT_EQ(*ParseValue("-9223372036854775808", ValueType::kInt),
            Value(std::numeric_limits<int64_t>::min()));
}

TEST(ValueTest, ParseDouble) {
  auto v = ParseValue("1.25", ValueType::kDouble);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Value(1.25));
  EXPECT_FALSE(ParseValue("abc", ValueType::kDouble).has_value());
}

TEST(ValueTest, ParseDoubleRejectsOverflowKeepsUnderflow) {
  EXPECT_FALSE(ParseValue("1e999", ValueType::kDouble));
  EXPECT_FALSE(ParseValue("-1e999", ValueType::kDouble));
  // Gradual underflow is representable and accepted.
  auto denormal = ParseValue("1e-320", ValueType::kDouble);
  ASSERT_TRUE(denormal.has_value());
  EXPECT_GT(denormal->as_double(), 0.0);
  EXPECT_EQ(*ParseValue("1e300", ValueType::kDouble), Value(1e300));
}

TEST(ValueTest, ParseStringAndEmpty) {
  EXPECT_EQ(*ParseValue("hello", ValueType::kString), Value("hello"));
  EXPECT_TRUE(ParseValue("", ValueType::kInt)->is_null());
  EXPECT_TRUE(ParseValue("", ValueType::kString)->is_null());
}

TEST(ValueTest, NegativeNumbers) {
  EXPECT_EQ(*ParseValue("-17", ValueType::kInt), Value(-17));
  EXPECT_EQ(*ParseValue("-2.5", ValueType::kDouble), Value(-2.5));
}

TEST(ValueTest, IntegralDoubleRendering) {
  EXPECT_EQ(Value(4.0).ToString(), "4.0");
}

}  // namespace
}  // namespace prefdb
