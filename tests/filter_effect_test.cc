// Verification of the filter-effect results (§5.5): the Prop 13 result-size
// inequalities and the automatic 'AND/OR'-like behavior of Pareto vs
// prioritized accumulation.

#include <gtest/gtest.h>

#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/cars.h"
#include "eval/bmo.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::RandomPreferenceGen;

Relation RandomXY(uint64_t seed, size_t n = 80) {
  std::mt19937_64 rng(seed);
  Relation r(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  for (size_t i = 0; i < n; ++i) {
    r.Add({Value(static_cast<int>(rng() % 9) - 4),
           Value(static_cast<int>(rng() % 9) - 4)});
  }
  return r;
}

class FilterEffectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilterEffectPropertyTest, Prop13aUnionIsStrongerThanPieces) {
  Relation r = RandomXY(GetParam());
  RandomPreferenceGen gen("x", {Value(-4), Value(-2), Value(0), Value(2)},
                          GetParam());
  PrefPtr u1 = Subset(gen.Term(1), {Tuple({Value(-4)}), Tuple({Value(-2)})});
  PrefPtr u2 = Subset(gen.Term(1), {Tuple({Value(0)}), Tuple({Value(2)})});
  PrefPtr u = DisjointUnion(u1, u2);
  EXPECT_LE(ResultSize(r, u), ResultSize(r, u1));
  EXPECT_LE(ResultSize(r, u), ResultSize(r, u2));
}

TEST_P(FilterEffectPropertyTest, Prop13bIntersectionIsWeakerThanPieces) {
  Relation r = RandomXY(GetParam() + 1);
  RandomPreferenceGen gen("x", {Value(-4), Value(-2), Value(0), Value(2)},
                          GetParam() + 1);
  PrefPtr p1 = gen.Term(1);
  PrefPtr p2 = gen.Term(1);
  PrefPtr isect = Intersection(p1, p2);
  EXPECT_GE(ResultSize(r, isect), ResultSize(r, p1));
  EXPECT_GE(ResultSize(r, isect), ResultSize(r, p2));
}

// Def. 19 compares preferences "given A and R": result sizes are taken
// over a COMMON attribute set (the paper's Prop 13 proof projects both
// sides onto A = A1 ∪ A2).
size_t SizeOver(const Relation& r, const PrefPtr& p,
                const std::vector<std::string>& attrs) {
  return Bmo(r, p).DistinctProjections(attrs).size();
}

TEST_P(FilterEffectPropertyTest, Prop13cPrioritizationStrengthens) {
  Relation r = RandomXY(GetParam() + 2);
  RandomPreferenceGen gx("x", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 2);
  RandomPreferenceGen gy("y", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 3);
  PrefPtr p1 = gx.Term(1);
  PrefPtr p2 = gy.Term(1);
  std::vector<std::string> attrs = {"x", "y"};
  EXPECT_LE(SizeOver(r, Prioritized(p1, p2), attrs), SizeOver(r, p1, attrs));
}

TEST_P(FilterEffectPropertyTest, Prop13dParetoWeakensVsPrioritization) {
  Relation r = RandomXY(GetParam() + 4);
  RandomPreferenceGen gx("x", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 4);
  RandomPreferenceGen gy("y", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 5);
  PrefPtr p1 = gx.Term(1);
  PrefPtr p2 = gy.Term(1);
  size_t pareto = ResultSize(r, Pareto(p1, p2));
  EXPECT_GE(pareto, ResultSize(r, Prioritized(p1, p2)));
  EXPECT_GE(pareto, ResultSize(r, Prioritized(p2, p1)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterEffectPropertyTest,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80));

TEST(FilterEffectTest, AndOrInterpretationChain) {
  // §5.5: P1&P2 ⇛ P1 ⇛ nothing weaker... and P1&P2 ⇛ P1(x)P2: the full
  // chain on a concrete car database.
  Relation cars = GenerateCars(500, 99);
  PrefPtr p1 = Lowest("price");
  PrefPtr p2 = Lowest("mileage");
  size_t s_p1 = ResultSize(cars, p1);
  size_t s_and = ResultSize(cars, Prioritized(p1, p2));
  size_t s_or = ResultSize(cars, Pareto(p1, p2));
  EXPECT_LE(s_and, s_p1);   // '&' resembles AND: stronger filter
  EXPECT_GE(s_or, s_and);   // '(x)' resembles OR: weaker filter
}

TEST(FilterEffectTest, BmoAvoidsEmptyResultAndFlooding) {
  Relation cars = GenerateCars(2000, 5);
  // A wish that matches nothing exactly: BMO still answers (no empty
  // result) and does not flood (result far below the full set).
  PrefPtr wish = Pareto(
      {Around("price", 1), Around("mileage", 1), Highest("horsepower")});
  Relation best = Bmo(cars, wish);
  EXPECT_GE(best.size(), 1u);
  EXPECT_LT(best.size(), cars.size() / 4);
}

TEST(FilterEffectTest, ResultSizeOneForChains) {
  Relation cars = GenerateCars(300, 17);
  // A chain preference has exactly one best value combination.
  EXPECT_EQ(ResultSize(cars, Lowest("price")), 1u);
  EXPECT_EQ(ResultSize(cars, Prioritized(Lowest("price"), Lowest("mileage"))),
            1u);
}

TEST(FilterEffectTest, StrongerThanIsPartialOrderSpotCheck) {
  // 'stronger than' (Def. 19) is reflexive and transitive on examples.
  Relation r = RandomXY(123);
  PrefPtr p1 = Lowest("x");
  PrefPtr p2 = Lowest("y");
  size_t a = ResultSize(r, Prioritized(p1, p2));
  size_t b = ResultSize(r, p1);
  size_t c = ResultSize(r, Pareto(p1, p2));
  EXPECT_LE(a, b);
  EXPECT_LE(a, c);
}

}  // namespace
}  // namespace prefdb
