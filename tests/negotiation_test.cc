// Tests for the e-negotiation module (eval/negotiation.h).

#include "eval/negotiation.h"

#include <gtest/gtest.h>

#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/cars.h"
#include "eval/bmo.h"

namespace prefdb {
namespace {

// A price/quality trade-off: buyer wants cheap, seller wants expensive.
Relation Offers() {
  Relation r(Schema{{"price", ValueType::kInt}});
  r.Add({100});
  r.Add({200});
  r.Add({300});
  return r;
}

TEST(NegotiationTest, OpposedChainsMakeEverythingNegotiable) {
  // P (x) P^d == A<-> (Prop 3n): the full set is the frontier; the middle
  // row is the compromise reservoir.
  NegotiationAnalysis a =
      AnalyzeNegotiation(Offers(), Lowest("price"), Highest("price"));
  EXPECT_EQ(a.pareto_frontier, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(a.consensus, (std::vector<size_t>{}));
  EXPECT_EQ(a.party1_favored, (std::vector<size_t>{0}));
  EXPECT_EQ(a.party2_favored, (std::vector<size_t>{2}));
  EXPECT_EQ(a.middle_ground, (std::vector<size_t>{1}));
}

TEST(NegotiationTest, AlignedPreferencesGiveConsensus) {
  NegotiationAnalysis a =
      AnalyzeNegotiation(Offers(), Lowest("price"), Lowest("price"));
  EXPECT_EQ(a.consensus, (std::vector<size_t>{0}));
  EXPECT_EQ(a.pareto_frontier, (std::vector<size_t>{0}));
  EXPECT_TRUE(a.middle_ground.empty());
}

TEST(NegotiationTest, FairestCompromiseBalancesRegrets) {
  std::vector<CompromiseProposal> proposals =
      SuggestCompromises(Offers(), Lowest("price"), Highest("price"), 1);
  ASSERT_EQ(proposals.size(), 1u);
  // 200 is level 2 for both parties: regret (1, 1) beats (0, 2) and (2, 0)
  // under the min-max fairness key.
  EXPECT_EQ(proposals[0].row, 1u);
  EXPECT_EQ(proposals[0].regret1, 1u);
  EXPECT_EQ(proposals[0].regret2, 1u);
}

TEST(NegotiationTest, ConsensusRowRanksFirst) {
  Relation r(Schema{{"price", ValueType::kInt}, {"rating", ValueType::kInt}});
  r.Add({100, 5});  // cheap AND great: consensus
  r.Add({100, 1});
  r.Add({900, 5});
  std::vector<CompromiseProposal> proposals =
      SuggestCompromises(r, Lowest("price"), Highest("rating"), 0);
  ASSERT_FALSE(proposals.empty());
  EXPECT_EQ(proposals[0].row, 0u);
  EXPECT_EQ(proposals[0].regret1, 0u);
  EXPECT_EQ(proposals[0].regret2, 0u);
}

TEST(NegotiationTest, TwoPartyCarScenario) {
  // Julia (customer): cheap, low mileage. Michael (vendor): commission.
  Relation market = GenerateCars(800, 3003);
  PrefPtr julia = Pareto(Lowest("price"), Lowest("mileage"));
  PrefPtr michael = Highest("commission");
  NegotiationAnalysis a = AnalyzeNegotiation(market, julia, michael);
  // The frontier partitions into the four disjoint classes.
  size_t covered = a.consensus.size() + a.party1_favored.size() +
                   a.party2_favored.size() + a.middle_ground.size();
  EXPECT_EQ(covered, a.pareto_frontier.size());
  // All classes are within the frontier.
  for (const auto* cls :
       {&a.party1_favored, &a.party2_favored, &a.middle_ground}) {
    for (size_t row : *cls) {
      EXPECT_TRUE(std::binary_search(a.pareto_frontier.begin(),
                                     a.pareto_frontier.end(), row));
    }
  }
  // Proposals come sorted by the fairness key.
  std::vector<CompromiseProposal> proposals =
      SuggestCompromises(market, julia, michael, 10);
  for (size_t i = 1; i < proposals.size(); ++i) {
    EXPECT_FALSE(proposals[i] < proposals[i - 1]);
  }
}

TEST(NegotiationTest, ProposalsCoverWholeFrontierWhenKZero) {
  Relation market = GenerateCars(200, 8);
  PrefPtr p1 = Lowest("price");
  PrefPtr p2 = Lowest("mileage");
  std::vector<CompromiseProposal> proposals =
      SuggestCompromises(market, p1, p2, 0);
  EXPECT_EQ(proposals.size(), BmoIndices(market, Pareto(p1, p2)).size());
}

}  // namespace
}  // namespace prefdb
