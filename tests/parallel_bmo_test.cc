// Tests for the exec/ parallel engine: the partition-and-merge evaluator
// must return exactly the sequential BMO answer for arbitrary strict
// partial orders (randomized terms), including groupby queries and
// empty/degenerate partitionings; plus thread-pool basics.

#include "exec/parallel_bmo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/cars.h"
#include "datagen/vectors.h"
#include "eval/optimizer.h"
#include "exec/thread_pool.h"
#include "test_support.h"

namespace prefdb {
namespace {

PrefPtr SkylinePreference(size_t d) {
  std::vector<PrefPtr> prefs;
  for (size_t i = 0; i < d; ++i) {
    prefs.push_back(Highest("d" + std::to_string(i)));
  }
  return Pareto(prefs);
}

// Forces real partitioning even on small inputs / few cores.
PhysicalPlan TinyPartitions(size_t num_threads = 4) {
  PhysicalPlan plan;
  plan.num_threads = num_threads;
  plan.min_partition_size = 8;
  return plan;
}

TEST(ThreadPoolTest, ResolveThreadsDefaultsToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3u);
}

TEST(ThreadPoolTest, SubmitReturnsValuesAndPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto ok = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(ok.get(), 42);
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), 1, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Zero-length and single-chunk ranges are fine too.
  pool.ParallelFor(0, 1, [](size_t, size_t) { FAIL(); });
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  ThreadPool pool(1);  // one worker: a nested blocking submit would hang
  std::atomic<int> total{0};
  auto outer = pool.Submit([&pool, &total] {
    EXPECT_TRUE(pool.OnWorkerThread());
    pool.ParallelFor(100, 1, [&total](size_t begin, size_t end) {
      total.fetch_add(static_cast<int>(end - begin));
    });
  });
  outer.get();
  EXPECT_EQ(total.load(), 100);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(ParallelBmoTest, NestedCallFromSharedPoolWorkerCompletes) {
  Relation r = GenerateVectors(20000, 2, Correlation::kIndependent, 17);
  PrefPtr p = SkylinePreference(2);
  std::vector<size_t> expected =
      BmoIndices(r, p, {BmoAlgorithm::kBlockNestedLoop});
  PhysicalPlan plan;
  plan.num_threads = 4;
  plan.min_partition_size = 8;
  // ParallelBmoIndices invoked *from* a Shared-pool worker must fall back
  // to inline evaluation rather than blocking on its own pool.
  auto nested = ThreadPool::Shared().Submit(
      [&r, &p, &plan] { return ParallelBmoIndices(r, p, plan); });
  EXPECT_EQ(nested.get(), expected);
}

TEST(ParallelBmoTest, EmptyInputs) {
  Relation r(Schema{{"x", ValueType::kInt}});
  EXPECT_TRUE(ParallelBmo(r, Lowest("x"), TinyPartitions()).empty());
  std::vector<Tuple> no_values;
  EXPECT_TRUE(MaximaParallel(no_values, Lowest("x"),
                             Schema{{"x", ValueType::kInt}}, TinyPartitions())
                  .empty());
}

TEST(ParallelBmoTest, DegeneratePartitionsFewerValuesThanWorkers) {
  Relation r = testing::IntRelation("x", {7, 3, 9, 3, 1});
  PhysicalPlan plan;
  plan.num_threads = 16;
  plan.min_partition_size = 1;
  Relation par = ParallelBmo(r, Lowest("x"), plan);
  EXPECT_TRUE(par.SameRows(Bmo(r, Lowest("x"))));
  EXPECT_EQ(par.size(), 1u);
}

TEST(ParallelBmoTest, MatchesSequentialOnSkylines) {
  for (Correlation corr : {Correlation::kIndependent, Correlation::kCorrelated,
                           Correlation::kAntiCorrelated}) {
    for (size_t d : {2u, 4u}) {
      Relation r = GenerateVectors(3000, d, corr, 7 + d);
      PrefPtr p = SkylinePreference(d);
      std::vector<size_t> seq =
          BmoIndices(r, p, {BmoAlgorithm::kBlockNestedLoop});
      EXPECT_EQ(ParallelBmoIndices(r, p, TinyPartitions(2)), seq);
      EXPECT_EQ(ParallelBmoIndices(r, p, TinyPartitions(8)), seq);
    }
  }
}

TEST(ParallelBmoTest, MatchesSequentialOnRandomizedTerms) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    RandomTermGen gx("price", {Value(1000), Value(2000), Value(4000)}, seed);
    RandomTermGen gy("mileage", {Value(10), Value(20), Value(40)}, seed + 5);
    Relation cars = GenerateCars(900, seed);
    for (int round = 0; round < 6; ++round) {
      PrefPtr p;
      switch (round % 3) {
        case 0: p = Pareto(gx.Term(1), gy.Term(1)); break;
        case 1: p = Prioritized(gx.Term(2), gy.Term(1)); break;
        default: p = Prioritized(Pareto(gx.Term(1), gy.Term(1)), gx.Term(1));
      }
      EXPECT_TRUE(Bmo(cars, p).SameRows(ParallelBmo(cars, p, TinyPartitions())))
          << p->ToString();
    }
  }
}

TEST(ParallelBmoTest, ExplicitKParallelOptionMatchesSequential) {
  // 20000 distinct values with the default min_partition_size (4096) is
  // enough for real multi-partition execution through BmoIndices.
  Relation r = GenerateVectors(20000, 3, Correlation::kAntiCorrelated, 99);
  PrefPtr p = SkylinePreference(3);
  BmoOptions parallel;
  parallel.algorithm = BmoAlgorithm::kParallel;
  parallel.num_threads = 4;
  EXPECT_TRUE(Bmo(r, p, {BmoAlgorithm::kBlockNestedLoop})
                  .SameRows(Bmo(r, p, parallel)));
}

TEST(ParallelBmoTest, AutoEscalatesAboveThreshold) {
  Relation r = GenerateVectors(20000, 2, Correlation::kIndependent, 5);
  PrefPtr p = SkylinePreference(2);
  BmoOptions options;  // kAuto
  options.num_threads = 4;
  options.parallel_threshold = 100;  // force the parallel path
  EXPECT_TRUE(Bmo(r, p, {BmoAlgorithm::kBlockNestedLoop})
                  .SameRows(Bmo(r, p, options)));
}

TEST(ParallelBmoTest, GroupByMatchesSequential) {
  Relation cars = GenerateCars(1200, 3);
  PrefPtr p = Lowest("price");
  BmoOptions parallel;
  parallel.algorithm = BmoAlgorithm::kParallel;
  parallel.num_threads = 4;
  EXPECT_EQ(BmoGroupByIndices(cars, p, {"make"}, parallel),
            BmoGroupByIndices(cars, p, {"make"}));
}

TEST(ParallelBmoTest, OptimizerPicksParallelOnHugeInputs) {
  Relation r = GenerateVectors(200000, 2, Correlation::kIndependent, 3);
  BmoOptions options;
  options.num_threads = 8;  // deterministic regardless of host cores
  PhysicalPlan c = ChooseAlgorithm(r, SkylinePreference(2), options);
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kParallel);
  EXPECT_NE(c.rationale.find("workers"), std::string::npos);
  EXPECT_GE(c.partitions, 2u);
}

TEST(ParallelBmoTest, OptimizerHonorsParallelThresholdOptOut) {
  Relation r = GenerateVectors(200000, 2, Correlation::kIndependent, 3);
  BmoOptions options;
  options.num_threads = 8;
  options.parallel_threshold = std::numeric_limits<size_t>::max();
  PhysicalPlan c = ChooseAlgorithm(r, SkylinePreference(2), options);
  EXPECT_NE(c.algorithm, BmoAlgorithm::kParallel);
}

TEST(ParallelBmoTest, DuplicatesAndRowOrderPreserved) {
  Relation r = testing::IntRelation("x", {5, 1, 5, 1, 2, 1});
  PhysicalPlan plan;
  plan.num_threads = 3;
  plan.min_partition_size = 1;
  Relation best = ParallelBmo(r, Lowest("x"), plan);
  ASSERT_EQ(best.size(), 3u);
  for (const Tuple& t : best.tuples()) EXPECT_EQ(t[0], Value(int64_t{1}));
}

}  // namespace
}  // namespace prefdb
