// Tests for the vectorized score-table execution layer
// (exec/score_table.h): the compiled kernels must return exactly the
// closure-based BNL answer for every compilable term — randomized across
// Pareto/prioritized nestings of layered, pos/neg and numerical leaves —
// and non-compilable terms must fall back to the closure path untouched.
// Plus the NaN / -inf sort-key guards for the SFS comparator and the
// data-dependent divide & conquer eligibility.

#include "exec/score_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/vectors.h"
#include "eval/bmo.h"
#include "exec/parallel_bmo.h"
#include "test_support.h"

namespace prefdb {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

BmoOptions Closure(BmoAlgorithm algo = BmoAlgorithm::kBlockNestedLoop) {
  BmoOptions options;
  options.algorithm = algo;
  options.vectorize = false;
  return options;
}

BmoOptions Vectorized(BmoAlgorithm algo) {
  BmoOptions options;
  options.algorithm = algo;
  options.vectorize = true;
  return options;
}

// A relation with level-friendly string columns and numeric columns,
// including NULLs and int/double mixtures in the numeric ones.
Relation MixedRelation(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Schema s({{"color", ValueType::kString},
            {"make", ValueType::kString},
            {"price", ValueType::kInt},
            {"score", ValueType::kDouble}});
  const std::vector<Value> colors = {"red", "blue", "green", "black", ""};
  const std::vector<Value> makes = {"Audi", "BMW", "Opel"};
  Relation r(s);
  for (size_t i = 0; i < n; ++i) {
    Value color = colors[rng() % colors.size()];
    Value make = makes[rng() % makes.size()];
    Value price = rng() % 17 == 0 ? Value() : Value(int64_t(rng() % 50));
    Value score = rng() % 13 == 0 ? Value() : Value(double(rng() % 40) / 4);
    r.Add(Tuple({color, make, price, score}));
  }
  return r;
}

// Random compilable terms: level-based and numerical leaves under
// Pareto/prioritized nesting (the fragment the table compiles).
class CompilableTermGen {
 public:
  explicit CompilableTermGen(uint64_t seed) : rng_(seed) {}

  PrefPtr Leaf() {
    switch (rng_() % 8) {
      case 0: return Pos("color", {"red", "blue"});
      case 1: return Neg("color", {"black"});
      case 2: return PosNeg("color", {"red"}, {"green"});
      case 3: return PosPos("make", {"Audi"}, {"BMW"});
      case 4:
        return Layered("color", {{{Value("red")}, false},
                                 LayeredPreference::Others(),
                                 {{Value("black")}, false}});
      case 5: return Lowest("price");
      case 6: return Around("score", 5.0);
      default: return Between("price", 10, 30);
    }
  }

  PrefPtr Term(int depth) {
    if (depth <= 0) return Leaf();
    switch (rng_() % 5) {
      case 0: return Pareto(Term(depth - 1), Term(depth - 1));
      case 1: return Prioritized(Term(depth - 1), Term(depth - 1));
      case 2: return Dual(Leaf());
      case 3: return Dual(Term(depth - 1));  // dual of accumulations too
      default: return Leaf();
    }
  }

 private:
  std::mt19937_64 rng_;
};

TEST(ScoreTableTest, CompilableTermCoverage) {
  EXPECT_TRUE(ScoreTable::CompilableTerm(Pos("a", {"x"})));
  EXPECT_TRUE(ScoreTable::CompilableTerm(
      Pareto(Prioritized(Neg("a", {"x"}), Lowest("b")), Around("c", 3))));
  EXPECT_TRUE(ScoreTable::CompilableTerm(Dual(Highest("a"))));
  EXPECT_TRUE(ScoreTable::CompilableTerm(
      Prioritized(AntiChain("g"), Lowest("a"))));
  EXPECT_TRUE(ScoreTable::CompilableTerm(
      RankWeightedSum({0.5, 0.5}, {Lowest("a"), Highest("b")})));
  // Dual of an accumulation compiles via the descriptor-level order
  // flip (dual distributes over Pareto/prioritized onto the leaves).
  EXPECT_TRUE(ScoreTable::CompilableTerm(
      Dual(Pareto(Lowest("a"), Lowest("b")))));
  EXPECT_TRUE(ScoreTable::CompilableTerm(
      Dual(Prioritized(Pos("a", {"x"}), Dual(Lowest("b"))))));
  // Intersection / disjoint union compile as general descriptor nodes.
  EXPECT_TRUE(ScoreTable::CompilableTerm(
      Intersection(Pos("a", {"x"}), Neg("a", {"y"}))));
  EXPECT_TRUE(ScoreTable::CompilableTerm(
      DisjointUnion(Pos("a", {"x"}), Neg("b", {"y"}))));
  EXPECT_TRUE(ScoreTable::CompilableTerm(
      Dual(Intersection(Around("a", 1.0), Lowest("a")))));
  // Subsets: closure path.
  EXPECT_FALSE(ScoreTable::CompilableTerm(
      Subset(Lowest("a"), {Tuple({Value(1)})})));
}

TEST(ScoreTableTest, IntersectionTermsMatchClosure) {
  Relation r = MixedRelation(400, 77);
  // Intersections of strict partial orders are strict partial orders, so
  // every kernel must agree (SFS/D&C degrade to BNL: intersection nodes
  // derive no sort keys and never run flat-Pareto).
  PrefPtr isect =
      Intersection(Pos("color", {"red", "blue"}), Neg("color", {"black"}));
  PrefPtr numeric_isect =
      Intersection(Around("score", 5.0), Dual(Lowest("score")));
  for (const PrefPtr& p :
       {isect, numeric_isect, Dual(isect), Pareto(isect, Lowest("price")),
        Prioritized(Lowest("price"), numeric_isect),
        Prioritized(isect, Highest("score"))}) {
    ASSERT_TRUE(ScoreTable::CompilableTerm(p)) << p->ToString();
    std::vector<size_t> expected = BmoIndices(r, p, Closure());
    for (BmoAlgorithm algo :
         {BmoAlgorithm::kAuto, BmoAlgorithm::kBlockNestedLoop,
          BmoAlgorithm::kSortFilter, BmoAlgorithm::kDivideConquer,
          BmoAlgorithm::kNaive}) {
      EXPECT_EQ(BmoIndices(r, p, Vectorized(algo)), expected)
          << p->ToString() << " algo=" << BmoAlgorithmName(algo);
    }
  }
}

TEST(ScoreTableTest, DisjointUnionCompilesTheClosureFormula) {
  Relation r = MixedRelation(400, 78);
  // Order-disjointness (Def. 4) is the caller's contract and cannot hold
  // for compilable pieces (weak orders have full range), so window
  // algorithms are order-dependent here — exactly as with the closure.
  // The compiled descriptor must still encode the same *formula*
  // (l1 || l2), which the order-independent naive kernel checks exactly:
  // row-by-row elimination depends only on the pairwise test.
  PrefPtr uni =
      DisjointUnion(Explicit("color", {{Value("red"), Value("blue")}}),
                    Explicit("color", {{Value("green"), Value("black")}}));
  for (const PrefPtr& p :
       {uni, Dual(uni), Prioritized(uni, Highest("score")),
        DisjointUnion(Lowest("price"), Around("score", 5.0)),
        Intersection(uni, Pos("color", {"blue", "black"}))}) {
    ASSERT_TRUE(ScoreTable::CompilableTerm(p)) << p->ToString();
    EXPECT_EQ(BmoIndices(r, p, Vectorized(BmoAlgorithm::kNaive)),
              BmoIndices(r, p, Closure(BmoAlgorithm::kNaive)))
        << p->ToString();
  }
}

TEST(ScoreTableTest, ExplicitGraphsCompileOnlyWhenLevelable) {
  // a < b < c is a chain: its order equals its level order.
  PrefPtr chain = Explicit("g", {{Value("a"), Value("b")},
                                 {Value("b"), Value("c")}});
  EXPECT_TRUE(ScoreTable::CompilableTerm(chain));
  // Two unrelated edges: d (level 1) is incomparable to a (level 2), but
  // level comparison would order them — must not compile.
  PrefPtr forest = Explicit("g", {{Value("a"), Value("b")},
                                  {Value("c"), Value("d")}});
  EXPECT_FALSE(ScoreTable::CompilableTerm(forest));
  // The non-levelable graph still evaluates correctly via closures.
  Relation r = testing::StringRelation("g", {"a", "b", "c", "d", "z"});
  EXPECT_TRUE(Bmo(r, forest).SameRows(Bmo(r, forest, Closure())));
}

TEST(ScoreTableTest, RandomizedTermsMatchClosureBnl) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    CompilableTermGen gen(seed);
    Relation r = MixedRelation(400, seed * 101);
    for (int round = 0; round < 8; ++round) {
      PrefPtr p = gen.Term(2 + round % 2);
      std::vector<size_t> expected = BmoIndices(r, p, Closure());
      for (BmoAlgorithm algo :
           {BmoAlgorithm::kAuto, BmoAlgorithm::kBlockNestedLoop,
            BmoAlgorithm::kSortFilter, BmoAlgorithm::kDivideConquer,
            BmoAlgorithm::kNaive}) {
        EXPECT_EQ(BmoIndices(r, p, Vectorized(algo)), expected)
            << p->ToString() << " algo=" << BmoAlgorithmName(algo);
      }
    }
  }
}

TEST(ScoreTableTest, ClosureSfsMatchesOnRandomizedTerms) {
  // The closure SFS path (vectorize off) shares the NaN/-inf guards and
  // the equal-key cleanup; it must agree with closure BNL too.
  for (uint64_t seed : {11u, 12u, 13u}) {
    CompilableTermGen gen(seed);
    Relation r = MixedRelation(300, seed * 7);
    for (int round = 0; round < 6; ++round) {
      PrefPtr p = gen.Term(2);
      EXPECT_EQ(BmoIndices(r, p, Closure(BmoAlgorithm::kSortFilter)),
                BmoIndices(r, p, Closure()))
          << p->ToString();
    }
  }
}

TEST(ScoreTableTest, DivideConquerRequiresInjectiveScores) {
  // AROUND(10) ties 5 and 15 in score although the values are distinct
  // and incomparable (Def. 8 equality is value equality): raw score
  // dominance would wrongly eliminate (15, 1). The compiled table must
  // detect the non-injective column and refuse D&C.
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  Relation r(s);
  r.Add({5, 2});
  r.Add({15, 1});
  PrefPtr p = Pareto(Around("a", 10), Highest("b"));
  const Tuple* values = r.tuples().data();
  auto table = ScoreTable::Compile(p, s, values, r.size());
  ASSERT_TRUE(table.has_value());
  EXPECT_FALSE(table->CanDivideConquer());
  // Both rows are maximal whatever algorithm is requested.
  for (BmoAlgorithm algo :
       {BmoAlgorithm::kAuto, BmoAlgorithm::kDivideConquer,
        BmoAlgorithm::kSortFilter}) {
    EXPECT_EQ(BmoIndices(r, p, Vectorized(algo)),
              (std::vector<size_t>{0, 1}))
        << BmoAlgorithmName(algo);
  }
  // Injective numeric skylines do qualify.
  Relation v = GenerateVectors(500, 3, Correlation::kAntiCorrelated, 5);
  PrefPtr sky = Pareto({Highest("d0"), Highest("d1"), Highest("d2")});
  auto sky_table =
      ScoreTable::Compile(sky, v.schema(), v.tuples().data(), v.size());
  ASSERT_TRUE(sky_table.has_value());
  EXPECT_TRUE(sky_table->CanDivideConquer());
  EXPECT_EQ(BmoIndices(v, sky, Vectorized(BmoAlgorithm::kDivideConquer)),
            BmoIndices(v, sky, Closure()));
}

TEST(ScoreTableTest, NanScoresKeepSfsSoundAndCrashFree) {
  // A SCORE function yielding NaN for some values used to make the SFS
  // sort comparator inconsistent (strict-weak-ordering violation). Blocks
  // with non-finite key values now run the exact BNL window instead.
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  Relation r(s);
  std::mt19937_64 rng(99);
  for (int i = 0; i < 200; ++i) {
    r.Add({Value(int64_t(rng() % 10)), Value(int64_t(rng() % 10))});
  }
  PrefPtr nan_score = Score(
      "a", [](const Value& v) { return *v.numeric() >= 5 ? kNaN : 1.0; },
      "nan_above_5");
  PrefPtr p = Pareto(nan_score, Highest("b"));
  std::vector<size_t> expected = BmoIndices(r, p, Closure());
  EXPECT_EQ(BmoIndices(r, p, Closure(BmoAlgorithm::kSortFilter)), expected);
  EXPECT_EQ(BmoIndices(r, p, Vectorized(BmoAlgorithm::kSortFilter)),
            expected);
  EXPECT_EQ(BmoIndices(r, p, Vectorized(BmoAlgorithm::kAuto)), expected);
}

TEST(ScoreTableTest, NonNumericMinusInfKeysTieSoundly) {
  // LOWEST scores every non-numeric value -inf; under a Pareto key sum
  // two NULL-price rows share the key although one dominates the other.
  // Regression for the one-sided SFS window missing the tied dominator
  // (non-finite keys demote the block to the exact BNL window).
  Schema s({{"price", ValueType::kInt}, {"power", ValueType::kInt}});
  Relation r(s);
  r.Add({Value(), 10});
  r.Add({Value(), 20});
  r.Add({Value(5), 1});
  PrefPtr p = Pareto(Lowest("price"), Highest("power"));
  std::vector<size_t> expected = BmoIndices(r, p, Closure());
  EXPECT_EQ(BmoIndices(r, p, Closure(BmoAlgorithm::kSortFilter)), expected);
  EXPECT_EQ(BmoIndices(r, p, Vectorized(BmoAlgorithm::kSortFilter)),
            expected);
}

TEST(ScoreTableTest, MinusInfKeyPrefixTiesCannotReorderLaterKeys) {
  // Harder -inf case: the *first* key (a Pareto sum) ties at -inf while a
  // later key sorts the dominatee before its dominator — an inversion,
  // not just a tie, so only the BNL fallback is sound. Row 0 is dominated
  // by row 1 via the Pareto head (NULL p equal, 5 < 7 on b) although its
  // second key (c = 9) sorts it first.
  Schema s({{"p", ValueType::kInt},
            {"b", ValueType::kInt},
            {"c", ValueType::kInt}});
  Relation r(s);
  r.Add({Value(), 5, 9});
  r.Add({Value(), 7, 1});
  r.Add({3, 0, 0});
  PrefPtr p = Prioritized(Pareto(Lowest("p"), Highest("b")), Highest("c"));
  std::vector<size_t> expected = BmoIndices(r, p, Closure());
  EXPECT_EQ(expected, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(BmoIndices(r, p, Closure(BmoAlgorithm::kSortFilter)), expected);
  EXPECT_EQ(BmoIndices(r, p, Closure(BmoAlgorithm::kAuto)), expected);
  EXPECT_EQ(BmoIndices(r, p, Vectorized(BmoAlgorithm::kSortFilter)),
            expected);
  EXPECT_EQ(BmoIndices(r, p, Vectorized(BmoAlgorithm::kAuto)), expected);
}

TEST(ScoreTableTest, DualOfAccumulationsMatchClosure) {
  // The descriptor-level order flip: dual(P (x) Q) = dual(P) (x) dual(Q)
  // (and likewise for &), compiled as per-leaf score negation. Every
  // kernel must agree with the closure evaluation of the outer DUAL.
  Relation r = MixedRelation(400, 77);
  const std::vector<PrefPtr> terms = {
      Dual(Pareto(Lowest("price"), Around("score", 5.0))),
      Dual(Prioritized(Pos("color", {"red"}), Lowest("price"))),
      Prioritized(Dual(Pareto(Lowest("price"), Pos("color", {"blue"}))),
                  Highest("score")),
      Dual(Dual(Pareto(Lowest("price"), Highest("score")))),
      Dual(Pareto(Dual(Lowest("price")), AntiChain("make"))),
  };
  for (const PrefPtr& p : terms) {
    ASSERT_TRUE(ScoreTable::CompilableTerm(p)) << p->ToString();
    std::vector<size_t> expected = BmoIndices(r, p, Closure());
    for (BmoAlgorithm algo :
         {BmoAlgorithm::kAuto, BmoAlgorithm::kBlockNestedLoop,
          BmoAlgorithm::kSortFilter, BmoAlgorithm::kDivideConquer}) {
      EXPECT_EQ(BmoIndices(r, p, Vectorized(algo)), expected)
          << p->ToString() << " algo=" << BmoAlgorithmName(algo);
    }
  }
}

TEST(ScoreTableTest, GroupingTermsCompileViaAntiChain) {
  // Def. 16 grouping device A<-> & P as one compiled term.
  Relation r = MixedRelation(300, 7);
  PrefPtr p = Prioritized(AntiChain("make"), Lowest("price"));
  EXPECT_EQ(BmoIndices(r, p, Vectorized(BmoAlgorithm::kAuto)),
            BmoIndices(r, p, Closure()));
  EXPECT_EQ(BmoIndices(r, p, Vectorized(BmoAlgorithm::kAuto)),
            BmoGroupByIndices(r, Lowest("price"), {"make"}, Closure()));
}

TEST(ScoreTableTest, ParallelGroupByMatchesSequential) {
  Relation r = MixedRelation(2000, 21);
  PrefPtr p = Pareto(Lowest("price"), Pos("color", {"red"}));
  BmoOptions sequential = Closure();
  sequential.num_threads = 1;
  std::vector<size_t> expected =
      BmoGroupByIndices(r, p, {"make"}, sequential);
  for (bool vectorize : {false, true}) {
    BmoOptions parallel;
    parallel.num_threads = 4;
    parallel.vectorize = vectorize;
    EXPECT_EQ(BmoGroupByIndices(r, p, {"make"}, parallel), expected)
        << "vectorize=" << vectorize;
    // Multi-attribute grouping exercises the tuple-keyed group map.
    EXPECT_EQ(BmoGroupByIndices(r, Lowest("price"), {"make", "color"},
                                parallel),
              BmoGroupByIndices(r, Lowest("price"), {"make", "color"},
                                sequential))
        << "vectorize=" << vectorize;
  }
}

TEST(ScoreTableTest, FallbackTermsStillEvaluate) {
  // LINEAR_SUM and SUBSET don't compile; the vectorized options must
  // transparently use closures and agree with the explicit closure run.
  Relation r = testing::IntRelation("x", {1, 2, 3, 4, 5, 6});
  PrefPtr sub = Subset(Lowest("x"), {Tuple({Value(2)}), Tuple({Value(4)}),
                                     Tuple({Value(5)})});
  EXPECT_TRUE(Bmo(r, sub).SameRows(Bmo(r, sub, Closure())));
  PrefPtr lin =
      LinearSum("x", Lowest("x"), Highest("x"),
                {Value(1), Value(2), Value(3)}, {Value(4), Value(5), Value(6)});
  EXPECT_TRUE(Bmo(r, lin).SameRows(Bmo(r, lin, Closure())));
}

TEST(ScoreTableTest, ParallelEngineSharesOneTable) {
  // Level terms through the parallel engine: partitions + merge rounds
  // run on the shared compiled table and must match sequential closures.
  Relation r = MixedRelation(4000, 31);
  PrefPtr p = Prioritized(Pos("color", {"red", "blue"}),
                          Pareto(Lowest("price"), Around("score", 4)));
  std::vector<size_t> expected = BmoIndices(r, p, Closure());
  for (bool vectorize : {false, true}) {
    PhysicalPlan plan;
    plan.num_threads = 4;
    plan.min_partition_size = 64;
    plan.vectorize = vectorize;
    EXPECT_EQ(ParallelBmoIndices(r, p, plan), expected)
        << "vectorize=" << vectorize;
  }
}

}  // namespace
}  // namespace prefdb
