// Property tests tying together the better-than graph, sort keys and BMO
// over randomized preference terms:
//   (1) BindSortKeys contract: x <P y implies keys(x) <lex keys(y), and
//       equal attribute values imply equal keys;
//   (2) graph levels respect dominance (x <P y => level(x) > level(y));
//   (3) Hasse edges are a transitive reduction (no implied edges);
//   (4) the graph's level-1 set equals the BMO answer.

#include <gtest/gtest.h>

#include <random>

#include "core/complex_preferences.h"
#include "datagen/random_terms.h"
#include "eval/better_than_graph.h"
#include "eval/bmo.h"

namespace prefdb {
namespace {

Relation RandomXY(uint64_t seed, size_t n = 40) {
  std::mt19937_64 rng(seed);
  Relation r(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  for (size_t i = 0; i < n; ++i) {
    r.Add({Value(static_cast<int>(rng() % 7) - 3),
           Value(static_cast<int>(rng() % 7) - 3)});
  }
  return r;
}

PrefPtr RandomTwoAttrTerm(uint64_t seed, int round) {
  RandomTermGen gx("x", {Value(-3), Value(-1), Value(0), Value(2)}, seed);
  RandomTermGen gy("y", {Value(-3), Value(-1), Value(0), Value(2)},
                   seed + 99);
  switch (round % 3) {
    case 0: return Pareto(gx.Term(2), gy.Term(1));
    case 1: return Prioritized(gx.Term(1), gy.Term(2));
    default: return Prioritized(Pareto(gx.Term(1), gy.Term(1)), gx.Term(1));
  }
}

class GraphSortKeyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphSortKeyPropertyTest, SortKeysAreTopologicallyCompatible) {
  Relation r = RandomXY(GetParam());
  for (int round = 0; round < 9; ++round) {
    PrefPtr p = RandomTwoAttrTerm(GetParam() + round, round);
    auto keys = p->BindSortKeys(r.schema());
    if (!keys) continue;
    auto less = p->Bind(r.schema());
    auto eq = p->BindEquality(r.schema());
    auto key_vec = [&keys](const Tuple& t) {
      std::vector<double> out;
      for (const auto& k : *keys) out.push_back(k(t));
      return out;
    };
    for (const Tuple& a : r.tuples()) {
      for (const Tuple& b : r.tuples()) {
        if (less(a, b)) {
          EXPECT_LT(key_vec(a), key_vec(b)) << p->ToString();
        }
        if (eq(a, b)) {
          EXPECT_EQ(key_vec(a), key_vec(b)) << p->ToString();
        }
      }
    }
  }
}

TEST_P(GraphSortKeyPropertyTest, GraphLevelsRespectDominance) {
  Relation r = RandomXY(GetParam() + 1000);
  for (int round = 0; round < 6; ++round) {
    PrefPtr p = RandomTwoAttrTerm(GetParam() + 1000 + round, round);
    BetterThanGraph g(r, p);
    for (size_t i = 0; i < g.size(); ++i) {
      for (size_t j = 0; j < g.size(); ++j) {
        if (g.IsWorse(i, j)) {
          EXPECT_GT(g.LevelOf(i), g.LevelOf(j)) << p->ToString();
        }
      }
    }
  }
}

TEST_P(GraphSortKeyPropertyTest, HasseEdgesAreIrreducible) {
  Relation r = RandomXY(GetParam() + 2000, 25);
  for (int round = 0; round < 5; ++round) {
    PrefPtr p = RandomTwoAttrTerm(GetParam() + 2000 + round, round);
    BetterThanGraph g(r, p);
    for (size_t better = 0; better < g.size(); ++better) {
      for (size_t worse : g.WorseNeighbors(better)) {
        // The edge better -> worse must have no intermediate z.
        for (size_t z = 0; z < g.size(); ++z) {
          if (z == better || z == worse) continue;
          EXPECT_FALSE(g.IsWorse(worse, z) && g.IsWorse(z, better))
              << "implied edge survived reduction in " << p->ToString();
        }
      }
    }
  }
}

TEST_P(GraphSortKeyPropertyTest, LevelOneEqualsBmoAnswer) {
  Relation r = RandomXY(GetParam() + 3000);
  for (int round = 0; round < 6; ++round) {
    PrefPtr p = RandomTwoAttrTerm(GetParam() + 3000 + round, round);
    BetterThanGraph g(r, p);
    std::vector<Tuple> level1 = g.ValuesAtLevel(1);
    std::sort(level1.begin(), level1.end());
    Relation best = Bmo(r, p);
    std::vector<Tuple> projections =
        best.DistinctProjections(p->attributes());
    std::sort(projections.begin(), projections.end());
    EXPECT_EQ(level1, projections) << p->ToString();
  }
}

TEST_P(GraphSortKeyPropertyTest, MaximaAgreeAcrossGraphAndEvaluator) {
  Relation r = RandomXY(GetParam() + 4000);
  for (int round = 0; round < 6; ++round) {
    PrefPtr p = RandomTwoAttrTerm(GetParam() + 4000 + round, round);
    BetterThanGraph g(r, p);
    EXPECT_EQ(g.maximal().size(), g.ValuesAtLevel(1).size()) << p->ToString();
    EXPECT_EQ(g.ValuesAtLevel(1).size(),
              Bmo(r, p).DistinctProjections(p->attributes()).size())
        << p->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphSortKeyPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace prefdb
