// Tests for the statistics subsystem (stats/stats.h): exact column
// statistics, incremental maintenance equivalence, and the term-level
// estimation/measurement paths feeding the cost model.

#include "stats/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/cars.h"
#include "datagen/vectors.h"
#include "eval/bmo.h"
#include "exec/score_table.h"

namespace prefdb {
namespace {

TEST(TableStatsTest, DeriveCountsColumns) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  Relation r(s);
  r.Add({1, "x"});
  r.Add({1, "y"});
  r.Add({2, "x"});
  r.Add({Value(), "x"});
  TableStats stats = TableStats::Derive(r);
  ASSERT_EQ(stats.rows, 4u);
  const ColumnStats* a = stats.Column("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->distinct, 3u);  // 1, 2, NULL
  EXPECT_EQ(a->null_count, 1u);
  EXPECT_FALSE(a->AllNumeric(stats.rows));
  const ColumnStats* b = stats.Column("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->distinct, 2u);
  EXPECT_EQ(b->non_numeric_count, 4u);
  EXPECT_EQ(stats.Column("missing"), nullptr);
}

TEST(TableStatsTest, RestrictedDeriveMatchesFull) {
  Relation cars = GenerateCars(500, 3);
  TableStats full = TableStats::Derive(cars);
  TableStats restricted = TableStats::Derive(cars, {"price", "make"});
  EXPECT_EQ(restricted.Column("price")->distinct,
            full.Column("price")->distinct);
  EXPECT_EQ(restricted.Column("make")->distinct,
            full.Column("make")->distinct);
  EXPECT_EQ(restricted.Column("mileage"), nullptr);
}

TEST(TableStatsTest, IncrementalBuilderMatchesRescan) {
  Relation cars = GenerateCars(300, 7);
  TableStatsBuilder builder(cars.schema());
  Relation grown(cars.schema());
  for (const Tuple& t : cars.tuples()) {
    builder.AddRow(t);
    grown.Add(t);
  }
  TableStats incremental = builder.Snapshot();
  TableStats rescan = TableStats::Derive(grown);
  ASSERT_EQ(incremental.rows, rescan.rows);
  ASSERT_EQ(incremental.columns.size(), rescan.columns.size());
  for (size_t c = 0; c < rescan.columns.size(); ++c) {
    EXPECT_EQ(incremental.columns[c].distinct, rescan.columns[c].distinct)
        << rescan.names[c];
    EXPECT_EQ(incremental.columns[c].null_count,
              rescan.columns[c].null_count);
    EXPECT_EQ(incremental.columns[c].non_numeric_count,
              rescan.columns[c].non_numeric_count);
  }
}

TEST(TermStatsTest, EstimateSeesStructure) {
  Relation cars = GenerateCars(5000, 11);
  TableStats table = TableStats::Derive(cars);
  // Injective numeric skyline: D&C-exact, window from the closed form.
  TermStats sky = EstimateTermStats(
      table, cars.schema(), Pareto(Lowest("price"), Lowest("mileage")), 5000);
  EXPECT_TRUE(sky.compilable);
  EXPECT_TRUE(sky.dc_exact);
  EXPECT_EQ(sky.dims, 2u);
  EXPECT_GT(sky.est_window, 1.0);
  EXPECT_LT(sky.est_window, 200.0);
  // AROUND breaks injectivity but keeps keys.
  TermStats around = EstimateTermStats(
      table, cars.schema(), Pareto(Around("price", 20000), Lowest("mileage")),
      5000);
  EXPECT_FALSE(around.dc_exact);
  EXPECT_GT(around.table_keys, 0u);
  // Chain-head prioritization is flagged with the head's cardinality.
  TermStats chain = EstimateTermStats(
      table, cars.schema(), Prioritized(Lowest("price"), Pos("color", {"red"})),
      5000);
  EXPECT_TRUE(chain.chain_head);
  EXPECT_GT(chain.head_distinct, 0u);
  // An injective chain head pins the window near one group.
  EXPECT_LT(chain.est_window, 64.0);
}

TEST(TermStatsTest, MeasuredWindowSeparatesCorrelationRegimes) {
  // The closed form cannot distinguish anti-correlated from independent
  // data; the two-point sampled probe must. This is the signal that
  // flips the BNL/SFS decision on the PR 4 bench families.
  const size_t n = 8192;
  PrefPtr p = Pareto({Highest("d0"), Highest("d1"), Highest("d2"),
                      Highest("d3")});
  auto measure = [&](Correlation corr) {
    Relation r = GenerateVectors(n, 4, corr, 42);
    ProjectionIndex proj = BuildProjectionIndex(r, *p);
    auto table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                     proj.values.size());
    EXPECT_TRUE(table.has_value());
    return MeasureTermStats(*table, p, n);
  };
  TermStats anti = measure(Correlation::kAntiCorrelated);
  TermStats indep = measure(Correlation::kIndependent);
  EXPECT_TRUE(anti.measured_window);
  EXPECT_TRUE(indep.measured_window);
  EXPECT_GT(anti.est_window, 4.0 * indep.est_window);
  EXPECT_TRUE(anti.dc_exact);
  EXPECT_EQ(anti.dims, 4u);
}

TEST(TermStatsTest, StridedProbeSurvivesPhysicallySortedInput) {
  // The probe samples strided across the block, so a relation ingested
  // pre-sorted by one attribute (a biased *prefix*, not a biased sample)
  // must still reveal the wide anti-correlated window instead of
  // pinning a BNL plan where SFS wins.
  const size_t n = 8192;
  PrefPtr p = Pareto({Highest("d0"), Highest("d1"), Highest("d2"),
                      Highest("d3")});
  auto measure = [&](const Relation& r) {
    ProjectionIndex proj = BuildProjectionIndex(r, *p);
    auto table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                     proj.values.size());
    EXPECT_TRUE(table.has_value());
    return MeasureTermStats(*table, p, n).est_window;
  };
  Relation anti = GenerateVectors(n, 4, Correlation::kAntiCorrelated, 42);
  const double unsorted = measure(anti);
  const double sorted = measure(anti.Sorted({"d0"}));
  // Same data, same front: the sampled estimates must agree to within a
  // small factor rather than collapsing on the sorted layout.
  EXPECT_GT(sorted, unsorted / 3.0);
  EXPECT_LT(sorted, unsorted * 3.0);
}

TEST(TableStatsTest, DistinctTrackingSaturatesNotGrows) {
  Schema s({{"x", ValueType::kInt}});
  TableStatsBuilder builder(s);
  for (int64_t i = 0; i < (1 << 16) + 500; ++i) builder.AddRow(Tuple{i});
  TableStats stats = builder.Snapshot();
  EXPECT_EQ(stats.rows, static_cast<size_t>((1 << 16) + 500));
  EXPECT_EQ(stats.Column("x")->distinct, static_cast<size_t>(1 << 16));
  // The flag marks "at least the cap"; estimation then assumes
  // pool-scale cardinality instead of the frozen count.
  EXPECT_TRUE(stats.Column("x")->distinct_saturated);
  TableStats derived = TableStats::Derive([] {
    Relation r(Schema{{"x", ValueType::kInt}});
    for (int64_t i = 0; i < 100; ++i) r.Add({i});
    return r;
  }());
  EXPECT_FALSE(derived.Column("x")->distinct_saturated);
}

TEST(TermStatsTest, AntiChainInParetoMultipliesTheWindow) {
  // Pareto(A<->, P): dominance requires equality on the anti-chain
  // attributes, so every distinct combination is its own incomparable
  // group — the window scales with the group count, not the polylog
  // skyline form.
  Relation cars = GenerateCars(20000, 5);
  TableStats table = TableStats::Derive(cars);
  const size_t makes = table.Column("make")->distinct;
  ASSERT_GT(makes, 2u);
  TermStats stats = EstimateTermStats(
      table, cars.schema(), Pareto(AntiChain("make"), Lowest("price")),
      20000);
  EXPECT_GE(stats.est_window, static_cast<double>(makes));
}

TEST(TermStatsTest, MeasuredColumnDistinctIsExact) {
  Schema s({{"color", ValueType::kString}, {"price", ValueType::kInt}});
  Relation r(s);
  const char* colors[] = {"red", "blue", "green"};
  for (int i = 0; i < 60; ++i) r.Add({colors[i % 3], i});
  PrefPtr p = Pareto(Pos("color", {"red"}), Lowest("price"));
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  auto table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                   proj.values.size());
  ASSERT_TRUE(table.has_value());
  // POS(red) collapses blue/green into one level but their equality
  // classes stay distinct values: 3 classes on the color column.
  ASSERT_EQ(table->column_distinct().size(), 2u);
  EXPECT_EQ(table->column_distinct()[0], 3u);
}

TEST(WindowClosedFormTest, ShapeAndClamps) {
  EXPECT_DOUBLE_EQ(WindowClosedForm(1, 4), 1.0);
  EXPECT_DOUBLE_EQ(WindowClosedForm(100000, 1), 1.0);
  // (ln m)^(d-1)/(d-1)! grows with d and m, clamped to m.
  EXPECT_GT(WindowClosedForm(100000, 4), WindowClosedForm(100000, 2));
  EXPECT_GT(WindowClosedForm(100000, 3), WindowClosedForm(1000, 3));
  EXPECT_LE(WindowClosedForm(64, 12), 64.0);
}

}  // namespace
}  // namespace prefdb
