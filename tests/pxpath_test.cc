// Tests for the mini XML model and Preference XPATH (§6.1, [KHF01]),
// including the paper's two sample queries Q1 and Q2.

#include "pxpath/xpath.h"

#include <gtest/gtest.h>

namespace prefdb::pxpath {
namespace {

const char* kCarsXml = R"(<?xml version="1.0"?>
<CARS>
  <CAR id="1" color="black" price="9500"  mileage="60000" fuel_economy="30" horsepower="100"/>
  <CAR id="2" color="white" price="10500" mileage="30000" fuel_economy="28" horsepower="120"/>
  <CAR id="3" color="red"   price="10000" mileage="45000" fuel_economy="34" horsepower="100"/>
  <CAR id="4" color="black" price="15000" mileage="20000" fuel_economy="34" horsepower="150"/>
  <CAR id="5" color="blue"  price="8000"  mileage="90000" fuel_economy="22" horsepower="90"/>
</CARS>)";

XmlNodePtr CarsDoc() { return ParseXml(kCarsXml); }

// --- XML model ---

TEST(XmlTest, ParsesElementsAndAttributes) {
  XmlNodePtr root = CarsDoc();
  EXPECT_EQ(root->name, "CARS");
  ASSERT_EQ(root->children.size(), 5u);
  EXPECT_EQ(root->children[0]->Attr("color"), "black");
  EXPECT_EQ(root->children[1]->Attr("price"), "10500");
  EXPECT_EQ(root->children[0]->Attr("missing"), "");
}

TEST(XmlTest, ParsesNestedElementsAndText) {
  XmlNodePtr root = ParseXml("<a><b x='1'>hello &amp; bye</b><b x='2'/></a>");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->text, "hello & bye");
  EXPECT_EQ(root->ChildrenNamed("b").size(), 2u);
}

TEST(XmlTest, RejectsMalformedInput) {
  EXPECT_THROW(ParseXml("<a><b></a>"), std::invalid_argument);
  EXPECT_THROW(ParseXml("<a"), std::invalid_argument);
  EXPECT_THROW(ParseXml("<a></a><b/>"), std::invalid_argument);
}

TEST(XmlTest, SerializationRoundTrip) {
  XmlNodePtr root = CarsDoc();
  XmlNodePtr again = ParseXml(ToXml(*root));
  EXPECT_EQ(again->children.size(), root->children.size());
  EXPECT_EQ(again->children[2]->Attr("color"), "red");
}

// --- NodesToRelation ---

TEST(NodesToRelationTest, NumericAttributesBecomeNumericColumns) {
  XmlNodePtr root = CarsDoc();
  Relation rel = NodesToRelation(root->children, {"color", "price"});
  EXPECT_EQ(rel.schema().at(0).type, ValueType::kString);
  EXPECT_EQ(rel.schema().at(1).type, ValueType::kDouble);
  EXPECT_EQ(rel.size(), 5u);
  EXPECT_EQ(rel.at(0)[1], Value(9500));
}

// --- Preference XPATH queries ---

TEST(XPathTest, PlainPathSelectsAllCars) {
  XPathResult res = EvalPreferenceXPath(CarsDoc(), "/CARS/CAR");
  EXPECT_EQ(res.nodes.size(), 5u);
}

TEST(XPathTest, HardPredicateFilters) {
  XPathResult res =
      EvalPreferenceXPath(CarsDoc(), "/CARS/CAR[@color = \"black\"]");
  EXPECT_EQ(res.nodes.size(), 2u);
}

TEST(XPathTest, HardPredicateComparisonsAndBoolean) {
  XPathResult res = EvalPreferenceXPath(
      CarsDoc(), "/CARS/CAR[@price <= 10000 and @color <> \"blue\"]");
  ASSERT_EQ(res.nodes.size(), 2u);  // ids 1, 3
}

TEST(XPathTest, PaperQueryQ1TwoHighestPareto) {
  // Q1: /CARS/CAR #[(@fuel_economy)highest and (@horsepower)highest]#
  XPathResult res = EvalPreferenceXPath(
      CarsDoc(),
      "/CARS/CAR #[(@fuel_economy) highest and (@horsepower) highest]#");
  // Pareto optima: id 4 (34, 150) dominates id 3 (34, 100)? Equal fuel 34,
  // higher hp -> yes dominates. id 2 (28,120) dominated by 4. id 1 (30,100)
  // dominated by 4. id 5 dominated. So only id 4.
  ASSERT_EQ(res.nodes.size(), 1u);
  EXPECT_EQ(res.nodes[0]->Attr("id"), "4");
  EXPECT_NE(res.preference_term.find("HIGHEST"), std::string::npos);
}

TEST(XPathTest, PaperQueryQ2PriorToAndCascade) {
  // Q2: color in ("black","white") prior to price around 10000, then a
  // second soft step on mileage.
  XPathResult res = EvalPreferenceXPath(
      CarsDoc(),
      "/CARS/CAR #[(@color) in (\"black\", \"white\") prior to (@price) "
      "around 10000]# #[(@mileage) lowest]#");
  // Step 1 favorites: black/white cars {1, 2, 4}; among them price around
  // 10000: distances 500, 500, 5000 -> {1, 2}. Cascade lowest mileage:
  // 60000 vs 30000 -> id 2.
  ASSERT_EQ(res.nodes.size(), 1u);
  EXPECT_EQ(res.nodes[0]->Attr("id"), "2");
}

TEST(XPathTest, AroundPreference) {
  XPathResult res = EvalPreferenceXPath(
      CarsDoc(), "/CARS/CAR #[(@price) around 9900]#");
  ASSERT_EQ(res.nodes.size(), 1u);
  EXPECT_EQ(res.nodes[0]->Attr("id"), "3");  // 10000, distance 100
}

TEST(XPathTest, BetweenPreference) {
  XPathResult res = EvalPreferenceXPath(
      CarsDoc(), "/CARS/CAR #[(@price) between 9000 and 10000]#");
  // In-interval: ids 1 (9500) and 3 (10000) tie at distance 0.
  EXPECT_EQ(res.nodes.size(), 2u);
}

TEST(XPathTest, NegAndEqualityAtoms) {
  XPathResult res1 = EvalPreferenceXPath(
      CarsDoc(), "/CARS/CAR #[(@color) = \"red\"]#");
  ASSERT_EQ(res1.nodes.size(), 1u);
  EXPECT_EQ(res1.nodes[0]->Attr("id"), "3");
  XPathResult res2 = EvalPreferenceXPath(
      CarsDoc(), "/CARS/CAR #[(@color) <> \"black\"]#");
  EXPECT_EQ(res2.nodes.size(), 3u);
}

TEST(XPathTest, SoftSelectionOnEmptyNodeSetStaysEmpty) {
  XPathResult res = EvalPreferenceXPath(
      CarsDoc(), "/CARS/CAR[@price > 99999] #[(@price) lowest]#");
  EXPECT_TRUE(res.nodes.empty());
}

TEST(XPathTest, GroupedPreferenceParentheses) {
  XPathResult res = EvalPreferenceXPath(
      CarsDoc(),
      "/CARS/CAR #[((@fuel_economy) highest) and ((@horsepower) highest)]#");
  EXPECT_EQ(res.nodes.size(), 1u);
}

TEST(XPathTest, SyntaxErrors) {
  EXPECT_THROW(EvalPreferenceXPath(CarsDoc(), ""), std::invalid_argument);
  EXPECT_THROW(EvalPreferenceXPath(CarsDoc(), "/CARS/CAR #[(@x) sideways]#"),
               std::invalid_argument);
  EXPECT_THROW(EvalPreferenceXPath(CarsDoc(), "/CARS/CAR #[(@x) highest"),
               std::invalid_argument);
  EXPECT_THROW(EvalPreferenceXPath(CarsDoc(), "/CARS/CAR[@x ~ 1]"),
               std::invalid_argument);
}

TEST(XPathTest, RootNameMismatchGivesEmpty) {
  XPathResult res = EvalPreferenceXPath(CarsDoc(), "/GARAGE/CAR");
  EXPECT_TRUE(res.nodes.empty());
}

TEST(XPathTest, DescendantAxisFindsNestedNodes) {
  XmlNodePtr root = ParseXml(
      "<SHOP><LOT><CAR id='1' price='5'/></LOT>"
      "<CAR id='2' price='3'/>"
      "<LOT><LOT><CAR id='3' price='9'/></LOT></LOT></SHOP>");
  XPathResult all = EvalPreferenceXPath(root, "//CAR");
  EXPECT_EQ(all.nodes.size(), 3u);
  XPathResult best = EvalPreferenceXPath(root, "//CAR #[(@price) lowest]#");
  ASSERT_EQ(best.nodes.size(), 1u);
  EXPECT_EQ(best.nodes[0]->Attr("id"), "2");
}

TEST(XPathTest, DescendantAxisMidPath) {
  XmlNodePtr root = ParseXml(
      "<SHOP><LOT><CAR id='1'/></LOT><LOT><BOX><CAR id='2'/></BOX></LOT>"
      "</SHOP>");
  XPathResult res = EvalPreferenceXPath(root, "/SHOP//CAR");
  EXPECT_EQ(res.nodes.size(), 2u);
}

}  // namespace
}  // namespace prefdb::pxpath
