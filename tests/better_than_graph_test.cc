// Tests for the better-than graph (Hasse diagram) construction (Def. 2).

#include "eval/better_than_graph.h"

#include <gtest/gtest.h>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::IntRelation;
using ::prefdb::testing::StringRelation;

TEST(GraphTest, ChainFormsOneNodePerLevel) {
  Relation r = IntRelation("x", {3, 1, 2});
  BetterThanGraph g(r, Highest("x"));
  EXPECT_EQ(g.max_level(), 3u);
  EXPECT_EQ(g.ValuesAtLevel(1), (std::vector<Tuple>{Tuple({3})}));
  EXPECT_EQ(g.ValuesAtLevel(2), (std::vector<Tuple>{Tuple({2})}));
  EXPECT_EQ(g.ValuesAtLevel(3), (std::vector<Tuple>{Tuple({1})}));
}

TEST(GraphTest, AntiChainIsFlat) {
  Relation r = IntRelation("x", {1, 2, 3});
  BetterThanGraph g(r, AntiChain("x"));
  EXPECT_EQ(g.max_level(), 1u);
  EXPECT_EQ(g.maximal().size(), 3u);
  EXPECT_EQ(g.minimal().size(), 3u);
}

TEST(GraphTest, TransitiveReductionDropsImpliedEdges) {
  // 1 < 2 < 3 under HIGHEST: the Hasse diagram has no edge 3 -> 1.
  Relation r = IntRelation("x", {1, 2, 3});
  BetterThanGraph g(r, Highest("x"));
  size_t edges = 0;
  for (size_t i = 0; i < g.size(); ++i) edges += g.WorseNeighbors(i).size();
  EXPECT_EQ(edges, 2u);  // 3->2, 2->1 only
}

TEST(GraphTest, DominanceMatrixKeepsFullRelation) {
  Relation r = IntRelation("x", {1, 2, 3});
  BetterThanGraph g(r, Highest("x"));
  // Find node indices.
  auto find = [&g](int v) {
    for (size_t i = 0; i < g.size(); ++i) {
      if (g.values()[i][0] == Value(v)) return i;
    }
    return size_t{999};
  };
  EXPECT_TRUE(g.IsWorse(find(1), find(3)));  // implied edge still queryable
  EXPECT_FALSE(g.IsWorse(find(3), find(1)));
}

TEST(GraphTest, LevelIsLongestPathNotShortest) {
  // Diamond with a long tail: a value reachable from a maximal via 1 and
  // via 3 edges gets the level of the longest path.
  PrefPtr p = Explicit("c", {{Value("d"), Value("b")},
                             {Value("b"), Value("a")},
                             {Value("d"), Value("c")},
                             {Value("c"), Value("b")}});
  Relation r = StringRelation("c", {"a", "b", "c", "d"});
  BetterThanGraph g(r, p);
  // a (L1) > b (L2) > c (L3) > d (L4); also b -> d directly.
  EXPECT_EQ(g.max_level(), 4u);
  EXPECT_EQ(g.ValuesAtLevel(4), (std::vector<Tuple>{Tuple({Value("d")})}));
}

TEST(GraphTest, DuplicateRowsCollapseToOneNode) {
  Relation r = IntRelation("x", {5, 5, 7});
  BetterThanGraph g(r, Highest("x"));
  EXPECT_EQ(g.size(), 2u);
}

TEST(GraphTest, ToTextRendersLevels) {
  Relation r = IntRelation("x", {1, 2});
  BetterThanGraph g(r, Highest("x"));
  EXPECT_EQ(g.ToText(), "Level 1: 2\nLevel 2: 1\n");
}

TEST(GraphTest, ToDotProducesDigraph) {
  Relation r = IntRelation("x", {1, 2});
  BetterThanGraph g(r, Highest("x"));
  std::string dot = g.ToDot("g");
  EXPECT_NE(dot.find("digraph g {"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(GraphTest, MultiAttributeNodesRenderAsTuples) {
  Relation r(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  r.Add({1, 2});
  r.Add({2, 1});
  BetterThanGraph g(r, Pareto(Highest("x"), Highest("y")));
  EXPECT_EQ(g.max_level(), 1u);
  EXPECT_NE(g.ToText().find("(1, 2)"), std::string::npos);
}

TEST(GraphTest, MaximalAndMinimalSetsForPareto) {
  Relation r(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  r.Add({2, 2});
  r.Add({1, 1});
  r.Add({0, 3});
  BetterThanGraph g(r, Pareto(Highest("x"), Highest("y")));
  EXPECT_EQ(g.maximal().size(), 2u);  // (2,2), (0,3)
  EXPECT_EQ(g.minimal().size(), 2u);  // (1,1), (0,3): (0,3) is isolated
}

}  // namespace
}  // namespace prefdb
