// Unit tests for the non-numerical base preference constructors (Def. 6).

#include "core/base_preferences.h"

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::StringRelation;

const Schema kColorSchema({{"color", ValueType::kString}});

bool Less(const PrefPtr& p, const Value& x, const Value& y) {
  return p->Bind(kColorSchema)(Tuple({x}), Tuple({y}));
}

// --- POS (Def. 6a) ---

TEST(PosTest, NonPosIsWorseThanPos) {
  PrefPtr p = Pos("color", {"yellow", "green"});
  EXPECT_TRUE(Less(p, "red", "yellow"));
  EXPECT_TRUE(Less(p, "red", "green"));
  EXPECT_FALSE(Less(p, "yellow", "red"));
}

TEST(PosTest, PosValuesMutuallyUnranked) {
  PrefPtr p = Pos("color", {"yellow", "green"});
  EXPECT_FALSE(Less(p, "yellow", "green"));
  EXPECT_FALSE(Less(p, "green", "yellow"));
}

TEST(PosTest, OtherValuesMutuallyUnranked) {
  PrefPtr p = Pos("color", {"yellow"});
  EXPECT_FALSE(Less(p, "red", "blue"));
  EXPECT_FALSE(Less(p, "blue", "red"));
}

TEST(PosTest, IsStrictPartialOrder) {
  PrefPtr p = Pos("color", {"yellow", "green"});
  Relation dom = StringRelation("color",
                                {"yellow", "green", "red", "blue", "black"});
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

TEST(PosTest, ToStringMentionsConstructorAndSet) {
  EXPECT_EQ(Pos("color", {"yellow"})->ToString(),
            "POS(color, {'yellow'})");
}

// --- NEG (Def. 6b) ---

TEST(NegTest, NegValuesAreWorse) {
  PrefPtr p = Neg("color", {"gray"});
  EXPECT_TRUE(Less(p, "gray", "red"));
  EXPECT_FALSE(Less(p, "red", "gray"));
  EXPECT_FALSE(Less(p, "red", "blue"));
}

TEST(NegTest, NegValuesMutuallyUnranked) {
  PrefPtr p = Neg("color", {"gray", "brown"});
  EXPECT_FALSE(Less(p, "gray", "brown"));
  EXPECT_FALSE(Less(p, "brown", "gray"));
}

TEST(NegTest, IsStrictPartialOrder) {
  PrefPtr p = Neg("color", {"gray", "brown"});
  Relation dom = StringRelation("color", {"gray", "brown", "red", "blue"});
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

// --- POS/NEG (Def. 6c) ---

TEST(PosNegTest, ThreeLevelStructure) {
  PrefPtr p = PosNeg("color", {"yellow"}, {"gray"});
  EXPECT_TRUE(Less(p, "red", "yellow"));    // neutral < pos
  EXPECT_TRUE(Less(p, "gray", "red"));      // neg < neutral
  EXPECT_TRUE(Less(p, "gray", "yellow"));   // neg < pos (transitive closure)
  EXPECT_FALSE(Less(p, "yellow", "gray"));
  EXPECT_FALSE(Less(p, "red", "blue"));     // neutrals unranked
}

TEST(PosNegTest, RejectsOverlappingSets) {
  EXPECT_THROW(PosNeg("color", {"red"}, {"red"}), std::invalid_argument);
}

TEST(PosNegTest, IsStrictPartialOrder) {
  PrefPtr p = PosNeg("color", {"yellow", "blue"}, {"gray", "brown"});
  Relation dom = StringRelation(
      "color", {"yellow", "blue", "gray", "brown", "red", "white"});
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

// --- POS/POS (Def. 6d) ---

TEST(PosPosTest, FavoritesBeatAlternativesBeatOthers) {
  PrefPtr p = PosPos("category", {"cabriolet"}, {"roadster"});
  Schema s({{"category", ValueType::kString}});
  auto less = p->Bind(s);
  auto lt = [&](const char* a, const char* b) {
    return less(Tuple({Value(a)}), Tuple({Value(b)}));
  };
  EXPECT_TRUE(lt("roadster", "cabriolet"));
  EXPECT_TRUE(lt("van", "roadster"));
  EXPECT_TRUE(lt("van", "cabriolet"));
  EXPECT_FALSE(lt("cabriolet", "roadster"));
  EXPECT_FALSE(lt("van", "suv"));
}

TEST(PosPosTest, RejectsOverlappingSets) {
  EXPECT_THROW(PosPos("c", {"x"}, {"x"}), std::invalid_argument);
}

TEST(PosPosTest, IsStrictPartialOrder) {
  PrefPtr p = PosPos("color", {"yellow"}, {"green", "blue"});
  Relation dom =
      StringRelation("color", {"yellow", "green", "blue", "red", "black"});
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

// --- EXPLICIT (Def. 6e) ---

PrefPtr Example1Explicit() {
  // Example 1 of the paper: {(green, yellow), (green, red), (yellow, white)}.
  return Explicit("color", {{Value("green"), Value("yellow")},
                            {Value("green"), Value("red")},
                            {Value("yellow"), Value("white")}});
}

TEST(ExplicitTest, DirectEdgesHold) {
  PrefPtr p = Example1Explicit();
  EXPECT_TRUE(Less(p, "green", "yellow"));
  EXPECT_TRUE(Less(p, "green", "red"));
  EXPECT_TRUE(Less(p, "yellow", "white"));
}

TEST(ExplicitTest, TransitiveClosureHolds) {
  PrefPtr p = Example1Explicit();
  EXPECT_TRUE(Less(p, "green", "white"));  // green < yellow < white
}

TEST(ExplicitTest, GraphValuesBeatOutsideValues) {
  PrefPtr p = Example1Explicit();
  EXPECT_TRUE(Less(p, "brown", "green"));
  EXPECT_TRUE(Less(p, "black", "white"));
  EXPECT_FALSE(Less(p, "green", "brown"));
}

TEST(ExplicitTest, OutsideValuesMutuallyUnranked) {
  PrefPtr p = Example1Explicit();
  EXPECT_FALSE(Less(p, "brown", "black"));
  EXPECT_FALSE(Less(p, "black", "brown"));
}

TEST(ExplicitTest, MaximalValuesUnranked) {
  PrefPtr p = Example1Explicit();
  EXPECT_FALSE(Less(p, "white", "red"));
  EXPECT_FALSE(Less(p, "red", "white"));
}

TEST(ExplicitTest, RejectsCycles) {
  EXPECT_THROW(Explicit("c", {{Value("a"), Value("b")},
                              {Value("b"), Value("c")},
                              {Value("c"), Value("a")}}),
               std::invalid_argument);
  EXPECT_THROW(Explicit("c", {{Value("a"), Value("a")}}),
               std::invalid_argument);
}

TEST(ExplicitTest, IsStrictPartialOrder) {
  PrefPtr p = Example1Explicit();
  Relation dom = StringRelation(
      "color", {"white", "red", "yellow", "green", "brown", "black"});
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

// --- LAYERED ---

TEST(LayeredTest, LevelsOrderValues) {
  PrefPtr p = Layered("color", {LayeredPreference::Layer{{Value("gold")}, false},
                                LayeredPreference::Layer{{Value("silver")}, false},
                                LayeredPreference::Others()});
  EXPECT_TRUE(Less(p, "silver", "gold"));
  EXPECT_TRUE(Less(p, "bronze", "silver"));
  EXPECT_TRUE(Less(p, "bronze", "gold"));
  EXPECT_FALSE(Less(p, "gold", "silver"));
}

TEST(LayeredTest, OthersLayerCanRankAboveExplicitLayer) {
  // NEG as layered: OTHERS first, then the dislikes.
  PrefPtr p = Layered("color", {LayeredPreference::Others(),
                                LayeredPreference::Layer{{Value("gray")}, false}});
  EXPECT_TRUE(Less(p, "gray", "red"));
  EXPECT_FALSE(Less(p, "red", "gray"));
}

TEST(LayeredTest, RejectsDuplicateValuesAcrossLayers) {
  EXPECT_THROW(
      Layered("c", {LayeredPreference::Layer{{Value("x")}, false},
                    LayeredPreference::Layer{{Value("x")}, false}}),
      std::invalid_argument);
}

TEST(LayeredTest, RejectsTwoOthersLayers) {
  EXPECT_THROW(Layered("c", {LayeredPreference::Others(),
                             LayeredPreference::Others()}),
               std::invalid_argument);
}

TEST(LayeredTest, LevelOfReportsLayers) {
  auto p = std::make_shared<LayeredPreference>(
      "c", std::vector<LayeredPreference::Layer>{
               LayeredPreference::Layer{{Value("a")}, false},
               LayeredPreference::Others(),
               LayeredPreference::Layer{{Value("z")}, false}});
  EXPECT_EQ(p->LevelOf(Value("a")), 1u);
  EXPECT_EQ(p->LevelOf(Value("m")), 2u);
  EXPECT_EQ(p->LevelOf(Value("z")), 3u);
}

// --- Structural equality ---

TEST(StructuralEqualityTest, SameConstructorAndParams) {
  EXPECT_TRUE(Pos("c", {"a", "b"})->StructurallyEquals(
      *Pos("c", {"b", "a"})));  // sets, not lists
  EXPECT_FALSE(Pos("c", {"a"})->StructurallyEquals(*Pos("c", {"b"})));
  EXPECT_FALSE(Pos("c", {"a"})->StructurallyEquals(*Neg("c", {"a"})));
  EXPECT_FALSE(Pos("c", {"a"})->StructurallyEquals(*Pos("d", {"a"})));
}

TEST(StructuralEqualityTest, PosNegComparesBothSets) {
  EXPECT_TRUE(PosNeg("c", {"a"}, {"z"})->StructurallyEquals(
      *PosNeg("c", {"a"}, {"z"})));
  EXPECT_FALSE(PosNeg("c", {"a"}, {"z"})->StructurallyEquals(
      *PosNeg("c", {"a"}, {"y"})));
}

TEST(AttributeSetTest, PreferenceRequiresAttribute) {
  EXPECT_THROW(AntiChain(std::vector<std::string>{}), std::invalid_argument);
}

TEST(BindTest, UnknownAttributeThrows) {
  PrefPtr p = Pos("shade", {"x"});
  EXPECT_THROW(p->Bind(kColorSchema), std::out_of_range);
}

}  // namespace
}  // namespace prefdb
