// Tests for the k-best ranked query model (§6.2).

#include "eval/ranked.h"

#include <gtest/gtest.h>

#include "core/numeric_preferences.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::IntRelation;

Relation XY() {
  Relation r(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  r.Add({1, 9});
  r.Add({5, 5});
  r.Add({9, 1});
  r.Add({9, 9});
  return r;
}

TEST(TopKTest, OrdersByCombinedUtilityDescending) {
  auto rank = std::make_shared<RankPreference>(
      [](const std::vector<double>& s) { return s[0] + s[1]; }, "sum",
      std::vector<PrefPtr>{Highest("x"), Highest("y")});
  RankedResult res = TopK(XY(), *rank, 2);
  ASSERT_EQ(res.relation.size(), 2u);
  EXPECT_EQ(res.relation.at(0), Tuple({9, 9}));
  EXPECT_EQ(res.utilities[0], 18.0);
  EXPECT_EQ(res.utilities[1], 10.0);
}

TEST(TopKTest, KZeroReturnsFullRanking) {
  auto rank = std::make_shared<RankPreference>(
      [](const std::vector<double>& s) { return s[0]; }, "first",
      std::vector<PrefPtr>{Highest("x")});
  RankedResult res = TopK(XY(), *rank, 0);
  EXPECT_EQ(res.relation.size(), 4u);
  EXPECT_GE(res.utilities[0], res.utilities[3]);
}

TEST(TopKTest, KLargerThanInputReturnsAll) {
  RankedResult res = TopK(IntRelation("x", {3, 1}), Highest("x"), 10);
  EXPECT_EQ(res.relation.size(), 2u);
}

TEST(TopKTest, StableTieBreakByInputOrder) {
  Relation r = IntRelation("x", {5, 5, 5});
  RankedResult res = TopK(r, Highest("x"), 2);
  EXPECT_EQ(res.relation.size(), 2u);
  EXPECT_EQ(res.utilities[0], res.utilities[1]);
}

TEST(TopKTest, WorksWithAnySingleKeyPreference) {
  // AROUND is a SCORE sub-constructor, so it ranks directly.
  RankedResult res = TopK(IntRelation("x", {1, 7, 10}), Around("x", 8), 1);
  ASSERT_EQ(res.relation.size(), 1u);
  EXPECT_EQ(res.relation.at(0)[0], Value(7));
}

TEST(TopKTest, RejectsNonScorablePreference) {
  EXPECT_THROW(
      TopK(XY(), Pareto(Pos("x", {Value(1)}), Highest("y")), 1),
      std::invalid_argument);
}

TEST(TopKTest, KBestVsBmoOnChain) {
  // §6.2: for a chain, BMO returns exactly one best object — "definitely
  // too small a set to choose from"; k-best returns k.
  Relation r = IntRelation("x", {4, 8, 15, 16, 23});
  RankedResult res = TopK(r, Highest("x"), 3);
  EXPECT_EQ(res.relation.size(), 3u);
  EXPECT_EQ(res.relation.at(0)[0], Value(23));
}

}  // namespace
}  // namespace prefdb
