// Shared helpers for the prefdb test suite: quick relation builders and a
// randomized preference-term generator for property-based tests.

#ifndef PREFDB_TESTS_TEST_SUPPORT_H_
#define PREFDB_TESTS_TEST_SUPPORT_H_

#include <vector>

#include "datagen/random_terms.h"
#include "relation/relation.h"

namespace prefdb::testing {

/// Builds a single-INT-column relation.
inline Relation IntRelation(const std::string& attr,
                            const std::vector<int64_t>& values) {
  Relation rel(Schema{{attr, ValueType::kInt}});
  for (int64_t v : values) rel.Add({Value(v)});
  return rel;
}

/// Builds a single-STRING-column relation.
inline Relation StringRelation(const std::string& attr,
                               const std::vector<std::string>& values) {
  Relation rel(Schema{{attr, ValueType::kString}});
  for (const auto& v : values) rel.Add({Value(v)});
  return rel;
}

/// Sorted distinct single-column values of a relation, for set assertions.
inline std::vector<Value> Column(const Relation& rel, const std::string& attr) {
  std::vector<Value> out;
  auto idx = rel.schema().IndexOf(attr);
  for (const Tuple& t : rel.tuples()) out.push_back(t[*idx]);
  return out;
}

/// Alias of the library's random term generator (datagen/random_terms.h).
using RandomPreferenceGen = ::prefdb::RandomTermGen;

}  // namespace prefdb::testing

#endif  // PREFDB_TESTS_TEST_SUPPORT_H_
