// Verification of the §3.4 sub-constructor hierarchy: the taxonomy edges
// and the semantic equivalence of every witness conversion.

#include "core/hierarchy.h"

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "test_support.h"

namespace prefdb {
namespace {

TEST(TaxonomyTest, DirectAndTransitiveEdges) {
  using K = PreferenceKind;
  EXPECT_TRUE(IsSubConstructorOf(K::kPos, K::kPosPos));
  EXPECT_TRUE(IsSubConstructorOf(K::kPos, K::kPosNeg));
  EXPECT_TRUE(IsSubConstructorOf(K::kNeg, K::kPosNeg));
  EXPECT_TRUE(IsSubConstructorOf(K::kPosPos, K::kExplicit));
  EXPECT_TRUE(IsSubConstructorOf(K::kPos, K::kExplicit));  // transitive
  EXPECT_TRUE(IsSubConstructorOf(K::kAround, K::kBetween));
  EXPECT_TRUE(IsSubConstructorOf(K::kBetween, K::kScore));
  EXPECT_TRUE(IsSubConstructorOf(K::kAround, K::kScore));  // transitive
  EXPECT_TRUE(IsSubConstructorOf(K::kLowest, K::kScore));
  EXPECT_TRUE(IsSubConstructorOf(K::kHighest, K::kScore));
  EXPECT_TRUE(IsSubConstructorOf(K::kIntersection, K::kPareto));
  EXPECT_TRUE(IsSubConstructorOf(K::kPrioritized, K::kRankF));
  EXPECT_TRUE(IsSubConstructorOf(K::kScore, K::kScore));  // reflexive
}

TEST(TaxonomyTest, NonEdges) {
  using K = PreferenceKind;
  EXPECT_FALSE(IsSubConstructorOf(K::kExplicit, K::kPos));
  EXPECT_FALSE(IsSubConstructorOf(K::kScore, K::kAround));
  EXPECT_FALSE(IsSubConstructorOf(K::kPos, K::kScore));
  EXPECT_FALSE(IsSubConstructorOf(K::kPareto, K::kIntersection));
  EXPECT_FALSE(IsSubConstructorOf(K::kPosNeg, K::kPosPos));
}

// --- Witness conversions: semantic equivalence on exhaustive domains ---

Relation ColorDomain() {
  Relation rel(Schema{{"c", ValueType::kString}});
  for (const char* v : {"a", "b", "m", "n", "x", "y"}) rel.Add({Value(v)});
  return rel;
}

Relation NumDomain() {
  Relation rel(Schema{{"x", ValueType::kInt}});
  for (int v : {-6, -3, -1, 0, 1, 2, 4, 7}) rel.Add({Value(v)});
  return rel;
}

TEST(WitnessTest, PosAsPosPos) {
  PosPreference p("c", {Value("a"), Value("b")});
  auto res = CheckEquivalent(Pos("c", {"a", "b"}), PosAsPosPos(p),
                             ColorDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(WitnessTest, PosAsPosNeg) {
  PosPreference p("c", {Value("a")});
  auto res = CheckEquivalent(Pos("c", {"a"}), PosAsPosNeg(p), ColorDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(WitnessTest, NegAsPosNeg) {
  NegPreference p("c", {Value("x"), Value("y")});
  auto res = CheckEquivalent(Neg("c", {"x", "y"}), NegAsPosNeg(p),
                             ColorDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(WitnessTest, PosPosAsExplicit) {
  PosPosPreference p("c", {Value("a"), Value("b")}, {Value("m")});
  auto res = CheckEquivalent(PosPos("c", {"a", "b"}, {"m"}),
                             PosPosAsExplicit(p), ColorDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(WitnessTest, LayeredGeneralizations) {
  {
    PosPreference p("c", {Value("a")});
    auto res =
        CheckEquivalent(Pos("c", {"a"}), PosAsLayered(p), ColorDomain());
    EXPECT_TRUE(res.equivalent) << "POS: " << res.counterexample;
  }
  {
    NegPreference p("c", {Value("x")});
    auto res =
        CheckEquivalent(Neg("c", {"x"}), NegAsLayered(p), ColorDomain());
    EXPECT_TRUE(res.equivalent) << "NEG: " << res.counterexample;
  }
  {
    PosNegPreference p("c", {Value("a")}, {Value("x")});
    auto res = CheckEquivalent(PosNeg("c", {"a"}, {"x"}), PosNegAsLayered(p),
                               ColorDomain());
    EXPECT_TRUE(res.equivalent) << "POS/NEG: " << res.counterexample;
  }
  {
    PosPosPreference p("c", {Value("a")}, {Value("m")});
    auto res = CheckEquivalent(PosPos("c", {"a"}, {"m"}), PosPosAsLayered(p),
                               ColorDomain());
    EXPECT_TRUE(res.equivalent) << "POS/POS: " << res.counterexample;
  }
}

TEST(WitnessTest, AroundAsBetween) {
  AroundPreference p("x", 1);
  auto res = CheckEquivalent(Around("x", 1), AroundAsBetween(p), NumDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(WitnessTest, BetweenAsScore) {
  BetweenPreference p("x", -1, 2);
  auto res =
      CheckEquivalent(Between("x", -1, 2), BetweenAsScore(p), NumDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(WitnessTest, AroundAsScore) {
  AroundPreference p("x", 2);
  auto res = CheckEquivalent(Around("x", 2), AroundAsScore(p), NumDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(WitnessTest, LowestHighestAsScore) {
  LowestPreference low("x");
  HighestPreference high("x");
  EXPECT_TRUE(
      CheckEquivalent(Lowest("x"), LowestAsScore(low), NumDomain()).equivalent);
  EXPECT_TRUE(CheckEquivalent(Highest("x"), HighestAsScore(high), NumDomain())
                  .equivalent);
}

TEST(WitnessTest, IntersectionAsPareto) {
  // Prop 6 read backwards: any intersection is a same-attribute Pareto.
  auto isect = std::make_shared<IntersectionPreference>(Pos("c", {"a"}),
                                                        Neg("c", {"x"}));
  auto res = CheckEquivalent(isect, IntersectionAsPareto(*isect),
                             ColorDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(WitnessTest, PrioritizedAsRankOnSample) {
  // '&' ≼ rank(F) with a properly weighted F (§3.4 closing remark),
  // demonstrated on a finite sample with injective first score.
  Relation dom(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  for (int x : {1, 2, 3}) {
    for (int y : {10, 20, 30}) dom.Add({Value(x), Value(y)});
  }
  PrefPtr p1 = Lowest("x");
  PrefPtr p2 = Highest("y");
  PrefPtr rank = PrioritizedAsRankOnSample(p1, p2, dom.schema(), dom.tuples());
  ASSERT_NE(rank, nullptr);
  auto res = CheckEquivalent(Prioritized(p1, p2), rank, dom);
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(WitnessTest, PrioritizedAsRankRejectsNonInjectiveFirstScore) {
  Relation dom(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  // AROUND 0 scores -5 and 5 equally, but the values differ -> no F.
  for (int x : {-5, 0, 5}) {
    for (int y : {1, 2}) dom.Add({Value(x), Value(y)});
  }
  PrefPtr rank = PrioritizedAsRankOnSample(Around("x", 0), Highest("y"),
                                           dom.schema(), dom.tuples());
  EXPECT_EQ(rank, nullptr);
}

TEST(WitnessTest, PrioritizedAsRankRejectsNonScorableInput) {
  Relation dom(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  dom.Add({Value(1), Value(2)});
  PrefPtr rank = PrioritizedAsRankOnSample(Pos("x", {Value(1)}), Highest("y"),
                                           dom.schema(), dom.tuples());
  EXPECT_EQ(rank, nullptr);
}

}  // namespace
}  // namespace prefdb
