// Verification of the preference algebra (§4): every law of Props 2-6 is
// instantiated with randomized component preferences over exhaustively
// enumerated finite domains and checked for semantic equivalence (Def. 13).

#include "algebra/laws.h"

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::RandomPreferenceGen;

std::vector<Value> SmallDomain() {
  return {Value(-2), Value(0), Value(1), Value(3)};
}

// Builds the LawInputs for one random round: p/q/r share attribute "a";
// d1/d2/d3 live on disjoint attributes a/b/c; u1/u2/u3 are range-disjoint
// subset preferences on "a".
struct LawSetup {
  LawInputs inputs;
  Relation dom1;  // dom(a)
  Relation dom3;  // dom(a) x dom(b) x dom(c)
};

LawSetup MakeLawSetup(uint64_t seed) {
  LawSetup s;
  RandomPreferenceGen ga("a", SmallDomain(), seed);
  RandomPreferenceGen gb("b", SmallDomain(), seed + 101);
  RandomPreferenceGen gc("c", SmallDomain(), seed + 202);
  s.inputs.attrs_a = {"a"};
  s.inputs.p = ga.Term(2);
  s.inputs.q = ga.Term(2);
  s.inputs.r = ga.Term(2);
  s.inputs.d1 = ga.Term(1);
  s.inputs.d2 = gb.Term(1);
  s.inputs.d3 = gc.Term(1);
  // Range-disjoint pieces on "a": subset preferences over disjoint slices.
  std::vector<Value> dom = SmallDomain();
  s.inputs.u1 = Subset(ga.Term(1), {Tuple({dom[0]}), Tuple({dom[1]})});
  s.inputs.u2 = Subset(ga.Term(1), {Tuple({dom[2]})});
  s.inputs.u3 = Subset(ga.Term(1), {Tuple({dom[3]})});

  s.dom1 = Relation(Schema{{"a", ValueType::kInt}});
  for (const Value& v : dom) s.dom1.Add({v});
  s.dom3 = Relation(Schema{{"a", ValueType::kInt},
                           {"b", ValueType::kInt},
                           {"c", ValueType::kInt}});
  for (const Value& va : dom) {
    for (const Value& vb : dom) {
      for (const Value& vc : dom) s.dom3.Add({va, vb, vc});
    }
  }
  return s;
}

class AlgebraLawsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgebraLawsTest, AllGenericLawsHold) {
  LawSetup s = MakeLawSetup(GetParam());
  for (const LawInstance& law : InstantiateGenericLaws(s.inputs)) {
    // Pick the widest domain that covers the law's attributes.
    const Relation& dom =
        law.lhs->attributes().size() == 1 ? s.dom1 : s.dom3;
    auto res = CheckEquivalent(law.lhs, law.rhs, dom);
    EXPECT_TRUE(res.equivalent)
        << law.id << " (" << law.statement << ")\n lhs: "
        << law.lhs->ToString() << "\n rhs: " << law.rhs->ToString()
        << "\n counterexample: " << res.counterexample;
  }
}

TEST_P(AlgebraLawsTest, SpecialBaseConstructorLawsHold) {
  LawSetup s = MakeLawSetup(GetParam());
  std::vector<Value> set = {Value(0), Value(3)};
  for (const LawInstance& law : SpecialLawInstances("a", set)) {
    auto res = CheckEquivalent(law.lhs, law.rhs, s.dom1);
    EXPECT_TRUE(res.equivalent)
        << law.id << ": " << res.counterexample;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLawsTest,
                         ::testing::Values(7, 11, 17, 23, 31, 41, 59, 73));

// --- Targeted law tests with human-checkable instances ---

TEST(LawDetailTest, Prop3cDualOfLinearSum) {
  // (P1 (+) P2)^d == P2^d (+) P1^d.
  std::vector<Value> dom_l = {Value(1), Value(2)};
  std::vector<Value> dom_r = {Value(10), Value(20)};
  PrefPtr lhs = Dual(LinearSum("v", Lowest("a"), Highest("b"), dom_l, dom_r));
  PrefPtr rhs = LinearSum("v", Dual(Highest("b")), Dual(Lowest("a")), dom_r,
                          dom_l);
  Relation dom(Schema{{"v", ValueType::kInt}});
  for (int v : {1, 2, 10, 20, 99}) dom.Add({Value(v)});
  auto res = CheckEquivalent(lhs, rhs, dom);
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(LawDetailTest, Prop3hPrioritizedChains) {
  Relation dom(Schema{{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  for (int a : {1, 2, 3}) {
    for (int b : {1, 2, 3}) dom.Add({Value(a), Value(b)});
  }
  PrefPtr p = Prioritized(Lowest("a"), Highest("b"));
  EXPECT_TRUE(IsChainOn(p, dom.schema(), dom.tuples()));
  PrefPtr q = Prioritized(Highest("b"), Lowest("a"));
  EXPECT_TRUE(IsChainOn(q, dom.schema(), dom.tuples()));
}

TEST(LawDetailTest, Prop4aSharedAttributesDiscrimination) {
  // P1 & P2 == P1 when both are on the same attribute set — P2 is
  // completely dominated.
  PrefPtr p1 = Pos("a", {Value(1)});
  PrefPtr p2 = Lowest("a");
  Relation dom(Schema{{"a", ValueType::kInt}});
  for (int v : {0, 1, 2, 3}) dom.Add({Value(v)});
  auto res = CheckEquivalent(Prioritized(p1, p2), p1, dom);
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(LawDetailTest, Prop5NonDiscriminationConcrete) {
  // Example 7's algebraic heart on a small concrete domain.
  PrefPtr p1 = Lowest("price");
  PrefPtr p2 = Lowest("mileage");
  Relation dom(
      Schema{{"price", ValueType::kInt}, {"mileage", ValueType::kInt}});
  for (int p : {1, 2, 3}) {
    for (int m : {1, 2, 3}) dom.Add({Value(p), Value(m)});
  }
  PrefPtr lhs = Pareto(p1, p2);
  PrefPtr rhs = Intersection(Prioritized(p1, p2), Prioritized(p2, p1));
  auto res = CheckEquivalent(lhs, rhs, dom);
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(LawDetailTest, Prop6SameAttributeParetoIsIntersection) {
  PrefPtr p1 = Pos("c", {"x", "y"});
  PrefPtr p2 = Neg("c", {"y", "z"});
  Relation dom(Schema{{"c", ValueType::kString}});
  for (const char* v : {"x", "y", "z", "w"}) dom.Add({Value(v)});
  auto res = CheckEquivalent(Pareto(p1, p2), Intersection(p1, p2), dom);
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(LawDetailTest, ParetoDualGivesFullAntiChain) {
  // P (x) P^d == A<-> — "unranked values are a natural reservoir to
  // negotiate compromises" (§4.1).
  PrefPtr p = Lowest("a");
  Relation dom(Schema{{"a", ValueType::kInt}});
  for (int v : {3, 6, 9}) dom.Add({Value(v)});
  auto res = CheckEquivalent(Pareto(p, Dual(p)), AntiChain("a"), dom);
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(LawDetailTest, NumericalAccumulationCommutesForSymmetricF) {
  // §4.1: "for numerical accumulation the existence of such algebraic laws
  // depends on the mathematical properties of F" — symmetric F commutes.
  PrefPtr a = Highest("x");
  PrefPtr b = Lowest("y");
  PrefPtr lhs = RankWeightedSum({1.0, 1.0}, {a, b});
  PrefPtr rhs = RankWeightedSum({1.0, 1.0}, {b, a});
  Relation dom(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  for (int x : {0, 1, 2}) {
    for (int y : {0, 1, 2}) dom.Add({Value(x), Value(y)});
  }
  auto res = CheckEquivalent(lhs, rhs, dom);
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(LawDetailTest, EquivalenceRejectsDifferentAttributeSets) {
  auto res = CheckEquivalent(Lowest("a"), Lowest("b"),
                             Relation(Schema{{"a", ValueType::kInt},
                                             {"b", ValueType::kInt}}));
  EXPECT_FALSE(res.equivalent);
}

TEST(LawDetailTest, EquivalenceFindsCounterexample) {
  Relation dom(Schema{{"a", ValueType::kInt}});
  for (int v : {1, 2}) dom.Add({Value(v)});
  auto res = CheckEquivalent(Lowest("a"), Highest("a"), dom);
  EXPECT_FALSE(res.equivalent);
  EXPECT_FALSE(res.counterexample.empty());
}

}  // namespace
}  // namespace prefdb
