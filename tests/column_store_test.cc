// Randomized equivalence suite for the columnar (SoA) storage layer
// (relation/column_store.h): every construction path and every
// view-producing relational op must agree with a row-major reference
// model across NULL / NaN / string-dictionary columns; the zero-copy
// score-table compilation must agree with the gather path and the bound
// closure order; and IVM maintenance over columnar snapshots must match
// full recomputation. Per-column copy-on-write is pinned by buffer
// identity, not just by value.

#include "relation/column_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/vectors.h"
#include "eval/bmo.h"
#include "exec/score_table.h"
#include "ivm/maintained_view.h"
#include "relation/relation.h"

namespace prefdb {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// A relation exercising every storage feature at once: a dictionary
// string column (with repeats, so codes are shared), an int column with
// NULLs (exact int64 shadow + validity map), and a double column with
// NULLs and NaNs (the zero-copy disqualifiers).
Relation MessyRelation(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Schema s({{"tag", ValueType::kString},
            {"units", ValueType::kInt},
            {"level", ValueType::kDouble}});
  const std::vector<std::string> tags = {"alpha", "beta", "gamma", ""};
  Relation r(s);
  for (size_t i = 0; i < n; ++i) {
    Value tag = tags[rng() % tags.size()];
    Value units = rng() % 11 == 0 ? Value() : Value(int64_t(rng() % 40));
    Value level = rng() % 13 == 0 ? Value()
                  : rng() % 7 == 0 ? Value(kNaN)
                                   : Value(double(rng() % 64) / 8);
    r.Add(Tuple({tag, units, level}));
  }
  return r;
}

// NaN-safe multiset fingerprint (Value's operator== is IEEE on doubles,
// the rendering is not).
std::vector<std::string> RowSet(const Relation& rel) {
  std::vector<std::string> out;
  out.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) out.push_back(rel.RowAt(i).ToString());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> RowSet(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(t.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

// Exact in-order row renderings (views must also preserve row *order*).
std::vector<std::string> RowSeq(const Relation& rel) {
  std::vector<std::string> out;
  out.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) out.push_back(rel.RowAt(i).ToString());
  return out;
}

std::vector<std::string> RowSeq(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(t.ToString());
  return out;
}

TEST(ColumnStoreTest, ConstructorsAndAccessorsRoundTripEveryValueType) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    Relation incremental = MessyRelation(300, seed);
    // The bulk constructor must produce the identical store.
    std::vector<Tuple> rows;
    for (size_t i = 0; i < incremental.size(); ++i) {
      rows.push_back(incremental.RowAt(i));
    }
    Relation bulk(incremental.schema(), rows);
    ASSERT_EQ(bulk.size(), incremental.size());
    for (size_t i = 0; i < bulk.size(); ++i) {
      // Three accessor paths: cached tuples(), per-row materialization,
      // per-cell reads — all must reconstruct the exact Value (NULLs
      // stay NULL, ints stay ints, NaN stays NaN).
      EXPECT_EQ(bulk.at(i).ToString(), incremental.RowAt(i).ToString());
      for (size_t c = 0; c < bulk.schema().size(); ++c) {
        EXPECT_EQ(bulk.ValueAt(i, c).ToString(),
                  incremental.ValueAt(i, c).ToString());
      }
    }
    // The running summary counters must match a full scan.
    for (size_t c = 0; c < bulk.schema().size(); ++c) {
      const Column& col = bulk.store().column(c);
      uint32_t nulls = 0, strings = 0, nans = 0;
      for (size_t i = 0; i < bulk.size(); ++i) {
        const Value& v = rows[i][c];
        if (v.is_null()) ++nulls;
        if (v.type() == ValueType::kString) ++strings;
        if (v.type() == ValueType::kDouble && std::isnan(v.as_double())) ++nans;
      }
      EXPECT_EQ(col.null_count, nulls);
      EXPECT_EQ(col.string_count, strings);
      EXPECT_EQ(col.nan_count, nans);
      EXPECT_EQ(col.NumericNanFree(), nulls + strings + nans == 0);
    }
  }
}

TEST(ColumnStoreTest, Int64PrecisionSurvivesTheWidenedShadow) {
  // Values past 2^53 are not representable as doubles; the exact int64
  // shadow must reconstruct them bit-for-bit.
  const int64_t big = (int64_t(1) << 60) + 1;
  Relation r(Schema{{"n", ValueType::kInt}});
  r.Add({Value(big)});
  r.Add({Value(big + 1)});
  // (Value::operator== widens to double by design, so only the exact
  // as_int reconstruction can tell these two apart.)
  EXPECT_EQ(r.ValueAt(0, 0).as_int(), big);
  EXPECT_EQ(r.ValueAt(1, 0).as_int(), big + 1);
  EXPECT_NE(r.ValueAt(0, 0).as_int(), r.ValueAt(1, 0).as_int());
}

TEST(ColumnStoreTest, CopyOnWriteSharesBuffersAndClonesPerColumn) {
  Relation base = MessyRelation(200, 21);
  Relation copy = base;
  // A copy shares every column buffer outright.
  for (size_t c = 0; c < base.schema().size(); ++c) {
    EXPECT_EQ(&base.store().column(c), &copy.store().column(c));
  }
  std::vector<std::string> before = RowSeq(base);
  copy.Add(Tuple({Value("delta"), Value(int64_t(99)), Value(1.5)}));
  // The append cloned the copy's columns away from the shared buffers...
  for (size_t c = 0; c < base.schema().size(); ++c) {
    EXPECT_NE(&base.store().column(c), &copy.store().column(c));
  }
  // ...and the original is untouched.
  EXPECT_EQ(RowSeq(base), before);
  EXPECT_EQ(copy.size(), base.size() + 1);
  // String dictionary codes issued before the clone stay valid after.
  EXPECT_EQ(copy.ValueAt(copy.size() - 1, 0), Value("delta"));
  EXPECT_EQ(copy.ValueAt(0, 0), base.ValueAt(0, 0));
}

// Row-major reference model: the same pipeline applied to plain tuples.
struct ReferenceModel {
  Schema schema;
  std::vector<Tuple> rows;
};

TEST(ColumnStoreTest, ViewPipelinesMatchTheRowMajorReference) {
  for (uint64_t seed : {31u, 32u, 33u, 34u}) {
    std::mt19937_64 rng(seed ^ 0x5eed);
    Relation rel = MessyRelation(250, seed);
    ReferenceModel ref{rel.schema(), {}};
    for (size_t i = 0; i < rel.size(); ++i) ref.rows.push_back(rel.RowAt(i));

    for (int step = 0; step < 6 && !ref.rows.empty(); ++step) {
      switch (rng() % 4) {
        case 0: {  // Filter: drop rows whose int column is below a cut.
          auto idx = rel.schema().IndexOf("units");
          if (!idx) break;
          const size_t col = *idx;
          const int64_t cut = int64_t(rng() % 20);
          auto pred = [col, cut](const Tuple& t) {
            return !t[col].is_null() && t[col].as_int() >= cut;
          };
          rel = rel.Filter(pred);
          std::vector<Tuple> kept;
          for (const Tuple& t : ref.rows) {
            if (pred(t)) kept.push_back(t);
          }
          ref.rows = std::move(kept);
          break;
        }
        case 1: {  // Project onto a random nonempty attribute subset.
          std::vector<std::string> names;
          std::vector<size_t> cols;
          for (size_t c = 0; c < ref.schema.size(); ++c) {
            if (rng() % 2 == 0) {
              names.push_back(ref.schema.at(c).name);
              cols.push_back(c);
            }
          }
          if (names.empty()) {
            names.push_back(ref.schema.at(0).name);
            cols.push_back(0);
          }
          rel = rel.Project(names);
          Schema projected = ref.schema.Project(names);
          std::vector<Tuple> rows;
          for (const Tuple& t : ref.rows) {
            std::vector<Value> vals;
            for (size_t c : cols) vals.push_back(t[c]);
            rows.push_back(Tuple(std::move(vals)));
          }
          ref.schema = projected;
          ref.rows = std::move(rows);
          break;
        }
        case 2: {  // SelectRows: random subset in random order (dups ok).
          std::vector<size_t> pick;
          const size_t want = 1 + rng() % ref.rows.size();
          for (size_t i = 0; i < want; ++i) {
            pick.push_back(rng() % ref.rows.size());
          }
          rel = rel.SelectRows(pick);
          std::vector<Tuple> rows;
          for (size_t i : pick) rows.push_back(ref.rows[i]);
          ref.rows = std::move(rows);
          break;
        }
        default: {  // Sorted by all columns (deterministic total order).
          rel = rel.Sorted();
          std::vector<size_t> order(ref.rows.size());
          for (size_t i = 0; i < order.size(); ++i) order[i] = i;
          std::stable_sort(order.begin(), order.end(),
                           [&](size_t a, size_t b) {
                             return ref.rows[a] < ref.rows[b];
                           });
          std::vector<Tuple> rows;
          for (size_t i : order) rows.push_back(ref.rows[i]);
          ref.rows = std::move(rows);
          break;
        }
      }
      ASSERT_EQ(rel.schema().size(), ref.schema.size());
      ASSERT_EQ(RowSeq(rel), RowSeq(ref.rows)) << "seed " << seed
                                               << " step " << step;
    }
    // Distinct at the end, deduplicating under Value equality (NaN rows
    // never equal anything, so they all survive).
    std::vector<Tuple> want;
    for (const Tuple& t : ref.rows) {
      bool seen = false;
      for (const Tuple& w : want) seen = seen || w == t;
      if (!seen) want.push_back(t);
    }
    EXPECT_EQ(RowSet(rel.Distinct()), RowSet(want)) << "seed " << seed;
  }
}

TEST(ColumnStoreTest, GroupCodingMatchesGroupIndicesBy) {
  for (uint64_t seed : {41u, 42u}) {
    Relation r = MessyRelation(300, seed);
    for (const std::vector<size_t>& cols :
         {std::vector<size_t>{0}, std::vector<size_t>{1, 2},
          std::vector<size_t>{0, 1, 2}}) {
      GroupCoding coding = ComputeGroupCoding(r, cols);
      ASSERT_EQ(coding.codes.size(), r.size());
      ASSERT_EQ(coding.group_rows.size(), coding.num_groups);
      // Codes are dense and first-occurrence ordered: a row's code never
      // exceeds the codes seen before it plus one.
      uint32_t next = 0;
      for (size_t i = 0; i < r.size(); ++i) {
        ASSERT_LE(coding.codes[i], next);
        if (coding.codes[i] == next) {
          EXPECT_EQ(coding.group_rows[next], i);
          ++next;
        }
      }
      EXPECT_EQ(next, coding.num_groups);
      // Equal codes iff equal projections — checked against the
      // row-major grouping (which also pins NULL==NULL, NaN!=NaN).
      auto groups = r.GroupIndicesBy(cols);
      std::unordered_map<uint32_t, std::vector<size_t>> by_code;
      for (size_t i = 0; i < r.size(); ++i) by_code[coding.codes[i]].push_back(i);
      for (const auto& [code, members] : by_code) {
        // All members of one code must be in one GroupIndicesBy bucket.
        std::vector<Value> proj;
        for (size_t c : cols) proj.push_back(r.ValueAt(members[0], c));
        auto it = groups.find(Tuple(proj));
        if (it == groups.end()) {
          // NaN projections never equal themselves, so lookup cannot
          // retrieve them; the coding makes each its own singleton group.
          EXPECT_EQ(members.size(), 1u);
          continue;
        }
        EXPECT_EQ(it->second, members);
      }
      // One map entry per code (NaN groups land as separate entries).
      EXPECT_EQ(by_code.size(), groups.size());
    }
  }
}

TEST(ColumnStoreTest, DistinctnessProbeGatesOnDuplication) {
  // All-distinct numeric data passes the probe; a two-value column fails
  // it (collisions only under-report, i.e. toward the gather side).
  Relation distinct(Schema{{"x", ValueType::kDouble}});
  Relation dupes(Schema{{"x", ValueType::kDouble}});
  for (int i = 0; i < 4096; ++i) {
    distinct.Add({Value(double(i))});
    dupes.Add({Value(double(i % 2))});
  }
  EXPECT_TRUE(LikelyMostlyDistinct(distinct, {0}));
  EXPECT_FALSE(LikelyMostlyDistinct(dupes, {0}));
}

// Columnar-compilable terms over the d-dimensional vector schema,
// including the intersection/disjoint-union descriptor nodes.
std::vector<PrefPtr> VectorTerms() {
  return {
      Pareto({Highest("d0"), Highest("d1"), Highest("d2")}),
      Prioritized(Lowest("d0"), Pareto(Highest("d1"), Around("d2", 0.5))),
      Pareto(Intersection(Around("d1", 0.5), Highest("d1")), Lowest("d0")),
      RankWeightedSum({0.7, 0.3}, {Highest("d0"), Lowest("d2")}),
      Dual(Pareto(Lowest("d0"), Between("d1", 0.2, 0.8))),
  };
}

TEST(ColumnStoreTest, ZeroCopyGatherAndClosureAgree) {
  Relation r = GenerateVectors(1500, 3, Correlation::kAntiCorrelated, 99);
  // Heavy-duplicate variant: quantizing to 3 levels per dimension fails
  // the distinctness probe, forcing the deduplicating gather path.
  Relation quantized(r.schema());
  for (size_t i = 0; i < r.size(); ++i) {
    Tuple t = r.RowAt(i);
    std::vector<Value> q;
    for (size_t c = 0; c < t.size(); ++c) {
      q.push_back(Value(std::floor(t[c].as_double() * 3) / 3));
    }
    quantized.Add(Tuple(std::move(q)));
  }
  BmoOptions closure;
  closure.vectorize = false;
  BmoOptions vectorized;
  vectorized.vectorize = true;
  for (const PrefPtr& p : VectorTerms()) {
    ASSERT_TRUE(ScoreTable::CompilableColumnar(p, r)) << p->ToString();
    // Mostly-distinct input → the vectorized path compiles zero-copy.
    EXPECT_EQ(BmoIndices(r, p, vectorized), BmoIndices(r, p, closure))
        << p->ToString();
    // Duplicated input → the vectorized path takes the gather compile.
    EXPECT_EQ(BmoIndices(quantized, p, vectorized),
              BmoIndices(quantized, p, closure))
        << p->ToString();

    // Direct zero-copy contract: table row i is relation row i, and the
    // compiled order is exactly the bound closure order on sampled pairs.
    auto table = ScoreTable::CompileColumnar(p, r);
    ASSERT_TRUE(table.has_value()) << p->ToString();
    ASSERT_EQ(table->rows(), r.size());
    LessFn less = p->Bind(r.schema());
    std::mt19937_64 rng(4242);
    for (int k = 0; k < 400; ++k) {
      const size_t x = rng() % r.size(), y = rng() % r.size();
      EXPECT_EQ(table->Less(x, y), less(r.RowAt(x), r.RowAt(y)))
          << p->ToString() << " rows " << x << "," << y;
    }
  }
}

TEST(ColumnStoreTest, NullAndNanColumnsDisqualifyZeroCopyOnly) {
  // A NaN (or NULL) in a referenced column breaks the zero-copy contract
  // (NumericNanFree); compilation must fall back to the gather path and
  // still agree with the closure.
  Relation r = GenerateVectors(400, 2, Correlation::kIndependent, 7);
  Relation poisoned(r.schema());
  std::mt19937_64 rng(11);
  for (size_t i = 0; i < r.size(); ++i) {
    Tuple t = r.RowAt(i);
    if (rng() % 19 == 0) t[0] = Value(kNaN);
    if (rng() % 23 == 0) t[1] = Value();
    poisoned.Add(t);
  }
  PrefPtr p = Pareto(Highest("d0"), Lowest("d1"));
  EXPECT_TRUE(ScoreTable::CompilableColumnar(p, r));
  EXPECT_FALSE(ScoreTable::CompilableColumnar(p, poisoned));
  EXPECT_FALSE(ScoreTable::CompileColumnar(p, poisoned).has_value());
  BmoOptions closure;
  closure.vectorize = false;
  BmoOptions vectorized;
  vectorized.vectorize = true;
  EXPECT_EQ(BmoIndices(poisoned, p, vectorized),
            BmoIndices(poisoned, p, closure));
}

TEST(ColumnStoreTest, IvmTracesOverColumnarSnapshotsMatchRecompute) {
  // Mutation trace where every snapshot copy shares column buffers with
  // its predecessor (per-column COW): the maintained view must track the
  // recomputed answer on the columnar store at every step.
  std::mt19937_64 rng(77);
  Relation table = GenerateVectors(60, 3, Correlation::kAntiCorrelated, 5);
  PrefPtr term = Pareto({Highest("d0"), Highest("d1"), Highest("d2")});
  BmoOptions options;
  options.vectorize = true;
  ivm::MaintainedView view(term, nullptr, table, 1, options);
  uint64_t version = 1;
  for (int step = 0; step < 80; ++step) {
    ++version;
    if (table.size() < 4 || rng() % 3 != 0) {
      std::vector<Value> vals;
      for (int c = 0; c < 3; ++c) {
        vals.push_back(Value(double(rng() % 1000) / 1000));
      }
      Tuple row(std::move(vals));
      Relation next = table;  // shares buffers until the Add clones
      next.Add(row);
      view.ApplyInsert(row, table.size(), version);
      table = std::move(next);
    } else {
      std::vector<size_t> dead = {rng() % table.size()};
      std::vector<size_t> survivors;
      for (size_t i = 0; i < table.size(); ++i) {
        if (i != dead[0]) survivors.push_back(i);
      }
      view.ApplyDelete(dead, version);
      table = table.SelectRows(survivors);  // index view over shared cols
    }
    ASSERT_EQ(RowSet(view.MaximaRows()),
              RowSet(table.SelectRows(BmoIndices(table, term, options))))
        << "step " << step;
  }
}

}  // namespace
}  // namespace prefdb
