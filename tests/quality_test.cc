// Tests for the LEVEL / DISTANCE quality functions (§6.1).

#include "eval/quality.h"

#include <gtest/gtest.h>

#include "core/complex_preferences.h"

namespace prefdb {
namespace {

TEST(LevelTest, PosLevels) {
  PrefPtr p = Pos("c", {"a", "b"});
  EXPECT_EQ(IntrinsicLevel(*p, Value("a")), 1u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("z")), 2u);
}

TEST(LevelTest, NegLevels) {
  PrefPtr p = Neg("c", {"x"});
  EXPECT_EQ(IntrinsicLevel(*p, Value("a")), 1u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("x")), 2u);
}

TEST(LevelTest, PosNegLevels) {
  PrefPtr p = PosNeg("c", {"a"}, {"x"});
  EXPECT_EQ(IntrinsicLevel(*p, Value("a")), 1u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("m")), 2u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("x")), 3u);
}

TEST(LevelTest, PosPosLevels) {
  PrefPtr p = PosPos("c", {"a"}, {"b"});
  EXPECT_EQ(IntrinsicLevel(*p, Value("a")), 1u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("b")), 2u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("q")), 3u);
}

TEST(LevelTest, ExplicitLevelsMatchExample1) {
  PrefPtr p = Explicit("c", {{Value("green"), Value("yellow")},
                             {Value("green"), Value("red")},
                             {Value("yellow"), Value("white")}});
  EXPECT_EQ(IntrinsicLevel(*p, Value("white")), 1u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("red")), 1u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("yellow")), 2u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("green")), 3u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("brown")), 4u);
}

TEST(LevelTest, LayeredLevels) {
  PrefPtr p = Layered("c", {LayeredPreference::Layer{{Value("a")}, false},
                            LayeredPreference::Others()});
  EXPECT_EQ(IntrinsicLevel(*p, Value("a")), 1u);
  EXPECT_EQ(IntrinsicLevel(*p, Value("q")), 2u);
}

TEST(LevelTest, UndefinedForNumericConstructors) {
  EXPECT_THROW(IntrinsicLevel(*Lowest("x"), Value(1)), std::invalid_argument);
  EXPECT_THROW(IntrinsicLevel(*Around("x", 0), Value(1)),
               std::invalid_argument);
}

TEST(DistanceTest, AroundAndBetween) {
  EXPECT_EQ(QualityDistance(*Around("x", 14), Value(16)), 2.0);
  EXPECT_EQ(QualityDistance(*Between("x", 10, 20), Value(7)), 3.0);
  EXPECT_EQ(QualityDistance(*Between("x", 10, 20), Value(15)), 0.0);
}

TEST(DistanceTest, UndefinedForNonDistanceConstructors) {
  EXPECT_THROW(QualityDistance(*Lowest("x"), Value(1)),
               std::invalid_argument);
  EXPECT_THROW(QualityDistance(*Pos("c", {"a"}), Value("a")),
               std::invalid_argument);
}

TEST(FindBaseTest, LocatesBasePreferenceInComplexTerm) {
  PrefPtr term = Prioritized(Pareto(Around("price", 100), Lowest("mileage")),
                             Pos("color", {"red"}));
  PrefPtr found = FindBasePreference(term, "price");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->kind(), PreferenceKind::kAround);
  EXPECT_EQ(FindBasePreference(term, "color")->kind(), PreferenceKind::kPos);
  EXPECT_EQ(FindBasePreference(term, "weight"), nullptr);
}

TEST(FindBaseTest, ReturnsLeafItself) {
  PrefPtr p = Around("x", 3);
  EXPECT_EQ(FindBasePreference(p, "x"), p);
}

}  // namespace
}  // namespace prefdb
