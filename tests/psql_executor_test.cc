// End-to-end Preference SQL execution tests, including the paper's §6.1
// queries against concrete catalogs.

#include "psql/executor.h"

#include <gtest/gtest.h>

#include "datagen/cars.h"
#include "engine/engine.h"

namespace prefdb::psql {
namespace {

/// Every statement here runs through the stateful Engine — the only
/// execution entry point since the stateless wrappers were removed.
QueryResult RunSql(const std::string& sql, const Catalog& catalog,
                const BmoOptions& options = {}) {
  Engine engine(catalog);
  return engine.Execute(sql, options);
}

Catalog CarCatalog() {
  Schema s({{"make", ValueType::kString},
            {"category", ValueType::kString},
            {"color", ValueType::kString},
            {"price", ValueType::kInt},
            {"power", ValueType::kInt},
            {"mileage", ValueType::kInt}});
  Relation car(s);
  car.Add({"Opel", "roadster", "red", 38000, 140, 30000});
  car.Add({"Opel", "coupe", "red", 41000, 150, 60000});
  car.Add({"Opel", "passenger", "blue", 39500, 90, 20000});
  car.Add({"Opel", "roadster", "black", 45000, 170, 80000});
  car.Add({"BMW", "roadster", "red", 40000, 190, 10000});
  Catalog catalog;
  catalog.Register("car", car);
  return catalog;
}

TEST(ExecutorTest, HardSelectionOnly) {
  QueryResult res =
      RunSql("SELECT * FROM car WHERE make = 'BMW'", CarCatalog());
  ASSERT_EQ(res.relation.size(), 1u);
  EXPECT_EQ(res.relation.at(0)[0], Value("BMW"));
}

TEST(ExecutorTest, ProjectionAndLimit) {
  QueryResult res = RunSql(
      "SELECT make, price FROM car LIMIT 2", CarCatalog());
  EXPECT_EQ(res.relation.size(), 2u);
  EXPECT_EQ(res.relation.schema().size(), 2u);
}

TEST(ExecutorTest, UnknownTableThrows) {
  EXPECT_THROW(RunSql("SELECT * FROM nothing", CarCatalog()),
               std::out_of_range);
}

TEST(ExecutorTest, UnknownAttributeThrows) {
  EXPECT_THROW(
      RunSql("SELECT * FROM car WHERE wheels = 4", CarCatalog()),
      std::out_of_range);
}

TEST(ExecutorTest, PreferringSoftSelection) {
  QueryResult res = RunSql(
      "SELECT * FROM car PREFERRING LOWEST(price)", CarCatalog());
  ASSERT_EQ(res.relation.size(), 1u);
  EXPECT_EQ(res.relation.at(0)[3], Value(38000));
  EXPECT_FALSE(res.preference_term.empty());
}

TEST(ExecutorTest, PaperUsedCarQuery) {
  // The §6.1 flagship query: hard make filter, Pareto block with an ELSE
  // layer, then two CASCADE levels.
  QueryResult res = RunSql(
      "SELECT * FROM car WHERE make = 'Opel' "
      "PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND "
      "price AROUND 40000 AND HIGHEST(power)) "
      "CASCADE color = 'red' CASCADE LOWEST(mileage);",
      CarCatalog());
  // BMW is filtered out by the hard constraint.
  for (const Tuple& t : res.relation.tuples()) {
    EXPECT_EQ(t[0], Value("Opel"));
  }
  ASSERT_GE(res.relation.size(), 1u);
  // The red roadster at 38000/140hp: level-1 category, price distance
  // 2000, beats the black roadster (distance 5000, dominated on price...)
  // exact Pareto reasoning aside, the result must be non-empty and contain
  // only Pareto-optimal Opels; spot-check the winner set.
  bool has_red_roadster = false;
  for (const Tuple& t : res.relation.tuples()) {
    if (t[1] == Value("roadster") && t[2] == Value("red")) {
      has_red_roadster = true;
    }
  }
  EXPECT_TRUE(has_red_roadster) << res.relation.ToString();
}

TEST(ExecutorTest, EmptyResultImpossibleWithoutHardConstraints) {
  // A wish nothing matches exactly still returns the best alternatives.
  QueryResult res = RunSql(
      "SELECT * FROM car PREFERRING color = 'neon'", CarCatalog());
  EXPECT_EQ(res.relation.size(), 5u);  // everything is equally acceptable
}

TEST(ExecutorTest, TripsButOnlyQuery) {
  Schema s({{"destination", ValueType::kString},
            {"start_date", ValueType::kInt},
            {"duration", ValueType::kInt}});
  Relation trips(s);
  trips.Add({"Crete", 55, 14});     // distance 2 from target 57, dur 0
  trips.Add({"Rome", 40, 14});      // date too far -> filtered by BUT ONLY
  trips.Add({"Mallorca", 57, 21});  // duration too far
  Catalog catalog;
  catalog.Register("trips", trips);
  QueryResult res = RunSql(
      "SELECT * FROM trips "
      "PREFERRING start_date AROUND 57 AND duration AROUND 14 "
      "BUT ONLY DISTANCE(start_date) <= 2 AND DISTANCE(duration) <= 2",
      catalog);
  ASSERT_EQ(res.relation.size(), 1u);
  EXPECT_EQ(res.relation.at(0)[0], Value("Crete"));
}

TEST(ExecutorTest, ButOnlyCanYieldEmptyResult) {
  // Quality supervision may reject everything — unlike BMO itself.
  Schema s({{"x", ValueType::kInt}});
  Relation t(s);
  t.Add({100});
  Catalog catalog;
  catalog.Register("t", t);
  QueryResult res = RunSql(
      "SELECT * FROM t PREFERRING x AROUND 0 BUT ONLY DISTANCE(x) <= 5",
      catalog);
  EXPECT_TRUE(res.relation.empty());
}

TEST(ExecutorTest, ButOnlyLevelFiltering) {
  QueryResult res = RunSql(
      "SELECT * FROM car WHERE category = 'passenger' "
      "PREFERRING color = 'red' BUT ONLY LEVEL(color) <= 1",
      CarCatalog());
  // The only passenger is blue: BMO keeps it (best available), but the
  // LEVEL guard rejects it.
  EXPECT_TRUE(res.relation.empty());
}

TEST(ExecutorTest, ButOnlyWithoutPreferringThrows) {
  EXPECT_THROW(
      RunSql("SELECT * FROM car BUT ONLY LEVEL(color) <= 1",
                   CarCatalog()),
      std::invalid_argument);
}

TEST(ExecutorTest, ButOnlyOnAttributeWithoutBasePreferenceThrows) {
  EXPECT_THROW(
      RunSql("SELECT * FROM car PREFERRING LOWEST(price) "
                   "BUT ONLY LEVEL(color) <= 1",
                   CarCatalog()),
      std::invalid_argument);
}

TEST(ExecutorTest, PlanStringDescribesPipeline) {
  QueryResult res = RunSql(
      "SELECT make FROM car WHERE price < 50000 PREFERRING LOWEST(price) "
      "LIMIT 1",
      CarCatalog());
  EXPECT_NE(res.plan.find("scan(car)"), std::string::npos);
  EXPECT_NE(res.plan.find("where"), std::string::npos);
  EXPECT_NE(res.plan.find("bmo"), std::string::npos);
  EXPECT_NE(res.plan.find("project"), std::string::npos);
}

TEST(ExecutorTest, ExplainGroupingEmitsPlanDetails) {
  // Regression: GROUP BY queries used to bypass the optimizer entirely, so
  // EXPLAIN returned empty plan_details and a plan without an algorithm.
  QueryResult res = RunSql(
      "EXPLAIN SELECT * FROM car PREFERRING LOWEST(price) GROUPING make",
      CarCatalog());
  EXPECT_FALSE(res.plan_details.empty());
  EXPECT_NE(res.plan_details.find("algorithm:"), std::string::npos);
  EXPECT_NE(res.plan.find("bmo_groupby[LOWEST(price), "), std::string::npos);
  // The answer itself is unchanged: cheapest car per make.
  ASSERT_EQ(res.relation.size(), 2u);
}

TEST(ExecutorTest, GroupingAnswerUnchangedByOptimizerRouting) {
  Catalog catalog = CarCatalog();
  QueryResult routed = RunSql(
      "SELECT * FROM car PREFERRING LOWEST(price) GROUPING make", catalog);
  BmoOptions forced;  // explicit algorithm: skips the optimizer branch
  forced.algorithm = BmoAlgorithm::kBlockNestedLoop;
  QueryResult direct = RunSql(
      "SELECT * FROM car PREFERRING LOWEST(price) GROUPING make", catalog,
      forced);
  EXPECT_TRUE(routed.relation.SameRows(direct.relation));
}

TEST(ExecutorTest, CascadeOrderMatters) {
  Catalog catalog = CarCatalog();
  QueryResult color_first = RunSql(
      "SELECT * FROM car PREFERRING color = 'red' CASCADE LOWEST(price)",
      catalog);
  QueryResult price_first = RunSql(
      "SELECT * FROM car PREFERRING LOWEST(price) CASCADE color = 'red'",
      catalog);
  // color-first: best red with lowest price = red roadster at 38000.
  ASSERT_EQ(color_first.relation.size(), 1u);
  EXPECT_EQ(color_first.relation.at(0)[3], Value(38000));
  // price-first: global lowest price 38000 happens to be red too, but the
  // two plans are different pipelines — both single results here.
  ASSERT_EQ(price_first.relation.size(), 1u);
}

TEST(ExecutorTest, WorksOnGeneratedCarDatabase) {
  Catalog catalog;
  catalog.Register("cars", GenerateCars(500, 42));
  QueryResult res = RunSql(
      "SELECT oid, price, mileage FROM cars "
      "PREFERRING LOWEST(price) AND LOWEST(mileage)",
      catalog);
  EXPECT_GE(res.relation.size(), 1u);
  EXPECT_LT(res.relation.size(), 100u);
}

TEST(CatalogTest, RegisterAndListTables) {
  Catalog catalog;
  catalog.Register("a", Relation(Schema{{"x", ValueType::kInt}}));
  catalog.Register("b", Relation(Schema{{"y", ValueType::kInt}}));
  EXPECT_TRUE(catalog.Has("a"));
  EXPECT_FALSE(catalog.Has("c"));
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace prefdb::psql
