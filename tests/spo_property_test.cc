// Property-based verification of Proposition 1: *every* preference term
// defines a strict partial order. Randomized terms over exhaustively
// checked finite domains, plus parameterized sweeps over constructor
// combinations.

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "core/complex_preferences.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::RandomPreferenceGen;

std::vector<Value> IntDomain() {
  return {Value(-4), Value(-2), Value(0), Value(1), Value(3), Value(5)};
}

Relation DomainRelation(const std::string& attr,
                        const std::vector<Value>& dom) {
  Relation rel(Schema{{attr, ValueType::kInt}});
  for (const Value& v : dom) rel.Add({v});
  return rel;
}

class SpoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpoPropertyTest, RandomSameAttributeTermsAreSpo) {
  RandomPreferenceGen gen("x", IntDomain(), GetParam());
  Relation dom = DomainRelation("x", gen.domain());
  for (int i = 0; i < 20; ++i) {
    PrefPtr p = gen.Term(3);
    EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "")
        << "term: " << p->ToString();
  }
}

TEST_P(SpoPropertyTest, RandomTwoAttributeAccumulationsAreSpo) {
  RandomPreferenceGen gen_x("x", IntDomain(), GetParam());
  RandomPreferenceGen gen_y("y", IntDomain(), GetParam() + 1);
  Relation dom(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  for (const Value& a : IntDomain()) {
    for (const Value& b : IntDomain()) dom.Add({a, b});
  }
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 12; ++i) {
    PrefPtr px = gen_x.Term(2);
    PrefPtr py = gen_y.Term(2);
    PrefPtr p;
    switch (rng() % 3) {
      case 0: p = Pareto(px, py); break;
      case 1: p = Prioritized(px, py); break;
      default: p = Prioritized(py, Pareto(px, py)); break;
    }
    EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "")
        << "term: " << p->ToString();
  }
}

TEST_P(SpoPropertyTest, DualOfRandomTermIsSpo) {
  RandomPreferenceGen gen("x", IntDomain(), GetParam());
  Relation dom = DomainRelation("x", gen.domain());
  for (int i = 0; i < 10; ++i) {
    PrefPtr p = Dual(gen.Term(2));
    EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "")
        << "term: " << p->ToString();
  }
}

TEST_P(SpoPropertyTest, DualIsOrderReversal) {
  RandomPreferenceGen gen("x", IntDomain(), GetParam());
  Relation dom = DomainRelation("x", gen.domain());
  for (int i = 0; i < 10; ++i) {
    PrefPtr p = gen.Term(2);
    auto less = p->Bind(dom.schema());
    auto dual_less = Dual(p)->Bind(dom.schema());
    for (const Tuple& a : dom.tuples()) {
      for (const Tuple& b : dom.tuples()) {
        EXPECT_EQ(less(a, b), dual_less(b, a));
      }
    }
  }
}

TEST_P(SpoPropertyTest, ParetoIsMonotoneInBothComponents) {
  // If x <(x) y then neither component may strictly prefer x over y.
  RandomPreferenceGen gen_x("x", IntDomain(), GetParam() + 7);
  RandomPreferenceGen gen_y("y", IntDomain(), GetParam() + 13);
  Relation dom(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  for (const Value& a : IntDomain()) {
    for (const Value& b : IntDomain()) dom.Add({a, b});
  }
  for (int i = 0; i < 8; ++i) {
    PrefPtr px = gen_x.Term(1);
    PrefPtr py = gen_y.Term(1);
    PrefPtr p = Pareto(px, py);
    auto less = p->Bind(dom.schema());
    auto lx = px->Bind(dom.schema());
    auto ly = py->Bind(dom.schema());
    for (const Tuple& a : dom.tuples()) {
      for (const Tuple& b : dom.tuples()) {
        if (less(a, b)) {
          EXPECT_FALSE(lx(b, a)) << p->ToString();
          EXPECT_FALSE(ly(b, a)) << p->ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpoPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace prefdb
