// Tests for the persistent preference repository (repo/repository.h).

#include "repo/repository.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"

namespace prefdb {
namespace {

PreferenceRepository JuliaRepo() {
  PreferenceRepository repo;
  repo.Store("julia_colors", Neg("color", {"gray"}));
  repo.Store("julia_category", PosPos("category", {"cabriolet"},
                                      {"roadster"}));
  repo.Store("julia_wishes",
             Prioritized(Neg("color", {"gray"}), Lowest("price")));
  return repo;
}

TEST(RepositoryTest, StoreGetRemove) {
  PreferenceRepository repo = JuliaRepo();
  EXPECT_EQ(repo.size(), 3u);
  ASSERT_NE(repo.Get("julia_colors"), nullptr);
  EXPECT_EQ(repo.Get("julia_colors")->kind(), PreferenceKind::kNeg);
  EXPECT_EQ(repo.Get("unknown"), nullptr);
  EXPECT_TRUE(repo.Remove("julia_colors"));
  EXPECT_FALSE(repo.Remove("julia_colors"));
  EXPECT_EQ(repo.size(), 2u);
}

TEST(RepositoryTest, StoreReplaces) {
  PreferenceRepository repo;
  repo.Store("p", Lowest("x"));
  repo.Store("p", Highest("x"));
  EXPECT_EQ(repo.Get("p")->kind(), PreferenceKind::kHighest);
  EXPECT_EQ(repo.size(), 1u);
}

TEST(RepositoryTest, NamesAreSorted) {
  PreferenceRepository repo = JuliaRepo();
  EXPECT_EQ(repo.Names(),
            (std::vector<std::string>{"julia_category", "julia_colors",
                                      "julia_wishes"}));
}

TEST(RepositoryTest, RejectsBadNamesAndOpaqueTerms) {
  PreferenceRepository repo;
  EXPECT_THROW(repo.Store("", Lowest("x")), std::invalid_argument);
  EXPECT_THROW(repo.Store("has space", Lowest("x")), std::invalid_argument);
  EXPECT_THROW(repo.Store("p", nullptr), std::invalid_argument);
  EXPECT_THROW(
      repo.Store("p", Score("x", [](const Value&) { return 0.0; }, "f")),
      std::invalid_argument);
}

TEST(RepositoryTest, TextRoundTrip) {
  PreferenceRepository repo = JuliaRepo();
  PreferenceRepository back = PreferenceRepository::FromText(repo.ToText());
  EXPECT_EQ(back.Names(), repo.Names());
  for (const std::string& name : repo.Names()) {
    EXPECT_TRUE(repo.Get(name)->StructurallyEquals(*back.Get(name))) << name;
  }
}

TEST(RepositoryTest, FromTextSkipsCommentsAndBlankLines) {
  PreferenceRepository repo = PreferenceRepository::FromText(
      "# header comment\n"
      "\n"
      "a = LOWEST(price)  # trailing comment\n"
      "   \t\n"
      "b = POS(color, {'red'})\n");
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.Get("a")->kind(), PreferenceKind::kLowest);
}

TEST(RepositoryTest, FromTextReportsLineNumbers) {
  try {
    PreferenceRepository::FromText("a = LOWEST(price)\nb = WAT(x)\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(PreferenceRepository::FromText("just words\n"),
               std::invalid_argument);
}

TEST(RepositoryTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/prefdb_repo_test.prefs";
  PreferenceRepository repo = JuliaRepo();
  repo.SaveToFile(path);
  PreferenceRepository back = PreferenceRepository::LoadFromFile(path);
  EXPECT_EQ(back.size(), repo.size());
  for (const std::string& name : repo.Names()) {
    EXPECT_TRUE(repo.Get(name)->StructurallyEquals(*back.Get(name))) << name;
  }
  std::remove(path.c_str());
}

TEST(RepositoryTest, LoadFromMissingFileThrows) {
  EXPECT_THROW(
      PreferenceRepository::LoadFromFile("/nonexistent/dir/file.prefs"),
      std::runtime_error);
}

}  // namespace
}  // namespace prefdb
