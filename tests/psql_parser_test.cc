// Tests for the Preference SQL parser and AST, including the paper's two
// §6.1 sample queries.

#include "psql/parser.h"

#include <gtest/gtest.h>

#include "psql/translator.h"

namespace prefdb::psql {
namespace {

TEST(ParserTest, MinimalSelect) {
  SelectStatement stmt = Parse("SELECT * FROM car");
  EXPECT_TRUE(stmt.select_list.empty());
  EXPECT_EQ(stmt.table, "car");
  EXPECT_EQ(stmt.where, nullptr);
  EXPECT_TRUE(stmt.preferring.empty());
}

TEST(ParserTest, SelectListAndLimit) {
  SelectStatement stmt = Parse("SELECT make, price FROM car LIMIT 5;");
  EXPECT_EQ(stmt.select_list, (std::vector<std::string>{"make", "price"}));
  EXPECT_EQ(stmt.limit, 5u);
}

TEST(ParserTest, WhereConditionTree) {
  SelectStatement stmt =
      Parse("SELECT * FROM car WHERE make = 'Opel' AND (price < 10000 OR "
            "NOT mileage >= 100000)");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->kind, Condition::Kind::kAnd);
  EXPECT_EQ(stmt.where->ToString(),
            "(make = 'Opel' AND (price < 10000 OR NOT mileage >= 100000))");
}

TEST(ParserTest, WhereInAndNotIn) {
  SelectStatement stmt =
      Parse("SELECT * FROM car WHERE color IN ('red','blue') AND make NOT IN "
            "('Fiat')");
  EXPECT_EQ(stmt.where->children[0]->kind, Condition::Kind::kInList);
  EXPECT_FALSE(stmt.where->children[0]->negated);
  EXPECT_TRUE(stmt.where->children[1]->negated);
}

TEST(ParserTest, PreferringParetoAndAtoms) {
  SelectStatement stmt =
      Parse("SELECT * FROM car PREFERRING price AROUND 40000 AND "
            "HIGHEST(power)");
  ASSERT_EQ(stmt.preferring.size(), 1u);
  EXPECT_EQ(stmt.preferring[0]->kind, PrefExpr::Kind::kPareto);
}

TEST(ParserTest, PriorToIsRightNested) {
  SelectStatement stmt = Parse(
      "SELECT * FROM car PREFERRING color = 'red' PRIOR TO LOWEST(price) "
      "PRIOR TO LOWEST(mileage)");
  const PrefExpr& top = *stmt.preferring[0];
  EXPECT_EQ(top.kind, PrefExpr::Kind::kPrior);
  EXPECT_EQ(top.children[1]->kind, PrefExpr::Kind::kPrior);
}

TEST(ParserTest, BetweenConsumesInnerAnd) {
  SelectStatement stmt = Parse(
      "SELECT * FROM car PREFERRING price BETWEEN 10000 AND 20000 AND "
      "LOWEST(mileage)");
  const PrefExpr& top = *stmt.preferring[0];
  ASSERT_EQ(top.kind, PrefExpr::Kind::kPareto);
  EXPECT_EQ(top.children[0]->kind, PrefExpr::Kind::kBetween);
  EXPECT_EQ(top.children[0]->low, 10000.0);
  EXPECT_EQ(top.children[0]->high, 20000.0);
  EXPECT_EQ(top.children[1]->kind, PrefExpr::Kind::kLowest);
}

TEST(ParserTest, ElseChains) {
  SelectStatement stmt = Parse(
      "SELECT * FROM car PREFERRING category = 'roadster' ELSE category <> "
      "'passenger'");
  const PrefExpr& top = *stmt.preferring[0];
  ASSERT_EQ(top.kind, PrefExpr::Kind::kCondLayers);
  ASSERT_EQ(top.layers.size(), 2u);
  EXPECT_EQ(top.layers[0].op, CompareOp::kEq);
  EXPECT_EQ(top.layers[1].op, CompareOp::kNe);
}

TEST(ParserTest, CascadeChain) {
  SelectStatement stmt = Parse(
      "SELECT * FROM car PREFERRING HIGHEST(power) CASCADE color = 'red' "
      "CASCADE LOWEST(mileage)");
  EXPECT_EQ(stmt.preferring.size(), 3u);
}

TEST(ParserTest, PaperQueryOne) {
  // The §6.1 used-car query, with the date literal as a number (dates map
  // to ordinals in this engine).
  SelectStatement stmt = Parse(
      "SELECT * FROM car WHERE make = 'Opel' "
      "PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND "
      "price AROUND 40000 AND HIGHEST(power)) "
      "CASCADE color = 'red' CASCADE LOWEST(mileage);");
  EXPECT_EQ(stmt.table, "car");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.preferring.size(), 3u);
  EXPECT_EQ(stmt.preferring[0]->kind, PrefExpr::Kind::kPareto);
}

TEST(ParserTest, PaperQueryTwoButOnly) {
  SelectStatement stmt = Parse(
      "SELECT * FROM trips "
      "PREFERRING start_date AROUND 57 AND duration AROUND 14 "
      "BUT ONLY DISTANCE(start_date) <= 2 AND DISTANCE(duration) <= 2");
  ASSERT_NE(stmt.but_only, nullptr);
  EXPECT_EQ(stmt.but_only->kind, QualityCondition::Kind::kAnd);
  EXPECT_EQ(stmt.but_only->children[0]->kind,
            QualityCondition::Kind::kDistance);
  EXPECT_EQ(stmt.but_only->children[0]->threshold, 2.0);
}

TEST(ParserTest, ButOnlyLevel) {
  SelectStatement stmt =
      Parse("SELECT * FROM car PREFERRING color = 'red' "
            "BUT ONLY LEVEL(color) <= 1");
  EXPECT_EQ(stmt.but_only->kind, QualityCondition::Kind::kLevel);
}

TEST(ParserTest, ToStringRoundTripsThroughParser) {
  const char* sql =
      "SELECT make FROM car WHERE price < 30000 PREFERRING price AROUND "
      "20000 AND HIGHEST(power) CASCADE LOWEST(mileage) BUT ONLY "
      "DISTANCE(price) <= 5000 LIMIT 10";
  SelectStatement stmt = Parse(sql);
  SelectStatement again = Parse(stmt.ToString());
  EXPECT_EQ(stmt.ToString(), again.ToString());
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_THROW(Parse("SELECT"), SyntaxError);
  EXPECT_THROW(Parse("SELECT * car"), SyntaxError);
  EXPECT_THROW(Parse("SELECT * FROM car PREFERRING"), SyntaxError);
  EXPECT_THROW(Parse("SELECT * FROM car PREFERRING price AROUND"),
               SyntaxError);
  EXPECT_THROW(Parse("SELECT * FROM car BUT price"), SyntaxError);
  EXPECT_THROW(Parse("SELECT * FROM car trailing"), SyntaxError);
  EXPECT_THROW(Parse("SELECT * FROM car PREFERRING price BETWEEN 30 AND 10"),
               SyntaxError);
  EXPECT_THROW(Parse("SELECT * FROM car PREFERRING price < 10"), SyntaxError);
}

TEST(ParserTest, NegativeNumbersInPreferences) {
  SelectStatement stmt =
      Parse("SELECT * FROM t PREFERRING x AROUND -5");
  EXPECT_EQ(stmt.preferring[0]->low, -5.0);
}

// --- Translation ---

TEST(TranslatorTest, AtomsBecomePaperConstructors) {
  SelectStatement stmt = Parse(
      "SELECT * FROM car PREFERRING color = 'red' AND make IN ('A','B') AND "
      "color <> 'gray' AND price AROUND 1 AND LOWEST(mileage)");
  PrefPtr p = TranslatePreferenceChain(stmt.preferring);
  std::string term = p->ToString();
  EXPECT_NE(term.find("POS(color"), std::string::npos);
  EXPECT_NE(term.find("POS(make"), std::string::npos);
  EXPECT_NE(term.find("NEG(color"), std::string::npos);
  EXPECT_NE(term.find("AROUND(price, 1)"), std::string::npos);
  EXPECT_NE(term.find("LOWEST(mileage)"), std::string::npos);
}

TEST(TranslatorTest, CascadeBecomesPrioritization) {
  SelectStatement stmt = Parse(
      "SELECT * FROM car PREFERRING HIGHEST(power) CASCADE LOWEST(price)");
  PrefPtr p = TranslatePreferenceChain(stmt.preferring);
  EXPECT_EQ(p->kind(), PreferenceKind::kPrioritized);
}

TEST(TranslatorTest, ElseBecomesLayeredPreference) {
  SelectStatement stmt = Parse(
      "SELECT * FROM car PREFERRING category = 'roadster' ELSE category <> "
      "'passenger'");
  PrefPtr p = TranslatePreference(*stmt.preferring[0]);
  EXPECT_EQ(p->kind(), PreferenceKind::kLayered);
  // Semantics: roadster best, any non-passenger second, passenger last.
  Schema s({{"category", ValueType::kString}});
  auto less = p->Bind(s);
  EXPECT_TRUE(less(Tuple({Value("suv")}), Tuple({Value("roadster")})));
  EXPECT_TRUE(less(Tuple({Value("passenger")}), Tuple({Value("suv")})));
  EXPECT_FALSE(less(Tuple({Value("roadster")}), Tuple({Value("suv")})));
}

TEST(TranslatorTest, ElseAcrossAttributesRejected) {
  SelectStatement stmt = Parse(
      "SELECT * FROM car PREFERRING category = 'a' ELSE color = 'b'");
  EXPECT_THROW(TranslatePreference(*stmt.preferring[0]),
               std::invalid_argument);
}

TEST(TranslatorTest, EmptyChainGivesNull) {
  EXPECT_EQ(TranslatePreferenceChain({}), nullptr);
}

TEST(ParserTest, TopKParsesCountAndSelectList) {
  SelectStatement stmt = Parse(
      "SELECT TOP 5 make, price FROM car PREFERRING LOWEST(price)");
  EXPECT_TRUE(stmt.ranked);
  EXPECT_EQ(stmt.top_k, 5u);
  EXPECT_EQ(stmt.select_list,
            (std::vector<std::string>{"make", "price"}));
}

TEST(ParserTest, RankedKeywordRanksEverything) {
  SelectStatement stmt =
      Parse("SELECT RANKED * FROM car PREFERRING HIGHEST(power)");
  EXPECT_TRUE(stmt.ranked);
  EXPECT_EQ(stmt.top_k, 0u);
  EXPECT_TRUE(stmt.select_list.empty());
}

TEST(ParserTest, TopRequiresPreferring) {
  EXPECT_THROW(Parse("SELECT TOP 5 * FROM car"), SyntaxError);
}

TEST(ParserTest, TopWorksWithSkylineOf) {
  SelectStatement stmt =
      Parse("SELECT TOP 2 * FROM car SKYLINE OF price MIN, mileage MIN");
  EXPECT_TRUE(stmt.ranked);
  EXPECT_EQ(stmt.top_k, 2u);
  EXPECT_EQ(stmt.preferring.size(), 1u);
}

TEST(ParserTest, NegativeTopCountRejected) {
  EXPECT_THROW(Parse("SELECT TOP -1 * FROM car PREFERRING LOWEST(price)"),
               SyntaxError);
}

TEST(ParserTest, TopRoundTripsThroughToString) {
  SelectStatement stmt = Parse(
      "SELECT TOP 4 * FROM car PREFERRING LOWEST(price) GROUPING make");
  SelectStatement reparsed = Parse(stmt.ToString());
  EXPECT_TRUE(reparsed.ranked);
  EXPECT_EQ(reparsed.top_k, 4u);
  EXPECT_EQ(reparsed.grouping, stmt.grouping);
  EXPECT_EQ(reparsed.ToString(), stmt.ToString());
}

}  // namespace
}  // namespace prefdb::psql
