// Concurrent preference-query-server tests: wire-protocol codec
// round-trips, N-client concurrent correctness against a single-threaded
// reference engine, snapshot reads racing INSERT invalidation, admission
// control (bounded queue backpressure) and per-query timeouts,
// malformed/oversized-frame handling, session limits, and graceful
// shutdown draining in-flight queries. The suite is part of CI's TSan
// matrix job: every path here must be data-race-free.

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <iterator>
#include <mutex>
#include <thread>
#include <vector>

#include "datagen/cars.h"
#include "psql/error.h"
#include "server/client.h"
#include "server/protocol.h"

namespace prefdb::server {
namespace {

constexpr uint64_t kCarSeed = 7;
constexpr size_t kCarRows = 2000;
const char* kHost = "127.0.0.1";

// The served workload: the engine_test mix plus ranked retrieval.
const char* kMixQueries[] = {
    "SELECT * FROM car PREFERRING LOWEST(price)",
    "SELECT oid, price, mileage FROM car "
    "PREFERRING LOWEST(price) AND LOWEST(mileage) AND HIGHEST(horsepower)",
    "SELECT * FROM car WHERE price < 30000 "
    "PREFERRING (category = 'roadster' ELSE category <> 'passenger') "
    "AND price AROUND 20000 CASCADE LOWEST(mileage)",
    "SELECT * FROM car PREFERRING LOWEST(price) GROUPING category",
    "SELECT TOP 10 oid, price, mileage FROM car "
    "PREFERRING LOWEST(price) AND LOWEST(mileage)",
    "SELECT oid FROM car WHERE price < 42000 LIMIT 5",
};

/// One engine + running server per fixture; a second, never-served engine
/// computes the single-threaded reference results.
class ServedEngine {
 public:
  explicit ServedEngine(ServerOptions options = {}) {
    engine_.RegisterTable("car", GenerateCars(kCarRows, kCarSeed));
    reference_.RegisterTable("car", GenerateCars(kCarRows, kCarSeed));
    server_ = std::make_unique<Server>(&engine_, options);
    server_->Start();
  }

  Client Connect() {
    Client client;
    client.Connect(kHost, server_->port());
    return client;
  }

  /// The single-threaded reference execution, with the same options the
  /// server gives its sessions.
  psql::QueryResult Reference(const std::string& sql) {
    return reference_.Execute(sql, ServerOptions::DefaultSessionBmo());
  }

  Engine engine_;
  Engine reference_;
  std::unique_ptr<Server> server_;
};

// --- codec ---------------------------------------------------------------

TEST(ProtocolTest, ValueEncodingRoundTripsEveryType) {
  Tuple row{Value(), Value(int64_t{-42}), Value(3.5),
            Value("with space"), Value(std::string("line\nbreak, 'q'")),
            Value(std::nan("")), Value(1e300), Value(std::string())};
  std::string encoded;
  EncodeRow(row, &encoded);
  size_t pos = 0;
  auto decoded = DecodeRow(encoded, &pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(pos, encoded.size());
  ASSERT_EQ(decoded->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_double() && std::isnan(row[i].as_double())) {
      EXPECT_TRUE(std::isnan((*decoded)[i].as_double()));
    } else {
      EXPECT_EQ((*decoded)[i], row[i]) << "column " << i;
    }
  }
}

TEST(ProtocolTest, ResultSerializationRoundTrips) {
  psql::QueryResult result;
  Schema schema({{"name", ValueType::kString}, {"price", ValueType::kInt}});
  Relation rel(schema);
  rel.Add({"an,odd\nname", 42});
  rel.Add({Value(), 7});
  result.relation = rel;
  result.utilities = {0.75, 0.25};
  result.stats.kernel = "bnl[avx2,tile=8192]";
  auto parsed = ParseResult(SerializeResult(result));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->relation == rel);
  EXPECT_EQ(parsed->utilities, result.utilities);
  EXPECT_EQ(parsed->kernel, result.stats.kernel);
}

TEST(ProtocolTest, MalformedResultPayloadsAreRejected) {
  EXPECT_FALSE(ParseResult("").has_value());
  EXPECT_FALSE(ParseResult("schema a:INT\n").has_value());
  EXPECT_FALSE(
      ParseResult("schema a:INT\nutilities \nkernel \nrows 2\nI1\n")
          .has_value());
  EXPECT_FALSE(
      ParseResult("schema a:INT\nutilities \nkernel \nrows 1\nI1 I2\n")
          .has_value());
  EXPECT_FALSE(
      ParseResult("schema a:BOGUS\nutilities \nkernel \nrows 0\n")
          .has_value());
}

// Regression (found by fuzz/fuzz_protocol.cc): a declared row count far
// beyond the remaining payload must be rejected before the tuple vector
// reserves for it — a 40-byte frame claiming 2^64-1 rows asked the
// allocator for petabytes.
TEST(ProtocolTest, HugeDeclaredRowCountIsRejectedWithoutAllocating) {
  EXPECT_FALSE(
      ParseResult(
          "schema \nutilities \nkernel k\nrows 18446744073709551615\n")
          .has_value());
  EXPECT_FALSE(
      ParseResult("schema a:INT\nutilities \nkernel k\nrows 1000\nI1\n")
          .has_value());
}

// Regression (found by fuzz/fuzz_protocol.cc): an 'S' value whose declared
// byte count wraps `colon + 1 + count` around size_t used to pass the
// bounds check and drag the parse position backwards — an infinite loop
// on a 17-byte frame.
TEST(ProtocolTest, StringLengthOverflowDoesNotWrapThePosition) {
  std::string payload = "S18446744073709551615:x\n";
  size_t pos = 0;
  EXPECT_FALSE(DecodeRow(payload, &pos).has_value());
  EXPECT_FALSE(
      ParseResult("schema s:STRING\nutilities \nkernel k\nrows 1\n" + payload)
          .has_value());
}

TEST(ProtocolTest, ErrorCodesRoundTripByName) {
  for (psql::ErrorCode code :
       {psql::ErrorCode::kSyntax, psql::ErrorCode::kNotFound,
        psql::ErrorCode::kOverloaded, psql::ErrorCode::kTimeout,
        psql::ErrorCode::kProtocol, psql::ErrorCode::kInternal}) {
    psql::QueryError error{code, "message\nwith detail"};
    psql::QueryError back = psql::DeserializeError(SerializeError(error));
    EXPECT_EQ(back.code, code);
    EXPECT_EQ(back.message, error.message);
  }
}

// --- basic serving -------------------------------------------------------

TEST(ServerTest, QueryMatchesSingleThreadedReference) {
  ServedEngine served;
  Client client = served.Connect();
  for (const char* sql : kMixQueries) {
    ClientResponse response = client.Query(sql);
    ASSERT_TRUE(response.ok) << sql << ": " << response.error.message;
    psql::QueryResult expected = served.Reference(sql);
    EXPECT_TRUE(response.relation == expected.relation) << sql;
    EXPECT_EQ(response.utilities, expected.utilities) << sql;
  }
  EXPECT_TRUE(client.Ping().ok);
  EXPECT_TRUE(client.Goodbye().ok);
}

TEST(ServerTest, PreparedHandlesRunTheStatement) {
  ServedEngine served;
  Client client = served.Connect();
  const char* sql = kMixQueries[1];
  ClientResponse prepared = client.Prepare(sql);
  ASSERT_TRUE(prepared.ok);
  ASSERT_GT(prepared.handle, 0u);
  psql::QueryResult expected = served.Reference(sql);
  for (int i = 0; i < 3; ++i) {
    ClientResponse run = client.Run(prepared.handle);
    ASSERT_TRUE(run.ok) << run.error.message;
    EXPECT_TRUE(run.relation == expected.relation);
  }
  ClientResponse bad = client.Run(999);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error.code, psql::ErrorCode::kNotFound);
}

TEST(ServerTest, SessionOptionsApplyAndValidate) {
  ServedEngine served;
  Client client = served.Connect();
  EXPECT_TRUE(client.Set("vectorize", "off").ok);
  EXPECT_TRUE(client.Set("algorithm", "bnl").ok);
  EXPECT_TRUE(client.Set("threads", "2").ok);
  ClientResponse response = client.Query(kMixQueries[0]);
  ASSERT_TRUE(response.ok);
  EXPECT_TRUE(response.relation ==
              served.Reference(kMixQueries[0]).relation);

  EXPECT_EQ(client.Set("algorithm", "quantum").error.code,
            psql::ErrorCode::kBadArgument);
  EXPECT_EQ(client.Set("no_such_option", "1").error.code,
            psql::ErrorCode::kBadArgument);
  EXPECT_EQ(client.RoundTrip(Frame{FrameType::kSet, "garbage"}).error.code,
            psql::ErrorCode::kBadArgument);
}

TEST(ServerTest, SyntaxErrorsCarryCaretContext) {
  ServedEngine served;
  Client client = served.Connect();
  ClientResponse response = client.Query("SELECT * car PREFERRING");
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, psql::ErrorCode::kSyntax);
  EXPECT_NE(response.error.message.find('^'), std::string::npos)
      << response.error.message;
  // The session survives a failed query.
  EXPECT_TRUE(client.Ping().ok);
  EXPECT_EQ(client.Query("SELECT * FROM no_such_table").error.code,
            psql::ErrorCode::kNotFound);
}

TEST(ServerTest, InsertAppendsARowVisibleToQueries) {
  ServedEngine served;
  Client client = served.Connect();
  ClientResponse before = client.Query("SELECT * FROM car");
  ASSERT_TRUE(before.ok);
  const Relation& car = *served.engine_.Snapshot("car");
  Tuple row = car.at(0);
  ASSERT_TRUE(client.Insert("car", row).ok);
  ClientResponse after = client.Query("SELECT * FROM car");
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.relation.size(), before.relation.size() + 1);
  EXPECT_EQ(client.Insert("no_such_table", row).error.code,
            psql::ErrorCode::kNotFound);
}

// --- concurrency ---------------------------------------------------------

TEST(ServerTest, SixtyFourConcurrentSessionsMatchReference) {
  constexpr size_t kSessions = 64;
  constexpr int kQueriesPerSession = 8;
  ServedEngine served;
  // Reference results, precomputed single-threaded.
  std::vector<psql::QueryResult> expected;
  for (const char* sql : kMixQueries) expected.push_back(served.Reference(sql));

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      Client client;
      client.Connect(kHost, served.server_->port());
      for (int q = 0; q < kQueriesPerSession; ++q) {
        size_t mix = (s + static_cast<size_t>(q)) % std::size(kMixQueries);
        ClientResponse response = client.Query(kMixQueries[mix]);
        if (!response.ok) {
          failures.fetch_add(1);
          continue;
        }
        if (!(response.relation == expected[mix].relation) ||
            response.utilities != expected[mix].utilities) {
          mismatches.fetch_add(1);
        }
      }
      client.Goodbye();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  ServerStats stats = served.server_->stats();
  EXPECT_EQ(stats.sessions_accepted, kSessions);
  EXPECT_EQ(stats.queries_ok, kSessions * kQueriesPerSession);
  // The shared caches were actually shared: far fewer misses than runs.
  Engine::CacheStats cache = served.engine_.cache_stats();
  EXPECT_GE(cache.plan_hits + cache.exec_hits, kSessions);
  EXPECT_GT(cache.lock_acquisitions, 0u);
}

TEST(ServerTest, SnapshotReadsRaceInsertInvalidation) {
  ServedEngine served;
  constexpr size_t kReaders = 8;
  constexpr int kReads = 20;
  constexpr int kInserts = 40;
  const Relation car = *served.engine_.Snapshot("car");

  std::atomic<bool> stop{false};
  std::atomic<int> bad_results{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Client client;
      client.Connect(kHost, served.server_->port());
      for (int q = 0; q < kReads; ++q) {
        ClientResponse response = client.Query(
            "SELECT * FROM car PREFERRING LOWEST(price) AND "
            "LOWEST(mileage)");
        // Any consistent snapshot yields a non-empty maxima set whose
        // rows all come from some version of the table; emptiness or an
        // error would mean a torn read.
        if (!response.ok || response.relation.empty()) bad_results.fetch_add(1);
      }
      client.Goodbye();
    });
  }
  std::thread writer([&] {
    Client client;
    client.Connect(kHost, served.server_->port());
    for (int i = 0; i < kInserts && !stop.load(); ++i) {
      if (!client.Insert("car", car.at(static_cast<size_t>(i))).ok) {
        bad_results.fetch_add(1);
      }
    }
    client.Goodbye();
  });
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(bad_results.load(), 0);

  // After the dust settles the served result equals a fresh single-thread
  // reference over the final table state.
  Engine settled;
  settled.RegisterTable("car", *served.engine_.Snapshot("car"));
  Client client = served.Connect();
  ClientResponse final_response = client.Query(
      "SELECT * FROM car PREFERRING LOWEST(price) AND LOWEST(mileage)");
  ASSERT_TRUE(final_response.ok);
  EXPECT_TRUE(final_response.relation ==
              settled
                  .Execute(
                      "SELECT * FROM car PREFERRING LOWEST(price) AND "
                      "LOWEST(mileage)",
                      ServerOptions::DefaultSessionBmo())
                  .relation);
}

// --- admission control + timeouts ---------------------------------------

TEST(ServerTest, FullQueueRejectsWithOverloaded) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.debug_execute_delay_ms = 100;
  ServedEngine served(options);

  constexpr size_t kClients = 8;
  std::atomic<int> ok{0}, overloaded{0}, other{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Client client;
      client.Connect(kHost, served.server_->port());
      ClientResponse response = client.Query(kMixQueries[0]);
      if (response.ok) {
        ok.fetch_add(1);
      } else if (response.error.code == psql::ErrorCode::kOverloaded) {
        overloaded.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
      client.Goodbye();
    });
  }
  for (auto& t : threads) t.join();
  // One running + one queued at a time against 8 concurrent 100ms
  // queries: the bounded queue must have pushed back on someone.
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(overloaded.load(), 0);
  EXPECT_EQ(other.load(), 0);
  ServerStats stats = served.server_->stats();
  EXPECT_EQ(stats.queries_rejected_overload,
            static_cast<uint64_t>(overloaded.load()));
  EXPECT_LE(stats.peak_queue_depth, options.queue_capacity);
}

TEST(ServerTest, PerQueryDeadlineAnswersTimeout) {
  ServerOptions options;
  options.num_workers = 1;
  options.debug_execute_delay_ms = 300;
  ServedEngine served(options);
  Client client = served.Connect();
  ASSERT_TRUE(client.Set("timeout_ms", "50").ok);
  ClientResponse response = client.Query(kMixQueries[0]);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, psql::ErrorCode::kTimeout);
  EXPECT_GE(served.server_->stats().queries_timeout, 1u);
  // The session is still usable afterwards (the late result is
  // discarded, not written to the socket).
  ASSERT_TRUE(client.Set("timeout_ms", "0").ok);
  EXPECT_TRUE(client.Query(kMixQueries[5]).ok);
}

// --- malformed input -----------------------------------------------------

TEST(ServerTest, UnknownFrameTypeAnswersProtocolError) {
  ServedEngine served;
  Client client = served.Connect();
  ClientResponse response =
      client.RoundTrip(Frame{static_cast<FrameType>('Z'), "???"});
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error.code, psql::ErrorCode::kProtocol);
  // Framing stayed in sync; the session keeps serving.
  EXPECT_TRUE(client.Ping().ok);
  EXPECT_GE(served.server_->stats().protocol_errors, 1u);
}

TEST(ServerTest, MalformedInsertPayloadAnswersProtocolError) {
  ServedEngine served;
  Client client = served.Connect();
  EXPECT_EQ(client.RoundTrip(Frame{FrameType::kInsert, "car"}).error.code,
            psql::ErrorCode::kProtocol);
  EXPECT_EQ(
      client.RoundTrip(Frame{FrameType::kInsert, "car\nI1 Zjunk\n"}).error.code,
      psql::ErrorCode::kProtocol);
  EXPECT_TRUE(client.Ping().ok);
}

TEST(ServerTest, OversizedFrameIsRejectedAndConnectionClosed) {
  ServerOptions options;
  options.max_frame_bytes = 256;
  ServedEngine served(options);
  Client client = served.Connect();
  std::string big(1024, 'x');
  client.SendRawBytes(EncodeFrame(Frame{FrameType::kQuery, big}));
  Frame reply = client.ReadResponse();
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(psql::DeserializeError(reply.payload).code,
            psql::ErrorCode::kOversized);
  // The server closed the stream (the payload cannot be skipped).
  EXPECT_THROW(client.ReadResponse(), std::runtime_error);
  // ...and other sessions are unaffected.
  Client fresh = served.Connect();
  EXPECT_TRUE(fresh.Ping().ok);
}

TEST(ServerTest, TruncatedHeaderJustDropsTheSession) {
  ServedEngine served;
  Client client = served.Connect();
  client.SendRawBytes("\x00\x00");  // half a header, then close
  client.Close();
  // The server must shrug it off and keep serving.
  Client fresh = served.Connect();
  EXPECT_TRUE(fresh.Ping().ok);
}

// --- limits + shutdown ---------------------------------------------------

TEST(ServerTest, SessionLimitTurnsAwayExtraConnections) {
  ServerOptions options;
  options.max_sessions = 2;
  ServedEngine served(options);
  Client a = served.Connect();
  Client b = served.Connect();
  ASSERT_TRUE(a.Ping().ok);
  ASSERT_TRUE(b.Ping().ok);
  // The rejection frame is written before any handshake, so connect as
  // v1 (no hello) and read the raw error frame.
  Client c;
  c.Connect(kHost, served.server_->port(), {.protocol_version = kProtocolV1});
  Frame reply = c.ReadResponse();
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(psql::DeserializeError(reply.payload).code,
            psql::ErrorCode::kOverloaded);
  EXPECT_GE(served.server_->stats().sessions_rejected, 1u);
  // Freeing a slot readmits.
  a.Goodbye();
  // The accept loop reaps finished sessions lazily; retry briefly.
  bool admitted = false;
  for (int attempt = 0; attempt < 50 && !admitted; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    try {
      Client d;
      d.Connect(kHost, served.server_->port());
      admitted = d.Ping().ok;
    } catch (const std::runtime_error&) {
    }
  }
  EXPECT_TRUE(admitted);
}

TEST(ServerTest, GracefulShutdownDrainsInFlightQueries) {
  ServerOptions options;
  options.debug_execute_delay_ms = 200;
  ServedEngine served(options);

  std::mutex mu;
  std::condition_variable cv;
  bool sent = false;
  ClientResponse response;
  std::thread in_flight([&] {
    Client client;
    client.Connect(kHost, served.server_->port());
    {
      std::lock_guard<std::mutex> lock(mu);
      sent = true;
    }
    cv.notify_one();
    response = client.Query(kMixQueries[0]);  // rides through the shutdown
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return sent; });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  served.server_->Stop();
  in_flight.join();

  ASSERT_TRUE(response.ok) << response.error.message;
  EXPECT_TRUE(response.relation ==
              served.Reference(kMixQueries[0]).relation);
  EXPECT_FALSE(served.server_->running());
  // The port is closed for new work.
  Client late;
  bool refused = false;
  try {
    late.Connect(kHost, served.server_->port());
    late.Ping();
  } catch (const std::runtime_error&) {
    refused = true;
  }
  EXPECT_TRUE(refused);
}

TEST(ServerTest, StopIsIdempotentAndRestartable) {
  Engine engine;
  engine.RegisterTable("car", GenerateCars(100, 1));
  Server server(&engine);
  server.Start();
  uint16_t first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.Stop();
  server.Stop();
  server.Start();
  Client client;
  client.Connect(kHost, server.port());
  EXPECT_TRUE(client.Query("SELECT * FROM car PREFERRING LOWEST(price)").ok);
  server.Stop();
}

}  // namespace
}  // namespace prefdb::server
