// Unit tests for the relational substrate: Schema, Tuple, Relation, CSV.

#include "relation/relation.h"

#include <gtest/gtest.h>

#include "relation/csv.h"

namespace prefdb {
namespace {

Schema CarSchema() {
  return Schema({{"make", ValueType::kString},
                 {"price", ValueType::kInt},
                 {"color", ValueType::kString}});
}

Relation SmallCars() {
  Relation rel(CarSchema());
  rel.Add({"Audi", 40000, "red"});
  rel.Add({"BMW", 35000, "blue"});
  rel.Add({"VW", 20000, "red"});
  rel.Add({"BMW", 50000, "red"});
  return rel;
}

TEST(SchemaTest, IndexOfFindsAttributes) {
  Schema s = CarSchema();
  EXPECT_EQ(*s.IndexOf("make"), 0u);
  EXPECT_EQ(*s.IndexOf("price"), 1u);
  EXPECT_FALSE(s.IndexOf("mileage").has_value());
  EXPECT_TRUE(s.Has("color"));
}

TEST(SchemaTest, AddRejectsDuplicatesSilently) {
  Schema s = CarSchema();
  size_t idx = s.Add({"make", ValueType::kString});
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(s.size(), 3u);
}

TEST(SchemaTest, ProjectPreservesRequestedOrder) {
  Schema s = CarSchema().Project({"color", "make"});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at(0).name, "color");
  EXPECT_EQ(s.at(1).name, "make");
}

TEST(SchemaTest, ToStringRendersTypes) {
  EXPECT_EQ(Schema({{"a", ValueType::kInt}}).ToString(), "(a:INT)");
}

TEST(TupleTest, ProjectionPicksIndices) {
  Tuple t({Value(1), Value("x"), Value(2.5)});
  Tuple p = t.Project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value(2.5));
  EXPECT_EQ(p[1], Value(1));
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a({Value(1), Value("x")});
  Tuple b({Value(1), Value("x")});
  Tuple c({Value(1), Value("y")});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT(Tuple({Value(1), Value(5)}), Tuple({Value(2), Value(0)}));
  EXPECT_LT(Tuple({Value(1)}), Tuple({Value(1), Value(0)}));
}

TEST(RelationTest, AddValidatesArity) {
  Relation rel(CarSchema());
  EXPECT_THROW(rel.Add({Value(1)}), std::invalid_argument);
}

TEST(RelationTest, ResolveColumnsThrowsOnUnknown) {
  EXPECT_THROW(SmallCars().ResolveColumns({"nope"}), std::out_of_range);
}

TEST(RelationTest, ProjectKeepsBagSemantics) {
  Relation p = SmallCars().Project({"color"});
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.schema().size(), 1u);
}

TEST(RelationTest, FilterSelectsMatchingRows) {
  Relation cheap = SmallCars().Filter(
      [](const Tuple& t) { return t[1] < Value(40000); });
  EXPECT_EQ(cheap.size(), 2u);
}

TEST(RelationTest, DistinctRemovesDuplicateRows) {
  Relation rel(CarSchema());
  rel.Add({"Audi", 1, "red"});
  rel.Add({"Audi", 1, "red"});
  rel.Add({"Audi", 2, "red"});
  EXPECT_EQ(rel.Distinct().size(), 2u);
}

TEST(RelationTest, DistinctProjectionsDeduplicates) {
  auto projs = SmallCars().DistinctProjections({"color"});
  EXPECT_EQ(projs.size(), 2u);  // red, blue
}

TEST(RelationTest, SortedIsDeterministic) {
  Relation sorted = SmallCars().Sorted({"price"});
  EXPECT_EQ(sorted.at(0)[1], Value(20000));
  EXPECT_EQ(sorted.at(3)[1], Value(50000));
}

TEST(RelationTest, GroupIndicesByGroupsEqualKeys) {
  Relation cars = SmallCars();
  auto groups = cars.GroupIndicesBy({*cars.schema().IndexOf("make")});
  EXPECT_EQ(groups.size(), 3u);  // Audi, BMW, VW
  EXPECT_EQ(groups[Tuple({Value("BMW")})].size(), 2u);
}

TEST(RelationTest, SelectRowsPicksByIndex) {
  Relation sel = SmallCars().SelectRows({0, 2});
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel.at(1)[0], Value("VW"));
}

TEST(RelationTest, IndexSetOperations) {
  std::vector<size_t> a = {1, 3, 5, 7};
  std::vector<size_t> b = {3, 4, 5};
  EXPECT_EQ(Relation::IndexIntersect(a, b), (std::vector<size_t>{3, 5}));
  EXPECT_EQ(Relation::IndexUnion(a, b),
            (std::vector<size_t>{1, 3, 4, 5, 7}));
}

TEST(RelationTest, SameRowsIgnoresOrder) {
  Relation a = SmallCars();
  Relation b(CarSchema());
  b.Add({"BMW", 50000, "red"});
  b.Add({"VW", 20000, "red"});
  b.Add({"Audi", 40000, "red"});
  b.Add({"BMW", 35000, "blue"});
  EXPECT_TRUE(a.SameRows(b));
  b.Add({"VW", 20000, "red"});
  EXPECT_FALSE(a.SameRows(b));
}

TEST(RelationTest, ToStringRendersTable) {
  std::string s = SmallCars().ToString();
  EXPECT_NE(s.find("make"), std::string::npos);
  EXPECT_NE(s.find("'Audi'"), std::string::npos);
}

TEST(CsvTest, RoundTrip) {
  Relation cars = SmallCars();
  std::string csv = WriteCsv(cars);
  Relation back = ReadCsv(csv, cars.schema());
  EXPECT_TRUE(cars.SameRows(back));
}

TEST(CsvTest, QuotedFieldsWithCommas) {
  Schema s({{"name", ValueType::kString}, {"n", ValueType::kInt}});
  Relation rel = ReadCsv("name,n\n\"a,b\",3\n", s);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.at(0)[0], Value("a,b"));
}

TEST(CsvTest, EscapedQuotes) {
  Schema s({{"name", ValueType::kString}});
  Relation rel = ReadCsv("name\n\"say \"\"hi\"\"\"\n", s);
  EXPECT_EQ(rel.at(0)[0], Value("say \"hi\""));
}

TEST(CsvTest, HeaderMismatchThrows) {
  Schema s({{"a", ValueType::kInt}});
  EXPECT_THROW(ReadCsv("b\n1\n", s), std::invalid_argument);
}

TEST(CsvTest, BadNumericCellThrows) {
  Schema s({{"a", ValueType::kInt}});
  EXPECT_THROW(ReadCsv("a\nxyz\n", s), std::invalid_argument);
}

TEST(CsvTest, EmptyFieldBecomesNull) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  Relation rel = ReadCsv("a,b\n,\n", s);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.at(0)[0].is_null());
  EXPECT_TRUE(rel.at(0)[1].is_null());
}

}  // namespace
}  // namespace prefdb
