// Tests for the workload generators.

#include "datagen/cars.h"
#include "datagen/vectors.h"

#include <cmath>
#include <gtest/gtest.h>

#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "eval/bmo.h"

namespace prefdb {
namespace {

TEST(VectorGenTest, ShapeAndDeterminism) {
  Relation a = GenerateVectors(100, 3, Correlation::kIndependent, 42);
  Relation b = GenerateVectors(100, 3, Correlation::kIndependent, 42);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.schema().size(), 3u);
  EXPECT_TRUE(a == b);
  Relation c = GenerateVectors(100, 3, Correlation::kIndependent, 43);
  EXPECT_FALSE(a == c);
}

TEST(VectorGenTest, ValuesInUnitRange) {
  for (Correlation corr : {Correlation::kIndependent, Correlation::kCorrelated,
                           Correlation::kAntiCorrelated}) {
    Relation r = GenerateVectors(200, 4, corr, 7);
    for (const Tuple& t : r.tuples()) {
      for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(*t[i].numeric(), 0.0) << CorrelationName(corr);
        EXPECT_LE(*t[i].numeric(), 1.0) << CorrelationName(corr);
      }
    }
  }
}

TEST(VectorGenTest, AntiCorrelatedHasLargerSkylineThanCorrelated) {
  // The hallmark of the [BKS01] workloads.
  PrefPtr skyline = Pareto({Highest("d0"), Highest("d1"), Highest("d2")});
  Relation anti = GenerateVectors(800, 3, Correlation::kAntiCorrelated, 11);
  Relation corr = GenerateVectors(800, 3, Correlation::kCorrelated, 11);
  EXPECT_GT(ResultSize(anti, skyline), ResultSize(corr, skyline));
}

TEST(CarGenTest, SchemaAndDeterminism) {
  Relation a = GenerateCars(50, 5);
  Relation b = GenerateCars(50, 5);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_TRUE(a.schema().Has("price"));
  EXPECT_TRUE(a.schema().Has("mileage"));
  EXPECT_TRUE(a.schema().Has("commission"));
}

TEST(CarGenTest, RealisticValueRanges) {
  Relation cars = GenerateCars(300, 9);
  for (const Tuple& t : cars.tuples()) {
    int64_t price = t[*cars.schema().IndexOf("price")].as_int();
    int64_t year = t[*cars.schema().IndexOf("year")].as_int();
    int64_t hp = t[*cars.schema().IndexOf("horsepower")].as_int();
    int64_t rating = t[*cars.schema().IndexOf("insurance_rating")].as_int();
    EXPECT_GE(price, 500);
    EXPECT_GE(year, 1992);
    EXPECT_LE(year, 2001);
    EXPECT_GE(hp, 75);
    EXPECT_GE(rating, 1);
    EXPECT_LE(rating, 10);
  }
}

TEST(CarGenTest, PriceCorrelatesWithHorsepower) {
  Relation cars = GenerateCars(2000, 13);
  size_t price_col = *cars.schema().IndexOf("price");
  size_t hp_col = *cars.schema().IndexOf("horsepower");
  double sum_p = 0, sum_h = 0;
  for (const Tuple& t : cars.tuples()) {
    sum_p += *t[price_col].numeric();
    sum_h += *t[hp_col].numeric();
  }
  double mean_p = sum_p / cars.size(), mean_h = sum_h / cars.size();
  double cov = 0, var_p = 0, var_h = 0;
  for (const Tuple& t : cars.tuples()) {
    double dp = *t[price_col].numeric() - mean_p;
    double dh = *t[hp_col].numeric() - mean_h;
    cov += dp * dh;
    var_p += dp * dp;
    var_h += dh * dh;
  }
  double corr = cov / std::sqrt(var_p * var_h);
  EXPECT_GT(corr, 0.5);
}

TEST(TripGenTest, SchemaAndRanges) {
  Relation trips = GenerateTrips(100, 3);
  EXPECT_EQ(trips.size(), 100u);
  for (const Tuple& t : trips.tuples()) {
    int64_t duration = t[*trips.schema().IndexOf("duration")].as_int();
    EXPECT_GE(duration, 3);
    EXPECT_LE(duration, 21);
    int64_t start = t[*trips.schema().IndexOf("start_date")].as_int();
    EXPECT_GE(start, 0);
    EXPECT_LE(start, 120);
  }
}

}  // namespace
}  // namespace prefdb
