// Tests for the remaining extensions: the POS/NEG-GRAPHS super-constructor
// (§3.4 remark), date ordinals, and the SKYLINE OF / date-literal additions
// to Preference SQL.

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "core/hierarchy.h"
#include "datagen/cars.h"
#include "engine/engine.h"
#include "eval/bmo.h"
#include "psql/executor.h"
#include "relation/date.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::StringRelation;

/// Runs one statement through a stateful Engine (the stateless
/// psql::ExecuteQuery wrapper was removed).
psql::QueryResult RunSql(const std::string& sql,
                         const psql::Catalog& catalog) {
  Engine engine(catalog);
  return engine.Execute(sql);
}

// --- POS/NEG-GRAPHS ---

Relation ColorDomain() {
  return StringRelation("c", {"a", "b", "m", "n", "x", "y"});
}

TEST(GraphsPreferenceTest, ClassOrderingHolds) {
  // pos graph: b < a; neg graph: y < x (x better); m, n unmentioned.
  PrefPtr p = PosNegGraphs("c", {{Value("b"), Value("a")}}, {},
                           {{Value("y"), Value("x")}}, {});
  Schema s({{"c", ValueType::kString}});
  auto less = p->Bind(s);
  auto lt = [&](const char* u, const char* v) {
    return less(Tuple({Value(u)}), Tuple({Value(v)}));
  };
  EXPECT_TRUE(lt("b", "a"));   // within pos graph
  EXPECT_TRUE(lt("y", "x"));   // within neg graph
  EXPECT_TRUE(lt("m", "a"));   // other < pos
  EXPECT_TRUE(lt("m", "b"));   // other < pos (even the pos graph's minimum)
  EXPECT_TRUE(lt("x", "m"));   // neg < other
  EXPECT_TRUE(lt("y", "a"));   // neg < pos (transitive)
  EXPECT_FALSE(lt("m", "n"));  // others unranked
  EXPECT_FALSE(lt("a", "b"));
}

TEST(GraphsPreferenceTest, IsolatedNodesUnrankedWithinClass) {
  PrefPtr p = PosNegGraphs("c", {{Value("b"), Value("a")}}, {Value("m")},
                           {}, {});
  Schema s({{"c", ValueType::kString}});
  auto less = p->Bind(s);
  // m joined the pos class but has no edges: unranked vs a and b.
  EXPECT_FALSE(less(Tuple({Value("m")}), Tuple({Value("a")})));
  EXPECT_FALSE(less(Tuple({Value("a")}), Tuple({Value("m")})));
  // but m still beats unmentioned values.
  EXPECT_TRUE(less(Tuple({Value("n")}), Tuple({Value("m")})));
}

TEST(GraphsPreferenceTest, RejectsOverlappingClasses) {
  EXPECT_THROW(
      PosNegGraphs("c", {}, {Value("a")}, {}, {Value("a")}),
      std::invalid_argument);
}

TEST(GraphsPreferenceTest, IsStrictPartialOrder) {
  PrefPtr p = PosNegGraphs("c", {{Value("b"), Value("a")}}, {Value("m")},
                           {{Value("y"), Value("x")}}, {Value("n")});
  Relation dom = ColorDomain();
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

TEST(GraphsPreferenceTest, PosNegIsSubConstructor) {
  // POS/NEG == GRAPHS with edgeless graphs (witness conversion).
  PosNegPreference pn("c", {Value("a"), Value("b")}, {Value("x")});
  auto res = CheckEquivalent(PosNeg("c", {"a", "b"}, {"x"}),
                             PosNegAsGraphs(pn), ColorDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
  EXPECT_TRUE(IsSubConstructorOf(PreferenceKind::kPosNeg,
                                 PreferenceKind::kPosNegGraphs));
}

TEST(GraphsPreferenceTest, ExplicitIsSubConstructor) {
  ExplicitPreference e("c", {{Value("b"), Value("a")},
                             {Value("m"), Value("b")}});
  auto res = CheckEquivalent(
      Explicit("c", {{Value("b"), Value("a")}, {Value("m"), Value("b")}}),
      ExplicitAsGraphs(e), ColorDomain());
  EXPECT_TRUE(res.equivalent) << res.counterexample;
  EXPECT_TRUE(IsSubConstructorOf(PreferenceKind::kExplicit,
                                 PreferenceKind::kPosNegGraphs));
  // And transitively POS ≼ GRAPHS.
  EXPECT_TRUE(IsSubConstructorOf(PreferenceKind::kPos,
                                 PreferenceKind::kPosNegGraphs));
}

// --- Date ordinals ---

TEST(DateTest, KnownOrdinals) {
  EXPECT_EQ(*ParseDateOrdinal("1970/01/01"), 0);
  EXPECT_EQ(*ParseDateOrdinal("1970/01/02"), 1);
  EXPECT_EQ(*ParseDateOrdinal("1969/12/31"), -1);
  EXPECT_EQ(*ParseDateOrdinal("2001/11/23"), 11649);
  EXPECT_EQ(*ParseDateOrdinal("2001-11-23"), 11649);
}

TEST(DateTest, RoundTrip) {
  for (const char* text : {"1970/01/01", "2001/11/23", "1999/02/28",
                           "2000/02/29", "1944/06/06"}) {
    auto days = ParseDateOrdinal(text);
    ASSERT_TRUE(days.has_value()) << text;
    EXPECT_EQ(FormatDateOrdinal(*days), text);
  }
}

TEST(DateTest, RejectsGarbageAndInvalidDates) {
  EXPECT_FALSE(ParseDateOrdinal("hello").has_value());
  EXPECT_FALSE(ParseDateOrdinal("2001/13/01").has_value());
  EXPECT_FALSE(ParseDateOrdinal("2001/02/30").has_value());
  EXPECT_FALSE(ParseDateOrdinal("2001/11/23x").has_value());
  EXPECT_FALSE(ParseDateOrdinal("2001/11-23").has_value());
  EXPECT_FALSE(ParseDateOrdinal("1900/02/29").has_value());  // not a leap year
}

// --- Preference SQL extensions ---

TEST(PsqlExtensionTest, SkylineOfClause) {
  psql::Catalog catalog;
  catalog.Register("car", GenerateCars(300, 12));
  auto skyline = RunSql(
      "SELECT * FROM car SKYLINE OF price MIN, mileage MIN", catalog);
  auto preferring = RunSql(
      "SELECT * FROM car PREFERRING LOWEST(price) AND LOWEST(mileage)",
      catalog);
  EXPECT_TRUE(skyline.relation.SameRows(preferring.relation));
}

TEST(PsqlExtensionTest, SkylineOfMinMaxMixed) {
  psql::Catalog catalog;
  catalog.Register("car", GenerateCars(300, 13));
  auto res = RunSql(
      "SELECT * FROM car SKYLINE OF price MIN, horsepower MAX, mileage MIN",
      catalog);
  EXPECT_GE(res.relation.size(), 1u);
  EXPECT_NE(res.preference_term.find("HIGHEST(horsepower)"),
            std::string::npos);
}

TEST(PsqlExtensionTest, SkylineOfSyntaxErrors) {
  psql::Catalog catalog;
  catalog.Register("car", GenerateCars(10, 14));
  EXPECT_THROW(
      RunSql("SELECT * FROM car SKYLINE price MIN", catalog),
      psql::SyntaxError);
  EXPECT_THROW(
      RunSql("SELECT * FROM car SKYLINE OF price", catalog),
      psql::SyntaxError);
}

TEST(PsqlExtensionTest, DateLiteralInAround) {
  // The paper's trips query with its original date literal: start_date is
  // stored as a day ordinal.
  Schema s({{"destination", ValueType::kString},
            {"start_date", ValueType::kInt}});
  Relation trips(s);
  trips.Add({"Crete", *ParseDateOrdinal("2001/11/21")});
  trips.Add({"Rome", *ParseDateOrdinal("2001/11/25")});
  trips.Add({"Oslo", *ParseDateOrdinal("2001/07/01")});
  psql::Catalog catalog;
  catalog.Register("trips", trips);
  auto res = RunSql(
      "SELECT * FROM trips PREFERRING start_date AROUND '2001/11/23'",
      catalog);
  // Crete and Rome are both 2 days away; Oslo is far off.
  EXPECT_EQ(res.relation.size(), 2u);
}

TEST(PsqlExtensionTest, DateLiteralInBetween) {
  Schema s({{"start_date", ValueType::kInt}});
  Relation trips(s);
  trips.Add({*ParseDateOrdinal("2001/11/10")});
  trips.Add({*ParseDateOrdinal("2001/12/24")});
  psql::Catalog catalog;
  catalog.Register("trips", trips);
  auto res = RunSql(
      "SELECT * FROM trips PREFERRING start_date BETWEEN '2001/11/01' AND "
      "'2001/11/30'",
      catalog);
  ASSERT_EQ(res.relation.size(), 1u);
  EXPECT_EQ(res.relation.at(0)[0], Value(*ParseDateOrdinal("2001/11/10")));
}

TEST(PsqlExtensionTest, NonDateStringWhereNumberExpectedThrows) {
  psql::Catalog catalog;
  catalog.Register("t", Relation(Schema{{"x", ValueType::kInt}}));
  EXPECT_THROW(
      RunSql("SELECT * FROM t PREFERRING x AROUND 'soon'",
                         catalog),
      psql::SyntaxError);
}

TEST(PsqlExtensionTest, ExplainReportsOptimizerPlan) {
  psql::Catalog catalog;
  catalog.Register("car", GenerateCars(2000, 15));
  auto res = RunSql(
      "EXPLAIN SELECT * FROM car PREFERRING LOWEST(price) AND "
      "LOWEST(mileage)",
      catalog);
  EXPECT_NE(res.plan_details.find("algorithm:"), std::string::npos);
  EXPECT_NE(res.plan_details.find("preference:"), std::string::npos);
  // EXPLAIN still executes: the result is the normal BMO answer.
  auto plain = RunSql(
      "SELECT * FROM car PREFERRING LOWEST(price) AND LOWEST(mileage)",
      catalog);
  EXPECT_TRUE(res.relation.SameRows(plain.relation));
}

TEST(PsqlExtensionTest, ExplainShowsRewrites) {
  psql::Catalog catalog;
  catalog.Register("car", GenerateCars(1000, 16));
  // LOWEST(price) AND HIGHEST(price) is P (x) P^d == A<-> (Prop 3n).
  auto res = RunSql(
      "EXPLAIN SELECT * FROM car PREFERRING LOWEST(price) AND "
      "HIGHEST(price)",
      catalog);
  EXPECT_NE(res.plan_details.find("Prop"), std::string::npos);
  EXPECT_EQ(res.relation.size(), 1000u);  // anti-chain keeps everything
}

TEST(PsqlExtensionTest, GroupingClauseMatchesDef16) {
  Schema s({{"make", ValueType::kString}, {"price", ValueType::kInt}});
  Relation cars(s);
  cars.Add({"Audi", 40000});
  cars.Add({"Audi", 30000});
  cars.Add({"BMW", 50000});
  cars.Add({"BMW", 45000});
  psql::Catalog catalog;
  catalog.Register("car", cars);
  auto grouped = RunSql(
      "SELECT * FROM car PREFERRING LOWEST(price) GROUPING make", catalog);
  Relation expected(s);
  expected.Add({"Audi", 30000});
  expected.Add({"BMW", 45000});
  EXPECT_TRUE(grouped.relation.SameRows(expected))
      << grouped.relation.ToString();
  // Equals sigma[A<-> & P](R) evaluated through the core API (Def. 16).
  Relation core = Bmo(cars, Prioritized(AntiChain("make"), Lowest("price")));
  EXPECT_TRUE(grouped.relation.SameRows(core));
}

TEST(PsqlExtensionTest, GroupingRequiresPreferring) {
  psql::Catalog catalog;
  catalog.Register("car", GenerateCars(10, 17));
  EXPECT_THROW(
      RunSql("SELECT * FROM car GROUPING make", catalog),
      psql::SyntaxError);
}

TEST(PsqlExtensionTest, GroupingMultipleAttributes) {
  psql::Catalog catalog;
  catalog.Register("car", GenerateCars(400, 18));
  auto res = RunSql(
      "SELECT * FROM car PREFERRING LOWEST(price) GROUPING make, category",
      catalog);
  // One cheapest offer (possibly tied) per (make, category) group.
  Relation core = BmoGroupBy(catalog.Get("car"), Lowest("price"),
                             {"make", "category"});
  EXPECT_TRUE(res.relation.SameRows(core));
}

}  // namespace
}  // namespace prefdb
