// Tests for the cost-based physical planner (eval/physical_plan.h):
// golden plan choices across statistics regimes (correlation, distinct
// counts, injectivity), randomized "chosen plan == reference answer"
// equality, and the pass-through/override semantics every execution
// layer relies on.

#include "eval/physical_plan.h"

#include <gtest/gtest.h>

#include <random>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/cars.h"
#include "datagen/random_terms.h"
#include "datagen/vectors.h"
#include "eval/bmo.h"
#include "eval/optimizer.h"
#include "exec/score_table.h"

namespace prefdb {
namespace {

PrefPtr SkylinePref(size_t d) {
  std::vector<PrefPtr> prefs;
  for (size_t i = 0; i < d; ++i) {
    prefs.push_back(Highest("d" + std::to_string(i)));
  }
  return Pareto(prefs);
}

const simd::KernelOps* BatchKernels() {
  return simd::ResolveKernel(SimdMode::kAuto);
}

// Plans a workload through the measured path (compile + sampled window
// probe), exactly what BmoIndices and the engine's exec builder do.
PhysicalPlan PlanMeasured(const Relation& r, const PrefPtr& p,
                          const BmoOptions& options = {}) {
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  auto table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                   proj.values.size());
  EXPECT_TRUE(table.has_value());
  PlanScope scope;
  scope.allow_decomposition = false;
  return PlanPhysical(MeasureTermStats(*table, p, r.size()), options, scope);
}

TEST(PlannerGoldenTest, AntiCorrelatedWideWindowPicksSfs) {
  // PR 4 measured winner on the gated anti-correlated d4 family: the
  // presorted one-sided SFS scan (1.46ms) beats the BNL window (4.05ms)
  // once the window is wide. The sampled probe is what reveals the wide
  // window; batch kernels must be available for the constants to apply.
  if (BatchKernels() == nullptr) GTEST_SKIP() << "batch kernels disabled";
  Relation r = GenerateVectors(8192, 4, Correlation::kAntiCorrelated, 42);
  PhysicalPlan plan = PlanMeasured(r, SkylinePref(4));
  EXPECT_EQ(plan.algorithm, BmoAlgorithm::kSortFilter);
  EXPECT_TRUE(plan.stats.measured_window);
}

TEST(PlannerGoldenTest, IndependentNarrowWindowPicksBnl) {
  // PR 4 measured winner on the independent d4 family: tiled SIMD BNL
  // (0.22ms) over SFS (whose presort alone costs ~1ms) and D&C (1.88ms).
  if (BatchKernels() == nullptr) GTEST_SKIP() << "batch kernels disabled";
  Relation r = GenerateVectors(8192, 4, Correlation::kIndependent, 42);
  PhysicalPlan plan = PlanMeasured(r, SkylinePref(4));
  EXPECT_EQ(plan.algorithm, BmoAlgorithm::kBlockNestedLoop);
}

TEST(PlannerGoldenTest, CorrelatedDataPicksBnl) {
  // Correlated data has near-singleton windows: nothing amortizes a sort.
  Relation r = GenerateVectors(8192, 4, Correlation::kCorrelated, 42);
  PhysicalPlan plan = PlanMeasured(r, SkylinePref(4));
  EXPECT_EQ(plan.algorithm, BmoAlgorithm::kBlockNestedLoop);
}

TEST(PlannerGoldenTest, RowwiseKernelsKeepDivideConquer) {
  // With SimdMode::kOff the pair loops are ~4x dearer and the KLP75
  // recursion wins on injective skylines — the PR 4 finding preserved.
  Relation r = GenerateVectors(8192, 3, Correlation::kIndependent, 7);
  BmoOptions rowwise;
  rowwise.simd = SimdMode::kOff;
  PhysicalPlan plan = PlanMeasured(r, SkylinePref(3), rowwise);
  EXPECT_EQ(plan.algorithm, BmoAlgorithm::kDivideConquer);
}

TEST(PlannerGoldenTest, NonInjectiveColumnsDisqualifyDc) {
  // AROUND over a discrete domain ties distinct values in score (|x-10|
  // collapses 5 and 15), so coordinatewise dominance is not the
  // preference order: D&C must be ineligible whatever it costs.
  Schema s({{"d0", ValueType::kInt}, {"d1", ValueType::kInt}});
  Relation r(s);
  std::mt19937_64 rng(9);
  for (int i = 0; i < 8192; ++i) {
    r.Add({Value(int64_t(rng() % 21)), Value(int64_t(rng() % 1000))});
  }
  PrefPtr p = Pareto(Around("d0", 10), Highest("d1"));
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  auto table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                   proj.values.size());
  ASSERT_TRUE(table.has_value());
  TermStats stats = MeasureTermStats(*table, p, r.size());
  EXPECT_FALSE(stats.dc_exact);
  PhysicalPlan plan = PlanPhysical(stats, BmoOptions{});
  for (const AlgorithmCost& cost : plan.considered) {
    if (cost.algorithm == BmoAlgorithm::kDivideConquer) {
      EXPECT_FALSE(cost.eligible);
    }
  }
  EXPECT_NE(plan.algorithm, BmoAlgorithm::kDivideConquer);
}

TEST(PlannerGoldenTest, LowDistinctCountsShrinkTheEstimate) {
  // Level terms over low-cardinality columns have tiny distinct-value
  // blocks; the estimate must reflect m, not the row count, and the plan
  // must stay a cheap window scan.
  Relation cars = GenerateCars(20000, 3);
  TableStats table_stats = TableStats::Derive(cars);
  TermStats stats = EstimateTermStats(
      table_stats, cars.schema(),
      Pareto(Pos("color", {"red"}), Pos("make", {"Audi"})), 20000);
  EXPECT_LT(stats.distinct_values, 2000u);
  PhysicalPlan plan = PlanPhysical(stats, BmoOptions{});
  EXPECT_EQ(plan.algorithm, BmoAlgorithm::kBlockNestedLoop);
  EXPECT_LT(plan.estimated_ns, 1e6);
}

TEST(PlannerGoldenTest, ParallelNeedsWorkersAndVolume) {
  TermStats stats;
  stats.input_rows = 200000;
  stats.distinct_values = 200000;
  stats.dims = 2;
  stats.compilable = true;
  stats.dc_exact = true;
  stats.est_window = 12.0;
  BmoOptions options;
  options.num_threads = 8;
  PhysicalPlan plan = PlanPhysical(stats, options);
  EXPECT_EQ(plan.algorithm, BmoAlgorithm::kParallel);
  EXPECT_GE(plan.partitions, 2u);
  // One worker: never parallel.
  options.num_threads = 1;
  EXPECT_NE(PlanPhysical(stats, options).algorithm, BmoAlgorithm::kParallel);
  // Below the threshold: never parallel (the explicit opt-out knob).
  options.num_threads = 8;
  options.parallel_threshold = 1000000;
  EXPECT_NE(PlanPhysical(stats, options).algorithm, BmoAlgorithm::kParallel);
}

TEST(PlannerGoldenTest, ScopeMasksRelationLevelStrategies) {
  TermStats stats;
  stats.input_rows = 100000;
  stats.distinct_values = 100000;
  stats.dims = 3;
  stats.chain_head = true;
  stats.head_distinct = 4;
  stats.est_window = 500.0;
  BmoOptions options;
  options.num_threads = 8;
  PlanScope block_scope;
  block_scope.allow_parallel = false;
  block_scope.allow_decomposition = false;
  PhysicalPlan plan = PlanPhysical(stats, options, block_scope);
  EXPECT_NE(plan.algorithm, BmoAlgorithm::kParallel);
  EXPECT_NE(plan.algorithm, BmoAlgorithm::kDecomposition);
  for (const AlgorithmCost& cost : plan.considered) {
    if (cost.algorithm == BmoAlgorithm::kParallel ||
        cost.algorithm == BmoAlgorithm::kDecomposition) {
      EXPECT_FALSE(cost.eligible);
    }
  }
}

TEST(PlannerGoldenTest, ExplainCostsListsEveryConsideredAlgorithm) {
  Relation r = GenerateVectors(8192, 3, Correlation::kIndependent, 3);
  PhysicalPlan plan = PlanMeasured(r, SkylinePref(3));
  std::string text = plan.ExplainCosts();
  EXPECT_NE(text.find("stats:"), std::string::npos);
  EXPECT_NE(text.find("bnl:"), std::string::npos);
  EXPECT_NE(text.find("sfs:"), std::string::npos);
  EXPECT_NE(text.find("dc:"), std::string::npos);
  EXPECT_NE(text.find("parallel:"), std::string::npos);
  EXPECT_NE(text.find("<- chosen"), std::string::npos);
}

TEST(PlannerGoldenTest, FromOptionsIsPassThrough) {
  BmoOptions options;
  options.algorithm = BmoAlgorithm::kSortFilter;
  options.vectorize = false;
  options.simd = SimdMode::kScalar;
  options.bnl_tile_rows = 77;
  options.num_threads = 3;
  PhysicalPlan plan = PhysicalPlan::FromOptions(options);
  EXPECT_EQ(plan.algorithm, BmoAlgorithm::kSortFilter);
  EXPECT_FALSE(plan.vectorize);
  EXPECT_EQ(plan.simd, SimdMode::kScalar);
  EXPECT_EQ(plan.bnl_tile_rows, 77u);
  EXPECT_EQ(plan.num_threads, 3u);
  EXPECT_TRUE(plan.considered.empty());
}

// The planner's choice must never change answers: whatever the cost
// model picks across regimes equals the naive reference.
class PlannerEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerEquivalenceTest, ChosenPlanEqualsReferenceAnswer) {
  const uint64_t seed = GetParam();
  RandomTermGen gx("price", {Value(1000), Value(2000), Value(4000)}, seed);
  RandomTermGen gy("mileage", {Value(10), Value(20), Value(40)}, seed + 9);
  Relation cars = GenerateCars(600, seed);
  for (int round = 0; round < 6; ++round) {
    PrefPtr p;
    switch (round % 3) {
      case 0: p = Pareto(gx.Term(1), gy.Term(1)); break;
      case 1: p = Prioritized(gx.Term(1), Pareto(gy.Term(1), gx.Term(1))); break;
      default: p = Dual(Pareto(gx.Term(1), gy.Term(1)));
    }
    std::vector<size_t> reference =
        BmoIndices(cars, p, {BmoAlgorithm::kNaive});
    // kAuto routes through PlanBlock -> PlanPhysical -> kernels.
    EXPECT_EQ(BmoIndices(cars, p, {}), reference) << p->ToString();
    // And the full optimizer pipeline (rewrites + plan) agrees too.
    EXPECT_TRUE(
        BmoOptimized(cars, p).SameRows(cars.SelectRows(reference)))
        << p->ToString();
  }
  // Correlation regimes over vector data, larger blocks.
  for (Correlation corr :
       {Correlation::kIndependent, Correlation::kAntiCorrelated,
        Correlation::kCorrelated}) {
    Relation r = GenerateVectors(5000, 3, corr, seed);
    PrefPtr p = SkylinePref(3);
    EXPECT_EQ(BmoIndices(r, p, {}),
              BmoIndices(r, p, {BmoAlgorithm::kBlockNestedLoop}))
        << CorrelationName(corr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerEquivalenceTest,
                         ::testing::Values(3, 17, 29));

}  // namespace
}  // namespace prefdb
