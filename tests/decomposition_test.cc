// Verification of the decomposition theorems (Props 8-12) as *set
// equalities over query results*, on randomized relations — the paper's
// §5.2-5.4, including the YY compromise set of Def. 17.

#include "eval/decomposition.h"

#include <gtest/gtest.h>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "eval/bmo.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::RandomPreferenceGen;

Relation RandomXY(uint64_t seed, size_t n = 60) {
  std::mt19937_64 rng(seed);
  Relation r(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  for (size_t i = 0; i < n; ++i) {
    r.Add({Value(static_cast<int>(rng() % 9) - 4),
           Value(static_cast<int>(rng() % 9) - 4)});
  }
  return r;
}

class DecompositionPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DecompositionPropertyTest, Prop8DisjointUnionIsIntersection) {
  // sigma[P1+P2](R) = sigma[P1](R) ∩ sigma[P2](R) for range-disjoint
  // pieces.
  Relation r = RandomXY(GetParam());
  RandomPreferenceGen gen("x", {Value(-4), Value(-2), Value(0), Value(2)},
                          GetParam());
  PrefPtr u1 = Subset(gen.Term(1), {Tuple({Value(-4)}), Tuple({Value(-2)})});
  PrefPtr u2 = Subset(gen.Term(1), {Tuple({Value(0)}), Tuple({Value(2)})});
  PrefPtr u = DisjointUnion(u1, u2);
  std::vector<size_t> direct = BmoIndices(r, u, {BmoAlgorithm::kNaive});
  std::vector<size_t> decomposed = Relation::IndexIntersect(
      BmoIndices(r, u1, {BmoAlgorithm::kNaive}),
      BmoIndices(r, u2, {BmoAlgorithm::kNaive}));
  EXPECT_EQ(direct, decomposed) << u->ToString();
}

TEST_P(DecompositionPropertyTest, Prop9IntersectionIsUnionPlusYY) {
  Relation r = RandomXY(GetParam() + 5);
  RandomPreferenceGen gen("x", {Value(-4), Value(-2), Value(0), Value(2)},
                          GetParam() + 5);
  PrefPtr p1 = gen.Term(1);
  PrefPtr p2 = gen.Term(1);
  PrefPtr isect = Intersection(p1, p2);
  std::vector<size_t> direct = BmoIndices(r, isect, {BmoAlgorithm::kNaive});
  std::vector<size_t> decomposed = Relation::IndexUnion(
      Relation::IndexUnion(BmoIndices(r, p1, {BmoAlgorithm::kNaive}),
                           BmoIndices(r, p2, {BmoAlgorithm::kNaive})),
      YYIndices(r, p1, p2));
  EXPECT_EQ(direct, decomposed)
      << "P1=" << p1->ToString() << " P2=" << p2->ToString();
}

TEST_P(DecompositionPropertyTest, Prop10PrioritizedViaGrouping) {
  // sigma[P1 & P2](R) = sigma[P1](R) ∩ sigma[P2 groupby A1](R).
  Relation r = RandomXY(GetParam() + 11);
  RandomPreferenceGen gx("x", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 11);
  RandomPreferenceGen gy("y", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 12);
  PrefPtr p1 = gx.Term(1);
  PrefPtr p2 = gy.Term(1);
  std::vector<size_t> direct =
      BmoIndices(r, Prioritized(p1, p2), {BmoAlgorithm::kNaive});
  std::vector<size_t> decomposed = Relation::IndexIntersect(
      BmoIndices(r, p1, {BmoAlgorithm::kNaive}),
      BmoGroupByIndices(r, p2, p1->attributes(), {BmoAlgorithm::kNaive}));
  EXPECT_EQ(direct, decomposed)
      << "P1=" << p1->ToString() << " P2=" << p2->ToString();
}

TEST_P(DecompositionPropertyTest, Prop11ChainCascade) {
  // sigma[P1 & P2](R) = sigma[P2](sigma[P1](R)) when P1 is a chain.
  Relation r = RandomXY(GetParam() + 21);
  RandomPreferenceGen gy("y", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 21);
  for (const PrefPtr& p1 : {Lowest("x"), Highest("x")}) {
    PrefPtr p2 = gy.Term(1);
    std::vector<size_t> direct =
        BmoIndices(r, Prioritized(p1, p2), {BmoAlgorithm::kNaive});
    std::vector<size_t> first = BmoIndices(r, p1, {BmoAlgorithm::kNaive});
    Relation sub = r.SelectRows(first);
    std::vector<size_t> inner = BmoIndices(sub, p2, {BmoAlgorithm::kNaive});
    std::vector<size_t> cascade;
    for (size_t i : inner) cascade.push_back(first[i]);
    std::sort(cascade.begin(), cascade.end());
    EXPECT_EQ(direct, cascade) << "P2=" << p2->ToString();
  }
}

TEST_P(DecompositionPropertyTest, Prop12ParetoDecomposition) {
  // sigma[P1 (x) P2](R) = sigma[P1&P2] ∪ sigma[P2&P1] ∪ YY(P1&P2, P2&P1).
  Relation r = RandomXY(GetParam() + 31);
  RandomPreferenceGen gx("x", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 31);
  RandomPreferenceGen gy("y", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 32);
  PrefPtr p1 = gx.Term(1);
  PrefPtr p2 = gy.Term(1);
  PrefPtr pr12 = Prioritized(p1, p2);
  PrefPtr pr21 = Prioritized(p2, p1);
  std::vector<size_t> direct =
      BmoIndices(r, Pareto(p1, p2), {BmoAlgorithm::kNaive});
  std::vector<size_t> decomposed = Relation::IndexUnion(
      Relation::IndexUnion(BmoIndices(r, pr12, {BmoAlgorithm::kNaive}),
                           BmoIndices(r, pr21, {BmoAlgorithm::kNaive})),
      YYIndices(r, pr12, pr21));
  EXPECT_EQ(direct, decomposed)
      << "P1=" << p1->ToString() << " P2=" << p2->ToString();
}

TEST_P(DecompositionPropertyTest, DecompositionEvaluatorMatchesNaive) {
  Relation r = RandomXY(GetParam() + 41);
  RandomPreferenceGen gx("x", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 41);
  RandomPreferenceGen gy("y", {Value(-4), Value(-2), Value(0), Value(2)},
                         GetParam() + 42);
  for (int round = 0; round < 6; ++round) {
    PrefPtr p1 = gx.Term(1);
    PrefPtr p2 = gy.Term(1);
    for (const PrefPtr& p :
         {Pareto(p1, p2), Prioritized(p1, p2),
          Prioritized(Pareto(p1, p2), gx.Term(1))}) {
      EXPECT_EQ(BmoDecompositionIndices(r, p),
                BmoIndices(r, p, {BmoAlgorithm::kNaive}))
          << p->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionPropertyTest,
                         ::testing::Values(1, 3, 7, 15, 31, 63));

// --- Targeted cases ---

TEST(YYTest, EmptyWhenEverythingHasCommonDominators) {
  Relation r = ::prefdb::testing::IntRelation("x", {1, 2, 3});
  // P1 = P2 = LOWEST: every non-maximum has a common dominator.
  EXPECT_TRUE(YYIndices(r, Lowest("x"), Lowest("x")).empty());
}

TEST(YYTest, CapturesCompromiseCandidates) {
  // Example 11's {6}.
  Relation r = ::prefdb::testing::IntRelation("x", {3, 6, 9});
  PrefPtr pr12 = Prioritized(Lowest("x"), Highest("x"));
  PrefPtr pr21 = Prioritized(Highest("x"), Lowest("x"));
  std::vector<size_t> yy = YYIndices(r, pr12, pr21);
  ASSERT_EQ(yy.size(), 1u);
  EXPECT_EQ(r.at(yy[0])[0], Value(6));
}

TEST(NonMaximalTest, ComplementOfBmo) {
  Relation r = ::prefdb::testing::IntRelation("x", {5, 1, 3, 1});
  std::vector<size_t> nonmax = NonMaximalIndices(r, Lowest("x"));
  EXPECT_EQ(nonmax, (std::vector<size_t>{0, 2}));
}

TEST(DecompositionTest, ScoredBaseSinglePass) {
  Relation r = ::prefdb::testing::IntRelation("x", {4, 2, 9, 2});
  EXPECT_EQ(BmoDecompositionIndices(r, Lowest("x")),
            (std::vector<size_t>{1, 3}));
  EXPECT_EQ(BmoDecompositionIndices(r, Highest("x")),
            (std::vector<size_t>{2}));
  EXPECT_EQ(BmoDecompositionIndices(r, Around("x", 3)),
            (std::vector<size_t>{0, 1, 3}));  // distance 1 each
}

TEST(DecompositionTest, SharedAttributePrioritizedUsesProp4a) {
  Relation r = ::prefdb::testing::IntRelation("x", {1, 2, 3});
  PrefPtr p = Prioritized(Lowest("x"), Highest("x"));
  EXPECT_EQ(BmoDecompositionIndices(r, p),
            BmoIndices(r, Lowest("x"), {BmoAlgorithm::kNaive}));
}

TEST(DecompositionTest, PartialOverlapFallsBackCorrectly) {
  Relation r(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  r.Add({1, 1});
  r.Add({2, 0});
  r.Add({0, 2});
  PrefPtr p = Prioritized(Pareto(Lowest("x"), Lowest("y")), Highest("x"));
  EXPECT_EQ(BmoDecompositionIndices(r, p),
            BmoIndices(r, p, {BmoAlgorithm::kNaive}));
}

}  // namespace
}  // namespace prefdb
