// Tests for preference-term serialization (repo/serializer.h): round
// trips for every declarative constructor, error paths for opaque ones.

#include "repo/serializer.h"

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/random_terms.h"

namespace prefdb {
namespace {

void ExpectRoundTrip(const PrefPtr& p) {
  std::string text = SerializePreference(p);
  PrefPtr back = ParsePreferenceTerm(text);
  EXPECT_TRUE(p->StructurallyEquals(*back))
      << "original: " << p->ToString() << "\nserialized: " << text
      << "\nparsed: " << back->ToString();
  // And serialization is canonical: a second trip yields identical text.
  EXPECT_EQ(text, SerializePreference(back));
}

TEST(SerializerTest, BaseConstructorsRoundTrip) {
  ExpectRoundTrip(Pos("color", {"yellow", "green"}));
  ExpectRoundTrip(Neg("color", {"gray"}));
  ExpectRoundTrip(PosNeg("color", {"blue"}, {"gray", "red"}));
  ExpectRoundTrip(PosPos("category", {"cabriolet"}, {"roadster"}));
  ExpectRoundTrip(Around("price", 40000));
  ExpectRoundTrip(Between("price", 10000, 20000));
  ExpectRoundTrip(Lowest("price"));
  ExpectRoundTrip(Highest("power"));
}

TEST(SerializerTest, ValueTypesRoundTrip) {
  ExpectRoundTrip(Pos("x", {Value(42), Value(-7)}));
  ExpectRoundTrip(Pos("x", {Value(2.5), Value(-0.125)}));
  ExpectRoundTrip(Pos("x", {Value("it's"), Value("")}));
  ExpectRoundTrip(Pos("x", {Value()}));  // NULL
}

TEST(SerializerTest, ExplicitRoundTrip) {
  ExpectRoundTrip(Explicit("color", {{Value("green"), Value("yellow")},
                                     {Value("green"), Value("red")},
                                     {Value("yellow"), Value("white")}}));
  ExpectRoundTrip(Explicit("c", {}));
}

TEST(SerializerTest, PosNegGraphsRoundTrip) {
  ExpectRoundTrip(PosNegGraphs(
      "c", {{Value("b"), Value("a")}}, {Value("solo")},
      {{Value("z"), Value("y")}}, {Value("w")}));
  ExpectRoundTrip(PosNegGraphs("c", {}, {Value("a")}, {}, {Value("z")}));
}

TEST(SerializerTest, LayeredRoundTrip) {
  ExpectRoundTrip(Layered(
      "c", {LayeredPreference::Layer{{Value("gold")}, false},
            LayeredPreference::Others(),
            LayeredPreference::Layer{{Value("mud"), Value("tar")}, false}}));
}

TEST(SerializerTest, ComplexTermsRoundTrip) {
  PrefPtr term = Prioritized(
      Neg("color", {"gray"}),
      Pareto(Pareto(PosPos("category", {"cabriolet"}, {"roadster"}),
                    Around("horsepower", 100)),
             Dual(Lowest("price"))));
  ExpectRoundTrip(term);
}

TEST(SerializerTest, AntiChainAndAggregationsRoundTrip) {
  ExpectRoundTrip(AntiChain(std::vector<std::string>{"a", "b"}));
  ExpectRoundTrip(Intersection(Pos("c", {"x"}), Neg("c", {"y"})));
  ExpectRoundTrip(DisjointUnion(Pos("c", {"x"}), Neg("c", {"y"})));
}

TEST(SerializerTest, ParsedTermIsSemanticallySameToo) {
  PrefPtr p = Prioritized(Pos("c", {"a"}), Lowest("n"));
  PrefPtr back = ParsePreferenceTerm(SerializePreference(p));
  Relation dom(Schema{{"c", ValueType::kString}, {"n", ValueType::kInt}});
  for (const char* c : {"a", "b"}) {
    for (int n : {1, 2}) dom.Add({Value(c), Value(n)});
  }
  auto res = CheckEquivalent(p, back, dom);
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

TEST(SerializerTest, RandomTermsRoundTrip) {
  RandomTermGen gen("x", {Value(-2), Value(0), Value(1), Value(3)}, 99);
  for (int i = 0; i < 40; ++i) {
    PrefPtr p = gen.Term(3);
    if (!IsSerializable(p)) continue;
    ExpectRoundTrip(p);
  }
}

TEST(SerializerTest, OpaquePreferencesRejected) {
  PrefPtr score = Score("x", [](const Value&) { return 0.0; }, "f");
  EXPECT_FALSE(IsSerializable(score));
  EXPECT_THROW(SerializePreference(score), std::invalid_argument);
  PrefPtr rank = RankWeightedSum({1.0}, {Highest("x")});
  EXPECT_FALSE(IsSerializable(rank));
  EXPECT_THROW(SerializePreference(rank), std::invalid_argument);
  PrefPtr sub = Subset(Lowest("x"), {Tuple({Value(1)})});
  EXPECT_FALSE(IsSerializable(sub));
  // Nested opaque nodes are detected too.
  EXPECT_FALSE(IsSerializable(Pareto(Lowest("x"), score)));
}

TEST(SerializerTest, ParserErrorPaths) {
  EXPECT_THROW(ParsePreferenceTerm(""), std::invalid_argument);
  EXPECT_THROW(ParsePreferenceTerm("WAT(x)"), std::invalid_argument);
  EXPECT_THROW(ParsePreferenceTerm("POS(c, {'a'"), std::invalid_argument);
  EXPECT_THROW(ParsePreferenceTerm("POS(c, {'a'}) junk"),
               std::invalid_argument);
  EXPECT_THROW(ParsePreferenceTerm("BETWEEN(x, 5, 1)"),
               std::invalid_argument);  // constructor validation fires
  EXPECT_THROW(ParsePreferenceTerm("PARETO(LOWEST(x))"),
               std::invalid_argument);
}

TEST(SerializerTest, AcceptsPaperStyleNames) {
  PrefPtr p = ParsePreferenceTerm("POS/NEG(c, {'a'}, {'z'})");
  EXPECT_EQ(p->kind(), PreferenceKind::kPosNeg);
  PrefPtr q = ParsePreferenceTerm("POS/POS(c, {'a'}, {'m'})");
  EXPECT_EQ(q->kind(), PreferenceKind::kPosPos);
}

}  // namespace
}  // namespace prefdb
