// Unit tests for the numerical base preference constructors (Def. 7).

#include "core/numeric_preferences.h"

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::IntRelation;

const Schema kIntSchema({{"x", ValueType::kInt}});

bool Less(const PrefPtr& p, Value a, Value b) {
  return p->Bind(kIntSchema)(Tuple({a}), Tuple({b}));
}

// --- AROUND (Def. 7a) ---

TEST(AroundTest, CloserIsBetter) {
  PrefPtr p = Around("x", 100);
  EXPECT_TRUE(Less(p, 50, 90));
  EXPECT_TRUE(Less(p, 200, 120));
  EXPECT_FALSE(Less(p, 100, 90));
}

TEST(AroundTest, ExactTargetIsMaximal) {
  PrefPtr p = Around("x", 100);
  EXPECT_TRUE(Less(p, 99, 100));
  EXPECT_FALSE(Less(p, 100, 99));
}

TEST(AroundTest, EqualDistanceUnranked) {
  // The paper calls this out explicitly: distance ties are unranked.
  PrefPtr p = Around("x", 0);
  EXPECT_FALSE(Less(p, -5, 5));
  EXPECT_FALSE(Less(p, 5, -5));
}

TEST(AroundTest, DistanceFunction) {
  AroundPreference p("x", 40000);
  EXPECT_EQ(p.Distance(Value(35000)), 5000);
  EXPECT_EQ(p.Distance(Value(40000)), 0);
  EXPECT_TRUE(std::isinf(p.Distance(Value("n/a"))));
}

TEST(AroundTest, NonNumericIsWorstAndMutuallyUnranked) {
  PrefPtr p = Around("x", 0);
  EXPECT_TRUE(Less(p, Value("a"), Value(1000000)));
  EXPECT_FALSE(Less(p, Value("a"), Value("b")));
}

TEST(AroundTest, IsStrictPartialOrder) {
  Relation dom = IntRelation("x", {-10, -5, 0, 3, 5, 7, 10, 100});
  EXPECT_EQ(CheckStrictPartialOrder(Around("x", 3), dom.schema(),
                                    dom.tuples()),
            "");
}

// --- BETWEEN (Def. 7b) ---

TEST(BetweenTest, InsideIntervalIsMaximalAndTied) {
  PrefPtr p = Between("x", 10, 20);
  EXPECT_FALSE(Less(p, 12, 18));
  EXPECT_FALSE(Less(p, 18, 12));
  EXPECT_TRUE(Less(p, 25, 15));
}

TEST(BetweenTest, DistanceToNearestBound) {
  BetweenPreference p("x", 10, 20);
  EXPECT_EQ(p.Distance(Value(7)), 3);
  EXPECT_EQ(p.Distance(Value(26)), 6);
  EXPECT_EQ(p.Distance(Value(15)), 0);
}

TEST(BetweenTest, SymmetricDistancesUnranked) {
  PrefPtr p = Between("x", 10, 20);
  EXPECT_FALSE(Less(p, 7, 23));  // both distance 3
  EXPECT_FALSE(Less(p, 23, 7));
}

TEST(BetweenTest, RejectsInvertedBounds) {
  EXPECT_THROW(Between("x", 20, 10), std::invalid_argument);
}

TEST(BetweenTest, DegenerateIntervalBehavesLikeAround) {
  // AROUND ≼ BETWEEN with low = up (§3.4).
  Relation dom = IntRelation("x", {-4, -1, 0, 1, 2, 5, 9});
  auto eq = CheckEquivalent(Around("x", 1), Between("x", 1, 1), dom);
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

// --- LOWEST / HIGHEST (Def. 7c) ---

TEST(LowestTest, LowerIsBetter) {
  PrefPtr p = Lowest("x");
  EXPECT_TRUE(Less(p, 10, 5));
  EXPECT_FALSE(Less(p, 5, 10));
}

TEST(HighestTest, HigherIsBetter) {
  PrefPtr p = Highest("x");
  EXPECT_TRUE(Less(p, 5, 10));
  EXPECT_FALSE(Less(p, 10, 5));
}

TEST(LowestHighestTest, AreChains) {
  EXPECT_TRUE(Lowest("x")->IsChain());
  EXPECT_TRUE(Highest("x")->IsChain());
  Relation dom = IntRelation("x", {1, 2, 3, 7, 9});
  EXPECT_TRUE(IsChainOn(Lowest("x"), dom.schema(), dom.tuples()));
  EXPECT_TRUE(IsChainOn(Highest("x"), dom.schema(), dom.tuples()));
}

TEST(LowestHighestTest, AroundIsNotAChain) {
  EXPECT_FALSE(Around("x", 0)->IsChain());
  Relation dom = IntRelation("x", {-5, 5});
  EXPECT_FALSE(IsChainOn(Around("x", 0), dom.schema(), dom.tuples()));
}

// --- SCORE (Def. 7d) ---

TEST(ScoreTest, OrderInducedByFunction) {
  PrefPtr p = Score(
      "x", [](const Value& v) { return -*v.numeric(); }, "neg");
  EXPECT_TRUE(Less(p, 10, 5));  // behaves like LOWEST
}

TEST(ScoreTest, NonInjectiveScoreLeavesTies) {
  // f(x) = |x| is not one-to-one; P need not be a chain (paper remark).
  PrefPtr p = Score(
      "x", [](const Value& v) { return std::abs(*v.numeric()); }, "abs");
  EXPECT_FALSE(Less(p, -3, 3));
  EXPECT_TRUE(Less(p, 2, -3));
}

TEST(ScoreTest, RequiresFunction) {
  EXPECT_THROW(Score("x", nullptr, "none"), std::invalid_argument);
}

TEST(ScoreTest, IsStrictPartialOrder) {
  PrefPtr p = Score(
      "x", [](const Value& v) { return std::fmod(*v.numeric(), 3.0); },
      "mod3");
  Relation dom = IntRelation("x", {0, 1, 2, 3, 4, 5, 6});
  EXPECT_EQ(CheckStrictPartialOrder(p, dom.schema(), dom.tuples()), "");
}

// --- Sort keys (BindSortKeys contract) ---

TEST(SortKeysTest, LessImpliesStrictKeyIncrease) {
  for (const PrefPtr& p :
       {Around("x", 3), Between("x", 0, 4), Lowest("x"), Highest("x")}) {
    auto keys = p->BindSortKeys(kIntSchema);
    ASSERT_TRUE(keys.has_value()) << p->ToString();
    ASSERT_EQ(keys->size(), 1u);
    auto less = p->Bind(kIntSchema);
    Relation dom = IntRelation("x", {-7, -2, 0, 1, 3, 8});
    for (const Tuple& a : dom.tuples()) {
      for (const Tuple& b : dom.tuples()) {
        if (less(a, b)) {
          EXPECT_LT((*keys)[0](a), (*keys)[0](b)) << p->ToString();
        }
      }
    }
  }
}

TEST(ToStringTest, NumericRenderings) {
  EXPECT_EQ(Around("hp", 100)->ToString(), "AROUND(hp, 100)");
  EXPECT_EQ(Between("p", 10, 20)->ToString(), "BETWEEN(p, [10, 20])");
  EXPECT_EQ(Lowest("price")->ToString(), "LOWEST(price)");
  EXPECT_EQ(Highest("power")->ToString(), "HIGHEST(power)");
}

}  // namespace
}  // namespace prefdb
