// Incremental view maintenance tests: the maintained-maxima antichain
// (src/ivm/maintained_view.h) must be indistinguishable from a full BMO
// recompute after every mutation — across Pareto / prioritized / layered
// terms, NULL/NaN values, interleaved inserts and deletes, and both the
// compiled-kernel and closure evaluation paths. Engine-level coverage:
// Subscribe/delta delivery, DELETE FROM routing, exec-cache refresh by
// delta, and the slow-subscriber coalesced resync.

#include <algorithm>
#include <cmath>
#include <chrono>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "engine/engine.h"
#include "eval/bmo.h"
#include "ivm/maintained_view.h"
#include "psql/error.h"
#include "relation/relation.h"

namespace prefdb {
namespace {

using std::chrono::milliseconds;

Schema CarSchema() {
  return Schema({{"make", ValueType::kString},
                 {"price", ValueType::kInt},
                 {"mileage", ValueType::kInt},
                 {"score", ValueType::kDouble}});
}

/// Random row; ~6% NULL and ~6% NaN in the double column so maintenance
/// is exercised on non-total orders.
Tuple RandomCar(std::mt19937* rng) {
  static const char* kMakes[] = {"Opel", "BMW", "Audi", "Ford"};
  Value score;
  switch ((*rng)() % 16) {
    case 0: break;  // NULL
    case 1: score = Value(std::nan("")); break;
    default: score = Value(static_cast<double>((*rng)() % 100) / 7.0); break;
  }
  return Tuple{Value(kMakes[(*rng)() % 4]),
               Value(static_cast<int64_t>((*rng)() % 50)),
               Value(static_cast<int64_t>((*rng)() % 50)), score};
}

std::vector<PrefPtr> TestTerms() {
  return {
      Pareto(Lowest("price"), Lowest("mileage")),
      Prioritized(Lowest("price"), Highest("mileage")),
      Layered("make",
              {LayeredPreference::Layer{{Value("Opel")}, false},
               LayeredPreference::Layer{{Value("BMW"), Value("Audi")}, false},
               LayeredPreference::Others()}),
      Pareto(Highest("score"), Lowest("price")),  // NULL/NaN-bearing column
      Prioritized(Layered("make", {LayeredPreference::Layer{{Value("BMW")},
                                                            false},
                                   LayeredPreference::Others()}),
                  Pareto(Lowest("price"), Around("score", 5.0))),
  };
}

/// Sorted row renderings — multiset equality that is NaN-safe (Value's
/// operator== is IEEE on doubles; the text rendering is not).
std::vector<std::string> RowSet(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(t.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> RowSet(const Relation& rel) {
  return RowSet(rel.tuples());
}

/// The reference: full recompute of the maintained fragment.
std::vector<std::string> Recompute(const Relation& table, const PrefPtr& term,
                                   const BmoOptions& options) {
  return RowSet(table.SelectRows(BmoIndices(table, term, options)));
}

TEST(MaintainedViewTest, MatchesRecomputeUnderRandomMutations) {
  for (bool vectorize : {true, false}) {
    BmoOptions options;
    options.vectorize = vectorize;
    size_t term_id = 0;
    for (const PrefPtr& term : TestTerms()) {
      std::mt19937 rng(1234 + 100 * term_id++ + (vectorize ? 1 : 0));
      Relation table(CarSchema());
      for (int i = 0; i < 40; ++i) table.Add(RandomCar(&rng));
      ivm::MaintainedView view(term, nullptr, table, 1, options);
      EXPECT_EQ(RowSet(view.MaximaRows()), Recompute(table, term, options));

      uint64_t version = 1;
      for (int step = 0; step < 120; ++step) {
        ++version;
        if (table.size() == 0 || rng() % 3 != 0) {
          Tuple row = RandomCar(&rng);
          Relation next = table;
          next.Add(row);
          view.ApplyInsert(row, table.size(), version);
          table = std::move(next);
        } else {
          // Delete a random subset (occasionally large, to force the
          // reseed path).
          size_t want = rng() % 4 == 0 ? table.size() / 2 : 1 + rng() % 3;
          std::vector<size_t> dead;
          for (size_t i = 0; i < table.size() && dead.size() < want; ++i) {
            if (rng() % table.size() < want) dead.push_back(i);
          }
          if (dead.empty()) dead.push_back(rng() % table.size());
          std::vector<size_t> survivors;
          for (size_t i = 0; i < table.size(); ++i) {
            if (!std::binary_search(dead.begin(), dead.end(), i)) {
              survivors.push_back(i);
            }
          }
          view.ApplyDelete(dead, version);
          table = table.SelectRows(survivors);
        }
        ASSERT_EQ(RowSet(view.MaximaRows()), Recompute(table, term, options))
            << "term " << term->ToString() << " vectorize=" << vectorize
            << " step " << step;
        ASSERT_EQ(view.version(), version);
      }
    }
  }
}

TEST(MaintainedViewTest, DeltasReplayToTheMaintainedState) {
  BmoOptions options;
  PrefPtr term = Pareto(Lowest("price"), Highest("score"));
  std::mt19937 rng(99);
  Relation table(CarSchema());
  for (int i = 0; i < 30; ++i) table.Add(RandomCar(&rng));
  ivm::MaintainedView view(term, nullptr, table, 1, options);

  // A client that only sees deltas must converge to the view's state.
  std::vector<std::string> mirror = RowSet(view.Resync().enters);
  uint64_t version = 1;
  for (int step = 0; step < 80; ++step) {
    ++version;
    ivm::ViewDelta delta;
    if (table.size() == 0 || rng() % 3 != 0) {
      Tuple row = RandomCar(&rng);
      delta = view.ApplyInsert(row, table.size(), version);
      table.Add(row);
    } else {
      std::vector<size_t> dead = {rng() % table.size()};
      delta = view.ApplyDelete(dead, version);
      std::vector<size_t> survivors;
      for (size_t i = 0; i < table.size(); ++i) {
        if (i != dead[0]) survivors.push_back(i);
      }
      table = table.SelectRows(survivors);
    }
    ASSERT_FALSE(delta.resync);
    for (const Tuple& t : delta.exits) {
      auto it = std::find(mirror.begin(), mirror.end(), t.ToString());
      ASSERT_NE(it, mirror.end()) << "exit for a row the client never had";
      mirror.erase(it);
    }
    for (const Tuple& t : delta.enters) mirror.push_back(t.ToString());
    std::sort(mirror.begin(), mirror.end());
    ASSERT_EQ(mirror, RowSet(view.MaximaRows())) << "step " << step;
    if (!delta.Empty()) ASSERT_EQ(delta.version, version);
  }
  const ViewMaintenanceStats& ms = view.maintenance_stats();
  EXPECT_GT(ms.inserts, 0u);
  EXPECT_GT(ms.deletes, 0u);
}

TEST(MaintainedViewTest, WhereFilterRestrictsCandidates) {
  Relation table(CarSchema());
  table.Add({"Opel", 10, 5, 1.0});
  table.Add({"BMW", 1, 1, 2.0});  // best overall, but filtered out
  table.Add({"Opel", 20, 9, 0.5});
  auto where = [](const Tuple& t) { return t[0] == Value("Opel"); };
  ivm::MaintainedView view(Lowest("price"), where, table, 1);
  ASSERT_EQ(view.MaximaRows().size(), 1u);
  EXPECT_EQ(view.MaximaRows()[0][1], Value(static_cast<int64_t>(10)));
  // A non-matching insert is invisible; a matching better one takes over.
  EXPECT_TRUE(view.ApplyInsert(Tuple{Value("Audi"), Value(static_cast<int64_t>(2)),
                                     Value(static_cast<int64_t>(2)), Value(1.0)},
                               3, 2)
                  .Empty());
  ivm::ViewDelta delta =
      view.ApplyInsert(Tuple{Value("Opel"), Value(static_cast<int64_t>(3)),
                             Value(static_cast<int64_t>(2)), Value(1.0)},
                       4, 3);
  ASSERT_EQ(delta.enters.size(), 1u);
  ASSERT_EQ(delta.exits.size(), 1u);
}

// --- engine integration ----------------------------------------------------

Relation SmallCars() {
  Relation car(CarSchema());
  car.Add({"Opel", 38, 30, 1.0});
  car.Add({"Opel", 41, 60, 2.0});
  car.Add({"BMW", 39, 20, 3.0});
  car.Add({"BMW", 45, 80, 4.0});
  return car;
}

TEST(EngineSubscribeTest, BootstrapResyncThenIncrementalDeltas) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  Engine::Subscription sub = engine.Subscribe(
      "SELECT * FROM car PREFERRING LOWEST(price) AND LOWEST(mileage)");
  ASSERT_TRUE(sub.active());
  EXPECT_EQ(sub.table(), "car");
  EXPECT_EQ(engine.SubscriptionCount(), 1u);

  auto boot = sub.Poll();
  ASSERT_TRUE(boot.has_value());
  EXPECT_TRUE(boot->resync);
  EXPECT_EQ(RowSet(boot->enters),
            RowSet(engine.Execute("SELECT * FROM car PREFERRING LOWEST(price) "
                                  "AND LOWEST(mileage)")
                       .relation));

  // A dominated insert produces no delta; a dominating one enters and
  // demotes.
  engine.Insert("car", {"Ford", 50, 90, 0.0});
  EXPECT_FALSE(sub.Poll().has_value());
  engine.Insert("car", {"Ford", 1, 1, 0.0});
  auto delta = sub.WaitFor(milliseconds(1000));
  ASSERT_TRUE(delta.has_value());
  EXPECT_FALSE(delta->resync);
  ASSERT_EQ(delta->enters.size(), 1u);
  EXPECT_EQ(delta->enters[0][0], Value("Ford"));
  EXPECT_EQ(delta->exits.size(), 2u);  // both previous maxima are beaten

  // Deleting the dominator brings the old maxima back.
  size_t removed = engine.Delete(
      "car", [](const Tuple& t) { return t[1] == Value(static_cast<int64_t>(1)); });
  EXPECT_EQ(removed, 1u);
  delta = sub.WaitFor(milliseconds(1000));
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->exits.size(), 1u);
  EXPECT_EQ(delta->enters.size(), 2u);

  sub.Cancel();
  EXPECT_EQ(engine.SubscriptionCount(), 0u);
  EXPECT_TRUE(sub.closed());
}

TEST(EngineSubscribeTest, SubscribedQueryStaysEquivalentToRecompute) {
  const char* kSql =
      "SELECT * FROM car WHERE price < 45 PREFERRING LOWEST(price) AND "
      "LOWEST(mileage)";
  std::mt19937 rng(7);
  Engine subscribed;
  Engine reference;
  Relation seed(CarSchema());
  for (int i = 0; i < 50; ++i) seed.Add(RandomCar(&rng));
  subscribed.RegisterTable("car", seed);
  reference.RegisterTable("car", seed);
  Engine::Subscription sub = subscribed.Subscribe(kSql);
  for (int step = 0; step < 40; ++step) {
    if (rng() % 3 != 0) {
      Tuple row = RandomCar(&rng);
      subscribed.Insert("car", row);
      reference.Insert("car", row);
    } else {
      int64_t cut = static_cast<int64_t>(rng() % 50);
      auto pred = [cut](const Tuple& t) {
        return t[1] == Value(cut);
      };
      subscribed.Delete("car", pred);
      reference.Delete("car", pred);
    }
    // The subscribed engine answers from the delta-refreshed exec entry;
    // the reference recomputes cold. They must agree bytewise.
    ASSERT_EQ(RowSet(subscribed.Execute(kSql).relation),
              RowSet(reference.Execute(kSql).relation))
        << "step " << step;
  }
  // The refresh path actually ran (mutations on a subscribed statement).
  EXPECT_GT(subscribed.cache_stats().exec_refreshes, 0u);
  EXPECT_GT(sub.view_stats().inserts, 0u);
}

TEST(EngineSubscribeTest, SlowSubscriberGetsCoalescedResync) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  Engine::Subscription sub = engine.Subscribe(
      "SELECT * FROM car PREFERRING LOWEST(price)", engine.options().bmo,
      /*max_pending_deltas=*/1);
  // Never polled: the bootstrap resync occupies the whole queue, so each
  // improving insert overflows and coalesces.
  for (int64_t price = 30; price > 25; --price) {
    engine.Insert("car", {"Ford", price, 1, 0.0});
  }
  EXPECT_GE(sub.coalesced_resyncs(), 1u);
  auto delta = sub.Poll();
  ASSERT_TRUE(delta.has_value());
  EXPECT_TRUE(delta->resync);
  EXPECT_EQ(RowSet(delta->enters),
            RowSet(engine.Execute("SELECT * FROM car PREFERRING LOWEST(price)")
                       .relation));
  EXPECT_FALSE(sub.Poll().has_value());  // backlog was dropped, not queued
}

TEST(EngineSubscribeTest, RejectsStatementsOutsideTheMaintainableFragment) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  EXPECT_THROW(engine.Subscribe("SELECT * FROM car"), psql::BadArgumentError);
  EXPECT_THROW(engine.Subscribe("SELECT make FROM car PREFERRING LOWEST(price)"),
               psql::BadArgumentError);
  EXPECT_THROW(
      engine.Subscribe("SELECT TOP 2 * FROM car PREFERRING LOWEST(price)"),
      psql::BadArgumentError);
  EXPECT_THROW(
      engine.Subscribe("EXPLAIN SELECT * FROM car PREFERRING LOWEST(price)"),
      psql::BadArgumentError);
  EXPECT_THROW(engine.Subscribe(
                   "SELECT * FROM car PREFERRING LOWEST(price) GROUPING make"),
               psql::BadArgumentError);
  EXPECT_THROW(engine.Subscribe("DELETE FROM car"), psql::BadArgumentError);
  EXPECT_THROW(engine.Subscribe("SELECT * FROM nope PREFERRING LOWEST(price)"),
               std::out_of_range);
}

TEST(EngineSubscribeTest, RegisterTableClosesSubscriptions) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  Engine::Subscription sub =
      engine.Subscribe("SELECT * FROM car PREFERRING LOWEST(price)");
  engine.RegisterTable("car", SmallCars());  // wholesale replacement
  EXPECT_TRUE(sub.closed());
  EXPECT_EQ(engine.SubscriptionCount(), 0u);
}

TEST(EngineSubscribeTest, SharedViewAcrossSubscribersOfTheSameStatement) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  Engine::Subscription a =
      engine.Subscribe("SELECT * FROM car PREFERRING LOWEST(price)");
  Engine::Subscription b =
      engine.Subscribe("SELECT * FROM car PREFERRING LOWEST(price)");
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(engine.SubscriptionCount(), 2u);
  engine.Insert("car", {"Ford", 1, 1, 0.0});
  ASSERT_TRUE(a.Poll().has_value());  // bootstrap
  ASSERT_TRUE(b.Poll().has_value());
  EXPECT_TRUE(a.WaitFor(milliseconds(1000)).has_value());
  EXPECT_TRUE(b.WaitFor(milliseconds(1000)).has_value());
  a.Cancel();
  EXPECT_EQ(engine.SubscriptionCount(), 1u);
  // The view (shared) survives for b.
  engine.Insert("car", {"Ford", 0, 0, 0.0});
  EXPECT_TRUE(b.WaitFor(milliseconds(1000)).has_value());
}

// --- DELETE FROM -----------------------------------------------------------

TEST(EngineDeleteTest, SqlDeleteRoutesThroughTheEngine) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  psql::QueryResult result =
      engine.Execute("DELETE FROM car WHERE make = 'Opel'");
  ASSERT_EQ(result.relation.size(), 1u);
  EXPECT_EQ(result.relation.at(0)[0], Value(static_cast<int64_t>(2)));
  EXPECT_EQ(result.relation.schema().at(0).name, "deleted");
  EXPECT_EQ(engine.Snapshot("car")->size(), 2u);
  // No match: no version bump, and the count says zero.
  uint64_t version = engine.TableVersion("car");
  result = engine.Execute("DELETE FROM car WHERE make = 'Nope'");
  EXPECT_EQ(result.relation.at(0)[0], Value(static_cast<int64_t>(0)));
  EXPECT_EQ(engine.TableVersion("car"), version);
  // Unconditional delete empties the table.
  result = engine.Execute("DELETE FROM car");
  EXPECT_EQ(result.relation.at(0)[0], Value(static_cast<int64_t>(2)));
  EXPECT_EQ(engine.Snapshot("car")->size(), 0u);
  EXPECT_THROW(engine.Execute("DELETE FROM nope"), std::out_of_range);
}

TEST(EngineDeleteTest, DeleteInvalidatesStatsAndCaches) {
  Engine engine;
  engine.RegisterTable("car", SmallCars());
  auto before = engine.Stats("car");
  EXPECT_EQ(before->rows, 4u);
  EXPECT_EQ(engine.Delete("car", [](const Tuple& t) {
    return t[0] == Value("BMW");
  }),
            2u);
  auto after = engine.Stats("car");
  EXPECT_EQ(after->rows, 2u);
  const char* kSql = "SELECT * FROM car PREFERRING LOWEST(price)";
  Relation warm = engine.Execute(kSql).relation;
  EXPECT_TRUE(warm.SameRows(engine.Execute(kSql).relation));
}

}  // namespace
}  // namespace prefdb
