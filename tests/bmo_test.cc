// Tests for the BMO query model (Defs. 14-16): declarative semantics,
// duplicates, groupby, result size, perfect matches.

#include "eval/bmo.h"

#include <gtest/gtest.h>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "test_support.h"

namespace prefdb {
namespace {

using ::prefdb::testing::IntRelation;

TEST(BmoTest, EmptyRelationGivesEmptyResult) {
  Relation r(Schema{{"x", ValueType::kInt}});
  EXPECT_TRUE(Bmo(r, Lowest("x")).empty());
  EXPECT_TRUE(BmoIndices(r, Lowest("x")).empty());
}

TEST(BmoTest, SingleRowIsAlwaysBest) {
  Relation r = IntRelation("x", {42});
  EXPECT_EQ(Bmo(r, Lowest("x")).size(), 1u);
  EXPECT_EQ(Bmo(r, Around("x", 0)).size(), 1u);
}

TEST(BmoTest, NeverEmptyOnNonEmptyInput) {
  // The empty-result effect is impossible under BMO (§5.1).
  Relation r = IntRelation("x", {5, 9, 13});
  for (const PrefPtr& p :
       {Lowest("x"), Highest("x"), Around("x", 100), Pos("x", {Value(777)}),
        Neg("x", {Value(5), Value(9), Value(13)})}) {
    EXPECT_GE(Bmo(r, p).size(), 1u) << p->ToString();
  }
}

TEST(BmoTest, QueryRelaxationIsImplicit) {
  // POS with no feasible favorite falls back to "any other value".
  Relation r = IntRelation("x", {1, 2, 3});
  Relation best = Bmo(r, Pos("x", {Value(99)}));
  EXPECT_EQ(best.size(), 3u);
}

TEST(BmoTest, DuplicateProjectionsAllQualify) {
  // sigma[P](R) keeps every tuple whose projection is maximal (Def. 15).
  Schema s({{"x", ValueType::kInt}, {"tag", ValueType::kString}});
  Relation r(s);
  r.Add({1, "a"});
  r.Add({1, "b"});
  r.Add({2, "c"});
  Relation best = Bmo(r, Lowest("x"));
  EXPECT_EQ(best.size(), 2u);  // both x=1 rows
}

TEST(BmoTest, PreservesInputRowOrder) {
  Relation r = IntRelation("x", {3, 1, 2, 1});
  std::vector<size_t> idx = BmoIndices(r, Lowest("x"));
  EXPECT_EQ(idx, (std::vector<size_t>{1, 3}));
}

TEST(BmoTest, ExtraAttributesAreCarriedThrough) {
  Schema s({{"price", ValueType::kInt}, {"name", ValueType::kString}});
  Relation r(s);
  r.Add({100, "cheap"});
  r.Add({500, "pricey"});
  Relation best = Bmo(r, Lowest("price"));
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best.at(0)[1], Value("cheap"));
}

TEST(BmoTest, Prop7EquivalentPreferencesSameResult) {
  Relation r = IntRelation("x", {-3, -1, 0, 2, 5});
  // LOWEST == HIGHEST^d (Prop 3d) must give identical BMO answers (Prop 7).
  Relation a = Bmo(r, Lowest("x"));
  Relation b = Bmo(r, Dual(Highest("x")));
  EXPECT_TRUE(a.SameRows(b));
}

TEST(BmoTest, AntiChainReturnsEverything) {
  Relation r = IntRelation("x", {1, 2, 3});
  EXPECT_EQ(Bmo(r, AntiChain("x")).size(), 3u);
}

TEST(BmoGroupByTest, GroupsEvaluateIndependently) {
  Schema s({{"make", ValueType::kString}, {"price", ValueType::kInt}});
  Relation r(s);
  r.Add({"Audi", 40000});
  r.Add({"Audi", 30000});
  r.Add({"BMW", 50000});
  r.Add({"BMW", 45000});
  Relation best = BmoGroupBy(r, Lowest("price"), {"make"});
  Relation expected(s);
  expected.Add({"Audi", 30000});
  expected.Add({"BMW", 45000});
  EXPECT_TRUE(best.SameRows(expected));
}

TEST(BmoGroupByTest, EquivalentToAntiChainPrioritization) {
  // Def. 16: sigma[P groupby A](R) := sigma[A<-> & P](R).
  Schema s({{"make", ValueType::kString}, {"price", ValueType::kInt}});
  Relation r(s);
  r.Add({"Audi", 40000});
  r.Add({"Audi", 30000});
  r.Add({"BMW", 50000});
  Relation a = BmoGroupBy(r, Lowest("price"), {"make"});
  Relation b = Bmo(r, Prioritized(AntiChain("make"), Lowest("price")));
  EXPECT_TRUE(a.SameRows(b));
}

TEST(BmoGroupByTest, EmptyInput) {
  Schema s({{"make", ValueType::kString}, {"price", ValueType::kInt}});
  EXPECT_TRUE(BmoGroupBy(Relation(s), Lowest("price"), {"make"}).empty());
}

TEST(ResultSizeTest, CountsDistinctValueCombinations) {
  Schema s({{"x", ValueType::kInt}, {"tag", ValueType::kString}});
  Relation r(s);
  r.Add({1, "a"});
  r.Add({1, "b"});  // same projection x=1
  r.Add({2, "c"});
  EXPECT_EQ(ResultSize(r, Lowest("x")), 1u);
  EXPECT_EQ(ResultSize(r, AntiChain("x")), 2u);
}

TEST(ResultSizeTest, BoundsFromDef18) {
  Relation r = IntRelation("x", {1, 2, 3, 4});
  for (const PrefPtr& p : {Lowest("x"), Around("x", 2), AntiChain("x")}) {
    size_t size = ResultSize(r, p);
    EXPECT_GE(size, 1u);
    EXPECT_LE(size, 4u);
  }
}

TEST(PerfectMatchTest, RequiresMembershipAndDomainMaximality) {
  Relation r = IntRelation("x", {3, 7});
  std::vector<Tuple> universe;
  for (int v = 0; v <= 10; ++v) universe.push_back(Tuple({Value(v)}));
  PrefPtr p = Around("x", 7);
  EXPECT_TRUE(IsPerfectMatch(Tuple({Value(7)}), r, p, universe));
  EXPECT_FALSE(IsPerfectMatch(Tuple({Value(3)}), r, p, universe));  // not max
  EXPECT_FALSE(
      IsPerfectMatch(Tuple({Value(5)}), r, p, universe));  // not in R
}

TEST(PerfectMatchTest, BmoMayContainNoPerfectMatch) {
  // max(P_R) vs max(P): best available need not be a dream object.
  Relation r = IntRelation("x", {3, 5});
  std::vector<Tuple> universe;
  for (int v = 0; v <= 10; ++v) universe.push_back(Tuple({Value(v)}));
  PrefPtr p = Around("x", 9);
  Relation best = Bmo(r, p);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best.at(0)[0], Value(5));
  EXPECT_FALSE(IsPerfectMatch(best.at(0), r, p, universe));
}

TEST(ProjectionIndexTest, DeduplicatesAndMapsRows) {
  Relation r = IntRelation("x", {1, 2, 1, 3, 2});
  ProjectionIndex idx = BuildProjectionIndex(r, *Lowest("x"));
  EXPECT_EQ(idx.values.size(), 3u);
  EXPECT_EQ(idx.row_to_value[0], idx.row_to_value[2]);
  EXPECT_EQ(idx.row_to_value[1], idx.row_to_value[4]);
  EXPECT_NE(idx.row_to_value[0], idx.row_to_value[3]);
}

TEST(BmoOnStringsTest, PosPreferenceSelectsFavoritesPresent) {
  Relation r = ::prefdb::testing::StringRelation(
      "color", {"red", "yellow", "blue", "yellow"});
  Relation best = Bmo(r, Pos("color", {"yellow", "green"}));
  EXPECT_EQ(best.size(), 2u);
  for (const Tuple& t : best.tuples()) {
    EXPECT_EQ(t[0], Value("yellow"));
  }
}

TEST(BmoMultiAttributeTest, ParetoOverThreeAttributes) {
  Schema s({{"a", ValueType::kInt},
            {"b", ValueType::kInt},
            {"c", ValueType::kInt}});
  Relation r(s);
  r.Add({1, 1, 1});
  r.Add({2, 2, 2});  // dominates (1,1,1) under HIGHEST everywhere
  r.Add({3, 0, 3});
  Relation best = Bmo(r, Pareto({Highest("a"), Highest("b"), Highest("c")}));
  Relation expected(s);
  expected.Add({2, 2, 2});
  expected.Add({3, 0, 3});
  EXPECT_TRUE(best.SameRows(expected));
}

}  // namespace
}  // namespace prefdb
