// Tests for the preference query optimizer (eval/optimizer.h): rewrites
// preserve answers (Prop 7), the algorithm chooser picks the predicted
// structure-exploiting plans, EXPLAIN reports them.

#include "eval/optimizer.h"

#include <gtest/gtest.h>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/cars.h"
#include "datagen/random_terms.h"
#include "datagen/vectors.h"

namespace prefdb {
namespace {

TEST(ChooserTest, SmallInputsUseBnl) {
  Relation r = GenerateCars(100, 1);
  AlgorithmChoice c = ChooseAlgorithm(r, Lowest("price"));
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kBlockNestedLoop);
}

TEST(ChooserTest, SkylineFragmentPrefersTiledSimdBnl) {
  // With the batch dominance kernels active, the tiled SIMD BNL window
  // beats the KLP75 recursion at every measured size; D&C remains the
  // pick for the row-wise kernels.
  Relation r = GenerateVectors(5000, 3, Correlation::kIndependent, 1);
  PrefPtr p = Pareto({Highest("d0"), Highest("d1"), Lowest("d2")});
  AlgorithmChoice c = ChooseAlgorithm(r, p);
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kBlockNestedLoop);
  EXPECT_NE(c.rationale.find("SIMD"), std::string::npos);

  BmoOptions rowwise;
  rowwise.simd = SimdMode::kOff;
  AlgorithmChoice d = ChooseAlgorithm(r, p, rowwise);
  EXPECT_EQ(d.algorithm, BmoAlgorithm::kDivideConquer);
  EXPECT_NE(d.rationale.find("KLP75"), std::string::npos);
}

TEST(ChooserTest, ChainHeadPrioritizationUsesDecomposition) {
  Relation r = GenerateCars(5000, 2);
  PrefPtr p = Prioritized(Lowest("price"), Pos("color", {"red"}));
  AlgorithmChoice c = ChooseAlgorithm(r, p);
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kDecomposition);
}

TEST(ChooserTest, SortKeysEnableSfs) {
  Relation r = GenerateCars(5000, 3);
  // AROUND leaves break the skyline fragment but still have sort keys.
  PrefPtr p = Pareto(Around("price", 10000), Lowest("mileage"));
  AlgorithmChoice c = ChooseAlgorithm(r, p);
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kSortFilter);
}

TEST(ChooserTest, LevelTermsCompileToVectorizedSfs) {
  // POS leaves have no closure sort keys, but they dict-encode as level
  // columns in the score table, which widens SFS eligibility.
  Relation r = GenerateCars(5000, 4);
  PrefPtr p = Pareto(Pos("color", {"red"}), Pos("make", {"Audi"}));
  AlgorithmChoice c = ChooseAlgorithm(r, p);
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kSortFilter);
  EXPECT_NE(c.rationale.find("score-table"), std::string::npos);
}

TEST(ChooserTest, UnstructuredTermsFallBackToBnl) {
  Relation r = GenerateCars(5000, 4);
  // With vectorization disabled the same level term has no sort keys.
  PrefPtr p = Pareto(Pos("color", {"red"}), Pos("make", {"Audi"}));
  BmoOptions no_vector;
  no_vector.vectorize = false;
  EXPECT_EQ(ChooseAlgorithm(r, p, no_vector).algorithm,
            BmoAlgorithm::kBlockNestedLoop);
  // Intersection aggregations never compile, vectorized or not.
  PrefPtr hard = Intersection(Pos("color", {"red"}), Neg("color", {"blue"}));
  EXPECT_EQ(ChooseAlgorithm(r, hard).algorithm,
            BmoAlgorithm::kBlockNestedLoop);
}

TEST(OptimizeTest, RewritesAreReportedAndSound) {
  Relation r = GenerateCars(2000, 5);
  PrefPtr messy = Pareto(Dual(Dual(Lowest("price"))), Lowest("price"));
  OptimizedQuery q = Optimize(r, messy);
  EXPECT_FALSE(q.rewrites.empty());
  EXPECT_TRUE(q.simplified->StructurallyEquals(*Lowest("price")));
  EXPECT_TRUE(Bmo(r, messy).SameRows(BmoOptimized(r, messy)));
}

TEST(OptimizeTest, ExplainMentionsEverything) {
  Relation r = GenerateCars(2000, 5);
  OptimizedQuery q =
      Optimize(r, Pareto(Dual(Highest("price")), Lowest("mileage")));
  std::string text = q.Explain();
  EXPECT_NE(text.find("preference:"), std::string::npos);
  EXPECT_NE(text.find("algorithm:"), std::string::npos);
  EXPECT_NE(text.find("rewrites"), std::string::npos);
}

class OptimizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerPropertyTest, OptimizedAnswerEqualsDirectAnswer) {
  RandomTermGen gx("price", {Value(1000), Value(2000), Value(4000)},
                   GetParam());
  RandomTermGen gy("mileage", {Value(10), Value(20), Value(40)},
                   GetParam() + 5);
  Relation cars = GenerateCars(700, GetParam());
  for (int round = 0; round < 8; ++round) {
    PrefPtr p;
    switch (round % 4) {
      case 0: p = Pareto(gx.Term(1), gy.Term(1)); break;
      case 1: p = Prioritized(gx.Term(1), gy.Term(1)); break;
      case 2: p = Pareto(gx.Term(2), gy.Term(1)); break;
      default: p = Prioritized(Pareto(gx.Term(1), gy.Term(1)), gx.Term(1));
    }
    EXPECT_TRUE(Bmo(cars, p, {BmoAlgorithm::kNaive})
                    .SameRows(BmoOptimized(cars, p)))
        << p->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace prefdb
