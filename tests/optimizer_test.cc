// Tests for the preference query optimizer (eval/optimizer.h): rewrites
// preserve answers (Prop 7), the cost model picks the measured-winner
// plans across statistics regimes, EXPLAIN reports the per-algorithm
// cost table.

#include "eval/optimizer.h"

#include <gtest/gtest.h>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/cars.h"
#include "datagen/random_terms.h"
#include "datagen/vectors.h"

namespace prefdb {
namespace {

TEST(ChooserTest, SmallInputsUseBnl) {
  Relation r = GenerateCars(100, 1);
  PhysicalPlan c = ChooseAlgorithm(r, Lowest("price"));
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kBlockNestedLoop);
}

TEST(ChooserTest, SkylineFragmentPrefersTiledSimdBnl) {
  // With the batch dominance kernels active, the tiled SIMD BNL window
  // beats the KLP75 recursion on the estimated windows of every measured
  // workload; D&C remains the pick for the row-wise kernels.
  Relation r = GenerateVectors(5000, 3, Correlation::kIndependent, 1);
  PrefPtr p = Pareto({Highest("d0"), Highest("d1"), Lowest("d2")});
  PhysicalPlan c = ChooseAlgorithm(r, p);
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kBlockNestedLoop);
  EXPECT_NE(c.rationale.find("SIMD"), std::string::npos);
  EXPECT_GT(c.estimated_ns, 0.0);

  BmoOptions rowwise;
  rowwise.simd = SimdMode::kOff;
  PhysicalPlan d = ChooseAlgorithm(r, p, rowwise);
  EXPECT_EQ(d.algorithm, BmoAlgorithm::kDivideConquer);
  EXPECT_NE(d.rationale.find("KLP75"), std::string::npos);
}

TEST(ChooserTest, ChainHeadMakesDecompositionEligible) {
  // A prioritized chain head is the Prop 11 structure: the cascade is
  // always *considered* with a cost estimate. With the compiled kernels
  // the BNL window over the lex descriptor is far cheaper (the window
  // stays near the head's best block), so the cascade is not chosen —
  // the cost model's honest correction of the old structural heuristic.
  Relation r = GenerateCars(5000, 2);
  PrefPtr p = Prioritized(Lowest("price"), Pos("color", {"red"}));
  PhysicalPlan c = ChooseAlgorithm(r, p);
  bool decomposition_considered = false;
  for (const AlgorithmCost& cost : c.considered) {
    if (cost.algorithm == BmoAlgorithm::kDecomposition) {
      decomposition_considered = cost.eligible && cost.est_ns > 0.0;
    }
  }
  EXPECT_TRUE(decomposition_considered);
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kBlockNestedLoop);
  // Non-chain heads are not eligible at all.
  PhysicalPlan d = ChooseAlgorithm(r, Pareto(Lowest("price"), Lowest("mileage")));
  for (const AlgorithmCost& cost : d.considered) {
    if (cost.algorithm == BmoAlgorithm::kDecomposition) {
      EXPECT_FALSE(cost.eligible);
    }
  }
}

TEST(ChooserTest, SelectiveChainHeadOverClosureTailUsesDecomposition) {
  // The cascade's winning regime: a selective chain head in front of a
  // term that only evaluates through closures (non-compilable tail) with
  // a wide estimated window — sorting once and cascading into the best
  // block beats paying closure dominance tests across the whole pool.
  TermStats stats;
  stats.input_rows = 50000;
  stats.distinct_values = 50000;
  stats.dims = 4;
  stats.compilable = false;
  stats.chain_head = true;
  stats.head_distinct = 5;
  stats.est_window = 130.0;
  PhysicalPlan plan = PlanPhysical(stats, BmoOptions{});
  EXPECT_EQ(plan.algorithm, BmoAlgorithm::kDecomposition);
  EXPECT_NE(plan.rationale.find("Prop 11"), std::string::npos);
}

TEST(ChooserTest, LevelTermsStayEligibleForVectorizedSfs) {
  // POS leaves have no closure sort keys, but they dict-encode as level
  // columns in the score table, which keeps SFS eligible; with the tiny
  // estimated window of a 2-level x 2-level term, the BNL window is
  // still the cheaper plan.
  Relation r = GenerateCars(5000, 4);
  PrefPtr p = Pareto(Pos("color", {"red"}), Pos("make", {"Audi"}));
  PhysicalPlan c = ChooseAlgorithm(r, p);
  bool sfs_eligible = false;
  for (const AlgorithmCost& cost : c.considered) {
    if (cost.algorithm == BmoAlgorithm::kSortFilter) {
      sfs_eligible = cost.eligible;
    }
  }
  EXPECT_TRUE(sfs_eligible);
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kBlockNestedLoop);
}

TEST(ChooserTest, UnstructuredTermsFallBackToBnl) {
  Relation r = GenerateCars(5000, 4);
  // With vectorization disabled the same level term has no sort keys.
  PrefPtr p = Pareto(Pos("color", {"red"}), Pos("make", {"Audi"}));
  BmoOptions no_vector;
  no_vector.vectorize = false;
  EXPECT_EQ(ChooseAlgorithm(r, p, no_vector).algorithm,
            BmoAlgorithm::kBlockNestedLoop);
  // Intersection aggregations compile but derive no sort keys and are
  // never flat-Pareto, so BNL is the only eligible kernel.
  PrefPtr hard = Intersection(Pos("color", {"red"}), Neg("color", {"blue"}));
  EXPECT_EQ(ChooseAlgorithm(r, hard).algorithm,
            BmoAlgorithm::kBlockNestedLoop);
}

TEST(ChooserTest, ExplicitAlgorithmShortCircuitsTheCostModel) {
  Relation r = GenerateCars(2000, 9);
  BmoOptions forced;
  forced.algorithm = BmoAlgorithm::kSortFilter;
  PhysicalPlan c = ChooseAlgorithm(r, Lowest("price"), forced);
  EXPECT_EQ(c.algorithm, BmoAlgorithm::kSortFilter);
  EXPECT_TRUE(c.considered.empty());
  EXPECT_NE(c.rationale.find("explicitly"), std::string::npos);
}

TEST(OptimizeTest, RewritesAreReportedAndSound) {
  Relation r = GenerateCars(2000, 5);
  PrefPtr messy = Pareto(Dual(Dual(Lowest("price"))), Lowest("price"));
  OptimizedQuery q = Optimize(r, messy);
  EXPECT_FALSE(q.rewrites.empty());
  EXPECT_TRUE(q.simplified->StructurallyEquals(*Lowest("price")));
  EXPECT_TRUE(Bmo(r, messy).SameRows(BmoOptimized(r, messy)));
}

TEST(OptimizeTest, ExplainMentionsEverything) {
  Relation r = GenerateCars(2000, 5);
  OptimizedQuery q =
      Optimize(r, Pareto(Dual(Highest("price")), Lowest("mileage")));
  std::string text = q.Explain();
  EXPECT_NE(text.find("preference:"), std::string::npos);
  EXPECT_NE(text.find("algorithm:"), std::string::npos);
  EXPECT_NE(text.find("rewrites"), std::string::npos);
  // The cost model's comparison table: statistics plus one estimate per
  // considered algorithm, marking the choice.
  EXPECT_NE(text.find("stats:"), std::string::npos);
  EXPECT_NE(text.find("cost model:"), std::string::npos);
  EXPECT_NE(text.find("<- chosen"), std::string::npos);
  EXPECT_NE(text.find("est "), std::string::npos);
}

class OptimizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerPropertyTest, OptimizedAnswerEqualsDirectAnswer) {
  RandomTermGen gx("price", {Value(1000), Value(2000), Value(4000)},
                   GetParam());
  RandomTermGen gy("mileage", {Value(10), Value(20), Value(40)},
                   GetParam() + 5);
  Relation cars = GenerateCars(700, GetParam());
  for (int round = 0; round < 8; ++round) {
    PrefPtr p;
    switch (round % 4) {
      case 0: p = Pareto(gx.Term(1), gy.Term(1)); break;
      case 1: p = Prioritized(gx.Term(1), gy.Term(1)); break;
      case 2: p = Pareto(gx.Term(2), gy.Term(1)); break;
      default: p = Prioritized(Pareto(gx.Term(1), gy.Term(1)), gx.Term(1));
    }
    EXPECT_TRUE(Bmo(cars, p, {BmoAlgorithm::kNaive})
                    .SameRows(BmoOptimized(cars, p)))
        << p->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace prefdb
