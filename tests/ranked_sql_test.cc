// TOP k / RANKED SQL coverage: results must match direct eval/ranked.h
// calls (same deterministic tie order) across k = 0/1/N/oversized,
// randomized terms, grouped queries and the engine caches.

#include <gtest/gtest.h>

#include <random>

#include "core/numeric_preferences.h"
#include "datagen/cars.h"
#include "engine/engine.h"
#include "eval/ranked.h"
#include "psql/executor.h"
#include "psql/parser.h"
#include "psql/translator.h"

namespace prefdb {
namespace {

Relation Hotels() {
  Relation r(Schema{{"name", ValueType::kString},
                    {"price", ValueType::kInt},
                    {"distance", ValueType::kInt}});
  r.Add({"Alpha", 120, 900});
  r.Add({"Belle", 150, 50});
  r.Add({"Charm", 60, 1200});
  r.Add({"Dune", 95, 300});
  r.Add({"Dupe", 95, 300});  // exact tie with Dune: input order decides
  r.Add({"Exquisite", 340, 100});
  return r;
}

TEST(RankedSqlTest, ParserAcceptsTopAndRanked) {
  psql::SelectStatement top =
      psql::Parse("SELECT TOP 3 name FROM hotels PREFERRING LOWEST(price)");
  EXPECT_TRUE(top.ranked);
  EXPECT_EQ(top.top_k, 3u);
  psql::SelectStatement ranked =
      psql::Parse("SELECT RANKED * FROM hotels PREFERRING LOWEST(price)");
  EXPECT_TRUE(ranked.ranked);
  EXPECT_EQ(ranked.top_k, 0u);
  EXPECT_NE(top.ToString().find("TOP 3"), std::string::npos);
  EXPECT_NE(ranked.ToString().find("RANKED"), std::string::npos);
}

TEST(RankedSqlTest, TopWithoutPreferringIsSyntaxError) {
  EXPECT_THROW(psql::Parse("SELECT TOP 3 * FROM hotels"), psql::SyntaxError);
  EXPECT_THROW(psql::Parse("SELECT RANKED * FROM hotels"),
               psql::SyntaxError);
}

TEST(RankedSqlTest, TopCountMustBeAPositiveInteger) {
  // 0 would silently mean "everything" (that's RANKED); fractions and
  // out-of-range values would make the size_t cast undefined.
  EXPECT_THROW(psql::Parse("SELECT TOP 0 * FROM t PREFERRING LOWEST(a)"),
               psql::SyntaxError);
  EXPECT_THROW(psql::Parse("SELECT TOP 2.5 * FROM t PREFERRING LOWEST(a)"),
               psql::SyntaxError);
  EXPECT_THROW(psql::Parse("SELECT TOP 1e300 * FROM t PREFERRING LOWEST(a)"),
               psql::SyntaxError);
  EXPECT_THROW(
      psql::Parse("SELECT * FROM t PREFERRING LOWEST(a) LIMIT 1e300"),
      psql::SyntaxError);
}

TEST(RankedSqlTest, ButOnlyRestrictsThePoolBeforeRanking) {
  Relation r(Schema{{"x", ValueType::kInt}});
  for (int i = 0; i < 10; ++i) r.Add({i});
  Engine engine;
  engine.RegisterTable("t", r);
  // Global top-3 by x AROUND 0 is {0,1,2}, but 0..2 fail the quality
  // bound; the 3 best *qualifying* rows must fill k.
  psql::QueryResult res = engine.Execute(
      "SELECT TOP 3 * FROM t PREFERRING x AROUND 0 "
      "BUT ONLY DISTANCE(x) >= 3");
  ASSERT_EQ(res.relation.size(), 3u);
  EXPECT_EQ(res.relation.at(0)[0], Value(3));
  EXPECT_EQ(res.relation.at(1)[0], Value(4));
  EXPECT_EQ(res.relation.at(2)[0], Value(5));
  // The quality stage shows up before the ranked stage in the plan.
  EXPECT_LT(res.plan.find("but_only"), res.plan.find("ranked["));
}

TEST(RankedSqlTest, MatchesDirectTopKAcrossK) {
  Relation hotels = Hotels();
  Engine engine;
  engine.RegisterTable("hotels", hotels);
  PrefPtr pref = Pareto(Lowest("price"), Around("distance", 100));
  for (size_t k : {size_t{0}, size_t{1}, size_t{3}, size_t{6}, size_t{50}}) {
    RankedResult direct = TopK(hotels, pref, k);
    std::string sql =
        k == 0 ? "SELECT RANKED * FROM hotels PREFERRING LOWEST(price) AND "
                 "distance AROUND 100"
               : "SELECT TOP " + std::to_string(k) +
                     " * FROM hotels PREFERRING LOWEST(price) AND "
                     "distance AROUND 100";
    psql::QueryResult res = engine.Execute(sql);
    EXPECT_EQ(res.relation, direct.relation) << sql;
    EXPECT_EQ(res.utilities, direct.utilities) << sql;
  }
}

TEST(RankedSqlTest, DeterministicTieOrder) {
  Engine engine;
  engine.RegisterTable("hotels", Hotels());
  // Dune (row 3) and Dupe (row 4) tie exactly; input order must decide,
  // run after run.
  psql::QueryResult res = engine.Execute(
      "SELECT TOP 2 name FROM hotels PREFERRING LOWEST(price) AND "
      "distance AROUND 300");
  ASSERT_EQ(res.relation.size(), 2u);
  EXPECT_EQ(res.relation.at(0)[0], Value("Dune"));
  EXPECT_EQ(res.relation.at(1)[0], Value("Dupe"));
  psql::QueryResult again = engine.Execute(
      "SELECT TOP 2 name FROM hotels PREFERRING LOWEST(price) AND "
      "distance AROUND 300");
  EXPECT_EQ(again.relation, res.relation);
}

TEST(RankedSqlTest, UtilitiesDescendAndAlign) {
  Engine engine;
  engine.RegisterTable("hotels", Hotels());
  psql::QueryResult res = engine.Execute(
      "SELECT RANKED name, price FROM hotels PREFERRING LOWEST(price)");
  ASSERT_EQ(res.utilities.size(), res.relation.size());
  for (size_t i = 1; i < res.utilities.size(); ++i) {
    EXPECT_GE(res.utilities[i - 1], res.utilities[i]);
  }
  // LOWEST utility is -price: best first.
  EXPECT_EQ(res.relation.at(0)[1], Value(60));
}

TEST(RankedSqlTest, WhereAndLimitCompose) {
  Relation hotels = Hotels();
  Engine engine;
  engine.RegisterTable("hotels", hotels);
  // WHERE filters the candidate pool before ranking; LIMIT truncates the
  // ranked output (after TOP k).
  psql::QueryResult res = engine.Execute(
      "SELECT TOP 3 name FROM hotels WHERE price < 150 "
      "PREFERRING LOWEST(price) LIMIT 2");
  ASSERT_EQ(res.relation.size(), 2u);
  EXPECT_EQ(res.relation.at(0)[0], Value("Charm"));
  EXPECT_EQ(res.relation.at(1)[0], Value("Dune"));
  EXPECT_EQ(res.utilities.size(), 2u);
}

TEST(RankedSqlTest, GroupedTopKMatchesPerGroupDirect) {
  Relation cars = GenerateCars(300, 99);
  Engine engine;
  engine.RegisterTable("car", cars);
  psql::QueryResult res = engine.Execute(
      "SELECT TOP 2 * FROM car PREFERRING LOWEST(price) GROUPING make");
  // Direct reference: per-make TopK in first-occurrence order of makes.
  PrefPtr pref = Lowest("price");
  size_t make_col = *cars.schema().IndexOf("make");
  std::vector<Value> make_order;
  Relation expected(cars.schema());
  std::vector<double> expected_utilities;
  for (const Tuple& t : cars.tuples()) {
    bool seen = false;
    for (const Value& m : make_order) {
      if (m == t[make_col]) seen = true;
    }
    if (!seen) make_order.push_back(t[make_col]);
  }
  for (const Value& make : make_order) {
    Relation group = cars.Filter(
        [&](const Tuple& t) { return t[make_col] == make; });
    RankedResult top = TopK(group, pref, 2);
    for (size_t i = 0; i < top.relation.size(); ++i) {
      expected.Add(top.relation.at(i));
      expected_utilities.push_back(top.utilities[i]);
    }
  }
  EXPECT_EQ(res.relation, expected);
  EXPECT_EQ(res.utilities, expected_utilities);
}

TEST(RankedSqlTest, RandomizedTermsMatchDirect) {
  std::mt19937_64 rng(4242);
  for (int round = 0; round < 30; ++round) {
    Relation r(Schema{{"a", ValueType::kInt}, {"b", ValueType::kInt}});
    size_t n = 1 + rng() % 40;
    for (size_t i = 0; i < n; ++i) {
      r.Add({static_cast<int64_t>(rng() % 20), static_cast<int64_t>(rng() % 20)});
    }
    // Single-utility fragments reachable from SQL: numeric leaves and
    // Pareto combinations.
    const char* terms[] = {
        "LOWEST(a)",
        "HIGHEST(b)",
        "a AROUND 10",
        "a BETWEEN 5 AND 12",
        "LOWEST(a) AND HIGHEST(b)",
        "a AROUND 7 AND b AROUND 3",
    };
    const char* term = terms[rng() % 6];
    size_t k = rng() % (n + 3);
    std::string head =
        k == 0 ? "SELECT RANKED * " : "SELECT TOP " + std::to_string(k) + " * ";
    psql::SelectStatement stmt =
        psql::Parse(head + "FROM t PREFERRING " + term);
    Engine engine;
    engine.RegisterTable("t", r);
    psql::QueryResult res = engine.Execute(stmt);
    RankedResult direct =
        TopK(r, psql::TranslatePreferenceChain(stmt.preferring), k);
    EXPECT_EQ(res.relation, direct.relation) << term << " k=" << k;
    EXPECT_EQ(res.utilities, direct.utilities) << term << " k=" << k;
  }
}

TEST(RankedSqlTest, MultiKeyTermThrowsInvalidArgument) {
  Engine engine;
  engine.RegisterTable("hotels", Hotels());
  // Prioritized terms have no single utility; the ranked model rejects
  // them with a clear error instead of silently reordering.
  EXPECT_THROW(
      engine.Execute("SELECT TOP 2 * FROM hotels "
                     "PREFERRING LOWEST(price) PRIOR TO LOWEST(distance)"),
      std::invalid_argument);
}

TEST(RankedSqlTest, ExplainShowsRankedPlan) {
  Engine engine;
  engine.RegisterTable("hotels", Hotels());
  psql::QueryResult res = engine.Execute(
      "EXPLAIN SELECT TOP 2 name FROM hotels PREFERRING LOWEST(price)");
  EXPECT_NE(res.plan.find("ranked[LOWEST(price), k=2]"), std::string::npos)
      << res.plan;
  EXPECT_NE(res.plan_details.find("model: ranked"), std::string::npos)
      << res.plan_details;
  psql::QueryResult grouped = engine.Execute(
      "EXPLAIN SELECT TOP 1 * FROM hotels PREFERRING LOWEST(price) "
      "GROUPING distance");
  EXPECT_NE(grouped.plan.find("ranked_groupby["), std::string::npos)
      << grouped.plan;
}

TEST(RankedSqlTest, RankedResultsAreCachedAndInvalidated) {
  Engine engine;
  engine.RegisterTable("hotels", Hotels());
  const char* sql =
      "SELECT TOP 1 name, price FROM hotels PREFERRING LOWEST(price)";
  psql::QueryResult first = engine.Execute(sql);
  EXPECT_EQ(first.relation.at(0)[0], Value("Charm"));
  psql::QueryResult warm = engine.Execute(sql);
  EXPECT_TRUE(warm.stats.exec_cache_hit);
  engine.Insert("hotels", Tuple{"Zero", 10, 0});
  psql::QueryResult after = engine.Execute(sql);
  EXPECT_FALSE(after.stats.exec_cache_hit);
  EXPECT_EQ(after.relation.at(0)[0], Value("Zero"));
}

TEST(RankedSqlTest, OneShotEngineSupportsRanked) {
  psql::Catalog catalog;
  catalog.Register("hotels", Hotels());
  Engine one_shot(catalog);
  psql::QueryResult res = one_shot.Execute(
      "SELECT TOP 2 name FROM hotels PREFERRING LOWEST(price)");
  ASSERT_EQ(res.relation.size(), 2u);
  EXPECT_EQ(res.utilities.size(), 2u);
}

}  // namespace
}  // namespace prefdb
