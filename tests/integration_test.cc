// Cross-module integration tests: the full preference-engineering pipeline
// (Example 6 end to end), Preference SQL over generated data, consistency
// between the language front-ends and the core API.

#include <gtest/gtest.h>

#include "prefdb.h"

namespace prefdb {
namespace {

/// Runs one statement through a stateful Engine (the stateless
/// psql::ExecuteQuery wrapper was removed).
psql::QueryResult RunSql(const std::string& sql,
                         const psql::Catalog& catalog) {
  Engine engine(catalog);
  return engine.Execute(sql);
}

// Example 6 as a full scenario against a concrete car database.
class PreferenceEngineeringScenario : public ::testing::Test {
 protected:
  PreferenceEngineeringScenario()
      : cars_(Schema{{"Category", ValueType::kString},
                     {"Transmission", ValueType::kString},
                     {"Horsepower", ValueType::kInt},
                     {"Price", ValueType::kInt},
                     {"Color", ValueType::kString},
                     {"Year_of_construction", ValueType::kInt},
                     {"Commission", ValueType::kInt}}) {
    cars_.Add({"cabriolet", "manual", 110, 28000, "yellow", 1998, 900});
    cars_.Add({"roadster", "automatic", 105, 26000, "blue", 1999, 1100});
    cars_.Add({"passenger", "automatic", 100, 18000, "gray", 2000, 700});
    cars_.Add({"cabriolet", "automatic", 95, 31000, "red", 1997, 1500});
    cars_.Add({"suv", "manual", 150, 35000, "black", 2001, 2000});
  }

  PrefPtr Q1() const {
    PrefPtr p1 = PosPos("Category", {"cabriolet"}, {"roadster"});
    PrefPtr p2 = Pos("Transmission", {"automatic"});
    PrefPtr p3 = Around("Horsepower", 100);
    PrefPtr p4 = Lowest("Price");
    PrefPtr p5 = Neg("Color", {"gray"});
    return Prioritized(p5, Prioritized(Pareto({p1, p2, p3}), p4));
  }

  Relation cars_;
};

TEST_F(PreferenceEngineeringScenario, JuliaQ1PicksNonGrayCabriolets) {
  Relation best = Bmo(cars_, Q1());
  ASSERT_GE(best.size(), 1u);
  for (const Tuple& t : best.tuples()) {
    EXPECT_NE(t[4], Value("gray"));  // P5 is the most important preference
  }
}

TEST_F(PreferenceEngineeringScenario, MichaelQ2AddsVendorPreferences) {
  PrefPtr q2 = Prioritized(
      Prioritized(Q1(), Highest("Year_of_construction")),
      Highest("Commission"));
  EXPECT_EQ(q2->attributes().size(), 7u);
  Relation best = Bmo(cars_, q2);
  EXPECT_GE(best.size(), 1u);
  // Q2 refines Q1: its winners must be a subset of Q1's winners
  // (prioritization only breaks ties downwards, Prop 13c).
  Relation q1_best = Bmo(cars_, Q1());
  for (const Tuple& t : best.tuples()) {
    bool found = false;
    for (const Tuple& u : q1_best.tuples()) {
      if (t == u) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(PreferenceEngineeringScenario, ConflictingPreferencesDontFail) {
  // Julia likes yellow (implicitly, not gray); Leslie dislikes red AND
  // gray but loves blue: P5 (x) P8 (x) P4 must still be a valid SPO and
  // produce answers.
  PrefPtr p4 = Lowest("Price");
  PrefPtr p5 = Neg("Color", {"gray"});
  PrefPtr p8 = PosNeg("Color", {"blue"}, {"gray", "red"});
  PrefPtr p1 = PosPos("Category", {"cabriolet"}, {"roadster"});
  PrefPtr p2 = Pos("Transmission", {"automatic"});
  PrefPtr p3 = Around("Horsepower", 100);
  PrefPtr q1_star = Prioritized(Pareto({p5, p8, p4}), Pareto({p1, p2, p3}));
  EXPECT_EQ(CheckStrictPartialOrder(q1_star, cars_.schema(), cars_.tuples()),
            "");
  Relation best = Bmo(cars_, q1_star);
  EXPECT_GE(best.size(), 1u);
  // The blue roadster should win: favorite color, cheap, and a POS2
  // category.
  bool has_blue = false;
  for (const Tuple& t : best.tuples()) {
    if (t[4] == Value("blue")) has_blue = true;
  }
  EXPECT_TRUE(has_blue) << best.ToString();
}

TEST(SqlVsCoreTest, SqlAndCoreApiAgree) {
  Relation cars = GenerateCars(400, 21);
  psql::Catalog catalog;
  catalog.Register("cars", cars);
  psql::QueryResult sql = RunSql(
      "SELECT * FROM cars PREFERRING LOWEST(price) AND LOWEST(mileage)",
      catalog);
  Relation core = Bmo(cars, Pareto(Lowest("price"), Lowest("mileage")));
  EXPECT_TRUE(sql.relation.SameRows(core));
}

TEST(SqlVsCoreTest, CascadeEqualsPrioritizedTerm) {
  Relation cars = GenerateCars(300, 22);
  psql::Catalog catalog;
  catalog.Register("cars", cars);
  psql::QueryResult sql = RunSql(
      "SELECT * FROM cars PREFERRING color = 'red' CASCADE LOWEST(price)",
      catalog);
  Relation core =
      Bmo(cars, Prioritized(Pos("color", {"red"}), Lowest("price")));
  EXPECT_TRUE(sql.relation.SameRows(core));
}

TEST(XPathVsCoreTest, XPathAndCoreApiAgree) {
  // Build an XML catalog mirroring a relation and compare result sets.
  std::string xml = "<CARS>";
  Relation cars = GenerateCars(60, 23);
  size_t price = *cars.schema().IndexOf("price");
  size_t mileage = *cars.schema().IndexOf("mileage");
  for (size_t i = 0; i < cars.size(); ++i) {
    xml += "<CAR id=\"" + std::to_string(i) + "\" price=\"" +
           std::to_string(cars.at(i)[price].as_int()) + "\" mileage=\"" +
           std::to_string(cars.at(i)[mileage].as_int()) + "\"/>";
  }
  xml += "</CARS>";
  pxpath::XPathResult xres = pxpath::EvalPreferenceXPath(
      pxpath::ParseXml(xml),
      "/CARS/CAR #[(@price) lowest and (@mileage) lowest]#");
  Relation core = Bmo(cars.Project({"price", "mileage"}),
                      Pareto(Lowest("price"), Lowest("mileage")));
  EXPECT_EQ(xres.nodes.size(), core.size());
}

TEST(SimplifierIntegrationTest, RewrittenQueryGivesSameBmoAnswer) {
  // Prop 7 in action through the optimizer: Simplify preserves answers.
  Relation cars = GenerateCars(250, 31);
  PrefPtr messy = Prioritized(
      Pareto(Dual(Dual(Lowest("price"))), Lowest("price")),
      Prioritized(AntiChain(std::vector<std::string>{"price"}),
                  Highest("horsepower")));
  PrefPtr clean = Simplify(messy);
  EXPECT_TRUE(Bmo(cars, messy).SameRows(Bmo(cars, clean)));
}

TEST(CsvIntegrationTest, QueryOverCsvData) {
  Schema s({{"name", ValueType::kString},
            {"price", ValueType::kInt},
            {"rating", ValueType::kDouble}});
  Relation hotels = ReadCsv(
      "name,price,rating\n"
      "Alpha,120,4.2\n"
      "Beach,95,3.9\n"
      "Crown,210,4.8\n"
      "Dune,95,4.5\n",
      s);
  Relation best = Bmo(hotels, Pareto(Lowest("price"), Highest("rating")));
  // Dune dominates Beach (same price, better rating); Crown is best
  // rating; Alpha dominated by Dune.
  Relation expected(s);
  expected.Add({"Crown", 210, 4.8});
  expected.Add({"Dune", 95, 4.5});
  EXPECT_TRUE(best.SameRows(expected)) << best.ToString();
}

TEST(RankedIntegrationTest, TopKOverSqlResult) {
  Relation cars = GenerateCars(200, 41);
  psql::Catalog catalog;
  catalog.Register("cars", cars);
  psql::QueryResult hard = RunSql(
      "SELECT * FROM cars WHERE category = 'passenger'", catalog);
  RankedResult ranked =
      TopK(hard.relation, RankWeightedSum({-1.0, -0.1},
                                          {Highest("price"),
                                           Highest("mileage")}),
           5);
  EXPECT_LE(ranked.relation.size(), 5u);
  for (size_t i = 1; i < ranked.utilities.size(); ++i) {
    EXPECT_GE(ranked.utilities[i - 1], ranked.utilities[i]);
  }
}

}  // namespace
}  // namespace prefdb
