// Cross-validation of all BMO algorithms: naive, BNL, sort-filter, divide
// & conquer [KLP75] and the Prop-8-12 decomposition evaluator must agree on
// randomized workloads (parameterized sweep over n, d, correlation).

#include <gtest/gtest.h>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "datagen/vectors.h"
#include "eval/bmo.h"
#include "test_support.h"

namespace prefdb {
namespace {

PrefPtr SkylinePreference(size_t d) {
  std::vector<PrefPtr> prefs;
  for (size_t i = 0; i < d; ++i) prefs.push_back(Highest("d" + std::to_string(i)));
  return Pareto(prefs);
}

struct SweepParam {
  size_t n;
  size_t d;
  Correlation corr;
};

class AlgorithmAgreementTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AlgorithmAgreementTest, AllAlgorithmsComputeTheSameSkyline) {
  const SweepParam& param = GetParam();
  Relation r = GenerateVectors(param.n, param.d, param.corr, /*seed=*/7);
  PrefPtr p = SkylinePreference(param.d);
  std::vector<size_t> naive = BmoIndices(r, p, {BmoAlgorithm::kNaive});
  for (BmoAlgorithm algo :
       {BmoAlgorithm::kBlockNestedLoop, BmoAlgorithm::kSortFilter,
        BmoAlgorithm::kDivideConquer, BmoAlgorithm::kDecomposition,
        BmoAlgorithm::kAuto}) {
    EXPECT_EQ(BmoIndices(r, p, {algo}), naive)
        << BmoAlgorithmName(algo) << " disagrees on n=" << param.n
        << " d=" << param.d << " " << CorrelationName(param.corr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmAgreementTest,
    ::testing::Values(
        SweepParam{64, 2, Correlation::kIndependent},
        SweepParam{64, 2, Correlation::kAntiCorrelated},
        SweepParam{64, 2, Correlation::kCorrelated},
        SweepParam{256, 3, Correlation::kIndependent},
        SweepParam{256, 3, Correlation::kAntiCorrelated},
        SweepParam{256, 4, Correlation::kCorrelated},
        SweepParam{512, 4, Correlation::kIndependent},
        SweepParam{512, 5, Correlation::kAntiCorrelated},
        SweepParam{1024, 2, Correlation::kIndependent},
        SweepParam{1024, 3, Correlation::kAntiCorrelated}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.n) + "d" +
             std::to_string(info.param.d) + "_" +
             std::string(CorrelationName(info.param.corr) ==
                                 std::string("anti-correlated")
                             ? "anti"
                             : CorrelationName(info.param.corr));
    });

class MixedTermAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MixedTermAgreementTest, GeneralTermsAgreeAcrossGenericAlgorithms) {
  // Terms beyond the skyline fragment (POS/NEG, AROUND, prioritized,
  // shared attributes): naive vs BNL vs decomposition vs auto.
  ::prefdb::testing::RandomPreferenceGen gen_x(
      "x", {Value(-2), Value(0), Value(1), Value(3)}, GetParam());
  ::prefdb::testing::RandomPreferenceGen gen_y(
      "y", {Value(-2), Value(0), Value(1), Value(3)}, GetParam() + 50);
  std::mt19937_64 rng(GetParam());
  Relation r(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  for (int i = 0; i < 80; ++i) {
    r.Add({Value(static_cast<int>(rng() % 7) - 3),
           Value(static_cast<int>(rng() % 7) - 3)});
  }
  for (int round = 0; round < 10; ++round) {
    PrefPtr px = gen_x.Term(2);
    PrefPtr py = gen_y.Term(2);
    PrefPtr p;
    switch (rng() % 4) {
      case 0: p = Pareto(px, py); break;
      case 1: p = Prioritized(px, py); break;
      case 2: p = Pareto(px, gen_x.Term(1)); break;
      default: p = Prioritized(Pareto(px, py), gen_y.Term(1)); break;
    }
    std::vector<size_t> naive = BmoIndices(r, p, {BmoAlgorithm::kNaive});
    for (BmoAlgorithm algo :
         {BmoAlgorithm::kBlockNestedLoop, BmoAlgorithm::kSortFilter,
          BmoAlgorithm::kDecomposition, BmoAlgorithm::kAuto}) {
      EXPECT_EQ(BmoIndices(r, p, {algo}), naive)
          << BmoAlgorithmName(algo) << " disagrees on " << p->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedTermAgreementTest,
                         ::testing::Values(2, 4, 6, 10, 12, 14));

TEST(DivideConquerTest, ApplicabilityDetection) {
  std::vector<PrefPtr> leaves;
  EXPECT_TRUE(CanUseDivideConquer(
      Pareto(Highest("a"), Lowest("b")), &leaves));
  EXPECT_EQ(leaves.size(), 2u);

  leaves.clear();
  // AROUND leaves break the injective-score requirement.
  EXPECT_FALSE(CanUseDivideConquer(
      Pareto(Around("a", 1), Lowest("b")), &leaves));

  leaves.clear();
  // Repeated attributes break coordinatewise dominance.
  EXPECT_FALSE(CanUseDivideConquer(
      Pareto(Highest("a"), Lowest("a")), &leaves));

  leaves.clear();
  EXPECT_FALSE(CanUseDivideConquer(Prioritized(Highest("a"), Lowest("b")),
                                   &leaves));
}

TEST(DivideConquerTest, MaximaOnKnownPoints) {
  // Maximize both dims: skyline of a staircase.
  std::vector<std::vector<double>> pts = {
      {1, 9}, {2, 8}, {3, 7}, {3, 9}, {0, 0}, {9, 1}, {9, 1}};
  std::vector<bool> max = MaximaDivideConquer(pts);
  EXPECT_FALSE(max[0]);  // (1,9) < (3,9)
  EXPECT_FALSE(max[1]);  // (2,8) < (3,9)
  EXPECT_FALSE(max[2]);  // (3,7) < (3,9)
  EXPECT_TRUE(max[3]);   // (3,9)
  EXPECT_FALSE(max[4]);
  EXPECT_TRUE(max[5]);   // (9,1)
  EXPECT_TRUE(max[6]);   // duplicate of a maximum is also maximal
}

TEST(DivideConquerTest, OneDimensionalMaxima) {
  std::vector<std::vector<double>> pts = {{3}, {9}, {9}, {1}};
  std::vector<bool> max = MaximaDivideConquer(pts);
  EXPECT_EQ(max, (std::vector<bool>{false, true, true, false}));
}

TEST(BnlTest, WindowHandlesDominatorArrivingLate) {
  // Rows arranged so a late row evicts several window entries.
  Relation r(Schema{{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  r.Add({1, 2});
  r.Add({2, 1});
  r.Add({3, 3});  // dominates both earlier rows
  std::vector<size_t> idx =
      BmoIndices(r, Pareto(Highest("a"), Highest("b")),
                 {BmoAlgorithm::kBlockNestedLoop});
  EXPECT_EQ(idx, (std::vector<size_t>{2}));
}

TEST(SortFilterTest, FallsBackWithoutSortKeys) {
  Relation r = ::prefdb::testing::StringRelation("c", {"a", "b", "c"});
  // POS has no sort keys; kSortFilter must still be correct (BNL fallback).
  Relation best = Bmo(r, Pos("c", {Value("b")}), {BmoAlgorithm::kSortFilter});
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best.at(0)[0], Value("b"));
}

TEST(AutoTest, PicksDivideConquerForSkylineFragment) {
  // Smoke check through the public API: auto must be correct; the specific
  // choice is covered by benchmarks.
  Relation r = GenerateVectors(200, 3, Correlation::kAntiCorrelated, 3);
  PrefPtr p = SkylinePreference(3);
  EXPECT_EQ(BmoIndices(r, p, {BmoAlgorithm::kAuto}),
            BmoIndices(r, p, {BmoAlgorithm::kNaive}));
}

}  // namespace
}  // namespace prefdb
