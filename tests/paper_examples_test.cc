// Mechanical reproduction of every worked example in the paper
// (Kießling, VLDB 2002, Examples 1-11). Each test rebuilds the example's
// preferences and data and asserts the exact figures/results the paper
// states.

#include <gtest/gtest.h>

#include "algebra/equivalence.h"
#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "eval/better_than_graph.h"
#include "eval/bmo.h"
#include "eval/decomposition.h"

namespace prefdb {
namespace {

std::vector<Value> SortedValues(std::vector<Tuple> tuples) {
  std::vector<Value> out;
  for (const Tuple& t : tuples) out.push_back(t[0]);
  std::sort(out.begin(), out.end());
  return out;
}

// --- Example 1: EXPLICIT color preference -------------------------------

class Example1 : public ::testing::Test {
 protected:
  Example1()
      : pref_(Explicit("Color", {{Value("green"), Value("yellow")},
                                 {Value("green"), Value("red")},
                                 {Value("yellow"), Value("white")}})),
        dom_(Schema{{"Color", ValueType::kString}}) {
    for (const char* c :
         {"white", "red", "yellow", "green", "brown", "black"}) {
      dom_.Add({Value(c)});
    }
  }
  PrefPtr pref_;
  Relation dom_;
};

TEST_F(Example1, GraphHasFourLevels) {
  BetterThanGraph g(dom_, pref_);
  EXPECT_EQ(g.max_level(), 4u);
}

TEST_F(Example1, LevelAssignmentsMatchPaper) {
  // "white and red are maximal at level 1, yellow is at level 2, green is
  // at level 3 and the other values brown and black are minimal at level 4"
  BetterThanGraph g(dom_, pref_);
  EXPECT_EQ(SortedValues(g.ValuesAtLevel(1)),
            (std::vector<Value>{Value("red"), Value("white")}));
  EXPECT_EQ(SortedValues(g.ValuesAtLevel(2)),
            (std::vector<Value>{Value("yellow")}));
  EXPECT_EQ(SortedValues(g.ValuesAtLevel(3)),
            (std::vector<Value>{Value("green")}));
  EXPECT_EQ(SortedValues(g.ValuesAtLevel(4)),
            (std::vector<Value>{Value("black"), Value("brown")}));
}

TEST_F(Example1, BrownAndBlackAreMinimal) {
  BetterThanGraph g(dom_, pref_);
  std::vector<Value> minimal;
  for (size_t i : g.minimal()) minimal.push_back(g.values()[i][0]);
  std::sort(minimal.begin(), minimal.end());
  EXPECT_EQ(minimal, (std::vector<Value>{Value("black"), Value("brown")}));
}

// --- Example 2: Pareto preference over disjoint attributes ---------------

class Example2 : public ::testing::Test {
 protected:
  Example2() : r_(Schema{{"A1", ValueType::kInt},
                         {"A2", ValueType::kInt},
                         {"A3", ValueType::kInt}}) {
    // R = {val1..val7} as printed in the paper.
    r_.Add({-5, 3, 4});   // val1
    r_.Add({-5, 4, 4});   // val2
    r_.Add({5, 1, 8});    // val3
    r_.Add({5, 6, 6});    // val4
    r_.Add({-6, 0, 6});   // val5
    r_.Add({-6, 0, 4});   // val6
    r_.Add({6, 2, 7});    // val7
    p4_ = Pareto(Pareto(Around("A1", 0), Lowest("A2")), Highest("A3"));
  }
  Relation r_;
  PrefPtr p4_;
};

TEST_F(Example2, ParetoOptimalSetIsVal135) {
  Relation best = Bmo(r_, p4_);
  Relation expected(r_.schema());
  expected.Add({-5, 3, 4});  // val1
  expected.Add({5, 1, 8});   // val3
  expected.Add({-6, 0, 6});  // val5
  EXPECT_TRUE(best.SameRows(expected)) << best.ToString();
}

TEST_F(Example2, GraphHasTwoLevels) {
  BetterThanGraph g(r_, p4_);
  EXPECT_EQ(g.max_level(), 2u);
  EXPECT_EQ(g.ValuesAtLevel(1).size(), 3u);
  EXPECT_EQ(g.ValuesAtLevel(2).size(), 4u);
}

TEST_F(Example2, EachComponentContributesAMaximalValue) {
  // Paper remark: for each of P1, P2, P3 at least one maximal value
  // appears in the Pareto-optimal set: ±5 for P1, 0 for P2, 8 for P3.
  Relation best = Bmo(r_, p4_);
  bool has_a1 = false, has_a2 = false, has_a3 = false;
  for (const Tuple& t : best.tuples()) {
    if (t[0] == Value(-5) || t[0] == Value(5)) has_a1 = true;
    if (t[1] == Value(0)) has_a2 = true;
    if (t[2] == Value(8)) has_a3 = true;
  }
  EXPECT_TRUE(has_a1);
  EXPECT_TRUE(has_a2);
  EXPECT_TRUE(has_a3);
}

// --- Example 3: Pareto on shared attribute Color -------------------------

class Example3 : public ::testing::Test {
 protected:
  Example3() : s_(Schema{{"Color", ValueType::kString}}) {
    for (const char* c :
         {"red", "green", "yellow", "blue", "black", "purple"}) {
      s_.Add({Value(c)});
    }
    p7_ = Pareto(Pos("Color", {"green", "yellow"}),
                 Neg("Color", {"red", "green", "blue", "purple"}));
  }
  Relation s_;
  PrefPtr p7_;
};

TEST_F(Example3, NonDiscriminatingCompromise) {
  // Level 1: yellow green black; Level 2: red blue purple.
  BetterThanGraph g(s_, p7_);
  EXPECT_EQ(g.max_level(), 2u);
  EXPECT_EQ(SortedValues(g.ValuesAtLevel(1)),
            (std::vector<Value>{Value("black"), Value("green"),
                                Value("yellow")}));
  EXPECT_EQ(SortedValues(g.ValuesAtLevel(2)),
            (std::vector<Value>{Value("blue"), Value("purple"),
                                Value("red")}));
}

// --- Example 4: prioritized accumulation ---------------------------------

class Example4 : public Example2 {};

TEST_F(Example4, P8GraphHasThreeLevels) {
  // P8 = P1 & P2 on (A1, A2): Level 1 {val1, val3}, Level 2 {val2, val4},
  // Level 3 {val5, val6, val7}.
  PrefPtr p8 = Prioritized(Around("A1", 0), Lowest("A2"));
  BetterThanGraph g(r_.Project({"A1", "A2"}), p8);
  EXPECT_EQ(g.max_level(), 3u);
  EXPECT_EQ(g.ValuesAtLevel(1).size(), 2u);  // (-5,3), (5,1)
  EXPECT_EQ(g.ValuesAtLevel(2).size(), 2u);  // (-5,4), (5,6)
  // Distinct level-3 projections: (-6,0) covers val5+val6, (6,2) val7.
  EXPECT_EQ(g.ValuesAtLevel(3).size(), 2u);
}

TEST_F(Example4, P9BmoMatchesParetoExample) {
  // P9 = (P1 (x) P2) & P3: Level 1 is again {val1, val3, val5}.
  PrefPtr p9 = Prioritized(Pareto(Around("A1", 0), Lowest("A2")),
                           Highest("A3"));
  Relation best = Bmo(r_, p9);
  Relation expected(r_.schema());
  expected.Add({-5, 3, 4});
  expected.Add({5, 1, 8});
  expected.Add({-6, 0, 6});
  EXPECT_TRUE(best.SameRows(expected)) << best.ToString();
}

TEST_F(Example4, P9GraphHasTwoLevels) {
  PrefPtr p9 = Prioritized(Pareto(Around("A1", 0), Lowest("A2")),
                           Highest("A3"));
  BetterThanGraph g(r_, p9);
  EXPECT_EQ(g.max_level(), 2u);
  EXPECT_EQ(g.ValuesAtLevel(2).size(), 4u);
}

// --- Example 5: numerical preference, weighted sum ------------------------

TEST(Example5, RankedChainAndDiscriminationObservation) {
  Relation r(Schema{{"A1", ValueType::kInt}, {"A2", ValueType::kInt}});
  r.Add({-5, 3});   // val1: F = 5 + 2*5  = 15
  r.Add({-5, 4});   // val2: F = 5 + 2*6  = 17
  r.Add({5, 1});    // val3: F = 5 + 2*3  = 11
  r.Add({5, 6});    // val4: F = 5 + 2*8  = 21
  r.Add({-6, 0});   // val5: F = 6 + 2*2  = 10
  r.Add({-6, 0});   // val6 (duplicate of val5)

  // f1 = distance(x, 0), f2 = distance(x, -2), F = x1 + 2*x2. Note the
  // paper's SCORE orders by f(x) < f(y), i.e. *larger* distance is better
  // here — reproduce literally.
  PrefPtr p1 = Score(
      "A1", [](const Value& v) { return std::abs(*v.numeric() - 0.0); },
      "distance0");
  PrefPtr p2 = Score(
      "A2", [](const Value& v) { return std::abs(*v.numeric() + 2.0); },
      "distance-2");
  PrefPtr p3 = Rank(
      [](const std::vector<double>& s) { return s[0] + 2.0 * s[1]; },
      "x1+2*x2", {p1, p2});

  // The better-than graph has 5 levels:
  // val4 > val2 > val1 > val3 > {val5, val6}.
  BetterThanGraph g(r, p3);
  EXPECT_EQ(g.max_level(), 5u);
  EXPECT_EQ(g.ValuesAtLevel(1), (std::vector<Tuple>{Tuple({5, 6})}));
  EXPECT_EQ(g.ValuesAtLevel(2), (std::vector<Tuple>{Tuple({-5, 4})}));
  EXPECT_EQ(g.ValuesAtLevel(3), (std::vector<Tuple>{Tuple({-5, 3})}));
  EXPECT_EQ(g.ValuesAtLevel(4), (std::vector<Tuple>{Tuple({5, 1})}));
  EXPECT_EQ(g.ValuesAtLevel(5), (std::vector<Tuple>{Tuple({-6, 0})}));

  // "the maximal f1-value being 6 does not show up in the top performer
  // val4" — rank(F) can discriminate against P1.
  Relation best = Bmo(r, p3);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best.at(0)[0], Value(5));  // not -6
}

// --- Example 6: preference engineering scenario ---------------------------

TEST(Example6, EngineeringScenarioTermsCompose) {
  PrefPtr p1 = PosPos("Category", {"cabriolet"}, {"roadster"});
  PrefPtr p2 = Pos("Transmission", {"automatic"});
  PrefPtr p3 = Around("Horsepower", 100);
  PrefPtr p4 = Lowest("Price");
  PrefPtr p5 = Neg("Color", {"gray"});
  PrefPtr q1 = Prioritized(p5, Prioritized(Pareto({p1, p2, p3}), p4));
  EXPECT_TRUE(SameAttributeSet(
      q1->attributes(),
      {"Color", "Category", "Transmission", "Horsepower", "Price"}));

  PrefPtr p6 = Highest("Year_of_construction");
  PrefPtr p7 = Highest("Commission");
  PrefPtr q2 = Prioritized(Prioritized(q1, p6), p7);
  EXPECT_EQ(q2->attributes().size(), 7u);

  // Leslie's adapted wish list Q1*.
  PrefPtr p8 = PosNeg("Color", {"blue"}, {"gray", "red"});
  PrefPtr q1star =
      Prioritized(Pareto({p5, p8, p4}), Pareto({p1, p2, p3}));
  EXPECT_TRUE(SameAttributeSet(
      q1star->attributes(),
      {"Color", "Category", "Transmission", "Horsepower", "Price"}));
  // Conflicting color preferences (P5 vs P8) must not crash anything:
  Relation cars(Schema{{"Color", ValueType::kString},
                       {"Category", ValueType::kString},
                       {"Transmission", ValueType::kString},
                       {"Horsepower", ValueType::kInt},
                       {"Price", ValueType::kInt}});
  cars.Add({"blue", "cabriolet", "manual", 110, 30000});
  cars.Add({"gray", "roadster", "automatic", 100, 25000});
  cars.Add({"red", "passenger", "automatic", 90, 20000});
  Relation best = Bmo(cars, q1star);
  EXPECT_GE(best.size(), 1u);
  EXPECT_EQ(CheckStrictPartialOrder(q1star, cars.schema(), cars.tuples()),
            "");
}

// --- Example 7: non-discrimination theorem on Car-DB ----------------------

class Example7 : public ::testing::Test {
 protected:
  Example7() : cars_(Schema{{"Price", ValueType::kInt},
                            {"Mileage", ValueType::kInt}}) {
    cars_.Add({40000, 15000});  // val1
    cars_.Add({35000, 30000});  // val2
    cars_.Add({20000, 10000});  // val3
    cars_.Add({15000, 35000});  // val4
    cars_.Add({15000, 30000});  // val5
    p1_ = Lowest("Price");
    p2_ = Lowest("Mileage");
  }
  Relation cars_;
  PrefPtr p1_, p2_;
};

TEST_F(Example7, ParetoGraphLevels) {
  // Level 1: val3 val5; Level 2: val1 val2 val4.
  BetterThanGraph g(cars_, Pareto(p1_, p2_));
  EXPECT_EQ(g.max_level(), 2u);
  EXPECT_EQ(g.ValuesAtLevel(1).size(), 2u);
  EXPECT_EQ(g.ValuesAtLevel(2).size(), 3u);
  Relation best = Bmo(cars_, Pareto(p1_, p2_));
  Relation expected(cars_.schema());
  expected.Add({20000, 10000});
  expected.Add({15000, 30000});
  EXPECT_TRUE(best.SameRows(expected));
}

TEST_F(Example7, PrioritizedChainsMatchPaper) {
  // P1 & P2 chain: val5 -> val4 -> val3 -> val2 -> val1.
  BetterThanGraph g12(cars_, Prioritized(p1_, p2_));
  EXPECT_EQ(g12.max_level(), 5u);
  EXPECT_EQ(g12.ValuesAtLevel(1),
            (std::vector<Tuple>{Tuple({15000, 30000})}));  // val5
  EXPECT_EQ(g12.ValuesAtLevel(5),
            (std::vector<Tuple>{Tuple({40000, 15000})}));  // val1
  // P2 & P1 chain: val3 -> val1 -> val5 -> val2 -> val4. Note the graph
  // projects in the preference's attribute order (Mileage, Price) here.
  BetterThanGraph g21(cars_, Prioritized(p2_, p1_));
  EXPECT_EQ(g21.max_level(), 5u);
  EXPECT_EQ(g21.ValuesAtLevel(1),
            (std::vector<Tuple>{Tuple({10000, 20000})}));  // val3
  EXPECT_EQ(g21.ValuesAtLevel(5),
            (std::vector<Tuple>{Tuple({35000, 15000})}));  // val4
}

TEST_F(Example7, NonDiscriminationEquivalenceOnCarDb) {
  PrefPtr lhs = Pareto(p1_, p2_);
  PrefPtr rhs = Intersection(Prioritized(p1_, p2_), Prioritized(p2_, p1_));
  auto res = CheckEquivalent(lhs, rhs, cars_);
  EXPECT_TRUE(res.equivalent) << res.counterexample;
}

// --- Example 8: BMO query on the EXPLICIT preference ----------------------

TEST(Example8, BmoReturnsYellowAndRed) {
  PrefPtr p = Explicit("Color", {{Value("green"), Value("yellow")},
                                 {Value("green"), Value("red")},
                                 {Value("yellow"), Value("white")}});
  Relation r(Schema{{"Color", ValueType::kString}});
  for (const char* c : {"yellow", "red", "green", "black"}) r.Add({Value(c)});
  Relation best = Bmo(r, p);
  EXPECT_EQ(SortedValues(best.tuples()),
            (std::vector<Value>{Value("red"), Value("yellow")}));
  // red is a perfect match (Def. 14b): maximal in the full domain order.
  Relation dom(Schema{{"Color", ValueType::kString}});
  std::vector<Tuple> universe;
  for (const char* c : {"white", "red", "yellow", "green", "brown", "black"}) {
    universe.push_back(Tuple({Value(c)}));
  }
  EXPECT_TRUE(IsPerfectMatch(Tuple({Value("red")}), r, p, universe));
  EXPECT_FALSE(IsPerfectMatch(Tuple({Value("yellow")}), r, p, universe));
}

// --- Example 9: non-monotonicity -------------------------------------------

TEST(Example9, QueryResultsAdaptToQualityNotQuantity) {
  PrefPtr p = Pareto(Highest("Fuel_Economy"), Highest("Insurance_Rating"));
  Schema s({{"Fuel_Economy", ValueType::kInt},
            {"Insurance_Rating", ValueType::kInt},
            {"Nickname", ValueType::kString}});
  Relation cars(s);
  cars.Add({100, 3, "frog"});
  cars.Add({50, 3, "cat"});
  Relation r1 = Bmo(cars, p);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1.at(0)[2], Value("frog"));

  cars.Add({50, 10, "shark"});
  Relation r2 = Bmo(cars, p);
  EXPECT_EQ(r2.size(), 2u);  // frog and shark

  cars.Add({100, 10, "turtle"});
  Relation r3 = Bmo(cars, p);
  ASSERT_EQ(r3.size(), 1u);
  EXPECT_EQ(r3.at(0)[2], Value("turtle"));
}

// --- Example 10: prioritized evaluation by grouping ------------------------

TEST(Example10, GroupedEvaluationMatchesPaper) {
  Schema s({{"Make", ValueType::kString},
            {"Price", ValueType::kInt},
            {"Oid", ValueType::kInt}});
  Relation cars(s);
  cars.Add({"Audi", 40000, 1});
  cars.Add({"BMW", 35000, 2});
  cars.Add({"VW", 20000, 3});
  cars.Add({"BMW", 50000, 4});

  PrefPtr p1 = AntiChain("Make");
  PrefPtr p2 = Around("Price", 40000);
  Relation result = Bmo(cars, Prioritized(p1, p2));
  Relation expected(s);
  expected.Add({"Audi", 40000, 1});
  expected.Add({"BMW", 35000, 2});
  expected.Add({"VW", 20000, 3});
  EXPECT_TRUE(result.SameRows(expected)) << result.ToString();

  // Same thing phrased as sigma[P2 groupby Make] (Def. 16).
  Relation grouped = BmoGroupBy(cars, p2, {"Make"});
  EXPECT_TRUE(grouped.SameRows(expected));
}

// --- Example 11: Pareto evaluation incl. YY --------------------------------

TEST(Example11, ParetoOfDualsReturnsEverything) {
  Relation r(Schema{{"A", ValueType::kInt}});
  r.Add({3});
  r.Add({6});
  r.Add({9});
  PrefPtr p1 = Lowest("A");
  PrefPtr p2 = Highest("A");
  Relation best = Bmo(r, Pareto(p1, p2));
  EXPECT_TRUE(best.SameRows(r)) << best.ToString();

  // The YY term contributes exactly {6}.
  PrefPtr pr12 = Prioritized(p1, p2);
  PrefPtr pr21 = Prioritized(p2, p1);
  std::vector<size_t> yy = YYIndices(r, pr12, pr21);
  ASSERT_EQ(yy.size(), 1u);
  EXPECT_EQ(r.at(yy[0])[0], Value(6));

  // And the decomposition evaluator agrees.
  EXPECT_EQ(BmoDecompositionIndices(r, Pareto(p1, p2)),
            (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace prefdb
