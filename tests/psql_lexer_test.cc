// Tests for the Preference SQL lexer.

#include "psql/lexer.h"

#include <gtest/gtest.h>

namespace prefdb::psql {
namespace {

TEST(LexerTest, TokenizesKeywordsCaseInsensitively) {
  auto toks = Tokenize("select FROM Preferring");
  ASSERT_EQ(toks.size(), 4u);  // incl. end
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_TRUE(toks[1].IsKeyword("FROM"));
  EXPECT_TRUE(toks[2].IsKeyword("PREFERRING"));
  EXPECT_TRUE(toks[3].Is(TokenType::kEnd));
}

TEST(LexerTest, PreservesIdentifierCase) {
  auto toks = Tokenize("Price");
  EXPECT_EQ(toks[0].text, "Price");
  EXPECT_EQ(toks[0].upper, "PRICE");
}

TEST(LexerTest, Numbers) {
  auto toks = Tokenize("42 3.5 1e3");
  EXPECT_EQ(toks[0].number, 42.0);
  EXPECT_EQ(toks[1].number, 3.5);
  EXPECT_EQ(toks[2].number, 1000.0);
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  auto toks = Tokenize("'red' 'O''Brien'");
  EXPECT_EQ(toks[0].text, "red");
  EXPECT_EQ(toks[1].text, "O'Brien");
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(Tokenize("'abc"), SyntaxError);
}

TEST(LexerTest, MultiCharOperators) {
  auto toks = Tokenize("<> != <= >= < > =");
  EXPECT_TRUE(toks[0].IsSymbol("<>"));
  EXPECT_TRUE(toks[1].IsSymbol("!="));
  EXPECT_TRUE(toks[2].IsSymbol("<="));
  EXPECT_TRUE(toks[3].IsSymbol(">="));
  EXPECT_TRUE(toks[4].IsSymbol("<"));
  EXPECT_TRUE(toks[5].IsSymbol(">"));
  EXPECT_TRUE(toks[6].IsSymbol("="));
}

TEST(LexerTest, LineCommentsSkipped) {
  auto toks = Tokenize("SELECT -- comment here\n *");
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_TRUE(toks[1].IsSymbol("*"));
}

TEST(LexerTest, PunctuationAndPositions) {
  auto toks = Tokenize("(a, b);");
  EXPECT_TRUE(toks[0].IsSymbol("("));
  EXPECT_TRUE(toks[2].IsSymbol(","));
  EXPECT_TRUE(toks[4].IsSymbol(")"));
  EXPECT_TRUE(toks[5].IsSymbol(";"));
  EXPECT_EQ(toks[0].position, 0u);
  EXPECT_EQ(toks[1].position, 1u);
}

TEST(LexerTest, UnexpectedCharacterThrowsWithOffset) {
  try {
    Tokenize("SELECT $");
    FAIL() << "expected SyntaxError";
  } catch (const SyntaxError& e) {
    EXPECT_EQ(e.position(), 7u);
  }
}

TEST(LexerTest, EmptyInputYieldsEndToken) {
  auto toks = Tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_TRUE(toks[0].Is(TokenType::kEnd));
}

}  // namespace
}  // namespace prefdb::psql
