// Tests for the Preference SQL lexer.

#include "psql/lexer.h"

#include <gtest/gtest.h>

namespace prefdb::psql {
namespace {

TEST(LexerTest, TokenizesKeywordsCaseInsensitively) {
  auto toks = Tokenize("select FROM Preferring");
  ASSERT_EQ(toks.size(), 4u);  // incl. end
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_TRUE(toks[1].IsKeyword("FROM"));
  EXPECT_TRUE(toks[2].IsKeyword("PREFERRING"));
  EXPECT_TRUE(toks[3].Is(TokenType::kEnd));
}

TEST(LexerTest, PreservesIdentifierCase) {
  auto toks = Tokenize("Price");
  EXPECT_EQ(toks[0].text, "Price");
  EXPECT_EQ(toks[0].upper, "PRICE");
}

TEST(LexerTest, Numbers) {
  auto toks = Tokenize("42 3.5 1e3");
  EXPECT_EQ(toks[0].number, 42.0);
  EXPECT_EQ(toks[1].number, 3.5);
  EXPECT_EQ(toks[2].number, 1000.0);
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  auto toks = Tokenize("'red' 'O''Brien'");
  EXPECT_EQ(toks[0].text, "red");
  EXPECT_EQ(toks[1].text, "O'Brien");
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(Tokenize("'abc"), SyntaxError);
}

TEST(LexerTest, MultiCharOperators) {
  auto toks = Tokenize("<> != <= >= < > =");
  EXPECT_TRUE(toks[0].IsSymbol("<>"));
  EXPECT_TRUE(toks[1].IsSymbol("!="));
  EXPECT_TRUE(toks[2].IsSymbol("<="));
  EXPECT_TRUE(toks[3].IsSymbol(">="));
  EXPECT_TRUE(toks[4].IsSymbol("<"));
  EXPECT_TRUE(toks[5].IsSymbol(">"));
  EXPECT_TRUE(toks[6].IsSymbol("="));
}

TEST(LexerTest, LineCommentsSkipped) {
  auto toks = Tokenize("SELECT -- comment here\n *");
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_TRUE(toks[1].IsSymbol("*"));
}

TEST(LexerTest, PunctuationAndPositions) {
  auto toks = Tokenize("(a, b);");
  EXPECT_TRUE(toks[0].IsSymbol("("));
  EXPECT_TRUE(toks[2].IsSymbol(","));
  EXPECT_TRUE(toks[4].IsSymbol(")"));
  EXPECT_TRUE(toks[5].IsSymbol(";"));
  EXPECT_EQ(toks[0].position, 0u);
  EXPECT_EQ(toks[1].position, 1u);
}

TEST(LexerTest, UnexpectedCharacterThrowsWithOffset) {
  try {
    Tokenize("SELECT $");
    FAIL() << "expected SyntaxError";
  } catch (const SyntaxError& e) {
    EXPECT_EQ(e.position(), 7u);
  }
}

TEST(LexerTest, EmptyInputYieldsEndToken) {
  auto toks = Tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_TRUE(toks[0].Is(TokenType::kEnd));
}

TEST(LexerTest, LocateOffsetCountsLinesAndColumns) {
  const std::string sql = "SELECT *\nFROM car\nWHERE x = 1";
  EXPECT_EQ(LocateOffset(sql, 0).line, 1u);
  EXPECT_EQ(LocateOffset(sql, 0).column, 1u);
  EXPECT_EQ(LocateOffset(sql, 7).column, 8u);
  SourcePosition from = LocateOffset(sql, 9);  // 'F' of FROM
  EXPECT_EQ(from.line, 2u);
  EXPECT_EQ(from.column, 1u);
  SourcePosition x = LocateOffset(sql, 24);  // 'x' on line 3
  EXPECT_EQ(x.line, 3u);
  EXPECT_EQ(x.column, 7u);
  // Past-the-end offsets clamp instead of overflowing.
  EXPECT_EQ(LocateOffset(sql, 10000).line, 3u);
}

TEST(LexerTest, FormatSyntaxErrorPointsCaretAtOffendingColumn) {
  const std::string sql = "SELECT $";
  try {
    Tokenize(sql);
    FAIL() << "expected SyntaxError";
  } catch (const SyntaxError& e) {
    std::string report = FormatSyntaxError(sql, e);
    EXPECT_NE(report.find("line 1, column 8"), std::string::npos) << report;
    EXPECT_NE(report.find("SELECT $"), std::string::npos);
    // Caret sits under the '$' (two-space indent + 7 columns).
    EXPECT_NE(report.find("\n  " + std::string(7, ' ') + "^"),
              std::string::npos)
        << report;
    // The raw "(at offset N)" suffix is replaced by line/column.
    EXPECT_EQ(report.find("at offset"), std::string::npos);
  }
}

TEST(LexerTest, FormatSyntaxErrorReportsCorrectLineInMultilineInput) {
  const std::string sql = "SELECT *\nFROM car\nWHERE # = 1";
  try {
    Tokenize(sql);
    FAIL() << "expected SyntaxError";
  } catch (const SyntaxError& e) {
    std::string report = FormatSyntaxError(sql, e);
    EXPECT_NE(report.find("line 3, column 7"), std::string::npos) << report;
    EXPECT_NE(report.find("WHERE # = 1"), std::string::npos);
    EXPECT_EQ(report.find("SELECT *"), std::string::npos)
        << "only the offending line is echoed: " << report;
  }
}

}  // namespace
}  // namespace prefdb::psql
