// Experiment harness E1-E11 + H1 (see DESIGN.md): regenerates every
// in-text figure and worked example of the paper and checks it against the
// published result. Output is a side-by-side "paper says / we measure"
// protocol; any mismatch flips the process exit code.

#include <cstdio>
#include <string>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): experiment driver, brevity wins

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what.c_str());
  if (!ok) ++g_failures;
}

void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n') c = ';';
  }
  return s;
}

void Example1() {
  Section("E1 / Example 1: EXPLICIT color preference");
  PrefPtr p = Explicit("Color", {{Value("green"), Value("yellow")},
                                 {Value("green"), Value("red")},
                                 {Value("yellow"), Value("white")}});
  Relation dom(Schema{{"Color", ValueType::kString}});
  for (const char* c : {"white", "red", "yellow", "green", "brown", "black"}) {
    dom.Add({Value(c)});
  }
  BetterThanGraph g(dom, p);
  std::printf("  better-than graph:\n%s", g.ToText().c_str());
  Check(g.max_level() == 4, "graph has 4 levels (paper: 4)");
  Check(g.ValuesAtLevel(1).size() == 2, "white, red maximal at level 1");
  Check(g.ValuesAtLevel(4).size() == 2, "brown, black minimal at level 4");
}

void Example2And4() {
  Section("E2/E4 / Examples 2+4: Pareto and prioritized accumulation");
  Relation r(Schema{{"A1", ValueType::kInt},
                    {"A2", ValueType::kInt},
                    {"A3", ValueType::kInt}});
  r.Add({-5, 3, 4});
  r.Add({-5, 4, 4});
  r.Add({5, 1, 8});
  r.Add({5, 6, 6});
  r.Add({-6, 0, 6});
  r.Add({-6, 0, 4});
  r.Add({6, 2, 7});
  PrefPtr p1 = Around("A1", 0);
  PrefPtr p2 = Lowest("A2");
  PrefPtr p3 = Highest("A3");

  PrefPtr p4 = Pareto(Pareto(p1, p2), p3);
  Relation best = Bmo(r, p4);
  std::printf("  P4 = (P1 (x) P2) (x) P3, Pareto-optimal set:\n");
  std::printf("%s", best.ToString().c_str());
  Check(best.size() == 3, "Pareto-optimal set = {val1, val3, val5} (3 rows)");

  BetterThanGraph g4(r, p4);
  Check(g4.max_level() == 2, "P4 graph has 2 levels (paper figure)");

  PrefPtr p8 = Prioritized(p1, p2);
  BetterThanGraph g8(r.Project({"A1", "A2"}), p8);
  std::printf("  P8 = P1 & P2 graph:\n%s", g8.ToText().c_str());
  Check(g8.max_level() == 3, "P8 graph has 3 levels (paper figure)");

  PrefPtr p9 = Prioritized(Pareto(p1, p2), p3);
  BetterThanGraph g9(r, p9);
  Check(g9.max_level() == 2, "P9 graph has 2 levels (paper figure)");
  Check(Bmo(r, p9).SameRows(best), "P9 level 1 = {val1, val3, val5}");
}

void Example3() {
  Section("E3 / Example 3: Pareto on shared attribute Color");
  PrefPtr p7 = Pareto(Pos("Color", {"green", "yellow"}),
                      Neg("Color", {"red", "green", "blue", "purple"}));
  Relation s(Schema{{"Color", ValueType::kString}});
  for (const char* c : {"red", "green", "yellow", "blue", "black", "purple"}) {
    s.Add({Value(c)});
  }
  BetterThanGraph g(s, p7);
  std::printf("%s", g.ToText().c_str());
  Check(g.max_level() == 2, "2 levels");
  Check(g.ValuesAtLevel(1).size() == 3,
        "level 1 = {yellow, green, black} (non-discriminating compromise)");
}

void Example5() {
  Section("E5 / Example 5: rank(F) with weighted sum");
  Relation r(Schema{{"A1", ValueType::kInt}, {"A2", ValueType::kInt}});
  r.Add({-5, 3});
  r.Add({-5, 4});
  r.Add({5, 1});
  r.Add({5, 6});
  r.Add({-6, 0});
  r.Add({-6, 0});
  PrefPtr p1 = Score(
      "A1", [](const Value& v) { return std::abs(*v.numeric()); }, "f1");
  PrefPtr p2 = Score(
      "A2", [](const Value& v) { return std::abs(*v.numeric() + 2.0); },
      "f2");
  PrefPtr p3 = Rank(
      [](const std::vector<double>& s) { return s[0] + 2.0 * s[1]; },
      "x1+2*x2", {p1, p2});
  BetterThanGraph g(r, p3);
  std::printf("%s", g.ToText().c_str());
  Check(g.max_level() == 5, "5 levels (paper: chain-like with 5 levels)");
  Relation top = Bmo(r, p3);
  Check(top.size() == 1 && top.at(0)[0] == Value(5),
        "top performer val4 = (5, 6) — discriminates against P1's max 6");
}

void Example6() {
  Section("E6 / Example 6: preference engineering scenario");
  PrefPtr q1 = Prioritized(
      Neg("Color", {"gray"}),
      Prioritized(Pareto({PosPos("Category", {"cabriolet"}, {"roadster"}),
                          Pos("Transmission", {"automatic"}),
                          Around("Horsepower", 100)}),
                  Lowest("Price")));
  std::printf("  Q1 = %s\n", OneLine(q1->ToString()).c_str());
  Check(q1->attributes().size() == 5, "Q1 spans 5 attributes");
  PrefPtr q2 = Prioritized(
      Prioritized(q1, Highest("Year_of_construction")),
      Highest("Commission"));
  Check(q2->attributes().size() == 7,
        "Q2 mixes customer, dealer and vendor preferences (7 attributes)");
}

void Example7() {
  Section("E7 / Example 7: non-discrimination theorem on Car-DB");
  Relation cars(
      Schema{{"Price", ValueType::kInt}, {"Mileage", ValueType::kInt}});
  cars.Add({40000, 15000});
  cars.Add({35000, 30000});
  cars.Add({20000, 10000});
  cars.Add({15000, 35000});
  cars.Add({15000, 30000});
  PrefPtr p1 = Lowest("Price");
  PrefPtr p2 = Lowest("Mileage");
  BetterThanGraph g(cars, Pareto(p1, p2));
  std::printf("  P1 (x) P2 graph:\n%s", g.ToText().c_str());
  Check(g.max_level() == 2 && g.ValuesAtLevel(1).size() == 2,
        "level 1 = {val3, val5}");
  auto res = CheckEquivalent(
      Pareto(p1, p2),
      Intersection(Prioritized(p1, p2), Prioritized(p2, p1)), cars);
  Check(res.equivalent, "P1 (x) P2 == (P1 & P2) <> (P2 & P1) on Car-DB");
}

void Example8() {
  Section("E8 / Example 8: BMO query on EXPLICIT preference");
  PrefPtr p = Explicit("Color", {{Value("green"), Value("yellow")},
                                 {Value("green"), Value("red")},
                                 {Value("yellow"), Value("white")}});
  Relation r(Schema{{"Color", ValueType::kString}});
  for (const char* c : {"yellow", "red", "green", "black"}) r.Add({Value(c)});
  Relation best = Bmo(r, p);
  std::printf("%s", best.ToString().c_str());
  Check(best.size() == 2, "sigma[P](R) = {yellow, red}");
}

void Example9() {
  Section("E9 / Example 9: non-monotonicity of BMO results");
  PrefPtr p = Pareto(Highest("Fuel_Economy"), Highest("Insurance_Rating"));
  Relation cars(Schema{{"Fuel_Economy", ValueType::kInt},
                       {"Insurance_Rating", ValueType::kInt},
                       {"Nickname", ValueType::kString}});
  cars.Add({100, 3, "frog"});
  cars.Add({50, 3, "cat"});
  size_t s1 = Bmo(cars, p).size();
  cars.Add({50, 10, "shark"});
  size_t s2 = Bmo(cars, p).size();
  cars.Add({100, 10, "turtle"});
  size_t s3 = Bmo(cars, p).size();
  std::printf("  |R|=2 -> %zu winners, |R|=3 -> %zu, |R|=4 -> %zu\n", s1, s2,
              s3);
  Check(s1 == 1 && s2 == 2 && s3 == 1,
        "result sizes 1 -> 2 -> 1: adapts to quality, not quantity");
}

void Example10() {
  Section("E10 / Example 10: prioritized evaluation via grouping");
  Relation cars(Schema{{"Make", ValueType::kString},
                       {"Price", ValueType::kInt},
                       {"Oid", ValueType::kInt}});
  cars.Add({"Audi", 40000, 1});
  cars.Add({"BMW", 35000, 2});
  cars.Add({"VW", 20000, 3});
  cars.Add({"BMW", 50000, 4});
  Relation result =
      Bmo(cars, Prioritized(AntiChain("Make"), Around("Price", 40000)));
  std::printf("%s", result.ToString().c_str());
  Check(result.size() == 3, "one best offer per make (oids 1, 2, 3)");
}

void Example11() {
  Section("E11 / Example 11: Pareto evaluation incl. YY set");
  Relation r(Schema{{"A", ValueType::kInt}});
  r.Add({3});
  r.Add({6});
  r.Add({9});
  PrefPtr p1 = Lowest("A");
  PrefPtr p2 = Highest("A");
  std::vector<size_t> yy =
      YYIndices(r, Prioritized(p1, p2), Prioritized(p2, p1));
  Check(yy.size() == 1 && r.at(yy[0])[0] == Value(6),
        "YY(P1&P2, P2&P1)_R = {6}");
  Check(Bmo(r, Pareto(p1, p2)).SameRows(r),
        "sigma[P1 (x) P2](R) = R = {3, 6, 9}");
}

void Hierarchy() {
  Section("H1 / Section 3.4: sub-constructor hierarchy");
  using K = PreferenceKind;
  struct Edge {
    K sub, super;
    const char* text;
  };
  const Edge edges[] = {
      {K::kPos, K::kPosPos, "POS is-a POS/POS"},
      {K::kPos, K::kPosNeg, "POS is-a POS/NEG"},
      {K::kNeg, K::kPosNeg, "NEG is-a POS/NEG"},
      {K::kPosPos, K::kExplicit, "POS/POS is-a EXPLICIT"},
      {K::kAround, K::kBetween, "AROUND is-a BETWEEN"},
      {K::kBetween, K::kScore, "BETWEEN is-a SCORE"},
      {K::kLowest, K::kScore, "LOWEST is-a SCORE"},
      {K::kHighest, K::kScore, "HIGHEST is-a SCORE"},
      {K::kIntersection, K::kPareto, "'<>' is-a '(x)'"},
      {K::kPrioritized, K::kRankF, "'&' is-a rank(F)"},
  };
  for (const Edge& e : edges) {
    Check(IsSubConstructorOf(e.sub, e.super), e.text);
  }
}

}  // namespace

int main() {
  std::printf("prefdb reproduction harness: paper examples (Kiessling, "
              "VLDB 2002)\n");
  Example1();
  Example2And4();
  Example3();
  Example5();
  Example6();
  Example7();
  Example8();
  Example9();
  Example10();
  Example11();
  Hierarchy();
  std::printf("\n%s (%d mismatches)\n",
              g_failures == 0 ? "ALL PAPER EXAMPLES REPRODUCED"
                              : "REPRODUCTION FAILURES",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
