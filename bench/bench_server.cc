// Load driver + integration checker for the preference query server.
//
// Two modes, both replaying the committed query mix (bench/query_mix.sql)
// through src/server/client.h against a real TCP server:
//
//   --mode load    closed-loop replay at fixed concurrency and pipeline
//                  depth: C client threads each keep up to D requests in
//                  flight over protocol v2 (D=1 degenerates to the classic
//                  blocking request/response loop). Reports p50/p99
//                  per-query latency and sustained QPS, and (with --out)
//                  writes Google-Benchmark-shaped JSON families so the CI
//                  perf gate (bench/compare.py) can diff them against the
//                  committed bench/baselines/BENCH_server.json:
//                    server_cold_anchor       single-threaded cold-engine
//                                             median latency — the
//                                             machine-speed normalizer
//                    server_mix_c<C>_p50      median served latency
//                    server_mix_c<C>_p99      tail latency (report-only:
//                                             not in the baseline file)
//                    server_mix_c<C>_throughput_us
//                                             wall-clock µs per completed
//                                             query (inverse QPS)
//                  In-process runs add the pipelining scenarios on a small
//                  second table set (--pipe-rows) where per-request wire
//                  overhead dominates execution:
//                    server_pipe_c<C>_d1_throughput_us   blocking replay
//                    server_pipe_c<C>_d8_throughput_us   depth-8 pipeline
//                    server_mixed_c256_throughput_us     256 sessions, odd
//                                             ones also holding a skyline
//                                             subscription
//                  The driver enforces the pipelining acceptance ratio
//                  in-process: depth-8 must clear at least --pipe-gate x
//                  the depth-1 throughput or the run exits nonzero.
//   --mode check   replays the mix (cold + warm cache passes) over
//                  --sessions concurrent connections and byte-compares
//                  every result against single-threaded Engine::Execute on
//                  identical data; odd sessions also subscribe to the car
//                  skyline and verify the bootstrap resync row set. Any
//                  divergence exits nonzero. The CI integration-smoke step
//                  runs this at --sessions 1; the mixed-load ctest entry
//                  runs it at --sessions 256.
//
// By default the driver hosts the server in-process on an ephemeral
// loopback port (still full TCP through the kernel); --connect host:port
// targets an external server instead (e.g. examples/serve.cc), which must
// hold the same datagen tables (same --rows/--seed). Pipelining scenarios
// need their own small in-process table set, so they are skipped under
// --connect.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "prefdb.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins
using Clock = std::chrono::steady_clock;

constexpr const char* kSubscribeSql =
    "SELECT * FROM car PREFERRING LOWEST(price)";

struct DriverOptions {
  std::string mode = "load";
  std::string mix_path = "bench/query_mix.sql";
  std::string connect;  // "host:port", empty = in-process server
  std::string out;      // JSON path, empty = stdout summary only
  size_t rows = 20000;
  uint64_t seed = 42;
  size_t clients = 16;
  size_t per_client = 120;  // queries per client thread
  size_t repeat = 3;        // anchor replays of the mix
  size_t workers = 0;       // server workers (0 = hardware)
  size_t depth = 1;         // pipeline window per client (load mode)
  size_t sessions = 1;      // concurrent sessions (check mode)
  size_t pipe_rows = 64;    // table size for the pipelining scenarios
  double pipe_gate = 2.0;   // required d8/d1 throughput ratio (0 = off)
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--mode load|check] [--mix FILE] [--connect HOST:PORT]\n"
      "          [--rows N] [--seed S] [--clients C] [--per-client Q]\n"
      "          [--repeat R] [--workers W] [--depth D] [--sessions N]\n"
      "          [--pipe-rows N] [--pipe-gate RATIO]\n"
      "          [--out BENCH_server.json]\n",
      argv0);
  std::exit(2);
}

DriverOptions ParseArgs(int argc, char** argv) {
  DriverOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--mode") opt.mode = next();
    else if (arg == "--mix") opt.mix_path = next();
    else if (arg == "--connect") opt.connect = next();
    else if (arg == "--out") opt.out = next();
    else if (arg == "--rows") opt.rows = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--seed") opt.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--clients") opt.clients = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--per-client") opt.per_client = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--repeat") opt.repeat = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--workers") opt.workers = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--depth") opt.depth = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--sessions") opt.sessions = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--pipe-rows") opt.pipe_rows = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--pipe-gate") opt.pipe_gate = std::strtod(next().c_str(), nullptr);
    else Usage(argv[0]);
  }
  if (opt.mode != "load" && opt.mode != "check") Usage(argv[0]);
  if (opt.clients == 0 || opt.per_client == 0 || opt.repeat == 0 ||
      opt.depth == 0 || opt.sessions == 0) {
    Usage(argv[0]);
  }
  return opt;
}

std::vector<std::string> LoadMix(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open query mix '%s'\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::string> queries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    queries.push_back(line);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "query mix '%s' holds no statements\n", path.c_str());
    std::exit(2);
  }
  return queries;
}

void RegisterTables(Engine* engine, size_t rows, uint64_t seed) {
  engine->RegisterTable("car", GenerateCars(rows, seed));
  engine->RegisterTable("trip", GenerateTrips(rows, seed + 1));
}

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

Endpoint ParseConnect(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                 spec.c_str());
    std::exit(2);
  }
  return {spec.substr(0, colon),
          static_cast<uint16_t>(std::strtoul(spec.c_str() + colon + 1,
                                             nullptr, 10))};
}

/// Connects with retries: an externally started server (CI smoke step)
/// may still be binding when the driver launches.
server::Client ConnectWithRetry(const Endpoint& endpoint) {
  for (int attempt = 0;; ++attempt) {
    try {
      server::Client client;
      client.Connect(endpoint.host, endpoint.port);
      return client;
    } catch (const std::runtime_error&) {
      if (attempt >= 50) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

double PercentileNs(std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ns.size()));
  if (idx >= sorted_ns.size()) idx = sorted_ns.size() - 1;
  return static_cast<double>(sorted_ns[idx]);
}

std::vector<std::string> RowSet(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(t.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> RowSet(const Relation& rel) {
  return RowSet(rel.tuples());
}

struct JsonFamily {
  std::string name;
  double real_time_ns = 0.0;
};

void WriteBenchJson(const std::string& path,
                    const std::vector<JsonFamily>& families,
                    const DriverOptions& opt) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    std::exit(2);
  }
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"bench_server\",\n"
      << "    \"rows\": " << opt.rows << ",\n"
      << "    \"clients\": " << opt.clients << ",\n"
      << "    \"per_client\": " << opt.per_client << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < families.size(); ++i) {
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "    {\"name\": \"%s\", \"run_name\": \"%s\", "
                  "\"run_type\": \"iteration\", \"real_time\": %.1f, "
                  "\"cpu_time\": 0.0, \"time_unit\": \"ns\"}%s\n",
                  families[i].name.c_str(), families[i].name.c_str(),
                  families[i].real_time_ns,
                  i + 1 < families.size() ? "," : "");
    out << entry;
  }
  out << "  ]\n}\n";
}

// --- load mode -----------------------------------------------------------

struct ScenarioResult {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double throughput_ns = 0.0;  // wall-clock ns per completed query
  size_t total = 0;
};

/// Closed-loop replay: `clients` threads, each keeping up to `depth`
/// pipelined requests in flight (depth 1 == the classic blocking loop).
/// Odd-numbered threads additionally hold a skyline subscription when
/// `subscribe_odd`, so delta bootstrap frames interleave with pipelined
/// responses on those connections. Returns false on any failed query.
bool RunScenario(const Endpoint& endpoint,
                 const std::vector<std::string>& mix, size_t clients,
                 size_t depth, size_t per_client, bool subscribe_odd,
                 ScenarioResult* out) {
  std::vector<std::vector<uint64_t>> latencies(clients);
  std::atomic<size_t> errors{0};
  std::atomic<size_t> started{0};
  Clock::time_point wall0;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    std::atomic<bool> go{false};
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        try {
          server::Client client = ConnectWithRetry(endpoint);
          if (subscribe_odd && c % 2 == 1) {
            if (!client.Subscribe(kSubscribeSql).ok ||
                !client.ReadDelta(5000).has_value()) {
              errors.fetch_add(1);
            }
          }
          started.fetch_add(1);
          while (!go.load()) std::this_thread::yield();
          std::vector<uint64_t>& mine = latencies[c];
          mine.reserve(per_client);
          // Sliding window: prime `depth` sends, then retire the oldest
          // and immediately refill until the quota is spent. Latency is
          // send-to-retire, so at depth > 1 it includes pipeline queueing
          // — the throughput family is the depth-sensitive number.
          std::deque<std::pair<server::Client::ResponseFuture,
                               Clock::time_point>>
              window;
          size_t sent = 0;
          auto send_next = [&] {
            const std::string& sql = mix[(c + sent) % mix.size()];
            window.emplace_back(client.SendQuery(sql), Clock::now());
            ++sent;
          };
          while (sent < per_client && window.size() < depth) send_next();
          while (!window.empty()) {
            auto entry = std::move(window.front());
            window.pop_front();
            server::ClientResponse response = entry.first.Get();
            mine.push_back(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - entry.second)
                    .count()));
            if (!response.ok) errors.fetch_add(1);
            if (sent < per_client) send_next();
          }
          client.Goodbye();
        } catch (const std::exception& e) {
          std::fprintf(stderr, "session %zu died: %s\n", c, e.what());
          errors.fetch_add(1);
          started.fetch_add(1);  // never block the barrier
        }
      });
    }
    while (started.load() < clients) std::this_thread::yield();
    wall0 = Clock::now();
    go.store(true);
    for (auto& t : threads) t.join();
  }
  double wall_s = std::chrono::duration<double>(Clock::now() - wall0).count();

  std::vector<uint64_t> all_ns;
  for (auto& per : latencies) {
    all_ns.insert(all_ns.end(), per.begin(), per.end());
  }
  std::sort(all_ns.begin(), all_ns.end());
  if (errors.load() > 0 || all_ns.size() != clients * per_client) {
    std::fprintf(stderr, "%zu/%zu served queries failed\n", errors.load(),
                 clients * per_client);
    return false;
  }
  out->total = all_ns.size();
  out->p50_ns = PercentileNs(all_ns, 0.5);
  out->p99_ns = PercentileNs(all_ns, 0.99);
  out->throughput_ns = wall_s * 1e9 / static_cast<double>(all_ns.size());
  return true;
}

int RunLoad(const DriverOptions& opt,
            const std::vector<std::string>& mix,
            const Endpoint& endpoint,
            const Endpoint* pipe_endpoint) {
  // Anchor: the whole mix executed back-to-back on a cache-less
  // single-threaded engine — the machine-speed proxy every served family
  // is normalized by in the perf gate. One untimed warm-up pass, then the
  // MINIMUM over the timed passes: noise (scheduler, frequency scaling)
  // only ever adds time, so min-of-passes is far more stable than a
  // per-query median on a loaded runner.
  double anchor_ns = 0.0;
  {
    EngineOptions cold;
    cold.enable_plan_cache = false;
    cold.enable_exec_cache = false;
    cold.bmo = server::ServerOptions::DefaultSessionBmo();
    Engine engine(cold);
    RegisterTables(&engine, opt.rows, opt.seed);
    uint64_t best_pass_ns = UINT64_MAX;
    for (size_t r = 0; r < opt.repeat + 1; ++r) {
      Clock::time_point t0 = Clock::now();
      for (const std::string& sql : mix) {
        auto result = engine.Execute(sql);
        if (result.relation.empty() && result.utilities.empty()) {
          // Every mix statement returns rows on the datagen tables; an
          // empty answer means the mix and the data went out of sync.
          std::fprintf(stderr, "anchor query returned nothing: %s\n",
                       sql.c_str());
          return 1;
        }
      }
      uint64_t pass_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
      if (r > 0) best_pass_ns = std::min(best_pass_ns, pass_ns);
    }
    anchor_ns = static_cast<double>(best_pass_ns) /
                static_cast<double>(mix.size());
  }

  // Main closed-loop replay at the requested concurrency and depth.
  ScenarioResult mixed;
  if (!RunScenario(endpoint, mix, opt.clients, opt.depth, opt.per_client,
                   /*subscribe_odd=*/false, &mixed)) {
    return 1;
  }

  std::printf("replayed %zu queries over %zu sessions (depth %zu) in %.2fs\n",
              mixed.total, opt.clients, opt.depth,
              mixed.throughput_ns * static_cast<double>(mixed.total) / 1e9);
  std::printf("  anchor (cold 1-thread, best pass) %10.3f ms\n",
              anchor_ns / 1e6);
  std::printf("  p50  %10.3f ms\n", mixed.p50_ns / 1e6);
  std::printf("  p99  %10.3f ms\n", mixed.p99_ns / 1e6);
  std::printf("  QPS  %10.1f (%.3f ms/query wall)\n",
              1e9 / mixed.throughput_ns, mixed.throughput_ns / 1e6);

  std::string c = std::to_string(opt.clients);
  std::vector<JsonFamily> families = {
      {"server_cold_anchor", anchor_ns},
      {"server_mix_c" + c + "_p50", mixed.p50_ns},
      {"server_mix_c" + c + "_p99", mixed.p99_ns},
      {"server_mix_c" + c + "_throughput_us", mixed.throughput_ns},
  };

  // Pipelining scenarios: small tables and low session count — the
  // latency-bound regime pipelining exists for. At depth 1 each query
  // serializes client encode → server execute → client parse across a
  // full round trip; at depth 8 those stages overlap across in-flight
  // requests, so throughput approaches the slowest single stage instead
  // of their sum. Skipped under --connect (the external server holds the
  // wrong table sizes).
  if (pipe_endpoint != nullptr) {
    // Depth-1 over two sessions is the protocol-v1-equivalent
    // request/response baseline the acceptance ratio is measured against.
    // Each scenario takes the fastest of --repeat passes: scheduler noise
    // only ever adds time, and these sub-second replays are too short for
    // a single pass to be trustworthy on a loaded runner.
    constexpr size_t kPipeClients = 2;
    size_t pipe_per_client = std::max<size_t>(opt.per_client, 4096);
    auto best_of = [&](size_t clients, size_t depth, size_t per_client,
                       bool subscribe_odd, ScenarioResult* out) {
      for (size_t r = 0; r < opt.repeat + 2; ++r) {
        ScenarioResult pass;
        if (!RunScenario(*pipe_endpoint, mix, clients, depth, per_client,
                         subscribe_odd, &pass)) {
          return false;
        }
        if (r == 0 || pass.throughput_ns < out->throughput_ns) *out = pass;
      }
      return true;
    };
    ScenarioResult d1, d8, wide;
    if (!best_of(kPipeClients, 1, pipe_per_client, false, &d1) ||
        !best_of(kPipeClients, 8, pipe_per_client, false, &d8)) {
      return 1;
    }
    double speedup = d1.throughput_ns / d8.throughput_ns;
    std::printf("pipelining on %zu-row tables, c%zu x %zu queries:\n",
                opt.pipe_rows, kPipeClients, pipe_per_client);
    std::printf("  depth 1 %10.3f us/query\n", d1.throughput_ns / 1e3);
    std::printf("  depth 8 %10.3f us/query  (%.2fx)\n",
                d8.throughput_ns / 1e3, speedup);
    families.push_back({"server_pipe_c2_d1_throughput_us",
                        d1.throughput_ns});
    families.push_back({"server_pipe_c2_d8_throughput_us",
                        d8.throughput_ns});

    // 256 mixed sessions: every session pipelines at depth 4, odd ones
    // also hold a skyline subscription so delta frames share the wire.
    if (!best_of(256, 4, 32, /*subscribe_odd=*/true, &wide)) {
      return 1;
    }
    std::printf("  256-session mixed %10.3f us/query\n",
                wide.throughput_ns / 1e3);
    families.push_back({"server_mixed_c256_throughput_us",
                        wide.throughput_ns});

    // The acceptance gate requires the host to be able to overlap the
    // pipeline stages at all: with the client thread, event loop, and
    // worker time-slicing one core, every stage is serialized no matter
    // the depth, and the ratio measures scheduler noise rather than the
    // protocol. Enforce on >= 4 hardware threads, report otherwise.
    if (opt.pipe_gate > 0.0) {
      if (std::thread::hardware_concurrency() >= 4) {
        if (speedup < opt.pipe_gate) {
          std::fprintf(stderr,
                       "FAIL: depth-8 pipelining delivered %.2fx the "
                       "depth-1 throughput, below the %.2fx acceptance "
                       "gate\n",
                       speedup, opt.pipe_gate);
          return 1;
        }
      } else {
        std::printf(
            "  (gate %.2fx reported only: %u hardware threads cannot "
            "overlap pipeline stages)\n",
            opt.pipe_gate, std::thread::hardware_concurrency());
      }
    }
  }

  if (!opt.out.empty()) {
    WriteBenchJson(opt.out, families, opt);
    std::printf("wrote %s\n", opt.out.c_str());
  }
  return 0;
}

// --- check mode ----------------------------------------------------------

int RunCheck(const DriverOptions& opt,
             const std::vector<std::string>& mix,
             const Endpoint& endpoint) {
  // One single-threaded reference pass up front; every session compares
  // served bytes against these exact results. (The served tables are
  // read-only in check mode, so one snapshot serves all passes.)
  Engine reference;
  RegisterTables(&reference, opt.rows, opt.seed);
  std::vector<psql::QueryResult> expected;
  expected.reserve(mix.size());
  for (const std::string& sql : mix) {
    expected.push_back(
        reference.Execute(sql, server::ServerOptions::DefaultSessionBmo()));
  }
  std::vector<std::string> expected_skyline =
      RowSet(reference.Execute(kSubscribeSql).relation);

  std::atomic<size_t> failures{0};
  std::atomic<size_t> checked{0};
  auto run_session = [&](size_t s) {
    try {
      server::Client client = ConnectWithRetry(endpoint);
      // Odd sessions hold a live subscription through both passes; its
      // bootstrap resync must carry exactly the reference skyline.
      if (s % 2 == 1) {
        server::ClientResponse sub = client.Subscribe(kSubscribeSql);
        if (!sub.ok) {
          std::fprintf(stderr, "FAIL (session %zu): subscribe: %s\n", s,
                       sub.error.message.c_str());
          failures.fetch_add(1);
          return;
        }
        auto boot = client.ReadDelta(10000);
        if (!boot.has_value() || !boot->resync ||
            RowSet(boot->enters) != expected_skyline) {
          std::fprintf(stderr,
                       "FAIL (session %zu): subscription bootstrap does not "
                       "match the reference skyline\n",
                       s);
          failures.fetch_add(1);
          return;
        }
      }
      // Two passes: the first executes cold, the second rides the
      // server's warm plan/exec caches — both must match exactly.
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t q = 0; q < mix.size(); ++q) {
          // Stagger the starting offset per session so concurrent
          // sessions hit different statements at the same time.
          size_t at = (q + s) % mix.size();
          server::ClientResponse served = client.Query(mix[at]);
          if (!served.ok) {
            std::fprintf(stderr,
                         "FAIL (session %zu, pass %d): server error for "
                         "%s\n  %s\n",
                         s, pass, mix[at].c_str(),
                         served.error.message.c_str());
            failures.fetch_add(1);
            return;
          }
          if (!(served.relation == expected[at].relation) ||
              served.utilities != expected[at].utilities) {
            std::fprintf(stderr,
                         "FAIL (session %zu, pass %d): served result "
                         "diverges from single-threaded Engine::Execute "
                         "for\n  %s\n  served %zu rows, expected %zu rows\n",
                         s, pass, mix[at].c_str(), served.relation.size(),
                         expected[at].relation.size());
            failures.fetch_add(1);
            return;
          }
          checked.fetch_add(1);
        }
      }
      client.Goodbye();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL (session %zu): %s\n", s, e.what());
      failures.fetch_add(1);
    }
  };

  if (opt.sessions == 1) {
    run_session(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(opt.sessions);
    for (size_t s = 0; s < opt.sessions; ++s) {
      threads.emplace_back(run_session, s);
    }
    for (auto& t : threads) t.join();
  }
  if (failures.load() > 0) return 1;
  std::printf("checked %zu served results across %zu sessions against the "
              "single-threaded reference: all identical\n",
              checked.load(), opt.sessions);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DriverOptions opt = ParseArgs(argc, argv);
  std::vector<std::string> mix = LoadMix(opt.mix_path);

  // In-process server unless --connect points elsewhere. In-process still
  // exercises the full TCP stack on loopback.
  Engine engine;
  Engine pipe_engine;
  std::unique_ptr<server::Server> local;
  std::unique_ptr<server::Server> pipe_local;
  Endpoint endpoint;
  Endpoint pipe_endpoint;
  bool has_pipe = false;
  if (opt.connect.empty()) {
    RegisterTables(&engine, opt.rows, opt.seed);
    server::ServerOptions options;
    options.num_workers = opt.workers;
    local = std::make_unique<server::Server>(&engine, options);
    local->Start();
    endpoint = {"127.0.0.1", local->port()};
    if (opt.mode == "load") {
      // Second server on small tables for the pipelining families; 256
      // mixed sessions need headroom over the default session cap.
      RegisterTables(&pipe_engine, opt.pipe_rows, opt.seed);
      server::ServerOptions pipe_options;
      pipe_options.num_workers = opt.workers;
      pipe_options.max_sessions = 512;
      pipe_local = std::make_unique<server::Server>(&pipe_engine,
                                                    pipe_options);
      pipe_local->Start();
      pipe_endpoint = {"127.0.0.1", pipe_local->port()};
      has_pipe = true;
    }
  } else {
    endpoint = ParseConnect(opt.connect);
  }

  int rc = opt.mode == "check"
               ? RunCheck(opt, mix, endpoint)
               : RunLoad(opt, mix, endpoint,
                         has_pipe ? &pipe_endpoint : nullptr);
  if (pipe_local != nullptr) pipe_local->Stop();
  if (local != nullptr) local->Stop();
  return rc;
}
