// Load driver + integration checker for the preference query server.
//
// Two modes, both replaying the committed query mix (bench/query_mix.sql)
// through src/server/client.h against a real TCP server:
//
//   --mode load    fixed-concurrency closed-loop replay: C client threads
//                  each issue their next query as soon as the previous
//                  answer arrives. Reports p50/p99 per-query latency and
//                  sustained QPS, and (with --out) writes them as
//                  Google-Benchmark-shaped JSON families so the CI perf
//                  gate (bench/compare.py) can diff them against the
//                  committed bench/baselines/BENCH_server.json:
//                    server_cold_anchor       single-threaded cold-engine
//                                             median latency — the
//                                             machine-speed normalizer
//                    server_mix_c<C>_p50      median served latency
//                    server_mix_c<C>_p99      tail latency (report-only:
//                                             not in the baseline file)
//                    server_mix_c<C>_throughput_us
//                                             wall-clock µs per completed
//                                             query (inverse QPS)
//   --mode check   replays the mix twice (cold + warm cache) over one
//                  session and diffs every result against single-threaded
//                  Engine::Execute on identical data; any mismatch exits
//                  nonzero. The CI integration-smoke step runs this.
//
// By default the driver hosts the server in-process on an ephemeral
// loopback port (still full TCP through the kernel); --connect host:port
// targets an external server instead (e.g. examples/serve.cc), which must
// hold the same datagen tables (same --rows/--seed).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "prefdb.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins
using Clock = std::chrono::steady_clock;

struct DriverOptions {
  std::string mode = "load";
  std::string mix_path = "bench/query_mix.sql";
  std::string connect;  // "host:port", empty = in-process server
  std::string out;      // JSON path, empty = stdout summary only
  size_t rows = 20000;
  uint64_t seed = 42;
  size_t clients = 16;
  size_t per_client = 120;  // queries per client thread
  size_t repeat = 3;        // anchor replays of the mix
  size_t workers = 0;       // server workers (0 = hardware)
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--mode load|check] [--mix FILE] [--connect HOST:PORT]\n"
      "          [--rows N] [--seed S] [--clients C] [--per-client Q]\n"
      "          [--repeat R] [--workers W] [--out BENCH_server.json]\n",
      argv0);
  std::exit(2);
}

DriverOptions ParseArgs(int argc, char** argv) {
  DriverOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--mode") opt.mode = next();
    else if (arg == "--mix") opt.mix_path = next();
    else if (arg == "--connect") opt.connect = next();
    else if (arg == "--out") opt.out = next();
    else if (arg == "--rows") opt.rows = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--seed") opt.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--clients") opt.clients = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--per-client") opt.per_client = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--repeat") opt.repeat = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--workers") opt.workers = std::strtoull(next().c_str(), nullptr, 10);
    else Usage(argv[0]);
  }
  if (opt.mode != "load" && opt.mode != "check") Usage(argv[0]);
  if (opt.clients == 0 || opt.per_client == 0 || opt.repeat == 0) Usage(argv[0]);
  return opt;
}

std::vector<std::string> LoadMix(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open query mix '%s'\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::string> queries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    queries.push_back(line);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "query mix '%s' holds no statements\n", path.c_str());
    std::exit(2);
  }
  return queries;
}

void RegisterTables(Engine* engine, size_t rows, uint64_t seed) {
  engine->RegisterTable("car", GenerateCars(rows, seed));
  engine->RegisterTable("trip", GenerateTrips(rows, seed + 1));
}

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

Endpoint ParseConnect(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                 spec.c_str());
    std::exit(2);
  }
  return {spec.substr(0, colon),
          static_cast<uint16_t>(std::strtoul(spec.c_str() + colon + 1,
                                             nullptr, 10))};
}

/// Connects with retries: an externally started server (CI smoke step)
/// may still be binding when the driver launches.
server::Client ConnectWithRetry(const Endpoint& endpoint) {
  for (int attempt = 0;; ++attempt) {
    try {
      server::Client client;
      client.Connect(endpoint.host, endpoint.port);
      return client;
    } catch (const std::runtime_error&) {
      if (attempt >= 50) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

double PercentileNs(std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ns.size()));
  if (idx >= sorted_ns.size()) idx = sorted_ns.size() - 1;
  return static_cast<double>(sorted_ns[idx]);
}

struct JsonFamily {
  std::string name;
  double real_time_ns = 0.0;
};

void WriteBenchJson(const std::string& path,
                    const std::vector<JsonFamily>& families,
                    const DriverOptions& opt) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    std::exit(2);
  }
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"bench_server\",\n"
      << "    \"rows\": " << opt.rows << ",\n"
      << "    \"clients\": " << opt.clients << ",\n"
      << "    \"per_client\": " << opt.per_client << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < families.size(); ++i) {
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "    {\"name\": \"%s\", \"run_name\": \"%s\", "
                  "\"run_type\": \"iteration\", \"real_time\": %.1f, "
                  "\"cpu_time\": 0.0, \"time_unit\": \"ns\"}%s\n",
                  families[i].name.c_str(), families[i].name.c_str(),
                  families[i].real_time_ns,
                  i + 1 < families.size() ? "," : "");
    out << entry;
  }
  out << "  ]\n}\n";
}

// --- load mode -----------------------------------------------------------

int RunLoad(const DriverOptions& opt,
            const std::vector<std::string>& mix,
            const Endpoint& endpoint) {
  // Anchor: the whole mix executed back-to-back on a cache-less
  // single-threaded engine — the machine-speed proxy every served family
  // is normalized by in the perf gate. One untimed warm-up pass, then the
  // MINIMUM over the timed passes: noise (scheduler, frequency scaling)
  // only ever adds time, so min-of-passes is far more stable than a
  // per-query median on a loaded runner.
  double anchor_ns = 0.0;
  {
    EngineOptions cold;
    cold.enable_plan_cache = false;
    cold.enable_exec_cache = false;
    cold.bmo = server::ServerOptions::DefaultSessionBmo();
    Engine engine(cold);
    RegisterTables(&engine, opt.rows, opt.seed);
    uint64_t best_pass_ns = UINT64_MAX;
    for (size_t r = 0; r < opt.repeat + 1; ++r) {
      Clock::time_point t0 = Clock::now();
      for (const std::string& sql : mix) {
        auto result = engine.Execute(sql);
        if (result.relation.empty() && result.utilities.empty()) {
          // Every mix statement returns rows on the datagen tables; an
          // empty answer means the mix and the data went out of sync.
          std::fprintf(stderr, "anchor query returned nothing: %s\n",
                       sql.c_str());
          return 1;
        }
      }
      uint64_t pass_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
      if (r > 0) best_pass_ns = std::min(best_pass_ns, pass_ns);
    }
    anchor_ns = static_cast<double>(best_pass_ns) /
                static_cast<double>(mix.size());
  }

  // Closed-loop replay at fixed concurrency.
  std::vector<std::vector<uint64_t>> latencies(opt.clients);
  std::atomic<size_t> errors{0};
  std::atomic<size_t> started{0};
  Clock::time_point wall0;
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    std::atomic<bool> go{false};
    for (size_t c = 0; c < opt.clients; ++c) {
      threads.emplace_back([&, c] {
        server::Client client = ConnectWithRetry(endpoint);
        started.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        std::vector<uint64_t>& mine = latencies[c];
        mine.reserve(opt.per_client);
        for (size_t q = 0; q < opt.per_client; ++q) {
          const std::string& sql = mix[(c + q) % mix.size()];
          Clock::time_point t0 = Clock::now();
          server::ClientResponse response = client.Query(sql);
          mine.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - t0)
                  .count()));
          if (!response.ok) errors.fetch_add(1);
        }
        client.Goodbye();
      });
    }
    while (started.load() < opt.clients) std::this_thread::yield();
    wall0 = Clock::now();
    go.store(true);
    for (auto& t : threads) t.join();
  }
  double wall_s = std::chrono::duration<double>(Clock::now() - wall0).count();

  std::vector<uint64_t> all_ns;
  for (auto& per_client : latencies) {
    all_ns.insert(all_ns.end(), per_client.begin(), per_client.end());
  }
  std::sort(all_ns.begin(), all_ns.end());
  size_t total = all_ns.size();
  if (errors.load() > 0) {
    std::fprintf(stderr, "%zu/%zu served queries failed\n", errors.load(),
                 total);
    return 1;
  }

  double anchor = anchor_ns;
  double p50 = PercentileNs(all_ns, 0.5);
  double p99 = PercentileNs(all_ns, 0.99);
  double qps = static_cast<double>(total) / wall_s;
  double throughput_ns = wall_s * 1e9 / static_cast<double>(total);

  std::printf("replayed %zu queries over %zu sessions in %.2fs\n", total,
              opt.clients, wall_s);
  std::printf("  anchor (cold 1-thread, best pass) %10.3f ms\n",
              anchor / 1e6);
  std::printf("  p50  %10.3f ms\n", p50 / 1e6);
  std::printf("  p99  %10.3f ms\n", p99 / 1e6);
  std::printf("  QPS  %10.1f (%.3f ms/query wall)\n", qps,
              throughput_ns / 1e6);

  if (!opt.out.empty()) {
    std::string c = std::to_string(opt.clients);
    WriteBenchJson(opt.out,
                   {{"server_cold_anchor", anchor},
                    {"server_mix_c" + c + "_p50", p50},
                    {"server_mix_c" + c + "_p99", p99},
                    {"server_mix_c" + c + "_throughput_us", throughput_ns}},
                   opt);
    std::printf("wrote %s\n", opt.out.c_str());
  }
  return 0;
}

// --- check mode ----------------------------------------------------------

int RunCheck(const DriverOptions& opt,
             const std::vector<std::string>& mix,
             const Endpoint& endpoint) {
  Engine reference;
  reference.RegisterTable("car", GenerateCars(opt.rows, opt.seed));
  reference.RegisterTable("trip", GenerateTrips(opt.rows, opt.seed + 1));

  server::Client client = ConnectWithRetry(endpoint);
  size_t checked = 0;
  // Two passes: the first executes cold, the second rides the server's
  // warm plan/exec caches — both must match the local reference exactly.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& sql : mix) {
      server::ClientResponse served = client.Query(sql);
      if (!served.ok) {
        std::fprintf(stderr, "FAIL (pass %d): server error for %s\n  %s\n",
                     pass, sql.c_str(), served.error.message.c_str());
        return 1;
      }
      psql::QueryResult expected =
          reference.Execute(sql, server::ServerOptions::DefaultSessionBmo());
      if (!(served.relation == expected.relation) ||
          served.utilities != expected.utilities) {
        std::fprintf(stderr,
                     "FAIL (pass %d): served result diverges from "
                     "single-threaded Engine::Execute for\n  %s\n"
                     "  served %zu rows, expected %zu rows\n",
                     pass, sql.c_str(), served.relation.size(),
                     expected.relation.size());
        return 1;
      }
      ++checked;
    }
  }
  client.Goodbye();
  std::printf("checked %zu served results against the single-threaded "
              "reference: all identical\n",
              checked);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DriverOptions opt = ParseArgs(argc, argv);
  std::vector<std::string> mix = LoadMix(opt.mix_path);

  // In-process server unless --connect points elsewhere. In-process still
  // exercises the full TCP stack on loopback.
  Engine engine;
  std::unique_ptr<server::Server> local;
  Endpoint endpoint;
  if (opt.connect.empty()) {
    RegisterTables(&engine, opt.rows, opt.seed);
    server::ServerOptions options;
    options.num_workers = opt.workers;
    local = std::make_unique<server::Server>(&engine, options);
    local->Start();
    endpoint = {"127.0.0.1", local->port()};
  } else {
    endpoint = ParseConnect(opt.connect);
  }

  int rc = opt.mode == "check" ? RunCheck(opt, mix, endpoint)
                               : RunLoad(opt, mix, endpoint);
  if (local != nullptr) local->Stop();
  return rc;
}
