// Ablation benchmarks for the design choices DESIGN.md calls out:
//   (a) BNL window policy: evicting dominated window entries vs an
//       append-only window that never evicts;
//   (b) distinct-projection deduplication before dominance testing vs
//       testing raw rows (duplicates matter on categorical e-shop data);
//   (c) algebraic simplification before evaluation (Prop 7 rewrites) vs
//       evaluating the messy term as written.

#include <benchmark/benchmark.h>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins

// (a) Append-only BNL variant: candidates are only checked against, never
// evicted from, the window; a final pass removes dominated survivors.
std::vector<bool> MaximaBnlNoEvict(const std::vector<Tuple>& values,
                                   const LessFn& less) {
  const size_t m = values.size();
  std::vector<size_t> window;
  for (size_t i = 0; i < m; ++i) {
    bool dominated = false;
    for (size_t w : window) {
      if (less(values[i], values[w])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) window.push_back(i);
  }
  std::vector<bool> maximal(m, false);
  for (size_t i : window) {
    bool dominated = false;
    for (size_t j : window) {
      if (i != j && less(values[i], values[j])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal[i] = true;
  }
  return maximal;
}

void BM_bnl_evicting(benchmark::State& state) {
  Relation r = GenerateVectors(static_cast<size_t>(state.range(0)), 3,
                               Correlation::kIndependent, 5);
  PrefPtr p = Pareto({Highest("d0"), Highest("d1"), Highest("d2")});
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  LessFn less = p->Bind(proj.proj_schema);
  for (auto _ : state) {
    auto maxima = MaximaBnl(proj.values, less);
    benchmark::DoNotOptimize(maxima);
  }
}
void BM_bnl_no_evict(benchmark::State& state) {
  Relation r = GenerateVectors(static_cast<size_t>(state.range(0)), 3,
                               Correlation::kIndependent, 5);
  PrefPtr p = Pareto({Highest("d0"), Highest("d1"), Highest("d2")});
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  LessFn less = p->Bind(proj.proj_schema);
  for (auto _ : state) {
    auto maxima = MaximaBnlNoEvict(proj.values, less);
    benchmark::DoNotOptimize(maxima);
  }
}
BENCHMARK(BM_bnl_evicting)->Arg(2048)->Arg(8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_bnl_no_evict)->Arg(2048)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// (b) Dedup ablation on categorical data with heavy duplication: compare
// σ[P](R) through the projection index vs dominance tests on raw rows.
void BM_dedup_projection(benchmark::State& state) {
  Relation cars = GenerateCars(static_cast<size_t>(state.range(0)), 31);
  // Color/category only: few distinct combinations, many duplicates.
  PrefPtr p = Pareto(Pos("color", {"red", "blue"}),
                     PosPos("category", {"cabriolet"}, {"roadster"}));
  for (auto _ : state) {
    auto rows = BmoIndices(cars, p, {BmoAlgorithm::kBlockNestedLoop});
    benchmark::DoNotOptimize(rows);
  }
}
void BM_dedup_rawrows(benchmark::State& state) {
  Relation cars = GenerateCars(static_cast<size_t>(state.range(0)), 31);
  PrefPtr p = Pareto(Pos("color", {"red", "blue"}),
                     PosPos("category", {"cabriolet"}, {"roadster"}));
  LessFn less = p->Bind(cars.schema());
  for (auto _ : state) {
    // BNL over raw rows, no projection dedup.
    std::vector<size_t> window;
    for (size_t i = 0; i < cars.size(); ++i) {
      bool dominated = false;
      size_t keep = 0;
      for (size_t w = 0; w < window.size(); ++w) {
        if (!dominated && less(cars.at(i), cars.at(window[w]))) {
          dominated = true;
          for (; w < window.size(); ++w) window[keep++] = window[w];
          break;
        }
        if (less(cars.at(window[w]), cars.at(i))) continue;
        window[keep++] = window[w];
      }
      window.resize(keep);
      if (!dominated) window.push_back(i);
    }
    benchmark::DoNotOptimize(window);
  }
}
BENCHMARK(BM_dedup_projection)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_dedup_rawrows)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// (c) Simplification ablation: P (x) P^d over two attributes collapses to
// an anti-chain (Prop 3n) — the optimizer skips all dominance testing.
void BM_messy_term_direct(benchmark::State& state) {
  Relation cars = GenerateCars(static_cast<size_t>(state.range(0)), 77);
  PrefPtr messy = Pareto(Pareto(Lowest("price"), Highest("price")),
                         Pareto(Dual(Dual(Lowest("mileage"))),
                                Lowest("mileage")));
  for (auto _ : state) {
    auto rows = BmoIndices(cars, messy, {BmoAlgorithm::kBlockNestedLoop});
    benchmark::DoNotOptimize(rows);
  }
}
void BM_messy_term_optimized(benchmark::State& state) {
  Relation cars = GenerateCars(static_cast<size_t>(state.range(0)), 77);
  PrefPtr messy = Pareto(Pareto(Lowest("price"), Highest("price")),
                         Pareto(Dual(Dual(Lowest("mileage"))),
                                Lowest("mileage")));
  for (auto _ : state) {
    Relation res = BmoOptimized(cars, messy);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_messy_term_direct)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_messy_term_optimized)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
