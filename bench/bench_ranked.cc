// Benchmark P6 (see DESIGN.md): the ranked "k-best" query model (§6.2) vs
// BMO evaluation for rank(F) chains, plus Pareto-vs-rank(F) evaluation
// cost — quantifying the paper's remark that numerical accumulation
// usually produces chains where BMO returns a single object.

#include <benchmark/benchmark.h>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins

std::shared_ptr<RankPreference> CarUtility() {
  return std::static_pointer_cast<RankPreference>(
      std::const_pointer_cast<Preference>(RankWeightedSum(
          {-1.0, -0.2, 50.0},
          {Highest("price"), Highest("mileage"), Highest("horsepower")})));
}

void BM_topk(benchmark::State& state) {
  Relation cars = GenerateCars(static_cast<size_t>(state.range(0)), 7);
  auto rank = CarUtility();
  const size_t k = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    RankedResult res = TopK(cars, *rank, k);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_topk)
    ->ArgsProduct({{10000, 100000}, {1, 10, 100}})
    ->Unit(benchmark::kMillisecond);

void BM_rankf_bmo(benchmark::State& state) {
  // BMO on the rank(F) chain: returns (almost always) one object.
  Relation cars = GenerateCars(static_cast<size_t>(state.range(0)), 7);
  PrefPtr rank = RankWeightedSum(
      {-1.0, -0.2, 50.0},
      {Highest("price"), Highest("mileage"), Highest("horsepower")});
  size_t result_size = 0;
  for (auto _ : state) {
    Relation res = Bmo(cars, rank);
    result_size = res.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["result"] = static_cast<double>(result_size);
}
BENCHMARK(BM_rankf_bmo)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_pareto_bmo_same_attrs(benchmark::State& state) {
  // The Pareto counterpart over the same attributes: a real choice set.
  Relation cars = GenerateCars(static_cast<size_t>(state.range(0)), 7);
  PrefPtr p = Pareto(
      {Lowest("price"), Lowest("mileage"), Highest("horsepower")});
  size_t result_size = 0;
  for (auto _ : state) {
    Relation res = Bmo(cars, p);
    result_size = res.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["result"] = static_cast<double>(result_size);
}
BENCHMARK(BM_pareto_bmo_same_attrs)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
