// Prepared-vs-cold repeated-query benchmarks for the stateful engine:
// the serving-layer scenario where the same preference statements hit the
// same relations over and over.
//
//   cold_execute      caches off — full parse/translate/optimize/compile/
//                     execute every call (the legacy free-function path)
//   cached_execute    Engine::Execute with plan + exec caches — repeated
//                     text skips everything but the BMO kernel
//   prepared_run      PreparedQuery::Run on a warm exec cache — the
//                     steady-state serving cost
//   prepare_only      plan-cache hit cost (normalize + lookup)
//
// The tiny N=1024 points exist for the CI smoke job
// (BENCH_engine_cache.json artifact).

#include <benchmark/benchmark.h>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins

const char* kSkylineQuery =
    "SELECT oid, price, mileage FROM car "
    "PREFERRING LOWEST(price) AND LOWEST(mileage) AND HIGHEST(horsepower)";

const char* kLayeredQuery =
    "SELECT * FROM car WHERE price < 30000 "
    "PREFERRING (category = 'roadster' ELSE category <> 'passenger') "
    "AND price AROUND 20000 CASCADE LOWEST(mileage)";

const char* kTopKQuery =
    "SELECT TOP 10 oid, price, mileage FROM car "
    "PREFERRING LOWEST(price) AND LOWEST(mileage)";

EngineOptions ColdOptions() {
  EngineOptions options;
  options.enable_plan_cache = false;
  options.enable_exec_cache = false;
  return options;
}

void RunExecute(benchmark::State& state, const char* sql, bool cached) {
  Engine engine(cached ? EngineOptions{} : ColdOptions());
  engine.RegisterTable("car",
                       GenerateCars(static_cast<size_t>(state.range(0)), 7));
  size_t result_size = 0;
  for (auto _ : state) {
    auto res = engine.Execute(sql);
    result_size = res.relation.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["result"] = static_cast<double>(result_size);
}

void BM_cold_execute_skyline(benchmark::State& state) {
  RunExecute(state, kSkylineQuery, /*cached=*/false);
}
void BM_cached_execute_skyline(benchmark::State& state) {
  RunExecute(state, kSkylineQuery, /*cached=*/true);
}
void BM_cold_execute_layered(benchmark::State& state) {
  RunExecute(state, kLayeredQuery, /*cached=*/false);
}
void BM_cached_execute_layered(benchmark::State& state) {
  RunExecute(state, kLayeredQuery, /*cached=*/true);
}
void BM_cold_execute_topk(benchmark::State& state) {
  RunExecute(state, kTopKQuery, /*cached=*/false);
}
void BM_cached_execute_topk(benchmark::State& state) {
  RunExecute(state, kTopKQuery, /*cached=*/true);
}

void BM_prepared_run_skyline(benchmark::State& state) {
  Engine engine;
  engine.RegisterTable("car",
                       GenerateCars(static_cast<size_t>(state.range(0)), 7));
  PreparedQuery prepared = engine.Prepare(kSkylineQuery);
  size_t result_size = 0;
  for (auto _ : state) {
    auto res = prepared.Run();
    result_size = res.relation.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["result"] = static_cast<double>(result_size);
}

void BM_prepare_only(benchmark::State& state) {
  Engine engine;
  engine.RegisterTable("car",
                       GenerateCars(static_cast<size_t>(state.range(0)), 7));
  for (auto _ : state) {
    PreparedQuery prepared = engine.Prepare(kSkylineQuery);
    benchmark::DoNotOptimize(prepared);
  }
}

#define ENGINE_ARGS ->Arg(1024)->Arg(10000)->Arg(100000)\
    ->Unit(benchmark::kMicrosecond)

BENCHMARK(BM_cold_execute_skyline) ENGINE_ARGS;
BENCHMARK(BM_cached_execute_skyline) ENGINE_ARGS;
BENCHMARK(BM_prepared_run_skyline) ENGINE_ARGS;
BENCHMARK(BM_cold_execute_layered) ENGINE_ARGS;
BENCHMARK(BM_cached_execute_layered) ENGINE_ARGS;
BENCHMARK(BM_cold_execute_topk) ENGINE_ARGS;
BENCHMARK(BM_cached_execute_topk) ENGINE_ARGS;
BENCHMARK(BM_prepare_only)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
