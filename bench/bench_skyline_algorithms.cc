// Benchmark P1 (see DESIGN.md): BMO/skyline algorithm comparison — naive
// O(n^2), BNL [BKS01], sort-filter (SFS-style), divide & conquer [KLP75]
// and the Prop-8-12 decomposition evaluator — across data correlation,
// cardinality n and dimensionality d.
//
// The expected *shape* (who wins, where the crossovers are):
//   - naive degrades quadratically everywhere;
//   - BNL shines on correlated data (tiny windows) and degrades on
//     anti-correlated data (windows approach the full skyline);
//   - SFS presorting amortizes on large anti-correlated inputs;
//   - D&C wins asymptotically for low d on big inputs.

#include <benchmark/benchmark.h>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT — benchmark driver

PrefPtr SkylinePref(size_t d) {
  std::vector<PrefPtr> prefs;
  for (size_t i = 0; i < d; ++i) {
    prefs.push_back(Highest("d" + std::to_string(i)));
  }
  return Pareto(prefs);
}

void RunSkyline(benchmark::State& state, BmoAlgorithm algo,
                Correlation corr) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  Relation r = GenerateVectors(n, d, corr, 42);
  PrefPtr p = SkylinePref(d);
  size_t result_size = 0;
  for (auto _ : state) {
    std::vector<size_t> rows = BmoIndices(r, p, {algo});
    result_size = rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["skyline"] = static_cast<double>(result_size);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

#define SKYLINE_BENCH(algo_name, algo, corr_name, corr)                  \
  void BM_##algo_name##_##corr_name(benchmark::State& state) {           \
    RunSkyline(state, algo, corr);                                       \
  }                                                                      \
  BENCHMARK(BM_##algo_name##_##corr_name)                                \
      ->ArgsProduct({{1024, 4096, 16384}, {2, 4}})                       \
      ->Unit(benchmark::kMillisecond)

// The quadratic baseline gets smaller inputs (it is the contrast case).
#define SKYLINE_BENCH_SMALL(algo_name, algo, corr_name, corr)            \
  void BM_##algo_name##_##corr_name(benchmark::State& state) {           \
    RunSkyline(state, algo, corr);                                       \
  }                                                                      \
  BENCHMARK(BM_##algo_name##_##corr_name)                                \
      ->ArgsProduct({{1024, 4096}, {2, 4}})                              \
      ->Unit(benchmark::kMillisecond)

SKYLINE_BENCH_SMALL(naive, BmoAlgorithm::kNaive, indep,
                    Correlation::kIndependent);
SKYLINE_BENCH(bnl, BmoAlgorithm::kBlockNestedLoop, indep,
              Correlation::kIndependent);
SKYLINE_BENCH(sfs, BmoAlgorithm::kSortFilter, indep,
              Correlation::kIndependent);
SKYLINE_BENCH(dc, BmoAlgorithm::kDivideConquer, indep,
              Correlation::kIndependent);

SKYLINE_BENCH_SMALL(naive, BmoAlgorithm::kNaive, anti,
                    Correlation::kAntiCorrelated);
SKYLINE_BENCH(bnl, BmoAlgorithm::kBlockNestedLoop, anti,
              Correlation::kAntiCorrelated);
SKYLINE_BENCH(sfs, BmoAlgorithm::kSortFilter, anti,
              Correlation::kAntiCorrelated);
SKYLINE_BENCH(dc, BmoAlgorithm::kDivideConquer, anti,
              Correlation::kAntiCorrelated);

SKYLINE_BENCH(bnl, BmoAlgorithm::kBlockNestedLoop, corr,
              Correlation::kCorrelated);
SKYLINE_BENCH(sfs, BmoAlgorithm::kSortFilter, corr,
              Correlation::kCorrelated);
SKYLINE_BENCH(dc, BmoAlgorithm::kDivideConquer, corr,
              Correlation::kCorrelated);

// Ablation: auto algorithm selection vs the best hand-picked one.
void BM_auto_anti(benchmark::State& state) {
  RunSkyline(state, BmoAlgorithm::kAuto, Correlation::kAntiCorrelated);
}
BENCHMARK(BM_auto_anti)
    ->ArgsProduct({{1024, 4096, 16384}, {2, 4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
