// Benchmark P1 (see DESIGN.md): BMO/skyline algorithm comparison — naive
// O(n^2), BNL [BKS01], sort-filter (SFS-style), divide & conquer [KLP75]
// and the Prop-8-12 decomposition evaluator — across data correlation,
// cardinality n and dimensionality d.
//
// The expected *shape* (who wins, where the crossovers are):
//   - naive degrades quadratically everywhere;
//   - BNL shines on correlated data (tiny windows) and degrades on
//     anti-correlated data (windows approach the full skyline);
//   - SFS presorting amortizes on large anti-correlated inputs;
//   - D&C wins asymptotically for low d on big inputs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <vector>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins

PrefPtr SkylinePref(size_t d) {
  std::vector<PrefPtr> prefs;
  for (size_t i = 0; i < d; ++i) {
    prefs.push_back(Highest("d" + std::to_string(i)));
  }
  return Pareto(prefs);
}

void RunSkyline(benchmark::State& state, BmoAlgorithm algo, Correlation corr,
                bool vectorize = true) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  Relation r = GenerateVectors(n, d, corr, 42);
  PrefPtr p = SkylinePref(d);
  BmoOptions options;
  options.algorithm = algo;
  options.vectorize = vectorize;
  size_t result_size = 0;
  for (auto _ : state) {
    std::vector<size_t> rows = BmoIndices(r, p, options);
    result_size = rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["skyline"] = static_cast<double>(result_size);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

// Level-based terms (POS/LAYERED under Pareto/prioritization) over a
// low-cardinality categorical column plus numeric chains: the workload the
// score table newly opens to SFS (no closure sort keys exist).
void RunLevelTerm(benchmark::State& state, BmoAlgorithm algo,
                  bool vectorize) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r = GenerateVectors(n, 5, Correlation::kAntiCorrelated, 7);
  // Dict-encode d4 into 8 buckets so POS has categorical structure; the
  // 4-d Pareto tail keeps windows large enough that presorting matters.
  Relation cat(Schema{{"d0", ValueType::kDouble},
                      {"d1", ValueType::kDouble},
                      {"d2", ValueType::kDouble},
                      {"d3", ValueType::kDouble},
                      {"bucket", ValueType::kInt}});
  for (const Tuple& t : r.tuples()) {
    cat.Add({t[0], t[1], t[2], t[3],
             Value(static_cast<int64_t>(*t[4].numeric() * 8) % 8)});
  }
  PrefPtr p = Prioritized(
      Pos("bucket", {Value(0), Value(3)}),
      Pareto({Highest("d0"), Highest("d1"), Highest("d2"), Highest("d3")}));
  BmoOptions options;
  options.algorithm = algo;
  options.vectorize = vectorize;
  for (auto _ : state) {
    std::vector<size_t> rows = BmoIndices(cat, p, options);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

#define SKYLINE_BENCH(algo_name, algo, corr_name, corr)                  \
  void BM_##algo_name##_##corr_name(benchmark::State& state) {           \
    RunSkyline(state, algo, corr);                                       \
  }                                                                      \
  BENCHMARK(BM_##algo_name##_##corr_name)                                \
      ->ArgsProduct({{1024, 4096, 16384}, {2, 4}})                       \
      ->Unit(benchmark::kMillisecond)

// The quadratic baseline gets smaller inputs (it is the contrast case).
#define SKYLINE_BENCH_SMALL(algo_name, algo, corr_name, corr)            \
  void BM_##algo_name##_##corr_name(benchmark::State& state) {           \
    RunSkyline(state, algo, corr);                                       \
  }                                                                      \
  BENCHMARK(BM_##algo_name##_##corr_name)                                \
      ->ArgsProduct({{1024, 4096}, {2, 4}})                              \
      ->Unit(benchmark::kMillisecond)

SKYLINE_BENCH_SMALL(naive, BmoAlgorithm::kNaive, indep,
                    Correlation::kIndependent);
SKYLINE_BENCH(bnl, BmoAlgorithm::kBlockNestedLoop, indep,
              Correlation::kIndependent);
SKYLINE_BENCH(sfs, BmoAlgorithm::kSortFilter, indep,
              Correlation::kIndependent);
SKYLINE_BENCH(dc, BmoAlgorithm::kDivideConquer, indep,
              Correlation::kIndependent);

SKYLINE_BENCH_SMALL(naive, BmoAlgorithm::kNaive, anti,
                    Correlation::kAntiCorrelated);
SKYLINE_BENCH(bnl, BmoAlgorithm::kBlockNestedLoop, anti,
              Correlation::kAntiCorrelated);
SKYLINE_BENCH(sfs, BmoAlgorithm::kSortFilter, anti,
              Correlation::kAntiCorrelated);
SKYLINE_BENCH(dc, BmoAlgorithm::kDivideConquer, anti,
              Correlation::kAntiCorrelated);

SKYLINE_BENCH(bnl, BmoAlgorithm::kBlockNestedLoop, corr,
              Correlation::kCorrelated);
SKYLINE_BENCH(sfs, BmoAlgorithm::kSortFilter, corr,
              Correlation::kCorrelated);
SKYLINE_BENCH(dc, BmoAlgorithm::kDivideConquer, corr,
              Correlation::kCorrelated);

// Ablation: auto algorithm selection vs the best hand-picked one.
void BM_auto_anti(benchmark::State& state) {
  RunSkyline(state, BmoAlgorithm::kAuto, Correlation::kAntiCorrelated);
}
BENCHMARK(BM_auto_anti)
    ->ArgsProduct({{1024, 4096, 16384}, {2, 4}})
    ->Unit(benchmark::kMillisecond);

// Vectorized score-table kernels vs the closure-based equivalents, up to
// N=100k (the headline comparison; tiny N kept for the CI smoke).
#define VECTOR_VS_CLOSURE(algo_name, algo)                                 \
  void BM_##algo_name##_closure_anti(benchmark::State& state) {            \
    RunSkyline(state, algo, Correlation::kAntiCorrelated, false);          \
  }                                                                        \
  BENCHMARK(BM_##algo_name##_closure_anti)                                 \
      ->ArgsProduct({{1024, 16384, 100000}, {2, 4}})                       \
      ->Unit(benchmark::kMillisecond);                                     \
  void BM_##algo_name##_vector_anti(benchmark::State& state) {             \
    RunSkyline(state, algo, Correlation::kAntiCorrelated, true);           \
  }                                                                        \
  BENCHMARK(BM_##algo_name##_vector_anti)                                  \
      ->ArgsProduct({{1024, 16384, 100000}, {2, 4}})                       \
      ->Unit(benchmark::kMillisecond)

VECTOR_VS_CLOSURE(bnl, BmoAlgorithm::kBlockNestedLoop);
VECTOR_VS_CLOSURE(sfs, BmoAlgorithm::kSortFilter);
VECTOR_VS_CLOSURE(dc, BmoAlgorithm::kDivideConquer);

// Kernel-variant families (the CI perf gate tracks these at N=4096, see
// bench/compare.py): one compiled score table, measuring only the maxima
// kernel, across the PR 2 row-major pair loops ("rowwise"), the portable
// batch kernels ("scalar"), forced AVX2, and AVX2 + the L2-tiled BNL
// window loop. On CPUs without AVX2 the forced-AVX2 variants degrade to
// the batch scalar kernels (identical numbers, never a crash).
constexpr size_t kUntiled = std::numeric_limits<size_t>::max();

void RunKernelFamily(benchmark::State& state, BmoAlgorithm algo,
                     SimdMode simd, size_t tile, Correlation corr) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  Relation r = GenerateVectors(n, d, corr, 42);
  PrefPtr p = SkylinePref(d);
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  auto table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                   proj.values.size());
  PhysicalPlan plan;
  plan.simd = simd;
  plan.bnl_tile_rows = tile;
  size_t skyline = 0;
  for (auto _ : state) {
    std::vector<bool> maximal =
        table->MaximaRange(algo, 0, proj.values.size(), plan);
    skyline = static_cast<size_t>(
        std::count(maximal.begin(), maximal.end(), true));
    benchmark::DoNotOptimize(maximal);
  }
  state.counters["skyline"] = static_cast<double>(skyline);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

#define KERNEL_BENCH(fam, algo, variant, simd, tile, corr_name, corr, args) \
  void BM_kernel_##fam##_##variant##_##corr_name(benchmark::State& state) { \
    RunKernelFamily(state, algo, simd, tile, corr);                         \
  }                                                                         \
  BENCHMARK(BM_kernel_##fam##_##variant##_##corr_name)                      \
      ->ArgsProduct(args)                                                   \
      ->Unit(benchmark::kMillisecond)

#define KERNEL_BNL_ANTI(variant, simd, tile)                             \
  KERNEL_BENCH(bnl, BmoAlgorithm::kBlockNestedLoop, variant, simd, tile, \
               anti, Correlation::kAntiCorrelated,                       \
               (std::vector<std::vector<int64_t>>{{4096, 10000, 100000}, \
                                                  {2, 4}}))
KERNEL_BNL_ANTI(rowwise, SimdMode::kOff, kUntiled);
KERNEL_BNL_ANTI(scalar, SimdMode::kScalar, kUntiled);
KERNEL_BNL_ANTI(avx2, SimdMode::kAvx2, kUntiled);
KERNEL_BNL_ANTI(avx2_tiled, SimdMode::kAvx2, 0);

#define KERNEL_BNL_INDEP(variant, simd, tile)                            \
  KERNEL_BENCH(bnl, BmoAlgorithm::kBlockNestedLoop, variant, simd, tile, \
               indep, Correlation::kIndependent,                         \
               (std::vector<std::vector<int64_t>>{                       \
                   {4096, 10000, 100000, 1000000}, {4}}))
KERNEL_BNL_INDEP(rowwise, SimdMode::kOff, kUntiled);
KERNEL_BNL_INDEP(scalar, SimdMode::kScalar, kUntiled);
KERNEL_BNL_INDEP(avx2, SimdMode::kAvx2, kUntiled);
KERNEL_BNL_INDEP(avx2_tiled, SimdMode::kAvx2, 0);

#define KERNEL_SFS_ANTI(variant, simd)                                  \
  KERNEL_BENCH(sfs, BmoAlgorithm::kSortFilter, variant, simd, kUntiled, \
               anti, Correlation::kAntiCorrelated,                      \
               (std::vector<std::vector<int64_t>>{{4096, 10000, 100000}, \
                                                  {4}}))
KERNEL_SFS_ANTI(rowwise, SimdMode::kOff);
KERNEL_SFS_ANTI(avx2, SimdMode::kAvx2);

#define KERNEL_DC_INDEP(variant, simd)                                     \
  KERNEL_BENCH(dc, BmoAlgorithm::kDivideConquer, variant, simd, kUntiled, \
               indep, Correlation::kIndependent,                           \
               (std::vector<std::vector<int64_t>>{{4096, 10000, 100000},   \
                                                  {4}}))
KERNEL_DC_INDEP(rowwise, SimdMode::kOff);
KERNEL_DC_INDEP(avx2, SimdMode::kAvx2);

// Cold score-table compilation: the deduplicating gather path
// (projection index + per-Value materialization + ScoreTable::Compile)
// vs the zero-copy columnar path (borrowing the store's NaN-free column
// buffers outright). Tracked by the perf gate and enforced in-driver by
// the >=3x compile-speedup check after the timed families (see main()).
void RunCompileCold(benchmark::State& state, bool zero_copy) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r = GenerateVectors(n, 4, Correlation::kAntiCorrelated, 42);
  PrefPtr p = SkylinePref(4);
  for (auto _ : state) {
    if (zero_copy) {
      auto table = ScoreTable::CompileColumnar(p, r);
      benchmark::DoNotOptimize(table);
    } else {
      ProjectionIndex proj = BuildProjectionIndex(r, *p);
      auto table = ScoreTable::Compile(p, proj.proj_schema,
                                       proj.values.data(),
                                       proj.values.size());
      benchmark::DoNotOptimize(table);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_compile_cold_gather(benchmark::State& state) {
  RunCompileCold(state, false);
}
BENCHMARK(BM_compile_cold_gather)
    ->Arg(4096)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
void BM_compile_cold_zero_copy(benchmark::State& state) {
  RunCompileCold(state, true);
}
BENCHMARK(BM_compile_cold_zero_copy)
    ->Arg(4096)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// End-to-end cold query (compile + kernel + row mapping), gather vs
// zero-copy. The zero-copy side is the real BmoIndices fast path; the
// gather side replays the pre-columnar pipeline on the same relation.
void RunEndToEndCold(benchmark::State& state, bool zero_copy) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r = GenerateVectors(n, 4, Correlation::kAntiCorrelated, 42);
  PrefPtr p = SkylinePref(4);
  size_t result_size = 0;
  for (auto _ : state) {
    std::vector<size_t> rows;
    if (zero_copy) {
      rows = BmoIndices(r, p, {});  // compiles columnar on this workload
    } else {
      ProjectionIndex proj = BuildProjectionIndex(r, *p);
      auto table = ScoreTable::Compile(p, proj.proj_schema,
                                       proj.values.data(),
                                       proj.values.size());
      std::vector<bool> maximal = table->MaximaRange(
          BmoAlgorithm::kAuto, 0, proj.values.size());
      for (size_t i = 0; i < r.size(); ++i) {
        if (maximal[proj.row_to_value[i]]) rows.push_back(i);
      }
    }
    result_size = rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["skyline"] = static_cast<double>(result_size);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_end_to_end_cold_gather(benchmark::State& state) {
  RunEndToEndCold(state, false);
}
BENCHMARK(BM_end_to_end_cold_gather)
    ->Arg(4096)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
void BM_end_to_end_cold_zero_copy(benchmark::State& state) {
  RunEndToEndCold(state, true);
}
BENCHMARK(BM_end_to_end_cold_zero_copy)
    ->Arg(4096)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Level-term workload: closure evaluation has no sort keys (BNL only),
// the score table compiles levels and presorts.
void BM_level_closure(benchmark::State& state) {
  RunLevelTerm(state, BmoAlgorithm::kAuto, false);
}
BENCHMARK(BM_level_closure)
    ->Arg(1024)->Arg(16384)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
void BM_level_vector(benchmark::State& state) {
  RunLevelTerm(state, BmoAlgorithm::kAuto, true);
}
BENCHMARK(BM_level_vector)
    ->Arg(1024)->Arg(16384)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Zero-copy compile gate: after the timed families, wall-clock both cold
// compile paths on the headline workload (100k anti-correlated, d=4) and
// require the columnar path to be at least 3x faster. This is the PR's
// acceptance bound, enforced in-driver exactly like bench_planner's
// misprediction check so a regression fails the smoke test directly.

double MedianCompileMs(const std::function<void()>& fn) {
  std::vector<double> samples;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[1];
}

bool RunCompileGate() {
  const size_t n = 100000;
  Relation r = GenerateVectors(n, 4, Correlation::kAntiCorrelated, 42);
  PrefPtr p = SkylinePref(4);
  if (!ScoreTable::CompilableColumnar(p, r)) {
    std::fprintf(stderr, "compile-gate: workload lost zero-copy "
                         "eligibility\n");
    return false;
  }
  const double gather_ms = MedianCompileMs([&] {
    ProjectionIndex proj = BuildProjectionIndex(r, *p);
    auto table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                     proj.values.size());
    benchmark::DoNotOptimize(table);
  });
  const double zero_copy_ms = MedianCompileMs([&] {
    auto table = ScoreTable::CompileColumnar(p, r);
    benchmark::DoNotOptimize(table);
  });
  const double speedup = zero_copy_ms > 0 ? gather_ms / zero_copy_ms : 1e9;
  const bool ok = speedup >= 3.0;
  std::fprintf(stderr,
               "compile-gate n=%zu gather %.3fms zero-copy %.3fms "
               "speedup %.1fx (need >=3x) %s\n",
               n, gather_ms, zero_copy_ms, speedup, ok ? "OK" : "FAILED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return RunCompileGate() ? 0 : 1;
}
