# The recorded serving mix replayed by bench/bench_server.cc (load driver
# and CI integration smoke). One Preference SQL statement per line; '#'
# lines and blank lines are skipped. The mix runs against the datagen
# car/trip tables (GenerateCars/GenerateTrips with the driver's
# --rows/--seed), spanning the surface a serving deployment exercises:
# skylines, prioritized/layered terms, grouping, ranked top-k, quality
# supervision and plain selections.
SELECT * FROM car PREFERRING LOWEST(price)
SELECT oid, price, mileage FROM car PREFERRING LOWEST(price) AND LOWEST(mileage) AND HIGHEST(horsepower)
SELECT * FROM car WHERE price < 30000 PREFERRING (category = 'roadster' ELSE category <> 'passenger') AND price AROUND 20000 CASCADE LOWEST(mileage)
SELECT * FROM car PREFERRING LOWEST(price) GROUPING category
SELECT TOP 10 oid, price, mileage FROM car PREFERRING LOWEST(price) AND LOWEST(mileage)
SELECT * FROM car SKYLINE OF price MIN, mileage MIN
SELECT * FROM car PREFERRING price AROUND 15000 BUT ONLY DISTANCE(price) <= 2000
SELECT oid FROM car WHERE price < 42000 LIMIT 5
SELECT * FROM trip PREFERRING LOWEST(price) AND HIGHEST(duration)
SELECT TOP 5 oid, destination, price FROM trip PREFERRING LOWEST(price)
