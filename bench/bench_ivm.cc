// Incremental view maintenance vs copy-on-write recompute: the perf
// claim behind src/ivm/ is that keeping a BMO result current under
// mutations via the maintained antichain (witness bookkeeping + batch
// kernels over antichain-sized blocks) beats the evict-and-recompute
// strategy by a wide margin. This driver measures both strategies over
// one deterministic mutation trace and writes Google-Benchmark-shaped
// JSON for the CI perf gate (bench/compare.py vs
// bench/baselines/BENCH_ivm.json):
//
//   ivm_cold_anchor          one full BMO pass over the N-row table,
//                            min over passes — the machine-speed
//                            normalizer every family is anchored on
//   ivm_cow_refresh          per-mutation full recompute (median):
//                            the pre-ivm strategy of invalidating the
//                            cached result and re-running the kernel
//   ivm_cow_mutate           per-mutation snapshot cost alone (median):
//                            applying the trace to shared-buffer
//                            relations — Add clones only the touched
//                            columns (per-column COW), deletes build
//                            index views — isolating storage-layer cost
//                            from the kernel recompute
//   ivm_delta_maintain       per-mutation MaintainedView::ApplyInsert /
//                            ApplyDelete (median) over the same trace
//   ivm_subscribed_query     Engine::Execute against a subscribed table
//                            right after an insert (median) — served
//                            from the delta-refreshed exec cache entry
//
// Acceptance gate (runs in-driver, exits nonzero on failure): at
// --rows >= 100000 the delta strategy must beat COW recompute by at
// least 5x on the per-mutation median.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins
using Clock = std::chrono::steady_clock;

struct DriverOptions {
  size_t rows = 100000;
  size_t mutations = 200;
  size_t repeat = 3;
  uint64_t seed = 42;
  std::string out;  // JSON path, empty = stdout summary only
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rows N] [--mutations M] [--repeat R]\n"
               "          [--seed S] [--out BENCH_ivm.json]\n",
               argv0);
  std::exit(2);
}

DriverOptions ParseArgs(int argc, char** argv) {
  DriverOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--rows") {
      opt.rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--mutations") {
      opt.mutations = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--repeat") {
      opt.repeat = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      opt.out = next();
    } else {
      Usage(argv[0]);
    }
  }
  if (opt.rows == 0 || opt.mutations == 0 || opt.repeat == 0) Usage(argv[0]);
  return opt;
}

// One deterministic mutation trace, replayed identically by every
// strategy. Inserts draw unseen rows from a pre-generated pool; deletes
// hit 1-3 random live rows (indices valid at application time).
struct Mutation {
  bool insert = true;
  Tuple row;                 // insert payload
  std::vector<size_t> dead;  // sorted pre-delete table row indices
};

std::vector<Mutation> BuildTrace(const Relation& pool, size_t seed_rows,
                                 size_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Mutation> trace;
  trace.reserve(count);
  size_t live = seed_rows;
  size_t next_pool = 0;
  for (size_t i = 0; i < count; ++i) {
    Mutation m;
    if (next_pool < pool.size() && (rng() % 8 != 0 || live < 16)) {
      m.row = pool.at(next_pool++);
      ++live;
    } else {
      m.insert = false;
      size_t want = 1 + rng() % 3;
      for (size_t k = 0; k < want; ++k) m.dead.push_back(rng() % live);
      std::sort(m.dead.begin(), m.dead.end());
      m.dead.erase(std::unique(m.dead.begin(), m.dead.end()), m.dead.end());
      live -= m.dead.size();
    }
    trace.push_back(std::move(m));
  }
  return trace;
}

Relation ApplyToTable(const Relation& table, const Mutation& m) {
  if (m.insert) {
    Relation next = table;
    next.Add(m.row);
    return next;
  }
  std::vector<size_t> survivors;
  survivors.reserve(table.size() - m.dead.size());
  for (size_t i = 0; i < table.size(); ++i) {
    if (!std::binary_search(m.dead.begin(), m.dead.end(), i)) {
      survivors.push_back(i);
    }
  }
  return table.SelectRows(survivors);
}

double MedianNs(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  return samples->empty() ? 0.0 : (*samples)[samples->size() / 2];
}

struct Family {
  std::string name;
  double real_time_ns = 0.0;
};

void WriteJson(const DriverOptions& opt, const std::vector<Family>& families) {
  std::ofstream out(opt.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    std::exit(1);
  }
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"bench_ivm\",\n"
      << "    \"rows\": " << opt.rows << ",\n"
      << "    \"mutations\": " << opt.mutations << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < families.size(); ++i) {
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "    {\"name\": \"%s\", \"run_name\": \"%s\", "
                  "\"run_type\": \"iteration\", \"real_time\": %.1f, "
                  "\"cpu_time\": 0.0, \"time_unit\": \"ns\"}%s\n",
                  families[i].name.c_str(), families[i].name.c_str(),
                  families[i].real_time_ns,
                  i + 1 < families.size() ? "," : "");
    out << entry;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  DriverOptions opt = ParseArgs(argc, argv);
  const PrefPtr term = Pareto(Lowest("price"), Lowest("mileage"));
  const BmoOptions bmo;  // defaults: vectorized, kAuto — the serving config

  const Relation seed_table = GenerateCars(opt.rows, opt.seed);
  const Relation pool = GenerateCars(opt.mutations, opt.seed + 1);
  const std::vector<Mutation> trace =
      BuildTrace(pool, seed_table.size(), opt.mutations, opt.seed + 2);

  // Anchor: one full BMO pass over the seed table, min over passes
  // (noise only ever adds time, so min is the stable estimator).
  double anchor_ns = 1e18;
  for (size_t r = 0; r < opt.repeat + 1; ++r) {
    Clock::time_point t0 = Clock::now();
    size_t maxima = BmoIndices(seed_table, term, bmo).size();
    double ns = std::chrono::duration<double, std::nano>(Clock::now() - t0)
                    .count();
    if (maxima == 0) {
      std::fprintf(stderr, "empty maxima over datagen cars?\n");
      return 1;
    }
    if (r > 0) anchor_ns = std::min(anchor_ns, ns);  // pass 0 warms up
  }

  // COW strategy: every mutation invalidates the result; refresh cost is
  // a full kernel pass over the post-mutation table.
  double cow_ns = 1e18;
  for (size_t r = 0; r < opt.repeat; ++r) {
    Relation table = seed_table;
    std::vector<double> samples;
    samples.reserve(trace.size());
    for (const Mutation& m : trace) {
      table = ApplyToTable(table, m);
      Clock::time_point t0 = Clock::now();
      volatile size_t keep = BmoIndices(table, term, bmo).size();
      (void)keep;
      samples.push_back(
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count());
    }
    cow_ns = std::min(cow_ns, MedianNs(&samples));
  }

  // COW mutation cost alone: the same trace applied to shared-buffer
  // snapshots, no kernel pass. Every strategy pays this storage cost;
  // tracking it separately pins the per-column COW clone (inserts) and
  // the index-view build (deletes) against regressions.
  double cow_mutate_ns = 1e18;
  for (size_t r = 0; r < opt.repeat; ++r) {
    Relation table = seed_table;
    std::vector<double> samples;
    samples.reserve(trace.size());
    for (const Mutation& m : trace) {
      Clock::time_point t0 = Clock::now();
      Relation next = ApplyToTable(table, m);
      samples.push_back(
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count());
      table = std::move(next);
    }
    cow_mutate_ns = std::min(cow_mutate_ns, MedianNs(&samples));
  }

  // Delta strategy: the maintained view absorbs the same trace.
  double delta_ns = 1e18;
  for (size_t r = 0; r < opt.repeat; ++r) {
    Relation table = seed_table;
    ivm::MaintainedView view(term, nullptr, table, 1, bmo);
    uint64_t version = 1;
    std::vector<double> samples;
    samples.reserve(trace.size());
    for (const Mutation& m : trace) {
      const size_t insert_at = table.size();
      table = ApplyToTable(table, m);
      Clock::time_point t0 = Clock::now();
      if (m.insert) {
        view.ApplyInsert(m.row, insert_at, ++version);
      } else {
        view.ApplyDelete(m.dead, ++version);
      }
      samples.push_back(
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count());
    }
    // Cross-check: the maintained antichain must equal a recompute.
    if (view.MaximaRows().size() != BmoIndices(table, term, bmo).size()) {
      std::fprintf(stderr, "maintained view diverged from recompute\n");
      return 1;
    }
    delta_ns = std::min(delta_ns, MedianNs(&samples));
  }

  // End-to-end serving: subscribed engine, insert then query; Execute is
  // served from the exec-cache entry the delta refresh installed.
  double serve_ns = 1e18;
  {
    const char* kSql =
        "SELECT * FROM car PREFERRING LOWEST(price) AND LOWEST(mileage)";
    Engine engine;
    engine.RegisterTable("car", seed_table);
    Engine::Subscription sub = engine.Subscribe(kSql);
    std::vector<double> samples;
    for (const Mutation& m : trace) {
      if (!m.insert) continue;
      engine.Insert("car", m.row);
      Clock::time_point t0 = Clock::now();
      volatile size_t keep = engine.Execute(kSql).relation.size();
      (void)keep;
      samples.push_back(
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count());
      while (sub.Poll().has_value()) {}
    }
    serve_ns = MedianNs(&samples);
  }

  std::vector<Family> families = {
      {"ivm_cold_anchor", anchor_ns},
      {"ivm_cow_refresh", cow_ns},
      {"ivm_cow_mutate", cow_mutate_ns},
      {"ivm_delta_maintain", delta_ns},
      {"ivm_subscribed_query", serve_ns},
  };
  std::printf("rows=%zu mutations=%zu\n", opt.rows, opt.mutations);
  for (const Family& f : families) {
    std::printf("  %-22s %12.1f us\n", f.name.c_str(), f.real_time_ns / 1e3);
  }
  if (!opt.out.empty()) WriteJson(opt, families);

  if (opt.rows >= 100000 && cow_ns < 5.0 * delta_ns) {
    std::fprintf(stderr,
                 "FAIL: delta maintenance (%.1f us) is not 5x faster than "
                 "COW recompute (%.1f us) at %zu rows\n",
                 delta_ns / 1e3, cow_ns / 1e3, opt.rows);
    return 1;
  }
  return 0;
}
