// Experiment harness L4/P4 (see DESIGN.md): measures the filter-effect
// results of §5.5 — the Prop 13 result-size inequalities and the automatic
// 'AND/OR'-like behavior of '&' vs '(x)' — on the synthetic used-car
// database, printing the size tables the analysis predicts.

#include <cstdio>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): experiment driver, brevity wins

size_t SizeOver(const Relation& r, const PrefPtr& p,
                const std::vector<std::string>& attrs) {
  return Bmo(r, p).DistinctProjections(attrs).size();
}

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "VIOLATED", what.c_str());
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  std::printf(
      "prefdb reproduction harness: filter effects (Prop 13, section 5.5)\n");

  for (size_t n : {200, 1000, 5000}) {
    Relation cars = GenerateCars(n, 1234 + n);
    PrefPtr p1 = Lowest("price");
    PrefPtr p2 = Lowest("mileage");
    PrefPtr p3 = Highest("horsepower");
    std::vector<std::string> a12 = {"price", "mileage"};

    size_t s_p1 = SizeOver(cars, p1, a12);
    size_t s_and12 = SizeOver(cars, Prioritized(p1, p2), a12);
    size_t s_and21 = SizeOver(cars, Prioritized(p2, p1), a12);
    size_t s_or = SizeOver(cars, Pareto(p1, p2), a12);

    std::printf("\n--- cars n=%zu ---\n", n);
    std::printf("  size(P1)        = %zu   (P1 = LOWEST(price))\n", s_p1);
    std::printf("  size(P1 & P2)   = %zu   ('AND'-like: stronger filter)\n",
                s_and12);
    std::printf("  size(P2 & P1)   = %zu\n", s_and21);
    std::printf("  size(P1 (x) P2) = %zu   ('OR'-like: weaker filter)\n",
                s_or);
    Check(s_and12 <= s_p1, "Prop 13c: size(P1&P2) <= size(P1)");
    Check(s_or >= s_and12, "Prop 13d: size(P1(x)P2) >= size(P1&P2)");
    Check(s_or >= s_and21, "Prop 13d: size(P1(x)P2) >= size(P2&P1)");

    // Three-way Pareto: still no flooding, never empty.
    size_t s3 = ResultSize(cars, Pareto({p1, p2, p3}));
    std::printf("  size(P1 (x) P2 (x) P3) = %zu of %zu cars\n", s3, n);
    Check(s3 >= 1, "BMO avoids the empty-result effect");
    Check(s3 < n / 2, "BMO avoids the flooding effect");
  }

  // Prop 13a/b on range-disjoint pieces and intersections.
  std::printf("\n--- Prop 13a/b on synthetic slices ---\n");
  Relation r(Schema{{"x", ValueType::kInt}});
  for (int v = 0; v < 12; ++v) r.Add({Value(v % 7)});
  PrefPtr u1 = Subset(Lowest("x"), {Tuple({Value(0)}), Tuple({Value(1)}),
                                    Tuple({Value(2)})});
  PrefPtr u2 = Subset(Highest("x"), {Tuple({Value(5)}), Tuple({Value(6)})});
  PrefPtr uni = DisjointUnion(u1, u2);
  Check(ResultSize(r, uni) <= ResultSize(r, u1),
        "Prop 13a: size(P1+P2) <= size(P1)");
  Check(ResultSize(r, uni) <= ResultSize(r, u2),
        "Prop 13a: size(P1+P2) <= size(P2)");
  PrefPtr i1 = Around("x", 2);
  PrefPtr i2 = Lowest("x");
  PrefPtr isect = Intersection(i1, i2);
  Check(ResultSize(r, isect) >= ResultSize(r, i1),
        "Prop 13b: size(P1<>P2) >= size(P1)");
  Check(ResultSize(r, isect) >= ResultSize(r, i2),
        "Prop 13b: size(P1<>P2) >= size(P2)");

  std::printf("\n%s (%d violations)\n",
              g_failures == 0 ? "ALL FILTER-EFFECT PREDICTIONS HOLD"
                              : "FILTER-EFFECT VIOLATIONS",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
