// Experiment harness X3/X4 (see DESIGN.md): the §7 roadmap features —
// e-negotiation over the Pareto frontier and preference mining from click
// logs — demonstrated and checked on the synthetic car market.

#include <cstdio>
#include <random>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): experiment driver, brevity wins

int g_failures = 0;
void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what);
  if (!ok) ++g_failures;
}

void Negotiation() {
  std::printf("\n=== X3: e-negotiation (buyer vs dealer) ===\n");
  Relation market = GenerateCars(3000, 99);
  PrefPtr buyer = Pareto(Lowest("price"), Lowest("mileage"));
  PrefPtr dealer = Highest("commission");
  NegotiationAnalysis a = AnalyzeNegotiation(market, buyer, dealer);
  std::printf("  frontier=%zu consensus=%zu buyer-favored=%zu "
              "dealer-favored=%zu middle-ground=%zu\n",
              a.pareto_frontier.size(), a.consensus.size(),
              a.party1_favored.size(), a.party2_favored.size(),
              a.middle_ground.size());
  Check(a.consensus.size() + a.party1_favored.size() +
                a.party2_favored.size() + a.middle_ground.size() ==
            a.pareto_frontier.size(),
        "classification partitions the frontier");
  auto proposals = SuggestCompromises(market, buyer, dealer, 5);
  Check(!proposals.empty(), "compromise proposals exist");
  bool sorted = true;
  for (size_t i = 1; i < proposals.size(); ++i) {
    if (proposals[i] < proposals[i - 1]) sorted = false;
  }
  Check(sorted, "proposals ranked by the min-max fairness key");
  for (const auto& p : proposals) {
    std::printf("  proposal regret %zu/%zu: row %zu\n", p.regret1, p.regret2,
                p.row);
  }
}

void Mining() {
  std::printf("\n=== X4: preference mining from click logs ===\n");
  Relation market = GenerateCars(4000, 123);
  std::mt19937_64 rng(5);
  // Simulated shopper: favorite color red, price target ~10000.
  std::vector<mining::LogEntry> log;
  for (int session = 0; session < 80; ++session) {
    std::vector<size_t> rows;
    for (int i = 0; i < 12; ++i) rows.push_back(rng() % market.size());
    Relation shown = market.SelectRows(rows);
    size_t color_col = *shown.schema().IndexOf("color");
    size_t price_col = *shown.schema().IndexOf("price");
    size_t best = 0;
    double best_score = -1e18;
    for (size_t i = 0; i < shown.size(); ++i) {
      double score = -std::abs(*shown.at(i)[price_col].numeric() - 10000.0);
      if (shown.at(i)[color_col] == Value("red")) score += 3000;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    log.push_back({std::move(shown), {best}});
  }
  mining::MiningResult mined = mining::MinePreferences(log);
  bool found_color = false, found_price = false;
  for (const auto& m : mined.attributes) {
    std::printf("  mined %-14s %-40s (%s)\n", m.attribute.c_str(),
                m.preference->ToString().c_str(), m.evidence.c_str());
    if (m.attribute == "color" &&
        (m.preference->kind() == PreferenceKind::kPos ||
         m.preference->kind() == PreferenceKind::kPosNeg)) {
      found_color = true;
    }
    if (m.attribute == "price" &&
        m.preference->kind() == PreferenceKind::kAround) {
      found_price = true;
    }
  }
  Check(found_color, "recovered the color favorite as a POS-style set");
  Check(found_price, "recovered the price target as AROUND");
  Check(mined.combined != nullptr, "combined Pareto term built");
  if (mined.combined) {
    Relation best = Bmo(market, mined.combined);
    Check(!best.empty(), "mined preference is executable under BMO");
  }
}

}  // namespace

int main() {
  std::printf("prefdb reproduction harness: section-7 roadmap features\n");
  Negotiation();
  Mining();
  std::printf("\n%s (%d mismatches)\n",
              g_failures == 0 ? "ROADMAP FEATURES VERIFIED" : "FAILURES",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
