// Experiment harness P3 (see DESIGN.md): BMO result sizes as a function of
// n, d and data correlation, plus the §6.1/[KFH01] claim that typical
// Pareto result sizes on e-shopping workloads range "from a few to a few
// dozens". The absolute numbers depend on the synthetic data; the *shape*
// (adaptive filter, growth with d, anti-correlated >> correlated) is the
// reproduced result.

#include <cstdio>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): experiment driver, brevity wins

PrefPtr SkylinePref(size_t d) {
  std::vector<PrefPtr> prefs;
  for (size_t i = 0; i < d; ++i) {
    prefs.push_back(Highest("d" + std::to_string(i)));
  }
  return Pareto(prefs);
}

int g_failures = 0;
void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  std::printf("prefdb reproduction harness: BMO result sizes (P3)\n");

  std::printf("\n--- skyline size vs n, d, correlation ---\n");
  std::printf("%12s %4s %6s %14s %14s %14s\n", "", "d", "n", "correlated",
              "independent", "anti-corr.");
  size_t indep_d2_small = 0, indep_d5_small = 0;
  size_t anti_big = 0, corr_big = 0;
  for (size_t d : {2, 3, 5}) {
    for (size_t n : {1000, 10000}) {
      size_t sizes[3];
      int i = 0;
      for (Correlation corr :
           {Correlation::kCorrelated, Correlation::kIndependent,
            Correlation::kAntiCorrelated}) {
        Relation r = GenerateVectors(n, d, corr, 42 + d);
        sizes[i++] = ResultSize(r, SkylinePref(d));
      }
      std::printf("%12s %4zu %6zu %14zu %14zu %14zu\n", "skyline", d, n,
                  sizes[0], sizes[1], sizes[2]);
      if (d == 2 && n == 1000) indep_d2_small = sizes[1];
      if (d == 5 && n == 1000) indep_d5_small = sizes[1];
      if (d == 3 && n == 10000) {
        corr_big = sizes[0];
        anti_big = sizes[2];
      }
    }
  }
  Check(indep_d5_small > indep_d2_small,
        "result size grows with dimensionality d");
  Check(anti_big > corr_big,
        "anti-correlated data yields far larger results than correlated");

  std::printf("\n--- e-shopping Pareto queries on the car database "
              "([KFH01] claim: a few to a few dozens) ---\n");
  struct Query {
    const char* label;
    PrefPtr pref;
    // Typical customer queries carry AROUND targets / categorical wishes;
    // the open-ended all-extremal skyline is the known blow-up contrast
    // case ([BKS01]) and is exempt from the "few dozens" band.
    bool typical;
  };
  const Query queries[] = {
      {"price+mileage", Pareto(Lowest("price"), Lowest("mileage")), true},
      {"price+mileage+power (skyline)",
       Pareto({Lowest("price"), Lowest("mileage"), Highest("horsepower")}),
       false},
      {"around-price + color",
       Pareto(Around("price", 9000), Pos("color", {"red", "blue"})), true},
      {"category-else + economy",
       Pareto(PosPos("category", {"cabriolet"}, {"roadster"}),
              Highest("fuel_economy")),
       true},
      {"full wish list",
       Pareto({Around("price", 12000), Lowest("mileage"),
               Around("horsepower", 120), Highest("year")}),
       true},
  };
  std::printf("%32s %8s %8s %8s\n", "query", "n=2k", "n=10k", "n=50k");
  bool band_ok = true;
  size_t skyline_50k = 0, typical_max = 0;
  for (const Query& q : queries) {
    std::printf("%32s", q.label);
    for (size_t n : {2000, 10000, 50000}) {
      Relation cars = GenerateCars(n, 9000 + n);
      size_t size = ResultSize(cars, q.pref);
      std::printf(" %8zu", size);
      if (q.typical) {
        typical_max = std::max(typical_max, size);
        if (size < 1 || size > 100) band_ok = false;
      } else if (n == 50000) {
        skyline_50k = size;
      }
    }
    std::printf("\n");
  }
  Check(band_ok,
        "typical (targeted) Pareto queries stay in the 'few to ~dozens' "
        "band (<=100)");
  Check(skyline_50k > typical_max,
        "open-ended all-extremal skyline floods in comparison — the case "
        "targeted wishes avoid");

  std::printf("\n--- adaptive filter: size is driven by data quality, "
              "not volume ---\n");
  PrefPtr p = Pareto(Lowest("price"), Lowest("mileage"));
  for (size_t n : {1000, 4000, 16000, 64000}) {
    Relation cars = GenerateCars(n, 777);
    std::printf("  n=%6zu  ->  size=%zu\n", n, ResultSize(cars, p));
  }
  std::printf("  (sizes stay flat-ish while n grows 64x — BMO adapts to "
              "quality)\n");

  std::printf("\n%s (%d mismatches)\n",
              g_failures == 0 ? "RESULT-SIZE SHAPE REPRODUCED"
                              : "SHAPE MISMATCHES",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
