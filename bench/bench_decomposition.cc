// Benchmark P2 (see DESIGN.md): decomposition-based evaluation
// (Props 10-12) vs direct window evaluation for prioritized and Pareto
// queries on the used-car workload — the "divide & conquer algorithms
// exploiting the decomposition principles" the paper's outlook proposes as
// an optimizer alternative.

#include <benchmark/benchmark.h>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins

void RunCarQuery(benchmark::State& state, const PrefPtr& p,
                 BmoAlgorithm algo) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation cars = GenerateCars(n, 4711);
  size_t result_size = 0;
  for (auto _ : state) {
    std::vector<size_t> rows = BmoIndices(cars, p, {algo});
    result_size = rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result"] = static_cast<double>(result_size);
}

// Prioritized query with a non-chain head: Prop 10 grouping applies.
PrefPtr PrioritizedQuery() {
  return Prioritized(Pos("color", {"red", "blue"}), Lowest("price"));
}

// Prioritized query with a chain head: Prop 11 cascade applies.
PrefPtr CascadeQuery() {
  return Prioritized(Lowest("price"), Lowest("mileage"));
}

// Pareto query: Prop 12 (three-term union incl. YY) applies.
PrefPtr ParetoQuery() {
  return Pareto(Around("price", 9000), Lowest("mileage"));
}

void BM_prioritized_direct(benchmark::State& state) {
  RunCarQuery(state, PrioritizedQuery(), BmoAlgorithm::kBlockNestedLoop);
}
void BM_prioritized_decomposed(benchmark::State& state) {
  RunCarQuery(state, PrioritizedQuery(), BmoAlgorithm::kDecomposition);
}
void BM_cascade_direct(benchmark::State& state) {
  RunCarQuery(state, CascadeQuery(), BmoAlgorithm::kBlockNestedLoop);
}
void BM_cascade_decomposed(benchmark::State& state) {
  RunCarQuery(state, CascadeQuery(), BmoAlgorithm::kDecomposition);
}
void BM_pareto_direct(benchmark::State& state) {
  RunCarQuery(state, ParetoQuery(), BmoAlgorithm::kBlockNestedLoop);
}
void BM_pareto_decomposed(benchmark::State& state) {
  RunCarQuery(state, ParetoQuery(), BmoAlgorithm::kDecomposition);
}
void BM_pareto_naive(benchmark::State& state) {
  RunCarQuery(state, ParetoQuery(), BmoAlgorithm::kNaive);
}

BENCHMARK(BM_prioritized_direct)->Arg(2000)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_prioritized_decomposed)->Arg(2000)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_cascade_direct)->Arg(2000)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_cascade_decomposed)->Arg(2000)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_pareto_naive)->Arg(2000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_pareto_direct)->Arg(2000)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_pareto_decomposed)->Arg(2000)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
