// Benchmark: the exec/ parallel partitioned BMO engine vs single-threaded
// evaluation, sweeping data size N in {10k, 100k, 1M} and worker count.
// Workloads:
//   - d-dimensional Pareto skyline (the 'SKYLINE OF' fragment, §6.1);
//   - an '&'-chain (prioritized cascade of HIGHEST over distinct
//     attributes), the lexicographic workload of Prop 3h.
// The tiny N=4096 points exist so CI can smoke-run every benchmark
// quickly (--benchmark_filter=/4096).

#include <benchmark/benchmark.h>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins

PrefPtr SkylinePref(size_t d) {
  std::vector<PrefPtr> prefs;
  for (size_t i = 0; i < d; ++i) {
    prefs.push_back(Highest("d" + std::to_string(i)));
  }
  return Pareto(prefs);
}

PrefPtr PrioritizedChainPref(size_t d) {
  PrefPtr p = Highest("d" + std::to_string(d - 1));
  for (size_t i = d - 1; i-- > 0;) {
    p = Prioritized(Highest("d" + std::to_string(i)), p);
  }
  return p;
}

void RunParallel(benchmark::State& state, const PrefPtr& p, size_t n,
                 size_t d, size_t num_threads) {
  Relation r = GenerateVectors(n, d, Correlation::kIndependent, 42);
  PhysicalPlan plan;
  plan.num_threads = num_threads;
  size_t result_size = 0;
  for (auto _ : state) {
    std::vector<size_t> rows = ParallelBmoIndices(r, p, plan);
    result_size = rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result"] = static_cast<double>(result_size);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void RunSequential(benchmark::State& state, const PrefPtr& p, size_t n,
                   size_t d, BmoAlgorithm algo) {
  Relation r = GenerateVectors(n, d, Correlation::kIndependent, 42);
  size_t result_size = 0;
  for (auto _ : state) {
    std::vector<size_t> rows = BmoIndices(r, p, {algo});
    result_size = rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result"] = static_cast<double>(result_size);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

// ---- d-dimensional skyline: parallel thread sweep vs sequential BNL. ----

void BM_skyline_parallel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  const size_t threads = static_cast<size_t>(state.range(2));
  RunParallel(state, SkylinePref(d), n, d, threads);
}
BENCHMARK(BM_skyline_parallel)
    ->ArgsProduct({{4096, 10000, 100000, 1000000}, {4}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"n", "d", "threads"});

void BM_skyline_bnl_single(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  RunSequential(state, SkylinePref(d), n, d,
                BmoAlgorithm::kBlockNestedLoop);
}
BENCHMARK(BM_skyline_bnl_single)
    ->ArgsProduct({{4096, 10000, 100000, 1000000}, {4}})
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"n", "d"});

// ---- '&'-chain (prioritized cascade) over distinct attributes. ----

void BM_chain_parallel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  const size_t threads = static_cast<size_t>(state.range(2));
  RunParallel(state, PrioritizedChainPref(d), n, d, threads);
}
BENCHMARK(BM_chain_parallel)
    ->ArgsProduct({{4096, 10000, 100000, 1000000}, {4}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"n", "d", "threads"});

void BM_chain_bnl_single(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  RunSequential(state, PrioritizedChainPref(d), n, d,
                BmoAlgorithm::kBlockNestedLoop);
}
BENCHMARK(BM_chain_bnl_single)
    ->ArgsProduct({{4096, 10000, 100000, 1000000}, {4}})
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"n", "d"});

// ---- End-to-end: kAuto escalation through the public Bmo() entry. ----

void BM_auto_escalation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r = GenerateVectors(n, 4, Correlation::kIndependent, 42);
  PrefPtr p = SkylinePref(4);
  BmoOptions options;  // kAuto: parallel above the distinct-value threshold
  for (auto _ : state) {
    std::vector<size_t> rows = BmoIndices(r, p, options);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_auto_escalation)
    ->Args({4096})
    ->Args({100000})
    ->Args({1000000})
    ->Unit(benchmark::kMillisecond)
    ->ArgName("n");

}  // namespace

BENCHMARK_MAIN();
