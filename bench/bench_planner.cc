// Planner benchmark + misprediction gate.
//
// Families (tracked by the CI perf gate at n=4096, see bench/compare.py):
//   BM_planner_anchor_rowwise     forced rowwise BNL (the per-file anchor
//                                 that cancels machine speed)
//   BM_planner_overhead_estimate  statistics-level planning only
//                                 (EstimateTermStats + cost model)
//   BM_planner_overhead_measured  measured planning only (sampled window
//                                 probe + cost model, table precompiled)
//   BM_planner_chosen_<family>    end-to-end kAuto execution (plan +
//                                 chosen kernel) per workload regime
//
// After the benchmarks run, main() executes the misprediction check: for
// every workload family, each eligible block algorithm is wall-clocked
// on the compiled table (median of 3) and the planner's choice must land
// within 1.3x of the best measured algorithm — the acceptance bound that
// keeps the cost-model constants honest as kernels evolve.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): benchmark driver, brevity wins

PrefPtr SkylinePref(size_t d) {
  std::vector<PrefPtr> prefs;
  for (size_t i = 0; i < d; ++i) {
    prefs.push_back(Highest("d" + std::to_string(i)));
  }
  return Pareto(prefs);
}

struct Family {
  const char* name;
  Correlation corr;
  size_t d;
};

const Family kFamilies[] = {
    {"anti_d4", Correlation::kAntiCorrelated, 4},
    {"indep_d4", Correlation::kIndependent, 4},
    {"anti_d2", Correlation::kAntiCorrelated, 2},
    {"corr_d4", Correlation::kCorrelated, 4},
};

// --- anchor: forced rowwise BNL so committed baselines normalize out
// machine speed (compare.py picks the first family containing "rowwise").
void BM_planner_anchor_rowwise(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r = GenerateVectors(n, 4, Correlation::kIndependent, 42);
  PrefPtr p = SkylinePref(4);
  BmoOptions options;
  options.algorithm = BmoAlgorithm::kBlockNestedLoop;
  options.simd = SimdMode::kOff;
  for (auto _ : state) {
    std::vector<size_t> rows = BmoIndices(r, p, options);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_planner_anchor_rowwise)->Arg(4096)->Unit(benchmark::kMillisecond);

// --- planning overhead, statistics level (what ChooseAlgorithm costs on
// the engine's cached TableStats).
void BM_planner_overhead_estimate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r = GenerateVectors(n, 4, Correlation::kIndependent, 42);
  PrefPtr p = SkylinePref(4);
  TableStats stats = TableStats::Derive(r, p->attributes());
  for (auto _ : state) {
    PhysicalPlan plan = ChooseAlgorithm(stats, r.schema(), n, p, {});
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_planner_overhead_estimate)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// --- planning overhead, measured level (the sampled window probe over a
// precompiled table + the cost model).
void BM_planner_overhead_measured(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r = GenerateVectors(n, 4, Correlation::kAntiCorrelated, 42);
  PrefPtr p = SkylinePref(4);
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  auto table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                   proj.values.size());
  for (auto _ : state) {
    TermStats stats = MeasureTermStats(*table, p, n);
    PhysicalPlan plan = PlanPhysical(stats, {});
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_planner_overhead_measured)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// --- end-to-end kAuto per workload regime: the chosen plan's cost is
// what the gate tracks; a planner that starts mispredicting shows up as
// a regression here even before the misprediction check trips.
void RunChosen(benchmark::State& state, const Family& family) {
  const size_t n = static_cast<size_t>(state.range(0));
  Relation r = GenerateVectors(n, family.d, family.corr, 42);
  PrefPtr p = SkylinePref(family.d);
  for (auto _ : state) {
    std::vector<size_t> rows = BmoIndices(r, p, {});
    benchmark::DoNotOptimize(rows);
  }
}
#define CHOSEN_BENCH(fam, index)                                       \
  void BM_planner_chosen_##fam(benchmark::State& state) {              \
    RunChosen(state, kFamilies[index]);                                \
  }                                                                    \
  BENCHMARK(BM_planner_chosen_##fam)->Arg(4096)->Unit(                 \
      benchmark::kMillisecond)

CHOSEN_BENCH(anti_d4, 0);
CHOSEN_BENCH(indep_d4, 1);
CHOSEN_BENCH(anti_d2, 2);
CHOSEN_BENCH(corr_d4, 3);

// ---------------------------------------------------------------------
// Misprediction check

double MedianMs(const std::function<void()>& fn) {
  std::vector<double> samples;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[1];
}

bool CheckFamily(const Family& family, size_t n) {
  Relation r = GenerateVectors(n, family.d, family.corr, 42);
  PrefPtr p = SkylinePref(family.d);
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  auto table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                   proj.values.size());
  if (!table) {
    std::fprintf(stderr, "planner-check %s: term did not compile\n",
                 family.name);
    return false;
  }
  const size_t m = proj.values.size();
  PlanScope scope;
  scope.allow_decomposition = false;
  PhysicalPlan plan = PlanPhysical(MeasureTermStats(*table, p, n), {}, scope);

  struct Candidate {
    BmoAlgorithm algo;
    double ms;
  };
  std::vector<Candidate> candidates;
  auto time_algo = [&](BmoAlgorithm algo) {
    return MedianMs([&] {
      std::vector<bool> maximal = table->MaximaRange(algo, 0, m, plan);
      benchmark::DoNotOptimize(maximal);
    });
  };
  candidates.push_back(
      {BmoAlgorithm::kBlockNestedLoop, time_algo(BmoAlgorithm::kBlockNestedLoop)});
  if (table->HasSortKeys()) {
    candidates.push_back(
        {BmoAlgorithm::kSortFilter, time_algo(BmoAlgorithm::kSortFilter)});
  }
  if (table->CanDivideConquer()) {
    candidates.push_back(
        {BmoAlgorithm::kDivideConquer, time_algo(BmoAlgorithm::kDivideConquer)});
  }
  double best = candidates[0].ms;
  const Candidate* chosen = nullptr;
  for (const Candidate& c : candidates) {
    best = std::min(best, c.ms);
    if (c.algo == plan.algorithm) chosen = &c;
  }
  if (chosen == nullptr) {
    // kParallel cannot be timed via MaximaRange; it is never chosen at
    // smoke sizes (below parallel_threshold), so this is a real failure.
    std::fprintf(stderr, "planner-check %s: chose %s, not a block kernel\n",
                 family.name, BmoAlgorithmName(plan.algorithm));
    return false;
  }
  // 1.3x of best measured, plus a 50us absolute floor for clock noise on
  // the sub-millisecond families.
  const double bound = std::max(best * 1.3, best + 0.05);
  const bool ok = chosen->ms <= bound;
  std::fprintf(stderr,
               "planner-check %-9s m=%zu chose %-3s %.3fms (best %.3fms, "
               "bound %.3fms, window~%.0f) %s\n",
               family.name, m, BmoAlgorithmName(plan.algorithm), chosen->ms,
               best, bound, plan.stats.est_window, ok ? "OK" : "MISPREDICT");
  return ok;
}

bool RunMispredictionCheck() {
  bool ok = true;
  for (const Family& family : kFamilies) {
    ok = CheckFamily(family, 4096) && ok;
  }
  std::fprintf(stderr, "planner-check: %s\n", ok ? "passed" : "FAILED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return RunMispredictionCheck() ? 0 : 1;
}
