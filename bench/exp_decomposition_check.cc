// Experiment harness L3 (see DESIGN.md): validates the decomposition
// theorems Props 8-12 as query-result set equalities over many randomized
// relations and preference terms, and reports the YY-set statistics that
// drive divide & conquer evaluation (§5.2-5.4).

#include <cstdio>
#include <random>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): experiment driver, brevity wins

Relation RandomXY(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  Relation r(Schema{{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  for (size_t i = 0; i < n; ++i) {
    r.Add({Value(static_cast<int>(rng() % 9) - 4),
           Value(static_cast<int>(rng() % 9) - 4)});
  }
  return r;
}

}  // namespace

int main() {
  std::printf("prefdb reproduction harness: decomposition theorems "
              "(Props 8-12)\n\n");
  constexpr int kRounds = 150;
  std::vector<Value> dom = {Value(-4), Value(-2), Value(0), Value(2)};

  int checked = 0, failed = 0;
  size_t yy_total = 0, pareto_total = 0;

  for (int round = 0; round < kRounds; ++round) {
    uint64_t seed = 7000 + round;
    Relation r = RandomXY(seed, 60);
    RandomTermGen gx("x", dom, seed);
    RandomTermGen gy("y", dom, seed + 13);
    PrefPtr p1 = gx.Term(1);
    PrefPtr p2 = gy.Term(1);

    // Prop 10 + 12 via the decomposition evaluator vs naive.
    for (const PrefPtr& p :
         {Pareto(p1, p2), Prioritized(p1, p2), Prioritized(p2, p1)}) {
      ++checked;
      if (BmoDecompositionIndices(r, p) !=
          BmoIndices(r, p, {BmoAlgorithm::kNaive})) {
        ++failed;
        std::printf("  MISMATCH: %s\n", p->ToString().c_str());
      }
    }

    // YY statistics for the Pareto decomposition (3rd term of Prop 12).
    PrefPtr pr12 = Prioritized(p1, p2);
    PrefPtr pr21 = Prioritized(p2, p1);
    yy_total += YYIndices(r, pr12, pr21).size();
    pareto_total += BmoIndices(r, Pareto(p1, p2)).size();

    // Prop 8 on range-disjoint slices.
    PrefPtr u1 = Subset(gx.Term(1), {Tuple({dom[0]}), Tuple({dom[1]})});
    PrefPtr u2 = Subset(gx.Term(1), {Tuple({dom[2]}), Tuple({dom[3]})});
    ++checked;
    std::vector<size_t> direct =
        BmoIndices(r, DisjointUnion(u1, u2), {BmoAlgorithm::kNaive});
    std::vector<size_t> decomposed = Relation::IndexIntersect(
        BmoIndices(r, u1, {BmoAlgorithm::kNaive}),
        BmoIndices(r, u2, {BmoAlgorithm::kNaive}));
    if (direct != decomposed) {
      ++failed;
      std::printf("  MISMATCH (Prop 8): %s + %s\n", u1->ToString().c_str(),
                  u2->ToString().c_str());
    }

    // Prop 9 on same-attribute intersections.
    PrefPtr q1 = gx.Term(1);
    PrefPtr q2 = gx.Term(1);
    ++checked;
    std::vector<size_t> direct9 =
        BmoIndices(r, Intersection(q1, q2), {BmoAlgorithm::kNaive});
    std::vector<size_t> decomposed9 = Relation::IndexUnion(
        Relation::IndexUnion(BmoIndices(r, q1, {BmoAlgorithm::kNaive}),
                             BmoIndices(r, q2, {BmoAlgorithm::kNaive})),
        YYIndices(r, q1, q2));
    if (direct9 != decomposed9) {
      ++failed;
      std::printf("  MISMATCH (Prop 9): %s <> %s\n", q1->ToString().c_str(),
                  q2->ToString().c_str());
    }
  }

  std::printf("decomposition identities: %d checked, %d failed\n", checked,
              failed);
  std::printf("YY-set share of Pareto results: %.1f%% "
              "(compromise candidates neither prioritized view yields)\n",
              pareto_total == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(yy_total) /
                        static_cast<double>(pareto_total));
  std::printf("\n%s\n", failed == 0 ? "ALL DECOMPOSITION THEOREMS HOLD"
                                    : "DECOMPOSITION FAILURES");
  return failed == 0 ? 0 : 1;
}
