// Benchmark P5 (see DESIGN.md): end-to-end Preference SQL latency for the
// paper's §6.1 queries (parse -> hard selection -> BMO -> BUT ONLY),
// against the synthetic used-car and trips catalogs.

#include <benchmark/benchmark.h>

#include "prefdb.h"

namespace {

using namespace prefdb;        // NOLINT(google-build-using-namespace): benchmark driver, brevity wins
using psql::Parse;

// Cold-execution engine: caches off, so every Execute() measures the full
// parse -> translate -> optimize -> compile -> execute pipeline (the
// legacy free-function behavior). bench_engine_cache measures the warm
// prepared path.
EngineOptions ColdOptions() {
  EngineOptions options;
  options.enable_plan_cache = false;
  options.enable_exec_cache = false;
  return options;
}

void RegisterTables(Engine& engine, size_t n) {
  engine.RegisterTable("car", GenerateCars(n, 2002));
  engine.RegisterTable("trips", GenerateTrips(n, 2002));
}

const char* kUsedCarQuery =
    "SELECT * FROM car WHERE make = 'Opel' "
    "PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND "
    "price AROUND 40000 AND HIGHEST(horsepower)) "
    "CASCADE color = 'red' CASCADE LOWEST(mileage);";

const char* kTripsQuery =
    "SELECT * FROM trips "
    "PREFERRING start_date AROUND 57 AND duration AROUND 14 "
    "BUT ONLY DISTANCE(start_date) <= 10 AND DISTANCE(duration) <= 4";

const char* kParetoQuery =
    "SELECT oid, price, mileage FROM car "
    "PREFERRING LOWEST(price) AND LOWEST(mileage) AND HIGHEST(horsepower)";

void BM_parse_only(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = Parse(kUsedCarQuery);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_parse_only);

void RunQuery(benchmark::State& state, const char* sql) {
  Engine engine(ColdOptions());
  RegisterTables(engine, static_cast<size_t>(state.range(0)));
  size_t result_size = 0;
  for (auto _ : state) {
    auto res = engine.Execute(sql);
    result_size = res.relation.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["result"] = static_cast<double>(result_size);
}

void BM_used_car_query(benchmark::State& state) {
  RunQuery(state, kUsedCarQuery);
}
void BM_trips_but_only(benchmark::State& state) {
  RunQuery(state, kTripsQuery);
}
void BM_pareto_triple(benchmark::State& state) {
  RunQuery(state, kParetoQuery);
}

BENCHMARK(BM_used_car_query)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_trips_but_only)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_pareto_triple)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// Hard-selection-only baseline: what a conventional exact-match engine
// does; the gap to the preference queries is the price of cooperation.
void BM_exact_match_baseline(benchmark::State& state) {
  RunQuery(state, "SELECT * FROM car WHERE make = 'Opel' AND color = 'red'");
}
BENCHMARK(BM_exact_match_baseline)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
