// Experiment harness L1/L2 (see DESIGN.md): verifies every algebraic law
// of Props 2-6 over many randomized instantiations and prints a
// law-by-law verification table (the paper's §4 "collection of laws").

#include <cstdio>
#include <map>
#include <random>

#include "prefdb.h"

namespace {

using namespace prefdb;  // NOLINT(google-build-using-namespace): experiment driver, brevity wins

std::vector<Value> Domain() {
  return {Value(-2), Value(0), Value(1), Value(3)};
}

struct Tally {
  std::string statement;
  int checked = 0;
  int failed = 0;
};

}  // namespace

int main() {
  std::printf("prefdb reproduction harness: preference algebra laws "
              "(Props 2-6)\n\n");
  std::map<std::string, Tally> tallies;
  constexpr int kRounds = 200;

  for (int round = 0; round < kRounds; ++round) {
    uint64_t seed = 1000 + round;
    // Rebuild inputs (mirrors the law test setup).
    RandomTermGen ga("a", Domain(), seed);
    RandomTermGen gb("b", Domain(), seed + 101);
    RandomTermGen gc("c", Domain(), seed + 202);
    LawInputs in;
    in.attrs_a = {"a"};
    in.p = ga.Term(2);
    in.q = ga.Term(2);
    in.r = ga.Term(2);
    in.d1 = ga.Term(1);
    in.d2 = gb.Term(1);
    in.d3 = gc.Term(1);
    std::vector<Value> dom = Domain();
    in.u1 = Subset(ga.Term(1), {Tuple({dom[0]}), Tuple({dom[1]})});
    in.u2 = Subset(ga.Term(1), {Tuple({dom[2]})});
    in.u3 = Subset(ga.Term(1), {Tuple({dom[3]})});

    Relation dom1(Schema{{"a", ValueType::kInt}});
    for (const Value& v : dom) dom1.Add({v});
    Relation dom3(Schema{{"a", ValueType::kInt},
                         {"b", ValueType::kInt},
                         {"c", ValueType::kInt}});
    for (const Value& va : dom) {
      for (const Value& vb : dom) {
        for (const Value& vc : dom) dom3.Add({va, vb, vc});
      }
    }

    std::vector<LawInstance> laws = InstantiateGenericLaws(in);
    std::vector<LawInstance> special =
        SpecialLawInstances("a", {Value(0), Value(3)});
    laws.insert(laws.end(), special.begin(), special.end());
    for (const LawInstance& law : laws) {
      const Relation& d = law.lhs->attributes().size() == 1 ? dom1 : dom3;
      auto res = CheckEquivalent(law.lhs, law.rhs, d);
      Tally& t = tallies[law.id];
      t.statement = law.statement;
      ++t.checked;
      if (!res.equivalent) ++t.failed;
    }
  }

  int total_failed = 0;
  std::printf("%-32s %-55s %9s %7s\n", "law", "statement", "instances",
              "failed");
  std::printf("%s\n", std::string(106, '-').c_str());
  for (const auto& [id, t] : tallies) {
    std::printf("%-32s %-55s %9d %7d\n", id.c_str(), t.statement.c_str(),
                t.checked, t.failed);
    total_failed += t.failed;
  }
  std::printf("\n%zu laws x %d randomized rounds: %s\n", tallies.size(),
              kRounds,
              total_failed == 0 ? "ALL LAWS HOLD" : "FAILURES FOUND");
  return total_failed == 0 ? 0 : 1;
}
