#!/usr/bin/env python3
"""CI perf-regression gate: compare Google Benchmark JSON against baselines.

For every BENCH_*.json in --baseline, the same-named file must exist in
--current; each tracked family (median aggregate when repetitions were
used, plain entry otherwise) is compared and the gate fails when a family
regresses by more than --tolerance, or disappears.

Committed baselines come from a different machine than the CI runner, so
by default times are *anchored*: each family is normalized by the file's
anchor family (the first entry matching an --anchor substring, e.g. the
rowwise/pre-SIMD kernel, or a cold engine run) before comparing. Machine
speed then cancels out and the gate tracks kernel-relative regressions —
e.g. "avx2 BNL lost ground against the rowwise baseline". The trade-off:
a uniform slowdown that hits the anchor equally is invisible; run with
--absolute on same-machine baselines to catch that instead.

Regenerating baselines: download the bench-compare job's artifact (or run
`ctest -L bench-smoke` in a Release build) and copy the BENCH_*.json
files into bench/baselines/.
"""

import argparse
import json
import pathlib
import sys


def load_families(path):
    """name -> real_time (ns) for the tracked entries of one JSON file."""
    with open(path) as f:
        data = json.load(f)
    benchmarks = data.get("benchmarks", [])
    medians = [b for b in benchmarks if b.get("aggregate_name") == "median"]
    entries = medians if medians else [
        b for b in benchmarks if "aggregate_name" not in b
    ]
    families = {}
    for b in entries:
        name = b["run_name"] if "run_name" in b else b["name"]
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        families[name] = float(b["real_time"]) * scale
    return families


def pick_anchor(families, anchor_keys):
    for key in anchor_keys:
        for name in sorted(families):
            if key in name:
                return name
    return sorted(families)[0] if families else None


def compare_file(name, base, cur, tolerance, anchor_keys, absolute,
                 min_gate_ns):
    """Returns (structural_failures, perf_failures, rows).

    Structural failures — a vanished family, a missing anchor, an empty
    baseline — mean the comparison never happened, so they fail the gate
    even for --report-only files. Only perf regressions (the thing the
    comparison measures) are downgradable to report-only.
    """
    structural = []
    perf = []
    rows = []
    if absolute:
        base_norm, cur_norm = dict(base), dict(cur)
        anchor = None
    else:
        anchor = pick_anchor(base, anchor_keys)
        if anchor is None:
            return [f"{name}: baseline file tracks no families"], perf, rows
        if anchor not in cur:
            return ([f"{name}: anchor family '{anchor}' missing from current run"],
                    perf, rows)
        base_norm = {k: v / base[anchor] for k, v in base.items()}
        cur_norm = {k: v / cur[anchor] for k, v in cur.items()}
    for family in sorted(base):
        if family not in cur:
            structural.append(
                f"{name}: tracked family '{family}' missing from current run")
            rows.append((family, base[family], None, None, "VANISHED"))
            continue
        ratio = cur_norm[family] / base_norm[family] if base_norm[family] > 0 else 1.0
        status = "ok"
        if base[family] < min_gate_ns:
            # Sub-threshold timings are dominated by clock noise; report
            # but never gate on them.
            status = "not gated (below min time)"
            rows.append((family, base[family], cur[family], ratio, status))
            continue
        if ratio > 1.0 + tolerance:
            status = "REGRESSION"
            perf.append(
                f"{name}: {family} regressed {100 * (ratio - 1):.1f}% "
                f"(tolerance {100 * tolerance:.0f}%)")
        elif ratio < 1.0 - tolerance:
            status = "improved"
        rows.append((family, base[family], cur[family], ratio, status))
    for family in sorted(set(cur) - set(base)):
        rows.append((family, None, cur[family], None, "new (not gated)"))
    if anchor is not None:
        rows.append((f"[anchor: {anchor}]", base.get(anchor), cur.get(anchor),
                     None, "normalizer"))
    return structural, perf, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True, help="directory of committed BENCH_*.json")
    ap.add_argument("--current", required=True, help="directory of freshly produced BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative slowdown per family (default 0.15)")
    ap.add_argument("--anchor", action="append", default=None,
                    help="substring(s) selecting the per-file anchor family "
                         "(default: rowwise, then cold)")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw times instead of anchor-normalized ones")
    ap.add_argument("--min-gate-us", type=float, default=50.0,
                    help="families whose baseline median is below this many "
                         "microseconds are reported but not gated (default 50)")
    ap.add_argument("--report-only", action="append", default=[],
                    help="baseline file name substring(s) to compare and "
                         "print without failing the gate (trajectory data)")
    args = ap.parse_args()
    anchor_keys = args.anchor if args.anchor else ["rowwise", "cold"]

    baseline_dir = pathlib.Path(args.baseline)
    current_dir = pathlib.Path(args.current)
    baseline_files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no BENCH_*.json baselines under {baseline_dir}", file=sys.stderr)
        return 2

    all_failures = []
    for base_path in baseline_files:
        cur_path = current_dir / base_path.name
        print(f"== {base_path.name} ==")
        if not cur_path.exists():
            all_failures.append(f"{base_path.name}: not produced by the current run")
            print("  MISSING from current run")
            continue
        structural, perf, rows = compare_file(
            base_path.name, load_families(base_path), load_families(cur_path),
            args.tolerance, anchor_keys, args.absolute,
            args.min_gate_us * 1e3)
        for family, b, c, ratio, status in rows:
            bs = f"{b / 1e6:10.3f}ms" if b is not None else "         —"
            cs = f"{c / 1e6:10.3f}ms" if c is not None else "         —"
            rs = f"{ratio:6.3f}x" if ratio is not None else "      —"
            print(f"  {family:<55} base={bs} cur={cs} rel={rs} {status}")
        # Structural failures (vanished family, missing anchor) always
        # gate: report-only softens perf verdicts, not absent data.
        all_failures.extend(structural)
        if any(key in base_path.name for key in args.report_only):
            for f in perf:
                print(f"  (report-only, not gated) {f}")
        else:
            all_failures.extend(perf)

    if all_failures:
        print("\nPERF GATE FAILED:")
        for f in all_failures:
            print(f"  {f}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
