#!/usr/bin/env python3
"""CI perf-regression gate: compare Google Benchmark JSON against baselines.

For every BENCH_*.json in --baseline, the same-named file must exist in
--current; each tracked family (median aggregate when repetitions were
used, plain entry otherwise) is compared and the gate fails when a family
regresses by more than --tolerance, or disappears.

Committed baselines come from a different machine than the CI runner, so
by default times are *anchored*: each family is normalized by the file's
anchor family (the first entry matching an --anchor substring, e.g. the
rowwise/pre-SIMD kernel, or a cold engine run) before comparing. Machine
speed then cancels out and the gate tracks kernel-relative regressions —
e.g. "avx2 BNL lost ground against the rowwise baseline". The trade-off:
a uniform slowdown that hits the anchor equally is invisible; run with
--absolute on same-machine baselines to catch that instead.

Regenerating baselines: download the bench-compare job's artifact (or run
`ctest -L bench-smoke` in a Release build) and copy the BENCH_*.json
files into bench/baselines/.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# One table row: (family, baseline ns, current ns, ratio, status). The
# optional slots go empty for vanished/new families and the anchor line.
Row = tuple[str, float | None, float | None, float | None, str]

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_families(path: pathlib.Path) -> dict[str, float]:
    """name -> real_time (ns) for the tracked entries of one JSON file."""
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: top-level JSON is not an object")
    benchmarks = data.get("benchmarks", [])
    if not isinstance(benchmarks, list):
        raise ValueError(f"{path}: 'benchmarks' is not a list")
    entries: list[dict[str, object]] = []
    medians: list[dict[str, object]] = []
    for b in benchmarks:
        if not isinstance(b, dict):
            raise ValueError(f"{path}: benchmark entry is not an object")
        if b.get("aggregate_name") == "median":
            medians.append(b)
        elif "aggregate_name" not in b:
            entries.append(b)
    families: dict[str, float] = {}
    for b in medians if medians else entries:
        name = b["run_name"] if "run_name" in b else b["name"]
        if not isinstance(name, str):
            raise ValueError(f"{path}: benchmark name is not a string")
        unit = b.get("time_unit", "ns")
        if not isinstance(unit, str) or unit not in _UNIT_TO_NS:
            raise ValueError(f"{path}: {name}: unknown time unit {unit!r}")
        real_time = b["real_time"]
        if not isinstance(real_time, (int, float)):
            raise ValueError(f"{path}: {name}: non-numeric real_time")
        families[name] = float(real_time) * _UNIT_TO_NS[unit]
    return families


def pick_anchor(families: dict[str, float],
                anchor_keys: list[str]) -> str | None:
    for key in anchor_keys:
        for name in sorted(families):
            if key in name:
                return name
    return sorted(families)[0] if families else None


def compare_file(
    name: str,
    base: dict[str, float],
    cur: dict[str, float],
    tolerance: float,
    anchor_keys: list[str],
    absolute: bool,
    min_gate_ns: float,
) -> tuple[list[str], list[str], list[Row]]:
    """Returns (structural_failures, perf_failures, rows).

    Structural failures — a vanished family, a missing anchor, an empty
    baseline — mean the comparison never happened, so they fail the gate
    even for --report-only files. Only perf regressions (the thing the
    comparison measures) are downgradable to report-only.
    """
    structural: list[str] = []
    perf: list[str] = []
    rows: list[Row] = []
    anchor: str | None
    if absolute:
        base_norm, cur_norm = dict(base), dict(cur)
        anchor = None
    else:
        anchor = pick_anchor(base, anchor_keys)
        if anchor is None:
            return [f"{name}: baseline file tracks no families"], perf, rows
        if anchor not in cur:
            return ([f"{name}: anchor family '{anchor}' missing from current run"],
                    perf, rows)
        base_norm = {k: v / base[anchor] for k, v in base.items()}
        cur_norm = {k: v / cur[anchor] for k, v in cur.items()}
    for family in sorted(base):
        if family not in cur:
            structural.append(
                f"{name}: tracked family '{family}' missing from current run")
            rows.append((family, base[family], None, None, "VANISHED"))
            continue
        ratio = cur_norm[family] / base_norm[family] if base_norm[family] > 0 else 1.0
        status = "ok"
        if base[family] < min_gate_ns:
            # Sub-threshold timings are dominated by clock noise; report
            # but never gate on them.
            status = "not gated (below min time)"
            rows.append((family, base[family], cur[family], ratio, status))
            continue
        if ratio > 1.0 + tolerance:
            status = "REGRESSION"
            perf.append(
                f"{name}: {family} regressed {100 * (ratio - 1):.1f}% "
                f"(tolerance {100 * tolerance:.0f}%)")
        elif ratio < 1.0 - tolerance:
            status = "improved"
        rows.append((family, base[family], cur[family], ratio, status))
    for family in sorted(set(cur) - set(base)):
        rows.append((family, None, cur[family], None, "new (not gated)"))
    if anchor is not None:
        rows.append((f"[anchor: {anchor}]", base.get(anchor), cur.get(anchor),
                     None, "normalizer"))
    return structural, perf, rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True, help="directory of committed BENCH_*.json")
    ap.add_argument("--current", required=True, help="directory of freshly produced BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative slowdown per family (default 0.15)")
    ap.add_argument("--anchor", action="append", default=None,
                    help="substring(s) selecting the per-file anchor family "
                         "(default: rowwise, then cold)")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw times instead of anchor-normalized ones")
    ap.add_argument("--min-gate-us", type=float, default=50.0,
                    help="families whose baseline median is below this many "
                         "microseconds are reported but not gated (default 50)")
    ap.add_argument("--report-only", action="append", default=[],
                    help="baseline file name substring(s) to compare and "
                         "print without failing the gate (trajectory data)")
    args = ap.parse_args()
    anchor_keys: list[str] = args.anchor if args.anchor else ["rowwise", "cold"]
    tolerance: float = args.tolerance
    min_gate_us: float = args.min_gate_us
    report_only: list[str] = args.report_only

    baseline_dir = pathlib.Path(args.baseline)
    current_dir = pathlib.Path(args.current)
    baseline_files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no BENCH_*.json baselines under {baseline_dir}", file=sys.stderr)
        return 2

    all_failures: list[str] = []
    for base_path in baseline_files:
        cur_path = current_dir / base_path.name
        print(f"== {base_path.name} ==")
        if not cur_path.exists():
            all_failures.append(f"{base_path.name}: not produced by the current run")
            print("  MISSING from current run")
            continue
        structural, perf, rows = compare_file(
            base_path.name, load_families(base_path), load_families(cur_path),
            tolerance, anchor_keys, bool(args.absolute),
            min_gate_us * 1e3)
        for family, b, c, ratio, status in rows:
            bs = f"{b / 1e6:10.3f}ms" if b is not None else "         —"
            cs = f"{c / 1e6:10.3f}ms" if c is not None else "         —"
            rs = f"{ratio:6.3f}x" if ratio is not None else "      —"
            print(f"  {family:<55} base={bs} cur={cs} rel={rs} {status}")
        # Structural failures (vanished family, missing anchor) always
        # gate: report-only softens perf verdicts, not absent data.
        all_failures.extend(structural)
        if any(key in base_path.name for key in report_only):
            for f in perf:
                print(f"  (report-only, not gated) {f}")
        else:
            all_failures.extend(perf)

    if all_failures:
        print("\nPERF GATE FAILED:")
        for f in all_failures:
            print(f"  {f}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
