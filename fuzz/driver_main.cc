// Standalone corpus-replay driver: supplies main() for the fuzz harnesses
// when libFuzzer is unavailable (the default gcc build), so every seed
// corpus is exercised by plain ctest on every platform. Each argument is
// a corpus file or a directory of corpus files; every file's bytes are
// fed to LLVMFuzzerTestOneInput. With -DPREFDB_FUZZERS=ON this TU is not
// linked — libFuzzer provides main() and drives mutation instead.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Deterministic replay order regardless of directory enumeration.
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (ReplayFile(file) != 0) return 1;
        ++replayed;
      }
    } else {
      if (ReplayFile(arg) != 0) return 1;
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "usage: %s <corpus file or dir>...\n", argv[0]);
    return 1;
  }
  std::printf("replayed %d corpus input(s), no crashes\n", replayed);
  return 0;
}
