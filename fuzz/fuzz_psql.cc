// Fuzz harness for the Preference SQL front end: ParseValue (the typed
// text-to-Value conversion CSV load and the wire share), the lexer, and
// the parser. Invariant under test: arbitrary query text either parses or
// raises SyntaxError — the closed error vocabulary the server boundary
// depends on (psql/error.h). Any other exception type, crash, or hang
// escaping Parse() is a bug.
//
// Links against libFuzzer under -DPREFDB_FUZZERS=ON; otherwise
// fuzz/driver_main.cc replays the seed corpus in plain ctest.

#include <cstddef>
#include <cstdint>
#include <string>

#include "psql/lexer.h"
#include "psql/parser.h"
#include "relation/value.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);

  (void)prefdb::ParseValue(text, prefdb::ValueType::kNull);
  (void)prefdb::ParseValue(text, prefdb::ValueType::kInt);
  (void)prefdb::ParseValue(text, prefdb::ValueType::kDouble);
  (void)prefdb::ParseValue(text, prefdb::ValueType::kString);

  try {
    (void)prefdb::psql::Tokenize(text);
    (void)prefdb::psql::Parse(text);
  } catch (const prefdb::psql::SyntaxError&) {
    // The one sanctioned failure mode for malformed query text.
  }
  return 0;
}
