// Fuzz harness for the wire codec (server/protocol.h): frame headers,
// value/row decoding, and result parsing. Invariants under test:
//
//  - no decoder crashes, hangs, or overflows on arbitrary bytes (the
//    payload is attacker-controlled up to the frame cap);
//  - decoding always makes forward progress (*pos never moves backwards —
//    the 'S' length-wrap bug fixed in this PR violated exactly this);
//  - a payload that parses re-serializes to a payload that parses to the
//    same shape (round-trip stability).
//
// Links against libFuzzer under -DPREFDB_FUZZERS=ON; otherwise
// fuzz/driver_main.cc replays the seed corpus in plain ctest.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "psql/executor.h"
#include "server/protocol.h"

namespace {

void CheckRows(const std::string& payload) {
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t before = pos;
    auto row = prefdb::server::DecodeRow(payload, &pos);
    if (!row) break;
    if (pos <= before) __builtin_trap();  // no forward progress
  }
}

void CheckDelta(const std::string& payload) {
  auto parsed = prefdb::server::ParseDelta(payload);
  if (!parsed) return;
  // Round-trip: a parsed delta must re-serialize to a payload that
  // parses back to the same shape (the server pushes exactly this).
  std::string wire = prefdb::server::SerializeDelta(
      parsed->subscription, parsed->enters.schema(), parsed->version,
      parsed->resync, parsed->enters.tuples(), parsed->exits.tuples());
  auto reparsed = prefdb::server::ParseDelta(wire);
  if (!reparsed) __builtin_trap();
  if (reparsed->subscription != parsed->subscription) __builtin_trap();
  if (reparsed->version != parsed->version) __builtin_trap();
  if (reparsed->resync != parsed->resync) __builtin_trap();
  if (reparsed->enters.size() != parsed->enters.size()) __builtin_trap();
  if (reparsed->exits.size() != parsed->exits.size()) __builtin_trap();
}

void CheckResult(const std::string& payload) {
  auto parsed = prefdb::server::ParseResult(payload);
  if (!parsed) return;
  // Round-trip: a parsed result must re-serialize to a parseable payload
  // of identical shape.
  prefdb::psql::QueryResult result;
  result.relation = parsed->relation;
  result.utilities = parsed->utilities;
  result.stats.kernel = parsed->kernel;
  auto reparsed =
      prefdb::server::ParseResult(prefdb::server::SerializeResult(result));
  if (!reparsed) __builtin_trap();
  if (reparsed->relation.size() != parsed->relation.size()) __builtin_trap();
  if (reparsed->utilities.size() != parsed->utilities.size()) {
    __builtin_trap();
  }
}

void CheckTagged(const std::string& payload) {
  // v2 request-id stripping: never reads past the payload, and a tagged
  // encode of the stripped remainder reproduces the original body.
  prefdb::server::Frame frame{prefdb::server::FrameType::kQuery, payload};
  uint64_t request_id = 0;
  if (!prefdb::server::DecodeTaggedPayload(&frame, &request_id)) {
    if (payload.size() >= prefdb::server::kRequestIdBytes) __builtin_trap();
    return;
  }
  std::string wire = prefdb::server::EncodeTaggedFrame(request_id, frame);
  // Strip the 5-byte header: the body must be the original tagged bytes.
  if (wire.substr(prefdb::server::kFrameHeaderBytes) != payload) {
    __builtin_trap();
  }
}

void CheckHello(const std::string& payload) {
  // Version negotiation payloads: an accepted hello must round-trip
  // through the canonical encoding, and 0 is never a valid version.
  auto version = prefdb::server::ParseHello(payload);
  if (!version) return;
  if (*version == 0) __builtin_trap();
  auto reparsed =
      prefdb::server::ParseHello(prefdb::server::EncodeHello(*version));
  if (!reparsed || *reparsed != *version) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size >= prefdb::server::kFrameHeaderBytes) {
    prefdb::server::FrameType type;
    (void)prefdb::server::DecodeFrameHeader(data, &type);
  }
  std::string payload(reinterpret_cast<const char*>(data), size);
  CheckRows(payload);
  CheckResult(payload);
  CheckDelta(payload);
  CheckTagged(payload);
  CheckHello(payload);
  return 0;
}
