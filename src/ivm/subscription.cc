#include "ivm/subscription.h"

#include <utility>

namespace prefdb::ivm {

SubscriptionState::SubscriptionState(Schema schema, std::string table,
                                     std::string term, size_t max_pending)
    : max_pending_(max_pending == 0 ? 1 : max_pending),
      schema_(std::move(schema)),
      table_(std::move(table)),
      term_(std::move(term)) {}

bool SubscriptionState::TryPush(ViewDelta delta) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return true;  // nobody is listening; drop silently
    if (delta_queue_.size() >= max_pending_) return false;
    delta_queue_.push_back(std::move(delta));
  }
  cv_.notify_one();
  Notify();
  return true;
}

void SubscriptionState::PushResync(ViewDelta resync) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    delta_queue_.clear();
    delta_queue_.push_back(std::move(resync));
    ++coalesced_resyncs_;
  }
  cv_.notify_one();
  Notify();
}

void SubscriptionState::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  Notify();
}

void SubscriptionState::SetNotifier(std::function<void()> notifier) {
  std::lock_guard<std::mutex> lock(mu_);
  notifier_ = std::move(notifier);
}

void SubscriptionState::Notify() {
  std::function<void()> notifier;
  {
    std::lock_guard<std::mutex> lock(mu_);
    notifier = notifier_;
  }
  if (notifier) notifier();
}

std::optional<ViewDelta> SubscriptionState::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (delta_queue_.empty()) return std::nullopt;
  ViewDelta d = std::move(delta_queue_.front());
  delta_queue_.pop_front();
  return d;
}

std::optional<ViewDelta> SubscriptionState::WaitFor(
    std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout,
               [this] { return closed_ || !delta_queue_.empty(); });
  if (delta_queue_.empty()) return std::nullopt;
  ViewDelta d = std::move(delta_queue_.front());
  delta_queue_.pop_front();
  return d;
}

bool SubscriptionState::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t SubscriptionState::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_queue_.size();
}

size_t SubscriptionState::max_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_pending_;
}

uint64_t SubscriptionState::coalesced_resyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_resyncs_;
}

}  // namespace prefdb::ivm
