#include "ivm/maintained_view.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace prefdb::ivm {

MaintainedView::MaintainedView(PrefPtr preference,
                               std::function<bool(const Tuple&)> where,
                               const Relation& snapshot, uint64_t version,
                               const BmoOptions& options)
    : pref_(std::move(preference)),
      table_schema_(snapshot.schema()),
      proj_schema_(snapshot.schema().Project(pref_->attributes())),
      proj_cols_(snapshot.ResolveColumns(pref_->attributes())),
      where_(std::move(where)),
      less_(pref_->Bind(proj_schema_)),
      compilable_(options.vectorize && ScoreTable::CompilableTerm(pref_)),
      plan_(PhysicalPlan::FromOptions(options)),
      version_(version) {
  Seed(snapshot);
}

void MaintainedView::Seed(const Relation& snapshot) {
  cands_.reserve(snapshot.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const Tuple& row = snapshot.at(i);
    if (where_ && !where_(row)) continue;
    Candidate c;
    c.row = row;
    c.proj = row.Project(proj_cols_);
    c.table_row = i;
    c.witness = kMaximal;
    cands_.push_back(std::move(c));
  }
  Reseed();
}

void MaintainedView::Reseed() {
  std::vector<size_t> all(cands_.size());
  std::iota(all.begin(), all.end(), size_t{0});
  std::optional<ScoreTable> table;
  const std::vector<bool> flags = MaximaOf(all, &table);
  antichain_.clear();
  for (size_t k = 0; k < all.size(); ++k) {
    if (flags[k]) antichain_.push_back(k);
  }
  AssignWitnesses(all, flags, table);
}

std::vector<bool> MaintainedView::MaximaOf(
    const std::vector<size_t>& subset,
    std::optional<ScoreTable>* table_out) const {
  if (subset.empty()) return {};
  std::vector<Tuple> projs;
  projs.reserve(subset.size());
  for (size_t i : subset) projs.push_back(cands_[i].proj);
  if (compilable_) {
    auto table = ScoreTable::Compile(pref_, proj_schema_, projs.data(),
                                     projs.size());
    if (table) {
      auto flags =
          table->MaximaRange(BmoAlgorithm::kAuto, 0, table->rows(), plan_);
      if (table_out) *table_out = std::move(table);
      return flags;
    }
  }
  return MaximaBnl(projs, less_);
}

void MaintainedView::AssignWitnesses(const std::vector<size_t>& subset,
                                     const std::vector<bool>& flags,
                                     const std::optional<ScoreTable>& table) {
  std::vector<size_t> flagged;  // block positions of the subset's maxima
  for (size_t k = 0; k < subset.size(); ++k) {
    if (flags[k]) flagged.push_back(k);
  }
  for (size_t k = 0; k < subset.size(); ++k) {
    Candidate& c = cands_[subset[k]];
    if (flags[k]) {
      c.witness = kMaximal;
      continue;
    }
    size_t witness = kMaximal;
    if (table) {
      const size_t pos = table->FindDominator(k, flagged);
      if (pos != static_cast<size_t>(-1)) witness = subset[pos];
    } else {
      for (size_t f : flagged) {
        if (less_(c.proj, cands_[subset[f]].proj)) {
          witness = subset[f];
          break;
        }
      }
    }
    c.witness = witness;
  }
}

void MaintainedView::Compact(const std::vector<char>& dead,
                             std::vector<char>* aux) {
  std::vector<size_t> remap(cands_.size(), kMaximal);
  size_t next = 0;
  for (size_t i = 0; i < cands_.size(); ++i) {
    if (dead[i]) continue;
    remap[i] = next;
    if (i != next) {
      cands_[next] = std::move(cands_[i]);
      if (aux) (*aux)[next] = (*aux)[i];
    }
    ++next;
  }
  cands_.resize(next);
  if (aux) aux->resize(next);
  for (Candidate& c : cands_) {
    if (c.witness != kMaximal) c.witness = remap[c.witness];
  }
  for (size_t& m : antichain_) m = remap[m];
}

ViewDelta MaintainedView::ApplyInsert(const Tuple& row, size_t table_row,
                                      uint64_t new_version) {
  ViewDelta d;
  d.version = new_version;
  version_ = new_version;
  ++mstats_.inserts;
  if (where_ && !where_(row)) return d;

  const size_t idx = cands_.size();
  Candidate c;
  c.row = row;
  c.proj = row.Project(proj_cols_);
  c.table_row = table_row;
  c.witness = kMaximal;
  cands_.push_back(std::move(c));

  // Batch-kernel maxima pass over (antichain ∪ {new row}). The new row is
  // maximal in the full candidate set iff it is maximal here: any
  // dominated candidate's dominator chains up to an antichain member.
  std::vector<size_t> block = antichain_;
  block.push_back(idx);
  std::optional<ScoreTable> table;
  const std::vector<bool> flags = MaximaOf(block, &table);
  const size_t new_pos = block.size() - 1;

  if (!flags[new_pos]) {
    // Dominated on arrival: record a witness, result set unchanged.
    size_t witness = kMaximal;
    if (table) {
      std::vector<size_t> positions(antichain_.size());
      std::iota(positions.begin(), positions.end(), size_t{0});
      const size_t pos = table->FindDominator(new_pos, positions);
      if (pos != static_cast<size_t>(-1)) witness = block[pos];
    } else {
      for (size_t m : antichain_) {
        if (less_(cands_[idx].proj, cands_[m].proj)) {
          witness = m;
          break;
        }
      }
    }
    cands_[idx].witness = witness;
    return d;
  }

  std::vector<size_t> next;
  next.reserve(antichain_.size() + 1);
  for (size_t k = 0; k + 1 < block.size(); ++k) {
    const size_t m = block[k];
    if (flags[k]) {
      next.push_back(m);
      continue;
    }
    // Antichain members are mutually incomparable, so only the new row
    // can have defeated m — it is m's witness.
    cands_[m].witness = idx;
    d.exits.push_back(cands_[m].row);
  }
  next.push_back(idx);  // idx is the largest candidate index: stays sorted
  antichain_ = std::move(next);
  d.enters.push_back(cands_[idx].row);
  mstats_.enters += d.enters.size();
  mstats_.exits += d.exits.size();
  return d;
}

ViewDelta MaintainedView::ApplyDelete(
    const std::vector<size_t>& deleted_table_rows, uint64_t new_version) {
  ViewDelta d;
  d.version = new_version;
  version_ = new_version;
  ++mstats_.deletes;
  if (deleted_table_rows.empty() || cands_.empty()) return d;

  // Mark dead candidates and shift survivors' table rows down by the
  // number of deleted rows below them (one merge walk: both sides are
  // sorted ascending).
  std::vector<char> dead(cands_.size(), 0);
  size_t di = 0;
  bool any_dead = false;
  for (size_t i = 0; i < cands_.size(); ++i) {
    const size_t t = cands_[i].table_row;
    while (di < deleted_table_rows.size() && deleted_table_rows[di] < t) ++di;
    if (di < deleted_table_rows.size() && deleted_table_rows[di] == t) {
      dead[i] = 1;
      any_dead = true;
    } else {
      cands_[i].table_row = t - di;
    }
  }
  if (!any_dead) return d;  // deleted rows were not candidates

  std::vector<size_t> surviving_anti;
  surviving_anti.reserve(antichain_.size());
  for (size_t m : antichain_) {
    if (dead[m]) {
      d.exits.push_back(cands_[m].row);
    } else {
      surviving_anti.push_back(m);
    }
  }
  // Orphans: live dominated candidates whose recorded dominator died.
  // Everyone else's witness is still alive and still dominates them.
  std::vector<size_t> orphans;
  for (size_t i = 0; i < cands_.size(); ++i) {
    if (dead[i]) continue;
    const size_t w = cands_[i].witness;
    if (w != kMaximal && dead[w]) orphans.push_back(i);
  }

  size_t live = 0;
  for (char f : dead) live += f ? 0 : 1;
  const double maintain_ns =
      EstimateViewMaintenanceNs(surviving_anti.size(), orphans.size());
  const double reseed_ns =
      EstimateViewReseedNs(live, std::max<size_t>(surviving_anti.size(), 1));

  if (reseed_ns < maintain_ns) {
    // Most witnesses died at once: orphan maintenance would degenerate to
    // a full scan, so run exactly that, once, with fresh bookkeeping.
    ++mstats_.reseeds;
    std::vector<char> was_max(cands_.size(), 0);
    for (size_t m : antichain_) was_max[m] = 1;
    antichain_.clear();
    Compact(dead, &was_max);
    Reseed();
    for (size_t m : antichain_) {
      if (!was_max[m]) d.enters.push_back(cands_[m].row);
    }
  } else {
    // New antichain = maxima of (surviving antichain ∪ orphans): surviving
    // maxima provably stay maximal after a delete, and a previously
    // dominated row can only have risen if its witness died.
    std::vector<size_t> combined;
    std::vector<char> is_orphan;
    combined.reserve(surviving_anti.size() + orphans.size());
    is_orphan.reserve(combined.capacity());
    size_t a = 0, b = 0;  // disjoint sorted merge
    while (a < surviving_anti.size() || b < orphans.size()) {
      if (b == orphans.size() ||
          (a < surviving_anti.size() && surviving_anti[a] < orphans[b])) {
        combined.push_back(surviving_anti[a++]);
        is_orphan.push_back(0);
      } else {
        combined.push_back(orphans[b++]);
        is_orphan.push_back(1);
      }
    }
    std::optional<ScoreTable> table;
    const std::vector<bool> flags = MaximaOf(combined, &table);
    AssignWitnesses(combined, flags, table);
    antichain_.clear();
    for (size_t k = 0; k < combined.size(); ++k) {
      if (!flags[k]) continue;
      antichain_.push_back(combined[k]);
      if (is_orphan[k]) d.enters.push_back(cands_[combined[k]].row);
    }
    Compact(dead, nullptr);
  }
  mstats_.enters += d.enters.size();
  mstats_.exits += d.exits.size();
  return d;
}

ViewDelta MaintainedView::Resync() const {
  ViewDelta d;
  d.version = version_;
  d.resync = true;
  d.enters = MaximaRows();
  return d;
}

std::vector<Tuple> MaintainedView::MaximaRows() const {
  std::vector<Tuple> rows;
  rows.reserve(antichain_.size());
  for (size_t m : antichain_) rows.push_back(cands_[m].row);
  return rows;
}

std::vector<size_t> MaintainedView::MaximaTableRows() const {
  std::vector<size_t> rows;
  rows.reserve(antichain_.size());
  for (size_t m : antichain_) rows.push_back(cands_[m].table_row);
  return rows;
}

}  // namespace prefdb::ivm
