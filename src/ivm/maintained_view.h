// Incrementally maintained BMO result sets ("continuous preference
// queries"): the maxima antichain of σ[P](R) kept current under row
// inserts and deletes instead of recomputed.
//
// Kießling's BNL window is already an antichain maintained under
// *insertion*: a new row either loses against some window member (and is
// discarded) or enters and evicts the members it dominates. Deletion is
// what needs extra bookkeeping — "was this dominated row only dominated
// by rows that are now gone?" — and the classic answer is a *defeated-by
// witness*: every dominated candidate records ONE live row that dominates
// it. Because dominance is transitive over a finite set, a row is
// non-maximal iff some antichain member dominates it, and a witness stays
// valid as long as it is alive (even after the witness itself leaves the
// antichain). A delete therefore only re-examines the rows whose witness
// died ("orphans"); surviving maxima provably stay maximal, so the new
// antichain is the maxima of (surviving antichain ∪ orphans).
//
// Dominance passes reuse the compiled execution layer: when the term
// compiles, each pass builds a ScoreTable over the touched projections
// (antichain + batch — NOT the whole table) and runs the SIMD batch
// kernels; non-compilable terms fall back to the bound closure order.
// When most witnesses die at once, orphan maintenance degenerates into a
// full scan — the cost model (EstimateViewMaintenanceNs vs
// EstimateViewReseedNs, eval/physical_plan.h) prices both and the view
// reseeds from scratch when that is cheaper.
//
// Every mutation returns a ViewDelta (enter/exit row sets). The view is
// not internally synchronized: the Engine serializes all calls under its
// catalog lock, which is what makes delta streams snapshot-consistent.

#ifndef PREFDB_IVM_MAINTAINED_VIEW_H_
#define PREFDB_IVM_MAINTAINED_VIEW_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/preference.h"
#include "eval/bmo.h"
#include "eval/physical_plan.h"
#include "exec/score_table.h"
#include "ivm/delta.h"
#include "relation/relation.h"
#include "stats/stats.h"

namespace prefdb::ivm {

class MaintainedView {
 public:
  /// Seeds the view from `snapshot` at table version `version`. `where`
  /// (nullable) is the query's hard selection; only passing rows are
  /// candidates. Throws std::out_of_range when a preference attribute
  /// does not resolve in the snapshot's schema.
  MaintainedView(PrefPtr preference, std::function<bool(const Tuple&)> where,
                 const Relation& snapshot, uint64_t version,
                 const BmoOptions& options = {});

  /// One appended table row (table index = old table size). O(window)
  /// batch-kernel pass against the antichain.
  ViewDelta ApplyInsert(const Tuple& row, size_t table_row,
                        uint64_t new_version);

  /// Deleted pre-delete table row indices, sorted ascending. Re-examines
  /// only witness orphans (or reseeds when the cost model says a full
  /// pass is cheaper).
  ViewDelta ApplyDelete(const std::vector<size_t>& deleted_table_rows,
                        uint64_t new_version);

  /// Full-state delta: resync=true, enters = current result rows. The
  /// bootstrap delta of every subscription and the coalesced recovery
  /// pushed to subscribers that overflow their queue.
  ViewDelta Resync() const;

  /// Table version the view state reflects.
  uint64_t version() const { return version_; }
  /// Candidate rows mirrored (WHERE survivors), and current maxima count.
  size_t candidates() const { return cands_.size(); }
  size_t antichain_size() const { return antichain_.size(); }
  /// Current result rows, in table order.
  std::vector<Tuple> MaximaRows() const;
  /// Current-table row indices of the result, ascending — the engine's
  /// exec-cache refresh path serves subscribed queries from these.
  std::vector<size_t> MaximaTableRows() const;
  const Schema& schema() const { return table_schema_; }
  const ViewMaintenanceStats& maintenance_stats() const { return mstats_; }

 private:
  static constexpr size_t kMaximal = static_cast<size_t>(-1);

  struct Candidate {
    Tuple row;         // full table row (result rows are served from here)
    Tuple proj;        // projection onto the preference's attributes
    size_t table_row;  // index in the *current* table snapshot
    size_t witness;    // kMaximal, or index of a live dominating candidate
  };

  void Seed(const Relation& snapshot);
  /// Rebuilds antichain + witnesses with a full pass over all live
  /// candidates.
  void Reseed();
  /// Maximal flags over the candidate subset (projections), through the
  /// compiled batch kernels when the term compiles, else the closure
  /// order. Returned flags align with `subset`; `table_out` (nullable)
  /// receives the compiled block for follow-up witness probes.
  std::vector<bool> MaximaOf(const std::vector<size_t>& subset,
                             std::optional<ScoreTable>* table_out) const;
  /// Witness bookkeeping for every subset member: flagged rows become
  /// kMaximal, dominated rows record one flagged dominator (transitivity
  /// guarantees one exists among the subset's maxima).
  void AssignWitnesses(const std::vector<size_t>& subset,
                       const std::vector<bool>& flags,
                       const std::optional<ScoreTable>& table);
  /// Erases dead candidates and remaps witness indices + antichain_ (and
  /// `aux`, a per-candidate marker vector, when non-null) onto the
  /// compacted numbering. All witnesses must be live on entry.
  void Compact(const std::vector<char>& dead, std::vector<char>* aux);

  PrefPtr pref_;
  Schema table_schema_;
  Schema proj_schema_;
  std::vector<size_t> proj_cols_;
  std::function<bool(const Tuple&)> where_;
  LessFn less_;             // closure order over projections (always exact)
  bool compilable_ = false; // ScoreTable::CompilableTerm(pref_)
  PhysicalPlan plan_;       // kernel knobs for the compiled passes

  uint64_t version_ = 0;
  std::vector<Candidate> cands_;   // ascending table_row
  std::vector<size_t> antichain_;  // maximal candidate indices, ascending
  ViewMaintenanceStats mstats_;
};

}  // namespace prefdb::ivm

#endif  // PREFDB_IVM_MAINTAINED_VIEW_H_
