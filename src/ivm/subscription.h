// Per-subscriber delta queues for maintained views.
//
// The Engine fans every ViewDelta out to the subscribers of the view that
// produced it, through one SubscriptionState per subscriber: a bounded
// FIFO with its own mutex + condvar, so consumers (server pusher threads,
// embedded pollers) never touch the engine lock and a slow consumer never
// blocks mutations. Backpressure is *coalescing*, not unbounded
// buffering: when TryPush finds the queue at max_pending, the producer
// drops the backlog and enqueues one resync snapshot instead — the
// subscriber loses intermediate states, never the current one.
//
// Lock order: Engine::Lock() -> SubscriptionState::mu_. The queue mutex
// is a leaf; no SubscriptionState method calls back into the engine.
// prefdb-lint's `prefdb-raw-delta-queue` rule keeps the underlying deque
// private to src/ivm/ — everyone else goes through this API.

#ifndef PREFDB_IVM_SUBSCRIPTION_H_
#define PREFDB_IVM_SUBSCRIPTION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "ivm/delta.h"
#include "relation/schema.h"

namespace prefdb::ivm {

class SubscriptionState {
 public:
  /// `schema`/`table`/`term` describe the subscribed query for consumers
  /// (wire serialization, introspection); `max_pending` bounds the queue.
  SubscriptionState(Schema schema, std::string table, std::string term,
                    size_t max_pending);

  /// Producer side (engine, under its lock). False when the queue is full
  /// — the caller must follow up with PushResync (losing deltas without
  /// a resync would silently corrupt the subscriber's view).
  bool TryPush(ViewDelta delta);

  /// Drops everything queued and enqueues `resync` as the sole entry: the
  /// coalesced recovery for a subscriber that fell behind.
  void PushResync(ViewDelta resync);

  /// Wakes all waiters; subsequent WaitFor/Poll drain the queue and then
  /// report closed. Idempotent.
  void Close();

  /// Registers a readiness callback, invoked after every TryPush,
  /// PushResync and Close — the hook that lets an event loop drain via
  /// Poll() instead of parking a thread in WaitFor. The callback runs on
  /// the producer's thread (typically under the engine lock) outside
  /// this queue's mutex, so it must be cheap and lock-free toward the
  /// engine: set a flag, signal an eventfd, nothing more. Pass nullptr
  /// to clear. Condvar waiters keep working regardless.
  void SetNotifier(std::function<void()> notifier);

  /// Consumer side. Poll never blocks; WaitFor blocks until a delta is
  /// queued, the state closes, or the timeout elapses.
  std::optional<ViewDelta> Poll();
  std::optional<ViewDelta> WaitFor(std::chrono::milliseconds timeout);

  bool closed() const;
  size_t pending() const;
  size_t max_pending() const;
  /// Times the producer had to coalesce this subscriber's backlog.
  uint64_t coalesced_resyncs() const;

  const Schema& schema() const { return schema_; }
  const std::string& table() const { return table_; }
  const std::string& term() const { return term_; }

 private:
  /// Copies the notifier under mu_ and invokes it outside (the callback
  /// may signal an fd; never let it run under the queue mutex).
  void Notify();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ViewDelta> delta_queue_;
  size_t max_pending_;
  bool closed_ = false;
  uint64_t coalesced_resyncs_ = 0;
  std::function<void()> notifier_;
  const Schema schema_;
  const std::string table_;
  const std::string term_;
};

}  // namespace prefdb::ivm

#endif  // PREFDB_IVM_SUBSCRIPTION_H_
