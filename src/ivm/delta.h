// Typed deltas for incrementally maintained preference views.
//
// A maintained view is the BMO result set σ[P](R) kept current under
// mutations of R (see ivm/maintained_view.h). Every mutation emits one
// ViewDelta describing how the result set changed: rows that newly became
// best matches (`enters`) and rows that left the result (`exits`) — either
// because they were deleted or because a new row now dominates them.
//
// A `resync` delta voids all previously delivered state: `enters` then
// carries the complete current result set (and `exits` is empty). Resyncs
// are emitted (a) as the first delta of every subscription, making
// snapshot-consistent bootstrap structural rather than a client protocol,
// and (b) when a slow subscriber overflows its bounded delta queue, where
// one coalesced snapshot replaces the dropped backlog.

#ifndef PREFDB_IVM_DELTA_H_
#define PREFDB_IVM_DELTA_H_

#include <cstdint>
#include <vector>

#include "relation/tuple.h"

namespace prefdb::ivm {

/// One result-set change, tagged with the table version it produced.
/// Versions are the catalog's per-table mutation counters; deltas are
/// delivered in strictly increasing version order per subscription
/// (mutations that leave the result set unchanged emit nothing, so gaps
/// are normal).
struct ViewDelta {
  /// Table version after the mutation this delta describes.
  uint64_t version = 0;
  /// True: discard all accumulated state; `enters` is the full result set.
  bool resync = false;
  /// Rows entering the result set, in table order.
  std::vector<Tuple> enters;
  /// Rows leaving the result set (deleted or newly dominated).
  std::vector<Tuple> exits;

  bool Empty() const { return !resync && enters.empty() && exits.empty(); }
};

}  // namespace prefdb::ivm

#endif  // PREFDB_IVM_DELTA_H_
