// Blocking client for the prefdb wire protocol — the counterpart of
// server.h, used by the tests, the load driver (bench/bench_server.cc)
// and example programs. One connection = one server session; the client
// is strictly request/response and must not be shared across threads
// without external serialization (drivers open one Client per thread).

#ifndef PREFDB_SERVER_CLIENT_H_
#define PREFDB_SERVER_CLIENT_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "psql/error.h"
#include "relation/relation.h"
#include "server/protocol.h"

namespace prefdb::server {

/// Outcome of one request. Transport failures (connection reset, a frame
/// that fails to parse) throw std::runtime_error instead — after that the
/// connection is unusable. Server-reported errors land here.
struct ClientResponse {
  bool ok = false;
  /// Set when !ok.
  psql::QueryError error;
  /// kResult responses: the result set.
  Relation relation;
  std::vector<double> utilities;
  std::string kernel;
  /// kOk responses: the acknowledgement text ("pong", the SET echo, ...).
  std::string info;
  /// kPrepare responses: the prepared-statement handle.
  uint64_t handle = 0;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects over TCP; throws std::runtime_error on failure.
  void Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Executes one Preference SQL statement.
  ClientResponse Query(const std::string& sql);
  /// Server-side prepared statement; Run() it by handle.
  ClientResponse Prepare(const std::string& sql);
  ClientResponse Run(uint64_t handle);
  /// Session option ("threads", "timeout_ms", "vectorize", "algorithm",
  /// "simd").
  ClientResponse Set(const std::string& name, const std::string& value);
  /// Appends one row to a table.
  ClientResponse Insert(const std::string& table, const Tuple& row);
  /// Opens a continuous query (`SELECT * FROM t [WHERE ...] PREFERRING
  /// ...`); `handle` in the response is the subscription id stamped on
  /// every kDelta push. The first delta is a resync snapshot of the
  /// current result.
  ClientResponse Subscribe(const std::string& sql);
  /// Consumes the next delta push (any subscription of this session):
  /// stashed frames first, else waits up to `timeout_ms` for one on the
  /// wire. nullopt on timeout; throws on transport error or a malformed
  /// frame.
  std::optional<WireDelta> ReadDelta(uint64_t timeout_ms);
  /// Deltas stashed by interleaved request/response traffic, readable
  /// without touching the socket.
  size_t stashed_deltas() const { return pending_deltas_.size(); }
  ClientResponse Ping();
  /// Polite close: tells the server, waits for the ack, closes the fd.
  ClientResponse Goodbye();

  /// Test/debug surface: send an arbitrary frame (even a malformed one)
  /// and read back whatever single frame the server answers.
  ClientResponse RoundTrip(const Frame& frame);
  /// Sends raw bytes as-is (for malformed-header tests).
  void SendRawBytes(const std::string& bytes);
  /// Reads one response frame; throws on transport error/EOF.
  Frame ReadResponse();

 private:
  ClientResponse Request(const Frame& frame);

  int fd_ = -1;
  /// kDelta frames that arrived while a request was waiting for its
  /// response (the server pushes asynchronously); drained by ReadDelta.
  std::deque<WireDelta> pending_deltas_;
};

}  // namespace prefdb::server

#endif  // PREFDB_SERVER_CLIENT_H_
