// Client for the prefdb wire protocol — the counterpart of server.h,
// used by the tests, the load driver (bench/bench_server.cc) and example
// programs. One connection = one server session; the client must not be
// shared across threads without external serialization (drivers open one
// Client per thread).
//
// The client speaks protocol v2 by default (negotiated by a kHello
// handshake on Connect) and exposes two surfaces over one socket:
//
//   async     Send*(...) writes the request immediately and returns a
//             ResponseFuture. Many futures may be outstanding at once
//             (pipelining); responses are routed back by request id, so
//             completion order does not matter. Futures are lazily
//             pumped: the socket is only read inside Get()/ready(), on
//             the caller's thread — there is no background thread.
//   blocking  Query()/Prepare()/... are one-liners over the async
//             surface (Send + Get), preserving the original
//             request/response API.
//
// Connect(..., {.protocol_version = kProtocolV1}) skips the handshake
// and speaks plain v1 (one request in flight, untagged frames) — the
// interop surface for testing the server's compat shim.

#ifndef PREFDB_SERVER_CLIENT_H_
#define PREFDB_SERVER_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "psql/error.h"
#include "relation/relation.h"
#include "server/protocol.h"
#include "server/session_options.h"

namespace prefdb::server {

/// Outcome of one request. Transport failures (connection reset, a frame
/// that fails to parse) throw std::runtime_error instead — after that the
/// connection is unusable. Server-reported errors land here.
struct ClientResponse {
  bool ok = false;
  /// Set when !ok.
  psql::QueryError error;
  /// kResult responses: the result set.
  Relation relation;
  std::vector<double> utilities;
  std::string kernel;
  /// kOk responses: the acknowledgement text ("pong", the SET echo, ...).
  std::string info;
  /// kPrepare responses: the prepared-statement handle.
  uint64_t handle = 0;
};

struct ConnectOptions {
  /// Highest protocol version to offer. kProtocolV2 performs the kHello
  /// handshake; kProtocolV1 skips it entirely (a v1 client never sends
  /// frames a v1 server would not understand). A pre-v2 server that
  /// answers the hello with an error frame ("unknown frame type") is
  /// treated as speaking v1 — the connection downgrades instead of
  /// failing, so new clients work against old servers during a rolling
  /// upgrade.
  uint32_t protocol_version = kProtocolV2;
};

class Client {
 public:
  /// Handle for one in-flight request. Get() blocks until THIS request's
  /// response arrives, reading the socket and routing any other frames
  /// that land first (other requests' responses into their futures,
  /// kDelta pushes into the session stash). Get() a second time returns
  /// the cached response. Futures may outlive the order they were
  /// created in, but not the Client.
  class ResponseFuture {
   public:
    ResponseFuture() = default;
    ClientResponse Get();
    /// True once the response has been received (never reads the
    /// socket).
    bool ready() const;
    uint64_t request_id() const { return request_id_; }

   private:
    friend class Client;
    struct Slot;
    ResponseFuture(Client* client, uint64_t request_id,
                   std::shared_ptr<Slot> slot)
        : client_(client), request_id_(request_id), slot_(std::move(slot)) {}

    Client* client_ = nullptr;
    uint64_t request_id_ = 0;
    std::shared_ptr<Slot> slot_;
  };

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects over TCP and (by default) negotiates protocol v2; throws
  /// std::runtime_error on failure.
  void Connect(const std::string& host, uint16_t port,
               ConnectOptions options = {});
  bool connected() const { return fd_ >= 0; }
  /// The negotiated protocol version (valid after Connect()).
  uint32_t protocol_version() const { return version_; }
  void Close();

  // --- async surface (pipelining) ------------------------------------
  ResponseFuture SendQuery(const std::string& sql);
  ResponseFuture SendPrepare(const std::string& sql);
  ResponseFuture SendRun(uint64_t handle);
  ResponseFuture SendSet(const std::string& name, const std::string& value);
  ResponseFuture SendInsert(const std::string& table, const Tuple& row);
  ResponseFuture SendSubscribe(const std::string& sql);
  ResponseFuture SendPing();

  // --- blocking surface (Send + Get) ----------------------------------
  /// Executes one Preference SQL statement.
  ClientResponse Query(const std::string& sql) { return SendQuery(sql).Get(); }
  /// Server-side prepared statement; Run() it by handle.
  ClientResponse Prepare(const std::string& sql) {
    return SendPrepare(sql).Get();
  }
  ClientResponse Run(uint64_t handle) { return SendRun(handle).Get(); }
  /// Session option ("threads", "timeout_ms", "vectorize", "algorithm",
  /// "simd", "max_pending_deltas").
  ClientResponse Set(const std::string& name, const std::string& value) {
    return SendSet(name, value).Get();
  }
  /// Applies a whole SessionOptions (one SET round-trip per field);
  /// throws on the first server-rejected option.
  void Configure(const SessionOptions& options);
  /// Appends one row to a table.
  ClientResponse Insert(const std::string& table, const Tuple& row) {
    return SendInsert(table, row).Get();
  }
  /// Opens a continuous query (`SELECT * FROM t [WHERE ...] PREFERRING
  /// ...`); `handle` in the response is the subscription id stamped on
  /// every kDelta push. The first delta is a resync snapshot of the
  /// current result.
  ClientResponse Subscribe(const std::string& sql) {
    return SendSubscribe(sql).Get();
  }
  /// Consumes the next delta push (any subscription of this session):
  /// stashed frames first, else waits up to `timeout_ms` for one on the
  /// wire. Responses to still-outstanding pipelined requests that arrive
  /// while waiting are routed to their futures. nullopt on timeout;
  /// throws on transport error or a malformed frame.
  std::optional<WireDelta> ReadDelta(uint64_t timeout_ms);
  /// Deltas stashed by interleaved request/response traffic, readable
  /// without touching the socket.
  size_t stashed_deltas() const { return pending_deltas_.size(); }
  ClientResponse Ping() { return SendPing().Get(); }
  /// Polite close: tells the server, waits for the ack, closes the fd.
  ClientResponse Goodbye();

  // --- test/debug surface ---------------------------------------------
  /// Sends an arbitrary frame (even a malformed one) and reads back the
  /// server's single response. On v2 the frame is tagged with a fresh
  /// request id and the response's tag is stripped; connect with
  /// kProtocolV1 to control the exact bytes on the wire.
  ClientResponse RoundTrip(const Frame& frame);
  /// Sends raw bytes as-is (for malformed-header tests).
  void SendRawBytes(const std::string& bytes);
  /// Reads one frame off the socket, undoing v2 tagging; throws on
  /// transport error/EOF. Bypasses response routing — do not mix with
  /// outstanding futures.
  Frame ReadResponse();

 private:
  ResponseFuture Send(const Frame& frame);
  /// Reads one frame and routes it: a delta is stashed, a response
  /// resolves its future. Returns the routed frame's request id.
  uint64_t PumpOne();
  static ClientResponse ParseResponse(Frame reply);

  int fd_ = -1;
  uint32_t version_ = kProtocolV1;
  uint64_t next_request_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<ResponseFuture::Slot>>
      outstanding_;
  /// kDelta frames that arrived while a request was waiting for its
  /// response (the server pushes asynchronously); drained by ReadDelta.
  std::deque<WireDelta> pending_deltas_;
};

}  // namespace prefdb::server

#endif  // PREFDB_SERVER_CLIENT_H_
