// Socket helpers shared by the server's event loop and the client, with
// the frame codec from protocol.h. Two tiers:
//
//   - blocking full-frame reads/writes (the client's transport), and
//   - non-blocking edge-triggered primitives for the server's epoll loop:
//     drain-to-EAGAIN reads feeding a FrameAssembler (partial-frame
//     reassembly), offset-tracked buffered writes, and eventfd wakeups.
//
// POSIX sockets only (the library's only platform); no external
// dependencies. Every raw byte-transfer syscall in the project lives in
// wire_io.cc (enforced by prefdb-lint's raw-syscall invariant).

#ifndef PREFDB_SERVER_WIRE_IO_H_
#define PREFDB_SERVER_WIRE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "server/protocol.h"

namespace prefdb::server {

/// Outcome of ReadFrame.
enum class ReadStatus {
  kOk,
  /// Clean EOF on a frame boundary (peer closed).
  kClosed,
  /// Transport error or EOF mid-frame.
  kError,
  /// The declared payload length exceeds the caller's cap. The payload
  /// was NOT consumed; the stream position is after the header.
  kOversized,
};

/// Reads exactly `len` bytes; false on EOF/error.
bool ReadFully(int fd, void* buf, size_t len);

/// Writes all of `data` (MSG_NOSIGNAL, EINTR-safe); false on error.
bool WriteFully(int fd, const std::string& data);

/// Reads one frame (header + payload). `max_payload_bytes` caps the
/// declared length before any payload allocation happens; on kOversized,
/// `frame->type` holds the frame's type and `oversized_len` (when non-null)
/// the declared length.
ReadStatus ReadFrame(int fd, Frame* frame, size_t max_payload_bytes,
                     uint32_t* oversized_len = nullptr);

/// Encodes and writes one frame; false on transport error.
bool WriteFrame(int fd, const Frame& frame);

/// Blocks until `fd` is readable or `timeout_ms` elapses (poll-based, so
/// no partial frame is ever consumed). False on timeout; true when a
/// read would not block (data, EOF, or socket error — the follow-up
/// ReadFrame disambiguates).
bool WaitReadable(int fd, uint64_t timeout_ms);

/// AcceptClient outcomes below 0. The accept loop polls with SO_RCVTIMEO
/// on the listener, so kRetry is the steady-state "no client yet" result.
inline constexpr int kAcceptRetry = -1;   // EAGAIN/EWOULDBLOCK/EINTR
inline constexpr int kAcceptClosed = -2;  // listener gone; stop accepting

/// Accepts one connection on `listen_fd`. Returns the connected fd
/// (>= 0), kAcceptRetry when the poll timed out or was interrupted, or
/// kAcceptClosed on any other error (the listening socket is unusable).
/// The peer address is discarded — sessions are identified by fd.
int AcceptClient(int listen_fd);

// --- non-blocking primitives for the epoll event loop ----------------------

/// Outcome of one non-blocking read or write pass.
enum class IoStatus {
  /// Write: the buffer was fully flushed. (Reads never return kOk — they
  /// always end at kWouldBlock, kClosed, or kError.)
  kOk,
  /// Kernel buffers exhausted; retry on the next readiness event. Bytes
  /// transferred before this are accounted for (appended / offset moved).
  kWouldBlock,
  /// Peer closed. Bytes read before the EOF are in the assembler.
  kClosed,
  /// Transport error.
  kError,
};

/// Puts `fd` into non-blocking mode; false on fcntl failure.
bool SetNonBlocking(int fd);

/// Incremental frame reassembly over arbitrary byte chunks: the server's
/// per-connection read buffer. Append() whatever recv produced — a
/// single byte, half a header, three frames and a tail — and TryNext()
/// yields complete frames as they form. Never blocks, never copies more
/// than once (consumed prefix is compacted on the next Append).
class FrameAssembler {
 public:
  enum class Next {
    kFrame,     ///< *frame holds the next complete frame.
    kNeedMore,  ///< buffered bytes don't form a frame yet.
    /// The next header declares a payload above the cap. The header is
    /// consumed (mirrors ReadFrame); frame->type holds the frame's type
    /// and `oversized_len` its declared length. The connection is no
    /// longer framable.
    kOversized,
  };

  explicit FrameAssembler(size_t max_payload_bytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Adds raw stream bytes to the buffer.
  void Append(const char* data, size_t len);

  /// Extracts the next complete frame, if any.
  Next TryNext(Frame* frame, uint32_t* oversized_len = nullptr);

  /// Bytes buffered but not yet consumed by TryNext.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix; compacted lazily by Append
};

/// Drains `fd` toward EAGAIN (mandatory under edge-triggered epoll),
/// feeding every byte read into `assembler`, but stops once at least
/// `max_bytes` were consumed this pass — the fairness bound that keeps
/// one line-rate connection from pinning a single-threaded event loop.
/// Returns kWouldBlock both when the socket is drained and when the cap
/// was hit; `*bytes_read` (when non-null) disambiguates: a value >=
/// `max_bytes` means the kernel may still hold data that edge-triggered
/// epoll will NOT re-signal for, so the caller must schedule another
/// pass itself. kClosed on EOF, kError on transport error.
IoStatus ReadAvailable(int fd, FrameAssembler* assembler,
                       size_t max_bytes = SIZE_MAX,
                       size_t* bytes_read = nullptr);

/// Writes `buf` from `*offset` until done or the kernel buffer fills.
/// On kOk the buffer was fully flushed (buf cleared, offset reset); on
/// kWouldBlock `*offset` marks the resume point — arm EPOLLOUT and call
/// again on the next writable event.
IoStatus WriteSome(int fd, std::string* buf, size_t* offset);

// --- eventfd wakeup ---------------------------------------------------------
//
// Worker threads and IVM subscription notifiers complete off the event
// loop thread; they hand bytes to a connection's out-buffer and signal
// this fd, which the loop keeps in its epoll set.

/// Creates a non-blocking eventfd; -1 on failure.
int CreateWakeupFd();

/// Increments the eventfd counter (async-signal-safe, never blocks).
void SignalWakeup(int fd);

/// Zeroes the eventfd counter so the next epoll_wait sleeps again.
void DrainWakeup(int fd);

}  // namespace prefdb::server

#endif  // PREFDB_SERVER_WIRE_IO_H_
