// Blocking socket helpers shared by the server's session loop and the
// client: full-frame reads/writes over a connected fd, with the frame
// codec from protocol.h. POSIX sockets only (the library's only platform);
// no external dependencies.

#ifndef PREFDB_SERVER_WIRE_IO_H_
#define PREFDB_SERVER_WIRE_IO_H_

#include <cstddef>
#include <string>

#include "server/protocol.h"

namespace prefdb::server {

/// Outcome of ReadFrame.
enum class ReadStatus {
  kOk,
  /// Clean EOF on a frame boundary (peer closed).
  kClosed,
  /// Transport error or EOF mid-frame.
  kError,
  /// The declared payload length exceeds the caller's cap. The payload
  /// was NOT consumed; the stream position is after the header.
  kOversized,
};

/// Reads exactly `len` bytes; false on EOF/error.
bool ReadFully(int fd, void* buf, size_t len);

/// Writes all of `data` (MSG_NOSIGNAL, EINTR-safe); false on error.
bool WriteFully(int fd, const std::string& data);

/// Reads one frame (header + payload). `max_payload_bytes` caps the
/// declared length before any payload allocation happens; on kOversized,
/// `frame->type` holds the frame's type and `oversized_len` (when non-null)
/// the declared length.
ReadStatus ReadFrame(int fd, Frame* frame, size_t max_payload_bytes,
                     uint32_t* oversized_len = nullptr);

/// Encodes and writes one frame; false on transport error.
bool WriteFrame(int fd, const Frame& frame);

/// Blocks until `fd` is readable or `timeout_ms` elapses (poll-based, so
/// no partial frame is ever consumed). False on timeout; true when a
/// read would not block (data, EOF, or socket error — the follow-up
/// ReadFrame disambiguates).
bool WaitReadable(int fd, uint64_t timeout_ms);

/// AcceptClient outcomes below 0. The accept loop polls with SO_RCVTIMEO
/// on the listener, so kRetry is the steady-state "no client yet" result.
inline constexpr int kAcceptRetry = -1;   // EAGAIN/EWOULDBLOCK/EINTR
inline constexpr int kAcceptClosed = -2;  // listener gone; stop accepting

/// Accepts one connection on `listen_fd`. Returns the connected fd
/// (>= 0), kAcceptRetry when the poll timed out or was interrupted, or
/// kAcceptClosed on any other error (the listening socket is unusable).
/// The peer address is discarded — sessions are identified by fd.
int AcceptClient(int listen_fd);

}  // namespace prefdb::server

#endif  // PREFDB_SERVER_WIRE_IO_H_
