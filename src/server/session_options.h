// Typed per-session options: the one parse/validate/serialize path for
// the wire `SET name=value` vocabulary, shared by the server (applying
// incoming kSet frames), the client (Client::Configure renders a struct
// into SET frames), and tests (build the struct, assert on the struct).
//
// Vocabulary:
//
//   threads=<n>            kernel threads per query; n>1 also re-enables
//                          kAuto's parallel plans (serving opts out by
//                          default — the worker pool is the parallelism)
//   timeout_ms=<n>         per-query deadline (0 = none)
//   vectorize=on|off       score-table kernels vs closure baseline
//   algorithm=auto|naive|bnl|sfs|dc|parallel
//   simd=auto|off|scalar|avx2
//   max_pending_deltas=<n> per-subscription server-side delta bound
//                          before coalescing (0 = engine default);
//                          applies to subscriptions opened after the SET

#ifndef PREFDB_SERVER_SESSION_OPTIONS_H_
#define PREFDB_SERVER_SESSION_OPTIONS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "eval/bmo.h"

namespace prefdb::server {

struct SessionOptions {
  /// Kernel options for this session's queries. `threads` writes
  /// num_threads (and flips parallel_threshold, see Apply); vectorize /
  /// algorithm / simd write their fields directly.
  BmoOptions bmo;
  /// Per-query deadline in milliseconds (0 = none).
  uint64_t timeout_ms = 30000;
  /// Per-subscription pending-delta bound (0 = engine default).
  size_t max_pending_deltas = 0;

  /// Applies one option. Returns "" on success, else a human-readable
  /// error (the server wraps it in a kBadArgument error frame). Unknown
  /// names and malformed values leave the struct untouched.
  std::string Apply(const std::string& name, const std::string& value);

  /// Applies one wire-form "name=value" kSet payload.
  std::string ApplyWire(const std::string& payload);

  /// Renders the full option set as (name, value) pairs — the SET
  /// sequence that reproduces this struct on a fresh session. Only
  /// wire-settable fields are emitted (bnl_tile_rows etc. are not part
  /// of the SET vocabulary).
  std::vector<std::pair<std::string, std::string>> Serialize() const;
};

}  // namespace prefdb::server

#endif  // PREFDB_SERVER_SESSION_OPTIONS_H_
