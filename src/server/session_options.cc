#include "server/session_options.h"

#include <cerrno>
#include <cstdlib>

namespace prefdb::server {

namespace {

bool ParseCount(const std::string& value, uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

const char* AlgorithmName(BmoAlgorithm algorithm) {
  switch (algorithm) {
    case BmoAlgorithm::kAuto:
      return "auto";
    case BmoAlgorithm::kNaive:
      return "naive";
    case BmoAlgorithm::kBlockNestedLoop:
      return "bnl";
    case BmoAlgorithm::kSortFilter:
      return "sfs";
    case BmoAlgorithm::kDivideConquer:
      return "dc";
    case BmoAlgorithm::kParallel:
      return "parallel";
  }
  return "auto";
}

const char* SimdName(SimdMode simd) {
  switch (simd) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kOff:
      return "off";
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "auto";
}

}  // namespace

std::string SessionOptions::Apply(const std::string& name,
                                  const std::string& value) {
  if (name == "threads") {
    uint64_t v = 0;
    if (!ParseCount(value, &v)) return "threads expects a number";
    bmo.num_threads = static_cast<size_t>(v);
    // A session asking for intra-query parallelism also gets kAuto's
    // parallel plans back (the serving default opts out of them).
    bmo.parallel_threshold = v > 1 ? 32768 : SIZE_MAX;
    return "";
  }
  if (name == "timeout_ms") {
    return ParseCount(value, &timeout_ms) ? "" : "timeout_ms expects a number";
  }
  if (name == "max_pending_deltas") {
    uint64_t v = 0;
    if (!ParseCount(value, &v)) return "max_pending_deltas expects a number";
    max_pending_deltas = static_cast<size_t>(v);
    return "";
  }
  if (name == "vectorize") {
    if (value == "on") {
      bmo.vectorize = true;
    } else if (value == "off") {
      bmo.vectorize = false;
    } else {
      return "vectorize expects on|off";
    }
    return "";
  }
  if (name == "algorithm") {
    if (value == "auto") {
      bmo.algorithm = BmoAlgorithm::kAuto;
    } else if (value == "naive") {
      bmo.algorithm = BmoAlgorithm::kNaive;
    } else if (value == "bnl") {
      bmo.algorithm = BmoAlgorithm::kBlockNestedLoop;
    } else if (value == "sfs") {
      bmo.algorithm = BmoAlgorithm::kSortFilter;
    } else if (value == "dc") {
      bmo.algorithm = BmoAlgorithm::kDivideConquer;
    } else if (value == "parallel") {
      bmo.algorithm = BmoAlgorithm::kParallel;
    } else {
      return "unknown algorithm '" + value + "'";
    }
    return "";
  }
  if (name == "simd") {
    if (value == "auto") {
      bmo.simd = SimdMode::kAuto;
    } else if (value == "off") {
      bmo.simd = SimdMode::kOff;
    } else if (value == "scalar") {
      bmo.simd = SimdMode::kScalar;
    } else if (value == "avx2") {
      bmo.simd = SimdMode::kAvx2;
    } else {
      return "unknown simd mode '" + value + "'";
    }
    return "";
  }
  return "unknown session option '" + name + "'";
}

std::string SessionOptions::ApplyWire(const std::string& payload) {
  size_t eq = payload.find('=');
  if (eq == std::string::npos) {
    return "expected name=value, got '" + payload + "'";
  }
  return Apply(payload.substr(0, eq), payload.substr(eq + 1));
}

std::vector<std::pair<std::string, std::string>> SessionOptions::Serialize()
    const {
  return {
      {"threads", std::to_string(bmo.num_threads)},
      {"timeout_ms", std::to_string(timeout_ms)},
      {"vectorize", bmo.vectorize ? "on" : "off"},
      {"algorithm", AlgorithmName(bmo.algorithm)},
      {"simd", SimdName(bmo.simd)},
      {"max_pending_deltas", std::to_string(max_pending_deltas)},
  };
}

}  // namespace prefdb::server
