// The prefdb wire protocol: length-prefixed frames over a byte stream.
//
// Every message — in both directions — is one frame:
//
//   uint32  payload length, big-endian (excludes these 5 header bytes)
//   uint8   frame type (FrameType below)
//   bytes   payload
//
// Requests carry Preference SQL text or small textual commands; responses
// carry a serialized QueryResult, an acknowledgement, or a serialized
// QueryError (psql/error.h).
//
// Two protocol versions share this outer framing:
//
//   v1  strictly request/response per session: a client sends one frame
//       and reads exactly one frame back (kDelta pushes excepted).
//   v2  pipelined: the first 8 payload bytes of every frame after the
//       hello exchange are a big-endian client-assigned request id,
//       echoed on the response, so many requests can be in flight and
//       responses may arrive out of order. Server-initiated kDelta
//       pushes carry the id of the kSubscribe that created them.
//
// A connection starts in v1. A client upgrades by making its FIRST frame
// a kHello ('V') whose payload is its highest supported version in
// decimal; the server replies with a kHello carrying min(client, server)
// and both sides switch to that version. Clients that never send a hello
// stay on v1 — the compat shim that keeps old clients and the committed
// fuzz corpora valid. Hello frames themselves are never id-tagged.
//
// Result payloads use a self-delimiting text encoding (SerializeResult /
// ParseResult) that round-trips Values exactly — including NULLs, negative
// zero aside, non-finite doubles, and strings containing commas, quotes or
// newlines — so a client-side diff against a local Engine run is byte-safe.
//
// This header is socket-free: framing works over any byte sink/source, so
// the codec is unit-testable and reusable (e.g. for a future unix-domain
// or in-process transport).

#ifndef PREFDB_SERVER_PROTOCOL_H_
#define PREFDB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "psql/executor.h"
#include "relation/relation.h"

namespace prefdb::server {

/// One byte on the wire. Requests and responses share the enum; the
/// direction disambiguates.
enum class FrameType : uint8_t {
  // --- requests
  /// Payload: Preference SQL text. Response: kResult or kError.
  kQuery = 'Q',
  /// Payload: Preference SQL text. Response: kHandle or kError.
  kPrepare = 'P',
  /// Payload: decimal prepared-statement handle. Response: kResult/kError.
  kRun = 'R',
  /// Payload: "name=value" session option (see server.h for the
  /// vocabulary). Response: kOk or kError.
  kSet = 'S',
  /// Payload: table name '\n' one encoded row (EncodeRow). Response:
  /// kOk or kError.
  kInsert = 'I',
  /// Payload: empty. Response: kOk ("pong"). Liveness probe.
  kPing = 'G',
  /// Payload: Preference SQL text of a BMO statement. Response: kHandle
  /// (decimal subscription id) or kError — followed by server-initiated
  /// kDelta pushes. The ONE exception to strict request/response: after a
  /// successful subscribe, kDelta frames for that id may arrive
  /// interleaved before any response frame (each one is whole; the
  /// framing keeps the stream self-delimiting). The first delta is
  /// always a resync snapshot of the current result.
  kSubscribe = 'U',
  /// Payload: empty. The server stops reading the session, lets every
  /// request admitted before the goodbye complete and flush its
  /// response, then acknowledges with kOk and closes — a pipelined
  /// "send work, send goodbye" client never loses an answer.
  kGoodbye = 'X',
  /// Version negotiation. Client → server: highest protocol version the
  /// client speaks, in decimal; must be the FIRST frame on the
  /// connection (a hello anywhere else is a protocol error). Server →
  /// client: the negotiated version, min(client, kProtocolV2). Hello
  /// payloads never carry a request id in either direction.
  kHello = 'V',

  // --- responses
  /// Payload: SerializeResult(...).
  kResult = 'T',
  /// Payload: UTF-8 acknowledgement text.
  kOk = 'O',
  /// Payload: decimal prepared-statement handle.
  kHandle = 'H',
  /// Payload: psql::SerializeError(...).
  kError = 'E',
  /// Server-initiated push: SerializeDelta(...) for one subscription.
  kDelta = 'D',
};

struct Frame {
  FrameType type = FrameType::kOk;
  std::string payload;
};

/// Frame header size on the wire (4-byte length + 1-byte type).
inline constexpr size_t kFrameHeaderBytes = 5;

/// Serializes a frame (header + payload) into wire bytes.
std::string EncodeFrame(const Frame& frame);

/// Parses the 5 header bytes; returns the payload length and writes the
/// type. The length is unvalidated — callers enforce their own cap.
uint32_t DecodeFrameHeader(const unsigned char header[kFrameHeaderBytes],
                           FrameType* type);

// --- protocol v2: request-id tagging and version negotiation ---------------

/// The two wire protocol versions. v2 adds the request-id prefix; the
/// outer 5-byte framing is identical, so one byte-stream scanner serves
/// both.
inline constexpr uint32_t kProtocolV1 = 1;
inline constexpr uint32_t kProtocolV2 = 2;

/// Size of the big-endian request id that prefixes every v2 frame
/// payload (hellos excepted).
inline constexpr size_t kRequestIdBytes = 8;

/// Request id 0 is reserved: requests must use a nonzero id, and the
/// server tags frame-level faults (oversized frame, missing id prefix)
/// with 0 because no request can own them.
inline constexpr uint64_t kNoRequestId = 0;

/// Serializes a v2 frame: header + 8-byte big-endian `request_id` +
/// payload.
std::string EncodeTaggedFrame(uint64_t request_id, const Frame& frame);

/// Strips the leading request id from a v2 frame payload in place.
/// Returns false (frame untouched) when the payload is shorter than the
/// id prefix — a protocol error on a v2 connection.
bool DecodeTaggedPayload(Frame* frame, uint64_t* request_id);

/// Renders a kHello payload (decimal version).
std::string EncodeHello(uint32_t version);

/// Parses a kHello payload; nullopt on malformed input (empty, non-digit,
/// zero, or > 9 digits).
std::optional<uint32_t> ParseHello(const std::string& payload);

// --- value / row / result text encoding -----------------------------------
//
//   value := 'N'                          NULL
//          | 'I' <decimal int64>
//          | 'D' <%.17g double>           (nan/inf/-inf included)
//          | 'S' <decimal byte count> ':' <raw bytes>
//   row   := value (' ' value)* '\n'     (empty rows encode as '\n')
//
// The 'S' length prefix makes the encoding self-delimiting, so strings may
// contain any byte including ' ' and '\n'.

std::string EncodeValue(const Value& value);
void EncodeRow(const Tuple& row, std::string* out);

/// Parses one encoded row starting at `*pos` (advances past the trailing
/// '\n'). Returns nullopt on malformed input.
std::optional<Tuple> DecodeRow(const std::string& data, size_t* pos);

/// QueryResult wire rendering:
///
///   schema <name>:<TYPE>(,<name>:<TYPE>)*\n     ("schema \n" if empty)
///   utilities <%.17g>(,<%.17g>)*\n              ("utilities \n" if none)
///   kernel <kernel string>\n
///   rows <decimal count>\n
///   <count> encoded rows
///
/// Timing stats are deliberately not shipped: results must diff bytewise
/// against a local reference execution.
std::string SerializeResult(const psql::QueryResult& result);

/// Parsed form of a kResult payload.
struct WireResult {
  Relation relation;
  std::vector<double> utilities;
  std::string kernel;
};

/// Inverse of SerializeResult; nullopt on malformed input.
std::optional<WireResult> ParseResult(const std::string& payload);

/// One kDelta payload: a maintained view's result-set change, addressed
/// to a subscription. resync=true means "discard your state, `enters` IS
/// the full current result" (the bootstrap delta, and the coalesced
/// recovery after the subscriber overflowed its server-side queue).
///
///   subscription <decimal id>\n
///   version <decimal table version>\n
///   resync <0|1>\n
///   schema <name>:<TYPE>(,<name>:<TYPE>)*\n      ("schema \n" if empty)
///   enters <decimal count>\n
///   <count> encoded rows
///   exits <decimal count>\n
///   <count> encoded rows
struct WireDelta {
  uint64_t subscription = 0;
  uint64_t version = 0;
  bool resync = false;
  Relation enters;
  Relation exits;
};

/// Renders one delta push. `schema` is the subscribed table's row schema
/// (enters/exits rows are full table rows).
std::string SerializeDelta(uint64_t subscription, const Schema& schema,
                           uint64_t version, bool resync,
                           const std::vector<Tuple>& enters,
                           const std::vector<Tuple>& exits);

/// Inverse of SerializeDelta; nullopt on malformed input.
std::optional<WireDelta> ParseDelta(const std::string& payload);

}  // namespace prefdb::server

#endif  // PREFDB_SERVER_PROTOCOL_H_
