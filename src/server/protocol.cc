#include "server/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace prefdb::server {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::optional<ValueType> ParseTypeName(const std::string& name) {
  if (name == "NULL") return ValueType::kNull;
  if (name == "INT") return ValueType::kInt;
  if (name == "DOUBLE") return ValueType::kDouble;
  if (name == "STRING") return ValueType::kString;
  return std::nullopt;
}

/// Reads "<prefix> ...\n" starting at *pos; returns the "..." part and
/// advances past the newline. nullopt when the line is missing/mislabeled.
std::optional<std::string> TakeLine(const std::string& data, size_t* pos,
                                    const char* prefix) {
  size_t len = std::strlen(prefix);
  if (data.compare(*pos, len, prefix) != 0) return std::nullopt;
  size_t start = *pos + len;
  size_t nl = data.find('\n', start);
  if (nl == std::string::npos) return std::nullopt;
  std::string line = data.substr(start, nl - start);
  *pos = nl + 1;
  return line;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  if (text.empty()) return parts;
  size_t start = 0;
  for (;;) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  uint32_t len = static_cast<uint32_t>(frame.payload.size());
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>(frame.type));
  out += frame.payload;
  return out;
}

uint32_t DecodeFrameHeader(const unsigned char header[kFrameHeaderBytes],
                           FrameType* type) {
  uint32_t len = (static_cast<uint32_t>(header[0]) << 24) |
                 (static_cast<uint32_t>(header[1]) << 16) |
                 (static_cast<uint32_t>(header[2]) << 8) |
                 static_cast<uint32_t>(header[3]);
  *type = static_cast<FrameType>(header[4]);
  return len;
}

std::string EncodeTaggedFrame(uint64_t request_id, const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + kRequestIdBytes + frame.payload.size());
  uint32_t len =
      static_cast<uint32_t>(kRequestIdBytes + frame.payload.size());
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>(frame.type));
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((request_id >> shift) & 0xff));
  }
  out += frame.payload;
  return out;
}

bool DecodeTaggedPayload(Frame* frame, uint64_t* request_id) {
  if (frame->payload.size() < kRequestIdBytes) return false;
  uint64_t id = 0;
  for (size_t i = 0; i < kRequestIdBytes; ++i) {
    id = (id << 8) | static_cast<unsigned char>(frame->payload[i]);
  }
  *request_id = id;
  frame->payload.erase(0, kRequestIdBytes);
  return true;
}

std::string EncodeHello(uint32_t version) { return std::to_string(version); }

std::optional<uint32_t> ParseHello(const std::string& payload) {
  if (payload.empty() || payload.size() > 9) return std::nullopt;
  uint32_t version = 0;
  for (char c : payload) {
    if (c < '0' || c > '9') return std::nullopt;
    version = version * 10 + static_cast<uint32_t>(c - '0');
  }
  if (version == 0) return std::nullopt;
  return version;
}

std::string EncodeValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "N";
    case ValueType::kInt:
      return "I" + std::to_string(value.as_int());
    case ValueType::kDouble:
      return "D" + FormatDouble(value.as_double());
    case ValueType::kString:
      return "S" + std::to_string(value.as_string().size()) + ":" +
             value.as_string();
  }
  return "N";
}

void EncodeRow(const Tuple& row, std::string* out) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out->push_back(' ');
    *out += EncodeValue(row[i]);
  }
  out->push_back('\n');
}

namespace {

std::optional<Value> DecodeValue(const std::string& data, size_t* pos) {
  if (*pos >= data.size()) return std::nullopt;
  char tag = data[*pos];
  ++*pos;
  switch (tag) {
    case 'N':
      return Value();
    case 'I': {
      size_t end = data.find_first_of(" \n", *pos);
      if (end == std::string::npos) return std::nullopt;
      errno = 0;
      char* parsed_end = nullptr;
      std::string text = data.substr(*pos, end - *pos);
      long long v = std::strtoll(text.c_str(), &parsed_end, 10);
      if (errno != 0 || parsed_end == text.c_str() || *parsed_end != '\0') {
        return std::nullopt;
      }
      *pos = end;
      return Value(static_cast<int64_t>(v));
    }
    case 'D': {
      size_t end = data.find_first_of(" \n", *pos);
      if (end == std::string::npos) return std::nullopt;
      char* parsed_end = nullptr;
      std::string text = data.substr(*pos, end - *pos);
      double v = std::strtod(text.c_str(), &parsed_end);
      if (parsed_end == text.c_str() || *parsed_end != '\0') {
        return std::nullopt;
      }
      *pos = end;
      return Value(v);
    }
    case 'S': {
      size_t colon = data.find(':', *pos);
      if (colon == std::string::npos) return std::nullopt;
      errno = 0;
      char* parsed_end = nullptr;
      std::string count_text = data.substr(*pos, colon - *pos);
      unsigned long long count =
          std::strtoull(count_text.c_str(), &parsed_end, 10);
      // Compare against the remaining bytes, never `colon + 1 + count`:
      // count comes off the wire and the sum wraps size_t, which would
      // pass the bounds check and then wrap *pos backwards (infinite
      // parse loop on a 17-byte frame).
      if (errno != 0 || parsed_end == count_text.c_str() ||
          *parsed_end != '\0' || count > data.size() - (colon + 1)) {
        return std::nullopt;
      }
      *pos = colon + 1 + count;
      return Value(data.substr(colon + 1, count));
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<Tuple> DecodeRow(const std::string& data, size_t* pos) {
  std::vector<Value> values;
  if (*pos < data.size() && data[*pos] == '\n') {
    ++*pos;
    return Tuple(std::move(values));
  }
  for (;;) {
    auto value = DecodeValue(data, pos);
    if (!value) return std::nullopt;
    values.push_back(std::move(*value));
    if (*pos >= data.size()) return std::nullopt;
    char sep = data[*pos];
    ++*pos;
    if (sep == '\n') return Tuple(std::move(values));
    if (sep != ' ') return std::nullopt;
  }
}

std::string SerializeResult(const psql::QueryResult& result) {
  std::string out = "schema ";
  const Schema& schema = result.relation.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += schema.at(i).name;
    out.push_back(':');
    out += ValueTypeName(schema.at(i).type);
  }
  out += "\nutilities ";
  for (size_t i = 0; i < result.utilities.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += FormatDouble(result.utilities[i]);
  }
  out += "\nkernel " + result.stats.kernel;
  out += "\nrows " + std::to_string(result.relation.size()) + "\n";
  for (const Tuple& row : result.relation.tuples()) EncodeRow(row, &out);
  return out;
}

std::optional<WireResult> ParseResult(const std::string& payload) {
  size_t pos = 0;
  auto schema_line = TakeLine(payload, &pos, "schema ");
  auto utilities_line = TakeLine(payload, &pos, "utilities ");
  auto kernel_line = TakeLine(payload, &pos, "kernel ");
  auto rows_line = TakeLine(payload, &pos, "rows ");
  if (!schema_line || !utilities_line || !kernel_line || !rows_line) {
    return std::nullopt;
  }

  WireResult result;
  std::vector<Attribute> attrs;
  for (const std::string& part : SplitCommas(*schema_line)) {
    size_t colon = part.rfind(':');
    if (colon == std::string::npos) return std::nullopt;
    auto type = ParseTypeName(part.substr(colon + 1));
    if (!type) return std::nullopt;
    attrs.push_back(Attribute{part.substr(0, colon), *type});
  }
  for (const std::string& part : SplitCommas(*utilities_line)) {
    char* end = nullptr;
    double v = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0') return std::nullopt;
    result.utilities.push_back(v);
  }
  result.kernel = *kernel_line;

  errno = 0;
  char* end = nullptr;
  unsigned long long row_count = std::strtoull(rows_line->c_str(), &end, 10);
  if (errno != 0 || end == rows_line->c_str() || *end != '\0') {
    return std::nullopt;
  }

  // Every encoded row costs at least one payload byte ('\n'), so a
  // declared count beyond the remaining bytes is malformed. Checking
  // before reserve() keeps a 30-byte frame claiming 2^60 rows from
  // asking the allocator for petabytes.
  if (row_count > payload.size() - pos) return std::nullopt;
  std::vector<Tuple> tuples;
  tuples.reserve(row_count);
  for (unsigned long long i = 0; i < row_count; ++i) {
    auto row = DecodeRow(payload, &pos);
    if (!row || row->size() != attrs.size()) return std::nullopt;
    tuples.push_back(std::move(*row));
  }
  if (pos != payload.size()) return std::nullopt;
  result.relation = Relation(Schema(std::move(attrs)), std::move(tuples));
  return result;
}

namespace {

std::string EncodeSchemaLine(const Schema& schema) {
  std::string out = "schema ";
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += schema.at(i).name;
    out.push_back(':');
    out += ValueTypeName(schema.at(i).type);
  }
  out.push_back('\n');
  return out;
}

std::optional<uint64_t> ParseCount(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(v);
}

/// Reads "<label> <count>\n" + that many encoded rows. Shares the guards
/// of ParseResult: count checked against remaining payload bytes BEFORE
/// reserve (every row costs >= 1 byte), arity checked per row.
std::optional<std::vector<Tuple>> ParseRowBlock(const std::string& payload,
                                                size_t* pos,
                                                const char* label,
                                                size_t arity) {
  auto line = TakeLine(payload, pos, label);
  if (!line) return std::nullopt;
  auto count = ParseCount(*line);
  if (!count || *count > payload.size() - *pos) return std::nullopt;
  std::vector<Tuple> rows;
  rows.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto row = DecodeRow(payload, pos);
    if (!row || row->size() != arity) return std::nullopt;
    rows.push_back(std::move(*row));
  }
  return rows;
}

}  // namespace

std::string SerializeDelta(uint64_t subscription, const Schema& schema,
                           uint64_t version, bool resync,
                           const std::vector<Tuple>& enters,
                           const std::vector<Tuple>& exits) {
  std::string out = "subscription " + std::to_string(subscription) + "\n";
  out += "version " + std::to_string(version) + "\n";
  out += "resync " + std::string(resync ? "1" : "0") + "\n";
  out += EncodeSchemaLine(schema);
  out += "enters " + std::to_string(enters.size()) + "\n";
  for (const Tuple& row : enters) EncodeRow(row, &out);
  out += "exits " + std::to_string(exits.size()) + "\n";
  for (const Tuple& row : exits) EncodeRow(row, &out);
  return out;
}

std::optional<WireDelta> ParseDelta(const std::string& payload) {
  size_t pos = 0;
  auto sub_line = TakeLine(payload, &pos, "subscription ");
  auto version_line = TakeLine(payload, &pos, "version ");
  auto resync_line = TakeLine(payload, &pos, "resync ");
  auto schema_line = TakeLine(payload, &pos, "schema ");
  if (!sub_line || !version_line || !resync_line || !schema_line) {
    return std::nullopt;
  }
  WireDelta delta;
  auto sub = ParseCount(*sub_line);
  auto version = ParseCount(*version_line);
  if (!sub || !version) return std::nullopt;
  delta.subscription = *sub;
  delta.version = *version;
  if (*resync_line == "1") {
    delta.resync = true;
  } else if (*resync_line != "0") {
    return std::nullopt;
  }
  std::vector<Attribute> attrs;
  for (const std::string& part : SplitCommas(*schema_line)) {
    size_t colon = part.rfind(':');
    if (colon == std::string::npos) return std::nullopt;
    auto type = ParseTypeName(part.substr(colon + 1));
    if (!type) return std::nullopt;
    attrs.push_back(Attribute{part.substr(0, colon), *type});
  }
  auto enters = ParseRowBlock(payload, &pos, "enters ", attrs.size());
  if (!enters) return std::nullopt;
  auto exits = ParseRowBlock(payload, &pos, "exits ", attrs.size());
  if (!exits) return std::nullopt;
  if (pos != payload.size()) return std::nullopt;
  Schema schema(std::move(attrs));
  delta.enters = Relation(schema, std::move(*enters));
  delta.exits = Relation(std::move(schema), std::move(*exits));
  return delta;
}

}  // namespace prefdb::server
