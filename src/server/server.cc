#include "server/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "psql/error.h"
#include "server/protocol.h"
#include "server/session_options.h"
#include "server/wire_io.h"

namespace prefdb::server {

namespace {

using Clock = std::chrono::steady_clock;

Frame ErrorFrame(psql::ErrorCode code, const std::string& message) {
  return Frame{FrameType::kError,
               psql::SerializeError(psql::QueryError{code, message})};
}

Frame ErrorFrame(const psql::QueryError& error) {
  return Frame{FrameType::kError, psql::SerializeError(error)};
}

bool IsTimeoutFrame(const Frame& frame) {
  return frame.type == FrameType::kError &&
         psql::DeserializeError(frame.payload).code ==
             psql::ErrorCode::kTimeout;
}

/// Renders a response for one connection's negotiated version: v2 frames
/// carry the request id, v1 frames never do.
std::string EncodeForVersion(uint32_t version, uint64_t request_id,
                             const Frame& frame) {
  return version >= kProtocolV2 ? EncodeTaggedFrame(request_id, frame)
                                : EncodeFrame(frame);
}

struct Connection;

/// One admitted unit of work, tagged with its completion route. A worker
/// produces the response frame and hands it back by (connection,
/// request_id); `abandoned` is set when the request was already answered
/// (deadline) or the connection died, letting the worker skip or discard
/// the execution.
struct Job {
  std::function<Frame()> work;
  Clock::time_point deadline{};
  bool has_deadline = false;
  uint64_t timeout_ms = 0;
  std::atomic<bool> abandoned{false};
  std::shared_ptr<Connection> conn;
  uint64_t request_id = 0;
};

/// The bounded admission queue. Push never blocks: a full queue is the
/// backpressure signal (OVERLOADED), not a place to wait.
class JobQueue {
 public:
  enum class PushResult { kAdmitted, kFull, kStopping };

  explicit JobQueue(size_t capacity) : capacity_(capacity) {}

  PushResult TryPush(std::shared_ptr<Job> job, uint64_t* peak_depth) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return PushResult::kStopping;
      if (jobs_.size() >= capacity_) return PushResult::kFull;
      jobs_.push_back(std::move(job));
      if (jobs_.size() > *peak_depth) *peak_depth = jobs_.size();
    }
    cv_.notify_one();
    return PushResult::kAdmitted;
  }

  /// Blocks for the next job; nullptr once stopping and drained.
  std::shared_ptr<Job> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
    if (jobs_.empty()) return nullptr;
    std::shared_ptr<Job> job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
  }

  /// Rejects new pushes; workers drain what is queued, then Pop()
  /// returns nullptr.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stopping_ = false;
};

/// Per-connection state. Everything here belongs to the event-loop
/// thread EXCEPT the block guarded by out_mu (shared with workers) and
/// deltas_pending (set by subscription notifiers on mutating threads).
struct Connection {
  explicit Connection(size_t max_frame_bytes)
      : assembler(max_frame_bytes) {}

  // --- event-loop-only state
  int fd = -1;
  uint64_t id = 0;
  uint32_t version = kProtocolV1;
  bool saw_first_frame = false;
  /// Goodbye received / stream unframable: stop reading; close once
  /// in-flight work drains and the out-buffer flushes.
  bool draining = false;
  /// Peer EOF seen: close once in-flight work drains and flushes.
  bool read_shut = false;
  bool torn_down = false;
  bool want_write = false;  // EPOLLOUT armed
  /// Reading suspended: the out-buffer exceeded max_outbuf_bytes
  /// (backpressure). FlushAndSettle lifts it once the client drains.
  bool read_blocked = false;
  FrameAssembler assembler;
  SessionOptions options;
  std::unordered_map<uint64_t, PreparedQuery> handles;
  uint64_t next_handle = 1;
  /// v1 has no wire ids; in-flight jobs get synthetic ones.
  uint64_t next_internal_id = 1;

  struct Sub {
    Engine::Subscription handle;
    /// Echoed on this subscription's kDelta frames (v2 tags pushes with
    /// the id of the kSubscribe that opened the stream).
    uint64_t request_id = 0;
  };
  std::list<Sub> subscriptions;
  /// Set by subscription notifiers (mutating threads, under the engine
  /// lock); cleared by the event loop's delta drain.
  std::atomic<bool> deltas_pending{false};
  /// debug_push_delay_ms pacing: no delta drain before this instant.
  Clock::time_point next_delta_drain{};

  // --- shared with worker threads, guarded by out_mu
  std::mutex out_mu;
  /// Torn down: workers drop completions instead of appending.
  bool closed = false;
  std::string out_buf;
  size_t out_off = 0;
  /// Requests admitted to the worker pool and not yet answered.
  std::unordered_map<uint64_t, std::shared_ptr<Job>> inflight;
  /// A goodbye was received but not yet acknowledged: the ack (tagged
  /// with goodbye_request_id) is appended only once `inflight` empties,
  /// so pipelined requests admitted before the goodbye keep their
  /// responses.
  bool goodbye_pending = false;
  uint64_t goodbye_request_id = 0;
};

/// Fairness bound on bytes pulled off one connection per read pass: a
/// single line-rate sender yields to the rest of the (single-threaded)
/// event loop and resumes on the next iteration.
constexpr size_t kMaxReadBytesPerPass = 256 * 1024;

/// epoll_event.data.u64 tags for the two non-connection fds.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeupTag = 1;
constexpr uint64_t kFirstConnId = 2;

}  // namespace

struct Server::Impl {
  Engine* engine;
  ServerOptions options;

  std::mutex state_mu_;  // guards running_ transitions
  bool running_ = false;
  std::atomic<bool> stopping_{false};

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::unique_ptr<JobQueue> queue_;

  // --- event-loop-only session registry
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = kFirstConnId;
  bool shutdown_started_ = false;
  /// Connections owed another read pass without an epoll edge to drive
  /// it: a capped read left bytes in the kernel, or a flush lifted a
  /// backpressure pause. Drained once per loop iteration.
  std::vector<uint64_t> resume_reads_;

  /// Connections with fresh worker-completed bytes awaiting a flush;
  /// workers append ids here and signal the eventfd.
  std::mutex pending_mu_;
  std::vector<uint64_t> pending_;

  // --- counters (ServerStats snapshot)
  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_error_{0};
  std::atomic<uint64_t> queries_rejected_overload_{0};
  std::atomic<uint64_t> queries_timeout_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> peak_queue_depth_{0};
  std::atomic<uint64_t> read_pauses_{0};
  std::atomic<uint64_t> subscriptions_opened_{0};
  std::atomic<uint64_t> deltas_pushed_{0};

  Impl(Engine* engine_in, ServerOptions options_in)
      : engine(engine_in), options(std::move(options_in)) {}

  void Start();
  void Stop();
  void EventLoop();
  void WorkerLoop();

  // --- event-loop internals (loop thread only unless noted)
  void AcceptReady();
  void HandleConnEvent(const std::shared_ptr<Connection>& conn,
                       uint32_t events);
  void ReadPass(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void AdmitJob(const std::shared_ptr<Connection>& conn, uint64_t request_id,
                std::function<psql::QueryResult()> body,
                const std::string& sql_for_errors);
  void HandlePendingSignals();
  void DrainDeltas(Clock::time_point now);
  void ExpireDeadlines(Clock::time_point now);
  int ComputeTimeoutMs(Clock::time_point now);
  /// Appends one response on the event loop (no signal needed; the loop
  /// flushes in the same pass).
  void AppendResponse(const std::shared_ptr<Connection>& conn,
                      uint64_t request_id, const Frame& frame);
  enum class FlushResult { kFlushed, kBlocked, kFailed };
  FlushResult FlushOut(const std::shared_ptr<Connection>& conn);
  /// Flush + teardown-on-error + close-when-drained, the common tail of
  /// every event-loop pass over a connection.
  void FlushAndSettle(const std::shared_ptr<Connection>& conn);
  void MaybeFinish(const std::shared_ptr<Connection>& conn);
  /// True while the connection's pending (unflushed) response bytes are
  /// at or above the backpressure cap.
  bool OutBufOverLimit(const std::shared_ptr<Connection>& conn);
  /// kGoodbye: stop reading and pushing, but keep in-flight work — the
  /// ack is deferred (MaybeFinish) until every admitted request has
  /// answered and flushed, so a pipelined client loses nothing.
  void BeginGoodbye(const std::shared_ptr<Connection>& conn,
                    uint64_t request_id);
  /// Cancels subscriptions and abandons in-flight work (protocol fault /
  /// unframable stream): nothing new will be appended after this.
  void StartDrain(const std::shared_ptr<Connection>& conn);
  void Teardown(const std::shared_ptr<Connection>& conn);

  /// Worker side: route a completed job's response back to its
  /// connection. Dropped when the request was already answered or the
  /// connection is gone.
  void CompleteJob(const std::shared_ptr<Job>& job, Frame frame);

  void NotePeakQueueDepth(uint64_t depth) {
    uint64_t seen = peak_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !peak_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  std::vector<std::shared_ptr<Connection>> SnapshotConns() {
    std::vector<std::shared_ptr<Connection>> out;
    out.reserve(conns_.size());
    for (auto& [id, conn] : conns_) out.push_back(conn);
    return out;
  }
};

void Server::Impl::Start() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (running_) throw psql::ServerError("server already started");

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw psql::ServerError("socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw psql::ServerError("invalid bind address: " + options.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int err = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    throw psql::ServerError(std::string("bind() failed: ") +
                             std::strerror(err));
  }
  if (listen(listen_fd_, 512) != 0) {
    int err = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    throw psql::ServerError(std::string("listen() failed: ") +
                             std::strerror(err));
  }
  socklen_t addr_len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_ = ntohs(addr.sin_port);

  if (!SetNonBlocking(listen_fd_)) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw psql::ServerError("could not set listener non-blocking");
  }
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = CreateWakeupFd();
  if (epoll_fd_ < 0 || wakeup_fd_ < 0) {
    close(listen_fd_);
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wakeup_fd_ >= 0) close(wakeup_fd_);
    listen_fd_ = epoll_fd_ = wakeup_fd_ = -1;
    throw psql::ServerError("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered for listener and wakeup
  ev.data.u64 = kListenerTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeupTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev);

  stopping_.store(false);
  shutdown_started_ = false;
  queue_ = std::make_unique<JobQueue>(options.queue_capacity);
  size_t workers = options.num_workers != 0
                       ? options.num_workers
                       : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  running_ = true;
}

void Server::Impl::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!running_) return;
    running_ = false;
  }
  stopping_.store(true);
  SignalWakeup(wakeup_fd_);
  // The loop finishes the graceful drain: stops accepting, shuts every
  // connection's read side, flushes every admitted query's response,
  // then exits once the registry is empty.
  if (loop_thread_.joinable()) loop_thread_.join();

  queue_->Stop();
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  if (listen_fd_ >= 0) close(listen_fd_);
  close(epoll_fd_);
  close(wakeup_fd_);
  listen_fd_ = epoll_fd_ = wakeup_fd_ = -1;
}

void Server::Impl::EventLoop() {
  std::vector<epoll_event> events(128);
  for (;;) {
    Clock::time_point now = Clock::now();
    int timeout_ms = ComputeTimeoutMs(now);
    int n = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; unrecoverable
    }
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[static_cast<size_t>(i)].data.u64;
      uint32_t flags = events[static_cast<size_t>(i)].events;
      if (tag == kListenerTag) {
        AcceptReady();
      } else if (tag == kWakeupTag) {
        DrainWakeup(wakeup_fd_);
      } else {
        auto it = conns_.find(tag);
        if (it != conns_.end()) HandleConnEvent(it->second, flags);
      }
    }
    // Reads owed without an epoll edge (capped pass / lifted
    // backpressure): one round per iteration, so fresh events from other
    // connections interleave with a hot sender's continuation.
    if (!resume_reads_.empty()) {
      std::vector<uint64_t> resumes;
      resumes.swap(resume_reads_);
      for (uint64_t id : resumes) {
        auto it = conns_.find(id);
        if (it != conns_.end()) ReadPass(it->second);
      }
    }
    now = Clock::now();
    HandlePendingSignals();
    DrainDeltas(now);
    ExpireDeadlines(now);

    if (stopping_.load()) {
      if (!shutdown_started_) {
        shutdown_started_ = true;
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        close(listen_fd_);
        listen_fd_ = -1;
        // Shut every read side; in-flight requests still finish and
        // flush their responses (SHUT_RD leaves the write side open).
        for (const auto& conn : SnapshotConns()) {
          shutdown(conn->fd, SHUT_RD);
          conn->read_shut = true;
          MaybeFinish(conn);
        }
      }
      if (conns_.empty()) break;
    }
  }
  // Defensive: if the loop broke abnormally, release whatever is left.
  for (const auto& conn : SnapshotConns()) Teardown(conn);
}

void Server::Impl::AcceptReady() {
  for (;;) {
    int fd = AcceptClient(listen_fd_);
    if (fd == kAcceptRetry) return;
    if (fd < 0) return;  // listener gone; the stop path closes it
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (conns_.size() >= options.max_sessions) {
      sessions_rejected_.fetch_add(1);
      // Still blocking here (SetNonBlocking comes after admission): a
      // fresh socket's send buffer always takes this one small frame.
      WriteFrame(fd, ErrorFrame(psql::ErrorCode::kOverloaded,
                                "session limit reached (" +
                                    std::to_string(options.max_sessions) +
                                    ")"));
      close(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    sessions_accepted_.fetch_add(1);
    auto conn = std::make_shared<Connection>(options.max_frame_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->options.bmo = options.session_bmo;
    conn->options.timeout_ms = options.query_timeout_ms;
    conn->options.max_pending_deltas = options.max_pending_deltas;
    conns_.emplace(conn->id, conn);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void Server::Impl::HandleConnEvent(const std::shared_ptr<Connection>& conn,
                                   uint32_t events) {
  if (conn->torn_down) return;
  if ((events & EPOLLERR) != 0) {
    Teardown(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) FlushAndSettle(conn);
  if (conn->torn_down) return;
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) ReadPass(conn);
}

void Server::Impl::ReadPass(const std::shared_ptr<Connection>& conn) {
  bool can_read = !conn->read_shut;
  for (;;) {
    if (conn->draining || conn->torn_down) break;
    if (OutBufOverLimit(conn)) {
      // Backpressure: the client owes us a drain of its responses before
      // we consume more of its requests. Bytes already buffered (here
      // and in the kernel) keep; FlushAndSettle resumes the read once
      // the out-buffer empties below the cap.
      if (!conn->read_blocked) {
        conn->read_blocked = true;
        read_pauses_.fetch_add(1);
      }
      break;
    }
    Frame frame;
    uint32_t oversized_len = 0;
    FrameAssembler::Next next = conn->assembler.TryNext(&frame,
                                                        &oversized_len);
    if (next == FrameAssembler::Next::kFrame) {
      DispatchFrame(conn, std::move(frame));
      continue;
    }
    if (next == FrameAssembler::Next::kOversized) {
      protocol_errors_.fetch_add(1);
      AppendResponse(
          conn, kNoRequestId,
          ErrorFrame(psql::ErrorCode::kOversized,
                     "frame of " + std::to_string(oversized_len) +
                         " bytes exceeds the " +
                         std::to_string(options.max_frame_bytes) +
                         "-byte limit"));
      StartDrain(conn);  // the unread payload cannot be resynchronized
      break;
    }
    // kNeedMore: pull more bytes, bounded per pass for loop fairness.
    if (!can_read) break;
    size_t bytes_read = 0;
    IoStatus status = ReadAvailable(conn->fd, &conn->assembler,
                                    kMaxReadBytesPerPass, &bytes_read);
    if (status == IoStatus::kError) {
      Teardown(conn);
      return;
    }
    can_read = false;
    if (status == IoStatus::kClosed) {
      // Frames fully received before the EOF still dispatch below.
      conn->read_shut = true;
    } else if (bytes_read >= kMaxReadBytesPerPass) {
      // Cap hit: edge-triggered epoll will not re-signal for bytes still
      // queued in the kernel — continue on the next loop iteration.
      resume_reads_.push_back(conn->id);
    }
  }
  if (conn->torn_down) return;
  FlushAndSettle(conn);
}

void Server::Impl::DispatchFrame(const std::shared_ptr<Connection>& conn,
                                 Frame frame) {
  const bool first = !conn->saw_first_frame;
  conn->saw_first_frame = true;

  if (frame.type == FrameType::kHello) {
    if (!first) {
      protocol_errors_.fetch_add(1);
      AppendResponse(conn, kNoRequestId,
                     ErrorFrame(psql::ErrorCode::kProtocol,
                                "hello must be the first frame"));
      StartDrain(conn);
      return;
    }
    std::optional<uint32_t> requested = ParseHello(frame.payload);
    if (!requested) {
      protocol_errors_.fetch_add(1);
      AppendResponse(conn, kNoRequestId,
                     ErrorFrame(psql::ErrorCode::kProtocol,
                                "malformed hello payload"));
      StartDrain(conn);
      return;
    }
    conn->version = std::min(*requested, kProtocolV2);
    // The hello response is itself never tagged (the client needs the
    // negotiated version to know the framing of everything after it).
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->out_buf += EncodeFrame(
        Frame{FrameType::kHello, EncodeHello(conn->version)});
    return;
  }

  uint64_t request_id = kNoRequestId;
  if (conn->version >= kProtocolV2) {
    if (!DecodeTaggedPayload(&frame, &request_id)) {
      protocol_errors_.fetch_add(1);
      AppendResponse(conn, kNoRequestId,
                     ErrorFrame(psql::ErrorCode::kProtocol,
                                "v2 frame shorter than its request id"));
      StartDrain(conn);
      return;
    }
    if (request_id == kNoRequestId) {
      protocol_errors_.fetch_add(1);
      AppendResponse(conn, kNoRequestId,
                     ErrorFrame(psql::ErrorCode::kProtocol,
                                "request id must be nonzero"));
      return;
    }
    bool duplicate = false;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      duplicate = conn->inflight.count(request_id) > 0;
    }
    for (const auto& sub : conn->subscriptions) {
      duplicate = duplicate || sub.request_id == request_id;
    }
    if (duplicate) {
      protocol_errors_.fetch_add(1);
      AppendResponse(conn, request_id,
                     ErrorFrame(psql::ErrorCode::kProtocol,
                                "request id " + std::to_string(request_id) +
                                    " is already in flight"));
      return;
    }
  } else {
    request_id = conn->next_internal_id++;
  }

  switch (frame.type) {
    case FrameType::kPing:
      AppendResponse(conn, request_id, Frame{FrameType::kOk, "pong"});
      break;
    case FrameType::kGoodbye:
      BeginGoodbye(conn, request_id);
      break;
    case FrameType::kSet: {
      std::string err = conn->options.ApplyWire(frame.payload);
      if (err.empty()) {
        AppendResponse(conn, request_id,
                       Frame{FrameType::kOk, frame.payload});
      } else {
        queries_error_.fetch_add(1);
        AppendResponse(conn, request_id,
                       ErrorFrame(psql::ErrorCode::kBadArgument, err));
      }
      break;
    }
    case FrameType::kPrepare: {
      try {
        PreparedQuery prepared = engine->Prepare(frame.payload);
        uint64_t id = conn->next_handle++;
        conn->handles.emplace(id, std::move(prepared));
        AppendResponse(conn, request_id,
                       Frame{FrameType::kHandle, std::to_string(id)});
      } catch (const std::exception& e) {
        queries_error_.fetch_add(1);
        AppendResponse(conn, request_id,
                       ErrorFrame(psql::ClassifyException(e, frame.payload)));
      }
      break;
    }
    case FrameType::kSubscribe: {
      try {
        conn->subscriptions.push_back(Connection::Sub{
            engine->Subscribe(frame.payload, conn->options.bmo,
                              conn->options.max_pending_deltas),
            request_id});
        Connection::Sub& sub = conn->subscriptions.back();
        subscriptions_opened_.fetch_add(1);
        // Handle first, then the notifier: the kHandle frame always
        // precedes the subscription's bootstrap resync delta (both are
        // appended by this thread; the bootstrap drains in this pass's
        // DrainDeltas, after dispatch).
        AppendResponse(
            conn, request_id,
            Frame{FrameType::kHandle, std::to_string(sub.handle.id())});
        int wakeup_fd = wakeup_fd_;
        std::shared_ptr<Connection> target = conn;
        sub.handle.SetNotifier([target, wakeup_fd] {
          target->deltas_pending.store(true);
          SignalWakeup(wakeup_fd);
        });
        if (options.debug_push_delay_ms > 0) {
          conn->next_delta_drain =
              Clock::now() +
              std::chrono::milliseconds(options.debug_push_delay_ms);
        }
        conn->deltas_pending.store(true);  // the bootstrap is queued
      } catch (const std::exception& e) {
        queries_error_.fetch_add(1);
        AppendResponse(conn, request_id,
                       ErrorFrame(psql::ClassifyException(e, frame.payload)));
      }
      break;
    }
    case FrameType::kQuery: {
      Engine* eng = engine;
      std::string sql = frame.payload;
      BmoOptions bmo = conn->options.bmo;
      AdmitJob(
          conn, request_id,
          [eng, sql, bmo] { return eng->Execute(sql, bmo); }, sql);
      break;
    }
    case FrameType::kRun: {
      errno = 0;
      char* end = nullptr;
      unsigned long long id = std::strtoull(frame.payload.c_str(), &end, 10);
      auto it = (errno == 0 && end != frame.payload.c_str() && *end == '\0')
                    ? conn->handles.find(id)
                    : conn->handles.end();
      if (it == conn->handles.end()) {
        queries_error_.fetch_add(1);
        AppendResponse(conn, request_id,
                       ErrorFrame(psql::ErrorCode::kNotFound,
                                  "no prepared statement with handle '" +
                                      frame.payload + "'"));
        break;
      }
      PreparedQuery prepared = it->second;
      BmoOptions bmo = conn->options.bmo;
      AdmitJob(
          conn, request_id,
          [prepared, bmo] { return prepared.Run(bmo); },
          prepared.normalized_sql());
      break;
    }
    case FrameType::kInsert: {
      size_t nl = frame.payload.find('\n');
      std::optional<Tuple> row;
      size_t pos = nl == std::string::npos ? 0 : nl + 1;
      if (nl != std::string::npos) {
        row = DecodeRow(frame.payload, &pos);
      }
      if (!row || pos != frame.payload.size()) {
        protocol_errors_.fetch_add(1);
        AppendResponse(conn, request_id,
                       ErrorFrame(psql::ErrorCode::kProtocol,
                                  "malformed INSERT payload"));
        break;
      }
      Engine* eng = engine;
      std::string table = frame.payload.substr(0, nl);
      Tuple values = std::move(*row);
      AdmitJob(
          conn, request_id,
          [eng, table, values] {
            eng->Insert(table, values);
            psql::QueryResult ack;  // empty result as the acknowledgement
            return ack;
          },
          "");
      break;
    }
    default:
      protocol_errors_.fetch_add(1);
      AppendResponse(conn, request_id,
                     ErrorFrame(psql::ErrorCode::kProtocol,
                                std::string("unknown frame type '") +
                                    static_cast<char>(frame.type) + "'"));
      break;
  }
}

void Server::Impl::AdmitJob(const std::shared_ptr<Connection>& conn,
                            uint64_t request_id,
                            std::function<psql::QueryResult()> body,
                            const std::string& sql_for_errors) {
  auto job = std::make_shared<Job>();
  job->conn = conn;
  job->request_id = request_id;
  job->timeout_ms = conn->options.timeout_ms;
  if (job->timeout_ms > 0) {
    job->has_deadline = true;
    job->deadline =
        Clock::now() + std::chrono::milliseconds(job->timeout_ms);
  }
  uint64_t delay_ms = options.debug_execute_delay_ms;
  if (!options.debug_delay_substring.empty() &&
      sql_for_errors.find(options.debug_delay_substring) ==
          std::string::npos) {
    delay_ms = 0;
  }
  job->work = [body = std::move(body), sql_for_errors, delay_ms]() -> Frame {
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    try {
      return Frame{FrameType::kResult, SerializeResult(body())};
    } catch (const std::exception& e) {
      return ErrorFrame(psql::ClassifyException(e, sql_for_errors));
    }
  };

  // Register before TryPush: a worker may pop and complete the job
  // before TryPush even returns, and completion requires the in-flight
  // entry to route the response.
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->inflight.emplace(request_id, job);
  }
  uint64_t observed_depth = 0;
  switch (queue_->TryPush(job, &observed_depth)) {
    case JobQueue::PushResult::kFull: {
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        conn->inflight.erase(request_id);
      }
      queries_rejected_overload_.fetch_add(1);
      AppendResponse(conn, request_id,
                     ErrorFrame(psql::ErrorCode::kOverloaded,
                                "admission queue full (" +
                                    std::to_string(options.queue_capacity) +
                                    " queued)"));
      return;
    }
    case JobQueue::PushResult::kStopping: {
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        conn->inflight.erase(request_id);
      }
      AppendResponse(conn, request_id,
                     ErrorFrame(psql::ErrorCode::kShuttingDown,
                                "server is shutting down"));
      return;
    }
    case JobQueue::PushResult::kAdmitted:
      break;
  }
  NotePeakQueueDepth(observed_depth);
}

void Server::Impl::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job = queue_->Pop();
    if (job == nullptr) return;
    if (job->abandoned.load()) {
      // Already answered (deadline) or the connection died; don't burn
      // a kernel run.
      job->conn.reset();
      continue;
    }
    Frame response;
    if (job->has_deadline && Clock::now() > job->deadline) {
      response = ErrorFrame(psql::ErrorCode::kTimeout,
                            "deadline elapsed while queued");
    } else {
      response = job->work();
    }
    CompleteJob(job, std::move(response));
  }
}

void Server::Impl::CompleteJob(const std::shared_ptr<Job>& job, Frame frame) {
  std::shared_ptr<Connection> conn = std::move(job->conn);
  bool appended = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    auto it = conn->inflight.find(job->request_id);
    // The identity check guards request-id reuse: if this request was
    // already answered (TIMEOUT) and the client reused the id, the
    // entry now belongs to a different job.
    if (!conn->closed && it != conn->inflight.end() && it->second == job) {
      conn->inflight.erase(it);
      if (IsTimeoutFrame(frame)) {
        queries_timeout_.fetch_add(1);
      } else if (frame.type == FrameType::kError) {
        queries_error_.fetch_add(1);
      } else {
        queries_ok_.fetch_add(1);
      }
      conn->out_buf += EncodeForVersion(conn->version, job->request_id, frame);
      appended = true;
    }
  }
  if (appended) {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.push_back(conn->id);
    }
    SignalWakeup(wakeup_fd_);
  }
}

void Server::Impl::HandlePendingSignals() {
  std::vector<uint64_t> ready;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    ready.swap(pending_);
  }
  for (uint64_t id : ready) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    FlushAndSettle(it->second);
  }
}

void Server::Impl::DrainDeltas(Clock::time_point now) {
  for (const auto& conn : SnapshotConns()) {
    if (conn->torn_down || !conn->deltas_pending.load()) continue;
    if (OutBufOverLimit(conn)) {
      // Deferred until the client drains (the flag stays set; the
      // engine-side max_pending_deltas coalescing bounds the backlog).
      continue;
    }
    if (options.debug_push_delay_ms > 0 && now < conn->next_delta_drain) {
      continue;  // paced; ComputeTimeoutMs schedules the retry
    }
    // Clear before polling: a push landing mid-drain re-sets the flag
    // and re-signals, so nothing is lost — at worst one spurious pass.
    conn->deltas_pending.store(false);
    bool wrote = false;
    for (auto& sub : conn->subscriptions) {
      while (std::optional<ivm::ViewDelta> delta = sub.handle.Poll()) {
        Frame frame{FrameType::kDelta,
                    SerializeDelta(sub.handle.id(), sub.handle.schema(),
                                   delta->version, delta->resync,
                                   delta->enters, delta->exits)};
        AppendResponse(conn, sub.request_id, frame);
        deltas_pushed_.fetch_add(1);
        wrote = true;
      }
    }
    if (options.debug_push_delay_ms > 0) {
      conn->next_delta_drain =
          now + std::chrono::milliseconds(options.debug_push_delay_ms);
    }
    if (wrote) FlushAndSettle(conn);
  }
}

void Server::Impl::ExpireDeadlines(Clock::time_point now) {
  for (const auto& conn : SnapshotConns()) {
    if (conn->torn_down) continue;
    bool wrote = false;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      for (auto it = conn->inflight.begin(); it != conn->inflight.end();) {
        const std::shared_ptr<Job>& job = it->second;
        if (job->has_deadline && now > job->deadline) {
          job->abandoned.store(true);
          conn->out_buf += EncodeForVersion(
              conn->version, it->first,
              ErrorFrame(psql::ErrorCode::kTimeout,
                         "query exceeded its " +
                             std::to_string(job->timeout_ms) +
                             "ms deadline"));
          queries_timeout_.fetch_add(1);
          it = conn->inflight.erase(it);
          wrote = true;
        } else {
          ++it;
        }
      }
    }
    if (wrote) FlushAndSettle(conn);
  }
}

int Server::Impl::ComputeTimeoutMs(Clock::time_point now) {
  if (!resume_reads_.empty()) return 0;  // a read pass is already owed
  Clock::time_point next = Clock::time_point::max();
  for (const auto& [id, conn] : conns_) {
    if (conn->torn_down) continue;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      for (const auto& [rid, job] : conn->inflight) {
        if (job->has_deadline && job->deadline < next) next = job->deadline;
      }
    }
    if (conn->deltas_pending.load() && options.debug_push_delay_ms > 0 &&
        conn->next_delta_drain < next) {
      next = conn->next_delta_drain;
    }
  }
  if (next == Clock::time_point::max()) {
    // Nothing scheduled; wake on events only (capped while stopping so
    // the drain progression is never parked forever).
    return stopping_.load() ? 50 : -1;
  }
  auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
          .count();
  if (ms < 0) ms = 0;
  if (ms > 60000) ms = 60000;
  return static_cast<int>(ms) + 1;  // round up: never wake before `next`
}

void Server::Impl::AppendResponse(const std::shared_ptr<Connection>& conn,
                                  uint64_t request_id, const Frame& frame) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  if (conn->closed) return;
  conn->out_buf += EncodeForVersion(conn->version, request_id, frame);
}

Server::Impl::FlushResult Server::Impl::FlushOut(
    const std::shared_ptr<Connection>& conn) {
  IoStatus status;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return FlushResult::kFailed;
    if (conn->out_off >= conn->out_buf.size()) {
      status = IoStatus::kOk;
    } else {
      status = WriteSome(conn->fd, &conn->out_buf, &conn->out_off);
    }
  }
  if (status == IoStatus::kOk) {
    if (conn->want_write) {
      conn->want_write = false;
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
      ev.data.u64 = conn->id;
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    }
    return FlushResult::kFlushed;
  }
  if (status == IoStatus::kWouldBlock) {
    if (!conn->want_write) {
      conn->want_write = true;
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP | EPOLLOUT;
      ev.data.u64 = conn->id;
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    }
    return FlushResult::kBlocked;
  }
  return FlushResult::kFailed;
}

void Server::Impl::FlushAndSettle(const std::shared_ptr<Connection>& conn) {
  if (conn->torn_down) return;
  if (FlushOut(conn) == FlushResult::kFailed) {
    Teardown(conn);
    return;
  }
  if (conn->read_blocked && !OutBufOverLimit(conn)) {
    // Backpressure lifted: resume reading on the next loop iteration.
    // Settling waits for the resumed pass — requests still buffered may
    // admit new work, so the connection is not finishable yet.
    conn->read_blocked = false;
    resume_reads_.push_back(conn->id);
    return;
  }
  MaybeFinish(conn);
}

void Server::Impl::MaybeFinish(const std::shared_ptr<Connection>& conn) {
  if (conn->torn_down) return;
  bool ack_appended = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->goodbye_pending && conn->inflight.empty()) {
      // Every request admitted before the goodbye has answered and its
      // response sits in the out-buffer ahead of this ack.
      conn->out_buf += EncodeForVersion(conn->version,
                                        conn->goodbye_request_id,
                                        Frame{FrameType::kOk, "bye"});
      conn->goodbye_pending = false;
      ack_appended = true;
    }
  }
  if (ack_appended && FlushOut(conn) == FlushResult::kFailed) {
    Teardown(conn);
    return;
  }
  bool done;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    done = (conn->draining || conn->read_shut) && conn->inflight.empty() &&
           !conn->goodbye_pending && conn->out_off >= conn->out_buf.size();
  }
  if (done) Teardown(conn);
}

bool Server::Impl::OutBufOverLimit(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  return conn->out_buf.size() - conn->out_off >= options.max_outbuf_bytes;
}

void Server::Impl::BeginGoodbye(const std::shared_ptr<Connection>& conn,
                                uint64_t request_id) {
  conn->draining = true;
  for (auto& sub : conn->subscriptions) {
    sub.handle.SetNotifier(nullptr);
    sub.handle.Cancel();
  }
  conn->subscriptions.clear();
  conn->deltas_pending.store(false);
  std::lock_guard<std::mutex> lock(conn->out_mu);
  conn->goodbye_pending = true;
  conn->goodbye_request_id = request_id;
}

void Server::Impl::StartDrain(const std::shared_ptr<Connection>& conn) {
  conn->draining = true;
  for (auto& sub : conn->subscriptions) {
    sub.handle.SetNotifier(nullptr);
    sub.handle.Cancel();
  }
  conn->subscriptions.clear();
  conn->deltas_pending.store(false);
  std::lock_guard<std::mutex> lock(conn->out_mu);
  for (auto& [rid, job] : conn->inflight) job->abandoned.store(true);
  conn->inflight.clear();
  // A fault drain supersedes a pending goodbye (the error frame and the
  // close are the client's signal).
  conn->goodbye_pending = false;
}

void Server::Impl::Teardown(const std::shared_ptr<Connection>& conn) {
  if (conn->torn_down) return;
  conn->torn_down = true;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closed = true;
    for (auto& [rid, job] : conn->inflight) job->abandoned.store(true);
    conn->inflight.clear();
    conn->out_buf.clear();
    conn->out_off = 0;
  }
  for (auto& sub : conn->subscriptions) {
    sub.handle.SetNotifier(nullptr);
    sub.handle.Cancel();
  }
  conn->subscriptions.clear();
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  shutdown(conn->fd, SHUT_RDWR);
  close(conn->fd);
  conns_.erase(conn->id);
}

Server::Server(Engine* engine, ServerOptions options)
    : impl_(std::make_unique<Impl>(engine, std::move(options))) {}

Server::~Server() { Stop(); }

void Server::Start() { impl_->Start(); }
void Server::Stop() { impl_->Stop(); }

bool Server::running() const {
  std::lock_guard<std::mutex> lock(impl_->state_mu_);
  return impl_->running_;
}

uint16_t Server::port() const { return impl_->bound_port_; }

ServerStats Server::stats() const {
  ServerStats out;
  out.sessions_accepted = impl_->sessions_accepted_.load();
  out.sessions_rejected = impl_->sessions_rejected_.load();
  out.queries_ok = impl_->queries_ok_.load();
  out.queries_error = impl_->queries_error_.load();
  out.queries_rejected_overload = impl_->queries_rejected_overload_.load();
  out.queries_timeout = impl_->queries_timeout_.load();
  out.protocol_errors = impl_->protocol_errors_.load();
  out.peak_queue_depth = impl_->peak_queue_depth_.load();
  out.read_pauses = impl_->read_pauses_.load();
  out.subscriptions_opened = impl_->subscriptions_opened_.load();
  out.deltas_pushed = impl_->deltas_pushed_.load();
  return out;
}

Engine& Server::engine() { return *impl_->engine; }

}  // namespace prefdb::server
