#include "server/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "psql/error.h"
#include "server/protocol.h"
#include "server/wire_io.h"

namespace prefdb::server {

namespace {

using Clock = std::chrono::steady_clock;

Frame ErrorFrame(psql::ErrorCode code, const std::string& message) {
  return Frame{FrameType::kError,
               psql::SerializeError(psql::QueryError{code, message})};
}

Frame ErrorFrame(const psql::QueryError& error) {
  return Frame{FrameType::kError, psql::SerializeError(error)};
}

bool IsTimeoutFrame(const Frame& frame) {
  return frame.type == FrameType::kError &&
         psql::DeserializeError(frame.payload).code ==
             psql::ErrorCode::kTimeout;
}

/// One admitted unit of work. The session thread waits on `done`; a
/// worker fulfills it. `abandoned` is set by a session that hit its
/// deadline, letting a worker skip (or discard) the execution.
struct Job {
  std::function<Frame()> work;
  std::promise<Frame> promise;
  std::future<Frame> done;
  Clock::time_point deadline{};
  bool has_deadline = false;
  std::atomic<bool> abandoned{false};
};

/// The bounded admission queue. Push never blocks: a full queue is the
/// backpressure signal (OVERLOADED), not a place to wait.
class JobQueue {
 public:
  enum class PushResult { kAdmitted, kFull, kStopping };

  explicit JobQueue(size_t capacity) : capacity_(capacity) {}

  PushResult TryPush(std::shared_ptr<Job> job, uint64_t* peak_depth) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return PushResult::kStopping;
      if (jobs_.size() >= capacity_) return PushResult::kFull;
      jobs_.push_back(std::move(job));
      if (jobs_.size() > *peak_depth) *peak_depth = jobs_.size();
    }
    cv_.notify_one();
    return PushResult::kAdmitted;
  }

  /// Blocks for the next job; nullptr once stopping and drained.
  std::shared_ptr<Job> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
    if (jobs_.empty()) return nullptr;
    std::shared_ptr<Job> job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
  }

  /// Rejects new pushes; workers drain what is queued, then Pop()
  /// returns nullptr.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stopping_ = false;
};

struct SessionCtx {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};
  /// Serializes all frame writes on `fd`: responses from the session
  /// thread and kDelta pushes from pusher threads must not interleave.
  std::mutex write_mu;
  /// Set at session teardown; tells pusher threads to stop waiting.
  std::atomic<bool> closing{false};
};

}  // namespace

struct Server::Impl {
  Engine* engine;
  ServerOptions options;

  std::mutex state_mu_;  // guards running_ transitions
  bool running_ = false;
  std::atomic<bool> stopping_{false};

  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::unique_ptr<JobQueue> queue_;

  std::mutex sessions_mu_;
  std::list<std::unique_ptr<SessionCtx>> sessions_;
  std::atomic<size_t> active_sessions_{0};

  // --- counters (ServerStats snapshot)
  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_error_{0};
  std::atomic<uint64_t> queries_rejected_overload_{0};
  std::atomic<uint64_t> queries_timeout_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> peak_queue_depth_{0};
  std::atomic<uint64_t> subscriptions_opened_{0};
  std::atomic<uint64_t> deltas_pushed_{0};

  Impl(Engine* engine_in, ServerOptions options_in)
      : engine(engine_in), options(std::move(options_in)) {}

  void Start();
  void Stop();
  void AcceptLoop();
  void WorkerLoop();
  void SessionLoop(SessionCtx* ctx);
  void ReapFinishedSessions();
  void NotePeakQueueDepth(uint64_t depth) {
    uint64_t seen = peak_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !peak_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  /// Builds, admits and awaits one query job; writes the response frame
  /// under the session's write mutex. `body` runs on a worker thread and
  /// must be self-contained (it owns copies of everything it touches).
  void ExecuteAdmitted(SessionCtx* ctx, std::function<psql::QueryResult()> body,
                       const std::string& sql_for_errors,
                       uint64_t timeout_ms);

  /// One per subscription: drains the engine-side delta queue into
  /// kDelta frames until the subscription closes or the session ends.
  void PusherLoop(SessionCtx* ctx, Engine::Subscription* sub);

  void WriteLocked(SessionCtx* ctx, const Frame& frame) {
    std::lock_guard<std::mutex> lock(ctx->write_mu);
    WriteFrame(ctx->fd, frame);
  }
};

void Server::Impl::Start() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (running_) throw psql::ServerError("server already started");

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw psql::ServerError("socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw psql::ServerError("invalid bind address: " + options.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int err = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    throw psql::ServerError(std::string("bind() failed: ") +
                             std::strerror(err));
  }
  if (listen(listen_fd_, 512) != 0) {
    int err = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    throw psql::ServerError(std::string("listen() failed: ") +
                             std::strerror(err));
  }
  socklen_t addr_len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_ = ntohs(addr.sin_port);

  // A short receive timeout turns the blocking accept() into a poll so
  // the loop notices stopping_ without signal games.
  timeval tv{};
  tv.tv_usec = 50 * 1000;
  setsockopt(listen_fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  stopping_.store(false);
  queue_ = std::make_unique<JobQueue>(options.queue_capacity);
  size_t workers = options.num_workers != 0
                       ? options.num_workers
                       : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  running_ = true;
}

void Server::Impl::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!running_) return;
    running_ = false;
  }
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;

  // Unblock every session's next read; in-flight requests still finish
  // and flush their responses (SHUT_RD leaves the write side open).
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& session : sessions_) shutdown(session->fd, SHUT_RD);
  }
  // The accept thread is gone, so only this thread mutates the list now.
  for (auto& session : sessions_) {
    if (session->thread.joinable()) session->thread.join();
    close(session->fd);
  }
  sessions_.clear();

  // Sessions have flushed; retire the workers (they drain any abandoned
  // jobs still queued).
  queue_->Stop();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void Server::Impl::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = AcceptClient(listen_fd_);
    if (fd < 0) {
      if (fd == kAcceptRetry) {
        ReapFinishedSessions();
        continue;
      }
      break;  // listen socket gone
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Linux lets accepted sockets inherit the listener's SO_RCVTIMEO
    // accept-poll timeout; clear it — sessions may idle indefinitely
    // between requests (Stop() unblocks them via shutdown(SHUT_RD)).
    timeval forever{};
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &forever, sizeof(forever));
    ReapFinishedSessions();
    if (active_sessions_.load() >= options.max_sessions) {
      sessions_rejected_.fetch_add(1);
      WriteFrame(fd, ErrorFrame(psql::ErrorCode::kOverloaded,
                                "session limit reached (" +
                                    std::to_string(options.max_sessions) +
                                    ")"));
      close(fd);
      continue;
    }
    sessions_accepted_.fetch_add(1);
    active_sessions_.fetch_add(1);
    auto ctx = std::make_unique<SessionCtx>();
    ctx->fd = fd;
    SessionCtx* raw = ctx.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(std::move(ctx));
    }
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
}

void Server::Impl::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      close((*it)->fd);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::Impl::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job = queue_->Pop();
    if (job == nullptr) return;
    Frame response;
    if (job->abandoned.load()) {
      // The session already answered TIMEOUT; don't burn a kernel run.
      response = ErrorFrame(psql::ErrorCode::kTimeout, "abandoned");
    } else if (job->has_deadline && Clock::now() > job->deadline) {
      response = ErrorFrame(psql::ErrorCode::kTimeout,
                            "deadline elapsed while queued");
    } else {
      response = job->work();
    }
    job->promise.set_value(std::move(response));
  }
}

void Server::Impl::PusherLoop(SessionCtx* ctx, Engine::Subscription* sub) {
  for (;;) {
    if (options.debug_push_delay_ms > 0 && !ctx->closing.load()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.debug_push_delay_ms));
    }
    std::optional<ivm::ViewDelta> delta =
        sub->WaitFor(std::chrono::milliseconds(250));
    if (!delta) {
      // Closed + drained (or just a timeout tick). Check closing last so
      // a delta queued right before teardown still flushes.
      if (sub->closed() || ctx->closing.load()) return;
      continue;
    }
    Frame frame{FrameType::kDelta,
                SerializeDelta(sub->id(), sub->schema(), delta->version,
                               delta->resync, delta->enters, delta->exits)};
    std::lock_guard<std::mutex> lock(ctx->write_mu);
    if (!WriteFrame(ctx->fd, frame)) return;  // client gone; stop pushing
    deltas_pushed_.fetch_add(1);
  }
}

void Server::Impl::ExecuteAdmitted(SessionCtx* ctx,
                                   std::function<psql::QueryResult()> body,
                                   const std::string& sql_for_errors,
                                   uint64_t timeout_ms) {
  auto job = std::make_shared<Job>();
  job->done = job->promise.get_future();
  if (timeout_ms > 0) {
    job->has_deadline = true;
    job->deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  }
  uint64_t delay_ms = options.debug_execute_delay_ms;
  job->work = [body = std::move(body), sql_for_errors, delay_ms]() -> Frame {
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    try {
      return Frame{FrameType::kResult, SerializeResult(body())};
    } catch (const std::exception& e) {
      return ErrorFrame(psql::ClassifyException(e, sql_for_errors));
    }
  };

  uint64_t observed_depth = 0;
  switch (queue_->TryPush(job, &observed_depth)) {
    case JobQueue::PushResult::kFull:
      queries_rejected_overload_.fetch_add(1);
      WriteLocked(ctx, ErrorFrame(psql::ErrorCode::kOverloaded,
                                  "admission queue full (" +
                                      std::to_string(options.queue_capacity) +
                                      " queued)"));
      return;
    case JobQueue::PushResult::kStopping:
      WriteLocked(ctx, ErrorFrame(psql::ErrorCode::kShuttingDown,
                                  "server is shutting down"));
      return;
    case JobQueue::PushResult::kAdmitted:
      break;
  }
  NotePeakQueueDepth(observed_depth);

  Frame response;
  if (!job->has_deadline) {
    response = job->done.get();
  } else if (job->done.wait_until(job->deadline) ==
             std::future_status::ready) {
    response = job->done.get();
  } else {
    job->abandoned.store(true);
    response = ErrorFrame(
        psql::ErrorCode::kTimeout,
        "query exceeded its " + std::to_string(timeout_ms) + "ms deadline");
  }
  if (IsTimeoutFrame(response)) {
    queries_timeout_.fetch_add(1);
  } else if (response.type == FrameType::kError) {
    queries_error_.fetch_add(1);
  } else {
    queries_ok_.fetch_add(1);
  }
  WriteLocked(ctx, response);
}

namespace {

/// Applies one "name=value" SET command to the session state. Returns
/// an error message, or "" on success.
std::string ApplySessionOption(const std::string& payload, BmoOptions* bmo,
                               uint64_t* timeout_ms,
                               size_t* max_pending_deltas) {
  size_t eq = payload.find('=');
  if (eq == std::string::npos) return "expected name=value, got '" + payload + "'";
  std::string name = payload.substr(0, eq);
  std::string value = payload.substr(eq + 1);
  auto parse_count = [&value](uint64_t* out) {
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end == value.c_str() || *end != '\0') return false;
    *out = v;
    return true;
  };
  if (name == "threads") {
    uint64_t v = 0;
    if (!parse_count(&v)) return "threads expects a number";
    bmo->num_threads = static_cast<size_t>(v);
    // A session asking for intra-query parallelism also gets kAuto's
    // parallel plans back (the serving default opts out of them).
    bmo->parallel_threshold = v > 1 ? 32768 : SIZE_MAX;
    return "";
  }
  if (name == "timeout_ms") {
    return parse_count(timeout_ms) ? "" : "timeout_ms expects a number";
  }
  if (name == "max_pending_deltas") {
    // Applies to subscriptions opened after the SET (a live pusher keeps
    // the bound it was created with). 0 restores the engine default.
    uint64_t v = 0;
    if (!parse_count(&v)) return "max_pending_deltas expects a number";
    *max_pending_deltas = static_cast<size_t>(v);
    return "";
  }
  if (name == "vectorize") {
    if (value == "on") bmo->vectorize = true;
    else if (value == "off") bmo->vectorize = false;
    else return "vectorize expects on|off";
    return "";
  }
  if (name == "algorithm") {
    if (value == "auto") bmo->algorithm = BmoAlgorithm::kAuto;
    else if (value == "naive") bmo->algorithm = BmoAlgorithm::kNaive;
    else if (value == "bnl") bmo->algorithm = BmoAlgorithm::kBlockNestedLoop;
    else if (value == "sfs") bmo->algorithm = BmoAlgorithm::kSortFilter;
    else if (value == "dc") bmo->algorithm = BmoAlgorithm::kDivideConquer;
    else if (value == "parallel") bmo->algorithm = BmoAlgorithm::kParallel;
    else return "unknown algorithm '" + value + "'";
    return "";
  }
  if (name == "simd") {
    if (value == "auto") bmo->simd = SimdMode::kAuto;
    else if (value == "off") bmo->simd = SimdMode::kOff;
    else if (value == "scalar") bmo->simd = SimdMode::kScalar;
    else if (value == "avx2") bmo->simd = SimdMode::kAvx2;
    else return "unknown simd mode '" + value + "'";
    return "";
  }
  return "unknown session option '" + name + "'";
}

}  // namespace

void Server::Impl::SessionLoop(SessionCtx* ctx) {
  const int fd = ctx->fd;
  BmoOptions bmo = options.session_bmo;
  uint64_t timeout_ms = options.query_timeout_ms;
  size_t max_pending_deltas = options.max_pending_deltas;
  std::unordered_map<uint64_t, PreparedQuery> handles;
  uint64_t next_handle = 1;
  // Subscription handles live here (std::list: pusher threads hold
  // element pointers across push_back); pushers are joined at teardown.
  std::list<Engine::Subscription> subscriptions;
  std::vector<std::thread> pushers;

  for (;;) {
    Frame request;
    uint32_t oversized_len = 0;
    ReadStatus status =
        ReadFrame(fd, &request, options.max_frame_bytes, &oversized_len);
    if (status == ReadStatus::kClosed || status == ReadStatus::kError) break;
    if (status == ReadStatus::kOversized) {
      protocol_errors_.fetch_add(1);
      WriteLocked(ctx,
                  ErrorFrame(psql::ErrorCode::kOversized,
                             "frame of " + std::to_string(oversized_len) +
                                 " bytes exceeds the " +
                                 std::to_string(options.max_frame_bytes) +
                                 "-byte limit"));
      break;  // the unread payload cannot be resynchronized cheaply
    }

    bool goodbye = false;
    switch (request.type) {
      case FrameType::kPing:
        WriteLocked(ctx, Frame{FrameType::kOk, "pong"});
        break;
      case FrameType::kGoodbye:
        WriteLocked(ctx, Frame{FrameType::kOk, "bye"});
        goodbye = true;
        break;
      case FrameType::kSet: {
        std::string err = ApplySessionOption(request.payload, &bmo,
                                             &timeout_ms, &max_pending_deltas);
        if (err.empty()) {
          WriteLocked(ctx, Frame{FrameType::kOk, request.payload});
        } else {
          queries_error_.fetch_add(1);
          WriteLocked(ctx, ErrorFrame(psql::ErrorCode::kBadArgument, err));
        }
        break;
      }
      case FrameType::kPrepare: {
        try {
          PreparedQuery prepared = engine->Prepare(request.payload);
          uint64_t id = next_handle++;
          handles.emplace(id, std::move(prepared));
          WriteLocked(ctx, Frame{FrameType::kHandle, std::to_string(id)});
        } catch (const std::exception& e) {
          queries_error_.fetch_add(1);
          WriteLocked(ctx,
                      ErrorFrame(psql::ClassifyException(e, request.payload)));
        }
        break;
      }
      case FrameType::kSubscribe: {
        try {
          subscriptions.push_back(
              engine->Subscribe(request.payload, bmo, max_pending_deltas));
          Engine::Subscription* sub = &subscriptions.back();
          subscriptions_opened_.fetch_add(1);
          // Handle first, then the pusher: the kHandle frame always
          // precedes the subscription's bootstrap resync delta.
          WriteLocked(ctx,
                      Frame{FrameType::kHandle, std::to_string(sub->id())});
          pushers.emplace_back([this, ctx, sub] { PusherLoop(ctx, sub); });
        } catch (const std::exception& e) {
          queries_error_.fetch_add(1);
          WriteLocked(ctx,
                      ErrorFrame(psql::ClassifyException(e, request.payload)));
        }
        break;
      }
      case FrameType::kQuery: {
        Engine* eng = engine;
        std::string sql = request.payload;
        BmoOptions session_bmo = bmo;
        ExecuteAdmitted(
            ctx,
            [eng, sql, session_bmo] { return eng->Execute(sql, session_bmo); },
            sql, timeout_ms);
        break;
      }
      case FrameType::kRun: {
        errno = 0;
        char* end = nullptr;
        unsigned long long id =
            std::strtoull(request.payload.c_str(), &end, 10);
        auto it = (errno == 0 && end != request.payload.c_str() &&
                   *end == '\0')
                      ? handles.find(id)
                      : handles.end();
        if (it == handles.end()) {
          queries_error_.fetch_add(1);
          WriteLocked(ctx, ErrorFrame(psql::ErrorCode::kNotFound,
                                      "no prepared statement with handle '" +
                                          request.payload + "'"));
          break;
        }
        PreparedQuery prepared = it->second;
        BmoOptions session_bmo = bmo;
        ExecuteAdmitted(
            ctx, [prepared, session_bmo] { return prepared.Run(session_bmo); },
            prepared.normalized_sql(), timeout_ms);
        break;
      }
      case FrameType::kInsert: {
        size_t nl = request.payload.find('\n');
        std::optional<Tuple> row;
        size_t pos = nl == std::string::npos ? 0 : nl + 1;
        if (nl != std::string::npos) {
          row = DecodeRow(request.payload, &pos);
        }
        if (!row || pos != request.payload.size()) {
          protocol_errors_.fetch_add(1);
          WriteLocked(ctx, ErrorFrame(psql::ErrorCode::kProtocol,
                                      "malformed INSERT payload"));
          break;
        }
        Engine* eng = engine;
        std::string table = request.payload.substr(0, nl);
        Tuple values = std::move(*row);
        ExecuteAdmitted(
            ctx,
            [eng, table, values] {
              eng->Insert(table, values);
              psql::QueryResult ack;  // empty result as the acknowledgement
              return ack;
            },
            "", timeout_ms);
        break;
      }
      default:
        protocol_errors_.fetch_add(1);
        WriteLocked(ctx, ErrorFrame(psql::ErrorCode::kProtocol,
                                    std::string("unknown frame type '") +
                                        static_cast<char>(request.type) + "'"));
        break;
    }
    if (goodbye) break;
  }

  // Teardown order matters: cancel first (closes each subscription's
  // state, waking its pusher), join the pushers (they flush whatever was
  // still queued), and only then shut the socket down and mark the
  // session reapable — the reaper closes fd, which must never race a
  // pusher's write.
  ctx->closing.store(true);
  for (auto& sub : subscriptions) sub.Cancel();
  for (auto& pusher : pushers) pusher.join();
  shutdown(fd, SHUT_RDWR);
  active_sessions_.fetch_sub(1);
  ctx->finished.store(true);
}

Server::Server(Engine* engine, ServerOptions options)
    : impl_(std::make_unique<Impl>(engine, std::move(options))) {}

Server::~Server() { Stop(); }

void Server::Start() { impl_->Start(); }
void Server::Stop() { impl_->Stop(); }

bool Server::running() const {
  std::lock_guard<std::mutex> lock(impl_->state_mu_);
  return impl_->running_;
}

uint16_t Server::port() const { return impl_->bound_port_; }

ServerStats Server::stats() const {
  ServerStats out;
  out.sessions_accepted = impl_->sessions_accepted_.load();
  out.sessions_rejected = impl_->sessions_rejected_.load();
  out.queries_ok = impl_->queries_ok_.load();
  out.queries_error = impl_->queries_error_.load();
  out.queries_rejected_overload = impl_->queries_rejected_overload_.load();
  out.queries_timeout = impl_->queries_timeout_.load();
  out.protocol_errors = impl_->protocol_errors_.load();
  out.peak_queue_depth = impl_->peak_queue_depth_.load();
  out.subscriptions_opened = impl_->subscriptions_opened_.load();
  out.deltas_pushed = impl_->deltas_pushed_.load();
  return out;
}

Engine& Server::engine() { return *impl_->engine; }

}  // namespace prefdb::server
