// The prefdb preference query server: concurrent serving on the Engine
// seam. One shared prefdb::Engine (plan/exec caches, COW snapshots) behind
// a TCP front end speaking the length-prefixed protocol of protocol.h.
//
// Architecture (all threads owned by the Server):
//
//   accept loop     one thread; admits up to max_sessions concurrent
//                   connections (beyond that: an OVERLOADED error frame
//                   and an immediate close).
//   session threads one blocking thread per connection. A session owns
//                   its socket, its per-session BmoOptions (mutated by
//                   SET frames), its prepared-statement handle table, and
//                   its per-query deadline. Sessions never execute
//                   queries themselves: execution is admitted into the
//                   shared worker pool so "thousands of sessions" cannot
//                   mean thousands of concurrently running kernels.
//   worker pool     num_workers threads draining a bounded job queue.
//                   A full queue rejects new queries with OVERLOADED
//                   (backpressure, not buffering); a query that misses
//                   its deadline while queued is answered TIMEOUT
//                   without ever executing, and one that is still
//                   running at the deadline is answered TIMEOUT while
//                   the worker's result is discarded on completion.
//   pusher threads  one per subscription (kSubscribe frame): drains the
//                   engine-side delta queue and pushes kDelta frames.
//                   All writes on a session socket serialize through a
//                   per-session write mutex so pushes never interleave
//                   with responses. A slow subscriber's backlog is
//                   coalesced engine-side into one resync snapshot
//                   (max_pending_deltas), so pushers buffer bounded
//                   state no matter how far behind the client falls.
//
// Reads are snapshot-consistent: a query executes against the relation
// snapshot its exec-cache entry was compiled for, so INSERT frames racing
// concurrent queries are safe (each query sees a consistent old-or-new
// state — the Engine's COW contract).
//
// Stop() is graceful: stop accepting, unblock session reads, let every
// in-flight query finish and flush its response, then retire the workers.

#ifndef PREFDB_SERVER_SERVER_H_
#define PREFDB_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "engine/engine.h"

namespace prefdb::server {

struct ServerOptions {
  /// Bind address. Tests and local serving use the loopback default.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Query-execution workers (0 = hardware concurrency).
  size_t num_workers = 0;
  /// Concurrent-connection cap; connections beyond it are turned away
  /// with an OVERLOADED error frame.
  size_t max_sessions = 4096;
  /// Bound on queries admitted but not yet executing. A full queue is
  /// backpressure: new queries get an OVERLOADED error immediately.
  size_t queue_capacity = 1024;
  /// Per-query deadline in milliseconds (0 = none). Sessions may lower
  /// or raise their own via "SET timeout_ms=<n>".
  uint64_t query_timeout_ms = 30000;
  /// Frames larger than this are answered with an OVERSIZED error and
  /// the connection is closed (the remainder of the stream cannot be
  /// skipped cheaply).
  size_t max_frame_bytes = 1 << 20;
  /// Per-subscription bound on deltas queued server-side for a slow
  /// subscriber before the backlog is coalesced into one resync snapshot
  /// (0 = the engine's EngineOptions::max_pending_deltas default).
  /// Sessions may override their own via "SET max_pending_deltas=<n>".
  size_t max_pending_deltas = 0;
  /// Starting BmoOptions for every session. Workers already provide the
  /// serving-side parallelism, so per-query kernels default to one
  /// thread; sessions opt into more via "SET threads=<n>".
  BmoOptions session_bmo = DefaultSessionBmo();
  /// Test hook: artificial per-query execution delay (milliseconds),
  /// applied in the worker before the engine call. Lets admission and
  /// timeout paths be exercised deterministically.
  uint64_t debug_execute_delay_ms = 0;
  /// Test hook: artificial delay (milliseconds) before each pusher-drain
  /// attempt — simulates a slow subscriber so the engine-side queue
  /// overflow / coalesced-resync path is exercised deterministically.
  uint64_t debug_push_delay_ms = 0;

  static BmoOptions DefaultSessionBmo() {
    BmoOptions bmo;
    bmo.num_threads = 1;
    bmo.parallel_threshold = SIZE_MAX;  // workers are the parallelism
    return bmo;
  }
};

/// Monotonic counters, readable while serving. Snapshot semantics.
struct ServerStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_rejected = 0;
  /// Queries answered with a result frame.
  uint64_t queries_ok = 0;
  /// Queries answered with a classified error frame (syntax etc.).
  uint64_t queries_error = 0;
  /// Queries rejected by admission control (bounded queue full).
  uint64_t queries_rejected_overload = 0;
  /// Queries answered TIMEOUT (queued past or running past deadline).
  uint64_t queries_timeout = 0;
  /// Malformed / unknown / oversized frames seen.
  uint64_t protocol_errors = 0;
  /// High-water mark of the admission queue.
  uint64_t peak_queue_depth = 0;
  /// Subscriptions accepted (kSubscribe answered with a handle).
  uint64_t subscriptions_opened = 0;
  /// kDelta frames pushed to clients (resyncs included).
  uint64_t deltas_pushed = 0;
};

/// A running server. Start() spawns the threads; Stop() (or destruction)
/// drains them. The Engine outlives the Server and may also be used
/// directly by the embedding process while serving.
class Server {
 public:
  Server(Engine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns accept/worker threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void Start();

  /// Graceful shutdown: stop accepting, complete and flush every
  /// admitted query, close all sessions, join all threads. Idempotent.
  void Stop();

  bool running() const;
  /// The bound TCP port (valid after Start()).
  uint16_t port() const;
  ServerStats stats() const;
  Engine& engine();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prefdb::server

#endif  // PREFDB_SERVER_SERVER_H_
