// The prefdb preference query server: concurrent serving on the Engine
// seam. One shared prefdb::Engine (plan/exec caches, COW snapshots) behind
// a TCP front end speaking the length-prefixed protocol of protocol.h —
// v1 request/response and v2 pipelined (request-id tagged frames,
// negotiated by a kHello handshake; see protocol.h).
//
// Architecture (all threads owned by the Server):
//
//   event loop      ONE thread multiplexing the listener and every
//                   connection through edge-triggered epoll. It owns all
//                   socket I/O: non-blocking reads feed a per-connection
//                   FrameAssembler (partial-frame reassembly), writes
//                   drain a per-connection out-buffer (EPOLLOUT armed
//                   only under backpressure) — so all writes on a
//                   connection are serialized by construction. Reads are
//                   bounded both per pass (loop fairness: one line-rate
//                   connection cannot pin the loop) and by the reader:
//                   a connection whose out-buffer exceeds
//                   max_outbuf_bytes is not read (and its delta drains
//                   are deferred) until the client consumes what is
//                   already owed, so a non-reading pipeliner cannot
//                   grow server memory without bound. Sessions
//                   (protocol version, SessionOptions, prepared handles,
//                   subscriptions) are plain event-loop state: no
//                   per-session thread, no per-session read stack, which
//                   is what lifts the practical connection count.
//   worker pool     num_workers threads draining a bounded job queue;
//                   queries/runs/inserts are admitted here, tagged with
//                   (connection, request_id). A completion re-checks the
//                   in-flight table under the connection's out-buffer
//                   lock, appends the encoded response, and signals the
//                   loop's eventfd — late results for a request already
//                   answered (TIMEOUT) or a connection already gone are
//                   dropped. A full queue rejects with OVERLOADED
//                   (backpressure, not buffering); a query that misses
//                   its deadline while queued is answered TIMEOUT
//                   without ever executing, and one still running at
//                   the deadline is answered TIMEOUT by the loop's
//                   deadline timer while the worker's result is
//                   discarded on completion.
//   delta push      no pusher threads: each subscription's delta queue
//                   carries a notifier (ivm::SubscriptionState hook)
//                   that flags the connection and signals the eventfd;
//                   the event loop drains via Poll() and appends kDelta
//                   frames — tagged, on v2, with the request id of the
//                   kSubscribe that opened the stream — to the same
//                   out-buffer as responses. A slow subscriber's backlog
//                   is still coalesced engine-side into one resync
//                   snapshot (max_pending_deltas).
//
// With many requests pipelined on one connection, responses come back in
// completion order, not request order — the request id is the client's
// correlation key. v1 connections never tag frames; a v1 client keeps at
// most one request in flight, so ordering is unobservable there.
//
// Reads are snapshot-consistent: a query executes against the relation
// snapshot its exec-cache entry was compiled for, so INSERT frames racing
// concurrent queries are safe (each query sees a consistent old-or-new
// state — the Engine's COW contract).
//
// Stop() is graceful: stop accepting, shut every connection's read side,
// let every admitted query finish and flush its response, then retire
// the workers.

#ifndef PREFDB_SERVER_SERVER_H_
#define PREFDB_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "engine/engine.h"

namespace prefdb::server {

struct ServerOptions {
  /// Bind address. Tests and local serving use the loopback default.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Query-execution workers (0 = hardware concurrency).
  size_t num_workers = 0;
  /// Concurrent-connection cap; connections beyond it are turned away
  /// with an OVERLOADED error frame.
  size_t max_sessions = 4096;
  /// Bound on queries admitted but not yet executing. A full queue is
  /// backpressure: new queries get an OVERLOADED error immediately.
  size_t queue_capacity = 1024;
  /// Per-query deadline in milliseconds (0 = none). Sessions may lower
  /// or raise their own via "SET timeout_ms=<n>".
  uint64_t query_timeout_ms = 30000;
  /// Frames larger than this are answered with an OVERSIZED error and
  /// the connection is closed (the remainder of the stream cannot be
  /// skipped cheaply).
  size_t max_frame_bytes = 1 << 20;
  /// Per-connection cap on buffered-but-unsent response bytes. While a
  /// connection's out-buffer holds at least this much, the server stops
  /// reading its requests and defers its delta pushes until the client
  /// drains — a pipelining client that never reads its socket cannot
  /// grow server memory without bound. The cap bounds accumulation, not
  /// a single frame: one response larger than it still buffers whole.
  size_t max_outbuf_bytes = 8 << 20;
  /// Per-subscription bound on deltas queued server-side for a slow
  /// subscriber before the backlog is coalesced into one resync snapshot
  /// (0 = the engine's EngineOptions::max_pending_deltas default).
  /// Sessions may override their own via "SET max_pending_deltas=<n>".
  size_t max_pending_deltas = 0;
  /// Starting BmoOptions for every session. Workers already provide the
  /// serving-side parallelism, so per-query kernels default to one
  /// thread; sessions opt into more via "SET threads=<n>".
  BmoOptions session_bmo = DefaultSessionBmo();
  /// Test hook: artificial per-query execution delay (milliseconds),
  /// applied in the worker before the engine call. Lets admission and
  /// timeout paths be exercised deterministically.
  uint64_t debug_execute_delay_ms = 0;
  /// Test hook: when nonempty, debug_execute_delay_ms applies only to
  /// queries whose SQL contains this substring — pins one pipelined
  /// request slow so out-of-order completion is deterministic.
  std::string debug_delay_substring;
  /// Test hook: minimum interval (milliseconds) between delta-drain
  /// passes for a connection — simulates a slow subscriber so the
  /// engine-side queue overflow / coalesced-resync path is exercised
  /// deterministically.
  uint64_t debug_push_delay_ms = 0;

  static BmoOptions DefaultSessionBmo() {
    BmoOptions bmo;
    bmo.num_threads = 1;
    bmo.parallel_threshold = SIZE_MAX;  // workers are the parallelism
    return bmo;
  }
};

/// Monotonic counters, readable while serving. Snapshot semantics.
struct ServerStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_rejected = 0;
  /// Queries answered with a result frame.
  uint64_t queries_ok = 0;
  /// Queries answered with a classified error frame (syntax etc.).
  uint64_t queries_error = 0;
  /// Queries rejected by admission control (bounded queue full).
  uint64_t queries_rejected_overload = 0;
  /// Queries answered TIMEOUT (queued past or running past deadline).
  uint64_t queries_timeout = 0;
  /// Malformed / unknown / oversized frames seen.
  uint64_t protocol_errors = 0;
  /// High-water mark of the admission queue.
  uint64_t peak_queue_depth = 0;
  /// Read passes suspended because a connection's out-buffer exceeded
  /// max_outbuf_bytes (reading resumes once the client drains it).
  uint64_t read_pauses = 0;
  /// Subscriptions accepted (kSubscribe answered with a handle).
  uint64_t subscriptions_opened = 0;
  /// kDelta frames pushed to clients (resyncs included).
  uint64_t deltas_pushed = 0;
};

/// A running server. Start() spawns the threads; Stop() (or destruction)
/// drains them. The Engine outlives the Server and may also be used
/// directly by the embedding process while serving.
class Server {
 public:
  Server(Engine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns accept/worker threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void Start();

  /// Graceful shutdown: stop accepting, complete and flush every
  /// admitted query, close all sessions, join all threads. Idempotent.
  void Stop();

  bool running() const;
  /// The bound TCP port (valid after Start()).
  uint16_t port() const;
  ServerStats stats() const;
  Engine& engine();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prefdb::server

#endif  // PREFDB_SERVER_SERVER_H_
