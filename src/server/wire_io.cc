#include "server/wire_io.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace prefdb::server {

bool ReadFully(int fd, void* buf, size_t len) {
  char* out = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t n = recv(fd, out, len, 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool WriteFully(int fd, const std::string& data) {
  const char* out = data.data();
  size_t len = data.size();
  while (len > 0) {
    ssize_t n = send(fd, out, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

ReadStatus ReadFrame(int fd, Frame* frame, size_t max_payload_bytes,
                     uint32_t* oversized_len) {
  unsigned char header[kFrameHeaderBytes];
  // Distinguish a clean close (EOF before any header byte) from a
  // truncated frame: peek at the first byte separately.
  ssize_t n;
  do {
    n = recv(fd, header, 1, 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return ReadStatus::kClosed;
  if (n < 0) return ReadStatus::kError;
  if (!ReadFully(fd, header + 1, kFrameHeaderBytes - 1)) {
    return ReadStatus::kError;
  }
  uint32_t len = DecodeFrameHeader(header, &frame->type);
  if (len > max_payload_bytes) {
    if (oversized_len != nullptr) *oversized_len = len;
    return ReadStatus::kOversized;
  }
  frame->payload.resize(len);
  if (len > 0 && !ReadFully(fd, frame->payload.data(), len)) {
    return ReadStatus::kError;
  }
  return ReadStatus::kOk;
}

bool WriteFrame(int fd, const Frame& frame) {
  return WriteFully(fd, EncodeFrame(frame));
}

bool WaitReadable(int fd, uint64_t timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    int n = poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (n > 0) return true;   // readable, EOF, or error — caller reads
    if (n == 0) return false;  // timeout
    if (errno != EINTR) return true;  // let the read surface the error
  }
}

int AcceptClient(int listen_fd) {
  int fd = accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) return fd;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return kAcceptRetry;
  }
  return kAcceptClosed;
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void FrameAssembler::Append(const char* data, size_t len) {
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, len);
}

FrameAssembler::Next FrameAssembler::TryNext(Frame* frame,
                                             uint32_t* oversized_len) {
  if (buf_.size() - pos_ < kFrameHeaderBytes) return Next::kNeedMore;
  unsigned char header[kFrameHeaderBytes];
  std::memcpy(header, buf_.data() + pos_, kFrameHeaderBytes);
  uint32_t len = DecodeFrameHeader(header, &frame->type);
  if (len > max_payload_bytes_) {
    // Consume the header (mirrors ReadFrame's "position is after the
    // header" contract); the stream is no longer framable.
    pos_ += kFrameHeaderBytes;
    if (oversized_len != nullptr) *oversized_len = len;
    return Next::kOversized;
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < len) return Next::kNeedMore;
  frame->payload.assign(buf_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Next::kFrame;
}

IoStatus ReadAvailable(int fd, FrameAssembler* assembler, size_t max_bytes,
                       size_t* bytes_read) {
  char chunk[65536];
  size_t total = 0;
  IoStatus status = IoStatus::kWouldBlock;
  while (total < max_bytes) {
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      assembler->Append(chunk, static_cast<size_t>(n));
      total += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      status = IoStatus::kClosed;
      break;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) status = IoStatus::kError;
    break;
  }
  if (bytes_read != nullptr) *bytes_read = total;
  return status;
}

IoStatus WriteSome(int fd, std::string* buf, size_t* offset) {
  while (*offset < buf->size()) {
    ssize_t n = send(fd, buf->data() + *offset, buf->size() - *offset,
                     MSG_NOSIGNAL);
    if (n > 0) {
      *offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoStatus::kWouldBlock;
    }
    return IoStatus::kError;
  }
  buf->clear();
  *offset = 0;
  return IoStatus::kOk;
}

int CreateWakeupFd() { return eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC); }

void SignalWakeup(int fd) {
  uint64_t one = 1;
  ssize_t n;
  do {
    n = write(fd, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
  // EAGAIN means the counter is already at max — the wakeup is pending
  // anyway, so dropping the increment is correct.
}

void DrainWakeup(int fd) {
  uint64_t value = 0;
  ssize_t n;
  do {
    n = read(fd, &value, sizeof(value));
  } while (n < 0 && errno == EINTR);
}

}  // namespace prefdb::server
