#include "server/wire_io.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

namespace prefdb::server {

bool ReadFully(int fd, void* buf, size_t len) {
  char* out = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t n = recv(fd, out, len, 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool WriteFully(int fd, const std::string& data) {
  const char* out = data.data();
  size_t len = data.size();
  while (len > 0) {
    ssize_t n = send(fd, out, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

ReadStatus ReadFrame(int fd, Frame* frame, size_t max_payload_bytes,
                     uint32_t* oversized_len) {
  unsigned char header[kFrameHeaderBytes];
  // Distinguish a clean close (EOF before any header byte) from a
  // truncated frame: peek at the first byte separately.
  ssize_t n;
  do {
    n = recv(fd, header, 1, 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return ReadStatus::kClosed;
  if (n < 0) return ReadStatus::kError;
  if (!ReadFully(fd, header + 1, kFrameHeaderBytes - 1)) {
    return ReadStatus::kError;
  }
  uint32_t len = DecodeFrameHeader(header, &frame->type);
  if (len > max_payload_bytes) {
    if (oversized_len != nullptr) *oversized_len = len;
    return ReadStatus::kOversized;
  }
  frame->payload.resize(len);
  if (len > 0 && !ReadFully(fd, frame->payload.data(), len)) {
    return ReadStatus::kError;
  }
  return ReadStatus::kOk;
}

bool WriteFrame(int fd, const Frame& frame) {
  return WriteFully(fd, EncodeFrame(frame));
}

bool WaitReadable(int fd, uint64_t timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    int n = poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (n > 0) return true;   // readable, EOF, or error — caller reads
    if (n == 0) return false;  // timeout
    if (errno != EINTR) return true;  // let the read surface the error
  }
}

int AcceptClient(int listen_fd) {
  int fd = accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) return fd;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return kAcceptRetry;
  }
  return kAcceptClosed;
}

}  // namespace prefdb::server
