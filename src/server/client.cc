#include "server/client.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "psql/error.h"
#include "server/wire_io.h"

namespace prefdb::server {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), pending_deltas_(std::move(other.pending_deltas_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    pending_deltas_ = std::move(other.pending_deltas_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw psql::ServerError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw psql::ServerError("invalid server address: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    Close();
    throw psql::ServerError(std::string("connect() failed: ") +
                             std::strerror(err));
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void Client::SendRawBytes(const std::string& bytes) {
  if (fd_ < 0) throw psql::ServerError("not connected");
  if (!WriteFully(fd_, bytes)) throw psql::ServerError("send failed");
}

Frame Client::ReadResponse() {
  if (fd_ < 0) throw psql::ServerError("not connected");
  Frame frame;
  // Responses are server-sized; accept anything the server can produce.
  ReadStatus status = ReadFrame(fd_, &frame, UINT32_MAX);
  if (status != ReadStatus::kOk) {
    Close();
    throw psql::ServerError("connection closed by server");
  }
  return frame;
}

ClientResponse Client::Request(const Frame& frame) {
  SendRawBytes(EncodeFrame(frame));
  Frame reply = ReadResponse();
  // Server-initiated pushes may interleave with the response we are
  // waiting for; stash them (arrival order) and keep reading.
  while (reply.type == FrameType::kDelta) {
    auto delta = ParseDelta(reply.payload);
    if (!delta) throw psql::ProtocolError("malformed delta frame");
    pending_deltas_.push_back(std::move(*delta));
    reply = ReadResponse();
  }
  ClientResponse response;
  switch (reply.type) {
    case FrameType::kResult: {
      auto parsed = ParseResult(reply.payload);
      if (!parsed) throw psql::ProtocolError("malformed result frame");
      response.ok = true;
      response.relation = std::move(parsed->relation);
      response.utilities = std::move(parsed->utilities);
      response.kernel = std::move(parsed->kernel);
      return response;
    }
    case FrameType::kOk:
      response.ok = true;
      response.info = std::move(reply.payload);
      return response;
    case FrameType::kHandle: {
      errno = 0;
      char* end = nullptr;
      unsigned long long id = std::strtoull(reply.payload.c_str(), &end, 10);
      if (errno != 0 || end == reply.payload.c_str() || *end != '\0') {
        throw psql::ProtocolError("malformed handle frame");
      }
      response.ok = true;
      response.handle = id;
      return response;
    }
    case FrameType::kError:
      response.ok = false;
      response.error = psql::DeserializeError(reply.payload);
      return response;
    default:
      throw psql::ProtocolError("unexpected response frame type");
  }
}

ClientResponse Client::RoundTrip(const Frame& frame) {
  return Request(frame);
}

ClientResponse Client::Query(const std::string& sql) {
  return Request(Frame{FrameType::kQuery, sql});
}

ClientResponse Client::Prepare(const std::string& sql) {
  return Request(Frame{FrameType::kPrepare, sql});
}

ClientResponse Client::Run(uint64_t handle) {
  return Request(Frame{FrameType::kRun, std::to_string(handle)});
}

ClientResponse Client::Set(const std::string& name, const std::string& value) {
  return Request(Frame{FrameType::kSet, name + "=" + value});
}

ClientResponse Client::Insert(const std::string& table, const Tuple& row) {
  std::string payload = table + "\n";
  EncodeRow(row, &payload);
  return Request(Frame{FrameType::kInsert, std::move(payload)});
}

ClientResponse Client::Subscribe(const std::string& sql) {
  return Request(Frame{FrameType::kSubscribe, sql});
}

std::optional<WireDelta> Client::ReadDelta(uint64_t timeout_ms) {
  if (!pending_deltas_.empty()) {
    WireDelta delta = std::move(pending_deltas_.front());
    pending_deltas_.pop_front();
    return delta;
  }
  if (fd_ < 0) throw psql::ServerError("not connected");
  if (!WaitReadable(fd_, timeout_ms)) return std::nullopt;
  Frame frame = ReadResponse();
  if (frame.type != FrameType::kDelta) {
    // Nothing is in flight when ReadDelta touches the socket, so any
    // non-push frame here is a protocol violation.
    throw psql::ProtocolError("expected a delta frame");
  }
  auto delta = ParseDelta(frame.payload);
  if (!delta) throw psql::ProtocolError("malformed delta frame");
  return delta;
}

ClientResponse Client::Ping() {
  return Request(Frame{FrameType::kPing, ""});
}

ClientResponse Client::Goodbye() {
  ClientResponse response = Request(Frame{FrameType::kGoodbye, ""});
  Close();
  return response;
}

}  // namespace prefdb::server
