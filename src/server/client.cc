#include "server/client.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "psql/error.h"
#include "server/wire_io.h"

namespace prefdb::server {

/// One outstanding request's landing area, shared between the Client's
/// routing table and every copy of the request's ResponseFuture.
struct Client::ResponseFuture::Slot {
  bool done = false;
  ClientResponse response;
};

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      version_(other.version_),
      next_request_id_(other.next_request_id_),
      outstanding_(std::move(other.outstanding_)),
      pending_deltas_(std::move(other.pending_deltas_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    version_ = other.version_;
    next_request_id_ = other.next_request_id_;
    outstanding_ = std::move(other.outstanding_);
    pending_deltas_ = std::move(other.pending_deltas_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Connect(const std::string& host, uint16_t port,
                     ConnectOptions options) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw psql::ServerError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw psql::ServerError("invalid server address: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    Close();
    throw psql::ServerError(std::string("connect() failed: ") +
                             std::strerror(err));
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  version_ = kProtocolV1;
  next_request_id_ = 1;
  if (options.protocol_version >= kProtocolV2) {
    // Handshake: offer our version, adopt the server's pick. Both hello
    // frames are untagged by definition.
    SendRawBytes(EncodeFrame(
        Frame{FrameType::kHello, EncodeHello(options.protocol_version)}));
    Frame reply;
    if (ReadFrame(fd_, &reply, UINT32_MAX) != ReadStatus::kOk) {
      Close();
      throw psql::ServerError("connection closed during version handshake");
    }
    if (reply.type == FrameType::kError) {
      // A pre-v2 server answers the unknown 'V' frame with an error and
      // keeps serving: fall back to plain v1 so default-config clients
      // survive a rolling upgrade against old servers.
      return;
    }
    if (reply.type != FrameType::kHello) {
      Close();
      throw psql::ProtocolError("expected a hello response");
    }
    std::optional<uint32_t> negotiated = ParseHello(reply.payload);
    if (!negotiated || *negotiated > options.protocol_version) {
      Close();
      throw psql::ProtocolError("malformed hello response");
    }
    version_ = *negotiated;
  }
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  outstanding_.clear();
  version_ = kProtocolV1;
}

void Client::SendRawBytes(const std::string& bytes) {
  if (fd_ < 0) throw psql::ServerError("not connected");
  if (!WriteFully(fd_, bytes)) throw psql::ServerError("send failed");
}

Frame Client::ReadResponse() {
  if (fd_ < 0) throw psql::ServerError("not connected");
  Frame frame;
  // Responses are server-sized; accept anything the server can produce.
  ReadStatus status = ReadFrame(fd_, &frame, UINT32_MAX);
  if (status != ReadStatus::kOk) {
    Close();
    throw psql::ServerError("connection closed by server");
  }
  if (version_ >= kProtocolV2 && frame.type != FrameType::kHello) {
    uint64_t request_id = 0;
    if (!DecodeTaggedPayload(&frame, &request_id)) {
      throw psql::ProtocolError("v2 response shorter than its request id");
    }
  }
  return frame;
}

Client::ResponseFuture Client::Send(const Frame& frame) {
  if (fd_ < 0) throw psql::ServerError("not connected");
  if (version_ < kProtocolV2 && !outstanding_.empty()) {
    // v1 has no request ids: responses are only attributable when at
    // most one request is in flight.
    throw psql::ProtocolError(
        "protocol v1 allows a single in-flight request");
  }
  uint64_t request_id = next_request_id_++;
  std::string wire = version_ >= kProtocolV2
                         ? EncodeTaggedFrame(request_id, frame)
                         : EncodeFrame(frame);
  auto slot = std::make_shared<ResponseFuture::Slot>();
  outstanding_.emplace(request_id, slot);
  try {
    SendRawBytes(wire);
  } catch (...) {
    outstanding_.erase(request_id);
    throw;
  }
  return ResponseFuture(this, request_id, std::move(slot));
}

uint64_t Client::PumpOne() {
  if (fd_ < 0) throw psql::ServerError("not connected");
  Frame frame;
  ReadStatus status = ReadFrame(fd_, &frame, UINT32_MAX);
  if (status != ReadStatus::kOk) {
    Close();
    throw psql::ServerError("connection closed by server");
  }
  uint64_t request_id = 0;
  if (version_ >= kProtocolV2 &&
      !DecodeTaggedPayload(&frame, &request_id)) {
    throw psql::ProtocolError("v2 response shorter than its request id");
  }
  if (frame.type == FrameType::kDelta) {
    // Pushes are tagged with their kSubscribe's id, which is not an
    // outstanding request; the payload's subscription id is the
    // client-side correlation key.
    auto delta = ParseDelta(frame.payload);
    if (!delta) throw psql::ProtocolError("malformed delta frame");
    pending_deltas_.push_back(std::move(*delta));
    return request_id;
  }
  auto it = version_ >= kProtocolV2 ? outstanding_.find(request_id)
                                    : outstanding_.begin();
  if (it == outstanding_.end()) {
    throw psql::ProtocolError("response for an unknown request id");
  }
  request_id = it->first;
  std::shared_ptr<ResponseFuture::Slot> slot = it->second;
  outstanding_.erase(it);
  slot->response = ParseResponse(std::move(frame));
  slot->done = true;
  return request_id;
}

ClientResponse Client::ResponseFuture::Get() {
  if (slot_ == nullptr) {
    throw psql::ServerError("Get() on a default-constructed future");
  }
  while (!slot_->done) client_->PumpOne();
  return slot_->response;
}

bool Client::ResponseFuture::ready() const {
  return slot_ != nullptr && slot_->done;
}

ClientResponse Client::ParseResponse(Frame reply) {
  ClientResponse response;
  switch (reply.type) {
    case FrameType::kResult: {
      auto parsed = ParseResult(reply.payload);
      if (!parsed) throw psql::ProtocolError("malformed result frame");
      response.ok = true;
      response.relation = std::move(parsed->relation);
      response.utilities = std::move(parsed->utilities);
      response.kernel = std::move(parsed->kernel);
      return response;
    }
    case FrameType::kOk:
      response.ok = true;
      response.info = std::move(reply.payload);
      return response;
    case FrameType::kHandle: {
      errno = 0;
      char* end = nullptr;
      unsigned long long id = std::strtoull(reply.payload.c_str(), &end, 10);
      if (errno != 0 || end == reply.payload.c_str() || *end != '\0') {
        throw psql::ProtocolError("malformed handle frame");
      }
      response.ok = true;
      response.handle = id;
      return response;
    }
    case FrameType::kError:
      response.ok = false;
      response.error = psql::DeserializeError(reply.payload);
      return response;
    default:
      throw psql::ProtocolError("unexpected response frame type");
  }
}

Client::ResponseFuture Client::SendQuery(const std::string& sql) {
  return Send(Frame{FrameType::kQuery, sql});
}

Client::ResponseFuture Client::SendPrepare(const std::string& sql) {
  return Send(Frame{FrameType::kPrepare, sql});
}

Client::ResponseFuture Client::SendRun(uint64_t handle) {
  return Send(Frame{FrameType::kRun, std::to_string(handle)});
}

Client::ResponseFuture Client::SendSet(const std::string& name,
                                       const std::string& value) {
  return Send(Frame{FrameType::kSet, name + "=" + value});
}

Client::ResponseFuture Client::SendInsert(const std::string& table,
                                          const Tuple& row) {
  std::string payload = table + "\n";
  EncodeRow(row, &payload);
  return Send(Frame{FrameType::kInsert, std::move(payload)});
}

Client::ResponseFuture Client::SendSubscribe(const std::string& sql) {
  return Send(Frame{FrameType::kSubscribe, sql});
}

Client::ResponseFuture Client::SendPing() {
  return Send(Frame{FrameType::kPing, ""});
}

void Client::Configure(const SessionOptions& options) {
  for (const auto& [name, value] : options.Serialize()) {
    ClientResponse response = Set(name, value);
    if (!response.ok) {
      throw psql::ServerError("SET " + name + "=" + value +
                               " rejected: " + response.error.message);
    }
  }
}

std::optional<WireDelta> Client::ReadDelta(uint64_t timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!pending_deltas_.empty()) {
      WireDelta delta = std::move(pending_deltas_.front());
      pending_deltas_.pop_front();
      return delta;
    }
    if (fd_ < 0) throw psql::ServerError("not connected");
    auto now = std::chrono::steady_clock::now();
    int64_t remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    if (remaining < 0) remaining = 0;
    if (!WaitReadable(fd_, static_cast<uint64_t>(remaining))) {
      return std::nullopt;
    }
    // May resolve an outstanding future instead of yielding a delta —
    // loop until a push lands or the deadline passes.
    if (outstanding_.empty() && pending_deltas_.empty()) {
      // Nothing pipelined is in flight: the next frame must be a push.
      Frame frame = ReadResponse();
      if (frame.type != FrameType::kDelta) {
        throw psql::ProtocolError("expected a delta frame");
      }
      auto delta = ParseDelta(frame.payload);
      if (!delta) throw psql::ProtocolError("malformed delta frame");
      return delta;
    }
    PumpOne();
  }
}

ClientResponse Client::Goodbye() {
  ClientResponse response = Send(Frame{FrameType::kGoodbye, ""}).Get();
  Close();
  return response;
}

ClientResponse Client::RoundTrip(const Frame& frame) {
  return Send(frame).Get();
}

}  // namespace prefdb::server
