// A named-relation catalog: the "database" Preference SQL statements run
// against.

#ifndef PREFDB_PSQL_CATALOG_H_
#define PREFDB_PSQL_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "relation/relation.h"

namespace prefdb::psql {

class Catalog {
 public:
  /// Registers (or replaces) a relation under a case-sensitive name.
  void Register(const std::string& name, Relation relation);

  bool Has(const std::string& name) const;

  /// Looks up a relation; throws std::out_of_range with the list of known
  /// tables when the name is unknown.
  const Relation& Get(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, Relation> tables_;
};

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_CATALOG_H_
