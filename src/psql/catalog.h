// A named-relation catalog: the "database" Preference SQL statements run
// against.
//
// Relations are stored behind shared_ptr<const Relation> (copy-on-write):
// Register() swaps in a fresh immutable snapshot and bumps the table's
// version counter, so readers holding a snapshot are never invalidated
// mid-read and cache layers (engine/engine.h) can key compiled state by
// (table, version).

#ifndef PREFDB_PSQL_CATALOG_H_
#define PREFDB_PSQL_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/relation.h"

namespace prefdb::psql {

class Catalog {
 public:
  /// Registers (or replaces) a relation under a case-sensitive name and
  /// bumps the table's version.
  void Register(const std::string& name, Relation relation);

  bool Has(const std::string& name) const;

  /// Looks a relation up; throws std::out_of_range with the list of known
  /// tables when the name is unknown.
  const Relation& Get(const std::string& name) const;

  /// The current immutable snapshot of a table; throws std::out_of_range
  /// like Get(). The snapshot stays valid (and unchanged) across later
  /// Register() calls on the same name.
  std::shared_ptr<const Relation> GetShared(const std::string& name) const;

  /// Monotonically increasing per-table version, bumped by every
  /// Register() of that name. 0 means "no such table".
  uint64_t Version(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  struct Entry {
    std::shared_ptr<const Relation> relation;
    uint64_t version = 0;
  };
  std::unordered_map<std::string, Entry> tables_;
};

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_CATALOG_H_
