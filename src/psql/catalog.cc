#include "psql/catalog.h"

#include <algorithm>
#include <stdexcept>

#include "psql/error.h"

namespace prefdb::psql {

void Catalog::Register(const std::string& name, Relation relation) {
  Entry& entry = tables_[name];
  entry.relation = std::make_shared<const Relation>(std::move(relation));
  ++entry.version;
}

bool Catalog::Has(const std::string& name) const {
  return tables_.count(name) > 0;
}

const Relation& Catalog::Get(const std::string& name) const {
  return *GetShared(name);
}

std::shared_ptr<const Relation> Catalog::GetShared(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    std::string known;
    for (const auto& n : TableNames()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw NotFoundError("unknown table '" + name + "' (known: " + known +
                            ")");
  }
  return it->second.relation;
}

uint64_t Catalog::Version(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? 0 : it->second.version;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace prefdb::psql
