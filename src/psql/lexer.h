// Lexer for Preference SQL (Kießling §6.1 / [KiK01] syntax).

#ifndef PREFDB_PSQL_LEXER_H_
#define PREFDB_PSQL_LEXER_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "psql/token.h"

namespace prefdb::psql {

/// Raised by the lexer and parser on malformed queries; carries the byte
/// offset of the offending position.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, size_t position)
      : std::runtime_error(message + " (at offset " +
                           std::to_string(position) + ")"),
        position_(position) {}
  size_t position() const { return position_; }

 private:
  size_t position_;
};

/// Tokenizes a Preference SQL text. The trailing token is always kEnd.
std::vector<Token> Tokenize(const std::string& input);

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_LEXER_H_
