// Lexer for Preference SQL (Kießling §6.1 / [KiK01] syntax).

#ifndef PREFDB_PSQL_LEXER_H_
#define PREFDB_PSQL_LEXER_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "psql/token.h"

namespace prefdb::psql {

/// Raised by the lexer and parser on malformed queries; carries the byte
/// offset of the offending position.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, size_t position)
      : std::runtime_error(message + " (at offset " +
                           std::to_string(position) + ")"),
        position_(position) {}
  size_t position() const { return position_; }

 private:
  size_t position_;
};

/// Tokenizes a Preference SQL text. The trailing token is always kEnd.
std::vector<Token> Tokenize(const std::string& input);

/// 1-based line/column of a byte offset in `sql` (columns count bytes).
struct SourcePosition {
  size_t line = 1;
  size_t column = 1;
};
SourcePosition LocateOffset(const std::string& sql, size_t offset);

/// Renders a syntax error with its source context: the message, the
/// 1-based line/column, the offending source line, and a caret marking the
/// column. For REPLs and batch drivers reporting errors to humans.
///
///   error: expected FROM, got 'PREFERRING' (line 1, column 15)
///     SELECT * car PREFERRING LOWEST(price)
///                  ^
std::string FormatSyntaxError(const std::string& sql, const SyntaxError& err);

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_LEXER_H_
