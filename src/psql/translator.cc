#include "psql/translator.h"

#include <stdexcept>

#include "psql/error.h"

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "eval/quality.h"

namespace prefdb::psql {

namespace {

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

// A layered preference over arbitrary condition atoms: the value's level is
// the first layer whose condition it satisfies (1-based); values matching
// no layer sit one level below. Generalizes POS/POS and POS/NEG to
// negated conditions, which Preference SQL's ELSE chains need (e.g.
// "category = 'roadster' ELSE category <> 'passenger'").
class CondLayeredPreference : public BasePreference {
 public:
  CondLayeredPreference(std::string attribute, std::vector<Condition> layers)
      : BasePreference(PreferenceKind::kLayered, std::move(attribute)),
        layers_(std::move(layers)) {
    if (layers_.empty()) {
      throw BadArgumentError("ELSE chain needs at least one condition");
    }
  }

  size_t LevelOf(const Value& v) const {
    for (size_t i = 0; i < layers_.size(); ++i) {
      if (Matches(layers_[i], v)) return i + 1;
    }
    return layers_.size() + 1;
  }

  std::optional<size_t> IntrinsicLevelOf(const Value& v) const override {
    return LevelOf(v);
  }

  bool LessValue(const Value& x, const Value& y) const override {
    return LevelOf(x) > LevelOf(y);
  }

  std::string ToString() const override {
    std::string out = "LAYERED(" + attribute() + ", [";
    for (size_t i = 0; i < layers_.size(); ++i) {
      if (i > 0) out += ", ";
      out += layers_[i].ToString();
    }
    return out + ", OTHERS])";
  }

 protected:
  bool ParamsEqual(const Preference& other) const override {
    // Structural equality via rendered conditions (conditions are plain
    // data, rendering is canonical per construction).
    return ToString() == other.ToString();
  }

 private:
  static bool Matches(const Condition& cond, const Value& v) {
    switch (cond.kind) {
      case Condition::Kind::kCompare:
        return EvalCompare(v, cond.op, cond.value);
      case Condition::Kind::kInList: {
        bool found = false;
        for (const Value& candidate : cond.list) {
          if (v == candidate) {
            found = true;
            break;
          }
        }
        return cond.negated ? !found : found;
      }
      default:
        return false;  // AND/OR/NOT not allowed in ELSE atoms by the parser
    }
  }

  std::vector<Condition> layers_;
};

// Single condition atom -> the natural paper constructor.
PrefPtr TranslateCondAtom(const Condition& cond) {
  if (cond.kind == Condition::Kind::kInList) {
    if (cond.negated) return Neg(cond.attribute, cond.list);
    return Pos(cond.attribute, cond.list);
  }
  // kCompare with = or <> (parser guarantees).
  if (cond.op == CompareOp::kEq) return Pos(cond.attribute, {cond.value});
  return Neg(cond.attribute, {cond.value});
}

}  // namespace

PrefPtr TranslatePreference(const PrefExpr& expr) {
  switch (expr.kind) {
    case PrefExpr::Kind::kLowest:
      return Lowest(expr.attribute);
    case PrefExpr::Kind::kHighest:
      return Highest(expr.attribute);
    case PrefExpr::Kind::kAround:
      return Around(expr.attribute, expr.low);
    case PrefExpr::Kind::kBetween:
      return Between(expr.attribute, expr.low, expr.high);
    case PrefExpr::Kind::kCondLayers: {
      if (expr.layers.size() == 1) return TranslateCondAtom(expr.layers[0]);
      // All layers must constrain the same attribute for a value-wise
      // preference; Preference SQL's ELSE is defined per attribute.
      const std::string& attr = expr.layers[0].attribute;
      for (const Condition& c : expr.layers) {
        if (c.attribute != attr) {
          throw BadArgumentError(
              "ELSE chain must stay on one attribute; got '" + attr +
              "' and '" + c.attribute + "'");
        }
      }
      return std::make_shared<CondLayeredPreference>(attr, expr.layers);
    }
    case PrefExpr::Kind::kPareto:
      return Pareto(TranslatePreference(*expr.children[0]),
                    TranslatePreference(*expr.children[1]));
    case PrefExpr::Kind::kPrior:
      return Prioritized(TranslatePreference(*expr.children[0]),
                         TranslatePreference(*expr.children[1]));
  }
  throw BadArgumentError("unknown preference expression");
}

PrefPtr TranslatePreferenceChain(const std::vector<PrefExprPtr>& chain) {
  PrefPtr acc;
  for (const auto& expr : chain) {
    PrefPtr p = TranslatePreference(*expr);
    acc = acc ? Prioritized(acc, p) : p;
  }
  return acc;
}

std::function<bool(const Tuple&)> CompileCondition(const Condition& cond,
                                                   const Schema& schema) {
  switch (cond.kind) {
    case Condition::Kind::kCompare: {
      auto idx = schema.IndexOf(cond.attribute);
      if (!idx) {
        throw NotFoundError("unknown attribute '" + cond.attribute + "'");
      }
      size_t col = *idx;
      CompareOp op = cond.op;
      Value rhs = cond.value;
      return [col, op, rhs](const Tuple& t) {
        return EvalCompare(t[col], op, rhs);
      };
    }
    case Condition::Kind::kInList: {
      auto idx = schema.IndexOf(cond.attribute);
      if (!idx) {
        throw NotFoundError("unknown attribute '" + cond.attribute + "'");
      }
      size_t col = *idx;
      auto set = std::make_shared<ValueSet>();
      for (const Value& v : cond.list) set->insert(v);
      bool negated = cond.negated;
      return [col, set, negated](const Tuple& t) {
        bool found = set->count(t[col]) > 0;
        return negated ? !found : found;
      };
    }
    case Condition::Kind::kAnd: {
      auto l = CompileCondition(*cond.children[0], schema);
      auto r = CompileCondition(*cond.children[1], schema);
      return [l, r](const Tuple& t) { return l(t) && r(t); };
    }
    case Condition::Kind::kOr: {
      auto l = CompileCondition(*cond.children[0], schema);
      auto r = CompileCondition(*cond.children[1], schema);
      return [l, r](const Tuple& t) { return l(t) || r(t); };
    }
    case Condition::Kind::kNot: {
      auto inner = CompileCondition(*cond.children[0], schema);
      return [inner](const Tuple& t) { return !inner(t); };
    }
  }
  throw BadArgumentError("unknown condition kind");
}

std::function<bool(const Tuple&)> CompileQualityCondition(
    const QualityCondition& cond, const PrefPtr& preference,
    const Schema& schema) {
  switch (cond.kind) {
    case QualityCondition::Kind::kAnd: {
      auto l = CompileQualityCondition(*cond.children[0], preference, schema);
      auto r = CompileQualityCondition(*cond.children[1], preference, schema);
      return [l, r](const Tuple& t) { return l(t) && r(t); };
    }
    case QualityCondition::Kind::kOr: {
      auto l = CompileQualityCondition(*cond.children[0], preference, schema);
      auto r = CompileQualityCondition(*cond.children[1], preference, schema);
      return [l, r](const Tuple& t) { return l(t) || r(t); };
    }
    case QualityCondition::Kind::kLevel:
    case QualityCondition::Kind::kDistance: {
      if (!preference) {
        throw BadArgumentError(
            "BUT ONLY requires a PREFERRING clause to resolve " +
            cond.ToString());
      }
      PrefPtr base = FindBasePreference(preference, cond.attribute);
      if (!base) {
        throw BadArgumentError(
            "no base preference on attribute '" + cond.attribute +
            "' to resolve " + cond.ToString());
      }
      auto idx = schema.IndexOf(cond.attribute);
      if (!idx) {
        throw NotFoundError("unknown attribute '" + cond.attribute + "'");
      }
      size_t col = *idx;
      CompareOp op = cond.op;
      double threshold = cond.threshold;
      bool is_level = cond.kind == QualityCondition::Kind::kLevel;
      return [base, col, op, threshold, is_level](const Tuple& t) {
        double q = is_level
                       ? static_cast<double>(IntrinsicLevel(*base, t[col]))
                       : QualityDistance(*base, t[col]);
        return EvalCompare(Value(q), op, Value(threshold));
      };
    }
  }
  throw BadArgumentError("unknown quality condition kind");
}

}  // namespace prefdb::psql
