#include "psql/executor.h"

#include "eval/optimizer.h"
#include "psql/translator.h"

namespace prefdb::psql {

QueryResult Execute(const SelectStatement& stmt, const Catalog& catalog,
                    const BmoOptions& options) {
  const Relation& table = catalog.Get(stmt.table);
  QueryResult result;
  std::string plan = "scan(" + stmt.table + ")";

  // Hard selection (exact-match world).
  Relation current = table;
  if (stmt.where) {
    current = current.Filter(CompileCondition(*stmt.where, table.schema()));
    plan += " -> where[" + stmt.where->ToString() + "]";
  }

  // Soft selection (BMO world).
  PrefPtr preference = TranslatePreferenceChain(stmt.preferring);
  if (preference && !stmt.grouping.empty()) {
    // Def. 16: sigma[P groupby A](R) == sigma[A<-> & P](R).
    result.preference_term = preference->ToString();
    if (stmt.explain || options.algorithm == BmoAlgorithm::kAuto) {
      // Same optimizer routing as the ungrouped branch: rewrites preserve
      // the per-group answer (Prop 7 applies within every group), and
      // EXPLAIN must report a plan instead of empty details. The chosen
      // algorithm runs per group and degrades gracefully on small groups.
      OptimizedQuery optimized = Optimize(current, preference, options);
      if (stmt.explain) result.plan_details = optimized.Explain();
      BmoOptions exec_options = options;
      exec_options.algorithm = optimized.choice.algorithm;
      current =
          BmoGroupBy(current, optimized.simplified, stmt.grouping, exec_options);
      plan += " -> bmo_groupby[" + optimized.simplified->ToString() + ", " +
              BmoAlgorithmName(optimized.choice.algorithm) + "]";
    } else {
      current = BmoGroupBy(current, preference, stmt.grouping, options);
      plan += " -> bmo_groupby[" + result.preference_term + ", " +
              BmoAlgorithmName(options.algorithm) + "]";
    }
  } else if (preference) {
    result.preference_term = preference->ToString();
    if (stmt.explain || options.algorithm == BmoAlgorithm::kAuto) {
      // Route through the optimizer: algebraic rewrites (Prop 7 preserves
      // the answer) + cost-based algorithm choice.
      OptimizedQuery optimized = Optimize(current, preference, options);
      if (stmt.explain) result.plan_details = optimized.Explain();
      BmoOptions exec_options = options;
      exec_options.algorithm = optimized.choice.algorithm;
      current = Bmo(current, optimized.simplified, exec_options);
      plan += " -> bmo[" + optimized.simplified->ToString() + ", " +
              BmoAlgorithmName(optimized.choice.algorithm) + "]";
    } else {
      current = Bmo(current, preference, options);
      plan += " -> bmo[" + result.preference_term + ", " +
              BmoAlgorithmName(options.algorithm) + "]";
    }
  }

  // Quality supervision.
  if (stmt.but_only) {
    current = current.Filter(CompileQualityCondition(
        *stmt.but_only, preference, current.schema()));
    plan += " -> but_only[" + stmt.but_only->ToString() + "]";
  }

  // Projection.
  if (!stmt.select_list.empty()) {
    current = current.Project(stmt.select_list);
    plan += " -> project";
  }

  // LIMIT.
  if (stmt.limit > 0 && current.size() > stmt.limit) {
    std::vector<size_t> head(stmt.limit);
    for (size_t i = 0; i < stmt.limit; ++i) head[i] = i;
    current = current.SelectRows(head);
    plan += " -> limit " + std::to_string(stmt.limit);
  }

  result.relation = std::move(current);
  result.plan = std::move(plan);
  return result;
}

QueryResult ExecuteQuery(const std::string& sql, const Catalog& catalog,
                         const BmoOptions& options) {
  return Execute(Parse(sql), catalog, options);
}

}  // namespace prefdb::psql
