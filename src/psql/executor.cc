#include "psql/executor.h"

#include <cstdio>

namespace prefdb::psql {

std::string QueryStats::ToString() const {
  auto ms = [](uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
    return std::string(buf);
  };
  std::string out = "parse=" + ms(parse_ns) + "ms translate=" +
                    ms(translate_ns) + "ms optimize=" + ms(optimize_ns) +
                    "ms compile=" + ms(compile_ns) + "ms execute=" +
                    ms(execute_ns) + "ms total=" + ms(total_ns) + "ms";
  out += std::string(" plan_cache=") + (plan_cache_hit ? "hit" : "miss");
  out += std::string(" exec_cache=") + (exec_cache_hit ? "hit" : "miss");
  if (estimated_cost_ns > 0.0) {
    out += " est=" + ms(static_cast<uint64_t>(estimated_cost_ns)) + "ms";
  }
  if (plan_cache_evictions > 0 || exec_cache_evictions > 0) {
    out += " evictions=" + std::to_string(plan_cache_evictions) + "/" +
           std::to_string(exec_cache_evictions);
  }
  if (!kernel.empty()) out += " kernel=" + kernel;
  return out;
}

}  // namespace prefdb::psql
