#include "psql/lexer.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace prefdb::psql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = std::toupper(static_cast<unsigned char>(c));
  return out;
}

}  // namespace

SourcePosition LocateOffset(const std::string& sql, size_t offset) {
  SourcePosition pos;
  offset = std::min(offset, sql.size());
  for (size_t i = 0; i < offset; ++i) {
    if (sql[i] == '\n') {
      ++pos.line;
      pos.column = 1;
    } else {
      ++pos.column;
    }
  }
  return pos;
}

std::string FormatSyntaxError(const std::string& sql, const SyntaxError& err) {
  const size_t offset = std::min(err.position(), sql.size());
  SourcePosition pos = LocateOffset(sql, offset);
  // The raw what() already carries "(at offset N)"; strip that suffix in
  // favor of the line/column rendering.
  std::string message = err.what();
  size_t suffix = message.rfind(" (at offset ");
  if (suffix != std::string::npos) message.resize(suffix);
  size_t line_begin = 0;
  if (offset > 0) {
    size_t nl = sql.rfind('\n', offset - 1);
    if (nl != std::string::npos) line_begin = nl + 1;
  }
  size_t line_end = sql.find('\n', offset);
  if (line_end == std::string::npos) line_end = sql.size();
  std::string out = "error: " + message + " (line " +
                    std::to_string(pos.line) + ", column " +
                    std::to_string(pos.column) + ")\n";
  out += "  " + sql.substr(line_begin, line_end - line_begin) + "\n";
  out += "  " + std::string(offset - line_begin, ' ') + "^";
  return out;
}

std::vector<Token> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // SQL line comment.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string text = input.substr(start, i - start);
      tokens.push_back(
          {TokenType::kIdentifier, text, Upper(text), 0, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      std::string text = input.substr(start, i - start);
      char* end = nullptr;
      double value = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        throw SyntaxError("malformed number '" + text + "'", start);
      }
      tokens.push_back({TokenType::kNumber, text, text, value, start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) throw SyntaxError("unterminated string literal", start);
      tokens.push_back({TokenType::kString, text, text, 0, start});
      continue;
    }
    // Multi-char operators first.
    auto two = input.substr(i, 2);
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
      tokens.push_back({TokenType::kSymbol, two, two, 0, start});
      i += 2;
      continue;
    }
    if (std::string("()*,;=<>+-").find(c) != std::string::npos) {
      std::string text(1, c);
      tokens.push_back({TokenType::kSymbol, text, text, 0, start});
      ++i;
      continue;
    }
    throw SyntaxError(std::string("unexpected character '") + c + "'", start);
  }
  tokens.push_back({TokenType::kEnd, "", "", 0, n});
  return tokens;
}

}  // namespace prefdb::psql
