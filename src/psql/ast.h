// AST of Preference SQL statements: SELECT ... FROM ... [WHERE hard]
// [PREFERRING soft [CASCADE soft]*] [BUT ONLY quality] [LIMIT n].
//
// WHERE expresses the hard constraints of the exact-match world; PREFERRING
// the soft constraints evaluated under the BMO model (Kießling §6.1).

#ifndef PREFDB_PSQL_AST_H_
#define PREFDB_PSQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "relation/value.h"

namespace prefdb::psql {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpText(CompareOp op);

/// Hard-constraint condition tree (WHERE clause).
struct Condition {
  enum class Kind { kCompare, kInList, kAnd, kOr, kNot };
  Kind kind;
  // kCompare / kInList:
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  Value value;
  std::vector<Value> list;
  bool negated = false;  // NOT IN
  // kAnd / kOr / kNot:
  std::vector<std::shared_ptr<Condition>> children;

  std::string ToString() const;
};
using ConditionPtr = std::shared_ptr<Condition>;

/// Soft-constraint preference expression (PREFERRING clause).
///   AND       -> Pareto accumulation (kPareto)
///   PRIOR TO  -> prioritized accumulation (kPrior)
///   ELSE      -> layered alternatives (kCondLayers)
struct PrefExpr {
  enum class Kind {
    kLowest,      // LOWEST(attr)
    kHighest,     // HIGHEST(attr)
    kAround,      // attr AROUND v
    kBetween,     // attr BETWEEN lo AND hi
    kCondLayers,  // cond (ELSE cond)* — single condition = POS/NEG/IN atom
    kPareto,      // children joined by AND
    kPrior,       // children joined by PRIOR TO
  };
  Kind kind;
  std::string attribute;  // for the base kinds
  double low = 0;         // AROUND target / BETWEEN low
  double high = 0;        // BETWEEN high
  std::vector<Condition> layers;  // kCondLayers: one condition per layer
  std::vector<std::shared_ptr<PrefExpr>> children;

  std::string ToString() const;
};
using PrefExprPtr = std::shared_ptr<PrefExpr>;

/// BUT ONLY quality condition over LEVEL(attr) / DISTANCE(attr) (§6.1).
struct QualityCondition {
  enum class Kind { kLevel, kDistance, kAnd, kOr };
  Kind kind;
  std::string attribute;
  CompareOp op = CompareOp::kLe;
  double threshold = 0;
  std::vector<std::shared_ptr<QualityCondition>> children;

  std::string ToString() const;
};
using QualityConditionPtr = std::shared_ptr<QualityCondition>;

/// A full SELECT statement.
struct SelectStatement {
  /// `DELETE FROM <table> [WHERE cond]`: a mutation statement sharing this
  /// AST (only `table` and `where` are meaningful). The engine routes it to
  /// Engine::Delete instead of the query pipeline.
  bool is_delete = false;
  /// EXPLAIN prefix: report the optimizer's plan alongside the result.
  bool explain = false;
  /// Ranked (k-best) output model of §6.2: `SELECT TOP k ...` / `SELECT
  /// RANKED ...` replaces BMO with descending-utility ranking (ties broken
  /// by input order). Requires a PREFERRING clause with a single derivable
  /// utility.
  bool ranked = false;
  /// TOP k count; 0 with ranked=true means "rank everything".
  size_t top_k = 0;
  std::vector<std::string> select_list;  // empty means '*'
  std::string table;
  ConditionPtr where;                   // may be null
  std::vector<PrefExprPtr> preferring;  // PREFERRING + CASCADE chain
  /// GROUPING attrs (Def. 16): evaluate the preference per group of
  /// equal values of these attributes.
  std::vector<std::string> grouping;
  QualityConditionPtr but_only;         // may be null
  size_t limit = 0;                     // 0 means no LIMIT

  std::string ToString() const;
};

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_AST_H_
