#include "psql/parser.h"

#include <cmath>

#include "relation/date.h"

namespace prefdb::psql {

namespace {

std::string NumText(double d) {
  if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
    return std::to_string(static_cast<int64_t>(d));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}

class Parser {
 public:
  explicit Parser(const std::string& sql) : tokens_(Tokenize(sql)) {}

  SelectStatement ParseStatement() {
    SelectStatement stmt;
    if (AcceptKeyword("DELETE")) {
      // DELETE FROM <table> [WHERE cond]: reuses the statement AST; every
      // other clause stays at its default and the engine routes on
      // is_delete before the query pipeline.
      stmt.is_delete = true;
      ExpectKeyword("FROM");
      stmt.table = ExpectIdentifier("table name");
      if (AcceptKeyword("WHERE")) stmt.where = ParseCondition();
      AcceptSymbol(";");
      if (!Cur().Is(TokenType::kEnd)) {
        throw SyntaxError(
            "trailing input after statement: '" + Cur().text + "'",
            Cur().position);
      }
      return stmt;
    }
    if (AcceptKeyword("EXPLAIN")) stmt.explain = true;
    ExpectKeyword("SELECT");
    if (AcceptKeyword("TOP")) {
      // §6.2 ranked model: k best rows by combined utility. The bound
      // keeps the double -> size_t cast defined; 0 is rejected rather
      // than silently meaning "everything" (that's what RANKED says).
      stmt.ranked = true;
      double k = ExpectNumber("TOP count");
      if (k < 1 || k != std::floor(k) || k > 1e15) {
        throw SyntaxError(
            "TOP count must be a positive integer (use RANKED to rank all "
            "rows)", Cur().position);
      }
      stmt.top_k = static_cast<size_t>(k);
    } else if (AcceptKeyword("RANKED")) {
      // Rank everything (TOP 0).
      stmt.ranked = true;
    }
    stmt.select_list = ParseSelectList();
    ExpectKeyword("FROM");
    stmt.table = ExpectIdentifier("table name");
    if (AcceptKeyword("WHERE")) stmt.where = ParseCondition();
    if (AcceptKeyword("PREFERRING")) {
      stmt.preferring.push_back(ParsePreference());
      while (AcceptKeyword("CASCADE")) {
        stmt.preferring.push_back(ParsePreference());
      }
    } else if (AcceptKeyword("SKYLINE")) {
      // The 'SKYLINE OF' clause of [BKS01] (§6.1): a restricted Pareto
      // accumulation of LOWEST/HIGHEST chains.
      ExpectKeyword("OF");
      stmt.preferring.push_back(ParseSkylineOf());
    }
    if (AcceptKeyword("GROUPING")) {
      // Def. 16: sigma[P groupby A](R); the preference is evaluated
      // independently within groups of equal A-values.
      stmt.grouping.push_back(ExpectIdentifier("grouping attribute"));
      while (AcceptSymbol(",")) {
        stmt.grouping.push_back(ExpectIdentifier("grouping attribute"));
      }
      if (stmt.preferring.empty()) {
        throw SyntaxError("GROUPING requires a PREFERRING clause",
                          Cur().position);
      }
    }
    if (AcceptKeyword("BUT")) {
      ExpectKeyword("ONLY");
      stmt.but_only = ParseQualityCondition();
    }
    if (AcceptKeyword("LIMIT")) {
      double limit = ExpectNumber("LIMIT count");
      if (limit < 0 || limit != std::floor(limit) || limit > 1e15) {
        throw SyntaxError("LIMIT count must be a non-negative integer",
                          Cur().position);
      }
      stmt.limit = static_cast<size_t>(limit);
    }
    if (stmt.ranked && stmt.preferring.empty()) {
      throw SyntaxError("TOP/RANKED requires a PREFERRING clause",
                        Cur().position);
    }
    AcceptSymbol(";");
    if (!Cur().Is(TokenType::kEnd)) {
      throw SyntaxError("trailing input after statement: '" + Cur().text + "'",
                        Cur().position);
    }
    return stmt;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return tokens_[std::min(i, tokens_.size() - 1)];
  }
  void Advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }

  bool AcceptKeyword(const std::string& kw) {
    if (Cur().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      throw SyntaxError("expected " + kw + ", got '" + Cur().text + "'",
                        Cur().position);
    }
  }
  bool AcceptSymbol(const std::string& s) {
    if (Cur().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) {
      throw SyntaxError("expected '" + s + "', got '" + Cur().text + "'",
                        Cur().position);
    }
  }
  std::string ExpectIdentifier(const std::string& what) {
    if (!Cur().Is(TokenType::kIdentifier)) {
      throw SyntaxError("expected " + what + ", got '" + Cur().text + "'",
                        Cur().position);
    }
    std::string text = Cur().text;
    Advance();
    return text;
  }
  double ExpectNumber(const std::string& what) {
    bool neg = false;
    if (Cur().IsSymbol("-")) {
      neg = true;
      Advance();
    }
    // Date literals ('2001/11/23') act as numbers via their day ordinal
    // ("AROUND preferences ... are also applicable to other ordered SQL
    // types like Date", Def. 7a).
    if (!neg && Cur().Is(TokenType::kString)) {
      if (auto days = ParseDateOrdinal(Cur().text)) {
        Advance();
        return static_cast<double>(*days);
      }
      throw SyntaxError("expected " + what + ", got string '" + Cur().text +
                        "' (not a YYYY/MM/DD date)", Cur().position);
    }
    if (!Cur().Is(TokenType::kNumber)) {
      throw SyntaxError("expected " + what + ", got '" + Cur().text + "'",
                        Cur().position);
    }
    double v = Cur().number;
    Advance();
    return neg ? -v : v;
  }

  PrefExprPtr ParseSkylineOf() {
    PrefExprPtr acc;
    do {
      std::string attr = ExpectIdentifier("skyline attribute");
      auto node = std::make_shared<PrefExpr>();
      if (AcceptKeyword("MIN")) {
        node->kind = PrefExpr::Kind::kLowest;
      } else if (AcceptKeyword("MAX")) {
        node->kind = PrefExpr::Kind::kHighest;
      } else {
        throw SyntaxError("expected MIN or MAX after skyline attribute",
                          Cur().position);
      }
      node->attribute = attr;
      if (!acc) {
        acc = node;
      } else {
        auto pareto = std::make_shared<PrefExpr>();
        pareto->kind = PrefExpr::Kind::kPareto;
        pareto->children = {acc, node};
        acc = pareto;
      }
    } while (AcceptSymbol(","));
    return acc;
  }

  Value ParseLiteral() {
    if (Cur().IsSymbol("-")) {
      Advance();
      if (!Cur().Is(TokenType::kNumber)) {
        throw SyntaxError("expected a number after '-'", Cur().position);
      }
      Value v = ParseLiteral();
      if (v.is_int()) return Value(-v.as_int());
      return Value(-v.as_double());
    }
    if (Cur().Is(TokenType::kString)) {
      Value v(Cur().text);
      Advance();
      return v;
    }
    if (Cur().Is(TokenType::kNumber)) {
      double d = Cur().number;
      bool integral = d == std::floor(d) &&
                      Cur().text.find('.') == std::string::npos &&
                      Cur().text.find('e') == std::string::npos &&
                      Cur().text.find('E') == std::string::npos;
      Advance();
      if (integral) return Value(static_cast<int64_t>(d));
      return Value(d);
    }
    if (Cur().IsKeyword("NULL")) {
      Advance();
      return Value();
    }
    throw SyntaxError("expected a literal, got '" + Cur().text + "'",
                      Cur().position);
  }

  std::vector<std::string> ParseSelectList() {
    std::vector<std::string> list;
    if (AcceptSymbol("*")) return list;
    list.push_back(ExpectIdentifier("column name"));
    while (AcceptSymbol(",")) {
      list.push_back(ExpectIdentifier("column name"));
    }
    return list;
  }

  std::vector<Value> ParseLiteralList() {
    ExpectSymbol("(");
    std::vector<Value> values;
    values.push_back(ParseLiteral());
    while (AcceptSymbol(",")) values.push_back(ParseLiteral());
    ExpectSymbol(")");
    return values;
  }

  CompareOp ParseCompareOp() {
    static const std::pair<const char*, CompareOp> kOps[] = {
        {"=", CompareOp::kEq},  {"<>", CompareOp::kNe}, {"!=", CompareOp::kNe},
        {"<=", CompareOp::kLe}, {">=", CompareOp::kGe}, {"<", CompareOp::kLt},
        {">", CompareOp::kGt}};
    for (const auto& [text, op] : kOps) {
      if (Cur().IsSymbol(text)) {
        Advance();
        return op;
      }
    }
    throw SyntaxError("expected a comparison operator, got '" + Cur().text +
                      "'", Cur().position);
  }

  // --- WHERE ---

  ConditionPtr ParseCondition() {
    ConditionPtr left = ParseAndCondition();
    while (AcceptKeyword("OR")) {
      auto node = std::make_shared<Condition>();
      node->kind = Condition::Kind::kOr;
      node->children = {left, ParseAndCondition()};
      left = node;
    }
    return left;
  }

  ConditionPtr ParseAndCondition() {
    ConditionPtr left = ParseNotCondition();
    while (AcceptKeyword("AND")) {
      auto node = std::make_shared<Condition>();
      node->kind = Condition::Kind::kAnd;
      node->children = {left, ParseNotCondition()};
      left = node;
    }
    return left;
  }

  ConditionPtr ParseNotCondition() {
    if (AcceptKeyword("NOT")) {
      auto node = std::make_shared<Condition>();
      node->kind = Condition::Kind::kNot;
      node->children = {ParseNotCondition()};
      return node;
    }
    if (AcceptSymbol("(")) {
      ConditionPtr inner = ParseCondition();
      ExpectSymbol(")");
      return inner;
    }
    return ParseComparison();
  }

  ConditionPtr ParseComparison() {
    auto node = std::make_shared<Condition>();
    node->attribute = ExpectIdentifier("attribute name");
    if (AcceptKeyword("NOT")) {
      ExpectKeyword("IN");
      node->kind = Condition::Kind::kInList;
      node->negated = true;
      node->list = ParseLiteralList();
      return node;
    }
    if (AcceptKeyword("IN")) {
      node->kind = Condition::Kind::kInList;
      node->list = ParseLiteralList();
      return node;
    }
    node->kind = Condition::Kind::kCompare;
    node->op = ParseCompareOp();
    node->value = ParseLiteral();
    return node;
  }

  // --- PREFERRING ---

  PrefExprPtr ParsePreference() {
    PrefExprPtr left = ParsePareto();
    if (AcceptKeyword("PRIOR")) {
      ExpectKeyword("TO");
      PrefExprPtr right = ParsePreference();
      auto node = std::make_shared<PrefExpr>();
      node->kind = PrefExpr::Kind::kPrior;
      node->children = {left, right};
      return node;
    }
    return left;
  }

  PrefExprPtr ParsePareto() {
    PrefExprPtr left = ParsePrefAtom();
    while (Cur().IsKeyword("AND")) {
      Advance();
      PrefExprPtr right = ParsePrefAtom();
      auto node = std::make_shared<PrefExpr>();
      node->kind = PrefExpr::Kind::kPareto;
      node->children = {left, right};
      left = node;
    }
    return left;
  }

  PrefExprPtr ParsePrefAtom() {
    if (AcceptSymbol("(")) {
      PrefExprPtr inner = ParsePreference();
      ExpectSymbol(")");
      return inner;
    }
    if (Cur().IsKeyword("LOWEST") || Cur().IsKeyword("HIGHEST")) {
      bool lowest = Cur().IsKeyword("LOWEST");
      Advance();
      ExpectSymbol("(");
      std::string attr = ExpectIdentifier("attribute name");
      ExpectSymbol(")");
      auto node = std::make_shared<PrefExpr>();
      node->kind = lowest ? PrefExpr::Kind::kLowest : PrefExpr::Kind::kHighest;
      node->attribute = attr;
      return node;
    }
    std::string attr = ExpectIdentifier("attribute name");
    if (AcceptKeyword("AROUND")) {
      auto node = std::make_shared<PrefExpr>();
      node->kind = PrefExpr::Kind::kAround;
      node->attribute = attr;
      node->low = ExpectNumber("AROUND target");
      return node;
    }
    if (AcceptKeyword("BETWEEN")) {
      auto node = std::make_shared<PrefExpr>();
      node->kind = PrefExpr::Kind::kBetween;
      node->attribute = attr;
      node->low = ExpectNumber("BETWEEN low bound");
      ExpectKeyword("AND");
      node->high = ExpectNumber("BETWEEN high bound");
      if (node->low > node->high) {
        throw SyntaxError("BETWEEN bounds out of order", Cur().position);
      }
      return node;
    }
    // Condition atom chainable with ELSE.
    auto node = std::make_shared<PrefExpr>();
    node->kind = PrefExpr::Kind::kCondLayers;
    node->layers.push_back(ParseCondAtom(attr));
    while (AcceptKeyword("ELSE")) {
      std::string attr2 = ExpectIdentifier("attribute name");
      node->layers.push_back(ParseCondAtom(attr2));
    }
    return node;
  }

  Condition ParseCondAtom(const std::string& attr) {
    Condition cond;
    cond.attribute = attr;
    if (AcceptKeyword("NOT")) {
      ExpectKeyword("IN");
      cond.kind = Condition::Kind::kInList;
      cond.negated = true;
      cond.list = ParseLiteralList();
      return cond;
    }
    if (AcceptKeyword("IN")) {
      cond.kind = Condition::Kind::kInList;
      cond.list = ParseLiteralList();
      return cond;
    }
    cond.kind = Condition::Kind::kCompare;
    cond.op = ParseCompareOp();
    if (cond.op != CompareOp::kEq && cond.op != CompareOp::kNe) {
      throw SyntaxError(
          "preference condition atoms support =, <>, IN, NOT IN",
          Cur().position);
    }
    cond.value = ParseLiteral();
    return cond;
  }

  // --- BUT ONLY ---

  QualityConditionPtr ParseQualityCondition() {
    QualityConditionPtr left = ParseQualityAnd();
    while (AcceptKeyword("OR")) {
      auto node = std::make_shared<QualityCondition>();
      node->kind = QualityCondition::Kind::kOr;
      node->children = {left, ParseQualityAnd()};
      left = node;
    }
    return left;
  }

  QualityConditionPtr ParseQualityAnd() {
    QualityConditionPtr left = ParseQualityAtom();
    while (AcceptKeyword("AND")) {
      auto node = std::make_shared<QualityCondition>();
      node->kind = QualityCondition::Kind::kAnd;
      node->children = {left, ParseQualityAtom()};
      left = node;
    }
    return left;
  }

  QualityConditionPtr ParseQualityAtom() {
    if (AcceptSymbol("(")) {
      QualityConditionPtr inner = ParseQualityCondition();
      ExpectSymbol(")");
      return inner;
    }
    auto node = std::make_shared<QualityCondition>();
    if (AcceptKeyword("LEVEL")) {
      node->kind = QualityCondition::Kind::kLevel;
    } else if (AcceptKeyword("DISTANCE")) {
      node->kind = QualityCondition::Kind::kDistance;
    } else {
      throw SyntaxError("expected LEVEL or DISTANCE, got '" + Cur().text + "'",
                        Cur().position);
    }
    ExpectSymbol("(");
    node->attribute = ExpectIdentifier("attribute name");
    ExpectSymbol(")");
    node->op = ParseCompareOp();
    node->threshold = ExpectNumber("quality threshold");
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

const char* CompareOpText(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

std::string Condition::ToString() const {
  switch (kind) {
    case Kind::kCompare:
      return attribute + " " + CompareOpText(op) + " " + value.ToString();
    case Kind::kInList: {
      std::string out = attribute + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) out += ", ";
        out += list[i].ToString();
      }
      return out + ")";
    }
    case Kind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children[0]->ToString() + " OR " + children[1]->ToString() +
             ")";
    case Kind::kNot:
      return "NOT " + children[0]->ToString();
  }
  return "?";
}

std::string PrefExpr::ToString() const {
  switch (kind) {
    case Kind::kLowest:
      return "LOWEST(" + attribute + ")";
    case Kind::kHighest:
      return "HIGHEST(" + attribute + ")";
    case Kind::kAround:
      return attribute + " AROUND " + NumText(low);
    case Kind::kBetween:
      return attribute + " BETWEEN " + NumText(low) + " AND " + NumText(high);
    case Kind::kCondLayers: {
      std::string out;
      for (size_t i = 0; i < layers.size(); ++i) {
        if (i > 0) out += " ELSE ";
        out += layers[i].ToString();
      }
      return out;
    }
    case Kind::kPareto:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case Kind::kPrior:
      return "(" + children[0]->ToString() + " PRIOR TO " +
             children[1]->ToString() + ")";
  }
  return "?";
}

std::string QualityCondition::ToString() const {
  switch (kind) {
    case Kind::kLevel:
      return "LEVEL(" + attribute + ") " + CompareOpText(op) + " " +
             NumText(threshold);
    case Kind::kDistance:
      return "DISTANCE(" + attribute + ") " + CompareOpText(op) + " " +
             NumText(threshold);
    case Kind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children[0]->ToString() + " OR " + children[1]->ToString() +
             ")";
  }
  return "?";
}

std::string SelectStatement::ToString() const {
  if (is_delete) {
    std::string out = "DELETE FROM " + table;
    if (where) out += " WHERE " + where->ToString();
    return out;
  }
  std::string out = explain ? "EXPLAIN SELECT " : "SELECT ";
  if (ranked) {
    out += top_k > 0 ? "TOP " + std::to_string(top_k) + " " : "RANKED ";
  }
  if (select_list.empty()) {
    out += "*";
  } else {
    for (size_t i = 0; i < select_list.size(); ++i) {
      if (i > 0) out += ", ";
      out += select_list[i];
    }
  }
  out += " FROM " + table;
  if (where) out += " WHERE " + where->ToString();
  for (size_t i = 0; i < preferring.size(); ++i) {
    out += (i == 0 ? " PREFERRING " : " CASCADE ") + preferring[i]->ToString();
  }
  for (size_t i = 0; i < grouping.size(); ++i) {
    out += (i == 0 ? " GROUPING " : ", ") + grouping[i];
  }
  if (but_only) out += " BUT ONLY " + but_only->ToString();
  if (limit > 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

SelectStatement Parse(const std::string& sql) {
  return Parser(sql).ParseStatement();
}

}  // namespace prefdb::psql
