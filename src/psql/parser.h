// Recursive-descent parser for Preference SQL.
//
// Grammar (keywords case-insensitive):
//   statement  := DELETE FROM ident [WHERE cond] [';']
//              |  SELECT [TOP number | RANKED] select_list FROM ident
//                 [WHERE cond] [PREFERRING pref (CASCADE pref)*]
//                 [BUT ONLY qcond] [LIMIT number] [';']
//                 -- TOP k / RANKED switch to the §6.2 ranked (k-best)
//                 -- output model and require a PREFERRING clause
//   select_list:= '*' | ident (',' ident)*
//   cond       := and_cond (OR and_cond)*
//   and_cond   := not_cond (AND not_cond)*
//   not_cond   := NOT not_cond | '(' cond ')' | comparison
//   comparison := ident (= | <> | != | < | <= | > | >=) literal
//              |  ident [NOT] IN '(' literal (',' literal)* ')'
//   pref       := pareto (PRIOR TO pref)?
//   pareto     := atom (AND atom)*
//   atom       := '(' pref ')'
//              |  LOWEST '(' ident ')' | HIGHEST '(' ident ')'
//              |  ident AROUND literal
//              |  ident BETWEEN literal AND literal
//              |  condatom (ELSE condatom)*
//   condatom   := ident (= literal | <> literal | [NOT] IN '(' ... ')')
//   qcond      := qand (OR qand)* ; qand := qatom (AND qatom)*
//   qatom      := (LEVEL | DISTANCE) '(' ident ')' relop number
//              |  '(' qcond ')'
//
// Note on BETWEEN: the AND inside BETWEEN binds to the interval, as in SQL.

#ifndef PREFDB_PSQL_PARSER_H_
#define PREFDB_PSQL_PARSER_H_

#include <string>

#include "psql/ast.h"
#include "psql/lexer.h"

namespace prefdb::psql {

/// Parses one statement; throws SyntaxError on malformed input.
SelectStatement Parse(const std::string& sql);

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_PARSER_H_
