// Token model for the Preference SQL lexer.

#ifndef PREFDB_PSQL_TOKEN_H_
#define PREFDB_PSQL_TOKEN_H_

#include <string>

namespace prefdb::psql {

enum class TokenType {
  kIdentifier,   // table, attribute or unquoted word (keywords classified
                 // by the parser, case-insensitively)
  kString,       // 'text'
  kNumber,       // 42, 3.5, -7
  kSymbol,       // ( ) , ; * = <> != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // raw text (uppercased for identifiers' `upper`)
  std::string upper;   // uppercase of text for keyword matching
  double number = 0;   // valid for kNumber
  size_t position = 0;  // byte offset in the input, for error messages

  bool Is(TokenType t) const { return type == t; }
  bool IsKeyword(const std::string& kw) const {
    return type == TokenType::kIdentifier && upper == kw;
  }
  bool IsSymbol(const std::string& s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_TOKEN_H_
