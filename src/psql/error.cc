#include "psql/error.h"

#include <stdexcept>

#include "psql/lexer.h"

namespace prefdb::psql {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kSyntax: return "SYNTAX";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kBadArgument: return "BAD_ARGUMENT";
    case ErrorCode::kOverloaded: return "OVERLOADED";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kOversized: return "OVERSIZED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "INTERNAL";
}

std::optional<ErrorCode> ParseErrorCode(const std::string& name) {
  static const ErrorCode kAll[] = {
      ErrorCode::kSyntax,      ErrorCode::kNotFound,
      ErrorCode::kBadArgument, ErrorCode::kOverloaded,
      ErrorCode::kTimeout,     ErrorCode::kShuttingDown,
      ErrorCode::kProtocol,    ErrorCode::kOversized,
      ErrorCode::kInternal,
  };
  for (ErrorCode code : kAll) {
    if (name == ErrorCodeName(code)) return code;
  }
  return std::nullopt;
}

QueryError ClassifyException(const std::exception& error,
                             const std::string& sql) {
  if (const auto* syntax = dynamic_cast<const SyntaxError*>(&error)) {
    return {ErrorCode::kSyntax,
            sql.empty() ? std::string(syntax->what())
                        : FormatSyntaxError(sql, *syntax)};
  }
  if (dynamic_cast<const ProtocolError*>(&error) != nullptr) {
    return {ErrorCode::kProtocol, error.what()};
  }
  if (dynamic_cast<const std::out_of_range*>(&error) != nullptr) {
    return {ErrorCode::kNotFound, error.what()};
  }
  if (dynamic_cast<const std::invalid_argument*>(&error) != nullptr) {
    return {ErrorCode::kBadArgument, error.what()};
  }
  return {ErrorCode::kInternal, error.what()};
}

std::string SerializeError(const QueryError& error) {
  return std::string(ErrorCodeName(error.code)) + "\n" + error.message;
}

QueryError DeserializeError(const std::string& payload) {
  size_t nl = payload.find('\n');
  if (nl != std::string::npos) {
    if (auto code = ParseErrorCode(payload.substr(0, nl))) {
      return {*code, payload.substr(nl + 1)};
    }
  }
  return {ErrorCode::kInternal, payload};
}

}  // namespace prefdb::psql
