// Translation of Preference SQL ASTs into the core preference model and
// executable predicates:
//   condition atoms   ->  POS / NEG (Def. 6a/b)
//   ELSE chains       ->  layered preferences (POS/POS, POS/NEG pattern)
//   AND               ->  Pareto accumulation (x)  (Def. 8, as in [KiK01])
//   PRIOR TO          ->  prioritized accumulation & (Def. 9)
//   CASCADE p1 ... pn ->  p0 & p1 & ... & pn
//   AROUND/BETWEEN/LOWEST/HIGHEST -> the numerical base preferences

#ifndef PREFDB_PSQL_TRANSLATOR_H_
#define PREFDB_PSQL_TRANSLATOR_H_

#include <functional>

#include "core/preference.h"
#include "psql/ast.h"
#include "relation/relation.h"

namespace prefdb::psql {

/// Translates one PREFERRING expression into a preference term.
PrefPtr TranslatePreference(const PrefExpr& expr);

/// Translates the full PREFERRING + CASCADE chain. Returns nullptr when the
/// statement carries no preference.
PrefPtr TranslatePreferenceChain(const std::vector<PrefExprPtr>& chain);

/// Compiles a WHERE tree into a row predicate for the given schema.
/// Unknown attributes raise std::out_of_range.
std::function<bool(const Tuple&)> CompileCondition(const Condition& cond,
                                                   const Schema& schema);

/// Compiles a BUT ONLY tree into a row predicate; LEVEL/DISTANCE resolve
/// against base preferences found in `preference` (std::invalid_argument
/// if an attribute has no matching base preference or lacks the quality
/// function).
std::function<bool(const Tuple&)> CompileQualityCondition(
    const QualityCondition& cond, const PrefPtr& preference,
    const Schema& schema);

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_TRANSLATOR_H_
