// Preference SQL query results: the value types every execution entry
// point returns (Engine::Execute, PreparedQuery::Run, the wire protocol's
// result frames).
//
// The execution pipeline itself lives in the stateful engine
// (engine/engine.h): parse -> hard selection (WHERE) -> BMO preference
// evaluation (PREFERRING/CASCADE) or ranked retrieval (TOP k / RANKED) ->
// quality filter (BUT ONLY) -> projection -> LIMIT. The legacy stateless
// free functions (Execute / ExecuteQuery) that used to live here
// re-parsed and re-compiled on every call; they have been removed — hold
// a prefdb::Engine.

#ifndef PREFDB_PSQL_EXECUTOR_H_
#define PREFDB_PSQL_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "psql/catalog.h"

namespace prefdb::psql {

/// Per-phase wall-clock counters and cache outcomes for one query
/// execution. Counters report time spent in *this* call: a phase served
/// from an engine cache reports 0 ns and sets the corresponding hit flag.
struct QueryStats {
  uint64_t parse_ns = 0;
  uint64_t translate_ns = 0;
  uint64_t optimize_ns = 0;
  uint64_t compile_ns = 0;  // WHERE filter + projection index + score table
  uint64_t execute_ns = 0;  // BMO kernel / ranked sort + materialization
  uint64_t total_ns = 0;
  /// Parse+translate served from the engine's plan cache (always true for
  /// PreparedQuery::Run, which holds its plan).
  bool plan_cache_hit = false;
  /// Optimize+compile served from the engine's score-table cache.
  bool exec_cache_hit = false;
  /// The cost model's estimate for the chosen physical plan (0 when the
  /// plan was not costed: explicit algorithm, ranked, preference-less).
  /// EXPLAIN prints it next to the measured execute time.
  double estimated_cost_ns = 0.0;
  /// Cumulative LRU evictions of the engine's caches at the time of this
  /// run (see EngineOptions::{plan,exec}_cache_capacity).
  uint64_t plan_cache_evictions = 0;
  uint64_t exec_cache_evictions = 0;
  /// Kernel variant the BMO stage runs, e.g. "bnl[avx2,tile=8192]",
  /// "sfs[scalar]", "closure" (empty for ranked / preference-less plans).
  std::string kernel;

  /// One-line human-readable rendering for the REPL and EXPLAIN.
  std::string ToString() const;
};

struct QueryResult {
  Relation relation;
  /// The preference term the PREFERRING clause translated to ("" if none).
  std::string preference_term;
  /// EXPLAIN-style plan summary.
  std::string plan;
  /// Optimizer report (rewrites + algorithm rationale); filled for
  /// EXPLAIN queries.
  std::string plan_details;
  /// Ranked queries (TOP k / RANKED): utilities aligned 1:1 with
  /// relation's rows, descending. Empty for BMO queries.
  std::vector<double> utilities;
  /// Per-phase timing and cache outcomes.
  QueryStats stats;
};

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_EXECUTOR_H_
