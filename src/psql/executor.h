// End-to-end Preference SQL execution: parse -> hard selection (WHERE) ->
// BMO preference evaluation (PREFERRING/CASCADE) -> quality filter
// (BUT ONLY) -> projection -> LIMIT.

#ifndef PREFDB_PSQL_EXECUTOR_H_
#define PREFDB_PSQL_EXECUTOR_H_

#include <string>

#include "eval/bmo.h"
#include "psql/catalog.h"
#include "psql/parser.h"

namespace prefdb::psql {

struct QueryResult {
  Relation relation;
  /// The preference term the PREFERRING clause translated to ("" if none).
  std::string preference_term;
  /// EXPLAIN-style plan summary.
  std::string plan;
  /// Optimizer report (rewrites + algorithm rationale); filled for
  /// EXPLAIN queries.
  std::string plan_details;
};

/// Executes an already-parsed statement.
QueryResult Execute(const SelectStatement& stmt, const Catalog& catalog,
                    const BmoOptions& options = {});

/// Parses and executes. Throws SyntaxError / std::out_of_range /
/// std::invalid_argument on bad queries.
QueryResult ExecuteQuery(const std::string& sql, const Catalog& catalog,
                         const BmoOptions& options = {});

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_EXECUTOR_H_
