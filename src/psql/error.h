// Structured query-error classification and wire serialization.
//
// The execution pipeline reports failures as C++ exceptions (SyntaxError,
// std::out_of_range for unknown tables/preferences, std::invalid_argument
// for semantic errors). A server boundary cannot ship exceptions, so this
// layer maps them onto a small closed error-code vocabulary plus a
// human-readable message, serialized as
//
//   <CODE> '\n' <message>
//
// — the payload of the wire protocol's error frames (server/protocol.h).
// Syntax errors keep their caret-annotated source context
// (FormatSyntaxError) so a remote client sees the same diagnostic the
// local REPL prints.

#ifndef PREFDB_PSQL_ERROR_H_
#define PREFDB_PSQL_ERROR_H_

#include <exception>
#include <optional>
#include <stdexcept>
#include <string>

namespace prefdb::psql {

// ---------------------------------------------------------------------------
// The prefdb exception vocabulary. Server and psql code throws these (and
// SyntaxError from psql/lexer.h) exclusively — prefdb-lint's
// prefdb-foreign-throw rule rejects any other type — so every throw site
// maps onto exactly one ErrorCode below and the wire vocabulary stays
// closed. Each type derives from the std exception its ErrorCode was
// historically classified from, so pre-existing catch sites and
// ClassifyException keep working unchanged.

/// Unknown table, stored preference, or prepared-statement handle
/// (ErrorCode::kNotFound).
class NotFoundError : public std::out_of_range {
 public:
  using std::out_of_range::out_of_range;
};

/// Semantically invalid query or argument (ErrorCode::kBadArgument).
class BadArgumentError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Malformed frame, unknown frame type, or ill-formed payload
/// (ErrorCode::kProtocol).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Server-side operational failure — socket setup, wire I/O, peer
/// misbehavior observed client-side (ErrorCode::kInternal on the reply
/// path; typically fatal for the connection).
class ServerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Closed error vocabulary shared by both ends of the wire. Values are
/// serialized by name, never by integer, so the enum may be reordered.
enum class ErrorCode {
  /// Malformed Preference SQL (lexer/parser); message carries the
  /// caret-annotated context.
  kSyntax,
  /// Unknown table, stored preference, or prepared-statement handle.
  kNotFound,
  /// Semantically invalid query or argument (std::invalid_argument).
  kBadArgument,
  /// The query was rejected by admission control (queue full).
  kOverloaded,
  /// The per-query deadline elapsed before a result was produced.
  kTimeout,
  /// The server is shutting down and no longer accepts new work.
  kShuttingDown,
  /// Malformed frame, unknown frame type, or an ill-formed payload.
  kProtocol,
  /// A frame exceeded the server's size limit.
  kOversized,
  /// Anything else that escaped the pipeline (std::exception fallback).
  kInternal,
};

const char* ErrorCodeName(ErrorCode code);
std::optional<ErrorCode> ParseErrorCode(const std::string& name);

/// A classified error: what went wrong, and prose for humans.
struct QueryError {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Classifies an exception thrown by parsing/translation/execution.
/// `sql` (when non-empty) lets syntax errors render their caret context.
QueryError ClassifyException(const std::exception& error,
                             const std::string& sql = "");

/// "<CODE>\n<message>" — the wire rendering.
std::string SerializeError(const QueryError& error);

/// Inverse of SerializeError. Unknown codes parse as kInternal with the
/// full payload preserved in the message (forward compatibility).
QueryError DeserializeError(const std::string& payload);

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_ERROR_H_
