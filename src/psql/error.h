// Structured query-error classification and wire serialization.
//
// The execution pipeline reports failures as C++ exceptions (SyntaxError,
// std::out_of_range for unknown tables/preferences, std::invalid_argument
// for semantic errors). A server boundary cannot ship exceptions, so this
// layer maps them onto a small closed error-code vocabulary plus a
// human-readable message, serialized as
//
//   <CODE> '\n' <message>
//
// — the payload of the wire protocol's error frames (server/protocol.h).
// Syntax errors keep their caret-annotated source context
// (FormatSyntaxError) so a remote client sees the same diagnostic the
// local REPL prints.

#ifndef PREFDB_PSQL_ERROR_H_
#define PREFDB_PSQL_ERROR_H_

#include <exception>
#include <optional>
#include <string>

namespace prefdb::psql {

/// Closed error vocabulary shared by both ends of the wire. Values are
/// serialized by name, never by integer, so the enum may be reordered.
enum class ErrorCode {
  /// Malformed Preference SQL (lexer/parser); message carries the
  /// caret-annotated context.
  kSyntax,
  /// Unknown table, stored preference, or prepared-statement handle.
  kNotFound,
  /// Semantically invalid query or argument (std::invalid_argument).
  kBadArgument,
  /// The query was rejected by admission control (queue full).
  kOverloaded,
  /// The per-query deadline elapsed before a result was produced.
  kTimeout,
  /// The server is shutting down and no longer accepts new work.
  kShuttingDown,
  /// Malformed frame, unknown frame type, or an ill-formed payload.
  kProtocol,
  /// A frame exceeded the server's size limit.
  kOversized,
  /// Anything else that escaped the pipeline (std::exception fallback).
  kInternal,
};

const char* ErrorCodeName(ErrorCode code);
std::optional<ErrorCode> ParseErrorCode(const std::string& name);

/// A classified error: what went wrong, and prose for humans.
struct QueryError {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Classifies an exception thrown by parsing/translation/execution.
/// `sql` (when non-empty) lets syntax errors render their caret context.
QueryError ClassifyException(const std::exception& error,
                             const std::string& sql = "");

/// "<CODE>\n<message>" — the wire rendering.
std::string SerializeError(const QueryError& error);

/// Inverse of SerializeError. Unknown codes parse as kInternal with the
/// full payload preserved in the message (forward compatibility).
QueryError DeserializeError(const std::string& payload);

}  // namespace prefdb::psql

#endif  // PREFDB_PSQL_ERROR_H_
