#include "pxpath/xpath.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "eval/bmo.h"

namespace prefdb::pxpath {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer for the query string.

struct Tok {
  enum Type { kName, kAttr, kString, kNumber, kSym, kEnd } type = kEnd;
  std::string text;
  double number = 0;
  size_t pos = 0;
};

std::string Lower(std::string s) {
  for (char& c : s) c = std::tolower(static_cast<unsigned char>(c));
  return s;
}

std::vector<Tok> Lex(const std::string& in) {
  std::vector<Tok> out;
  size_t i = 0;
  auto fail = [&](const std::string& m) {
    throw std::invalid_argument("Preference XPATH error at offset " +
                                std::to_string(i) + ": " + m);
  };
  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (in.compare(i, 2, "#[") == 0) {
      out.push_back({Tok::kSym, "#[", 0, start});
      i += 2;
      continue;
    }
    if (in.compare(i, 2, "]#") == 0) {
      out.push_back({Tok::kSym, "]#", 0, start});
      i += 2;
      continue;
    }
    if (in.compare(i, 2, "<>") == 0 || in.compare(i, 2, "!=") == 0) {
      out.push_back({Tok::kSym, "<>", 0, start});
      i += 2;
      continue;
    }
    if (c == '@') {
      ++i;
      size_t s = i;
      while (i < in.size() && (std::isalnum(static_cast<unsigned char>(in[i])) ||
                               in[i] == '_' || in[i] == '-')) {
        ++i;
      }
      if (i == s) fail("expected attribute name after '@'");
      out.push_back({Tok::kAttr, in.substr(s, i - s), 0, start});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < in.size() && (std::isalnum(static_cast<unsigned char>(in[i])) ||
                               in[i] == '_' || in[i] == '-')) {
        ++i;
      }
      out.push_back({Tok::kName, in.substr(start, i - start), 0, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      while (i < in.size() && (std::isdigit(static_cast<unsigned char>(in[i])) ||
                               in[i] == '.')) {
        ++i;
      }
      std::string text = in.substr(start, i - start);
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') fail("malformed number " + text);
      out.push_back({Tok::kNumber, text, v, start});
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      size_t s = i;
      while (i < in.size() && in[i] != quote) ++i;
      if (i == in.size()) fail("unterminated string literal");
      out.push_back({Tok::kString, in.substr(s, i - s), 0, start});
      ++i;
      continue;
    }
    if (std::string("/[]()=,<>").find(c) != std::string::npos) {
      out.push_back({Tok::kSym, std::string(1, c), 0, start});
      ++i;
      continue;
    }
    fail(std::string("unexpected character '") + c + "'");
  }
  out.push_back({Tok::kEnd, "", 0, in.size()});
  return out;
}

// ---------------------------------------------------------------------------
// Hard predicate AST (inside [...]).

struct HardPred {
  enum Kind { kCompare, kAnd, kOr, kNot } kind = kCompare;
  std::string attribute;
  std::string op;  // = <> < <= > >=
  Value value;
  std::vector<std::shared_ptr<HardPred>> children;
};
using HardPredPtr = std::shared_ptr<HardPred>;

// One step of the location path.
struct Step {
  std::string nodetest;
  bool descendant = false;  // '//name': descendant-or-self search
  std::vector<HardPredPtr> predicates;
  std::vector<PrefPtr> preferences;
};

// ---------------------------------------------------------------------------
// Parser.

class QueryParser {
 public:
  explicit QueryParser(const std::string& query) : toks_(Lex(query)) {}

  std::vector<Step> ParsePath() {
    std::vector<Step> steps;
    while (Cur().type != Tok::kEnd) {
      Expect("/");
      Step step;
      if (CurIsSym("/")) {  // '//' descendant axis
        Advance();
        step.descendant = true;
      }
      if (Cur().type != Tok::kName) Fail("expected a node test");
      step.nodetest = Cur().text;
      Advance();
      while (true) {
        if (CurIsSym("[")) {
          Advance();
          step.predicates.push_back(ParseHardOr());
          Expect("]");
        } else if (CurIsSym("#[")) {
          Advance();
          step.preferences.push_back(ParsePreference());
          Expect("]#");
        } else {
          break;
        }
      }
      steps.push_back(std::move(step));
    }
    if (steps.empty()) Fail("empty location path");
    return steps;
  }

 private:
  const Tok& Cur() const { return toks_[pos_]; }
  void Advance() { if (pos_ + 1 < toks_.size()) ++pos_; }
  bool CurIsSym(const std::string& s) const {
    return Cur().type == Tok::kSym && Cur().text == s;
  }
  bool CurIsName(const std::string& lower_name) const {
    return Cur().type == Tok::kName && Lower(Cur().text) == lower_name;
  }
  void Expect(const std::string& sym) {
    if (!CurIsSym(sym)) Fail("expected '" + sym + "'");
    Advance();
  }
  [[noreturn]] void Fail(const std::string& m) const {
    throw std::invalid_argument("Preference XPATH error at offset " +
                                std::to_string(Cur().pos) + ": " + m +
                                " (got '" + Cur().text + "')");
  }

  Value ParseLiteral() {
    if (Cur().type == Tok::kString) {
      Value v(Cur().text);
      Advance();
      return v;
    }
    if (Cur().type == Tok::kNumber) {
      double d = Cur().number;
      bool integral = Cur().text.find('.') == std::string::npos;
      Advance();
      return integral ? Value(static_cast<int64_t>(d)) : Value(d);
    }
    Fail("expected a literal");
  }

  // --- hard predicates ---

  HardPredPtr ParseHardOr() {
    HardPredPtr left = ParseHardAnd();
    while (CurIsName("or")) {
      Advance();
      auto node = std::make_shared<HardPred>();
      node->kind = HardPred::kOr;
      node->children = {left, ParseHardAnd()};
      left = node;
    }
    return left;
  }

  HardPredPtr ParseHardAnd() {
    HardPredPtr left = ParseHardAtom();
    while (CurIsName("and")) {
      Advance();
      auto node = std::make_shared<HardPred>();
      node->kind = HardPred::kAnd;
      node->children = {left, ParseHardAtom()};
      left = node;
    }
    return left;
  }

  HardPredPtr ParseHardAtom() {
    if (CurIsName("not")) {
      Advance();
      auto node = std::make_shared<HardPred>();
      node->kind = HardPred::kNot;
      node->children = {ParseHardAtom()};
      return node;
    }
    if (CurIsSym("(")) {
      Advance();
      HardPredPtr inner = ParseHardOr();
      Expect(")");
      return inner;
    }
    if (Cur().type != Tok::kAttr) Fail("expected '@attribute'");
    auto node = std::make_shared<HardPred>();
    node->kind = HardPred::kCompare;
    node->attribute = Cur().text;
    Advance();
    if (CurIsSym("=") || CurIsSym("<>")) {
      node->op = Cur().text;
      Advance();
    } else if (CurIsSym("<") || CurIsSym(">")) {
      node->op = Cur().text;
      Advance();
      if (CurIsSym("=")) {
        node->op += "=";
        Advance();
      }
    } else {
      Fail("expected a comparison operator");
    }
    node->value = ParseLiteral();
    return node;
  }

  // --- soft preferences ---

  PrefPtr ParsePreference() {
    PrefPtr left = ParsePareto();
    if (CurIsName("prior")) {
      Advance();
      if (!CurIsName("to")) Fail("expected 'to' after 'prior'");
      Advance();
      return Prioritized(left, ParsePreference());
    }
    return left;
  }

  PrefPtr ParsePareto() {
    PrefPtr left = ParsePrefAtom();
    while (CurIsName("and")) {
      Advance();
      left = Pareto(left, ParsePrefAtom());
    }
    return left;
  }

  PrefPtr ParsePrefAtom() {
    if (!CurIsSym("(")) Fail("expected '(' to open an attribute test");
    // Lookahead: "(@attr)" is an attribute test, otherwise a group.
    if (toks_[pos_ + 1].type != Tok::kAttr) {
      Advance();
      PrefPtr inner = ParsePreference();
      Expect(")");
      return inner;
    }
    Advance();
    std::string attr = Cur().text;
    Advance();
    Expect(")");
    if (CurIsName("highest")) {
      Advance();
      return Highest(attr);
    }
    if (CurIsName("lowest")) {
      Advance();
      return Lowest(attr);
    }
    if (CurIsName("around")) {
      Advance();
      if (Cur().type != Tok::kNumber) Fail("expected AROUND target number");
      double z = Cur().number;
      Advance();
      return Around(attr, z);
    }
    if (CurIsName("between")) {
      Advance();
      if (Cur().type != Tok::kNumber) Fail("expected BETWEEN low bound");
      double lo = Cur().number;
      Advance();
      if (!CurIsName("and")) Fail("expected 'and' inside between");
      Advance();
      if (Cur().type != Tok::kNumber) Fail("expected BETWEEN high bound");
      double hi = Cur().number;
      Advance();
      return Between(attr, lo, hi);
    }
    if (CurIsName("in")) {
      Advance();
      Expect("(");
      std::vector<Value> values;
      values.push_back(ParseLiteral());
      while (CurIsSym(",")) {
        Advance();
        values.push_back(ParseLiteral());
      }
      Expect(")");
      return Pos(attr, std::move(values));
    }
    if (CurIsSym("=")) {
      Advance();
      return Pos(attr, {ParseLiteral()});
    }
    if (CurIsSym("<>")) {
      Advance();
      return Neg(attr, {ParseLiteral()});
    }
    Fail("expected a preference operator (highest, lowest, around, between, "
         "in, =, <>)");
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Evaluation.

Value AttrToValue(const std::string& raw, bool numeric) {
  if (raw.empty()) return Value();
  if (numeric) {
    char* end = nullptr;
    double d = std::strtod(raw.c_str(), &end);
    if (end != nullptr && *end == '\0') {
      if (d == static_cast<int64_t>(d)) return Value(static_cast<int64_t>(d));
      return Value(d);
    }
    return Value();  // should not happen: `numeric` was pre-checked
  }
  return Value(raw);
}

bool AttrIsNumeric(const std::vector<XmlNodePtr>& nodes,
                   const std::string& attr) {
  bool any = false;
  for (const auto& node : nodes) {
    std::string raw = node->Attr(attr);
    if (raw.empty()) continue;
    any = true;
    char* end = nullptr;
    std::strtod(raw.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
  }
  return any;
}

bool EvalHardPred(const HardPred& pred, const XmlNode& node) {
  switch (pred.kind) {
    case HardPred::kAnd:
      return EvalHardPred(*pred.children[0], node) &&
             EvalHardPred(*pred.children[1], node);
    case HardPred::kOr:
      return EvalHardPred(*pred.children[0], node) ||
             EvalHardPred(*pred.children[1], node);
    case HardPred::kNot:
      return !EvalHardPred(*pred.children[0], node);
    case HardPred::kCompare: {
      std::string raw = node.Attr(pred.attribute);
      Value lhs;
      if (pred.value.is_numeric()) {
        char* end = nullptr;
        double d = std::strtod(raw.c_str(), &end);
        lhs = (!raw.empty() && end != nullptr && *end == '\0') ? Value(d)
                                                               : Value();
      } else {
        lhs = Value(raw);
      }
      if (pred.op == "=") return lhs == pred.value;
      if (pred.op == "<>") return lhs != pred.value;
      if (pred.op == "<") return lhs < pred.value;
      if (pred.op == "<=") return lhs <= pred.value;
      if (pred.op == ">") return lhs > pred.value;
      if (pred.op == ">=") return lhs >= pred.value;
      return false;
    }
  }
  return false;
}

}  // namespace

Relation NodesToRelation(const std::vector<XmlNodePtr>& nodes,
                         const std::vector<std::string>& attribute_names) {
  Schema schema;
  std::vector<bool> numeric;
  for (const auto& attr : attribute_names) {
    bool is_num = AttrIsNumeric(nodes, attr);
    numeric.push_back(is_num);
    schema.Add({attr, is_num ? ValueType::kDouble : ValueType::kString});
  }
  Relation rel(schema);
  for (const auto& node : nodes) {
    Tuple t;
    for (size_t i = 0; i < attribute_names.size(); ++i) {
      t.Append(AttrToValue(node->Attr(attribute_names[i]), numeric[i]));
    }
    rel.Add(std::move(t));
  }
  return rel;
}

namespace {

void CollectDescendants(const XmlNodePtr& node, const std::string& tag,
                        std::vector<XmlNodePtr>* out) {
  if (node->name == tag) out->push_back(node);
  for (const auto& child : node->children) {
    CollectDescendants(child, tag, out);
  }
}

}  // namespace

XPathResult EvalPreferenceXPath(const XmlNodePtr& root,
                                const std::string& query) {
  std::vector<Step> steps = QueryParser(query).ParsePath();
  XPathResult result;
  std::vector<XmlNodePtr> current;
  // The first step matches the document root element by name ('/name') or
  // any matching node in the tree ('//name').
  if (root) {
    if (steps[0].descendant) {
      CollectDescendants(root, steps[0].nodetest, &current);
    } else if (root->name == steps[0].nodetest) {
      current.push_back(root);
    }
  }
  for (size_t s = 0; s < steps.size(); ++s) {
    const Step& step = steps[s];
    if (s > 0) {
      std::vector<XmlNodePtr> next;
      for (const auto& node : current) {
        if (step.descendant) {
          for (const auto& child : node->children) {
            CollectDescendants(child, step.nodetest, &next);
          }
        } else {
          for (const auto& child : node->ChildrenNamed(step.nodetest)) {
            next.push_back(child);
          }
        }
      }
      current = std::move(next);
    }
    for (const auto& pred : step.predicates) {
      std::vector<XmlNodePtr> kept;
      for (const auto& node : current) {
        if (EvalHardPred(*pred, *node)) kept.push_back(node);
      }
      current = std::move(kept);
    }
    for (const auto& pref : step.preferences) {
      result.preference_term = pref->ToString();
      if (current.empty()) continue;
      Relation rel = NodesToRelation(current, pref->attributes());
      std::vector<size_t> winners = BmoIndices(rel, pref);
      std::vector<XmlNodePtr> kept;
      kept.reserve(winners.size());
      for (size_t idx : winners) kept.push_back(current[idx]);
      current = std::move(kept);
    }
  }
  result.nodes = std::move(current);
  return result;
}

}  // namespace prefdb::pxpath
