#include "pxpath/xml.h"

#include <cctype>
#include <stdexcept>

namespace prefdb::pxpath {

std::vector<XmlNodePtr> XmlNode::ChildrenNamed(const std::string& tag) const {
  std::vector<XmlNodePtr> out;
  for (const auto& child : children) {
    if (child->name == tag) out.push_back(child);
  }
  return out;
}

namespace {

class XmlParser {
 public:
  explicit XmlParser(const std::string& input) : in_(input) {}

  XmlNodePtr ParseDocument() {
    SkipWhitespaceAndMisc();
    XmlNodePtr root = ParseElement();
    SkipWhitespaceAndMisc();
    if (pos_ != in_.size()) Fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw std::invalid_argument("XML error at offset " + std::to_string(pos_) +
                                ": " + message);
  }

  char Cur() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
  bool StartsWith(const std::string& s) const {
    return in_.compare(pos_, s.size(), s) == 0;
  }
  void SkipWs() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }
  void SkipWhitespaceAndMisc() {
    while (true) {
      SkipWs();
      if (StartsWith("<?")) {  // declaration / PI: skip to ?>
        size_t end = in_.find("?>", pos_);
        if (end == std::string::npos) Fail("unterminated <? ... ?>");
        pos_ = end + 2;
        continue;
      }
      if (StartsWith("<!--")) {
        size_t end = in_.find("-->", pos_);
        if (end == std::string::npos) Fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      break;
    }
  }

  std::string ParseName() {
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '_' || in_[pos_] == '-' || in_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a name");
    return in_.substr(start, pos_ - start);
  }

  static std::string Unescape(const std::string& s) {
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out += s[i];
        continue;
      }
      if (s.compare(i, 4, "&lt;") == 0) { out += '<'; i += 3; }
      else if (s.compare(i, 4, "&gt;") == 0) { out += '>'; i += 3; }
      else if (s.compare(i, 5, "&amp;") == 0) { out += '&'; i += 4; }
      else if (s.compare(i, 6, "&quot;") == 0) { out += '"'; i += 5; }
      else if (s.compare(i, 6, "&apos;") == 0) { out += '\''; i += 5; }
      else out += s[i];
    }
    return out;
  }

  XmlNodePtr ParseElement() {
    if (Cur() != '<') Fail("expected '<'");
    ++pos_;
    auto node = std::make_shared<XmlNode>();
    node->name = ParseName();
    // Attributes.
    while (true) {
      SkipWs();
      if (StartsWith("/>")) {
        pos_ += 2;
        return node;
      }
      if (Cur() == '>') {
        ++pos_;
        break;
      }
      std::string key = ParseName();
      SkipWs();
      if (Cur() != '=') Fail("expected '=' after attribute name");
      ++pos_;
      SkipWs();
      char quote = Cur();
      if (quote != '"' && quote != '\'') Fail("expected a quoted value");
      ++pos_;
      size_t start = pos_;
      while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
      if (pos_ == in_.size()) Fail("unterminated attribute value");
      node->attributes[key] = Unescape(in_.substr(start, pos_ - start));
      ++pos_;
    }
    // Content.
    while (true) {
      if (pos_ >= in_.size()) Fail("unterminated element <" + node->name + ">");
      if (StartsWith("</")) {
        pos_ += 2;
        std::string closing = ParseName();
        if (closing != node->name) {
          Fail("mismatched closing tag </" + closing + "> for <" +
               node->name + ">");
        }
        SkipWs();
        if (Cur() != '>') Fail("expected '>'");
        ++pos_;
        return node;
      }
      if (StartsWith("<!--")) {
        size_t end = in_.find("-->", pos_);
        if (end == std::string::npos) Fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (Cur() == '<') {
        node->children.push_back(ParseElement());
        continue;
      }
      size_t start = pos_;
      while (pos_ < in_.size() && in_[pos_] != '<') ++pos_;
      std::string text = Unescape(in_.substr(start, pos_ - start));
      // Trim pure-whitespace runs.
      bool all_ws = true;
      for (char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_ws = false;
          break;
        }
      }
      if (!all_ws) node->text += text;
    }
  }

  const std::string& in_;
  size_t pos_ = 0;
};

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

XmlNodePtr ParseXml(const std::string& input) {
  return XmlParser(input).ParseDocument();
}

std::string ToXml(const XmlNode& node, size_t indent) {
  std::string pad(indent, ' ');
  std::string out = pad + "<" + node.name;
  for (const auto& [key, value] : node.attributes) {
    out += " " + key + "=\"" + Escape(value) + "\"";
  }
  if (node.children.empty() && node.text.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!node.text.empty()) out += Escape(node.text);
  if (!node.children.empty()) {
    out += "\n";
    for (const auto& child : node.children) {
      out += ToXml(*child, indent + 2);
    }
    out += pad;
  }
  out += "</" + node.name + ">\n";
  return out;
}

}  // namespace prefdb::pxpath
