// Minimal XML document model + parser: the substrate for Preference XPATH
// (Kießling §6.1, [KHF01]). Supports elements, attributes and text —
// enough for attribute-rich e-commerce catalogs (no namespaces, CDATA or
// processing instructions).

#ifndef PREFDB_PXPATH_XML_H_
#define PREFDB_PXPATH_XML_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace prefdb::pxpath {

struct XmlNode;
using XmlNodePtr = std::shared_ptr<XmlNode>;

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;  // ordered for determinism
  std::vector<XmlNodePtr> children;
  std::string text;  // concatenated character data

  /// Attribute accessor; returns empty string when absent.
  std::string Attr(const std::string& key) const {
    auto it = attributes.find(key);
    return it == attributes.end() ? "" : it->second;
  }

  /// Child elements with the given tag name.
  std::vector<XmlNodePtr> ChildrenNamed(const std::string& tag) const;
};

/// Parses an XML document; returns the root element. Throws
/// std::invalid_argument on malformed input (with offset info).
XmlNodePtr ParseXml(const std::string& input);

/// Serializes a node tree (2-space indent).
std::string ToXml(const XmlNode& node, size_t indent = 0);

}  // namespace prefdb::pxpath

#endif  // PREFDB_PXPATH_XML_H_
