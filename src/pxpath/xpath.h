// Preference XPATH (Kießling §6.1, [KHF01]): XPATH location paths where
// each step may carry hard predicates "[...]" and soft preference
// selections "#[...]#" evaluated under the BMO model:
//
//   /CARS/CAR #[(@fuel_economy) highest and (@horsepower) highest]#
//   /CARS/CAR #[(@color) in ("black","white") prior to (@price) around 10000]#
//             #[(@mileage) lowest]#
//
// Upgraded production (paper): LocationStep: axis nodetest (predicate |
// preference)*. Supported preference operators on attribute tests
// (@attr): highest, lowest, around N, between N and N, in ("..",..),
// = / <> literals, combined with `and` (Pareto) and `prior to`
// (prioritization). Hard predicates support @attr comparisons combined
// with and/or/not. Successive #[..]# blocks cascade (prioritized), like
// Preference SQL's CASCADE.

#ifndef PREFDB_PXPATH_XPATH_H_
#define PREFDB_PXPATH_XPATH_H_

#include <string>
#include <vector>

#include "core/preference.h"
#include "pxpath/xml.h"
#include "relation/relation.h"

namespace prefdb::pxpath {

/// Result of one query: the matching nodes in document order plus the
/// translated preference term of the last soft step (for EXPLAIN).
struct XPathResult {
  std::vector<XmlNodePtr> nodes;
  std::string preference_term;
};

/// Evaluates a Preference XPATH query against a document root. Throws
/// std::invalid_argument on syntax errors.
XPathResult EvalPreferenceXPath(const XmlNodePtr& root,
                                const std::string& query);

/// Converts a node set into a relation over the given attribute names;
/// attribute strings that parse as numbers become DOUBLE columns
/// (attribute-rich XML convention of [KHF01]). Exposed for testing.
Relation NodesToRelation(const std::vector<XmlNodePtr>& nodes,
                         const std::vector<std::string>& attribute_names);

}  // namespace prefdb::pxpath

#endif  // PREFDB_PXPATH_XPATH_H_
