// Randomized preference-term generator: drives property-based tests and
// the algebra-law reproduction harness (and is handy for fuzzing
// downstream preference optimizers).

#ifndef PREFDB_DATAGEN_RANDOM_TERMS_H_
#define PREFDB_DATAGEN_RANDOM_TERMS_H_

#include <random>
#include <utility>
#include <vector>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"

namespace prefdb {

/// Generates random preference terms over a fixed attribute with a small
/// value domain. All generated terms are valid (constructor preconditions
/// respected), so every output satisfies Proposition 1.
class RandomTermGen {
 public:
  RandomTermGen(std::string attribute, std::vector<Value> domain,
                uint64_t seed)
      : attribute_(std::move(attribute)),
        domain_(std::move(domain)),
        rng_(seed) {}

  /// A random base preference on the attribute.
  PrefPtr Base() {
    switch (rng_() % 8) {
      case 0: return Pos(attribute_, RandomSubset());
      case 1: return Neg(attribute_, RandomSubset());
      case 2: {
        auto [a, b] = DisjointSubsets();
        return PosNeg(attribute_, a, b);
      }
      case 3: {
        auto [a, b] = DisjointSubsets();
        return PosPos(attribute_, a, b);
      }
      case 4: return Lowest(attribute_);
      case 5: return Highest(attribute_);
      case 6: return Around(attribute_, RandomTargetValue());
      case 7: {
        double low = RandomTargetValue();
        return Between(attribute_, low, low + 3);
      }
    }
    return Lowest(attribute_);
  }

  /// A random term of bounded depth combining base preferences on the SAME
  /// attribute (valid input for the same-attribute laws of §4).
  PrefPtr Term(int depth = 2) {
    if (depth <= 0) return Base();
    switch (rng_() % 6) {
      case 0: return Pareto(Term(depth - 1), Term(depth - 1));
      case 1: return Prioritized(Term(depth - 1), Term(depth - 1));
      case 2: return Intersection(Term(depth - 1), Term(depth - 1));
      case 3: return Dual(Term(depth - 1));
      case 4: return AntiChain(attribute_);
      default: return Base();
    }
  }

  const std::vector<Value>& domain() const { return domain_; }

 private:
  std::vector<Value> RandomSubset() {
    std::vector<Value> out;
    for (const Value& v : domain_) {
      if (rng_() % 2 == 0) out.push_back(v);
    }
    if (out.empty()) out.push_back(domain_[rng_() % domain_.size()]);
    return out;
  }

  std::pair<std::vector<Value>, std::vector<Value>> DisjointSubsets() {
    std::vector<Value> a, b;
    for (const Value& v : domain_) {
      switch (rng_() % 3) {
        case 0: a.push_back(v); break;
        case 1: b.push_back(v); break;
        default: break;
      }
    }
    return {a, b};
  }

  double RandomTargetValue() {
    return static_cast<double>(static_cast<int>(rng_() % 9)) - 4.0;
  }

  std::string attribute_;
  std::vector<Value> domain_;
  std::mt19937_64 rng_;
};

}  // namespace prefdb

#endif  // PREFDB_DATAGEN_RANDOM_TERMS_H_
