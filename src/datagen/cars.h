// Synthetic used-car and trip databases with realistic attribute
// distributions — the e-shopping substrate of Kießling §3.3/§6.1.
// Substitutes for the commercial car databases and real customer query
// logs the paper's Preference SQL deployments ran against (see DESIGN.md,
// "Substitutions").

#ifndef PREFDB_DATAGEN_CARS_H_
#define PREFDB_DATAGEN_CARS_H_

#include <cstdint>

#include "relation/relation.h"

namespace prefdb {

/// Schema: oid INT, make STRING, category STRING, color STRING,
/// transmission STRING, price INT, mileage INT, horsepower INT, year INT,
/// fuel_economy DOUBLE, insurance_rating INT, commission INT.
/// Price correlates with horsepower and year and anti-correlates with
/// mileage, as on a real used-car market.
Relation GenerateCars(size_t n, uint64_t seed);

/// Schema: oid INT, destination STRING, start_date INT (days from epoch of
/// the query season), duration INT, price INT, category STRING.
Relation GenerateTrips(size_t n, uint64_t seed);

}  // namespace prefdb

#endif  // PREFDB_DATAGEN_CARS_H_
