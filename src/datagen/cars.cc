#include "datagen/cars.h"

#include <algorithm>
#include <random>

namespace prefdb {

namespace {

template <typename Rng>
const char* PickWeighted(Rng& rng,
                         const std::vector<std::pair<const char*, double>>& w) {
  double total = 0;
  for (const auto& [name, weight] : w) total += weight;
  std::uniform_real_distribution<double> uni(0.0, total);
  double x = uni(rng);
  for (const auto& [name, weight] : w) {
    if (x < weight) return name;
    x -= weight;
  }
  return w.back().first;
}

}  // namespace

Relation GenerateCars(size_t n, uint64_t seed) {
  Schema schema({{"oid", ValueType::kInt},
                 {"make", ValueType::kString},
                 {"category", ValueType::kString},
                 {"color", ValueType::kString},
                 {"transmission", ValueType::kString},
                 {"price", ValueType::kInt},
                 {"mileage", ValueType::kInt},
                 {"horsepower", ValueType::kInt},
                 {"year", ValueType::kInt},
                 {"fuel_economy", ValueType::kDouble},
                 {"insurance_rating", ValueType::kInt},
                 {"commission", ValueType::kInt}});
  Relation rel(schema);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 1.0);

  static const std::vector<std::pair<const char*, double>> kMakes = {
      {"Audi", 2},   {"BMW", 2},   {"VW", 3},     {"Opel", 3},
      {"Ford", 2},   {"Toyota", 2}, {"Mercedes", 1.5}, {"Fiat", 1.5}};
  static const std::vector<std::pair<const char*, double>> kCategories = {
      {"passenger", 5}, {"cabriolet", 1}, {"roadster", 0.7},
      {"suv", 2},       {"van", 1.2},     {"coupe", 1}};
  static const std::vector<std::pair<const char*, double>> kColors = {
      {"black", 3}, {"silver", 3}, {"white", 2.5}, {"gray", 2},
      {"blue", 2},  {"red", 1.5},  {"green", 0.8}, {"yellow", 0.4}};

  for (size_t i = 0; i < n; ++i) {
    std::string category = PickWeighted(rng, kCategories);
    bool sporty = category == "roadster" || category == "coupe" ||
                  category == "cabriolet";
    int year = 1992 + static_cast<int>(uni(rng) * 10);  // 1992..2001
    int horsepower =
        static_cast<int>((sporty ? 130 : 75) + uni(rng) * (sporty ? 140 : 90));
    int mileage = std::max(
        0, static_cast<int>((2002 - year) * 15000 * (0.5 + uni(rng))));
    // Price: base by horsepower and age, discounted by mileage, plus noise.
    double price = 2500.0 + horsepower * 95.0 - (2002 - year) * 900.0 -
                   mileage * 0.04 + noise(rng) * 1500.0;
    price = std::max(500.0, price);
    double fuel_economy =  // miles per gallon-ish: big engines drink more
        std::max(4.0, 42.0 - horsepower * 0.12 + noise(rng) * 3.0);
    int insurance = std::min(
        10, std::max(1, static_cast<int>(horsepower / 25 +
                                         (sporty ? 2 : 0) + uni(rng) * 2)));
    int commission = static_cast<int>(price * (0.02 + uni(rng) * 0.06));
    bool automatic = uni(rng) < (sporty ? 0.35 : 0.45);

    Tuple t;
    t.Append(static_cast<int64_t>(i + 1));
    t.Append(PickWeighted(rng, kMakes));
    t.Append(category);
    t.Append(PickWeighted(rng, kColors));
    t.Append(automatic ? "automatic" : "manual");
    t.Append(static_cast<int64_t>(price));
    t.Append(static_cast<int64_t>(mileage));
    t.Append(static_cast<int64_t>(horsepower));
    t.Append(static_cast<int64_t>(year));
    t.Append(fuel_economy);
    t.Append(static_cast<int64_t>(insurance));
    t.Append(static_cast<int64_t>(commission));
    rel.Add(std::move(t));
  }
  return rel;
}

Relation GenerateTrips(size_t n, uint64_t seed) {
  Schema schema({{"oid", ValueType::kInt},
                 {"destination", ValueType::kString},
                 {"start_date", ValueType::kInt},
                 {"duration", ValueType::kInt},
                 {"price", ValueType::kInt},
                 {"category", ValueType::kString}});
  Relation rel(schema);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  static const std::vector<std::pair<const char*, double>> kDest = {
      {"Mallorca", 3}, {"Crete", 2},   {"Tenerife", 2}, {"Rome", 1.5},
      {"Lisbon", 1},   {"Tunisia", 1}, {"Egypt", 1},    {"Cyprus", 1}};
  static const std::vector<std::pair<const char*, double>> kCat = {
      {"beach", 4}, {"city", 2}, {"cruise", 1}, {"adventure", 1}};
  static const int kDurations[] = {3, 5, 7, 10, 14, 21};
  for (size_t i = 0; i < n; ++i) {
    int duration = kDurations[static_cast<size_t>(uni(rng) * 6) % 6];
    int start = static_cast<int>(uni(rng) * 120);  // a four-month window
    int price = static_cast<int>(150 + duration * (40 + uni(rng) * 110));
    Tuple t;
    t.Append(static_cast<int64_t>(i + 1));
    t.Append(PickWeighted(rng, kDest));
    t.Append(static_cast<int64_t>(start));
    t.Append(static_cast<int64_t>(duration));
    t.Append(static_cast<int64_t>(price));
    t.Append(PickWeighted(rng, kCat));
    rel.Add(std::move(t));
  }
  return rel;
}

}  // namespace prefdb
