// Synthetic vector workloads in the convention of the skyline literature
// ([BKS01], referenced in Kießling §6.1): independent (uniform),
// correlated and anti-correlated d-dimensional point sets.

#ifndef PREFDB_DATAGEN_VECTORS_H_
#define PREFDB_DATAGEN_VECTORS_H_

#include <cstdint>
#include <string>

#include "relation/relation.h"

namespace prefdb {

enum class Correlation {
  kIndependent,
  kCorrelated,
  kAntiCorrelated,
};

const char* CorrelationName(Correlation c);

/// Generates n points with d coordinates in [0, 1), attributes named
/// "d0".."d{d-1}" (DOUBLE), deterministic in `seed`.
///  kIndependent:    coordinates i.i.d. uniform.
///  kCorrelated:     coordinates cluster around a shared per-point level —
///                   points good in one dimension tend to be good in all.
///  kAntiCorrelated: coordinates sum to ~1 — points good in one dimension
///                   tend to be bad in the others (large skylines).
Relation GenerateVectors(size_t n, size_t d, Correlation correlation,
                         uint64_t seed);

}  // namespace prefdb

#endif  // PREFDB_DATAGEN_VECTORS_H_
