#include "datagen/vectors.h"

#include <algorithm>
#include <random>

namespace prefdb {

const char* CorrelationName(Correlation c) {
  switch (c) {
    case Correlation::kIndependent: return "independent";
    case Correlation::kCorrelated: return "correlated";
    case Correlation::kAntiCorrelated: return "anti-correlated";
  }
  return "?";
}

Relation GenerateVectors(size_t n, size_t d, Correlation correlation,
                         uint64_t seed) {
  Schema schema;
  for (size_t i = 0; i < d; ++i) {
    schema.Add({"d" + std::to_string(i), ValueType::kDouble});
  }
  Relation rel(schema);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::normal_distribution<double> jitter(0.0, 0.08);
  auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    switch (correlation) {
      case Correlation::kIndependent: {
        for (size_t k = 0; k < d; ++k) t.Append(uni(rng));
        break;
      }
      case Correlation::kCorrelated: {
        double base = uni(rng);
        for (size_t k = 0; k < d; ++k) t.Append(clamp01(base + jitter(rng)));
        break;
      }
      case Correlation::kAntiCorrelated: {
        // Sample a point near the hyperplane sum(x) = 1 with noise: draw a
        // simplex point via normalized exponentials, then jitter.
        std::vector<double> e(d);
        double sum = 0;
        for (size_t k = 0; k < d; ++k) {
          e[k] = -std::log(1.0 - uni(rng));
          sum += e[k];
        }
        for (size_t k = 0; k < d; ++k) {
          t.Append(clamp01(e[k] / sum + jitter(rng)));
        }
        break;
      }
    }
    rel.Add(std::move(t));
  }
  return rel;
}

}  // namespace prefdb
