#include "mining/miner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"

namespace prefdb::mining {

namespace {

struct CategoricalStats {
  std::unordered_map<Value, size_t, ValueHash> offered;
  std::unordered_map<Value, size_t, ValueHash> picked;
  size_t total_offered = 0;
  size_t total_picked = 0;
};

struct NumericStats {
  std::vector<double> population;
  std::vector<double> chosen;
};

double Mean(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  return v.empty() ? 0 : sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0;
  double mean = Mean(v);
  double acc = 0;
  for (double x : v) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

// Fraction of population values strictly below x.
double Percentile(const std::vector<double>& population, double x) {
  if (population.empty()) return 0.5;
  size_t below = 0;
  for (double p : population) {
    if (p < x) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(population.size());
}

std::optional<MinedAttribute> MineCategorical(const std::string& attr,
                                              const CategoricalStats& stats,
                                              const MinerOptions& opt) {
  if (stats.total_picked == 0 || stats.total_offered == 0) return std::nullopt;
  double overall =
      static_cast<double>(stats.total_picked) / stats.total_offered;
  std::vector<Value> pos, neg;
  for (const auto& [value, offered] : stats.offered) {
    if (offered < opt.min_support) continue;
    auto it = stats.picked.find(value);
    size_t picked = it == stats.picked.end() ? 0 : it->second;
    double rate = static_cast<double>(picked) / offered;
    if (rate >= opt.pos_lift * overall) {
      pos.push_back(value);
    } else if (rate <= opt.neg_drop * overall) {
      neg.push_back(value);
    }
  }
  if (pos.empty() && neg.empty()) return std::nullopt;
  std::sort(pos.begin(), pos.end());
  std::sort(neg.begin(), neg.end());
  MinedAttribute out;
  out.attribute = attr;
  char evidence[160];
  std::snprintf(evidence, sizeof(evidence),
                "%zu favored / %zu avoided values (overall pick rate %.2f)",
                pos.size(), neg.size(), overall);
  out.evidence = evidence;
  if (!pos.empty() && !neg.empty()) {
    out.preference = PosNeg(attr, pos, neg);
  } else if (!pos.empty()) {
    out.preference = Pos(attr, pos);
  } else {
    out.preference = Neg(attr, neg);
  }
  return out;
}

std::optional<MinedAttribute> MineNumeric(const std::string& attr,
                                          const NumericStats& stats,
                                          const MinerOptions& opt) {
  if (stats.chosen.size() < opt.min_support) return std::nullopt;
  double mean_chosen = Mean(stats.chosen);
  double pct = Percentile(stats.population, mean_chosen);
  MinedAttribute out;
  out.attribute = attr;
  char evidence[160];
  if (pct <= opt.extremal_percentile) {
    out.preference = Lowest(attr);
    std::snprintf(evidence, sizeof(evidence),
                  "chosen mean at population percentile %.2f: LOWEST", pct);
    out.evidence = evidence;
    return out;
  }
  if (pct >= 1.0 - opt.extremal_percentile) {
    out.preference = Highest(attr);
    std::snprintf(evidence, sizeof(evidence),
                  "chosen mean at population percentile %.2f: HIGHEST", pct);
    out.evidence = evidence;
    return out;
  }
  double sd_chosen = StdDev(stats.chosen);
  double sd_population = StdDev(stats.population);
  if (sd_population > 0 && sd_chosen <= opt.cluster_ratio * sd_population) {
    out.preference = Around(attr, mean_chosen);
    std::snprintf(evidence, sizeof(evidence),
                  "chosen values clustered (sd ratio %.2f): AROUND %.1f",
                  sd_chosen / sd_population, mean_chosen);
    out.evidence = evidence;
    return out;
  }
  return std::nullopt;
}

}  // namespace

MiningResult MinePreferences(const std::vector<LogEntry>& log,
                             const MinerOptions& options) {
  MiningResult result;
  if (log.empty()) return result;
  const Schema& schema = log[0].shown.schema();
  for (const LogEntry& entry : log) {
    if (entry.shown.schema() != schema) {
      throw std::invalid_argument("log entries must share one schema");
    }
    for (size_t row : entry.chosen) {
      if (row >= entry.shown.size()) {
        throw std::invalid_argument("chosen row index out of range");
      }
    }
  }

  for (size_t col = 0; col < schema.size(); ++col) {
    const Attribute& attr = schema.at(col);
    bool numeric =
        attr.type == ValueType::kInt || attr.type == ValueType::kDouble;
    std::optional<MinedAttribute> mined;
    if (numeric) {
      NumericStats stats;
      for (const LogEntry& entry : log) {
        for (const Tuple& t : entry.shown.tuples()) {
          if (auto v = t[col].numeric()) stats.population.push_back(*v);
        }
        for (size_t row : entry.chosen) {
          if (auto v = entry.shown.at(row)[col].numeric()) {
            stats.chosen.push_back(*v);
          }
        }
      }
      mined = MineNumeric(attr.name, stats, options);
    } else {
      CategoricalStats stats;
      for (const LogEntry& entry : log) {
        for (const Tuple& t : entry.shown.tuples()) {
          ++stats.offered[t[col]];
          ++stats.total_offered;
        }
        for (size_t row : entry.chosen) {
          ++stats.picked[entry.shown.at(row)[col]];
          ++stats.total_picked;
        }
      }
      mined = MineCategorical(attr.name, stats, options);
    }
    if (mined) result.attributes.push_back(std::move(*mined));
  }

  if (!result.attributes.empty()) {
    std::vector<PrefPtr> prefs;
    for (const MinedAttribute& m : result.attributes) {
      prefs.push_back(m.preference);
    }
    result.combined = Pareto(prefs);
  }
  return result;
}

}  // namespace prefdb::mining
