// Preference mining from query logs (the paper's §7 outlook: "preference
// mining from query log files").
//
// Input: a click log — query result sets together with the rows the user
// actually chose. Output: a mined preference per attribute plus the
// composed Pareto term, using the paper's own constructors:
//
//   categorical attribute: values chosen significantly more often than
//     offered -> POS-set; values offered but (almost) never chosen while
//     alternatives existed -> NEG-set; both -> POS/NEG.
//   numeric attribute: chosen values at the low end -> LOWEST, at the
//     high end -> HIGHEST, tightly clustered in the middle -> AROUND(mean
//     of the chosen values); otherwise no evidence.
//
// The miner is deliberately simple and transparent — it demonstrates the
// feasibility of the roadmap item on the paper's own model, not a
// state-of-the-art learning method (see DESIGN.md).

#ifndef PREFDB_MINING_MINER_H_
#define PREFDB_MINING_MINER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/preference.h"
#include "relation/relation.h"

namespace prefdb::mining {

/// One logged interaction: the rows the user saw and the subset they chose.
struct LogEntry {
  Relation shown;
  std::vector<size_t> chosen;  // row indices into `shown`
};

struct MinerOptions {
  /// A categorical value joins the POS-set when
  /// P(chosen | value) >= pos_lift * P(chosen overall).
  double pos_lift = 2.0;
  /// A categorical value joins the NEG-set when it was offered at least
  /// `min_support` times and its pick rate is below neg_drop * overall.
  double neg_drop = 0.25;
  size_t min_support = 5;
  /// Numeric: mean percentile below -> LOWEST; above (1-x) -> HIGHEST.
  double extremal_percentile = 0.2;
  /// Numeric: chosen std-dev below this fraction of the population
  /// std-dev counts as "clustered" -> AROUND.
  double cluster_ratio = 0.5;
};

/// Evidence mined for one attribute (null preference = no evidence).
struct MinedAttribute {
  std::string attribute;
  PrefPtr preference;        // POS/NEG/POS-NEG/LOWEST/HIGHEST/AROUND
  std::string evidence;      // human-readable justification
};

struct MiningResult {
  std::vector<MinedAttribute> attributes;
  /// Pareto accumulation of all mined attribute preferences (nullptr when
  /// nothing was mined).
  PrefPtr combined;
};

/// Mines preferences from a log. All entries must share one schema
/// (std::invalid_argument otherwise).
MiningResult MinePreferences(const std::vector<LogEntry>& log,
                             const MinerOptions& options = {});

}  // namespace prefdb::mining

#endif  // PREFDB_MINING_MINER_H_
