#include "engine/engine.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <functional>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "eval/bmo_internal.h"
#include "eval/optimizer.h"
#include "eval/ranked.h"
#include "exec/parallel_bmo.h"
#include "exec/score_table.h"
#include "psql/translator.h"

namespace prefdb {

namespace engine_internal {

/// Data-independent half of a statement: parsed AST + translated
/// preference term. Immutable once cached; shared by every PreparedQuery
/// and exec-cache entry for the statement.
struct Plan {
  psql::SelectStatement stmt;
  PrefPtr preference;  // translated PREFERRING/CASCADE chain; may be null
  std::string key;     // normalized statement text (plan-cache key)
  uint64_t parse_ns = 0;
  uint64_t translate_ns = 0;
};

/// Data-dependent half: everything derivable from (plan, table snapshot,
/// options) that repeated Run() calls should not redo — the WHERE row
/// set, the optimizer decision, the projection index and the compiled
/// score table. Immutable once built; concurrent Run() calls share it.
struct Exec {
  std::string table_name;
  uint64_t version = 0;
  std::shared_ptr<const Relation> snapshot;
  /// True when filtered_rows is a proper subset view; false means "all
  /// rows" (no identity vector is materialized for WHERE-less statements).
  bool use_row_subset = false;
  /// The candidate pool: WHERE survivors — and for ranked queries, the
  /// BUT ONLY quality bound too (ranking draws from qualifying rows, so
  /// TOP k fills k whenever k qualifying rows exist).
  std::vector<size_t> filtered_rows;
  std::function<bool(const Tuple&)> but_only;  // null when absent
  std::string preference_term;
  std::string plan_prefix;   // scan -> where -> bmo/ranked stage
  std::string plan_details;  // optimizer / ranked EXPLAIN text
  std::string kernel_variant;  // BMO kernel label (QueryStats.kernel)
  // BMO block path (ungrouped, non-decomposition): kernel inputs.
  bool block_path = false;
  PrefPtr exec_pref;  // term actually evaluated (simplified when routed)
  BmoAlgorithm exec_algo = BmoAlgorithm::kAuto;
  ProjectionIndex proj;  // distinct projections over filtered_rows
  std::optional<ScoreTable> score_table;
  // BMO fallback path (GROUPING / decomposition): materialized WHERE
  // result for the relation-level evaluators.
  std::shared_ptr<const Relation> filtered;
  bool grouped = false;
  // Ranked path (§6.2): bound utility + deterministic group order.
  bool ranked = false;
  ScoreFn utility;
  std::vector<std::vector<size_t>> ranked_groups;  // first-occurrence order
  uint64_t optimize_ns = 0;
  uint64_t compile_ns = 0;
};

}  // namespace engine_internal

namespace {

using engine_internal::Exec;
using engine_internal::Plan;
using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point begin, Clock::time_point end) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

// Option fields that change the compiled exec state: algorithm choice
// inputs, the vectorization switch and the kernel policy.
std::string OptionsSignature(const BmoOptions& o) {
  return std::to_string(static_cast<int>(o.algorithm)) + ":" +
         std::to_string(o.num_threads) + ":" +
         std::to_string(o.parallel_threshold) + ":" +
         (o.vectorize ? "v" : "c") + ":" + SimdModeName(o.simd) + ":" +
         std::to_string(o.bnl_tile_rows);
}

std::string TopKText(size_t k) {
  return k > 0 ? "k=" + std::to_string(k) : "k=all";
}

// Builds the exec entry for (plan, snapshot, options). Heavy: runs the
// WHERE filter, the optimizer and the score-table compiler. Called
// without engine locks; everything it touches is immutable shared state.
std::shared_ptr<const Exec> BuildExec(const Plan& plan,
                                      const BmoOptions& options,
                                      std::shared_ptr<const Relation> snapshot,
                                      uint64_t version) {
  const psql::SelectStatement& stmt = plan.stmt;
  auto exec = std::make_shared<Exec>();
  exec->table_name = stmt.table;
  exec->version = version;
  exec->snapshot = std::move(snapshot);
  const Relation& table = *exec->snapshot;

  std::string plan_str = "scan(" + stmt.table + ")";

  // Hard selection (exact-match world). Row indices, not a copy; the
  // WHERE-less case keeps "all rows" implicit instead of materializing an
  // identity vector per cached entry.
  Clock::time_point t0 = Clock::now();
  if (stmt.where) {
    auto pred = psql::CompileCondition(*stmt.where, table.schema());
    for (size_t i = 0; i < table.size(); ++i) {
      if (pred(table.at(i))) exec->filtered_rows.push_back(i);
    }
    exec->use_row_subset = true;
    plan_str += " -> where[" + stmt.where->ToString() + "]";
  }
  exec->compile_ns += ElapsedNs(t0, Clock::now());

  const PrefPtr& preference = plan.preference;
  if (stmt.ranked && !preference) {
    // Unreachable through the parser; guards hand-built statements.
    throw std::invalid_argument("TOP/RANKED requires a PREFERRING clause");
  }

  // Quality supervision predicate (throws without a preference, exactly
  // like the legacy executor).
  if (stmt.but_only) {
    exec->but_only = psql::CompileQualityCondition(*stmt.but_only, preference,
                                                   table.schema());
  }

  if (preference && stmt.ranked) {
    // §6.2 ranked model: descending combined utility instead of BMO.
    exec->ranked = true;
    exec->preference_term = preference->ToString();
    t0 = Clock::now();
    exec->utility = BindRankedUtility(preference, table.schema());
    exec->optimize_ns += ElapsedNs(t0, Clock::now());
    t0 = Clock::now();
    if (exec->but_only) {
      // Unlike BMO (where BUT ONLY supervises the best-matches result),
      // ranking draws from the qualifying pool: TOP k returns k rows
      // whenever k rows satisfy the quality bound.
      std::vector<size_t> pool;
      const size_t n =
          exec->use_row_subset ? exec->filtered_rows.size() : table.size();
      for (size_t i = 0; i < n; ++i) {
        size_t row = exec->use_row_subset ? exec->filtered_rows[i] : i;
        if (exec->but_only(table.at(row))) pool.push_back(row);
      }
      exec->filtered_rows = std::move(pool);
      exec->use_row_subset = true;
      plan_str += " -> but_only[" + stmt.but_only->ToString() + "]";
    }
    if (!stmt.grouping.empty()) {
      // Def. 16 grouping under the ranked model: top k per group, groups
      // in deterministic first-occurrence order of the candidate pool.
      std::vector<size_t> cols = table.ResolveColumns(stmt.grouping);
      std::unordered_map<Tuple, size_t, TupleHash> group_of;
      const size_t n =
          exec->use_row_subset ? exec->filtered_rows.size() : table.size();
      for (size_t i = 0; i < n; ++i) {
        size_t row = exec->use_row_subset ? exec->filtered_rows[i] : i;
        Tuple key = table.at(row).Project(cols);
        auto [it, inserted] =
            group_of.emplace(std::move(key), exec->ranked_groups.size());
        if (inserted) exec->ranked_groups.emplace_back();
        exec->ranked_groups[it->second].push_back(row);
      }
      plan_str += " -> ranked_groupby[" + exec->preference_term + ", " +
                  TopKText(stmt.top_k) + "]";
    } else {
      plan_str += " -> ranked[" + exec->preference_term + ", " +
                  TopKText(stmt.top_k) + "]";
    }
    exec->compile_ns += ElapsedNs(t0, Clock::now());
    if (stmt.explain) {
      exec->plan_details =
          "preference: " + exec->preference_term + "\n" +
          "model: ranked (k-best, §6.2); " + TopKText(stmt.top_k) +
          "\n" +
          "utility: " +
          (dynamic_cast<const RankPreference*>(preference.get()) != nullptr
               ? "rank(F) combined utility"
               : "derived single sort key") +
          ", descending; ties broken by input order\n";
    }
  } else if (preference) {
    exec->preference_term = preference->ToString();
    // Mirror the legacy executor's routing: the optimizer runs for
    // EXPLAIN or kAuto; an explicit algorithm skips rewrites.
    PrefPtr exec_pref = preference;
    BmoAlgorithm algo = options.algorithm;
    const size_t pool_size =
        exec->use_row_subset ? exec->filtered_rows.size() : table.size();
    if (stmt.explain || options.algorithm == BmoAlgorithm::kAuto) {
      t0 = Clock::now();
      OptimizedQuery optimized =
          Optimize(table.schema(), pool_size, preference, options);
      exec->optimize_ns += ElapsedNs(t0, Clock::now());
      if (stmt.explain) exec->plan_details = optimized.Explain();
      exec_pref = optimized.simplified;
      algo = optimized.choice.algorithm;
    }
    exec->exec_pref = exec_pref;
    exec->exec_algo = algo;

    const KernelPolicy policy = KernelPolicy::From(options);
    if (stmt.grouping.empty() && algo != BmoAlgorithm::kDecomposition) {
      // Block path: precompute the distinct-value index and compile the
      // score table once; Run() then does only the kernel work.
      exec->block_path = true;
      t0 = Clock::now();
      exec->proj = BuildProjectionIndex(
          table, *exec_pref,
          exec->use_row_subset ? &exec->filtered_rows : nullptr);
      if (options.vectorize && !exec->proj.values.empty()) {
        exec->score_table =
            ScoreTable::Compile(exec_pref, exec->proj.proj_schema,
                                exec->proj.values.data(),
                                exec->proj.values.size());
      }
      exec->compile_ns += ElapsedNs(t0, Clock::now());
      if (exec->score_table) {
        const std::string variant = exec->score_table->KernelVariant(
            algo == BmoAlgorithm::kParallel ? BmoAlgorithm::kAuto : algo,
            policy);
        exec->kernel_variant = algo == BmoAlgorithm::kParallel
                                   ? "parallel+" + variant
                                   : variant;
      } else {
        exec->kernel_variant = "closure";
      }
    } else {
      // GROUPING / decomposition run through the relation-level
      // evaluators; materialize the WHERE result once and share it.
      t0 = Clock::now();
      exec->filtered =
          stmt.where ? std::make_shared<const Relation>(
                           table.SelectRows(exec->filtered_rows))
                     : exec->snapshot;
      exec->grouped = !stmt.grouping.empty();
      exec->compile_ns += ElapsedNs(t0, Clock::now());
      if (algo == BmoAlgorithm::kDecomposition) {
        exec->kernel_variant = "closure";  // Prop 11 cascade, closure order
      } else if (options.vectorize &&
                 ScoreTable::CompilableTerm(exec_pref)) {
        const simd::KernelOps* ops = simd::ResolveKernel(policy.simd);
        exec->kernel_variant =
            std::string("per-group[") + (ops ? ops->name : "rowwise") + "]";
      } else {
        exec->kernel_variant = "closure";
      }
    }
    plan_str += std::string(stmt.grouping.empty() ? " -> bmo[" : " -> bmo_groupby[") +
                exec_pref->ToString() + ", " + BmoAlgorithmName(algo) +
                ", kernel=" + exec->kernel_variant + "]";
    if (stmt.explain && !exec->plan_details.empty()) {
      exec->plan_details += "kernel: " + exec->kernel_variant + "\n";
    }
  }

  exec->plan_prefix = std::move(plan_str);
  return exec;
}

// Executes a compiled plan: kernel work + materialization only. Pure
// function of immutable shared state — safe to run concurrently.
psql::QueryResult ExecuteExec(const Plan& plan, const Exec& exec,
                              const BmoOptions& options) {
  const psql::SelectStatement& stmt = plan.stmt;
  const Relation& table = *exec.snapshot;
  psql::QueryResult result;
  result.preference_term = exec.preference_term;
  result.plan_details = exec.plan_details;
  std::string plan_str = exec.plan_prefix;

  Relation current;
  std::vector<double> utilities;
  const bool subset = exec.use_row_subset;
  const size_t pool_size = subset ? exec.filtered_rows.size() : table.size();

  if (exec.ranked) {
    // WHERE and BUT ONLY were folded into the candidate pool at compile.
    std::vector<size_t> rows;
    if (!stmt.grouping.empty()) {
      for (const auto& group : exec.ranked_groups) {
        RankedRows rr = TopKRows(table, exec.utility, stmt.top_k, &group);
        for (size_t i = 0; i < rr.rows.size(); ++i) {
          rows.push_back(group[rr.rows[i]]);
          utilities.push_back(rr.utilities[i]);
        }
      }
    } else {
      RankedRows rr = TopKRows(table, exec.utility, stmt.top_k,
                               subset ? &exec.filtered_rows : nullptr);
      for (size_t i = 0; i < rr.rows.size(); ++i) {
        rows.push_back(subset ? exec.filtered_rows[rr.rows[i]] : rr.rows[i]);
        utilities.push_back(rr.utilities[i]);
      }
    }
    current = table.SelectRows(rows);
  } else if (plan.preference) {
    if (exec.block_path) {
      const size_t m = exec.proj.values.size();
      std::vector<size_t> rows;
      if (m > 0) {
        std::vector<bool> maximal;
        if (exec.exec_algo == BmoAlgorithm::kParallel) {
          ParallelBmoConfig config;
          config.num_threads = options.num_threads;
          config.vectorize = options.vectorize;
          config.simd = options.simd;
          config.bnl_tile_rows = options.bnl_tile_rows;
          maximal = MaximaParallel(
              exec.proj.values, exec.exec_pref, exec.proj.proj_schema, config,
              exec.score_table ? &*exec.score_table : nullptr);
        } else if (exec.score_table) {
          maximal = exec.score_table->MaximaRange(
              exec.exec_algo, 0, m, KernelPolicy::From(options));
        } else {
          maximal = internal::ComputeMaximaBlock(
              exec.proj.values.data(), m, exec.exec_pref,
              exec.proj.proj_schema, exec.exec_algo, /*vectorize=*/false);
        }
        for (size_t i = 0; i < pool_size; ++i) {
          if (maximal[exec.proj.row_to_value[i]]) {
            rows.push_back(subset ? exec.filtered_rows[i] : i);
          }
        }
      }
      current = table.SelectRows(rows);
    } else {
      BmoOptions run_options = options;
      run_options.algorithm = exec.exec_algo;
      current = exec.grouped
                    ? BmoGroupBy(*exec.filtered, exec.exec_pref,
                                 stmt.grouping, run_options)
                    : Bmo(*exec.filtered, exec.exec_pref, run_options);
    }
    if (exec.but_only) {
      current = current.Filter(exec.but_only);
      plan_str += " -> but_only[" + stmt.but_only->ToString() + "]";
    }
  } else {
    current = stmt.where ? table.SelectRows(exec.filtered_rows) : table;
  }

  // Projection.
  if (!stmt.select_list.empty()) {
    current = current.Project(stmt.select_list);
    plan_str += " -> project";
  }

  // LIMIT.
  if (stmt.limit > 0 && current.size() > stmt.limit) {
    std::vector<size_t> head(stmt.limit);
    std::iota(head.begin(), head.end(), 0);
    current = current.SelectRows(head);
    plan_str += " -> limit " + std::to_string(stmt.limit);
  }
  if (exec.ranked && utilities.size() > current.size()) {
    utilities.resize(current.size());
  }

  result.relation = std::move(current);
  result.utilities = std::move(utilities);
  result.plan = std::move(plan_str);
  return result;
}

}  // namespace

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_string) {
      out += c;
      if (c == '\'') in_string = false;
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;  // SQL line comment
      pending_space = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out += ' ';
    pending_space = false;
    out += c;
    if (c == '\'') in_string = true;
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

// ---------------------------------------------------------------------------
// PreparedQuery

psql::QueryResult PreparedQuery::Run() const { return Run(options_); }

psql::QueryResult PreparedQuery::Run(const BmoOptions& options) const {
  psql::QueryStats stats;
  stats.plan_cache_hit = true;  // the prepared plan is already bound
  return engine_->RunWithStats(*plan_, options, stats, Clock::now());
}

const psql::SelectStatement& PreparedQuery::statement() const {
  return plan_->stmt;
}

const std::string& PreparedQuery::normalized_sql() const { return plan_->key; }

std::string PreparedQuery::preference_term() const {
  return plan_->preference ? plan_->preference->ToString() : "";
}

// ---------------------------------------------------------------------------
// Engine

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

Engine::Engine(const psql::Catalog& catalog, EngineOptions options)
    : options_(std::move(options)), catalog_(catalog) {}

void Engine::RegisterTable(const std::string& name, Relation relation) {
  std::lock_guard<std::mutex> lock(mu_);
  catalog_.Register(name, std::move(relation));
  InvalidateTable(name);
}

void Engine::Insert(const std::string& name, Tuple row) {
  // Copy-on-write: readers keep their snapshot, the catalog swaps in the
  // appended relation under a bumped version. The O(n) copy runs outside
  // the engine mutex so concurrent queries never stall behind it; a
  // version check before the swap restarts the copy if another mutation
  // won the race.
  for (;;) {
    std::shared_ptr<const Relation> snapshot;
    uint64_t version = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot = catalog_.GetShared(name);  // throws when unknown
      version = catalog_.Version(name);
    }
    Relation next = *snapshot;
    next.Add(row);
    std::lock_guard<std::mutex> lock(mu_);
    if (catalog_.Version(name) != version) continue;  // raced; redo the copy
    catalog_.Register(name, std::move(next));
    InvalidateTable(name);
    return;
  }
}

bool Engine::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.Has(name);
}

std::shared_ptr<const Relation> Engine::Snapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.GetShared(name);
}

uint64_t Engine::TableVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.Version(name);
}

std::vector<std::string> Engine::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.TableNames();
}

void Engine::InvalidateTable(const std::string& name) {
  for (auto it = exec_cache_.begin(); it != exec_cache_.end();) {
    if (it->second->table_name == name) {
      it = exec_cache_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

std::shared_ptr<const engine_internal::Plan> Engine::GetOrBuildPlan(
    const std::string& sql, psql::QueryStats* stats) {
  std::string key = NormalizeSql(sql);
  if (options_.enable_plan_cache) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      ++stats_.plan_hits;
      stats->plan_cache_hit = true;
      return it->second;
    }
  }
  auto plan = std::make_shared<Plan>();
  Clock::time_point t0 = Clock::now();
  plan->stmt = psql::Parse(sql);
  Clock::time_point t1 = Clock::now();
  plan->preference = psql::TranslatePreferenceChain(plan->stmt.preferring);
  Clock::time_point t2 = Clock::now();
  plan->parse_ns = ElapsedNs(t0, t1);
  plan->translate_ns = ElapsedNs(t1, t2);
  plan->key = std::move(key);
  stats->parse_ns = plan->parse_ns;
  stats->translate_ns = plan->translate_ns;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.plan_misses;
  if (options_.enable_plan_cache) {
    // A racing Prepare may have inserted first; the entries are identical.
    return plan_cache_.emplace(plan->key, plan).first->second;
  }
  return plan;
}

std::shared_ptr<const engine_internal::Plan> Engine::GetOrBuildPlan(
    const psql::SelectStatement& stmt, psql::QueryStats* stats) {
  std::string key = stmt.ToString();
  if (options_.enable_plan_cache) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      ++stats_.plan_hits;
      stats->plan_cache_hit = true;
      return it->second;
    }
  }
  auto plan = std::make_shared<Plan>();
  plan->stmt = stmt;
  Clock::time_point t0 = Clock::now();
  plan->preference = psql::TranslatePreferenceChain(stmt.preferring);
  plan->translate_ns = ElapsedNs(t0, Clock::now());
  plan->key = std::move(key);
  stats->translate_ns = plan->translate_ns;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.plan_misses;
  if (options_.enable_plan_cache) {
    return plan_cache_.emplace(plan->key, plan).first->second;
  }
  return plan;
}

std::shared_ptr<const engine_internal::Exec> Engine::GetOrBuildExec(
    const engine_internal::Plan& plan, const BmoOptions& options,
    psql::QueryStats* stats) {
  std::shared_ptr<const Relation> snapshot;
  uint64_t version = 0;
  std::string key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = catalog_.GetShared(plan.stmt.table);  // throws when unknown
    version = catalog_.Version(plan.stmt.table);
    if (options_.enable_exec_cache) {
      key = plan.key + "|" + OptionsSignature(options) + "|v" +
            std::to_string(version);
      auto it = exec_cache_.find(key);
      if (it != exec_cache_.end()) {
        ++stats_.exec_hits;
        stats->exec_cache_hit = true;
        return it->second;
      }
    }
  }
  // Build outside the lock: compilation may be heavy and must not block
  // concurrent queries. A racing build of the same key produces an
  // identical immutable entry; last writer wins.
  std::shared_ptr<const Exec> exec =
      BuildExec(plan, options, std::move(snapshot), version);
  stats->optimize_ns = exec->optimize_ns;
  stats->compile_ns = exec->compile_ns;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.exec_misses;
  // Don't cache an entry whose table version was bumped (and invalidated)
  // while we built: it could never be hit again and would pin the stale
  // snapshot + score table until the table's next mutation.
  if (options_.enable_exec_cache &&
      catalog_.Version(plan.stmt.table) == version) {
    exec_cache_[key] = exec;
  }
  return exec;
}

psql::QueryResult Engine::RunWithStats(const engine_internal::Plan& plan,
                                       const BmoOptions& options,
                                       psql::QueryStats stats,
                                       std::chrono::steady_clock::time_point t0) {
  std::shared_ptr<const Exec> exec = GetOrBuildExec(plan, options, &stats);
  Clock::time_point t1 = Clock::now();
  psql::QueryResult result = ExecuteExec(plan, *exec, options);
  Clock::time_point t2 = Clock::now();
  stats.execute_ns = ElapsedNs(t1, t2);
  stats.total_ns = ElapsedNs(t0, t2);
  stats.kernel = exec->kernel_variant;
  result.stats = stats;
  if (plan.stmt.explain) {
    result.plan_details += "timing: " + stats.ToString() + "\n";
  }
  return result;
}

PreparedQuery Engine::Prepare(const std::string& sql) {
  return Prepare(sql, options_.bmo);
}

PreparedQuery Engine::Prepare(const std::string& sql,
                              const BmoOptions& options) {
  psql::QueryStats ignored;
  return PreparedQuery(this, GetOrBuildPlan(sql, &ignored), options);
}

PreparedQuery Engine::Prepare(const psql::SelectStatement& stmt) {
  return Prepare(stmt, options_.bmo);
}

PreparedQuery Engine::Prepare(const psql::SelectStatement& stmt,
                              const BmoOptions& options) {
  psql::QueryStats ignored;
  return PreparedQuery(this, GetOrBuildPlan(stmt, &ignored), options);
}

psql::QueryResult Engine::Execute(const std::string& sql) {
  return Execute(sql, options_.bmo);
}

psql::QueryResult Engine::Execute(const std::string& sql,
                                  const BmoOptions& options) {
  Clock::time_point t0 = Clock::now();
  psql::QueryStats stats;
  auto plan = GetOrBuildPlan(sql, &stats);
  return RunWithStats(*plan, options, stats, t0);
}

psql::QueryResult Engine::Execute(const psql::SelectStatement& stmt) {
  return Execute(stmt, options_.bmo);
}

psql::QueryResult Engine::Execute(const psql::SelectStatement& stmt,
                                  const BmoOptions& options) {
  Clock::time_point t0 = Clock::now();
  psql::QueryStats stats;
  auto plan = GetOrBuildPlan(stmt, &stats);
  return RunWithStats(*plan, options, stats, t0);
}

std::shared_ptr<const engine_internal::Plan> Engine::BuildTermPlan(
    const std::string& table, const PrefPtr& preference, bool ranked,
    size_t top_k) {
  if (!preference) {
    throw std::invalid_argument("a preference term is required");
  }
  // Synthetic statement: SELECT * FROM table with the term attached
  // directly (no SQL rendering exists for every term, e.g. rank(F)).
  // The "term:"/"ranked:" prefixes cannot collide with SQL plan keys —
  // such a text would fail to parse before insertion. The key includes
  // the term's object identity because ToString() is not injective
  // (SubsetPreference renders only its subset size, rank(F) only its
  // function name); the cached plan's shared_ptr keeps the object alive,
  // so its address cannot be reused by a different live term.
  char identity[32];
  std::snprintf(identity, sizeof(identity), "%p",
                static_cast<const void*>(preference.get()));
  std::string key = (ranked ? "ranked:k=" + std::to_string(top_k) + ":"
                            : std::string("term:")) +
                    table + "@" + identity + ":" + preference->ToString();
  if (options_.enable_plan_cache) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      ++stats_.plan_hits;
      return it->second;
    }
  }
  auto plan = std::make_shared<Plan>();
  plan->stmt.table = table;
  plan->stmt.ranked = ranked;
  plan->stmt.top_k = top_k;
  plan->preference = preference;
  plan->key = std::move(key);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.plan_misses;
  if (options_.enable_plan_cache) {
    return plan_cache_.emplace(plan->key, plan).first->second;
  }
  return plan;
}

PreparedQuery Engine::Prepare(const std::string& table,
                              const PrefPtr& preference) {
  return Prepare(table, preference, options_.bmo);
}

PreparedQuery Engine::Prepare(const std::string& table,
                              const PrefPtr& preference,
                              const BmoOptions& options) {
  return PreparedQuery(
      this, BuildTermPlan(table, preference, /*ranked=*/false, 0), options);
}

PreparedQuery Engine::PrepareRanked(const std::string& table,
                                    const PrefPtr& preference, size_t top_k) {
  return PreparedQuery(
      this, BuildTermPlan(table, preference, /*ranked=*/true, top_k),
      options_.bmo);
}

void Engine::StorePreference(const std::string& name,
                             const PrefPtr& preference) {
  std::lock_guard<std::mutex> lock(mu_);
  repository_.Store(name, preference);
}

PrefPtr Engine::GetPreference(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return repository_.Get(name);
}

PreparedQuery Engine::PrepareStored(const std::string& table,
                                    const std::string& name) {
  PrefPtr preference = GetPreference(name);
  if (!preference) {
    throw std::out_of_range("no stored preference named '" + name + "'");
  }
  return Prepare(table, preference);
}

void Engine::LoadRepository(PreferenceRepository repository) {
  std::lock_guard<std::mutex> lock(mu_);
  repository_ = std::move(repository);
}

PreferenceRepository Engine::Repository() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repository_;
}

Engine::CacheStats Engine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Engine::ClearCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  plan_cache_.clear();
  exec_cache_.clear();
}

}  // namespace prefdb
