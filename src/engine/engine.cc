#include "engine/engine.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <functional>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "eval/bmo_internal.h"
#include "eval/optimizer.h"
#include "eval/ranked.h"
#include "exec/parallel_bmo.h"
#include "exec/score_table.h"
#include "exec/thread_pool.h"
#include "psql/error.h"
#include "psql/translator.h"

namespace prefdb {

namespace engine_internal {

/// Data-independent half of a statement: parsed AST + translated
/// preference term. Immutable once cached; shared by every PreparedQuery
/// and exec-cache entry for the statement.
struct Plan {
  psql::SelectStatement stmt;
  PrefPtr preference;  // translated PREFERRING/CASCADE chain; may be null
  std::string key;     // normalized statement text (plan-cache key)
  uint64_t parse_ns = 0;
  uint64_t translate_ns = 0;
};

/// Data-dependent half: everything derivable from (plan, table snapshot,
/// options) that repeated Run() calls should not redo — the WHERE row
/// set, the PhysicalPlan, the projection index and the compiled score
/// table (per group for GROUPING statements). Immutable once built;
/// concurrent Run() calls share it.
struct Exec {
  std::string table_name;
  uint64_t version = 0;
  std::shared_ptr<const Relation> snapshot;
  /// True when filtered_rows is a proper subset view; false means "all
  /// rows" (no identity vector is materialized for WHERE-less statements).
  bool use_row_subset = false;
  /// The candidate pool: WHERE survivors — and for ranked queries, the
  /// BUT ONLY quality bound too (ranking draws from qualifying rows, so
  /// TOP k fills k whenever k qualifying rows exist).
  std::vector<size_t> filtered_rows;
  std::function<bool(const Tuple&)> but_only;  // null when absent
  std::string preference_term;
  std::string plan_prefix;   // scan -> where -> bmo/ranked stage
  std::string plan_details;  // optimizer / ranked EXPLAIN text
  std::string kernel_variant;  // BMO kernel label (QueryStats.kernel)
  PrefPtr exec_pref;  // term actually evaluated (simplified when routed)
  /// The planned artifact: algorithm, kernel fields, parallel shape,
  /// statistics and the per-algorithm cost table.
  PhysicalPlan plan;
  // BMO block path (ungrouped, non-decomposition): kernel inputs.
  bool block_path = false;
  // Zero-copy compile: score_table was built straight off the snapshot's
  // column buffers (no projection index; proj.values stays empty) and its
  // row i is candidate-pool position i — maximal flags map back by
  // identity.
  bool zero_copy = false;
  ProjectionIndex proj;  // distinct projections over filtered_rows
  std::optional<ScoreTable> score_table;
  // GROUPING path (non-decomposition): per-group cached plans + compiled
  // state, so warm runs do only per-group kernel work.
  struct GroupExec {
    std::vector<size_t> rows;  // global row indices of the group
    ProjectionIndex proj;
    std::optional<ScoreTable> table;
    PhysicalPlan plan;
  };
  std::vector<GroupExec> groups;
  bool grouped = false;
  // Decomposition path: materialized WHERE result for the relation-level
  // cascade evaluator (null otherwise).
  std::shared_ptr<const Relation> filtered;
  // IVM-refreshed entry (subscribed statements): filtered_rows IS the
  // maintained result set, so execution is pure row materialization —
  // no kernel work. Written by Engine::RefreshViewExec on mutation.
  bool ivm = false;
  // Ranked path (§6.2): bound utility + deterministic group order.
  bool ranked = false;
  ScoreFn utility;
  std::vector<std::vector<size_t>> ranked_groups;  // first-occurrence order
  uint64_t optimize_ns = 0;
  uint64_t compile_ns = 0;
};

}  // namespace engine_internal

namespace {

using engine_internal::Exec;
using engine_internal::Plan;
using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point begin, Clock::time_point end) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

// Option fields that change the compiled exec state: algorithm choice
// inputs, the vectorization switch and the kernel policy.
std::string OptionsSignature(const BmoOptions& o) {
  return std::to_string(static_cast<int>(o.algorithm)) + ":" +
         std::to_string(o.num_threads) + ":" +
         std::to_string(o.parallel_threshold) + ":" +
         (o.vectorize ? "v" : "c") + ":" + SimdModeName(o.simd) + ":" +
         std::to_string(o.bnl_tile_rows);
}

std::string TopKText(size_t k) {
  return k > 0 ? "k=" + std::to_string(k) : "k=all";
}

// Buckets the candidate pool by its projection onto `cols`, groups in
// first-occurrence order; rows are global indices. Shared by the ranked
// and BMO GROUPING paths.
std::vector<std::vector<size_t>> GroupPoolRows(
    const Relation& table, const std::vector<size_t>& cols, bool subset,
    const std::vector<size_t>& filtered_rows, size_t pool_size) {
  // Columnar equality coding instead of per-row Tuple::Project + hashing;
  // codes come out in first-occurrence order, matching the old map.
  GroupCoding coding =
      ComputeGroupCoding(table, cols, subset ? &filtered_rows : nullptr);
  std::vector<std::vector<size_t>> groups(coding.num_groups);
  for (size_t i = 0; i < pool_size; ++i) {
    groups[coding.codes[i]].push_back(subset ? filtered_rows[i] : i);
  }
  return groups;
}

// Builds the exec entry for (plan, snapshot, options). Heavy: runs the
// WHERE filter, the statistics-driven planner and the score-table
// compiler. Called without engine locks; everything it touches is
// immutable shared state. `table_stats` is the engine's per-table
// statistics snapshot (may be null when the plan is explicit and no
// EXPLAIN is requested).
std::shared_ptr<const Exec> BuildExec(const Plan& plan,
                                      const BmoOptions& options,
                                      std::shared_ptr<const Relation> snapshot,
                                      uint64_t version,
                                      const TableStats* table_stats) {
  const psql::SelectStatement& stmt = plan.stmt;
  auto exec = std::make_shared<Exec>();
  exec->table_name = stmt.table;
  exec->version = version;
  exec->snapshot = std::move(snapshot);
  const Relation& table = *exec->snapshot;

  std::string plan_str = "scan(" + stmt.table + ")";

  // Hard selection (exact-match world). Row indices, not a copy; the
  // WHERE-less case keeps "all rows" implicit instead of materializing an
  // identity vector per cached entry.
  Clock::time_point t0 = Clock::now();
  if (stmt.where) {
    auto pred = psql::CompileCondition(*stmt.where, table.schema());
    for (size_t i = 0; i < table.size(); ++i) {
      if (pred(table.RowAt(i))) exec->filtered_rows.push_back(i);
    }
    exec->use_row_subset = true;
    plan_str += " -> where[" + stmt.where->ToString() + "]";
  }
  exec->compile_ns += ElapsedNs(t0, Clock::now());

  const PrefPtr& preference = plan.preference;
  if (stmt.ranked && !preference) {
    // Unreachable through the parser; guards hand-built statements.
    throw std::invalid_argument("TOP/RANKED requires a PREFERRING clause");
  }

  // Quality supervision predicate (throws without a preference, exactly
  // like the legacy executor).
  if (stmt.but_only) {
    exec->but_only = psql::CompileQualityCondition(*stmt.but_only, preference,
                                                   table.schema());
  }

  if (preference && stmt.ranked) {
    // §6.2 ranked model: descending combined utility instead of BMO.
    exec->ranked = true;
    exec->preference_term = preference->ToString();
    t0 = Clock::now();
    exec->utility = BindRankedUtility(preference, table.schema());
    exec->optimize_ns += ElapsedNs(t0, Clock::now());
    t0 = Clock::now();
    if (exec->but_only) {
      // Unlike BMO (where BUT ONLY supervises the best-matches result),
      // ranking draws from the qualifying pool: TOP k returns k rows
      // whenever k rows satisfy the quality bound.
      std::vector<size_t> pool;
      const size_t n =
          exec->use_row_subset ? exec->filtered_rows.size() : table.size();
      for (size_t i = 0; i < n; ++i) {
        size_t row = exec->use_row_subset ? exec->filtered_rows[i] : i;
        if (exec->but_only(table.RowAt(row))) pool.push_back(row);
      }
      exec->filtered_rows = std::move(pool);
      exec->use_row_subset = true;
      plan_str += " -> but_only[" + stmt.but_only->ToString() + "]";
    }
    if (!stmt.grouping.empty()) {
      // Def. 16 grouping under the ranked model: top k per group, groups
      // in deterministic first-occurrence order of the candidate pool.
      const size_t n =
          exec->use_row_subset ? exec->filtered_rows.size() : table.size();
      exec->ranked_groups =
          GroupPoolRows(table, table.ResolveColumns(stmt.grouping),
                        exec->use_row_subset, exec->filtered_rows, n);
      plan_str += " -> ranked_groupby[" + exec->preference_term + ", " +
                  TopKText(stmt.top_k) + "]";
    } else {
      plan_str += " -> ranked[" + exec->preference_term + ", " +
                  TopKText(stmt.top_k) + "]";
    }
    exec->compile_ns += ElapsedNs(t0, Clock::now());
    if (stmt.explain) {
      exec->plan_details =
          "preference: " + exec->preference_term + "\n" +
          "model: ranked (k-best, §6.2); " + TopKText(stmt.top_k) +
          "\n" +
          "utility: " +
          (dynamic_cast<const RankPreference*>(preference.get()) != nullptr
               ? "rank(F) combined utility"
               : "derived single sort key") +
          ", descending; ties broken by input order\n";
    }
  } else if (preference) {
    exec->preference_term = preference->ToString();
    // Stage 1 — statistics-level planning. Mirror the legacy routing:
    // the optimizer runs for EXPLAIN or kAuto (simplify + cost model
    // over the engine's incremental table statistics); an explicit
    // algorithm skips rewrites and becomes a pass-through plan.
    PrefPtr exec_pref = preference;
    const size_t pool_size =
        exec->use_row_subset ? exec->filtered_rows.size() : table.size();
    PhysicalPlan physical = PhysicalPlan::FromOptions(options);
    OptimizedQuery optimized;
    bool costed = false;
    if (stmt.explain || options.algorithm == BmoAlgorithm::kAuto) {
      t0 = Clock::now();
      TableStats empty;
      empty.rows = table.size();
      optimized = Optimize(table_stats != nullptr ? *table_stats : empty,
                           table.schema(), pool_size, preference, options);
      exec->optimize_ns += ElapsedNs(t0, Clock::now());
      exec_pref = optimized.simplified;
      if (options.algorithm == BmoAlgorithm::kAuto) {
        physical = optimized.plan;
        costed = true;
      }
      if (stmt.explain) exec->plan_details = optimized.Explain();
    }
    exec->exec_pref = exec_pref;

    if (stmt.grouping.empty() &&
        physical.algorithm != BmoAlgorithm::kDecomposition) {
      // Block path: precompute the distinct-value index and compile the
      // score table once; Run() then does only the kernel work.
      exec->block_path = true;
      t0 = Clock::now();
      const std::vector<size_t>* pool_ptr =
          exec->use_row_subset ? &exec->filtered_rows : nullptr;
      // Zero-copy compile: numerical terms over NaN-free columns compile
      // straight off the snapshot's column buffers, skipping the
      // projection-index gather and dedup. Gated on a sampled
      // distinctness probe — under heavy duplication the deduplicating
      // gather shrinks the kernel input enough to win instead.
      if (options.vectorize && pool_size > 0 &&
          ScoreTable::CompilableColumnar(exec_pref, table) &&
          LikelyMostlyDistinct(
              table, table.ResolveColumns(exec_pref->attributes()),
              pool_ptr)) {
        exec->score_table =
            ScoreTable::CompileColumnar(exec_pref, table, pool_ptr);
        exec->zero_copy = exec->score_table.has_value();
      }
      if (exec->zero_copy) {
        exec->proj.proj_schema = table.schema().Project(exec_pref->attributes());
      } else {
        exec->proj = BuildProjectionIndex(table, *exec_pref, pool_ptr);
        if (options.vectorize && !exec->proj.values.empty()) {
          exec->score_table =
              ScoreTable::Compile(exec_pref, exec->proj.proj_schema,
                                  exec->proj.values.data(),
                                  exec->proj.values.size());
        }
      }
      exec->compile_ns += ElapsedNs(t0, Clock::now());
      // Stage 2 — refine the costed plan with measured block statistics
      // (exact distinct counts, injectivity, the sampled window probe):
      // the compiled table sees the actual data, so the refined choice
      // supersedes the estimate-level one.
      if (costed && exec->score_table) {
        t0 = Clock::now();
        PlanScope scope;
        scope.allow_decomposition = false;
        TermStats measured =
            MeasureTermStats(*exec->score_table, exec_pref, pool_size);
        physical = PlanPhysical(measured, options, scope);
        exec->optimize_ns += ElapsedNs(t0, Clock::now());
        if (stmt.explain) {
          optimized.plan = physical;
          exec->plan_details = optimized.Explain();
        }
      }
      exec->plan = physical;
      if (exec->score_table) {
        const std::string variant = exec->score_table->KernelVariant(
            physical.algorithm == BmoAlgorithm::kParallel
                ? BmoAlgorithm::kAuto
                : physical.algorithm,
            physical);
        exec->kernel_variant = physical.algorithm == BmoAlgorithm::kParallel
                                   ? "parallel+" + variant
                                   : variant;
      } else {
        exec->kernel_variant = "closure";
      }
    } else if (physical.algorithm == BmoAlgorithm::kDecomposition) {
      // Decomposition cascade: relation-level evaluator; materialize the
      // WHERE result once and share it.
      t0 = Clock::now();
      exec->filtered =
          stmt.where ? std::make_shared<const Relation>(
                           table.SelectRows(exec->filtered_rows))
                     : exec->snapshot;
      exec->grouped = !stmt.grouping.empty();
      exec->plan = physical;
      exec->compile_ns += ElapsedNs(t0, Clock::now());
      exec->kernel_variant = "closure";  // Prop 11 cascade, closure order
    } else {
      // GROUPING path: group the candidate pool once and cache one
      // compiled plan per group (projection index, score table, refined
      // PhysicalPlan), so warm runs do only per-group kernel work.
      exec->grouped = true;
      t0 = Clock::now();
      for (std::vector<size_t>& rows : GroupPoolRows(
               table, table.ResolveColumns(stmt.grouping),
               exec->use_row_subset, exec->filtered_rows, pool_size)) {
        exec->groups.emplace_back();
        exec->groups.back().rows = std::move(rows);
      }
      PlanScope group_scope;
      // Multiple groups saturate the pool themselves; a single
      // (degenerate) group runs inline, so partition-parallelism inside
      // it stays on the table — the pre-plan behavior for skewed
      // grouping keys.
      group_scope.allow_parallel = exec->groups.size() == 1;
      group_scope.allow_decomposition = false;
      for (Exec::GroupExec& group : exec->groups) {
        group.proj = BuildProjectionIndex(table, *exec_pref, &group.rows);
        if (options.vectorize && !group.proj.values.empty()) {
          group.table = ScoreTable::Compile(
              exec_pref, group.proj.proj_schema, group.proj.values.data(),
              group.proj.values.size());
        }
        if (options.algorithm == BmoAlgorithm::kAuto) {
          TermStats group_stats =
              group.table
                  ? MeasureTermStats(*group.table, exec_pref,
                                     group.rows.size())
                  : EstimateClosureBlockStats(group.proj.proj_schema,
                                              group.proj.values.size(),
                                              group.rows.size(), exec_pref);
          group.plan = PlanPhysical(group_stats, options, group_scope);
        } else {
          group.plan = PhysicalPlan::FromOptions(options);
          if (group.plan.algorithm == BmoAlgorithm::kParallel &&
              exec->groups.size() > 1) {
            group.plan.algorithm = BmoAlgorithm::kAuto;
          }
        }
      }
      // The grouped statement's estimate is the sum of the per-group
      // plans actually executed — the stage-1 table-level estimate would
      // make EXPLAIN's estimated-vs-actual comparison meaningless.
      if (options.algorithm == BmoAlgorithm::kAuto) {
        physical.estimated_ns = 0.0;
        for (const Exec::GroupExec& group : exec->groups) {
          physical.estimated_ns += group.plan.estimated_ns;
        }
        if (stmt.explain) {
          // The cost table above is the stage-1 table-level view; make
          // explicit that execution runs one refined plan per group and
          // that the reported estimate is their sum.
          exec->plan_details +=
              "grouping: " + std::to_string(exec->groups.size()) +
              " group(s), plans refined per group; estimated cost is "
              "the per-group sum\n";
        }
      }
      exec->plan = physical;
      exec->compile_ns += ElapsedNs(t0, Clock::now());
      if (options.vectorize && ScoreTable::CompilableTerm(exec_pref)) {
        const simd::KernelOps* ops = simd::ResolveKernel(options.simd);
        exec->kernel_variant =
            std::string("per-group[") + (ops ? ops->name : "rowwise") + "]";
      } else {
        exec->kernel_variant = "closure";
      }
    }
    plan_str += std::string(stmt.grouping.empty() ? " -> bmo[" : " -> bmo_groupby[") +
                exec_pref->ToString() + ", " +
                BmoAlgorithmName(exec->plan.algorithm) +
                ", kernel=" + exec->kernel_variant + "]";
    if (stmt.explain && !exec->plan_details.empty()) {
      exec->plan_details += "kernel: " + exec->kernel_variant + "\n";
      if (exec->block_path && exec->score_table) {
        exec->plan_details += std::string("compile: ") +
                              (exec->zero_copy ? "zero-copy" : "gather") +
                              "\n";
      }
    }
  }

  exec->plan_prefix = std::move(plan_str);
  return exec;
}

// Executes a compiled plan: kernel work + materialization only, steered
// entirely by the cached PhysicalPlan (per group for GROUPING). Pure
// function of immutable shared state — safe to run concurrently.
psql::QueryResult ExecuteExec(const Plan& plan, const Exec& exec) {
  const psql::SelectStatement& stmt = plan.stmt;
  const Relation& table = *exec.snapshot;
  psql::QueryResult result;
  result.preference_term = exec.preference_term;
  result.plan_details = exec.plan_details;
  std::string plan_str = exec.plan_prefix;

  Relation current;
  std::vector<double> utilities;
  const bool subset = exec.use_row_subset;
  const size_t pool_size = subset ? exec.filtered_rows.size() : table.size();

  if (exec.ivm) {
    // Maintained view: the result row set is already known exactly.
    current = table.SelectRows(exec.filtered_rows);
  } else if (exec.ranked) {
    // WHERE and BUT ONLY were folded into the candidate pool at compile.
    std::vector<size_t> rows;
    if (!stmt.grouping.empty()) {
      for (const auto& group : exec.ranked_groups) {
        RankedRows rr = TopKRows(table, exec.utility, stmt.top_k, &group);
        for (size_t i = 0; i < rr.rows.size(); ++i) {
          rows.push_back(group[rr.rows[i]]);
          utilities.push_back(rr.utilities[i]);
        }
      }
    } else {
      RankedRows rr = TopKRows(table, exec.utility, stmt.top_k,
                               subset ? &exec.filtered_rows : nullptr);
      for (size_t i = 0; i < rr.rows.size(); ++i) {
        rows.push_back(subset ? exec.filtered_rows[rr.rows[i]] : rr.rows[i]);
        utilities.push_back(rr.utilities[i]);
      }
    }
    current = table.SelectRows(rows);
  } else if (plan.preference) {
    if (exec.block_path) {
      std::vector<size_t> rows;
      if (exec.zero_copy) {
        // Zero-copy table: row i is pool position i, no projection index.
        std::vector<bool> maximal = internal::ExecuteBlockPlan(
            nullptr, pool_size, exec.exec_pref, exec.proj.proj_schema,
            &*exec.score_table, exec.plan);
        for (size_t i = 0; i < pool_size; ++i) {
          if (maximal[i]) rows.push_back(subset ? exec.filtered_rows[i] : i);
        }
      } else if (!exec.proj.values.empty()) {
        std::vector<bool> maximal = internal::ExecuteBlockPlan(
            exec.proj.values, exec.exec_pref, exec.proj.proj_schema,
            exec.score_table ? &*exec.score_table : nullptr, exec.plan);
        for (size_t i = 0; i < pool_size; ++i) {
          if (maximal[exec.proj.row_to_value[i]]) {
            rows.push_back(subset ? exec.filtered_rows[i] : i);
          }
        }
      }
      current = table.SelectRows(rows);
    } else if (exec.filtered) {
      // Decomposition cascade (grouped or not): relation-level evaluator
      // over the materialized WHERE result.
      BmoOptions run_options;
      run_options.algorithm = BmoAlgorithm::kDecomposition;
      run_options.num_threads = exec.plan.num_threads;
      run_options.vectorize = exec.plan.vectorize;
      run_options.simd = exec.plan.simd;
      run_options.bnl_tile_rows = exec.plan.bnl_tile_rows;
      current = exec.grouped
                    ? BmoGroupBy(*exec.filtered, exec.exec_pref,
                                 stmt.grouping, run_options)
                    : Bmo(*exec.filtered, exec.exec_pref, run_options);
    } else {
      // GROUPING: per-group kernel work over the cached per-group plans
      // and compiled tables.
      std::vector<size_t> rows;
      auto run_group = [&exec](const Exec::GroupExec& group,
                               std::vector<size_t>* out) {
        if (group.proj.values.empty()) return;
        // kParallel only ever reaches here for a single (degenerate)
        // group, which runs inline — the pool is free for the fan-out.
        std::vector<bool> maximal = internal::ExecuteBlockPlan(
            group.proj.values, exec.exec_pref, group.proj.proj_schema,
            group.table ? &*group.table : nullptr, group.plan);
        for (size_t i = 0; i < group.rows.size(); ++i) {
          if (maximal[group.proj.row_to_value[i]]) {
            out->push_back(group.rows[i]);
          }
        }
      };
      ThreadPool& pool = ThreadPool::Shared();
      const size_t threads =
          ThreadPool::ResolveThreads(exec.plan.num_threads);
      if (exec.groups.size() > 1 && threads > 1 && !pool.OnWorkerThread()) {
        std::vector<std::vector<size_t>> results(exec.groups.size());
        pool.ParallelForChunks(
            exec.groups.size(), threads, 1,
            [&exec, &results, &run_group](size_t, size_t begin, size_t end) {
              for (size_t g = begin; g < end; ++g) {
                run_group(exec.groups[g], &results[g]);
              }
            });
        for (const auto& group_rows : results) {
          rows.insert(rows.end(), group_rows.begin(), group_rows.end());
        }
      } else {
        for (const Exec::GroupExec& group : exec.groups) {
          run_group(group, &rows);
        }
      }
      std::sort(rows.begin(), rows.end());
      current = table.SelectRows(rows);
    }
    if (exec.but_only) {
      current = current.Filter(exec.but_only);
      plan_str += " -> but_only[" + stmt.but_only->ToString() + "]";
    }
  } else {
    current = stmt.where ? table.SelectRows(exec.filtered_rows) : table;
  }

  // Projection.
  if (!stmt.select_list.empty()) {
    current = current.Project(stmt.select_list);
    plan_str += " -> project";
  }

  // LIMIT.
  if (stmt.limit > 0 && current.size() > stmt.limit) {
    std::vector<size_t> head(stmt.limit);
    std::iota(head.begin(), head.end(), 0);
    current = current.SelectRows(head);
    plan_str += " -> limit " + std::to_string(stmt.limit);
  }
  if (exec.ranked && utilities.size() > current.size()) {
    utilities.resize(current.size());
  }

  result.relation = std::move(current);
  result.utilities = std::move(utilities);
  result.plan = std::move(plan_str);
  return result;
}

}  // namespace

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_string) {
      out += c;
      if (c == '\'') in_string = false;
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;  // SQL line comment
      pending_space = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out += ' ';
    pending_space = false;
    out += c;
    if (c == '\'') in_string = true;
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

// ---------------------------------------------------------------------------
// PreparedQuery

psql::QueryResult PreparedQuery::Run() const { return Run(options_); }

psql::QueryResult PreparedQuery::Run(const BmoOptions& options) const {
  psql::QueryStats stats;
  stats.plan_cache_hit = true;  // the prepared plan is already bound
  return engine_->RunWithStats(*plan_, options, stats, Clock::now());
}

const psql::SelectStatement& PreparedQuery::statement() const {
  return plan_->stmt;
}

const std::string& PreparedQuery::normalized_sql() const { return plan_->key; }

std::string PreparedQuery::preference_term() const {
  return plan_->preference ? plan_->preference->ToString() : "";
}

// ---------------------------------------------------------------------------
// Engine

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  plan_cache_.set_capacity(options_.plan_cache_capacity);
  exec_cache_.set_capacity(options_.exec_cache_capacity);
}

Engine::Engine(const psql::Catalog& catalog, EngineOptions options)
    : options_(std::move(options)), catalog_(catalog) {
  plan_cache_.set_capacity(options_.plan_cache_capacity);
  exec_cache_.set_capacity(options_.exec_cache_capacity);
}

Engine::~Engine() {
  // Wake every blocked subscriber before members tear down; handles that
  // still exist see closed() and drain.
  std::vector<std::shared_ptr<ivm::SubscriptionState>> to_close;
  {
    auto lock = Lock();
    for (auto& [table, slots] : views_) {
      for (auto& slot : slots) {
        for (auto& [id, state] : slot->subs) to_close.push_back(state);
      }
    }
    views_.clear();
  }
  for (auto& state : to_close) state->Close();
}

void Engine::RegisterTable(const std::string& name, Relation relation) {
  // Wholesale replacement has no incremental delta (the schema may even
  // change): subscriptions on the table end here.
  std::vector<std::shared_ptr<ivm::SubscriptionState>> to_close;
  {
    auto lock = Lock();
    catalog_.Register(name, std::move(relation));
    InvalidateTable(name);
    auto it = views_.find(name);
    if (it != views_.end()) {
      for (auto& slot : it->second) {
        for (auto& [id, state] : slot->subs) to_close.push_back(state);
      }
      views_.erase(it);
    }
  }
  for (auto& state : to_close) state->Close();
}

void Engine::Insert(const std::string& name, Tuple row) {
  // Copy-on-write: readers keep their snapshot, the catalog swaps in the
  // appended relation under a bumped version. The O(n) copy runs outside
  // the engine mutex so concurrent queries never stall behind it; a
  // version check before the swap restarts the copy if another mutation
  // won the race.
  for (;;) {
    std::shared_ptr<const Relation> snapshot;
    uint64_t version = 0;
    {
      auto lock = Lock();
      snapshot = catalog_.GetShared(name);  // throws when unknown
      version = catalog_.Version(name);
    }
    Relation next = *snapshot;
    next.Add(row);
    auto lock = Lock();
    if (catalog_.Version(name) != version) continue;  // raced; redo the copy
    catalog_.Register(name, std::move(next));
    // Invalidate dependent exec state, then roll the statistics forward
    // incrementally (O(columns), no rescan) when we have them for the
    // superseded version.
    const uint64_t new_version = catalog_.Version(name);
    StatsEntry entry;
    bool stats_fresh = false;
    if (auto stats_it = stats_cache_.find(name);
        stats_it != stats_cache_.end() &&
        stats_it->second.version == version &&
        stats_it->second.builder != nullptr) {
      entry = std::move(stats_it->second);
      stats_fresh = true;
    }
    InvalidateTable(name);  // also drops the (now stale) stats entry
    if (stats_fresh) {
      entry.builder->AddRow(row);
      entry.version = new_version;
      entry.stats =
          std::make_shared<const TableStats>(entry.builder->Snapshot());
      stats_cache_[name] = std::move(entry);
    }
    // Maintained views: one batch-kernel pass against each view's
    // antichain, delta fan-out, and the exec-cache refresh — all inside
    // this critical section, so subscribers observe the same mutation
    // order the versions record. The new row's table index is the old
    // snapshot's size (Add appends).
    NotifyViewsInsert(name, row, snapshot->size(), new_version);
    return;
  }
}

size_t Engine::Delete(const std::string& name,
                      const std::function<bool(const Tuple&)>& pred) {
  // Same copy-on-write discipline as Insert: partition + survivor copy
  // run outside the engine mutex; a version check before the swap
  // restarts when another mutation won the race.
  for (;;) {
    std::shared_ptr<const Relation> snapshot;
    uint64_t version = 0;
    {
      auto lock = Lock();
      snapshot = catalog_.GetShared(name);  // throws when unknown
      version = catalog_.Version(name);
    }
    std::vector<size_t> deleted;
    std::vector<size_t> survivors;
    survivors.reserve(snapshot->size());
    for (size_t i = 0; i < snapshot->size(); ++i) {
      if (!pred || pred(snapshot->RowAt(i))) {
        deleted.push_back(i);
      } else {
        survivors.push_back(i);
      }
    }
    if (deleted.empty()) return 0;  // nothing matched: no version bump
    Relation next = snapshot->SelectRows(survivors);
    auto lock = Lock();
    if (catalog_.Version(name) != version) continue;  // raced; redo the scan
    catalog_.Register(name, std::move(next));
    const uint64_t new_version = catalog_.Version(name);
    // Row removal cannot roll TableStats forward (distinct/null counters
    // are additive only): InvalidateTable drops the entry and the next
    // Stats() call rescans.
    InvalidateTable(name);
    NotifyViewsDelete(name, deleted, new_version);
    return deleted.size();
  }
}

bool Engine::HasTable(const std::string& name) const {
  auto lock = Lock();
  return catalog_.Has(name);
}

std::shared_ptr<const Relation> Engine::Snapshot(
    const std::string& name) const {
  auto lock = Lock();
  return catalog_.GetShared(name);
}

uint64_t Engine::TableVersion(const std::string& name) const {
  auto lock = Lock();
  return catalog_.Version(name);
}

std::vector<std::string> Engine::TableNames() const {
  auto lock = Lock();
  return catalog_.TableNames();
}

void Engine::InvalidateTable(const std::string& name) {
  stats_.invalidations += exec_cache_.EraseIf(
      [&name](const engine_internal::Exec& exec) {
        return exec.table_name == name;
      });
  stats_cache_.erase(name);
}

std::shared_ptr<const engine_internal::Plan> Engine::GetOrBuildPlan(
    const std::string& sql, psql::QueryStats* stats) {
  std::string key = NormalizeSql(sql);
  if (options_.enable_plan_cache) {
    auto lock = Lock();
    if (auto cached = plan_cache_.Get(key)) {
      ++stats_.plan_hits;
      stats->plan_cache_hit = true;
      return cached;
    }
  }
  auto plan = std::make_shared<Plan>();
  Clock::time_point t0 = Clock::now();
  plan->stmt = psql::Parse(sql);
  Clock::time_point t1 = Clock::now();
  plan->preference = psql::TranslatePreferenceChain(plan->stmt.preferring);
  Clock::time_point t2 = Clock::now();
  plan->parse_ns = ElapsedNs(t0, t1);
  plan->translate_ns = ElapsedNs(t1, t2);
  plan->key = std::move(key);
  stats->parse_ns = plan->parse_ns;
  stats->translate_ns = plan->translate_ns;
  auto lock = Lock();
  ++stats_.plan_misses;
  if (options_.enable_plan_cache) {
    // A racing Prepare may have inserted first; the entries are identical.
    stats_.plan_evictions += plan_cache_.Put(plan->key, plan);
  }
  return plan;
}

std::shared_ptr<const engine_internal::Plan> Engine::GetOrBuildPlan(
    const psql::SelectStatement& stmt, psql::QueryStats* stats) {
  std::string key = stmt.ToString();
  if (options_.enable_plan_cache) {
    auto lock = Lock();
    if (auto cached = plan_cache_.Get(key)) {
      ++stats_.plan_hits;
      stats->plan_cache_hit = true;
      return cached;
    }
  }
  auto plan = std::make_shared<Plan>();
  plan->stmt = stmt;
  Clock::time_point t0 = Clock::now();
  plan->preference = psql::TranslatePreferenceChain(stmt.preferring);
  plan->translate_ns = ElapsedNs(t0, Clock::now());
  plan->key = std::move(key);
  stats->translate_ns = plan->translate_ns;
  auto lock = Lock();
  ++stats_.plan_misses;
  if (options_.enable_plan_cache) {
    stats_.plan_evictions += plan_cache_.Put(plan->key, plan);
  }
  return plan;
}

std::shared_ptr<const engine_internal::Exec> Engine::GetOrBuildExec(
    const engine_internal::Plan& plan, const BmoOptions& options,
    psql::QueryStats* stats) {
  std::shared_ptr<const Relation> snapshot;
  uint64_t version = 0;
  std::string key;
  {
    auto lock = Lock();
    snapshot = catalog_.GetShared(plan.stmt.table);  // throws when unknown
    version = catalog_.Version(plan.stmt.table);
    if (options_.enable_exec_cache) {
      key = plan.key + "|" + OptionsSignature(options) + "|v" +
            std::to_string(version);
      if (auto cached = exec_cache_.Get(key)) {
        ++stats_.exec_hits;
        stats->exec_cache_hit = true;
        stats->plan_cache_evictions = stats_.plan_evictions;
        stats->exec_cache_evictions = stats_.exec_evictions;
        return cached;
      }
    }
  }
  // The statistics-level planner only runs for kAuto or EXPLAIN BMO
  // statements; skip the per-table stats snapshot otherwise.
  std::shared_ptr<const TableStats> table_stats;
  if (plan.preference && !plan.stmt.ranked &&
      (plan.stmt.explain || options.algorithm == BmoAlgorithm::kAuto)) {
    table_stats = GetStats(plan.stmt.table, version, snapshot);
  }
  // Build outside the lock: compilation may be heavy and must not block
  // concurrent queries. A racing build of the same key produces an
  // identical immutable entry; last writer wins.
  std::shared_ptr<const Exec> exec = BuildExec(
      plan, options, std::move(snapshot), version, table_stats.get());
  stats->optimize_ns = exec->optimize_ns;
  stats->compile_ns = exec->compile_ns;
  auto lock = Lock();
  ++stats_.exec_misses;
  // Don't cache an entry whose table version was bumped (and invalidated)
  // while we built: it could never be hit again and would pin the stale
  // snapshot + score table until the table's next mutation.
  if (options_.enable_exec_cache &&
      catalog_.Version(plan.stmt.table) == version) {
    stats_.exec_evictions += exec_cache_.Put(key, exec);
  }
  stats->plan_cache_evictions = stats_.plan_evictions;
  stats->exec_cache_evictions = stats_.exec_evictions;
  return exec;
}

std::shared_ptr<const TableStats> Engine::GetStats(
    const std::string& name, uint64_t version,
    const std::shared_ptr<const Relation>& snapshot) {
  {
    auto lock = Lock();
    auto it = stats_cache_.find(name);
    if (it != stats_cache_.end() && it->second.version == version &&
        it->second.stats != nullptr) {
      return it->second.stats;
    }
  }
  // Derive outside the lock (full scan of the snapshot), then publish
  // unless the table moved on while we scanned.
  auto builder = std::make_shared<TableStatsBuilder>(*snapshot);
  auto derived = std::make_shared<const TableStats>(builder->Snapshot());
  auto lock = Lock();
  if (catalog_.Has(name) && catalog_.Version(name) == version) {
    stats_cache_[name] = StatsEntry{version, std::move(builder), derived};
  }
  return derived;
}

std::shared_ptr<const TableStats> Engine::Stats(const std::string& name) {
  std::shared_ptr<const Relation> snapshot;
  uint64_t version = 0;
  {
    auto lock = Lock();
    snapshot = catalog_.GetShared(name);  // throws when unknown
    version = catalog_.Version(name);
  }
  return GetStats(name, version, snapshot);
}

psql::QueryResult Engine::RunWithStats(const engine_internal::Plan& plan,
                                       const BmoOptions& options,
                                       psql::QueryStats stats,
                                       std::chrono::steady_clock::time_point t0) {
  if (plan.stmt.is_delete) return RunDelete(plan, std::move(stats), t0);
  std::shared_ptr<const Exec> exec = GetOrBuildExec(plan, options, &stats);
  Clock::time_point t1 = Clock::now();
  psql::QueryResult result = ExecuteExec(plan, *exec);
  Clock::time_point t2 = Clock::now();
  stats.execute_ns = ElapsedNs(t1, t2);
  stats.total_ns = ElapsedNs(t0, t2);
  stats.kernel = exec->kernel_variant;
  stats.estimated_cost_ns = exec->plan.estimated_ns;
  // Eviction counters were copied under GetOrBuildExec's lock.
  result.stats = stats;
  if (plan.stmt.explain) {
    result.plan_details += "timing: " + stats.ToString() + "\n";
    if (exec->plan.estimated_ns > 0.0) {
      char line[96];
      std::snprintf(line, sizeof(line),
                    "cost: estimated %.3fms vs actual %.3fms\n",
                    exec->plan.estimated_ns / 1e6,
                    static_cast<double>(stats.execute_ns) / 1e6);
      result.plan_details += line;
    }
  }
  return result;
}

psql::QueryResult Engine::RunDelete(const engine_internal::Plan& plan,
                                    psql::QueryStats stats,
                                    std::chrono::steady_clock::time_point t0) {
  const psql::SelectStatement& stmt = plan.stmt;
  std::function<bool(const Tuple&)> pred;
  if (stmt.where) {
    // Compile against the current schema; DELETE has no cached exec (the
    // predicate is cheap next to the survivor copy).
    pred = psql::CompileCondition(*stmt.where, Snapshot(stmt.table)->schema());
  }
  Clock::time_point t1 = Clock::now();
  const size_t removed = Delete(stmt.table, pred);
  Clock::time_point t2 = Clock::now();
  psql::QueryResult result;
  Relation rel{Schema{{"deleted", ValueType::kInt}}};
  rel.Add(Tuple{Value(static_cast<int64_t>(removed))});
  result.relation = std::move(rel);
  result.plan = "delete(" + stmt.table + ")" +
                (stmt.where ? " -> where[" + stmt.where->ToString() + "]"
                            : std::string()) +
                " -> removed " + std::to_string(removed);
  stats.execute_ns = ElapsedNs(t1, t2);
  stats.total_ns = ElapsedNs(t0, t2);
  result.stats = stats;
  return result;
}

PreparedQuery Engine::Prepare(const std::string& sql) {
  return Prepare(sql, options_.bmo);
}

PreparedQuery Engine::Prepare(const std::string& sql,
                              const BmoOptions& options) {
  psql::QueryStats ignored;
  return PreparedQuery(this, GetOrBuildPlan(sql, &ignored), options);
}

PreparedQuery Engine::Prepare(const psql::SelectStatement& stmt) {
  return Prepare(stmt, options_.bmo);
}

PreparedQuery Engine::Prepare(const psql::SelectStatement& stmt,
                              const BmoOptions& options) {
  psql::QueryStats ignored;
  return PreparedQuery(this, GetOrBuildPlan(stmt, &ignored), options);
}

psql::QueryResult Engine::Execute(const std::string& sql) {
  return Execute(sql, options_.bmo);
}

psql::QueryResult Engine::Execute(const std::string& sql,
                                  const BmoOptions& options) {
  Clock::time_point t0 = Clock::now();
  psql::QueryStats stats;
  auto plan = GetOrBuildPlan(sql, &stats);
  return RunWithStats(*plan, options, stats, t0);
}

psql::QueryResult Engine::Execute(const psql::SelectStatement& stmt) {
  return Execute(stmt, options_.bmo);
}

psql::QueryResult Engine::Execute(const psql::SelectStatement& stmt,
                                  const BmoOptions& options) {
  Clock::time_point t0 = Clock::now();
  psql::QueryStats stats;
  auto plan = GetOrBuildPlan(stmt, &stats);
  return RunWithStats(*plan, options, stats, t0);
}

std::shared_ptr<const engine_internal::Plan> Engine::BuildTermPlan(
    const std::string& table, const PrefPtr& preference, bool ranked,
    size_t top_k) {
  if (!preference) {
    throw std::invalid_argument("a preference term is required");
  }
  // Synthetic statement: SELECT * FROM table with the term attached
  // directly (no SQL rendering exists for every term, e.g. rank(F)).
  // The "term:"/"ranked:" prefixes cannot collide with SQL plan keys —
  // such a text would fail to parse before insertion. The key includes
  // the term's object identity because ToString() is not injective
  // (SubsetPreference renders only its subset size, rank(F) only its
  // function name); the cached plan's shared_ptr keeps the object alive,
  // so its address cannot be reused by a different live term.
  char identity[32];
  std::snprintf(identity, sizeof(identity), "%p",
                static_cast<const void*>(preference.get()));
  std::string key = (ranked ? "ranked:k=" + std::to_string(top_k) + ":"
                            : std::string("term:")) +
                    table + "@" + identity + ":" + preference->ToString();
  if (options_.enable_plan_cache) {
    auto lock = Lock();
    if (auto cached = plan_cache_.Get(key)) {
      ++stats_.plan_hits;
      return cached;
    }
  }
  auto plan = std::make_shared<Plan>();
  plan->stmt.table = table;
  plan->stmt.ranked = ranked;
  plan->stmt.top_k = top_k;
  plan->preference = preference;
  plan->key = std::move(key);
  auto lock = Lock();
  ++stats_.plan_misses;
  if (options_.enable_plan_cache) {
    stats_.plan_evictions += plan_cache_.Put(plan->key, plan);
  }
  return plan;
}

PreparedQuery Engine::Prepare(const std::string& table,
                              const PrefPtr& preference) {
  return Prepare(table, preference, options_.bmo);
}

PreparedQuery Engine::Prepare(const std::string& table,
                              const PrefPtr& preference,
                              const BmoOptions& options) {
  return PreparedQuery(
      this, BuildTermPlan(table, preference, /*ranked=*/false, 0), options);
}

PreparedQuery Engine::PrepareRanked(const std::string& table,
                                    const PrefPtr& preference, size_t top_k) {
  return PreparedQuery(
      this, BuildTermPlan(table, preference, /*ranked=*/true, top_k),
      options_.bmo);
}

void Engine::StorePreference(const std::string& name,
                             const PrefPtr& preference) {
  auto lock = Lock();
  repository_.Store(name, preference);
}

PrefPtr Engine::GetPreference(const std::string& name) const {
  auto lock = Lock();
  return repository_.Get(name);
}

PreparedQuery Engine::PrepareStored(const std::string& table,
                                    const std::string& name) {
  PrefPtr preference = GetPreference(name);
  if (!preference) {
    throw std::out_of_range("no stored preference named '" + name + "'");
  }
  return Prepare(table, preference);
}

void Engine::LoadRepository(PreferenceRepository repository) {
  auto lock = Lock();
  repository_ = std::move(repository);
}

PreferenceRepository Engine::Repository() const {
  auto lock = Lock();
  return repository_;
}

std::unique_lock<std::mutex> Engine::Lock() const {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    lock_contentions_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return lock;
}

Engine::CacheStats Engine::cache_stats() const {
  auto lock = Lock();
  CacheStats out = stats_;
  out.lock_acquisitions = lock_acquisitions_.load(std::memory_order_relaxed);
  out.lock_contentions = lock_contentions_.load(std::memory_order_relaxed);
  return out;
}

void Engine::ClearCaches() {
  auto lock = Lock();
  plan_cache_.Clear();
  exec_cache_.Clear();
  stats_cache_.clear();
}

// --- subscriptions / incremental view maintenance

Engine::Subscription Engine::Subscribe(const std::string& sql) {
  return Subscribe(sql, options_.bmo);
}

Engine::Subscription Engine::Subscribe(const std::string& sql,
                                       const BmoOptions& options,
                                       size_t max_pending_deltas) {
  psql::QueryStats ignored;
  auto plan = GetOrBuildPlan(sql, &ignored);
  const psql::SelectStatement& stmt = plan->stmt;
  // The maintainable fragment: plain BMO over full rows. Everything else
  // has no incremental story yet — reject loudly instead of silently
  // recomputing.
  if (stmt.is_delete) {
    throw psql::BadArgumentError("cannot subscribe to DELETE");
  }
  if (!plan->preference) {
    throw psql::BadArgumentError("subscriptions require a PREFERRING clause");
  }
  if (stmt.ranked) {
    throw psql::BadArgumentError(
        "subscriptions do not support ranked (TOP k) statements");
  }
  if (stmt.explain) {
    throw psql::BadArgumentError("cannot subscribe to EXPLAIN");
  }
  if (!stmt.grouping.empty()) {
    throw psql::BadArgumentError("subscriptions do not support GROUPING");
  }
  if (stmt.but_only) {
    throw psql::BadArgumentError("subscriptions do not support BUT ONLY");
  }
  if (stmt.limit > 0) {
    throw psql::BadArgumentError("subscriptions do not support LIMIT");
  }
  if (!stmt.select_list.empty()) {
    throw psql::BadArgumentError(
        "subscriptions deliver full rows; use SELECT *");
  }
  const size_t max_pending = max_pending_deltas != 0
                                 ? max_pending_deltas
                                 : options_.max_pending_deltas;
  const std::string prefix = plan->key + "|" + OptionsSignature(options);
  // Copy-on-write style retry: seed the view outside the lock against a
  // snapshot, install it only if the table version has not moved.
  for (;;) {
    std::shared_ptr<const Relation> snapshot;
    uint64_t version = 0;
    {
      auto lock = Lock();
      snapshot = catalog_.GetShared(stmt.table);  // throws when unknown
      version = catalog_.Version(stmt.table);
      for (auto& slot : views_[stmt.table]) {
        if (slot->exec_key_prefix == prefix) {
          return AttachSubscriber(*slot, max_pending);
        }
      }
    }
    std::function<bool(const Tuple&)> where;
    if (stmt.where) {
      where = psql::CompileCondition(*stmt.where, snapshot->schema());
    }
    auto view = std::make_shared<ivm::MaintainedView>(
        plan->preference, std::move(where), *snapshot, version, options);
    auto lock = Lock();
    if (catalog_.Version(stmt.table) != version) continue;  // raced; reseed
    auto slot = std::make_shared<ViewSlot>();
    slot->view = std::move(view);
    slot->plan = plan;
    slot->options = options;
    slot->exec_key_prefix = prefix;
    views_[stmt.table].push_back(slot);
    RefreshViewExec(*slot, version);
    return AttachSubscriber(*slot, max_pending);
  }
}

Engine::Subscription Engine::AttachSubscriber(ViewSlot& slot,
                                              size_t max_pending) {
  auto state = std::make_shared<ivm::SubscriptionState>(
      slot.view->schema(), slot.plan->stmt.table,
      slot.plan->preference->ToString(), max_pending);
  const uint64_t id = next_subscription_id_++;
  slot.subs.emplace_back(id, state);
  // Bootstrap snapshot in the same critical section that registered the
  // subscriber: every later delta applies to exactly this state. TryPush
  // (not PushResync) so coalesced_resyncs() counts only real overflows;
  // it cannot fail — the queue is empty and max_pending >= 1.
  state->TryPush(slot.view->Resync());
  return Subscription(this, id, std::move(state));
}

void Engine::Unsubscribe(uint64_t id) {
  std::shared_ptr<ivm::SubscriptionState> to_close;
  {
    auto lock = Lock();
    for (auto it = views_.begin(); it != views_.end(); ++it) {
      auto& slots = it->second;
      for (size_t s = 0; s < slots.size(); ++s) {
        auto& subs = slots[s]->subs;
        for (size_t i = 0; i < subs.size(); ++i) {
          if (subs[i].first != id) continue;
          to_close = std::move(subs[i].second);
          subs.erase(subs.begin() + static_cast<ptrdiff_t>(i));
          if (subs.empty()) {
            // The view dies with its last subscriber; the next mutation
            // falls back to plain invalidation.
            slots.erase(slots.begin() + static_cast<ptrdiff_t>(s));
            if (slots.empty()) views_.erase(it);
          }
          break;
        }
        // Break before either loop re-reads `slots` or advances `it`:
        // the erase above may have freed both the slot vector and the
        // map node behind them.
        if (to_close) break;
      }
      if (to_close) break;
    }
  }
  if (to_close) to_close->Close();
}

size_t Engine::SubscriptionCount() const {
  auto lock = Lock();
  size_t n = 0;
  for (const auto& [table, slots] : views_) {
    for (const auto& slot : slots) n += slot->subs.size();
  }
  return n;
}

ViewMaintenanceStats Engine::SubscriptionViewStats(uint64_t id) const {
  auto lock = Lock();
  for (const auto& [table, slots] : views_) {
    for (const auto& slot : slots) {
      for (const auto& [sid, state] : slot->subs) {
        if (sid == id) return slot->view->maintenance_stats();
      }
    }
  }
  return {};
}

void Engine::NotifyViewsInsert(const std::string& name, const Tuple& row,
                               size_t table_row, uint64_t new_version) {
  auto it = views_.find(name);
  if (it == views_.end()) return;
  for (auto& slot : it->second) {
    ivm::ViewDelta delta =
        slot->view->ApplyInsert(row, table_row, new_version);
    RefreshViewExec(*slot, new_version);
    DeliverDelta(*slot, delta);
  }
}

void Engine::NotifyViewsDelete(const std::string& name,
                               const std::vector<size_t>& deleted_rows,
                               uint64_t new_version) {
  auto it = views_.find(name);
  if (it == views_.end()) return;
  for (auto& slot : it->second) {
    ivm::ViewDelta delta = slot->view->ApplyDelete(deleted_rows, new_version);
    RefreshViewExec(*slot, new_version);
    DeliverDelta(*slot, delta);
  }
}

void Engine::DeliverDelta(ViewSlot& slot, const ivm::ViewDelta& delta) {
  if (delta.Empty()) return;
  for (auto& [id, state] : slot.subs) {
    if (!state->TryPush(delta)) {
      // Slow subscriber: coalesce its backlog into one resync snapshot.
      state->PushResync(slot.view->Resync());
    }
  }
}

void Engine::RefreshViewExec(const ViewSlot& slot, uint64_t version) {
  if (!options_.enable_exec_cache) return;
  // The view already knows the exact result row set for the new version:
  // replace the entry InvalidateTable just dropped instead of leaving the
  // next Execute() to recompute from scratch.
  auto exec = std::make_shared<Exec>();
  const std::string& table = slot.plan->stmt.table;
  exec->table_name = table;
  exec->version = version;
  exec->snapshot = catalog_.GetShared(table);
  exec->use_row_subset = true;
  exec->filtered_rows = slot.view->MaximaTableRows();
  exec->ivm = true;
  exec->exec_pref = slot.plan->preference;
  exec->preference_term = slot.plan->preference->ToString();
  exec->kernel_variant = "ivm-delta";
  exec->plan_prefix =
      "scan(" + table + ")" +
      (slot.plan->stmt.where
           ? " -> where[" + slot.plan->stmt.where->ToString() + "]"
           : std::string()) +
      " -> ivm[" + exec->preference_term + "]";
  const std::string key =
      slot.exec_key_prefix + "|v" + std::to_string(version);
  stats_.exec_evictions += exec_cache_.Put(key, std::move(exec));
  ++stats_.exec_refreshes;
}

// --- Subscription handle

Engine::Subscription::Subscription(Subscription&& other) noexcept
    : engine_(other.engine_), id_(other.id_), state_(std::move(other.state_)) {
  other.engine_ = nullptr;
  other.id_ = 0;
}

Engine::Subscription& Engine::Subscription::operator=(
    Subscription&& other) noexcept {
  if (this != &other) {
    Cancel();
    engine_ = other.engine_;
    id_ = other.id_;
    state_ = std::move(other.state_);
    other.engine_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

Engine::Subscription::~Subscription() { Cancel(); }

void Engine::Subscription::Cancel() {
  if (engine_ != nullptr) {
    engine_->Unsubscribe(id_);
    engine_ = nullptr;
  }
  // state_ is kept: queued deltas still drain through Poll().
}

const Schema& Engine::Subscription::schema() const {
  static const Schema kEmpty;
  return state_ ? state_->schema() : kEmpty;
}

const std::string& Engine::Subscription::table() const {
  static const std::string kEmpty;
  return state_ ? state_->table() : kEmpty;
}

const std::string& Engine::Subscription::preference_term() const {
  static const std::string kEmpty;
  return state_ ? state_->term() : kEmpty;
}

std::optional<ivm::ViewDelta> Engine::Subscription::Poll() {
  return state_ ? state_->Poll() : std::nullopt;
}

std::optional<ivm::ViewDelta> Engine::Subscription::WaitFor(
    std::chrono::milliseconds timeout) {
  return state_ ? state_->WaitFor(timeout) : std::nullopt;
}

void Engine::Subscription::SetNotifier(std::function<void()> notifier) {
  if (state_) state_->SetNotifier(std::move(notifier));
}

bool Engine::Subscription::closed() const {
  return state_ ? state_->closed() : true;
}

size_t Engine::Subscription::pending() const {
  return state_ ? state_->pending() : 0;
}

uint64_t Engine::Subscription::coalesced_resyncs() const {
  return state_ ? state_->coalesced_resyncs() : 0;
}

ViewMaintenanceStats Engine::Subscription::view_stats() const {
  return engine_ != nullptr ? engine_->SubscriptionViewStats(id_)
                            : ViewMaintenanceStats{};
}

}  // namespace prefdb
