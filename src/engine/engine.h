// The stateful Preference SQL engine: the long-lived query service the
// paper's serving scenario assumes. Repeated preference queries against
// the same relations dominate real traffic, so the engine separates the
// reusable per-statement work from per-call kernel execution:
//
//   Engine          owns the Catalog (copy-on-write relation snapshots with
//                   per-table version counters), the default execution
//                   options / thread budget, per-table statistics
//                   (stats/stats.h, maintained incrementally across
//                   Insert), and two LRU-bounded caches:
//                     - plan cache:   normalized statement text ->
//                                     parsed AST + translated preference
//                                     term (data-independent);
//                     - exec cache:   (statement, table version, options) ->
//                                     the PhysicalPlan, WHERE row set,
//                                     projection index and compiled
//                                     ScoreTable — including per-group
//                                     plans + compiled state for GROUPING
//                                     statements (data-dependent).
//   PreparedQuery   Engine::Prepare(sql)'s handle on a cached plan;
//                   Run() does only the BMO kernel work (or the ranked
//                   sort) plus result materialization on a warm cache.
//
// Relation mutation through the engine (RegisterTable / Insert) bumps the
// table's version, which invalidates dependent exec-cache entries; readers
// keep their immutable snapshots, so Run() racing a mutation is safe and
// sees a consistent (old or new) state.
//
// Thread-safety: all Engine methods and PreparedQuery::Run() may be called
// concurrently from multiple threads. Cached state is immutable after
// construction; the engine's mutex only guards the catalog map and the
// cache indexes. A PreparedQuery must not outlive its Engine.

#ifndef PREFDB_ENGINE_ENGINE_H_
#define PREFDB_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/bmo.h"
#include "ivm/delta.h"
#include "ivm/maintained_view.h"
#include "ivm/subscription.h"
#include "psql/catalog.h"
#include "psql/executor.h"
#include "psql/parser.h"
#include "repo/repository.h"
#include "stats/stats.h"

namespace prefdb {

namespace engine_internal {
struct Plan;
struct Exec;

/// A string-keyed map with LRU eviction (capacity 0 = unbounded). Not
/// thread-safe; the engine's mutex guards every access. Get() touches.
template <typename T>
class LruMap {
 public:
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  size_t size() const { return map_.size(); }

  std::shared_ptr<const T> Get(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.value;
  }

  /// Inserts or replaces; returns how many entries were evicted to make
  /// room.
  size_t Put(const std::string& key, std::shared_ptr<const T> value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return 0;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{std::move(value), lru_.begin()});
    size_t evicted = 0;
    while (capacity_ != 0 && map_.size() > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
      ++evicted;
    }
    return evicted;
  }

  /// Removes entries matching `pred(value)`; returns how many.
  template <typename Pred>
  size_t EraseIf(const Pred& pred) {
    size_t erased = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(*it->second.value)) {
        lru_.erase(it->second.lru_it);
        it = map_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  void Clear() {
    map_.clear();
    lru_.clear();
  }

 private:
  struct Entry {
    std::shared_ptr<const T> value;
    std::list<std::string>::iterator lru_it;
  };
  size_t capacity_ = 0;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  // front = most recently used
};

}  // namespace engine_internal

struct EngineOptions {
  /// Default execution options (algorithm, thread budget, vectorize).
  BmoOptions bmo;
  /// Cache parsed + translated plans by normalized statement text.
  bool enable_plan_cache = true;
  /// Cache optimized + compiled execution state by (statement, table
  /// version, options). Disable for cold-execution baselines.
  bool enable_exec_cache = true;
  /// LRU entry caps for the two caches (0 = unbounded). Compiled exec
  /// state pins relation snapshots and score tables, so production
  /// deployments with open-ended query text should keep this bounded.
  size_t plan_cache_capacity = 512;
  size_t exec_cache_capacity = 256;
  /// Default per-subscription delta-queue bound (Engine::Subscribe). A
  /// subscriber that falls this many deltas behind has its backlog
  /// coalesced into one resync snapshot instead of buffering unboundedly.
  size_t max_pending_deltas = 64;
};

class Engine;

/// A prepared statement: immutable parsed AST + translated preference
/// term, bound to an Engine. Run() executes against the current table
/// version, reusing the engine's compiled score-table state when the
/// version still matches. Cheap to copy; safe to Run() concurrently.
class PreparedQuery {
 public:
  /// Executes and returns the result. Per-phase stats report only the
  /// work this call performed (parse/translate are always cached here).
  psql::QueryResult Run() const;

  /// Same, overriding the execution options for this run (a different
  /// option signature compiles its own exec-cache entry).
  psql::QueryResult Run(const BmoOptions& options) const;

  const psql::SelectStatement& statement() const;
  /// Normalized statement text — the engine's plan-cache key.
  const std::string& normalized_sql() const;
  /// The translated preference term ("" when the statement has none).
  std::string preference_term() const;

 private:
  friend class Engine;
  PreparedQuery(Engine* engine, std::shared_ptr<const engine_internal::Plan> plan,
                BmoOptions options)
      : engine_(engine), plan_(std::move(plan)), options_(options) {}

  Engine* engine_;
  std::shared_ptr<const engine_internal::Plan> plan_;
  BmoOptions options_;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Snapshots an existing catalog (cheap: relations are shared
  /// copy-on-write, no tuple copies).
  explicit Engine(const psql::Catalog& catalog, EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  /// Closes every live subscription (blocked consumers wake and observe
  /// closed()). Subscription handles must not outlive the engine.
  ~Engine();

  // --- table management (mutations bump versions and invalidate caches)

  /// Registers (or replaces) a relation and bumps its version. Replacing
  /// a table wholesale closes any subscriptions on it (there is no
  /// incremental delta for "everything changed").
  void RegisterTable(const std::string& name, Relation relation);
  /// Appends one row (copy-on-write: O(n) on the relation) and bumps the
  /// version. Throws std::out_of_range on an unknown table. Registered
  /// views are maintained and their subscribers receive deltas under the
  /// same critical section as the version bump.
  void Insert(const std::string& name, Tuple row);
  /// Removes every row matching `pred` (null = all rows); returns how
  /// many were removed. Same copy-on-write/version/invalidation contract
  /// as Insert; a delete that matches nothing leaves version and caches
  /// untouched. The SQL surface is `DELETE FROM <table> [WHERE cond]`.
  /// Throws std::out_of_range on an unknown table.
  size_t Delete(const std::string& name,
                const std::function<bool(const Tuple&)>& pred);
  bool HasTable(const std::string& name) const;
  /// Current immutable snapshot; throws std::out_of_range when unknown.
  std::shared_ptr<const Relation> Snapshot(const std::string& name) const;
  /// Monotonic per-table version (0 = no such table).
  uint64_t TableVersion(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // --- queries

  /// Parses (or fetches from the plan cache) and binds a prepared query.
  /// Throws psql::SyntaxError on malformed SQL.
  PreparedQuery Prepare(const std::string& sql);
  PreparedQuery Prepare(const std::string& sql, const BmoOptions& options);
  /// Binds an already-parsed statement (keyed by its canonical rendering).
  PreparedQuery Prepare(const psql::SelectStatement& stmt);
  PreparedQuery Prepare(const psql::SelectStatement& stmt,
                        const BmoOptions& options);

  /// Prepare + Run in one call; repeated texts hit the plan cache.
  psql::QueryResult Execute(const std::string& sql);
  psql::QueryResult Execute(const std::string& sql, const BmoOptions& options);
  psql::QueryResult Execute(const psql::SelectStatement& stmt);
  psql::QueryResult Execute(const psql::SelectStatement& stmt,
                            const BmoOptions& options);

  // --- continuous queries (incremental view maintenance, src/ivm/)

  /// A live continuous preference query: a move-only RAII handle on a
  /// maintained view's delta stream. The FIRST delta is always a resync
  /// snapshot of the current result set, taken in the same critical
  /// section that registered the subscription — every later delta applies
  /// to exactly the state the stream has already delivered (snapshot
  /// consistency). Destruction (or Cancel) unsubscribes. A Subscription
  /// must not outlive its Engine.
  class Subscription {
   public:
    Subscription() = default;
    Subscription(Subscription&& other) noexcept;
    Subscription& operator=(Subscription&& other) noexcept;
    Subscription(const Subscription&) = delete;
    Subscription& operator=(const Subscription&) = delete;
    ~Subscription();

    /// Engine-wide unique subscription id (the server's wire handle).
    uint64_t id() const { return id_; }
    bool active() const { return state_ != nullptr; }

    /// Row schema of delivered tuples / subscribed table / canonical term.
    /// Empty when !active().
    const Schema& schema() const;
    const std::string& table() const;
    const std::string& preference_term() const;

    /// Consumes the next queued delta. Poll never blocks; WaitFor blocks
    /// until a delta arrives, the subscription closes, or the timeout
    /// elapses (nullopt on the latter two).
    std::optional<ivm::ViewDelta> Poll();
    std::optional<ivm::ViewDelta> WaitFor(std::chrono::milliseconds timeout);

    /// Registers a readiness callback on the underlying delta queue,
    /// fired after every push and on close — lets an event loop drain
    /// via Poll() instead of parking a thread in WaitFor. The callback
    /// runs on the mutating thread (under the engine lock): it must be
    /// cheap and must not call back into the engine or this handle.
    /// No-op when !active(); nullptr clears.
    void SetNotifier(std::function<void()> notifier);

    /// True once cancelled, unsubscribed, or the engine shut down
    /// (queued deltas still drain through Poll).
    bool closed() const;
    size_t pending() const;
    /// Times the engine coalesced this subscriber's backlog into a
    /// resync because the queue was full.
    uint64_t coalesced_resyncs() const;
    /// Lifetime maintenance counters of the underlying view (shared with
    /// other subscribers of the same statement).
    ViewMaintenanceStats view_stats() const;

    /// Detaches from the engine; idempotent. The view is torn down with
    /// its last subscriber.
    void Cancel();

   private:
    friend class Engine;
    Subscription(Engine* engine, uint64_t id,
                 std::shared_ptr<ivm::SubscriptionState> state)
        : engine_(engine), id_(id), state_(std::move(state)) {}

    Engine* engine_ = nullptr;
    uint64_t id_ = 0;
    std::shared_ptr<ivm::SubscriptionState> state_;
  };

  /// Subscribes to a BMO statement (`SELECT * FROM t [WHERE ...]
  /// PREFERRING ...`): seeds a maintained view (shared with other
  /// subscribers of the same statement + options), registers the
  /// subscriber, and delivers the bootstrap resync. Insert/Delete then
  /// maintain the view incrementally instead of recomputing, and the
  /// statement's exec-cache entry is refreshed from the view on every
  /// mutation instead of being invalidated. Throws psql::BadArgumentError
  /// for statements outside the maintainable fragment (ranked / EXPLAIN /
  /// GROUPING / BUT ONLY / LIMIT / projections / no PREFERRING), and
  /// std::out_of_range on an unknown table. `max_pending_deltas` bounds
  /// this subscriber's queue (0 = EngineOptions default).
  Subscription Subscribe(const std::string& sql);
  Subscription Subscribe(const std::string& sql, const BmoOptions& options,
                         size_t max_pending_deltas = 0);
  /// Ends subscription `id`; no-op when unknown. Its state closes and
  /// the view is dropped with its last subscriber.
  void Unsubscribe(uint64_t id);
  /// Live subscriptions across all tables.
  size_t SubscriptionCount() const;

  // --- programmatic preference queries (the repository layer's path)

  /// Binds σ[P](table) as a prepared BMO query, cached like SQL plans
  /// (key: table + canonical term). Covers terms with no SQL spelling —
  /// rank(F), EXPLICIT graphs, repository-stored wish lists.
  PreparedQuery Prepare(const std::string& table, const PrefPtr& preference);
  PreparedQuery Prepare(const std::string& table, const PrefPtr& preference,
                        const BmoOptions& options);
  /// Binds a ranked (k-best, §6.2) query for any single-utility term
  /// (rank(F) included). k = 0 ranks everything.
  PreparedQuery PrepareRanked(const std::string& table,
                              const PrefPtr& preference, size_t top_k);

  // --- the engine's preference repository (repo/repository.h)

  /// Stores (or replaces) a named preference term. Same contract as
  /// PreferenceRepository::Store (the term must be serializable).
  void StorePreference(const std::string& name, const PrefPtr& preference);
  /// Looks a stored term up; nullptr when absent.
  PrefPtr GetPreference(const std::string& name) const;
  /// Prepares σ[P](table) for the stored term `name`; throws
  /// std::out_of_range when no such preference exists.
  PreparedQuery PrepareStored(const std::string& table,
                              const std::string& name);
  /// Installs a whole repository (e.g. loaded from disk); replaces the
  /// current store.
  void LoadRepository(PreferenceRepository repository);
  /// Snapshot copy of the current store (cheap: terms are shared).
  PreferenceRepository Repository() const;

  // --- introspection

  struct CacheStats {
    size_t plan_hits = 0;
    size_t plan_misses = 0;
    size_t exec_hits = 0;
    size_t exec_misses = 0;
    /// Exec entries dropped by table mutations.
    size_t invalidations = 0;
    /// Entries dropped by the LRU bounds (surfaced per query in
    /// QueryResult.stats).
    size_t plan_evictions = 0;
    size_t exec_evictions = 0;
    /// Exec entries for subscribed statements refreshed in place from
    /// their maintained view on mutation — each one is an invalidation
    /// the delta path turned into a warm hit.
    size_t exec_refreshes = 0;
    /// Engine-mutex acquisitions, and how many of them had to block
    /// behind another thread — the serving layer's contention signal.
    /// The mutex only guards the catalog map and cache indexes (never
    /// kernel work), so contentions/acquisitions climbing under load
    /// means the cache lookup path itself has become the bottleneck.
    uint64_t lock_acquisitions = 0;
    uint64_t lock_contentions = 0;
  };
  CacheStats cache_stats() const;
  void ClearCaches();

  /// Current statistics snapshot for `name` (derived on demand, then
  /// maintained incrementally across Insert). Throws std::out_of_range
  /// when the table is unknown.
  std::shared_ptr<const TableStats> Stats(const std::string& name);

  const EngineOptions& options() const { return options_; }

 private:
  friend class PreparedQuery;

  std::shared_ptr<const engine_internal::Plan> GetOrBuildPlan(
      const std::string& sql, psql::QueryStats* stats);
  std::shared_ptr<const engine_internal::Plan> GetOrBuildPlan(
      const psql::SelectStatement& stmt, psql::QueryStats* stats);
  std::shared_ptr<const engine_internal::Exec> GetOrBuildExec(
      const engine_internal::Plan& plan, const BmoOptions& options,
      psql::QueryStats* stats);
  psql::QueryResult RunWithStats(
      const engine_internal::Plan& plan, const BmoOptions& options,
      psql::QueryStats stats, std::chrono::steady_clock::time_point start);
  /// Drops exec-cache entries and the stats entry for `name`; caller
  /// holds mu_.
  void InvalidateTable(const std::string& name);
  /// Stats for (name, version): served from the per-table entry when
  /// fresh, else derived from `snapshot` outside the lock.
  std::shared_ptr<const TableStats> GetStats(
      const std::string& name, uint64_t version,
      const std::shared_ptr<const Relation>& snapshot);

  std::shared_ptr<const engine_internal::Plan> BuildTermPlan(
      const std::string& table, const PrefPtr& preference, bool ranked,
      size_t top_k);

  /// DELETE FROM routing target of RunWithStats: runs Engine::Delete and
  /// shapes the removed-count result relation.
  psql::QueryResult RunDelete(const engine_internal::Plan& plan,
                              psql::QueryStats stats,
                              std::chrono::steady_clock::time_point start);

  /// One maintained view plus its subscribers; shared by every
  /// subscription to the same (statement, options signature).
  struct ViewSlot {
    std::shared_ptr<ivm::MaintainedView> view;
    std::shared_ptr<const engine_internal::Plan> plan;
    BmoOptions options;
    /// plan key + options signature — the exec-cache key prefix the
    /// refresh path writes under.
    std::string exec_key_prefix;
    std::vector<std::pair<uint64_t, std::shared_ptr<ivm::SubscriptionState>>>
        subs;
  };

  /// All called with mu_ held: view maintenance, delta fan-out, and the
  /// exec-cache refresh run inside the mutation's critical section — the
  /// delta stream and the version bump are atomic to observers.
  void NotifyViewsInsert(const std::string& name, const Tuple& row,
                         size_t table_row, uint64_t new_version);
  void NotifyViewsDelete(const std::string& name,
                         const std::vector<size_t>& deleted_rows,
                         uint64_t new_version);
  void DeliverDelta(ViewSlot& slot, const ivm::ViewDelta& delta);
  void RefreshViewExec(const ViewSlot& slot, uint64_t version);
  Subscription AttachSubscriber(ViewSlot& slot, size_t max_pending);
  ViewMaintenanceStats SubscriptionViewStats(uint64_t id) const;

  /// Incrementally maintained per-table statistics (guarded by mu_; the
  /// builder's hash sets make Insert-time maintenance O(columns)).
  struct StatsEntry {
    uint64_t version = 0;
    std::shared_ptr<TableStatsBuilder> builder;
    std::shared_ptr<const TableStats> stats;
  };

  /// Locks mu_, counting the acquisition and (via a failed try_lock)
  /// whether it contended. All engine paths lock through this.
  std::unique_lock<std::mutex> Lock() const;

  EngineOptions options_;
  mutable std::mutex mu_;
  mutable std::atomic<uint64_t> lock_acquisitions_{0};
  mutable std::atomic<uint64_t> lock_contentions_{0};
  psql::Catalog catalog_;
  PreferenceRepository repository_;
  engine_internal::LruMap<engine_internal::Plan> plan_cache_;
  engine_internal::LruMap<engine_internal::Exec> exec_cache_;
  std::unordered_map<std::string, StatsEntry> stats_cache_;
  CacheStats stats_;
  /// Registered maintained views by table (guarded by mu_).
  std::unordered_map<std::string, std::vector<std::shared_ptr<ViewSlot>>>
      views_;
  uint64_t next_subscription_id_ = 1;
};

/// Collapses insignificant whitespace and comments (outside string
/// literals) and strips a trailing ';' — the engine's plan-cache key.
std::string NormalizeSql(const std::string& sql);

}  // namespace prefdb

#endif  // PREFDB_ENGINE_ENGINE_H_
