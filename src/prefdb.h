// Umbrella header for the prefdb library — a faithful implementation of
// W. Kießling, "Foundations of Preferences in Database Systems"
// (VLDB 2002): preferences as strict partial orders, preference
// engineering, the preference algebra, BMO query evaluation, and the
// Preference SQL / Preference XPATH language embeddings.

#ifndef PREFDB_PREFDB_H_
#define PREFDB_PREFDB_H_

#include "algebra/equivalence.h"
#include "algebra/laws.h"
#include "algebra/simplifier.h"
#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/hierarchy.h"
#include "core/numeric_preferences.h"
#include "core/preference.h"
#include "datagen/cars.h"
#include "datagen/random_terms.h"
#include "datagen/vectors.h"
#include "engine/engine.h"
#include "eval/better_than_graph.h"
#include "eval/bmo.h"
#include "eval/decomposition.h"
#include "eval/negotiation.h"
#include "eval/optimizer.h"
#include "eval/physical_plan.h"
#include "eval/quality.h"
#include "eval/ranked.h"
#include "exec/hardware.h"
#include "exec/parallel_bmo.h"
#include "exec/score_table.h"
#include "exec/simd/dominance.h"
#include "exec/thread_pool.h"
#include "ivm/maintained_view.h"
#include "stats/stats.h"
#include "mining/miner.h"
#include "psql/catalog.h"
#include "psql/executor.h"
#include "psql/parser.h"
#include "psql/translator.h"
#include "pxpath/xml.h"
#include "pxpath/xpath.h"
#include "relation/csv.h"
#include "relation/date.h"
#include "repo/repository.h"
#include "repo/serializer.h"
#include "relation/relation.h"

#endif  // PREFDB_PREFDB_H_
