#include "repo/repository.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "repo/serializer.h"

namespace prefdb {

namespace {

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

}  // namespace

void PreferenceRepository::Store(const std::string& name,
                                 const PrefPtr& pref) {
  if (!ValidName(name)) {
    throw std::invalid_argument("invalid repository entry name '" + name +
                                "'");
  }
  if (!pref) throw std::invalid_argument("cannot store a null preference");
  if (!IsSerializable(pref)) {
    throw std::invalid_argument(
        "preference is not serializable (contains opaque functions): " +
        pref->ToString());
  }
  entries_.insert_or_assign(name, pref);
}

PrefPtr PreferenceRepository::Get(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<std::string> PreferenceRepository::Names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, pref] : entries_) out.push_back(name);
  return out;
}

std::string PreferenceRepository::ToText() const {
  std::string out = "# prefdb preference repository\n";
  for (const auto& [name, pref] : entries_) {
    out += name + " = " + SerializePreference(pref) + "\n";
  }
  return out;
}

PreferenceRepository PreferenceRepository::FromText(const std::string& text) {
  PreferenceRepository repo;
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("repository line " + std::to_string(lineno) +
                                  ": missing '='");
    }
    std::string name = line.substr(begin, eq - begin);
    size_t name_end = name.find_last_not_of(" \t");
    name = name.substr(0, name_end + 1);
    try {
      repo.Store(name, ParsePreferenceTerm(line.substr(eq + 1)));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("repository line " + std::to_string(lineno) +
                                  ": " + e.what());
    }
  }
  return repo;
}

void PreferenceRepository::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write repository file: " + path);
  out << ToText();
  if (!out) throw std::runtime_error("short write to " + path);
}

PreferenceRepository PreferenceRepository::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read repository file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromText(buf.str());
}

}  // namespace prefdb
