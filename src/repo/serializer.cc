#include "repo/serializer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"

namespace prefdb {

namespace {

std::string NumText(double d) {
  if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
    return std::to_string(static_cast<int64_t>(d));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

std::string ValueText(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(v.as_int());
    case ValueType::kDouble:
      return NumText(v.as_double()) +
             (v.as_double() == std::floor(v.as_double()) ? ".0" : "");
    case ValueType::kString: {
      std::string out = "'";
      for (char c : v.as_string()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      return out + "'";
    }
  }
  return "NULL";
}

std::string SetText(const ValueSet& set) {
  std::vector<Value> values(set.begin(), set.end());
  std::sort(values.begin(), values.end());
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += ValueText(values[i]);
  }
  return out + "}";
}

}  // namespace

std::string SerializePreference(const PrefPtr& pref) {
  switch (pref->kind()) {
    case PreferenceKind::kPos: {
      const auto& p = dynamic_cast<const PosPreference&>(*pref);
      return "POS(" + p.attribute() + ", " + SetText(p.pos_set()) + ")";
    }
    case PreferenceKind::kNeg: {
      const auto& p = dynamic_cast<const NegPreference&>(*pref);
      return "NEG(" + p.attribute() + ", " + SetText(p.neg_set()) + ")";
    }
    case PreferenceKind::kPosNeg: {
      const auto& p = dynamic_cast<const PosNegPreference&>(*pref);
      return "POSNEG(" + p.attribute() + ", " + SetText(p.pos_set()) + ", " +
             SetText(p.neg_set()) + ")";
    }
    case PreferenceKind::kPosPos: {
      const auto& p = dynamic_cast<const PosPosPreference&>(*pref);
      return "POSPOS(" + p.attribute() + ", " + SetText(p.pos1_set()) +
             ", " + SetText(p.pos2_set()) + ")";
    }
    case PreferenceKind::kExplicit: {
      const auto& p = dynamic_cast<const ExplicitPreference&>(*pref);
      // Serialize the original edge list (closure is reconstructed).
      std::vector<std::pair<Value, Value>> edges;
      for (const auto& e : p.edges()) edges.push_back({e.worse, e.better});
      std::sort(edges.begin(), edges.end(),
                [](const auto& a, const auto& b) {
                  if (a.first < b.first) return true;
                  if (b.first < a.first) return false;
                  return a.second < b.second;
                });
      std::string out = "EXPLICIT(" + p.attribute() + ", {";
      for (size_t i = 0; i < edges.size(); ++i) {
        if (i > 0) out += ", ";
        out += "(" + ValueText(edges[i].first) + ", " +
               ValueText(edges[i].second) + ")";
      }
      return out + "})";
    }
    case PreferenceKind::kPosNegGraphs: {
      const auto& p = dynamic_cast<const PosNegGraphsPreference&>(*pref);
      auto side = [](const ExplicitPreference& graph, const ValueSet& range) {
        std::vector<std::pair<Value, Value>> edges;
        for (const auto& e : graph.edges()) edges.push_back({e.worse, e.better});
        std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
          if (a.first < b.first) return true;
          if (b.first < a.first) return false;
          return a.second < b.second;
        });
        std::string out = "{";
        for (size_t i = 0; i < edges.size(); ++i) {
          if (i > 0) out += ", ";
          out += "(" + ValueText(edges[i].first) + ", " +
                 ValueText(edges[i].second) + ")";
        }
        out += "}, ";
        // Isolated nodes: range values not in the edge graph.
        ValueSet isolated;
        for (const Value& v : range) {
          if (!graph.graph_values().count(v)) isolated.insert(v);
        }
        out += SetText(isolated);
        return out;
      };
      return "GRAPHS(" + p.attribute() + ", " +
             side(p.pos_graph(), p.pos_range()) + ", " +
             side(p.neg_graph(), p.neg_range()) + ")";
    }
    case PreferenceKind::kLayered: {
      const auto* p = dynamic_cast<const LayeredPreference*>(pref.get());
      if (p == nullptr) {
        throw std::invalid_argument(
            "condition-layered preferences are not serializable: " +
            pref->ToString());
      }
      std::string out = "LAYERED(" + p->attribute() + ", [";
      const auto& layers = p->layers();
      for (size_t i = 0; i < layers.size(); ++i) {
        if (i > 0) out += ", ";
        if (layers[i].is_others) {
          out += "OTHERS";
        } else {
          ValueSet set(layers[i].values.begin(), layers[i].values.end());
          out += SetText(set);
        }
      }
      return out + "])";
    }
    case PreferenceKind::kAround: {
      const auto& p = dynamic_cast<const AroundPreference&>(*pref);
      return "AROUND(" + p.attribute() + ", " + NumText(p.target()) + ")";
    }
    case PreferenceKind::kBetween: {
      const auto& p = dynamic_cast<const BetweenPreference&>(*pref);
      return "BETWEEN(" + p.attribute() + ", " + NumText(p.low()) + ", " +
             NumText(p.up()) + ")";
    }
    case PreferenceKind::kLowest:
      return "LOWEST(" + pref->attributes()[0] + ")";
    case PreferenceKind::kHighest:
      return "HIGHEST(" + pref->attributes()[0] + ")";
    case PreferenceKind::kPareto: {
      auto kids = pref->children();
      return "PARETO(" + SerializePreference(kids[0]) + ", " +
             SerializePreference(kids[1]) + ")";
    }
    case PreferenceKind::kPrioritized: {
      auto kids = pref->children();
      return "PRIOR(" + SerializePreference(kids[0]) + ", " +
             SerializePreference(kids[1]) + ")";
    }
    case PreferenceKind::kIntersection: {
      auto kids = pref->children();
      return "ISECT(" + SerializePreference(kids[0]) + ", " +
             SerializePreference(kids[1]) + ")";
    }
    case PreferenceKind::kDisjointUnion: {
      auto kids = pref->children();
      return "UNION(" + SerializePreference(kids[0]) + ", " +
             SerializePreference(kids[1]) + ")";
    }
    case PreferenceKind::kDual:
      return "DUAL(" + SerializePreference(pref->children()[0]) + ")";
    case PreferenceKind::kAntiChain: {
      std::string out = "ANTICHAIN(";
      const auto& attrs = pref->attributes();
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (i > 0) out += ", ";
        out += attrs[i];
      }
      return out + ")";
    }
    case PreferenceKind::kScore:
    case PreferenceKind::kRankF:
    case PreferenceKind::kLinearSum:
    case PreferenceKind::kSubset:
      throw std::invalid_argument(
          std::string(PreferenceKindName(pref->kind())) +
          " preferences wrap opaque functions and are not serializable: " +
          pref->ToString());
  }
  throw std::invalid_argument("unknown preference kind");
}

bool IsSerializable(const PrefPtr& pref) {
  switch (pref->kind()) {
    case PreferenceKind::kScore:
    case PreferenceKind::kRankF:
    case PreferenceKind::kLinearSum:
    case PreferenceKind::kSubset:
      return false;
    case PreferenceKind::kLayered:
      if (dynamic_cast<const LayeredPreference*>(pref.get()) == nullptr) {
        return false;
      }
      break;
    default:
      break;
  }
  for (const auto& child : pref->children()) {
    if (!IsSerializable(child)) return false;
  }
  return true;
}

namespace {

// Recursive-descent parser for the serialization format.
class TermParser {
 public:
  explicit TermParser(const std::string& text) : in_(text) {}

  PrefPtr Parse() {
    PrefPtr p = ParseTerm();
    SkipWs();
    if (pos_ != in_.size()) Fail("trailing input");
    return p;
  }

 private:
  [[noreturn]] void Fail(const std::string& m) const {
    throw std::invalid_argument("preference parse error at offset " +
                                std::to_string(pos_) + ": " + m);
  }

  void SkipWs() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }
  char Cur() {
    SkipWs();
    return pos_ < in_.size() ? in_[pos_] : '\0';
  }
  void Expect(char c) {
    if (Cur() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool Accept(char c) {
    if (Cur() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ParseName() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '_' || in_[pos_] == '/')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a name");
    return in_.substr(start, pos_ - start);
  }

  double ParseNumber() {
    SkipWs();
    size_t start = pos_;
    if (pos_ < in_.size() && (in_[pos_] == '-' || in_[pos_] == '+')) ++pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '.' || in_[pos_] == 'e' || in_[pos_] == 'E' ||
            ((in_[pos_] == '-' || in_[pos_] == '+') && pos_ > start &&
             (in_[pos_ - 1] == 'e' || in_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    std::string text = in_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end == nullptr || *end != '\0') {
      Fail("malformed number '" + text + "'");
    }
    return v;
  }

  Value ParseValue() {
    char c = Cur();
    if (c == '\'') {
      ++pos_;
      std::string out;
      while (pos_ < in_.size()) {
        if (in_[pos_] == '\'') {
          if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '\'') {
            out += '\'';
            pos_ += 2;
            continue;
          }
          ++pos_;
          return Value(out);
        }
        out += in_[pos_++];
      }
      Fail("unterminated string");
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      std::string name = ParseName();
      if (name == "NULL") return Value();
      Fail("unexpected word '" + name + "' (expected a value)");
    }
    size_t before = pos_;
    double d = ParseNumber();
    std::string text = in_.substr(before, pos_ - before);
    bool integral = text.find('.') == std::string::npos &&
                    text.find('e') == std::string::npos &&
                    text.find('E') == std::string::npos;
    if (integral) return Value(static_cast<int64_t>(d));
    return Value(d);
  }

  std::vector<Value> ParseValueSet() {
    Expect('{');
    std::vector<Value> out;
    if (Accept('}')) return out;
    out.push_back(ParseValue());
    while (Accept(',')) out.push_back(ParseValue());
    Expect('}');
    return out;
  }

  std::vector<ExplicitEdge> ParseEdgeList() {
    Expect('{');
    std::vector<ExplicitEdge> edges;
    if (Accept('}')) return edges;
    do {
      Expect('(');
      Value worse = ParseValue();
      Expect(',');
      Value better = ParseValue();
      Expect(')');
      edges.push_back({worse, better});
    } while (Accept(','));
    Expect('}');
    return edges;
  }

  PrefPtr ParseTerm() {
    std::string ctor = ParseName();
    Expect('(');
    PrefPtr result;
    if (ctor == "POS" || ctor == "NEG") {
      std::string attr = ParseName();
      Expect(',');
      auto set = ParseValueSet();
      result = ctor == "POS" ? Pos(attr, set) : Neg(attr, set);
    } else if (ctor == "POSNEG" || ctor == "POSPOS" ||
               ctor == "POS/NEG" || ctor == "POS/POS") {
      std::string attr = ParseName();
      Expect(',');
      auto a = ParseValueSet();
      Expect(',');
      auto b = ParseValueSet();
      result = (ctor == "POSNEG" || ctor == "POS/NEG") ? PosNeg(attr, a, b)
                                                       : PosPos(attr, a, b);
    } else if (ctor == "EXPLICIT") {
      std::string attr = ParseName();
      Expect(',');
      result = Explicit(attr, ParseEdgeList());
    } else if (ctor == "GRAPHS") {
      std::string attr = ParseName();
      Expect(',');
      auto pos_edges = ParseEdgeList();
      Expect(',');
      auto pos_nodes = ParseValueSet();
      Expect(',');
      auto neg_edges = ParseEdgeList();
      Expect(',');
      auto neg_nodes = ParseValueSet();
      result = PosNegGraphs(attr, std::move(pos_edges), std::move(pos_nodes),
                            std::move(neg_edges), std::move(neg_nodes));
    } else if (ctor == "LAYERED") {
      std::string attr = ParseName();
      Expect(',');
      Expect('[');
      std::vector<LayeredPreference::Layer> layers;
      do {
        if (Cur() == '{') {
          layers.push_back({ParseValueSet(), false});
        } else {
          std::string word = ParseName();
          if (word != "OTHERS") Fail("expected a value set or OTHERS");
          layers.push_back(LayeredPreference::Others());
        }
      } while (Accept(','));
      Expect(']');
      result = Layered(attr, std::move(layers));
    } else if (ctor == "AROUND") {
      std::string attr = ParseName();
      Expect(',');
      result = Around(attr, ParseNumber());
    } else if (ctor == "BETWEEN") {
      std::string attr = ParseName();
      Expect(',');
      double low = ParseNumber();
      Expect(',');
      result = Between(attr, low, ParseNumber());
    } else if (ctor == "LOWEST") {
      result = Lowest(ParseName());
    } else if (ctor == "HIGHEST") {
      result = Highest(ParseName());
    } else if (ctor == "ANTICHAIN") {
      std::vector<std::string> attrs;
      attrs.push_back(ParseName());
      while (Accept(',')) attrs.push_back(ParseName());
      result = AntiChain(attrs);
    } else if (ctor == "DUAL") {
      result = Dual(ParseTerm());
    } else if (ctor == "PARETO" || ctor == "PRIOR" || ctor == "ISECT" ||
               ctor == "UNION") {
      PrefPtr left = ParseTerm();
      Expect(',');
      PrefPtr right = ParseTerm();
      if (ctor == "PARETO") result = Pareto(left, right);
      else if (ctor == "PRIOR") result = Prioritized(left, right);
      else if (ctor == "ISECT") result = Intersection(left, right);
      else result = DisjointUnion(left, right);
    } else {
      Fail("unknown constructor '" + ctor + "'");
    }
    Expect(')');
    return result;
  }

  const std::string& in_;
  size_t pos_ = 0;
};

}  // namespace

PrefPtr ParsePreferenceTerm(const std::string& text) {
  return TermParser(text).Parse();
}

}  // namespace prefdb
