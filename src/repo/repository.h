// Persistent preference repository (the §7 roadmap item): a named store of
// preference terms with a human-readable on-disk format, enabling
// personalized query composition — users save their wish lists, e-shops
// recall and combine them.
//
// File format, one entry per line (comments with '#'):
//   julia_colors = NEG(color, {'gray'})
//   julia_wishes = PRIOR(NEG(color, {'gray'}), LOWEST(price))

#ifndef PREFDB_REPO_REPOSITORY_H_
#define PREFDB_REPO_REPOSITORY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/preference.h"

namespace prefdb {

class PreferenceRepository {
 public:
  /// Stores (or replaces) a term under a name. Names must be non-empty
  /// identifiers ([A-Za-z0-9_.-]+); the term must be serializable
  /// (std::invalid_argument otherwise, so a repository can always be
  /// persisted).
  void Store(const std::string& name, const PrefPtr& pref);

  /// Looks a term up; nullptr when absent.
  PrefPtr Get(const std::string& name) const;

  bool Has(const std::string& name) const { return entries_.count(name) > 0; }
  bool Remove(const std::string& name) { return entries_.erase(name) > 0; }
  size_t size() const { return entries_.size(); }

  /// Sorted entry names.
  std::vector<std::string> Names() const;

  /// Serializes the whole repository to the line-based text format.
  std::string ToText() const;

  /// Parses a repository from text; throws std::invalid_argument with the
  /// offending line number on malformed entries.
  static PreferenceRepository FromText(const std::string& text);

  /// File convenience wrappers; throw std::runtime_error on I/O failure.
  void SaveToFile(const std::string& path) const;
  static PreferenceRepository LoadFromFile(const std::string& path);

 private:
  std::map<std::string, PrefPtr> entries_;  // ordered for stable output
};

}  // namespace prefdb

#endif  // PREFDB_REPO_REPOSITORY_H_
