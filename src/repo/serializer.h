// Textual serialization of preference terms — the storage format of the
// persistent preference repository (the paper's §7 outlook: "a persistent
// preference repository"). Round-trip safe for every declarative
// constructor:
//
//   POS(color, {'yellow', 'green'})
//   POSNEG(color, {'blue'}, {'gray', 'red'})
//   EXPLICIT(color, {('green', 'yellow'), ('yellow', 'white')})
//   LAYERED(color, [{'gold'}, OTHERS, {'gray'}])
//   AROUND(price, 40000)   BETWEEN(price, 10, 20)
//   LOWEST(price)          HIGHEST(power)
//   PARETO(t1, t2)  PRIOR(t1, t2)  ISECT(t1, t2)  UNION(t1, t2)
//   DUAL(t)  ANTICHAIN(a1, a2, ...)
//
// Preferences wrapping opaque C++ functions (SCORE, rank(F), linear sums,
// subset restrictions, condition-layered terms) are not serializable;
// SerializePreference throws std::invalid_argument for those.

#ifndef PREFDB_REPO_SERIALIZER_H_
#define PREFDB_REPO_SERIALIZER_H_

#include <string>

#include "core/preference.h"

namespace prefdb {

/// Serializes a term into the canonical text format above.
std::string SerializePreference(const PrefPtr& pref);

/// Parses a term back. Throws std::invalid_argument with position info on
/// malformed input.
PrefPtr ParsePreferenceTerm(const std::string& text);

/// True iff the term contains only serializable constructors.
bool IsSerializable(const PrefPtr& pref);

}  // namespace prefdb

#endif  // PREFDB_REPO_SERIALIZER_H_
