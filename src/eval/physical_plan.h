// The physical plan: the single planned artifact the whole execution
// pipeline consumes. One PhysicalPlan replaces the planning state that
// used to be smeared across AlgorithmChoice (the optimizer's pick),
// KernelPolicy (SIMD mode + BNL tile size), ParallelBmoConfig (worker
// and partition shape) and the planning fields of BmoOptions: the
// optimizer emits it, eval/bmo + exec/score_table + exec/parallel_bmo
// execute it, and engine/engine caches it per (statement, table version,
// options).
//
// Plans are produced by a calibrated cost model (the paper's §7 outlook:
// "cost-based optimization to choose between direct implementations of
// the Pareto operator and divide & conquer algorithms"): per-algorithm
// cost formulas over TermStats (stats/stats.h) with constants calibrated
// from the PR 4 benchmark families (bench_skyline_algorithms kernel
// families; re-validated continuously by bench_planner's misprediction
// gate).

#ifndef PREFDB_EVAL_PHYSICAL_PLAN_H_
#define PREFDB_EVAL_PHYSICAL_PLAN_H_

#include <string>
#include <vector>

#include "eval/bmo.h"
#include "stats/stats.h"

namespace prefdb {

/// One row of the cost model's comparison table: the estimate (or the
/// reason for ineligibility) of a candidate algorithm.
struct AlgorithmCost {
  BmoAlgorithm algorithm = BmoAlgorithm::kBlockNestedLoop;
  bool eligible = false;
  double est_ns = 0.0;
  std::string note;  // ineligibility reason or formula driver summary
};

/// Which algorithm families the planner may consider. Block-level
/// planning (a single distinct-value block) excludes the relation-level
/// strategies; per-group and per-partition planning additionally exclude
/// nested parallelism.
struct PlanScope {
  bool allow_parallel = true;
  bool allow_decomposition = true;
};

/// The planned physical execution of one BMO evaluation.
struct PhysicalPlan {
  /// Chosen algorithm. kAuto only in pass-through plans built by
  /// FromOptions (per-block resolution then happens data-aware inside
  /// the kernels, exactly like the pre-plan behavior).
  BmoAlgorithm algorithm = BmoAlgorithm::kAuto;
  /// Compile into the score-table kernels when the term allows it.
  bool vectorize = true;
  /// Batch dominance kernel selection (exec/simd/dominance.h).
  SimdMode simd = SimdMode::kAuto;
  /// Blocked-BNL tile size; 0 = auto (L2-sized via BnlTileBudgetBytes).
  size_t bnl_tile_rows = 0;
  /// Worker budget (0 = hardware concurrency; FromOptions and the
  /// planner resolve it to a concrete count).
  size_t num_threads = 0;
  /// Advisory partition shape the cost model assumed for kParallel
  /// (1 = sequential). The executor re-derives the actual count from
  /// num_threads / min_partition_size / the live value count with the
  /// same formula; explicit pass-through requests leave this at 1.
  size_t partitions = 1;
  size_t min_partition_size = 4096;
  /// Per-partition algorithm for kParallel (kAuto = data-aware per
  /// partition, the default).
  BmoAlgorithm partition_algorithm = BmoAlgorithm::kAuto;

  /// The statistics the plan was costed against.
  TermStats stats;
  /// Estimated cost of the chosen algorithm (0 when not costed, e.g.
  /// explicit algorithm requests or pass-through plans).
  double estimated_ns = 0.0;
  /// The cost model's full comparison table (empty when not costed).
  std::vector<AlgorithmCost> considered;
  std::string rationale;

  /// Pass-through plan for callers that resolve the algorithm per block
  /// (per-group evaluation, partition fallbacks, direct kernel tests):
  /// carries the request's execution knobs, costs nothing.
  static PhysicalPlan FromOptions(const BmoOptions& options);

  /// Multi-line cost report: the stats line plus one line per considered
  /// algorithm (estimate or ineligibility), marking the choice. Empty
  /// string when the plan was not costed.
  std::string ExplainCosts() const;
};

/// Light structural statistics for a materialized distinct-value block
/// on the closure path (no compiled table): exact m, syntactic D&C and
/// sort-key eligibility, closed-form window estimate.
TermStats EstimateClosureBlockStats(const Schema& proj_schema,
                                    size_t distinct_values, size_t input_rows,
                                    const PrefPtr& p);

/// Builds the plan for evaluating a term over a pool described by
/// `stats` (derive stats with EstimateTermStats or MeasureTermStats).
/// An explicit `request.algorithm` (!= kAuto) short-circuits the cost
/// comparison and is honored verbatim (kernels still degrade ineligible
/// requests exactly as before); kAuto runs the calibrated cost model
/// over every algorithm `scope` allows and picks the cheapest.
PhysicalPlan PlanPhysical(const TermStats& stats, const BmoOptions& request,
                          const PlanScope& scope = {});

/// Cost-model constants, calibrated from the PR 4 bench families on the
/// reference machine (see physical_plan.cc for the per-constant
/// derivation). Exposed for bench_planner and tests.
struct CostConstants {
  /// Per-(row pair, column) dominance test, by kernel class.
  double pair_closure_ns = 45.0;  // LessFn closure dispatch, per pair
  double pair_rowwise_ns = 1.15;  // row-major pair loops (SimdMode::kOff)
  double pair_scalar_ns = 0.65;   // portable batch kernels
  double pair_avx2_ns = 0.32;     // AVX2 batch kernels
  /// Per-(element, key) presort comparison (SFS, compiled keys).
  double sort_key_ns = 20.0;
  /// Per-element closure sort (decomposition cascade's chain sort).
  double closure_sort_ns = 40.0;
  /// Early-exit window probes a presorted (dominated) candidate pays.
  double sfs_probe_rows = 6.0;
  /// KLP75 per-(element, log-level) constant, by kernel class.
  double dc_batch_ns = 3.2;
  double dc_rowwise_ns = 3.9;
  /// Per-row streaming overhead of a window scan.
  double stream_row_ns = 2.0;
  /// Per-partition spawn/collect overhead of the parallel engine.
  double spawn_ns = 30000.0;
  /// The blocked-BNL tile budget measured from the machine's L2 cache at
  /// startup (exec/hardware.h). Windows wider than the rows this budget
  /// holds pay the tile-reduce-then-merge passes, modeled as extra
  /// survivor merges per tile.
  size_t bnl_tile_budget_bytes = 256 * 1024;

  static const CostConstants& Get();
};

/// Estimated cost of one incremental view-maintenance pass
/// (ivm/maintained_view.h): a batch-kernel dominance pass of `batch`
/// touched rows (the inserted row, or the witness orphans of a delete)
/// against an antichain of `window` rows, plus witness re-assignment for
/// the dominated remainder. Scales with the *touched* set, not the table.
double EstimateViewMaintenanceNs(size_t window, size_t batch,
                                 const CostConstants& c = CostConstants::Get());

/// Estimated cost of reseeding the view from scratch instead: a full
/// maxima pass over all `rows` live candidates (window `window`). Delete
/// maintenance compares this against EstimateViewMaintenanceNs and takes
/// the cheaper path — when most witnesses die at once, orphan maintenance
/// degenerates to exactly this scan and reseeding is honest about it.
double EstimateViewReseedNs(size_t rows, size_t window,
                            const CostConstants& c = CostConstants::Get());

}  // namespace prefdb

#endif  // PREFDB_EVAL_PHYSICAL_PLAN_H_
