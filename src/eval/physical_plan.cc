// Cost formulas and constants.
//
// Calibration (PR 4 bench families, bench/baselines/BENCH_kernels.json,
// Release, one core; m = 4096 distinct values):
//   BNL anti d4:  rowwise 14.35ms / scalar 8.04ms / AVX2 4.05ms with a
//                 measured window ~1.5k rows -> per-(pair, column) costs
//                 of ~1.15 / 0.65 / 0.32 ns (cost = c * d * m * w/2).
//   DC indep d4:  rowwise 2.29ms / AVX2-base-cases 1.88ms
//                 -> c_dc * m * log2(m)^(d-2) with c_dc ~3.9 / ~3.2 ns.
//   SFS anti d4:  AVX2 1.46ms = presort (~20 ns per (element, key)
//                 comparison at m log2 m) + the one-sided scan, which
//                 costs early-exit probes for dominated candidates plus
//                 ~w^2/4 survivor cross-tests.
// bench_planner re-validates these continuously: the chosen plan must
// stay within 1.3x of the best measured algorithm on each family.

#include "eval/physical_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "exec/hardware.h"
#include "exec/simd/dominance.h"
#include "exec/thread_pool.h"

namespace prefdb {

namespace {

enum class KernelClass { kClosure, kRowwise, kScalar, kAvx2 };

const char* KernelClassName(KernelClass k) {
  switch (k) {
    case KernelClass::kClosure: return "closure";
    case KernelClass::kRowwise: return "rowwise";
    case KernelClass::kScalar: return "scalar";
    case KernelClass::kAvx2: return "avx2";
  }
  return "?";
}

KernelClass ResolveKernelClass(const TermStats& stats,
                               const BmoOptions& request) {
  if (!request.vectorize || !stats.compilable) return KernelClass::kClosure;
  if (request.simd == SimdMode::kOff) return KernelClass::kRowwise;
  const simd::KernelOps* ops = simd::ResolveKernel(request.simd);
  if (ops == nullptr) return KernelClass::kRowwise;
  return std::string(ops->name) == "avx2" ? KernelClass::kAvx2
                                          : KernelClass::kScalar;
}

/// Cost of one dominance test between two rows, by kernel class. The
/// compiled kernels scale with the column count; the closure path pays
/// per-node std::function dispatch with a milder tree-size factor.
double PairNs(const CostConstants& c, KernelClass k, double d) {
  switch (k) {
    case KernelClass::kClosure: return c.pair_closure_ns + 8.0 * d;
    case KernelClass::kRowwise: return c.pair_rowwise_ns * d;
    case KernelClass::kScalar: return c.pair_scalar_ns * d;
    case KernelClass::kAvx2: return c.pair_avx2_ns * d;
  }
  return c.pair_closure_ns;
}

double Log2(double x) { return std::log2(std::max(2.0, x)); }

std::string FmtMs(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", ns / 1e6);
  return buf;
}

}  // namespace

const CostConstants& CostConstants::Get() {
  static const CostConstants constants = [] {
    CostConstants c;
    c.bnl_tile_budget_bytes = BnlTileBudgetBytes();
    return c;
  }();
  return constants;
}

double EstimateViewMaintenanceNs(size_t window, size_t batch,
                                 const CostConstants& c) {
  // Pairwise dominance of the touched batch against the antichain plus
  // among itself (the orphan set can contain mutual dominators), at the
  // batch-kernel rate, plus per-row stream overhead and one witness probe
  // (expected half-window scan) per dominated batch row.
  const double pairs = static_cast<double>(batch) *
                       (static_cast<double>(window) +
                        static_cast<double>(batch) / 2.0);
  return pairs * c.pair_scalar_ns +
         static_cast<double>(batch) *
             (c.stream_row_ns + static_cast<double>(window) / 2.0 *
                                    c.pair_scalar_ns);
}

double EstimateViewReseedNs(size_t rows, size_t window,
                            const CostConstants& c) {
  // A BNL-shaped full pass: every live candidate streams against the
  // window, dominated candidates additionally pay a witness probe.
  const double n = static_cast<double>(rows);
  const double w = static_cast<double>(window == 0 ? 1 : window);
  return n * w * c.pair_scalar_ns + n * c.stream_row_ns +
         n * w / 2.0 * c.pair_scalar_ns;
}

TermStats EstimateClosureBlockStats(const Schema& proj_schema,
                                    size_t distinct_values, size_t input_rows,
                                    const PrefPtr& p) {
  TermStats stats;
  stats.input_rows = input_rows;
  stats.distinct_values = distinct_values;
  stats.dims = std::max<size_t>(1, p->attributes().size());
  std::vector<PrefPtr> leaves;
  stats.dc_exact = CanUseDivideConquer(p, &leaves);
  try {
    stats.closure_keys = p->BindSortKeys(proj_schema).has_value();
  } catch (const std::out_of_range&) {
    stats.closure_keys = false;
  }
  stats.est_window = WindowClosedForm(distinct_values, stats.dims);
  return stats;
}

PhysicalPlan PhysicalPlan::FromOptions(const BmoOptions& options) {
  PhysicalPlan plan;
  plan.algorithm = options.algorithm;
  plan.vectorize = options.vectorize;
  plan.simd = options.simd;
  plan.bnl_tile_rows = options.bnl_tile_rows;
  plan.num_threads = ThreadPool::ResolveThreads(options.num_threads);
  return plan;
}

std::string PhysicalPlan::ExplainCosts() const {
  if (considered.empty()) return "";
  std::string out = "stats: " + stats.ToString() + "\n";
  out += "cost model:\n";
  for (const AlgorithmCost& c : considered) {
    out += "  " + std::string(BmoAlgorithmName(c.algorithm)) + ": ";
    if (c.eligible) {
      out += "est " + FmtMs(c.est_ns);
      if (c.algorithm == algorithm) out += "  <- chosen";
      if (!c.note.empty()) out += "  (" + c.note + ")";
    } else {
      out += "not eligible (" + c.note + ")";
    }
    out += "\n";
  }
  return out;
}

PhysicalPlan PlanPhysical(const TermStats& stats, const BmoOptions& request,
                          const PlanScope& scope) {
  PhysicalPlan plan = PhysicalPlan::FromOptions(request);
  plan.stats = stats;

  if (request.algorithm != BmoAlgorithm::kAuto) {
    plan.rationale = "algorithm explicitly requested";
    if (request.algorithm == BmoAlgorithm::kParallel) {
      plan.partitions = std::max<size_t>(
          1, std::min(plan.num_threads,
                      stats.distinct_values /
                          std::max<size_t>(1, plan.min_partition_size)));
    }
    return plan;
  }

  const CostConstants& c = CostConstants::Get();
  const KernelClass kc = ResolveKernelClass(stats, request);
  const double m = static_cast<double>(std::max<size_t>(1, stats.distinct_values));
  const double d = static_cast<double>(std::max<size_t>(1, stats.dims));
  const double w = std::max(1.0, stats.est_window);
  const double pair = PairNs(c, kc, d);
  const bool batch = kc == KernelClass::kScalar || kc == KernelClass::kAvx2;

  std::vector<AlgorithmCost>& costs = plan.considered;

  // --- BNL: every candidate streams against a window of current maxima
  // (average size ~w/2). Once the window outgrows the machine's measured
  // tile budget (runtime-detected L2, exec/hardware.h), the blocked loop
  // pays one reduce-then-merge pass per tile: ~w survivor cross-tests
  // each, on top of the cache-resident streaming.
  // Mirrors ScoreTable::ResolveTileRows, including its [1024, 16384]
  // clamp, so the modeled tiling penalty matches the kernel's real tile.
  const double tile_rows = std::min(
      16384.0,
      std::max(1024.0,
               static_cast<double>(c.bnl_tile_budget_bytes) /
                   (d * (sizeof(double) + sizeof(uint32_t)) + sizeof(size_t))));
  double bnl_ns = pair * m * std::max(1.0, w) / 2.0 + c.stream_row_ns * m;
  if (w > tile_rows) bnl_ns += pair * (m / tile_rows) * w;
  costs.push_back({BmoAlgorithm::kBlockNestedLoop, true, bnl_ns,
                   batch ? "tiled SIMD batch window" : "window scan"});

  // --- SFS: presort by the table's (or closure's) topologically
  // compatible keys, then a one-sided scan — dominated candidates exit
  // after a few probes, survivors cross-test against the whole window.
  const bool sfs_eligible =
      kc == KernelClass::kClosure ? stats.closure_keys : stats.table_keys > 0;
  if (sfs_eligible) {
    const double keys = static_cast<double>(std::max<size_t>(
        1, kc == KernelClass::kClosure ? 1 : stats.table_keys));
    const double sort_ns =
        (kc == KernelClass::kClosure ? c.closure_sort_ns : c.sort_key_ns) *
        keys * m * Log2(m);
    const double scan_ns = pair * (m * c.sfs_probe_rows + w * w / 4.0);
    costs.push_back({BmoAlgorithm::kSortFilter, true, sort_ns + scan_ns,
                     "presort + one-sided window"});
  } else {
    costs.push_back({BmoAlgorithm::kSortFilter, false, 0.0,
                     "no topologically compatible sort keys"});
  }

  // --- KLP75 divide & conquer: exact only when coordinatewise score
  // dominance is the preference order (flat Pareto, injective columns).
  if (stats.dc_exact) {
    const double dc_c = batch ? c.dc_batch_ns : c.dc_rowwise_ns;
    const double dc_ns =
        dc_c * m * std::pow(Log2(m), std::max(1.0, d - 2.0));
    costs.push_back({BmoAlgorithm::kDivideConquer, true, dc_ns,
                     "KLP75 recursion"});
  } else {
    costs.push_back({BmoAlgorithm::kDivideConquer, false, 0.0,
                     "score dominance not exact (non-injective or "
                     "prioritized term)"});
  }

  // Best sequential estimate so far feeds the parallel formula.
  double best_seq = bnl_ns;
  for (const AlgorithmCost& cost : costs) {
    if (cost.eligible) best_seq = std::min(best_seq, cost.est_ns);
  }

  // --- Partition-and-merge parallel: near-linear speedup on the local
  // maxima passes, plus spawn overhead and the antichain merge rounds.
  const size_t workers = plan.num_threads;
  const size_t partitions = std::min(
      workers, stats.distinct_values / std::max<size_t>(1, plan.min_partition_size));
  if (!scope.allow_parallel) {
    costs.push_back({BmoAlgorithm::kParallel, false, 0.0,
                     "relation-level strategy not available here"});
  } else if (workers <= 1) {
    costs.push_back({BmoAlgorithm::kParallel, false, 0.0, "single worker"});
  } else if (stats.distinct_values < request.parallel_threshold) {
    costs.push_back({BmoAlgorithm::kParallel, false, 0.0,
                     "below parallel_threshold"});
  } else if (partitions < 2) {
    costs.push_back({BmoAlgorithm::kParallel, false, 0.0,
                     "too few distinct values to split"});
  } else {
    const double par_ns = best_seq / static_cast<double>(partitions) +
                          c.spawn_ns * static_cast<double>(partitions) +
                          pair * w * w;
    costs.push_back({BmoAlgorithm::kParallel, true, par_ns,
                     std::to_string(partitions) + " partitions on " +
                         std::to_string(workers) + " workers"});
  }

  // --- Prop 11 decomposition cascade: sort once by the chain head, then
  // evaluate the submodel only on the head's best block (closure path).
  if (!scope.allow_decomposition) {
    costs.push_back({BmoAlgorithm::kDecomposition, false, 0.0,
                     "relation-level strategy not available here"});
  } else if (stats.chain_head) {
    const double m_sub =
        m / static_cast<double>(std::max<size_t>(1, stats.head_distinct));
    const double decomp_ns =
        c.closure_sort_ns * m * Log2(m) +
        PairNs(c, KernelClass::kClosure, d) * std::max(1.0, m_sub) *
            std::max(1.0, w) / 2.0 +
        c.stream_row_ns * m;
    costs.push_back({BmoAlgorithm::kDecomposition, true, decomp_ns,
                     "Prop 11 cascade (chain head)"});
  } else {
    costs.push_back({BmoAlgorithm::kDecomposition, false, 0.0,
                     "no prioritized chain head"});
  }

  // Pick the cheapest eligible algorithm.
  const AlgorithmCost* chosen = nullptr;
  for (const AlgorithmCost& cost : costs) {
    if (cost.eligible && (chosen == nullptr || cost.est_ns < chosen->est_ns)) {
      chosen = &cost;
    }
  }
  plan.algorithm = chosen->algorithm;
  plan.estimated_ns = chosen->est_ns;
  if (plan.algorithm == BmoAlgorithm::kParallel) plan.partitions = partitions;

  char summary[192];
  std::snprintf(summary, sizeof(summary),
                "m=%zu window~%.0f%s, %s kernels: est %s", stats.distinct_values,
                w, stats.measured_window ? " (sampled)" : "",
                KernelClassName(kc), FmtMs(plan.estimated_ns).c_str());
  switch (plan.algorithm) {
    case BmoAlgorithm::kBlockNestedLoop:
      plan.rationale =
          std::string(batch ? "tiled SIMD BNL window beats the alternatives"
                            : "generic BNL window scan is cheapest") +
          " (" + summary + ")";
      break;
    case BmoAlgorithm::kSortFilter:
      plan.rationale =
          "large window favors presorting: SFS one-sided scan (" +
          std::string(summary) + ")";
      break;
    case BmoAlgorithm::kDivideConquer:
      plan.rationale =
          "KLP75 divide & conquer wins on exact score dominance (" +
          std::string(summary) + ")";
      break;
    case BmoAlgorithm::kParallel:
      plan.rationale = std::to_string(stats.distinct_values) +
                       " distinct values across " +
                       std::to_string(plan.partitions) + " partitions on " +
                       std::to_string(workers) +
                       " workers: partitioned local maxima + merge (" +
                       summary + ")";
      break;
    case BmoAlgorithm::kDecomposition:
      plan.rationale =
          "selective chain head: Prop 11 cascade evaluation (" +
          std::string(summary) + ")";
      break;
    default:
      plan.rationale = summary;
      break;
  }
  return plan;
}

}  // namespace prefdb
