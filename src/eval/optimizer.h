// A preference query optimizer front-end (the paper's §7 outlook:
// "heuristic transformations ..., cost-based optimization to choose
// between direct implementations of the Pareto operator and divide &
// conquer algorithms exploiting the decomposition principles").
//
// Pipeline: algebraic simplification (Props 3/4a/6 rewrites, which
// preserve the BMO answer by Prop 7) -> cost-based algorithm choice using
// cheap statistics of R -> EXPLAIN-style report.

#ifndef PREFDB_EVAL_OPTIMIZER_H_
#define PREFDB_EVAL_OPTIMIZER_H_

#include <string>
#include <vector>

#include "algebra/simplifier.h"
#include "eval/bmo.h"

namespace prefdb {

/// The algorithm decision plus a human-readable justification.
struct AlgorithmChoice {
  BmoAlgorithm algorithm = BmoAlgorithm::kBlockNestedLoop;
  std::string rationale;
};

/// Chooses an evaluation algorithm for σ[P](R) from term structure and
/// relation statistics (cardinality, attribute count):
///  - prioritized with chain head over disjoint attributes -> the
///    decomposition evaluator (Prop 11 cascade)
///  - very large n and multiple workers -> partition-and-merge parallel
///    evaluation (exec/parallel_bmo.h)
///  - skyline fragment (Pareto of LOWEST/HIGHEST on distinct attributes)
///    and large n  -> divide & conquer [KLP75]
///  - derivable sort keys and large n -> sort-filter
///  - otherwise -> BNL (small inputs: naive is fine too, BNL never loses)
/// `options` supplies the thread budget and escalation threshold consulted
/// for the parallel choice.
AlgorithmChoice ChooseAlgorithm(const Relation& r, const PrefPtr& p,
                                const BmoOptions& options = {});

/// Statistics-only entry point: the choice needs just the schema and the
/// (filtered) row count, so callers that keep row-index views instead of
/// materialized relations (engine/engine.h) can plan without a copy.
AlgorithmChoice ChooseAlgorithm(const Schema& schema, size_t num_rows,
                                const PrefPtr& p,
                                const BmoOptions& options = {});

/// A fully optimized query: simplified term, rewrite trace, chosen
/// algorithm.
struct OptimizedQuery {
  PrefPtr original;
  PrefPtr simplified;
  std::vector<RewriteStep> rewrites;
  AlgorithmChoice choice;

  /// Multi-line EXPLAIN text.
  std::string Explain() const;
};

OptimizedQuery Optimize(const Relation& r, const PrefPtr& p,
                        const BmoOptions& options = {});

/// Statistics-only overload (see ChooseAlgorithm above).
OptimizedQuery Optimize(const Schema& schema, size_t num_rows,
                        const PrefPtr& p, const BmoOptions& options = {});

/// Optimizes and evaluates in one step (equivalent to Bmo() by Prop 7,
/// validated in optimizer_test). `options.algorithm` is ignored — the
/// optimizer picks it — but the thread budget is honored.
Relation BmoOptimized(const Relation& r, const PrefPtr& p,
                      const BmoOptions& options = {});

}  // namespace prefdb

#endif  // PREFDB_EVAL_OPTIMIZER_H_
