// The preference query optimizer front-end (the paper's §7 outlook:
// "heuristic transformations ..., cost-based optimization to choose
// between direct implementations of the Pareto operator and divide &
// conquer algorithms exploiting the decomposition principles").
//
// Pipeline: algebraic simplification (Props 3/4a/6 rewrites, which
// preserve the BMO answer by Prop 7) -> statistics derivation
// (stats/stats.h: distinct counts, injectivity, estimated window width)
// -> the calibrated cost model (eval/physical_plan.h) -> one
// PhysicalPlan the whole execution pipeline consumes -> EXPLAIN report
// with the per-algorithm cost table.

#ifndef PREFDB_EVAL_OPTIMIZER_H_
#define PREFDB_EVAL_OPTIMIZER_H_

#include <string>
#include <vector>

#include "algebra/simplifier.h"
#include "eval/bmo.h"
#include "eval/physical_plan.h"
#include "stats/stats.h"

namespace prefdb {

/// Plans σ[P](R) from term structure and relation statistics: derives
/// TableStats (restricted to P's attributes), estimates TermStats, and
/// runs the cost model over every eligible algorithm (tiled-SIMD BNL,
/// SFS, KLP75 D&C, partition-and-merge parallel, Prop 11 decomposition
/// cascade). `options` supplies the thread budget, kernel fields and the
/// parallel-eligibility threshold.
PhysicalPlan ChooseAlgorithm(const Relation& r, const PrefPtr& p,
                             const BmoOptions& options = {});

/// Same, over statistics the caller already maintains (the engine's
/// incremental per-table stats). `pool_rows` is the candidate pool size
/// (WHERE survivors; pass stats.rows when unfiltered).
PhysicalPlan ChooseAlgorithm(const TableStats& stats, const Schema& schema,
                             size_t pool_rows, const PrefPtr& p,
                             const BmoOptions& options = {});

/// Statistics-free entry point: only the schema and the (filtered) row
/// count are known, so column distinct counts fall back to worst-case
/// assumptions. Kept for callers that plan before any scan.
PhysicalPlan ChooseAlgorithm(const Schema& schema, size_t num_rows,
                             const PrefPtr& p, const BmoOptions& options = {});

/// A fully optimized query: simplified term, rewrite trace, physical
/// plan.
struct OptimizedQuery {
  PrefPtr original;
  PrefPtr simplified;
  std::vector<RewriteStep> rewrites;
  PhysicalPlan plan;

  /// Multi-line EXPLAIN text: rewrites, statistics, the per-algorithm
  /// cost table and the chosen algorithm with its rationale.
  std::string Explain() const;
};

OptimizedQuery Optimize(const Relation& r, const PrefPtr& p,
                        const BmoOptions& options = {});

/// Stats-based overloads (see ChooseAlgorithm above).
OptimizedQuery Optimize(const TableStats& stats, const Schema& schema,
                        size_t pool_rows, const PrefPtr& p,
                        const BmoOptions& options = {});
OptimizedQuery Optimize(const Schema& schema, size_t num_rows,
                        const PrefPtr& p, const BmoOptions& options = {});

/// Optimizes and evaluates in one step (equivalent to Bmo() by Prop 7,
/// validated in optimizer_test). `options.algorithm` is ignored — the
/// cost model picks it — but the thread budget and kernel fields are
/// honored.
Relation BmoOptimized(const Relation& r, const PrefPtr& p,
                      const BmoOptions& options = {});

}  // namespace prefdb

#endif  // PREFDB_EVAL_OPTIMIZER_H_
