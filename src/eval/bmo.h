// BMO ("Best Matches Only") preference query evaluation (Kießling §5):
//   σ[P](R)            = { t in R | t[A] in max(P_R) }          (Def. 15)
//   σ[P groupby A](R)  = σ[A<-> & P](R)                          (Def. 16)
//
// Algorithms:
//   kNaive           exhaustive O(m^2) better-than tests over distinct
//                    projections (the paper's baseline, §5.1)
//   kBlockNestedLoop BNL window algorithm [BKS01], generalized to arbitrary
//                    strict partial orders
//   kSortFilter      SFS-style: presort by topologically compatible sort
//                    keys (Preference::BindSortKeys), then a one-sided
//                    window scan; falls back to BNL when no keys exist
//   kDivideConquer   the maxima algorithm of [KLP75]; applies to Pareto
//                    combinations of LOWEST/HIGHEST chains (the 'SKYLINE
//                    OF' fragment, §6.1); falls back to BNL otherwise
//   kDecomposition   divide & conquer via the decomposition theorems
//                    Props 8-12 (see eval/decomposition.h)
//   kParallel        partition-and-merge parallel evaluation on a worker
//                    pool (see exec/parallel_bmo.h); each partition runs
//                    the auto-resolved sequential algorithm
//   kAuto            cost-based: the statistics subsystem (stats/stats.h)
//                    measures the block (distinct counts, injectivity, a
//                    sampled window probe) and the calibrated cost model
//                    (eval/physical_plan.h) picks the cheapest eligible
//                    plan. (kDecomposition is never auto-picked at block
//                    level; the optimizer in eval/optimizer.h routes it
//                    before the block is materialized.)

#ifndef PREFDB_EVAL_BMO_H_
#define PREFDB_EVAL_BMO_H_

#include <vector>

#include "core/preference.h"
#include "relation/relation.h"

namespace prefdb {

enum class BmoAlgorithm {
  kAuto,
  kNaive,
  kBlockNestedLoop,
  kSortFilter,
  kDivideConquer,
  kDecomposition,
  kParallel,
};

const char* BmoAlgorithmName(BmoAlgorithm algo);

/// Which dominance kernel implementation the compiled score-table paths
/// run (exec/simd/dominance.h). Only meaningful when `vectorize` is on;
/// the closure path is always scalar.
enum class SimdMode : uint8_t {
  /// Runtime dispatch: AVX2 when the build and CPU support it, else the
  /// portable batch kernels.
  kAuto,
  /// The row-major one-pair-per-iteration kernels (the pre-SIMD
  /// vectorized baseline; benchmarks compare against this).
  kOff,
  /// Force the portable 4-lane batch kernels (no AVX2 even if available).
  kScalar,
  /// Force AVX2; degrades to kScalar when the build or CPU lacks it.
  kAvx2,
};

const char* SimdModeName(SimdMode mode);

/// The caller-facing execution *request*. These knobs are inputs to the
/// planner: every execution path consumes them only through the
/// PhysicalPlan (eval/physical_plan.h) the cost model derives from them
/// (PhysicalPlan::FromOptions for explicit algorithms / pass-through
/// paths).
struct BmoOptions {
  BmoAlgorithm algorithm = BmoAlgorithm::kAuto;
  /// Worker threads for kParallel (0 = hardware concurrency).
  size_t num_threads = 0;
  /// kParallel becomes *eligible* for kAuto at/above this many distinct
  /// values (the cost model still compares it against the sequential
  /// plans); set to SIZE_MAX to opt out of auto-parallelism.
  size_t parallel_threshold = 32768;
  /// Compile the term into the vectorized score-table kernels
  /// (exec/score_table.h) when possible; terms that do not compile fall
  /// back to the closure path regardless. Off = always closures (the
  /// baseline for equivalence tests and benchmarks).
  bool vectorize = true;
  /// Dominance-kernel implementation for the compiled paths.
  SimdMode simd = SimdMode::kAuto;
  /// Tile size (and engagement threshold) for the blocked BNL window
  /// loop: candidates stream against the window while it holds fewer
  /// rows than this; beyond it, tiles are reduced to their local maxima
  /// in cache before touching the global window. 0 = auto-size so the
  /// window stays L2-resident; >= the input size disables tiling.
  size_t bnl_tile_rows = 0;
};

/// Evaluates σ[P](R); preserves input row order and duplicates (a tuple
/// qualifies iff its projection onto P's attributes is maximal).
Relation Bmo(const Relation& r, const PrefPtr& p, const BmoOptions& options = {});

/// Same, returning the qualifying row indices sorted ascending.
std::vector<size_t> BmoIndices(const Relation& r, const PrefPtr& p,
                               const BmoOptions& options = {});

/// Evaluates σ[P groupby A](R) (Def. 16): grouping by equal A-values, then
/// BMO per group.
Relation BmoGroupBy(const Relation& r, const PrefPtr& p,
                    const std::vector<std::string>& group_attrs,
                    const BmoOptions& options = {});
std::vector<size_t> BmoGroupByIndices(const Relation& r, const PrefPtr& p,
                                      const std::vector<std::string>& group_attrs,
                                      const BmoOptions& options = {});

/// size(P, R) = card(π_A(σ[P](R))) (Def. 18): the number of distinct
/// best-matching value combinations.
size_t ResultSize(const Relation& r, const PrefPtr& p,
                  const BmoOptions& options = {});

/// True iff tuple t is a *perfect match* for P in R (Def. 14b): its
/// projection is maximal in the full domain order, i.e. no conceivable
/// value combination beats it. Checked over the candidate universe
/// `universe` (pass domain enumerations for exact semantics).
bool IsPerfectMatch(const Tuple& t, const Relation& r, const PrefPtr& p,
                    const std::vector<Tuple>& universe);

// --- Internals shared by the algorithm implementations and benchmarks. ---

/// Distinct projections of R onto P's attributes plus row mapping. When
/// `rows` is given, only that row subset is indexed (row_to_value then
/// maps positions within `rows`), used by per-group evaluation.
struct ProjectionIndex {
  Schema proj_schema;                 // schema of the projected columns
  std::vector<Tuple> values;          // distinct projections ("R[A]")
  std::vector<size_t> row_to_value;   // row index -> values index
};

ProjectionIndex BuildProjectionIndex(const Relation& r, const Preference& p,
                                     const std::vector<size_t>* rows = nullptr);

/// Maximal-value flags over a distinct-value set under a bound order.
std::vector<bool> MaximaNaive(const std::vector<Tuple>& values,
                              const LessFn& less);
std::vector<bool> MaximaBnl(const std::vector<Tuple>& values,
                            const LessFn& less);
std::vector<bool> MaximaSortFilter(const std::vector<Tuple>& values,
                                   const LessFn& less,
                                   const std::vector<ScoreFn>& keys);
/// [KLP75] divide & conquer over numeric score vectors; `scores[i]` is the
/// to-maximize vector of values[i]. Exact iff the preference order equals
/// coordinatewise score dominance (see CanUseDivideConquer).
std::vector<bool> MaximaDivideConquer(
    const std::vector<std::vector<double>>& scores);

namespace simd {
struct KernelOps;
}  // namespace simd

/// Same, over a flat row-major matrix: row i is the `d` doubles at
/// `scores + i * stride`. The zero-copy entry point for the vectorized
/// score-table kernels (exec/score_table.h). A non-null `kernel` runs the
/// quadratic base-case blocks through the batch dominance kernels
/// (exec/simd/dominance.h) with a correspondingly larger cutoff.
std::vector<bool> MaximaDivideConquerFlat(const double* scores, size_t n,
                                          size_t d, size_t stride,
                                          const simd::KernelOps* kernel =
                                              nullptr);

/// True when `p` is a Pareto tree over LOWEST/HIGHEST leaves with pairwise
/// distinct attributes — the fragment where score-vector dominance
/// coincides with Def. 8 (injective leaf scores). Fills `leaves`.
bool CanUseDivideConquer(const PrefPtr& p, std::vector<PrefPtr>* leaves);

}  // namespace prefdb

#endif  // PREFDB_EVAL_BMO_H_
