// Quality functions LEVEL and DISTANCE (Kießling §6.1): supervise required
// quality levels in BUT ONLY clauses and power query explanation.
//
// LEVEL(v) is the intrinsic level of a value under a non-numerical base
// preference (Def. 6: POS has levels 1-2, POS/NEG 1-3, ...); DISTANCE(v)
// is the continuous distance of Def. 7 for AROUND/BETWEEN.

#ifndef PREFDB_EVAL_QUALITY_H_
#define PREFDB_EVAL_QUALITY_H_

#include <optional>

#include "core/base_preferences.h"
#include "core/numeric_preferences.h"

namespace prefdb {

/// Intrinsic 1-based level of a value under a non-numerical base
/// preference (lower is better):
///   POS: 1 if in POS-set else 2;  NEG: 1 if not in NEG-set else 2;
///   POS/NEG: 1 / 2 / 3;  POS/POS: 1 / 2 / 3;  LAYERED: layer index;
///   EXPLICIT: longest-path level within the graph, other values one level
///   below the deepest graph value.
/// Throws std::invalid_argument for preferences without level semantics.
size_t IntrinsicLevel(const Preference& p, const Value& v);

/// distance(v, z) resp. distance(v, [low, up]) of Def. 7a/b. Throws
/// std::invalid_argument unless p is AROUND or BETWEEN.
double QualityDistance(const Preference& p, const Value& v);

/// Searches a preference term for a base preference on the given attribute
/// (used to resolve LEVEL(attr) / DISTANCE(attr) in BUT ONLY clauses).
/// Returns nullptr if none exists.
PrefPtr FindBasePreference(const PrefPtr& term, const std::string& attribute);

}  // namespace prefdb

#endif  // PREFDB_EVAL_QUALITY_H_
